file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_required_delay.dir/fig9_required_delay.cpp.o"
  "CMakeFiles/bench_fig9_required_delay.dir/fig9_required_delay.cpp.o.d"
  "bench_fig9_required_delay"
  "bench_fig9_required_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_required_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
