# Empty dependencies file for bench_fig8_diminishing_gain.
# This may be replaced when dependencies are built.
