file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_diminishing_gain.dir/fig8_diminishing_gain.cpp.o"
  "CMakeFiles/bench_fig8_diminishing_gain.dir/fig8_diminishing_gain.cpp.o.d"
  "bench_fig8_diminishing_gain"
  "bench_fig8_diminishing_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_diminishing_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
