# Empty compiler generated dependencies file for bench_fig4_homogeneous.
# This may be replaced when dependencies are built.
