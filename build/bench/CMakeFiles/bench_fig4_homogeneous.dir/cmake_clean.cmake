file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_homogeneous.dir/fig4_homogeneous.cpp.o"
  "CMakeFiles/bench_fig4_homogeneous.dir/fig4_homogeneous.cpp.o.d"
  "bench_fig4_homogeneous"
  "bench_fig4_homogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_homogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
