file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_heterogeneity.dir/fig10_heterogeneity.cpp.o"
  "CMakeFiles/bench_fig10_heterogeneity.dir/fig10_heterogeneity.cpp.o.d"
  "bench_fig10_heterogeneity"
  "bench_fig10_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
