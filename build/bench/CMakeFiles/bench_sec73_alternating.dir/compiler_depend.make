# Empty compiler generated dependencies file for bench_sec73_alternating.
# This may be replaced when dependencies are built.
