file(REMOVE_RECURSE
  "CMakeFiles/bench_sec73_alternating.dir/sec73_alternating.cpp.o"
  "CMakeFiles/bench_sec73_alternating.dir/sec73_alternating.cpp.o.d"
  "bench_sec73_alternating"
  "bench_sec73_alternating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec73_alternating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
