# Empty compiler generated dependencies file for bench_ext_kpaths.
# This may be replaced when dependencies are built.
