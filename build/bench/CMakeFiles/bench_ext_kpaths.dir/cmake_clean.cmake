file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_kpaths.dir/ext_kpaths.cpp.o"
  "CMakeFiles/bench_ext_kpaths.dir/ext_kpaths.cpp.o.d"
  "bench_ext_kpaths"
  "bench_ext_kpaths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_kpaths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
