file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_sendbuf.dir/abl_sendbuf.cpp.o"
  "CMakeFiles/bench_abl_sendbuf.dir/abl_sendbuf.cpp.o.d"
  "bench_abl_sendbuf"
  "bench_abl_sendbuf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_sendbuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
