# Empty dependencies file for bench_abl_sendbuf.
# This may be replaced when dependencies are built.
