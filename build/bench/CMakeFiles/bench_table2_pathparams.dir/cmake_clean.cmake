file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_pathparams.dir/table2_pathparams.cpp.o"
  "CMakeFiles/bench_table2_pathparams.dir/table2_pathparams.cpp.o.d"
  "bench_table2_pathparams"
  "bench_table2_pathparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_pathparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
