file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_heterogeneous.dir/fig5_heterogeneous.cpp.o"
  "CMakeFiles/bench_fig5_heterogeneous.dir/fig5_heterogeneous.cpp.o.d"
  "bench_fig5_heterogeneous"
  "bench_fig5_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
