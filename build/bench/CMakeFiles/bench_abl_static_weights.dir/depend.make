# Empty dependencies file for bench_abl_static_weights.
# This may be replaced when dependencies are built.
