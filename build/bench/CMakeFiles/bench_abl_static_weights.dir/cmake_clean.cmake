file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_static_weights.dir/abl_static_weights.cpp.o"
  "CMakeFiles/bench_abl_static_weights.dir/abl_static_weights.cpp.o.d"
  "bench_abl_static_weights"
  "bench_abl_static_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_static_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
