file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_internet.dir/fig7_internet.cpp.o"
  "CMakeFiles/bench_fig7_internet.dir/fig7_internet.cpp.o.d"
  "bench_fig7_internet"
  "bench_fig7_internet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_internet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
