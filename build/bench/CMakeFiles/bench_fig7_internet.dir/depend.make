# Empty dependencies file for bench_fig7_internet.
# This may be replaced when dependencies are built.
