# Empty compiler generated dependencies file for bench_fig11_static_vs_dmp.
# This may be replaced when dependencies are built.
