file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_static_vs_dmp.dir/fig11_static_vs_dmp.cpp.o"
  "CMakeFiles/bench_fig11_static_vs_dmp.dir/fig11_static_vs_dmp.cpp.o.d"
  "bench_fig11_static_vs_dmp"
  "bench_fig11_static_vs_dmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_static_vs_dmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
