file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_stored.dir/ext_stored.cpp.o"
  "CMakeFiles/bench_ext_stored.dir/ext_stored.cpp.o.d"
  "bench_ext_stored"
  "bench_ext_stored.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_stored.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
