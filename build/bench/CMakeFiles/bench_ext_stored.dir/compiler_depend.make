# Empty compiler generated dependencies file for bench_ext_stored.
# This may be replaced when dependencies are built.
