file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_correlated.dir/table3_correlated.cpp.o"
  "CMakeFiles/bench_table3_correlated.dir/table3_correlated.cpp.o.d"
  "bench_table3_correlated"
  "bench_table3_correlated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_correlated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
