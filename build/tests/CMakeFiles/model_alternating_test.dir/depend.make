# Empty dependencies file for model_alternating_test.
# This may be replaced when dependencies are built.
