file(REMOVE_RECURSE
  "CMakeFiles/model_alternating_test.dir/model/alternating_test.cpp.o"
  "CMakeFiles/model_alternating_test.dir/model/alternating_test.cpp.o.d"
  "model_alternating_test"
  "model_alternating_test.pdb"
  "model_alternating_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_alternating_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
