# Empty compiler generated dependencies file for model_pftk_test.
# This may be replaced when dependencies are built.
