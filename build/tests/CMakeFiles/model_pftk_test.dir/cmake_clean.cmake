file(REMOVE_RECURSE
  "CMakeFiles/model_pftk_test.dir/model/pftk_test.cpp.o"
  "CMakeFiles/model_pftk_test.dir/model/pftk_test.cpp.o.d"
  "model_pftk_test"
  "model_pftk_test.pdb"
  "model_pftk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_pftk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
