
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tcp/sink_test.cpp" "tests/CMakeFiles/tcp_sink_test.dir/tcp/sink_test.cpp.o" "gcc" "tests/CMakeFiles/tcp_sink_test.dir/tcp/sink_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tcp/CMakeFiles/dmp_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dmp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dmp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dmp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
