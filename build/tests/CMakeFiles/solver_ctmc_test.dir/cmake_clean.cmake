file(REMOVE_RECURSE
  "CMakeFiles/solver_ctmc_test.dir/solver/ctmc_test.cpp.o"
  "CMakeFiles/solver_ctmc_test.dir/solver/ctmc_test.cpp.o.d"
  "solver_ctmc_test"
  "solver_ctmc_test.pdb"
  "solver_ctmc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_ctmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
