# Empty compiler generated dependencies file for stream_dmp_test.
# This may be replaced when dependencies are built.
