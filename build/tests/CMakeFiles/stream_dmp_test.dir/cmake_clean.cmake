file(REMOVE_RECURSE
  "CMakeFiles/stream_dmp_test.dir/stream/dmp_test.cpp.o"
  "CMakeFiles/stream_dmp_test.dir/stream/dmp_test.cpp.o.d"
  "stream_dmp_test"
  "stream_dmp_test.pdb"
  "stream_dmp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_dmp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
