# Empty dependencies file for stream_session_test.
# This may be replaced when dependencies are built.
