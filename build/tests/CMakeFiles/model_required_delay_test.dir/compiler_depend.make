# Empty compiler generated dependencies file for model_required_delay_test.
# This may be replaced when dependencies are built.
