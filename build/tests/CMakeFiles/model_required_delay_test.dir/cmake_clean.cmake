file(REMOVE_RECURSE
  "CMakeFiles/model_required_delay_test.dir/model/required_delay_test.cpp.o"
  "CMakeFiles/model_required_delay_test.dir/model/required_delay_test.cpp.o.d"
  "model_required_delay_test"
  "model_required_delay_test.pdb"
  "model_required_delay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_required_delay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
