# Empty dependencies file for model_tcp_chain_test.
# This may be replaced when dependencies are built.
