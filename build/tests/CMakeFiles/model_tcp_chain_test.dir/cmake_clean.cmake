file(REMOVE_RECURSE
  "CMakeFiles/model_tcp_chain_test.dir/model/tcp_chain_test.cpp.o"
  "CMakeFiles/model_tcp_chain_test.dir/model/tcp_chain_test.cpp.o.d"
  "model_tcp_chain_test"
  "model_tcp_chain_test.pdb"
  "model_tcp_chain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_tcp_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
