# Empty compiler generated dependencies file for stream_client_test.
# This may be replaced when dependencies are built.
