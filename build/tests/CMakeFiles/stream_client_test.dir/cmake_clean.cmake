file(REMOVE_RECURSE
  "CMakeFiles/stream_client_test.dir/stream/client_test.cpp.o"
  "CMakeFiles/stream_client_test.dir/stream/client_test.cpp.o.d"
  "stream_client_test"
  "stream_client_test.pdb"
  "stream_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
