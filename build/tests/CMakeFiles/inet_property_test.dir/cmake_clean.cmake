file(REMOVE_RECURSE
  "CMakeFiles/inet_property_test.dir/inet/inet_property_test.cpp.o"
  "CMakeFiles/inet_property_test.dir/inet/inet_property_test.cpp.o.d"
  "inet_property_test"
  "inet_property_test.pdb"
  "inet_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inet_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
