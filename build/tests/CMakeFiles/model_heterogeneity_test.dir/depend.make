# Empty dependencies file for model_heterogeneity_test.
# This may be replaced when dependencies are built.
