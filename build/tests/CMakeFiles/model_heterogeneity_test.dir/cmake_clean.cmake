file(REMOVE_RECURSE
  "CMakeFiles/model_heterogeneity_test.dir/model/heterogeneity_test.cpp.o"
  "CMakeFiles/model_heterogeneity_test.dir/model/heterogeneity_test.cpp.o.d"
  "model_heterogeneity_test"
  "model_heterogeneity_test.pdb"
  "model_heterogeneity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_heterogeneity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
