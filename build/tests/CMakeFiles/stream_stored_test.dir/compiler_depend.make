# Empty compiler generated dependencies file for stream_stored_test.
# This may be replaced when dependencies are built.
