file(REMOVE_RECURSE
  "CMakeFiles/stream_stored_test.dir/stream/stored_test.cpp.o"
  "CMakeFiles/stream_stored_test.dir/stream/stored_test.cpp.o.d"
  "stream_stored_test"
  "stream_stored_test.pdb"
  "stream_stored_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_stored_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
