file(REMOVE_RECURSE
  "CMakeFiles/stream_scheme_property_test.dir/stream/scheme_property_test.cpp.o"
  "CMakeFiles/stream_scheme_property_test.dir/stream/scheme_property_test.cpp.o.d"
  "stream_scheme_property_test"
  "stream_scheme_property_test.pdb"
  "stream_scheme_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_scheme_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
