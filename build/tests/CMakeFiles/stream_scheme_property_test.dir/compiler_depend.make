# Empty compiler generated dependencies file for stream_scheme_property_test.
# This may be replaced when dependencies are built.
