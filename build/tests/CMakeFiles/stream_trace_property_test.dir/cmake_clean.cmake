file(REMOVE_RECURSE
  "CMakeFiles/stream_trace_property_test.dir/stream/trace_property_test.cpp.o"
  "CMakeFiles/stream_trace_property_test.dir/stream/trace_property_test.cpp.o.d"
  "stream_trace_property_test"
  "stream_trace_property_test.pdb"
  "stream_trace_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_trace_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
