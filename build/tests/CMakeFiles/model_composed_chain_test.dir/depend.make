# Empty dependencies file for model_composed_chain_test.
# This may be replaced when dependencies are built.
