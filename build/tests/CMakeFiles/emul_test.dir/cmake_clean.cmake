file(REMOVE_RECURSE
  "CMakeFiles/emul_test.dir/emul/emul_test.cpp.o"
  "CMakeFiles/emul_test.dir/emul/emul_test.cpp.o.d"
  "emul_test"
  "emul_test.pdb"
  "emul_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emul_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
