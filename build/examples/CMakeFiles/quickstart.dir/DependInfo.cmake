
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/dmp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/emul/CMakeFiles/dmp_emul.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/dmp_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/dmp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/dmp_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dmp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dmp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/dmp_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dmp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
