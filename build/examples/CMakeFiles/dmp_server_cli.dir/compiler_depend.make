# Empty compiler generated dependencies file for dmp_server_cli.
# This may be replaced when dependencies are built.
