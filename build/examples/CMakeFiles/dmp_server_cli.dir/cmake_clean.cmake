file(REMOVE_RECURSE
  "CMakeFiles/dmp_server_cli.dir/dmp_server_cli.cpp.o"
  "CMakeFiles/dmp_server_cli.dir/dmp_server_cli.cpp.o.d"
  "dmp_server_cli"
  "dmp_server_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmp_server_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
