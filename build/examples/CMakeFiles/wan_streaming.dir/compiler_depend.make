# Empty compiler generated dependencies file for wan_streaming.
# This may be replaced when dependencies are built.
