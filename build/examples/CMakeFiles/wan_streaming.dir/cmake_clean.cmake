file(REMOVE_RECURSE
  "CMakeFiles/wan_streaming.dir/wan_streaming.cpp.o"
  "CMakeFiles/wan_streaming.dir/wan_streaming.cpp.o.d"
  "wan_streaming"
  "wan_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
