# Empty dependencies file for wan_streaming.
# This may be replaced when dependencies are built.
