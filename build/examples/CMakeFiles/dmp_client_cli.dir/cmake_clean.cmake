file(REMOVE_RECURSE
  "CMakeFiles/dmp_client_cli.dir/dmp_client_cli.cpp.o"
  "CMakeFiles/dmp_client_cli.dir/dmp_client_cli.cpp.o.d"
  "dmp_client_cli"
  "dmp_client_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmp_client_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
