# Empty compiler generated dependencies file for dmp_client_cli.
# This may be replaced when dependencies are built.
