file(REMOVE_RECURSE
  "CMakeFiles/dmp_sim.dir/scheduler.cpp.o"
  "CMakeFiles/dmp_sim.dir/scheduler.cpp.o.d"
  "libdmp_sim.a"
  "libdmp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
