file(REMOVE_RECURSE
  "libdmp_sim.a"
)
