# Empty compiler generated dependencies file for dmp_sim.
# This may be replaced when dependencies are built.
