file(REMOVE_RECURSE
  "CMakeFiles/dmp_model.dir/alternating.cpp.o"
  "CMakeFiles/dmp_model.dir/alternating.cpp.o.d"
  "CMakeFiles/dmp_model.dir/composed_chain.cpp.o"
  "CMakeFiles/dmp_model.dir/composed_chain.cpp.o.d"
  "CMakeFiles/dmp_model.dir/heterogeneity.cpp.o"
  "CMakeFiles/dmp_model.dir/heterogeneity.cpp.o.d"
  "CMakeFiles/dmp_model.dir/pftk.cpp.o"
  "CMakeFiles/dmp_model.dir/pftk.cpp.o.d"
  "CMakeFiles/dmp_model.dir/required_delay.cpp.o"
  "CMakeFiles/dmp_model.dir/required_delay.cpp.o.d"
  "CMakeFiles/dmp_model.dir/tcp_chain.cpp.o"
  "CMakeFiles/dmp_model.dir/tcp_chain.cpp.o.d"
  "libdmp_model.a"
  "libdmp_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
