
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/alternating.cpp" "src/model/CMakeFiles/dmp_model.dir/alternating.cpp.o" "gcc" "src/model/CMakeFiles/dmp_model.dir/alternating.cpp.o.d"
  "/root/repo/src/model/composed_chain.cpp" "src/model/CMakeFiles/dmp_model.dir/composed_chain.cpp.o" "gcc" "src/model/CMakeFiles/dmp_model.dir/composed_chain.cpp.o.d"
  "/root/repo/src/model/heterogeneity.cpp" "src/model/CMakeFiles/dmp_model.dir/heterogeneity.cpp.o" "gcc" "src/model/CMakeFiles/dmp_model.dir/heterogeneity.cpp.o.d"
  "/root/repo/src/model/pftk.cpp" "src/model/CMakeFiles/dmp_model.dir/pftk.cpp.o" "gcc" "src/model/CMakeFiles/dmp_model.dir/pftk.cpp.o.d"
  "/root/repo/src/model/required_delay.cpp" "src/model/CMakeFiles/dmp_model.dir/required_delay.cpp.o" "gcc" "src/model/CMakeFiles/dmp_model.dir/required_delay.cpp.o.d"
  "/root/repo/src/model/tcp_chain.cpp" "src/model/CMakeFiles/dmp_model.dir/tcp_chain.cpp.o" "gcc" "src/model/CMakeFiles/dmp_model.dir/tcp_chain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solver/CMakeFiles/dmp_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dmp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
