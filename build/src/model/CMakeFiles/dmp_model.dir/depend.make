# Empty dependencies file for dmp_model.
# This may be replaced when dependencies are built.
