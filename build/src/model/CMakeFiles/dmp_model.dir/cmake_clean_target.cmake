file(REMOVE_RECURSE
  "libdmp_model.a"
)
