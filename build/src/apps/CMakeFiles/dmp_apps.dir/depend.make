# Empty dependencies file for dmp_apps.
# This may be replaced when dependencies are built.
