file(REMOVE_RECURSE
  "CMakeFiles/dmp_apps.dir/background.cpp.o"
  "CMakeFiles/dmp_apps.dir/background.cpp.o.d"
  "CMakeFiles/dmp_apps.dir/ftp_source.cpp.o"
  "CMakeFiles/dmp_apps.dir/ftp_source.cpp.o.d"
  "CMakeFiles/dmp_apps.dir/http_source.cpp.o"
  "CMakeFiles/dmp_apps.dir/http_source.cpp.o.d"
  "libdmp_apps.a"
  "libdmp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
