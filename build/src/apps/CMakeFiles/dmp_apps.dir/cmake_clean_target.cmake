file(REMOVE_RECURSE
  "libdmp_apps.a"
)
