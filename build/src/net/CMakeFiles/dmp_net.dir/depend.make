# Empty dependencies file for dmp_net.
# This may be replaced when dependencies are built.
