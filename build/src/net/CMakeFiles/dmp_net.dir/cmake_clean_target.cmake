file(REMOVE_RECURSE
  "libdmp_net.a"
)
