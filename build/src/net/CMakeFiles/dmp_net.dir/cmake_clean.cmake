file(REMOVE_RECURSE
  "CMakeFiles/dmp_net.dir/link.cpp.o"
  "CMakeFiles/dmp_net.dir/link.cpp.o.d"
  "CMakeFiles/dmp_net.dir/topology.cpp.o"
  "CMakeFiles/dmp_net.dir/topology.cpp.o.d"
  "libdmp_net.a"
  "libdmp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
