# Empty dependencies file for dmp_stream.
# This may be replaced when dependencies are built.
