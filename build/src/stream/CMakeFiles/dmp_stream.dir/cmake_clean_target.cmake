file(REMOVE_RECURSE
  "libdmp_stream.a"
)
