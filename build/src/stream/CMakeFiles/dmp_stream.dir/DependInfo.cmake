
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/client.cpp" "src/stream/CMakeFiles/dmp_stream.dir/client.cpp.o" "gcc" "src/stream/CMakeFiles/dmp_stream.dir/client.cpp.o.d"
  "/root/repo/src/stream/dmp_server.cpp" "src/stream/CMakeFiles/dmp_stream.dir/dmp_server.cpp.o" "gcc" "src/stream/CMakeFiles/dmp_stream.dir/dmp_server.cpp.o.d"
  "/root/repo/src/stream/session.cpp" "src/stream/CMakeFiles/dmp_stream.dir/session.cpp.o" "gcc" "src/stream/CMakeFiles/dmp_stream.dir/session.cpp.o.d"
  "/root/repo/src/stream/static_server.cpp" "src/stream/CMakeFiles/dmp_stream.dir/static_server.cpp.o" "gcc" "src/stream/CMakeFiles/dmp_stream.dir/static_server.cpp.o.d"
  "/root/repo/src/stream/stored_server.cpp" "src/stream/CMakeFiles/dmp_stream.dir/stored_server.cpp.o" "gcc" "src/stream/CMakeFiles/dmp_stream.dir/stored_server.cpp.o.d"
  "/root/repo/src/stream/trace.cpp" "src/stream/CMakeFiles/dmp_stream.dir/trace.cpp.o" "gcc" "src/stream/CMakeFiles/dmp_stream.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/dmp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/dmp_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dmp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dmp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dmp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
