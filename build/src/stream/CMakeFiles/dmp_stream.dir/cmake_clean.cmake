file(REMOVE_RECURSE
  "CMakeFiles/dmp_stream.dir/client.cpp.o"
  "CMakeFiles/dmp_stream.dir/client.cpp.o.d"
  "CMakeFiles/dmp_stream.dir/dmp_server.cpp.o"
  "CMakeFiles/dmp_stream.dir/dmp_server.cpp.o.d"
  "CMakeFiles/dmp_stream.dir/session.cpp.o"
  "CMakeFiles/dmp_stream.dir/session.cpp.o.d"
  "CMakeFiles/dmp_stream.dir/static_server.cpp.o"
  "CMakeFiles/dmp_stream.dir/static_server.cpp.o.d"
  "CMakeFiles/dmp_stream.dir/stored_server.cpp.o"
  "CMakeFiles/dmp_stream.dir/stored_server.cpp.o.d"
  "CMakeFiles/dmp_stream.dir/trace.cpp.o"
  "CMakeFiles/dmp_stream.dir/trace.cpp.o.d"
  "libdmp_stream.a"
  "libdmp_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmp_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
