file(REMOVE_RECURSE
  "CMakeFiles/dmp_emul.dir/experiment.cpp.o"
  "CMakeFiles/dmp_emul.dir/experiment.cpp.o.d"
  "CMakeFiles/dmp_emul.dir/wan_path.cpp.o"
  "CMakeFiles/dmp_emul.dir/wan_path.cpp.o.d"
  "libdmp_emul.a"
  "libdmp_emul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmp_emul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
