file(REMOVE_RECURSE
  "libdmp_emul.a"
)
