# Empty compiler generated dependencies file for dmp_emul.
# This may be replaced when dependencies are built.
