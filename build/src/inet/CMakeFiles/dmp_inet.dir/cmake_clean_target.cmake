file(REMOVE_RECURSE
  "libdmp_inet.a"
)
