file(REMOVE_RECURSE
  "CMakeFiles/dmp_inet.dir/client.cpp.o"
  "CMakeFiles/dmp_inet.dir/client.cpp.o.d"
  "CMakeFiles/dmp_inet.dir/framing.cpp.o"
  "CMakeFiles/dmp_inet.dir/framing.cpp.o.d"
  "CMakeFiles/dmp_inet.dir/server.cpp.o"
  "CMakeFiles/dmp_inet.dir/server.cpp.o.d"
  "CMakeFiles/dmp_inet.dir/socket.cpp.o"
  "CMakeFiles/dmp_inet.dir/socket.cpp.o.d"
  "libdmp_inet.a"
  "libdmp_inet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmp_inet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
