# Empty dependencies file for dmp_inet.
# This may be replaced when dependencies are built.
