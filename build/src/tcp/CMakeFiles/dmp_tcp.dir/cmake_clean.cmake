file(REMOVE_RECURSE
  "CMakeFiles/dmp_tcp.dir/connection.cpp.o"
  "CMakeFiles/dmp_tcp.dir/connection.cpp.o.d"
  "CMakeFiles/dmp_tcp.dir/reno_sender.cpp.o"
  "CMakeFiles/dmp_tcp.dir/reno_sender.cpp.o.d"
  "CMakeFiles/dmp_tcp.dir/sink.cpp.o"
  "CMakeFiles/dmp_tcp.dir/sink.cpp.o.d"
  "libdmp_tcp.a"
  "libdmp_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmp_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
