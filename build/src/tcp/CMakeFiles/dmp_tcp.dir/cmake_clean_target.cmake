file(REMOVE_RECURSE
  "libdmp_tcp.a"
)
