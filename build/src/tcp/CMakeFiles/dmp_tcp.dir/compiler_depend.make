# Empty compiler generated dependencies file for dmp_tcp.
# This may be replaced when dependencies are built.
