file(REMOVE_RECURSE
  "libdmp_util.a"
)
