# Empty compiler generated dependencies file for dmp_util.
# This may be replaced when dependencies are built.
