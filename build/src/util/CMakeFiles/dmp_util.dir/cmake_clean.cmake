file(REMOVE_RECURSE
  "CMakeFiles/dmp_util.dir/csv.cpp.o"
  "CMakeFiles/dmp_util.dir/csv.cpp.o.d"
  "CMakeFiles/dmp_util.dir/env.cpp.o"
  "CMakeFiles/dmp_util.dir/env.cpp.o.d"
  "CMakeFiles/dmp_util.dir/rng.cpp.o"
  "CMakeFiles/dmp_util.dir/rng.cpp.o.d"
  "CMakeFiles/dmp_util.dir/stats.cpp.o"
  "CMakeFiles/dmp_util.dir/stats.cpp.o.d"
  "libdmp_util.a"
  "libdmp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
