file(REMOVE_RECURSE
  "CMakeFiles/dmp_solver.dir/ctmc.cpp.o"
  "CMakeFiles/dmp_solver.dir/ctmc.cpp.o.d"
  "libdmp_solver.a"
  "libdmp_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmp_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
