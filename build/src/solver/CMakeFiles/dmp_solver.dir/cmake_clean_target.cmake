file(REMOVE_RECURSE
  "libdmp_solver.a"
)
