# Empty dependencies file for dmp_solver.
# This may be replaced when dependencies are built.
