// Standalone DMP streaming server.
//
//   $ ./dmp_server_cli --port 9000 --paths 2 --kbps 600 --duration 60
//   $ ./dmp_server_cli --bind 0.0.0.0 --port 9000   # serve remote clients
//
// Streams a live CBR feed over `paths` TCP connections with the DMP pull
// discipline; pairs with dmp_client_cli.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "inet/server.hpp"

using namespace dmp::inet;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--bind IP] [--port N] [--paths K] [--kbps RATE]\n"
               "          [--duration SECONDS] [--sndbuf BYTES]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  ServerConfig config;
  config.port = 9000;
  double kbps = 600.0;
  config.duration_s = 60.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--bind") {
      config.bind_ip = next();
    } else if (arg == "--port") {
      config.port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--paths") {
      config.num_paths = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--kbps") {
      kbps = std::atof(next());
    } else if (arg == "--duration") {
      config.duration_s = std::atof(next());
    } else if (arg == "--sndbuf") {
      config.send_buffer_bytes = std::atoi(next());
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  config.mu_pps = kbps * 1000.0 / 8.0 / static_cast<double>(config.frame_bytes);

  try {
    DmpInetServer server(config);
    std::printf("dmp_server: %s:%u, %zu paths, %.0f kbps (%.1f pkts/s), "
                "%.0f s — waiting for the client...\n",
                config.bind_ip.c_str(), server.port(), config.num_paths, kbps,
                config.mu_pps, config.duration_s);
    const auto stats = server.run();
    std::printf("done: generated %lld packets, peak queue %zu\n",
                static_cast<long long>(stats.packets_generated),
                stats.max_queue_packets);
    for (std::size_t k = 0; k < stats.sent_per_path.size(); ++k) {
      std::printf("  path %zu carried %llu packets (%.1f%%)\n", k + 1,
                  static_cast<unsigned long long>(stats.sent_per_path[k]),
                  100.0 * static_cast<double>(stats.sent_per_path[k]) /
                      static_cast<double>(stats.packets_generated));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dmp_server: %s\n", e.what());
    return 1;
  }
  return 0;
}
