// Live broadcast over real TCP sockets (loopback demo of the Section-6
// implementation).  A DMP server streams a live feed over two TCP
// connections; the client throttles one path mid-broadcast-style to show
// the scheme shifting load with no explicit signalling.
//
//   $ ./live_broadcast [mu_pps] [duration_s]
//
// Set DMP_OBS=1 to attach the wall-clock observability layer: a server
// queue-depth time series (live_broadcast_probe.csv), per-path pull/frame
// counters, and a JSONL event log (live_broadcast_events.jsonl).
#include <cstdio>
#include <cstdlib>
#include <future>

#include "inet/client.hpp"
#include "inet/server.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "util/env.hpp"

using namespace dmp;
using namespace dmp::inet;

int main(int argc, char** argv) {
  const double mu = argc > 1 ? std::atof(argv[1]) : 400.0;
  const double duration = argc > 2 ? std::atof(argv[2]) : 5.0;
  const bool obs_on = env_int("DMP_OBS", 0) != 0;
  obs::MetricsRegistry server_metrics;
  obs::MetricsRegistry client_metrics;
  obs::EventLog events;

  ServerConfig server_cfg;
  server_cfg.num_paths = 2;
  server_cfg.mu_pps = mu;
  server_cfg.duration_s = duration;
  server_cfg.send_buffer_bytes = 8 * 1024;
  if (obs_on) {
    server_cfg.metrics = &server_metrics;
    server_cfg.events = &events;
    server_cfg.probe_interval_s = 0.1;
    server_cfg.probe_csv_path = "live_broadcast_probe.csv";
  }

  DmpInetServer server(server_cfg);
  std::printf("DMP server listening on 127.0.0.1:%u — streaming %.0f pkts/s "
              "(%.2f Mbps) for %.0f s over 2 TCP connections\n",
              server.port(), mu, mu * 1448 * 8 / 1e6, duration);

  ClientConfig client_cfg;
  client_cfg.port = server.port();
  client_cfg.num_paths = 2;
  client_cfg.mu_pps = mu;
  // Path 2 is constrained to ~25% of the stream's bandwidth: DMP must
  // route the bulk of the feed over path 1.
  client_cfg.read_rate_limit_bps = {0.0, mu * 1448 * 8 * 0.25};
  if (obs_on) client_cfg.metrics = &client_metrics;

  auto server_future =
      std::async(std::launch::async, [&server] { return server.run(); });
  DmpInetClient client(client_cfg);
  const auto report = client.run();
  const auto stats = server_future.get();

  std::printf("\nserver: generated %lld packets (peak queue %zu)\n",
              static_cast<long long>(stats.packets_generated),
              stats.max_queue_packets);
  std::printf("client: received %lld packets\n",
              static_cast<long long>(report.frames_received));
  const auto split = report.trace.path_split(2);
  std::printf("path split: %.1f%% on the fast path, %.1f%% on the throttled "
              "path\n",
              split[0] * 100.0, split[1] * 100.0);
  std::printf("out-of-order arrivals at the reassembly buffer: %.2f%%\n",
              report.trace.out_of_order_fraction() * 100.0);
  for (double tau : {0.5, 1.0, 2.0}) {
    std::printf("late packets with tau = %.1f s startup delay: %.3f%%\n", tau,
                report.trace.late_fraction_playback_order(
                    tau, stats.packets_generated) *
                    100.0);
  }
  if (obs_on) {
    events.write_jsonl("live_broadcast_events.jsonl");
    const auto* p0 = server_metrics.find_counter("server.pulls.path0");
    const auto* p1 = server_metrics.find_counter("server.pulls.path1");
    const auto* delay = client_metrics.find_histogram("client.delay_s");
    std::printf("\nobs: pulls %llu / %llu, delay p50/p99 = %.0f/%.0f ms; "
                "wrote live_broadcast_probe.csv, live_broadcast_events.jsonl"
                "\n",
                static_cast<unsigned long long>(p0 ? p0->value() : 0),
                static_cast<unsigned long long>(p1 ? p1->value() : 0),
                delay ? delay->quantile(0.5) * 1e3 : 0.0,
                delay ? delay->quantile(0.99) * 1e3 : 0.0);
  }
  return 0;
}
