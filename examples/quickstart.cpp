// Quickstart: stream a 600 kbps live video over two congested paths with
// DMP-streaming and report playback quality for a range of startup delays.
//
//   $ ./quickstart
//
// Walks through the three core API layers:
//   1. a packet-level session (network + background traffic + DMP scheme),
//   2. trace analysis (late fractions per startup delay),
//   3. the analytical model for the same setting.
#include <cstdio>

#include "model/composed_chain.hpp"
#include "stream/session.hpp"

using namespace dmp;

int main() {
  // --- 1. simulate: two independent paths, Table-1 config 2 bottlenecks,
  //        FTP+HTTP background traffic, a 50 pkt/s (600 kbps) live stream.
  SessionConfig config;
  config.path_configs = {table1_config(2), table1_config(2)};
  config.mu_pps = 50.0;
  config.duration_s = 600.0;
  config.seed = 42;

  std::printf("simulating %.0f s of DMP-streaming at %.0f pkts/s over two "
              "congested paths...\n",
              config.duration_s, config.mu_pps);
  const auto result = run_session(config);

  std::printf("\npath measurements (what tcpdump would report):\n");
  for (std::size_t k = 0; k < result.paths.size(); ++k) {
    const auto& m = result.paths[k];
    std::printf("  path %zu: loss %.3f, RTT %.0f ms, TO %.1f, carried %.0f%% "
                "of the stream\n",
                k + 1, m.loss_rate, m.rtt_s * 1e3, m.to_ratio,
                m.share * 100.0);
  }

  // --- 2. analyze the client trace.
  std::printf("\nplayback quality vs startup delay:\n");
  std::printf("  %8s %16s\n", "tau (s)", "late packets");
  for (double tau : {2.0, 4.0, 6.0, 8.0, 10.0}) {
    const double f = result.trace.late_fraction_playback_order(
        tau, result.packets_generated);
    std::printf("  %8.0f %15.2f%%\n", tau, f * 100.0);
  }

  // --- 3. the analytical model predicts the same setting from backlogged
  //        path parameters (Section 2.2's achievable-throughput process).
  std::printf("\nanalytical model (backlogged-probe parameters):\n");
  const auto probe = measure_backlogged_paths(table1_config(2), 1, 7, 400.0);
  TcpChainParams flow;
  flow.loss_rate = probe[0].loss_rate;
  flow.rtt_s = probe[0].rtt_s;
  flow.to_ratio = probe[0].to_ratio;
  ComposedParams model;
  model.flows = {flow, flow};
  model.mu_pps = config.mu_pps;
  const double sigma_a = 2.0 * TcpFlowChain(flow).achievable_throughput_pps();
  std::printf("  aggregate achievable throughput %.0f pkts/s -> sigma_a/mu "
              "= %.2f\n",
              sigma_a, sigma_a / config.mu_pps);
  for (double tau : {4.0, 10.0}) {
    model.tau_s = tau;
    DmpModelMonteCarlo mc(model, 1);
    const auto prediction = mc.run(1'000'000, 100'000);
    std::printf("  model late fraction at tau=%2.0f s: %.4f%%\n", tau,
                prediction.late_fraction * 100.0);
  }
  std::printf("\n(the paper's rule of thumb: sigma_a/mu >= 1.6 plus a ~10 s "
              "startup delay gives satisfactory quality)\n");
  return 0;
}
