// Standalone DMP streaming client.
//
//   $ ./dmp_client_cli --server 127.0.0.1 --port 9000 --paths 2 --kbps 600
//
// Connects K TCP flows to a dmp_server_cli instance, reassembles the
// stream, and reports playback quality.  The timeliness analysis compares
// the server's generation timestamps with this host's clock, so the late
// fractions are only meaningful when both ends share a clock (same
// machine) or the offset is externally corrected.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "inet/client.hpp"

using namespace dmp::inet;

int main(int argc, char** argv) {
  ClientConfig config;
  config.port = 9000;
  double kbps = 600.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "usage: %s [--server IP] [--port N] [--paths K] "
                     "[--kbps RATE]\n",
                     argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--server") {
      config.server_ip = next();
    } else if (arg == "--port") {
      config.port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--paths") {
      config.num_paths = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--kbps") {
      kbps = std::atof(next());
    } else {
      next();  // prints usage and exits
    }
  }
  config.mu_pps = kbps * 1000.0 / 8.0 / static_cast<double>(config.frame_bytes);

  try {
    std::printf("dmp_client: connecting %zu flows to %s:%u...\n",
                config.num_paths, config.server_ip.c_str(), config.port);
    DmpInetClient client(config);
    const auto report = client.run();

    std::printf("received %lld packets\n",
                static_cast<long long>(report.frames_received));
    const auto split = report.trace.path_split(config.num_paths);
    for (std::size_t k = 0; k < split.size(); ++k) {
      std::printf("  path %zu: %.1f%% of the stream\n", k + 1,
                  split[k] * 100.0);
    }
    std::printf("out-of-order at reassembly: %.2f%%\n",
                report.trace.out_of_order_fraction() * 100.0);
    if (config.server_ip != "127.0.0.1") {
      std::printf("(remote server: late fractions below include clock "
                  "offset between the hosts)\n");
    }
    for (double tau : {0.5, 1.0, 2.0, 5.0}) {
      std::printf("late packets at tau = %.1f s: %.4f%%\n", tau,
                  report.trace.late_fraction_playback_order(
                      tau, report.frames_received) *
                      100.0);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dmp_client: %s\n", e.what());
    return 1;
  }
  return 0;
}
