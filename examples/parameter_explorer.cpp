// Parameter explorer: answer "what startup delay does my setup need?"
// straight from the analytical model.
//
//   $ ./parameter_explorer <loss_rate> <rtt_ms> <TO> <video_kbps> [paths]
//   $ ./parameter_explorer 0.02 200 4 600 2
//
// Prints the achievable throughput, sigma_a/mu, the late-fraction curve,
// and the required startup delay for the paper's f < 1e-4 quality bar.
#include <cstdio>
#include <cstdlib>

#include "model/composed_chain.hpp"
#include "model/required_delay.hpp"

using namespace dmp;

int main(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr,
                 "usage: %s <loss_rate> <rtt_ms> <TO> <video_kbps> [paths=2]\n"
                 "e.g.:  %s 0.02 200 4 600 2\n",
                 argv[0], argv[0]);
    return 2;
  }
  const double p = std::atof(argv[1]);
  const double rtt_s = std::atof(argv[2]) / 1e3;
  const double to = std::atof(argv[3]);
  const double kbps = std::atof(argv[4]);
  const int paths = argc > 5 ? std::atoi(argv[5]) : 2;
  const double mu = kbps * 1000.0 / 8.0 / 1500.0;  // 1500-byte packets

  TcpChainParams flow;
  flow.loss_rate = p;
  flow.rtt_s = rtt_s;
  flow.to_ratio = to;
  const double sigma = TcpFlowChain(flow).achievable_throughput_pps();
  const double sigma_a = sigma * paths;

  std::printf("per-path achievable TCP throughput: %.1f pkts/s (%.0f kbps)\n",
              sigma, sigma * 1500 * 8 / 1000);
  std::printf("video rate: %.1f pkts/s (%.0f kbps) over %d path(s)\n", mu,
              kbps, paths);
  std::printf("sigma_a/mu = %.2f  (paper guidance: >= 1.6 for multipath, "
              ">= 2.0 for single path)\n\n",
              sigma_a / mu);

  if (sigma_a <= mu) {
    std::printf("the aggregate achievable throughput does not cover the "
                "video rate; no startup delay can help.\n");
    return 1;
  }

  ComposedParams params;
  for (int k = 0; k < paths; ++k) params.flows.push_back(flow);
  params.mu_pps = mu;

  std::printf("late-packet fraction vs startup delay:\n");
  for (double tau : {2.0, 4.0, 6.0, 8.0, 10.0, 15.0, 20.0}) {
    params.tau_s = tau;
    DmpModelMonteCarlo mc(params, 7);
    const auto result = mc.run(1'500'000, 150'000);
    std::printf("  tau = %5.1f s  ->  f = %.6f\n", tau, result.late_fraction);
  }

  RequiredDelayOptions options;
  options.tau_max_s = 120.0;
  const auto required = required_startup_delay(params, options);
  if (required.feasible) {
    std::printf("\nrequired startup delay for f < 1e-4: about %.0f s\n",
                required.tau_s);
  } else {
    std::printf("\nf < 1e-4 not reachable within %.0f s of startup delay\n",
                options.tau_max_s);
  }
  return 0;
}
