// Streaming across emulated Internet paths: the Section-6 experiment in
// miniature.  Streams a live feed over two ADSL-like paths (pass "hetero"
// to use an ADSL + transpacific pair instead), then checks the measurement
// against the analytical model — the full validation loop in one program.
//
//   $ ./wan_streaming [mu_pps] [duration_s] [hetero]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "emul/experiment.hpp"
#include "model/composed_chain.hpp"

using namespace dmp;
using namespace dmp::emul;

int main(int argc, char** argv) {
  InternetExperimentConfig config;
  const bool hetero =
      argc > 3 && std::string(argv[3]) == "hetero";
  config.paths = hetero ? std::vector<WanPathConfig>{adsl_fast_profile(),
                                                     transpacific_path_profile()}
                        : std::vector<WanPathConfig>{adsl_slow_profile(),
                                                     adsl_slow_profile()};
  config.mu_pps = argc > 1 ? std::atof(argv[1]) : (hetero ? 100.0 : 25.0);
  config.duration_s = argc > 2 ? std::atof(argv[2]) : 900.0;
  config.seed = 20260707;

  std::printf("streaming %.0f pkts/s (%.2f Mbps) for %.0f s over %s...\n",
              config.mu_pps, config.mu_pps * 1448 * 8 / 1e6,
              config.duration_s,
              hetero ? "an ADSL path + a transpacific path"
                     : "two ADSL paths");
  const auto result = run_internet_experiment(config);

  const char* names[] = {"ADSL path 1", hetero ? "transpacific (Hefei)"
                                               : "ADSL path 2"};
  for (std::size_t k = 0; k < result.paths.size(); ++k) {
    const auto& m = result.paths[k];
    std::printf("  %-22s loss %.3f  RTT %.0f ms  TO %.1f  share %.0f%%\n",
                names[k], m.loss_rate, m.rtt_s * 1e3, m.to_ratio,
                m.share * 100);
  }
  std::printf("  out-of-order at reassembly: %.2f%%\n",
              result.trace.out_of_order_fraction() * 100);

  // Feed the measured parameters to the model and compare (Fig. 7's loop).
  ComposedParams model;
  model.mu_pps = config.mu_pps;
  for (const auto& m : result.paths) {
    TcpChainParams flow;
    flow.loss_rate = std::max(m.loss_rate, 1e-5);
    flow.rtt_s = m.rtt_s;
    flow.to_ratio = std::max(m.to_ratio, 1.0);
    model.flows.push_back(flow);
  }
  std::printf("\n%8s %14s %14s\n", "tau (s)", "measured f", "model f");
  for (double tau : {4.0, 6.0, 8.0, 10.0}) {
    const double measured = result.trace.late_fraction_playback_order(
        tau, result.packets_generated);
    model.tau_s = tau;
    DmpModelMonteCarlo mc(model, 5);
    const double predicted = mc.run(1'000'000, 100'000).late_fraction;
    std::printf("%8.0f %14.6g %14.6g\n", tau, measured, predicted);
  }
  std::printf("\n(the paper's acceptance band: within a factor of 10)\n");
  return 0;
}
