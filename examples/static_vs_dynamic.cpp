// Static vs dynamic packet allocation, end to end in the packet simulator:
// the same network, the same video, two schemes.  Path 2 is busier than
// path 1; static streaming strands half the stream behind the congested
// bottleneck while DMP routes around it.
//
//   $ ./static_vs_dynamic [duration_s]
#include <cstdio>
#include <cstdlib>

#include "stream/session.hpp"

using namespace dmp;

namespace {

SessionConfig base_config(double duration_s) {
  SessionConfig config;
  config.path_configs = {table1_config(4), table1_config(3)};
  config.mu_pps = 60.0;
  config.duration_s = duration_s;
  config.seed = 99;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const double duration = argc > 1 ? std::atof(argv[1]) : 600.0;

  std::printf("streaming %.0f s of 720 kbps live video over an uneven path "
              "pair (config 4 + config 3)...\n\n",
              duration);

  auto config = base_config(duration);
  config.scheme = StreamScheme::kDmp;
  const auto dmp = run_session(config);

  config.scheme = StreamScheme::kStatic;
  const auto fixed = run_session(config);

  std::printf("%28s %12s %12s\n", "", "DMP", "static");
  std::printf("%28s %10.1f%% %10.1f%%\n", "share on the faster path",
              dmp.paths[0].share * 100.0, fixed.paths[0].share * 100.0);
  for (double tau : {4.0, 6.0, 8.0, 10.0}) {
    std::printf("%21s %.0f s %11.4f%% %11.4f%%\n", "late packets, tau =", tau,
                dmp.trace.late_fraction_playback_order(
                    tau, dmp.packets_generated) *
                    100.0,
                fixed.trace.late_fraction_playback_order(
                    tau, fixed.packets_generated) *
                    100.0);
  }
  std::printf("\nDMP infers the imbalance from TCP back-pressure alone and "
              "shifts load to the faster path;\nthe static odd/even split "
              "cannot, so its late fraction stays high (Section 7.4).\n");
  return 0;
}
