#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dmp {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(SimTime::millis(30), [&] { order.push_back(3); });
  sched.schedule_at(SimTime::millis(10), [&] { order.push_back(1); });
  sched.schedule_at(SimTime::millis(20), [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), SimTime::millis(30));
}

TEST(Scheduler, FifoTieBreakAtSameInstant) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.schedule_at(SimTime::millis(5), [&order, i] { order.push_back(i); });
  }
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, RelativeScheduling) {
  Scheduler sched;
  SimTime fired = SimTime::zero();
  sched.schedule_at(SimTime::millis(10), [&] {
    sched.schedule_after(SimTime::millis(25), [&] { fired = sched.now(); });
  });
  sched.run();
  EXPECT_EQ(fired, SimTime::millis(35));
}

TEST(Scheduler, RejectsPastEvents) {
  Scheduler sched;
  sched.schedule_at(SimTime::millis(10), [] {});
  sched.run();
  EXPECT_THROW(sched.schedule_at(SimTime::millis(5), [] {}),
               std::invalid_argument);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  int fired = 0;
  auto handle = sched.schedule_at(SimTime::millis(10), [&] { ++fired; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  sched.run();
  EXPECT_EQ(fired, 0);
}

TEST(Scheduler, HandleNotPendingAfterFiring) {
  Scheduler sched;
  auto handle = sched.schedule_at(SimTime::millis(1), [] {});
  sched.run();
  EXPECT_FALSE(handle.pending());
}

TEST(Scheduler, RunUntilStopsAtHorizonAndAdvancesClock) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(SimTime::millis(10), [&] { ++fired; });
  sched.schedule_at(SimTime::millis(50), [&] { ++fired; });
  const auto executed = sched.run_until(SimTime::millis(20));
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), SimTime::millis(20));
  EXPECT_EQ(sched.pending_events(), 1u);
  sched.run();
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler sched;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 100) sched.schedule_after(SimTime::millis(1), tick);
  };
  sched.schedule_at(SimTime::zero(), tick);
  const auto executed = sched.run();
  EXPECT_EQ(executed, 100u);
  EXPECT_EQ(sched.now(), SimTime::millis(99));
}

TEST(Scheduler, ReschedulingPatternLikeTcpTimer) {
  // Cancel-and-rearm repeatedly; only the final timer instance fires.
  Scheduler sched;
  int fired = 0;
  EventHandle timer;
  for (int i = 0; i < 50; ++i) {
    timer.cancel();
    timer = sched.schedule_at(SimTime::millis(100 + i), [&] { ++fired; });
  }
  sched.run();
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, CountsExecutedAndCancelledSeparately) {
  Scheduler sched;
  auto doomed = sched.schedule_at(SimTime::millis(5), [] {});
  sched.schedule_at(SimTime::millis(10), [] {});
  sched.schedule_at(SimTime::millis(20), [] {});
  EXPECT_EQ(sched.events_pending(), 3u);
  EXPECT_EQ(sched.events_scheduled(), 3u);

  doomed.cancel();
  // Lazy cancellation: the entry stays in the heap until popped, so it
  // still counts as pending until the run drains it.
  EXPECT_EQ(sched.events_pending(), 3u);

  sched.run();
  EXPECT_EQ(sched.events_executed(), 2u);
  EXPECT_EQ(sched.events_cancelled(), 1u);
  EXPECT_EQ(sched.events_pending(), 0u);
  EXPECT_EQ(sched.max_events_pending(), 3u);
}

TEST(Scheduler, MaxPendingTracksHighWater) {
  Scheduler sched;
  // Burst of 5, drained, then a burst of 2: high water must stay at 5.
  for (int i = 0; i < 5; ++i) sched.schedule_at(SimTime::millis(i + 1), [] {});
  sched.run();
  sched.schedule_at(SimTime::millis(100), [] {});
  sched.schedule_at(SimTime::millis(101), [] {});
  sched.run();
  EXPECT_EQ(sched.max_events_pending(), 5u);
  EXPECT_EQ(sched.events_executed(), 7u);
  EXPECT_EQ(sched.events_cancelled(), 0u);
}

TEST(Scheduler, StepHonorsHorizon) {
  Scheduler sched;
  sched.schedule_at(SimTime::millis(10), [] {});
  EXPECT_FALSE(sched.step(SimTime::millis(5)));
  EXPECT_TRUE(sched.step(SimTime::millis(10)));
  EXPECT_FALSE(sched.step(SimTime::max()));
}

}  // namespace
}  // namespace dmp
