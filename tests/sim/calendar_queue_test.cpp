// Differential suite for the calendar-queue DES backend.
//
// Two layers:
//   * raw CalendarQueue vs std::priority_queue over the same (when, seq)
//     keys — pop order must be bit-identical under randomized workloads
//     that hit every structural path (monotone appends, out-of-order
//     inserts, same-nanosecond ties, rewind-on-push, bucket growth/shrink,
//     gap-regime changes that force width recalibration);
//   * full Scheduler(kHeap) vs Scheduler(kCalendar) driven by one mixed
//     op stream (schedule / cancel / post / port / defer+arm) — execution
//     order, clocks and every counter must match exactly.
#include "sim/calendar_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <random>
#include <vector>

#include "sim/scheduler.hpp"
#include "util/sim_time.hpp"

namespace dmp {
namespace {

struct Key {
  SimTime when;
  std::uint64_t seq;
};

struct KeyGreater {
  bool operator()(const Key& a, const Key& b) const {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }
};

// Reference model: a binary heap over the same keys.
using RefQueue = std::priority_queue<Key, std::vector<Key>, KeyGreater>;

void expect_same_pop(CalendarQueue<Key>& cal, RefQueue& ref) {
  ASSERT_EQ(cal.size(), ref.size());
  ASSERT_FALSE(cal.empty());
  const Key want = ref.top();
  ref.pop();
  EXPECT_EQ(cal.min().when.ns(), want.when.ns());
  EXPECT_EQ(cal.min().seq, want.seq);
  const Key got = cal.pop_min();
  ASSERT_EQ(got.when.ns(), want.when.ns());
  ASSERT_EQ(got.seq, want.seq);
}

void drain_same(CalendarQueue<Key>& cal, RefQueue& ref) {
  while (!ref.empty()) expect_same_pop(cal, ref);
  EXPECT_TRUE(cal.empty());
  EXPECT_EQ(cal.size(), 0u);
}

TEST(CalendarQueue, RandomizedDifferentialAgainstHeap) {
  std::mt19937_64 rng(20070811);
  CalendarQueue<Key> cal;
  RefQueue ref;
  std::uint64_t seq = 0;
  std::int64_t clock_ns = 0;  // keys mostly advance with this
  // 100k mixed ops: 55% push near the clock, 10% push a same-time tie,
  // 5% push a far-future sentinel, 30% pop.
  for (int op = 0; op < 100000; ++op) {
    const int kind = static_cast<int>(rng() % 100);
    if (kind < 55 || ref.empty()) {
      clock_ns += static_cast<std::int64_t>(rng() % 5000);
      const Key k{SimTime::nanos(clock_ns), seq++};
      cal.push(k);
      ref.push(k);
    } else if (kind < 65) {
      // Exact tie with the previous key: FIFO order decided by seq alone.
      const Key k{SimTime::nanos(clock_ns), seq++};
      cal.push(k);
      ref.push(k);
    } else if (kind < 70) {
      // Far-future sentinel (idle timer): must not poison the day width.
      const Key k{SimTime::nanos(clock_ns + 10'000'000'000), seq++};
      cal.push(k);
      ref.push(k);
    } else {
      expect_same_pop(cal, ref);
    }
  }
  drain_same(cal, ref);
}

TEST(CalendarQueue, SameTimeBurstPushedInReverseSeqOrder) {
  // Every push lands before the bucket tail, forcing the sorted-insert
  // path; pops must still come out in ascending seq.
  CalendarQueue<Key> cal;
  RefQueue ref;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const Key k{SimTime::millis(5), 1000 - i};
    cal.push(k);
    ref.push(k);
  }
  drain_same(cal, ref);
}

TEST(CalendarQueue, RewindOnPushBelowCurrentDay) {
  // Advance the cursor deep into the calendar, then push keys below every
  // pending event — the rewind path must keep the order exact.
  std::mt19937_64 rng(42);
  CalendarQueue<Key> cal;
  RefQueue ref;
  std::uint64_t seq = 0;
  for (int i = 0; i < 2000; ++i) {
    const Key k{SimTime::nanos(1'000'000 + i * 777), seq++};
    cal.push(k);
    ref.push(k);
  }
  for (int i = 0; i < 1500; ++i) expect_same_pop(cal, ref);
  for (int i = 0; i < 200; ++i) {
    // Below the first batch entirely (the scheduler forbids this, the raw
    // structure must not).
    const Key k{SimTime::nanos(static_cast<std::int64_t>(rng() % 1000)),
                seq++};
    cal.push(k);
    ref.push(k);
  }
  drain_same(cal, ref);
}

TEST(CalendarQueue, BucketCountGrowsAndShrinksWithOccupancy) {
  CalendarQueue<Key> cal;
  RefQueue ref;
  const std::size_t initial = cal.bucket_count();
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const Key k{SimTime::nanos(static_cast<std::int64_t>(i) * 1000), i};
    cal.push(k);
    ref.push(k);
  }
  EXPECT_GT(cal.bucket_count(), initial);
  drain_same(cal, ref);
  // Halving stops at the floor once the queue drains.
  EXPECT_EQ(cal.bucket_count(), initial);
}

TEST(CalendarQueue, DayWidthRecalibratesAcrossGapRegimes) {
  // Steady-size queue (push one, pop one) never triggers an occupancy
  // resize, so only the gap EMA can fix the day width.  Run a dense
  // regime (~100 ns gaps) then a sparse one (~1 ms gaps); the day shift
  // must adapt to each, and ordering must hold throughout.
  CalendarQueue<Key> cal;
  RefQueue ref;
  std::uint64_t seq = 0;
  std::int64_t clock_ns = 0;
  auto steady = [&](std::int64_t gap_ns, int pops) {
    for (int i = 0; i < pops; ++i) {
      clock_ns += gap_ns;
      const Key k{SimTime::nanos(clock_ns), seq++};
      cal.push(k);
      ref.push(k);
      expect_same_pop(cal, ref);
    }
  };
  // Prime with a standing queue so pushes and pops interleave over a
  // non-empty set.
  for (int i = 0; i < 32; ++i) {
    clock_ns += 100;
    const Key k{SimTime::nanos(clock_ns), seq++};
    cal.push(k);
    ref.push(k);
  }
  steady(100, 8000);
  const int dense_shift = cal.day_shift();
  steady(1'000'000, 8000);
  const int sparse_shift = cal.day_shift();
  EXPECT_LT(dense_shift, sparse_shift);
  drain_same(cal, ref);
}

// ---------------------------------------------------------------------------
// Scheduler-level differential: one op stream, two backends.

struct SchedLog {
  std::vector<std::int64_t> fired_at_ns;
  std::vector<int> fired_id;
};

// Emulates the link-style deferred FIFO: claimed (when, seq) keys wait in
// order, only the head is armed, the port pops and re-arms.
struct DeferFifo {
  Scheduler* sched = nullptr;
  SchedLog* log = nullptr;
  std::vector<std::pair<Scheduler::Deferred, int>> q;
  std::size_t head = 0;
  std::uint32_t port_id = 0;

  static void fire(void* ctx) {
    auto* self = static_cast<DeferFifo*>(ctx);
    const auto item = self->q[self->head++];
    if (self->head < self->q.size()) {
      self->sched->arm_deferred(self->q[self->head].first, self->port_id);
    } else {
      self->q.clear();
      self->head = 0;
    }
    self->log->fired_at_ns.push_back(self->sched->now().ns());
    self->log->fired_id.push_back(item.second);
  }

  void push(SimTime when, int id) {
    const auto d = sched->defer_at(when);
    const bool was_empty = head == q.size();
    q.emplace_back(d, id);
    if (was_empty) sched->arm_deferred(d, port_id);
  }
};

SchedLog drive_mixed_workload(SchedulerBackend backend) {
  Scheduler sched(backend);
  SchedLog log;
  std::mt19937_64 rng(777);
  std::vector<EventHandle> handles;
  int next_id = 0;

  // One registered port firing a fixed id, plus a deferred FIFO.
  struct PortCtx {
    Scheduler* sched;
    SchedLog* log;
  } port_ctx{&sched, &log};
  const std::uint32_t port = sched.register_port(
      [](void* ctx) {
        auto* c = static_cast<PortCtx*>(ctx);
        c->log->fired_at_ns.push_back(c->sched->now().ns());
        c->log->fired_id.push_back(-1);
      },
      &port_ctx);

  DeferFifo fifo;
  fifo.sched = &sched;
  fifo.log = &log;
  fifo.port_id = sched.register_port(&DeferFifo::fire, &fifo);
  SimTime fifo_tail = SimTime::zero();  // keys must be nondecreasing

  for (int round = 0; round < 200; ++round) {
    for (int op = 0; op < 50; ++op) {
      const int kind = static_cast<int>(rng() % 100);
      const SimTime when =
          sched.now() + SimTime::nanos(static_cast<std::int64_t>(
                            rng() % 2'000'000));
      if (kind < 35) {
        const int id = next_id++;
        handles.push_back(sched.schedule_at(when, [&log, &sched, id] {
          log.fired_at_ns.push_back(sched.now().ns());
          log.fired_id.push_back(id);
        }));
      } else if (kind < 55) {
        const int id = next_id++;
        sched.post_at(when, [&log, &sched, id] {
          log.fired_at_ns.push_back(sched.now().ns());
          log.fired_id.push_back(id);
        });
      } else if (kind < 70) {
        sched.post_port_at(when, port);
      } else if (kind < 85) {
        if (when > fifo_tail) fifo_tail = when;
        fifo.push(fifo_tail, next_id++);
      } else if (!handles.empty()) {
        const std::size_t pick = rng() % handles.size();
        handles[pick].cancel();
        handles.erase(handles.begin() +
                      static_cast<std::ptrdiff_t>(pick));
      }
    }
    sched.run_until(sched.now() + SimTime::nanos(static_cast<std::int64_t>(
                                      rng() % 3'000'000)));
  }
  sched.run();

  // Counters ride along in the log tail for a single comparison.
  log.fired_at_ns.push_back(static_cast<std::int64_t>(sched.events_executed()));
  log.fired_at_ns.push_back(
      static_cast<std::int64_t>(sched.events_cancelled()));
  log.fired_at_ns.push_back(
      static_cast<std::int64_t>(sched.max_events_pending()));
  log.fired_at_ns.push_back(static_cast<std::int64_t>(sched.pending_events()));
  return log;
}

TEST(SchedulerBackendDifferential, MixedWorkloadIsBitIdentical) {
  const SchedLog heap = drive_mixed_workload(SchedulerBackend::kHeap);
  const SchedLog cal = drive_mixed_workload(SchedulerBackend::kCalendar);
  ASSERT_GT(heap.fired_id.size(), 1000u);
  ASSERT_EQ(heap.fired_id.size(), cal.fired_id.size());
  ASSERT_EQ(heap.fired_at_ns.size(), cal.fired_at_ns.size());
  for (std::size_t i = 0; i < heap.fired_id.size(); ++i) {
    ASSERT_EQ(heap.fired_id[i], cal.fired_id[i]) << "index " << i;
  }
  for (std::size_t i = 0; i < heap.fired_at_ns.size(); ++i) {
    ASSERT_EQ(heap.fired_at_ns[i], cal.fired_at_ns[i]) << "index " << i;
  }
}

TEST(SchedulerBackend, ParseAndName) {
  EXPECT_EQ(parse_scheduler_backend("calendar"), SchedulerBackend::kCalendar);
  EXPECT_EQ(parse_scheduler_backend("heap"), SchedulerBackend::kHeap);
  EXPECT_THROW(parse_scheduler_backend("splay"), std::invalid_argument);
  EXPECT_STREQ(scheduler_backend_name(SchedulerBackend::kCalendar),
               "calendar");
  EXPECT_STREQ(scheduler_backend_name(SchedulerBackend::kHeap), "heap");
  EXPECT_EQ(Scheduler{}.backend(), SchedulerBackend::kCalendar);
  EXPECT_EQ(Scheduler{SchedulerBackend::kHeap}.backend(),
            SchedulerBackend::kHeap);
}

}  // namespace
}  // namespace dmp
