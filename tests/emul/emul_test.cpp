#include <gtest/gtest.h>

#include "emul/experiment.hpp"
#include "emul/wan_path.hpp"
#include "tcp/connection.hpp"

namespace dmp::emul {
namespace {

TEST(WanPath, DeliversPacketsWithBaseDelay) {
  Scheduler sched;
  WanPathConfig config;
  config.loss_good = 1e-9;  // effectively lossless
  config.loss_bad = 1e-9;
  config.jitter_mean_s = 1e-9;
  WanPath path(sched, config, Rng(1));
  auto inject = path.attach_source(1);
  SimTime arrival = SimTime::zero();
  path.register_sink(1, [&](const Packet&) { arrival = sched.now(); });
  Packet p;
  p.flow = 1;
  p.size_bytes = kDataPacketBytes;
  inject(p);
  sched.run_until(SimTime::seconds(1));
  // base OWD 30 ms + serialization 6 ms at 2 Mbps.
  EXPECT_NEAR(arrival.to_seconds(), 0.036, 0.002);
}

TEST(WanPath, LossRateTracksConfiguredProcess) {
  Scheduler sched;
  WanPathConfig config;
  config.loss_good = 0.02;
  config.loss_bad = 0.02;  // degenerate: constant loss
  WanPath path(sched, config, Rng(2));
  auto inject = path.attach_source(1);
  path.register_sink(1, [](const Packet&) {});
  Packet p;
  p.flow = 1;
  p.size_bytes = 100;
  int sent = 20000;
  for (int i = 0; i < sent; ++i) {
    inject(p);
    sched.run_until(sched.now() + SimTime::millis(2));  // avoid buffer drops
  }
  sched.run();
  const auto counters = path.flow_counters(1);
  EXPECT_EQ(counters.arrivals, static_cast<std::uint64_t>(sent));
  const double measured = static_cast<double>(counters.drops) /
                          static_cast<double>(counters.arrivals);
  EXPECT_NEAR(measured, 0.02, 0.005);
}

TEST(WanPath, GilbertElliottStateVisitsBothRegimes) {
  Scheduler sched;
  WanPathConfig config;
  config.mean_good_s = 5.0;
  config.mean_bad_s = 5.0;
  WanPath path(sched, config, Rng(3));
  sched.schedule_at(SimTime::seconds(500), [] {});
  sched.run();
  EXPECT_NEAR(path.time_fraction_bad(), 0.5, 0.2);
}

TEST(WanPath, FifoPreservedThroughJitter) {
  Scheduler sched;
  WanPathConfig config;
  config.loss_good = 1e-9;
  config.loss_bad = 1e-9;
  config.jitter_mean_s = 0.02;  // strong jitter
  WanPath path(sched, config, Rng(4));
  auto inject = path.attach_source(1);
  std::vector<std::int64_t> seqs;
  path.register_sink(1, [&](const Packet& p) { seqs.push_back(p.seq); });
  for (int i = 0; i < 200; ++i) {
    // Paced injections so the access buffer (60 packets) never overflows;
    // the property under test is ordering through the jitter stage.
    sched.schedule_at(SimTime::millis(2 * i), [&inject, i] {
      Packet p;
      p.flow = 1;
      p.seq = i;
      p.size_bytes = 200;
      inject(p);
    });
  }
  sched.run();
  ASSERT_EQ(seqs.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(seqs[static_cast<size_t>(i)], i);
}

TEST(WanPath, TcpTransfersReliablyAcrossIt) {
  Scheduler sched;
  WanPath path(sched, adsl_fast_profile(), Rng(5));
  auto conn = make_connection(sched, 1, path, default_video_tcp());
  std::vector<std::int64_t> delivered;
  conn.sink->set_deliver_callback(
      [&](std::int64_t tag, SimTime) { delivered.push_back(tag); });
  int enqueued = 0;
  const int total = 3000;
  auto pump = [&] {
    while (enqueued < total && conn.sender->enqueue(enqueued)) ++enqueued;
  };
  conn.sender->set_space_callback(pump);
  pump();
  sched.run_until(SimTime::seconds(300));
  ASSERT_EQ(delivered.size(), static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    ASSERT_EQ(delivered[static_cast<std::size_t>(i)], i);
  }
}

TEST(InternetExperiment, ProducesTraceAndPathEstimates) {
  InternetExperimentConfig config;
  config.paths = {adsl_fast_profile(), adsl_fast_profile()};
  config.mu_pps = 50.0;
  config.duration_s = 300.0;
  config.seed = 6;
  const auto result = run_internet_experiment(config);
  EXPECT_EQ(result.packets_generated, 15000);
  EXPECT_GT(result.trace.arrivals(), 14000u);
  ASSERT_EQ(result.paths.size(), 2u);
  for (const auto& m : result.paths) {
    EXPECT_GT(m.loss_rate, 0.001);
    EXPECT_LT(m.loss_rate, 0.1);
    EXPECT_GT(m.rtt_s, 0.06);
    EXPECT_LT(m.rtt_s, 0.4);
    EXPECT_GT(m.to_ratio, 1.0);
  }
  EXPECT_NEAR(result.paths[0].share + result.paths[1].share, 1.0, 1e-9);
}

TEST(InternetExperiment, HeterogeneousPathsSkewTheSplit) {
  InternetExperimentConfig config;
  config.paths = {adsl_fast_profile(), transpacific_path_profile()};
  config.mu_pps = 100.0;
  config.duration_s = 400.0;
  config.seed = 7;
  const auto result = run_internet_experiment(config);
  // DMP's split must follow achievable throughput: the transpacific
  // profile is longer but much cleaner (loss ~0.4% vs ~1.6%), so it
  // carries the larger share despite the higher RTT.
  EXPECT_GT(result.paths[1].share, result.paths[0].share);
  EXPECT_LT(result.paths[1].loss_rate, result.paths[0].loss_rate);
  // Transpacific RTT clearly larger.
  EXPECT_GT(result.paths[1].rtt_s, result.paths[0].rtt_s);
}

TEST(InternetExperiment, LateFractionsDecreaseWithTau) {
  InternetExperimentConfig config;
  config.paths = {adsl_fast_profile(), adsl_fast_profile()};
  config.mu_pps = 50.0;
  config.duration_s = 600.0;
  config.seed = 8;
  const auto result = run_internet_experiment(config);
  double prev = 1.1;
  for (double tau : {2.0, 4.0, 6.0, 8.0, 10.0}) {
    const double f = result.trace.late_fraction_playback_order(
        tau, result.packets_generated);
    EXPECT_LE(f, prev + 1e-12);
    prev = f;
  }
}

TEST(InternetExperiment, RejectsEmptyPathList) {
  InternetExperimentConfig config;
  EXPECT_THROW(run_internet_experiment(config), std::invalid_argument);
}

}  // namespace
}  // namespace dmp::emul
