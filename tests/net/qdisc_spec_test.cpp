// Grammar tests for the DMP_QDISC spec parser: accepted forms, pinned
// error messages for the rejection classes (unknown kind, empty / garbage
// / out-of-range / surplus parameters), and a truncation-and-mutation fuzz
// sweep — every input must either parse or throw std::invalid_argument
// naming the spec; nothing may crash or silently mis-parse.
#include "net/qdisc/queue_discipline.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace dmp {
namespace {

std::string error_of(const std::string& spec) {
  try {
    QdiscSpec::parse(spec);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(QdiscSpec, ParsesEveryAcceptedForm) {
  const auto droptail = QdiscSpec::parse("droptail");
  EXPECT_TRUE(droptail.droptail());
  EXPECT_STREQ(droptail.kind_name(), "droptail");
  EXPECT_EQ(droptail.text, "droptail");

  const auto pie = QdiscSpec::parse("pie");
  EXPECT_EQ(pie.kind, QdiscSpec::Kind::kPie);
  EXPECT_DOUBLE_EQ(pie.target_s, 0.0);  // 0 = kind default at build time

  const auto pie_target = QdiscSpec::parse("pie:20");
  EXPECT_DOUBLE_EQ(pie_target.target_s, 0.020);
  EXPECT_DOUBLE_EQ(pie_target.interval_s, 0.0);

  const auto pie_both = QdiscSpec::parse("pie:20,30");
  EXPECT_DOUBLE_EQ(pie_both.target_s, 0.020);
  EXPECT_DOUBLE_EQ(pie_both.interval_s, 0.030);

  const auto fq = QdiscSpec::parse("fq_pie:8");
  EXPECT_EQ(fq.kind, QdiscSpec::Kind::kFqPie);
  EXPECT_EQ(fq.flows, 8);

  const auto codel = QdiscSpec::parse("codel:5,100");
  EXPECT_EQ(codel.kind, QdiscSpec::Kind::kCoDel);
  EXPECT_DOUBLE_EQ(codel.target_s, 0.005);
  EXPECT_DOUBLE_EQ(codel.interval_s, 0.100);
  EXPECT_FALSE(codel.droptail());
}

TEST(QdiscSpec, FractionalMillisecondsAreAccepted) {
  const auto spec = QdiscSpec::parse("codel:0.5,12.5");
  EXPECT_DOUBLE_EQ(spec.target_s, 0.0005);
  EXPECT_DOUBLE_EQ(spec.interval_s, 0.0125);
}

TEST(QdiscSpec, UnknownKindNamesTheSpecAndGrammar) {
  const std::string error = error_of("red");
  EXPECT_NE(error.find("unknown qdisc 'red'"), std::string::npos) << error;
  EXPECT_NE(error.find(qdisc_spec_grammar()), std::string::npos) << error;
}

TEST(QdiscSpec, CaseAndWhitespaceAreNotForgiven) {
  // The grammar is exact-match: benches must not half-accept a typo.
  for (const char* spec : {"PIE", "pie ", " pie", "drop-tail", "droptail:",
                           "fqpie", "pie::", "codel,5"}) {
    EXPECT_THROW(QdiscSpec::parse(spec), std::invalid_argument) << spec;
  }
}

TEST(QdiscSpec, EmptyParameterListRejected) {
  for (const char* spec : {"pie:", "codel:", "fq_pie:"}) {
    const std::string error = error_of(spec);
    EXPECT_NE(error.find("empty parameter list"), std::string::npos)
        << spec << " -> " << error;
  }
}

TEST(QdiscSpec, GarbageParametersRejected) {
  EXPECT_NE(error_of("pie:abc").find("bad target 'abc'"), std::string::npos);
  EXPECT_NE(error_of("pie:20,xyz").find("bad tupdate 'xyz'"),
            std::string::npos);
  EXPECT_NE(error_of("codel:nan").find("bad target 'nan'"),
            std::string::npos);
  EXPECT_NE(error_of("pie:5x").find("bad target '5x'"), std::string::npos);
  EXPECT_NE(error_of("fq_pie:abc").find("bad flow count 'abc'"),
            std::string::npos);
  // strtol stops at the '.': trailing garbage, not a rounded flow count.
  EXPECT_NE(error_of("fq_pie:2.5").find("bad flow count '2.5'"),
            std::string::npos);
}

TEST(QdiscSpec, OutOfRangeParametersRejected) {
  EXPECT_NE(error_of("pie:0").find("out of range"), std::string::npos);
  EXPECT_NE(error_of("pie:-5").find("out of range"), std::string::npos);
  EXPECT_NE(error_of("pie:10001").find("out of range"), std::string::npos);
  EXPECT_NE(error_of("codel:5,60001").find("out of range"),
            std::string::npos);
  EXPECT_NE(error_of("fq_pie:0").find("out of range [1, 4096]"),
            std::string::npos);
  EXPECT_NE(error_of("fq_pie:4097").find("out of range [1, 4096]"),
            std::string::npos);
}

TEST(QdiscSpec, SurplusParametersRejected) {
  for (const char* spec : {"pie:1,2,3", "codel:5,100,7"}) {
    const std::string error = error_of(spec);
    EXPECT_NE(error.find("too many parameters"), std::string::npos)
        << spec << " -> " << error;
  }
}

TEST(QdiscSpec, EveryTruncationParsesOrThrowsCleanly) {
  // Every prefix of every accepted spelling: never a crash, never an
  // unnamed error.
  for (const std::string full : {"droptail", "pie:20,30", "fq_pie:64",
                                 "codel:5,100"}) {
    for (std::size_t len = 0; len <= full.size(); ++len) {
      const std::string prefix = full.substr(0, len);
      try {
        const auto spec = QdiscSpec::parse(prefix);
        EXPECT_EQ(spec.text, prefix);
      } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("qdisc"), std::string::npos)
            << "'" << prefix << "' -> " << e.what();
      }
    }
  }
}

TEST(QdiscSpec, MutationFuzzNeverCrashesOrMisparses) {
  // Seeded mutation sweep over the accepted spellings: flip/insert/delete
  // one byte at a time.  Every outcome must be a clean parse of one of
  // the four kinds or an invalid_argument — anything else (other throw
  // types, crashes) fails the test by escaping the catch.
  const std::vector<std::string> corpus{"droptail", "pie", "pie:15,15",
                                        "fq_pie:64", "codel:5,100"};
  Rng rng(2007);
  const std::string alphabet = "abcdefpqz0189.,:-+e _";
  int parsed = 0, rejected = 0;
  for (int round = 0; round < 4000; ++round) {
    std::string s = corpus[static_cast<std::size_t>(
        rng.uniform() * static_cast<double>(corpus.size()))];
    const auto pos =
        static_cast<std::size_t>(rng.uniform() * static_cast<double>(s.size()));
    const char c = alphabet[static_cast<std::size_t>(
        rng.uniform() * static_cast<double>(alphabet.size()))];
    const double op = rng.uniform();
    if (op < 0.4) {
      s[pos] = c;
    } else if (op < 0.7) {
      s.insert(pos, 1, c);
    } else if (!s.empty()) {
      s.erase(pos, 1);
    }
    try {
      const auto spec = QdiscSpec::parse(s);
      const std::string kind = spec.kind_name();
      EXPECT_TRUE(kind == "droptail" || kind == "pie" || kind == "fq_pie" ||
                  kind == "codel");
      ++parsed;
    } catch (const std::invalid_argument&) {
      ++rejected;
    }
  }
  // The sweep must exercise both outcomes to mean anything.
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

}  // namespace
}  // namespace dmp
