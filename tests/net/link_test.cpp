#include "net/link.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dmp {
namespace {

Packet data_packet(FlowId flow, std::int64_t seq,
                   std::uint32_t bytes = kDataPacketBytes) {
  Packet p;
  p.flow = flow;
  p.seq = seq;
  p.size_bytes = bytes;
  return p;
}

TEST(Link, DeliversAfterTransmissionPlusPropagation) {
  Scheduler sched;
  // 1500 B at 1.2 Mbps = 10 ms serialization; + 40 ms propagation = 50 ms.
  Link link(sched, LinkConfig{1.2e6, SimTime::millis(40), 0});
  SimTime delivered = SimTime::zero();
  link.set_receiver([&](const Packet&) { delivered = sched.now(); });
  link.send(data_packet(1, 0));
  sched.run();
  EXPECT_EQ(delivered, SimTime::millis(50));
}

TEST(Link, SerializesBackToBackPackets) {
  Scheduler sched;
  Link link(sched, LinkConfig{1.2e6, SimTime::millis(40), 10});
  std::vector<SimTime> deliveries;
  link.set_receiver([&](const Packet&) { deliveries.push_back(sched.now()); });
  for (int i = 0; i < 3; ++i) link.send(data_packet(1, i));
  sched.run();
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0], SimTime::millis(50));
  EXPECT_EQ(deliveries[1], SimTime::millis(60));  // pipelined: +1 tx time
  EXPECT_EQ(deliveries[2], SimTime::millis(70));
}

TEST(Link, DropTailWhenBufferFull) {
  Scheduler sched;
  Link link(sched, LinkConfig{1.2e6, SimTime::millis(1), 2});
  int received = 0;
  link.set_receiver([&](const Packet&) { ++received; });
  // 1 in flight + 2 queued + 2 dropped.
  for (int i = 0; i < 5; ++i) link.send(data_packet(7, i));
  sched.run();
  EXPECT_EQ(received, 3);
  EXPECT_EQ(link.total_drops(), 2u);
  EXPECT_EQ(link.total_arrivals(), 5u);
  EXPECT_EQ(link.flow_counters(7).drops, 2u);
  EXPECT_EQ(link.flow_counters(7).arrivals, 5u);
}

TEST(Link, UnboundedBufferNeverDrops) {
  Scheduler sched;
  Link link(sched, LinkConfig{1.2e6, SimTime::millis(1), 0});
  int received = 0;
  link.set_receiver([&](const Packet&) { ++received; });
  for (int i = 0; i < 500; ++i) link.send(data_packet(1, i));
  sched.run();
  EXPECT_EQ(received, 500);
  EXPECT_EQ(link.total_drops(), 0u);
}

TEST(Link, PreservesFifoOrder) {
  Scheduler sched;
  Link link(sched, LinkConfig{10e6, SimTime::millis(5), 100});
  std::vector<std::int64_t> seqs;
  link.set_receiver([&](const Packet& p) { seqs.push_back(p.seq); });
  for (int i = 0; i < 50; ++i) link.send(data_packet(1, i));
  sched.run();
  ASSERT_EQ(seqs.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(seqs[static_cast<size_t>(i)], i);
}

TEST(Link, PerFlowCountersAreSeparate) {
  Scheduler sched;
  Link link(sched, LinkConfig{1.2e6, SimTime::millis(1), 1});
  link.set_receiver([](const Packet&) {});
  link.send(data_packet(1, 0));  // in flight
  link.send(data_packet(2, 0));  // queued
  link.send(data_packet(3, 0));  // dropped
  sched.run();
  EXPECT_EQ(link.flow_counters(1).drops, 0u);
  EXPECT_EQ(link.flow_counters(2).drops, 0u);
  EXPECT_EQ(link.flow_counters(3).drops, 1u);
  EXPECT_EQ(link.flow_counters(99).arrivals, 0u);
}

TEST(Link, SmallPacketsTransmitFaster) {
  Scheduler sched;
  Link link(sched, LinkConfig{1e6, SimTime::zero(), 0});
  std::vector<SimTime> deliveries;
  link.set_receiver([&](const Packet&) { deliveries.push_back(sched.now()); });
  link.send(data_packet(1, 0, 1000));  // 8 ms at 1 Mbps
  link.send(data_packet(1, 1, 125));   // 1 ms
  sched.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], SimTime::millis(8));
  EXPECT_EQ(deliveries[1], SimTime::millis(9));
}

TEST(Link, UtilizationReflectsBusyTime) {
  Scheduler sched;
  Link link(sched, LinkConfig{1.2e6, SimTime::zero(), 0});
  link.set_receiver([](const Packet&) {});
  // 10 packets x 10 ms = 100 ms busy.
  for (int i = 0; i < 10; ++i) link.send(data_packet(1, i));
  sched.run();
  EXPECT_NEAR(link.utilization(SimTime::millis(200)), 0.5, 1e-9);
}

TEST(Link, RejectsNonPositiveBandwidth) {
  Scheduler sched;
  EXPECT_THROW(Link(sched, LinkConfig{0.0, SimTime::zero(), 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dmp
