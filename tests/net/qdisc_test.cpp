// Differential and integration tests for the queue disciplines
// (src/net/qdisc/): the PIE controller against a hand-stepped RFC 8033
// reference, the CoDel sojourn/interval state machine against RFC 8289,
// FQ-PIE flow isolation and DRR fairness, DropTail twin-equivalence with
// the legacy admit/drop semantics, and the Link integration (drop causes,
// counters, metrics gating).
#include "net/qdisc/queue_discipline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <set>
#include <vector>

#include "net/link.hpp"
#include "net/qdisc/codel.hpp"
#include "net/qdisc/droptail.hpp"
#include "net/qdisc/fq_pie.hpp"
#include "net/qdisc/pie.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace dmp {
namespace {

Packet data_packet(FlowId flow, std::int64_t seq,
                   std::uint32_t bytes = kDataPacketBytes) {
  Packet p;
  p.flow = flow;
  p.seq = seq;
  p.size_bytes = bytes;
  return p;
}

// --- PIE controller vs a hand-stepped RFC 8033 reference ---

// Independent transcription of the RFC 8033 §5.2 pseudocode, kept
// deliberately flat so a discrepancy localizes to one equation.
struct PieReference {
  PieParams params{};
  double p = 0.0;
  double qdelay_old = 0.0;
  double burst = kPieMaxBurstS;

  void step(double qdelay) {
    double factor = 1.0;
    if (p < 1e-6) factor = 1.0 / 2048.0;
    else if (p < 1e-5) factor = 1.0 / 512.0;
    else if (p < 1e-4) factor = 1.0 / 128.0;
    else if (p < 1e-3) factor = 1.0 / 32.0;
    else if (p < 0.01) factor = 1.0 / 8.0;
    else if (p < 0.1) factor = 1.0 / 2.0;
    double delta = factor * (params.alpha * (qdelay - params.target_s) +
                             params.beta * (qdelay - qdelay_old));
    if (delta > 0.02 && p >= 0.1) delta = 0.02;
    p += delta;
    if (qdelay == 0.0 && qdelay_old == 0.0) p *= 0.98;
    p = std::clamp(p, 0.0, 1.0);
    qdelay_old = qdelay;
    if (burst > 0.0) {
      burst = std::max(0.0, burst - params.tupdate_s);
    } else if (p == 0.0 && qdelay == 0.0 && qdelay_old == 0.0) {
      burst = params.max_burst_s;
    }
  }
};

TEST(PieController, MatchesHandSteppedReference) {
  PieController controller{PieParams{}};
  PieReference reference;
  // A qdelay trajectory that crosses every auto-scaling band: ramp up,
  // plateau, drain to idle, burst again.
  for (int i = 0; i < 400; ++i) {
    double qdelay = 0.0;
    if (i < 120) qdelay = 0.002 * i;         // ramp to 238 ms
    else if (i < 200) qdelay = 0.1;          // plateau
    else if (i < 300) qdelay = 0.0;          // drained
    else qdelay = 0.05;                      // second excursion
    controller.step(qdelay);
    reference.step(qdelay);
    ASSERT_DOUBLE_EQ(controller.drop_prob(), reference.p) << "step " << i;
    ASSERT_DOUBLE_EQ(controller.qdelay_old_s(), reference.qdelay_old);
    ASSERT_DOUBLE_EQ(controller.burst_allowance_s(), reference.burst);
  }
}

TEST(PieController, BurstAllowanceDecrementsPerUpdate) {
  PieController controller{PieParams{}};
  // max_burst 150 ms / tupdate 15 ms = 10 updates to exhaust.  The
  // allowance is a running subtraction, so compare to accumulation noise.
  for (int i = 1; i <= 10; ++i) {
    controller.step(0.05);
    EXPECT_NEAR(controller.burst_allowance_s(),
                kPieMaxBurstS - i * kPieDefaultTupdateS, 1e-12);
  }
  controller.step(0.05);
  EXPECT_DOUBLE_EQ(controller.burst_allowance_s(), 0.0);
}

TEST(PieController, DecaysToZeroWhenIdleAndResetsBurstAllowance) {
  PieController controller{PieParams{}};
  for (int i = 0; i < 30; ++i) controller.step(0.2);  // drive p up
  ASSERT_GT(controller.drop_prob(), 0.0);
  ASSERT_DOUBLE_EQ(controller.burst_allowance_s(), 0.0);
  // Idle: negative alpha term plus the 0.98 decay clamp p to exactly 0,
  // after which the burst allowance is re-armed for the next burst.
  int steps = 0;
  while (controller.drop_prob() > 0.0 && steps < 100000) {
    controller.step(0.0);
    ++steps;
  }
  EXPECT_DOUBLE_EQ(controller.drop_prob(), 0.0);
  // The update that clamped p to 0 also re-armed the allowance; the next
  // quiet update starts consuming the fresh budget again.
  EXPECT_DOUBLE_EQ(controller.burst_allowance_s(), kPieMaxBurstS);
  controller.step(0.0);
  EXPECT_NEAR(controller.burst_allowance_s(),
              kPieMaxBurstS - kPieDefaultTupdateS, 1e-12);
}

TEST(PieController, DeltaCappedOncePIsHigh) {
  PieController controller{PieParams{}};
  controller.step(10.0);  // tiny creep (factor 1/2048)
  controller.step(10.0);  // jump past 0.1 (no cap below p = 0.1)
  const double before = controller.drop_prob();
  ASSERT_GE(before, 0.1);
  controller.step(10.0);  // now the 0.02 per-update cap binds
  EXPECT_NEAR(controller.drop_prob() - before, 0.02, 1e-12);
}

TEST(PieController, DropProbClampsAtOne) {
  PieController controller{PieParams{}};
  for (int i = 0; i < 200; ++i) controller.step(10.0);
  EXPECT_DOUBLE_EQ(controller.drop_prob(), 1.0);
}

// --- PIE qdisc ---

TEST(PieQdisc, QueueDelayTracksQueuedBytes) {
  PieQdisc q(0, PieParams{}, 1);
  q.set_drain_rate(1.2e6);
  EXPECT_DOUBLE_EQ(q.queue_delay_s(), 0.0);
  q.enqueue(data_packet(1, 0), SimTime::zero());
  q.enqueue(data_packet(1, 1), SimTime::zero());
  EXPECT_DOUBLE_EQ(q.queue_delay_s(), 2 * 1500 * 8.0 / 1.2e6);
  Packet out;
  q.dequeue(&out, SimTime::zero());
  EXPECT_DOUBLE_EQ(q.queue_delay_s(), 1500 * 8.0 / 1.2e6);
}

TEST(PieQdisc, BurstAllowanceAdmitsInitialBurst) {
  PieQdisc q(0, PieParams{}, 1);
  q.set_drain_rate(1.2e6);
  // 100 ms of closely-spaced arrivals — inside the 150 ms burst window —
  // must all be admitted however deep the queue gets.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.enqueue(data_packet(1, i), SimTime::millis(i)));
  }
  EXPECT_EQ(q.counters().early_drops, 0u);
  EXPECT_EQ(q.len(), 100u);
}

TEST(PieQdisc, SustainedOverloadProducesEarlyDropsAfterBurstWindow) {
  PieQdisc q(0, PieParams{}, 7);
  q.set_drain_rate(1.2e6);
  std::vector<std::int64_t> dropped;
  q.set_drop_handler([&](const Packet& victim, QdiscDropReason reason) {
    ASSERT_EQ(reason, QdiscDropReason::kEarly);  // unbounded: no overlimit
    dropped.push_back(victim.seq);
  });
  // One arrival per 5 ms, never drained: qdelay ramps, controller ramps.
  for (int i = 0; i < 4000; ++i) {
    q.enqueue(data_packet(1, i), SimTime::millis(5 * i));
  }
  ASSERT_GT(q.counters().early_drops, 0u);
  EXPECT_GT(q.controller().drop_prob(), 0.0);
  // Nothing may be dropped inside the burst allowance (first 150 ms = 30
  // arrivals, plus the controller needs a tupdate to see the backlog).
  EXPECT_GT(dropped.front(), 30);
  EXPECT_EQ(q.counters().early_drops, dropped.size());
}

TEST(PieQdisc, IdenticalSeedsMakeIdenticalDecisions) {
  PieQdisc a(0, PieParams{}, 99);
  PieQdisc b(0, PieParams{}, 99);
  a.set_drain_rate(1.2e6);
  b.set_drain_rate(1.2e6);
  for (int i = 0; i < 3000; ++i) {
    const SimTime now = SimTime::millis(5 * i);
    ASSERT_EQ(a.enqueue(data_packet(1, i), now),
              b.enqueue(data_packet(1, i), now))
        << "arrival " << i;
  }
  EXPECT_EQ(a.counters().early_drops, b.counters().early_drops);
  EXPECT_EQ(a.len(), b.len());
}

TEST(PieQdisc, BufferLimitStillDropsOverlimit) {
  PieQdisc q(3, PieParams{}, 1);
  q.set_drain_rate(1.2e6);
  for (int i = 0; i < 5; ++i) q.enqueue(data_packet(1, i), SimTime::zero());
  EXPECT_EQ(q.len(), 3u);
  EXPECT_EQ(q.counters().overlimit_drops, 2u);
  EXPECT_EQ(q.counters().early_drops, 0u);  // burst allowance still armed
}

// --- CoDel state machine ---

TEST(CoDel, NoDropsWhileSojournBelowTarget) {
  CoDelQdisc q(0, CoDelParams{});
  Packet out;
  for (int i = 0; i < 100; ++i) {
    const SimTime t = SimTime::millis(10 * i);
    q.enqueue(data_packet(1, i), t);
    // Drained 1 ms later: sojourn 1 ms < 5 ms target, never above target.
    ASSERT_TRUE(q.dequeue(&out, t + SimTime::millis(1)));
    EXPECT_EQ(out.seq, i);
  }
  EXPECT_FALSE(q.dropping());
  EXPECT_EQ(q.drop_count(), 0u);
  EXPECT_EQ(q.counters().early_drops, 0u);
}

TEST(CoDel, ExcursionShorterThanIntervalDoesNotDrop) {
  CoDelQdisc q(0, CoDelParams{});  // target 5 ms, interval 100 ms
  for (int i = 0; i < 3; ++i) q.enqueue(data_packet(1, i), SimTime::zero());
  Packet out;
  // Sojourns 50/60/70 ms — all above target, but the excursion ends (queue
  // empties) before the armed interval expires: no drops.
  ASSERT_TRUE(q.dequeue(&out, SimTime::millis(50)));
  ASSERT_TRUE(q.dequeue(&out, SimTime::millis(60)));
  ASSERT_TRUE(q.dequeue(&out, SimTime::millis(70)));
  EXPECT_EQ(q.drop_count(), 0u);
  EXPECT_FALSE(q.dropping());
}

TEST(CoDel, EntersDroppingAfterFullIntervalAboveTarget) {
  CoDelQdisc q(0, CoDelParams{});
  for (int i = 0; i < 10; ++i) q.enqueue(data_packet(1, i), SimTime::zero());
  Packet out;
  // First above-target sojourn arms the interval timer (fires at 250 ms).
  ASSERT_TRUE(q.dequeue(&out, SimTime::millis(150)));
  EXPECT_EQ(out.seq, 0);
  EXPECT_FALSE(q.dropping());
  // Still inside the armed interval: no drop.
  ASSERT_TRUE(q.dequeue(&out, SimTime::millis(200)));
  EXPECT_EQ(out.seq, 1);
  EXPECT_FALSE(q.dropping());
  // Past it: enter dropping — head discarded, next packet delivered.
  ASSERT_TRUE(q.dequeue(&out, SimTime::millis(260)));
  EXPECT_EQ(out.seq, 3);  // seq 2 was the first casualty
  EXPECT_TRUE(q.dropping());
  EXPECT_EQ(q.drop_count(), 1u);
  EXPECT_EQ(q.counters().early_drops, 1u);
  // drop_next = entry instant + interval / sqrt(1).
  EXPECT_NEAR(q.drop_next().to_seconds(), 0.26 + 0.1, 1e-9);
}

TEST(CoDel, ControlLawSpacesDropsByInverseSqrtCount) {
  CoDelQdisc q(0, CoDelParams{});
  for (int i = 0; i < 30; ++i) q.enqueue(data_packet(1, i), SimTime::zero());
  Packet out;
  ASSERT_TRUE(q.dequeue(&out, SimTime::millis(150)));   // arm (fires 250 ms)
  ASSERT_TRUE(q.dequeue(&out, SimTime::millis(260)));   // enter, count = 1
  ASSERT_EQ(q.drop_count(), 1u);
  // A dequeue far past drop_next catches up through the control-law
  // schedule — drops at 360, 360 + 100/sqrt(2), + 100/sqrt(3) — and the
  // schedule is then advanced once more (count 4) past `now`.
  ASSERT_TRUE(q.dequeue(&out, SimTime::millis(500)));
  EXPECT_EQ(q.drop_count(), 4u);
  EXPECT_NEAR(q.drop_next().to_seconds(),
              0.36 + 0.1 / std::sqrt(2.0) + 0.1 / std::sqrt(3.0) +
                  0.1 / std::sqrt(4.0),
              1e-6);
  EXPECT_EQ(q.counters().early_drops, 4u);
}

TEST(CoDel, LeavesDroppingWhenSojournFallsBelowTarget) {
  CoDelQdisc q(0, CoDelParams{});
  for (int i = 0; i < 6; ++i) q.enqueue(data_packet(1, i), SimTime::zero());
  Packet out;
  ASSERT_TRUE(q.dequeue(&out, SimTime::millis(150)));  // arm
  ASSERT_TRUE(q.dequeue(&out, SimTime::millis(260)));  // enter dropping
  ASSERT_TRUE(q.dropping());
  // Drain the stale backlog between control-law instants (no drops), then
  // a fresh packet with a 1 ms sojourn ends the episode.
  ASSERT_TRUE(q.dequeue(&out, SimTime::millis(261)));
  ASSERT_TRUE(q.dequeue(&out, SimTime::millis(262)));
  ASSERT_TRUE(q.dequeue(&out, SimTime::millis(263)));
  q.enqueue(data_packet(1, 100), SimTime::millis(264));
  ASSERT_TRUE(q.dequeue(&out, SimTime::millis(265)));
  EXPECT_EQ(out.seq, 100);
  EXPECT_FALSE(q.dropping());
  EXPECT_EQ(q.drop_count(), 1u);
}

TEST(CoDel, ResumesPreviousRateOnQuickReentry) {
  CoDelQdisc q(0, CoDelParams{});
  // Episode 1: 7 packets, enter dropping and burn through the backlog so
  // the count climbs to 4 before the queue empties.
  for (int i = 0; i < 7; ++i) q.enqueue(data_packet(1, i), SimTime::zero());
  Packet out;
  ASSERT_TRUE(q.dequeue(&out, SimTime::millis(150)));  // arm (fires 250 ms)
  ASSERT_TRUE(q.dequeue(&out, SimTime::millis(260)));  // enter, count = 1
  ASSERT_TRUE(q.dequeue(&out, SimTime::millis(500)));  // catch-up drops
  ASSERT_EQ(q.drop_count(), 4u);
  ASSERT_FALSE(q.dropping());  // backlog emptied during the catch-up
  // Episode 2, well inside 16 intervals of the last drop_next: the count
  // resumes from the per-episode delta (4 - 1 = 3) instead of 1.
  for (int i = 10; i < 16; ++i) {
    q.enqueue(data_packet(1, i), SimTime::millis(600));
  }
  ASSERT_TRUE(q.dequeue(&out, SimTime::millis(750)));  // arm (fires 850 ms)
  ASSERT_TRUE(q.dequeue(&out, SimTime::millis(860)));  // re-enter
  EXPECT_TRUE(q.dropping());
  EXPECT_EQ(q.drop_count(), 3u);
}

TEST(CoDel, BufferLimitTailDrops) {
  CoDelQdisc q(2, CoDelParams{});
  for (int i = 0; i < 4; ++i) q.enqueue(data_packet(1, i), SimTime::zero());
  EXPECT_EQ(q.len(), 2u);
  EXPECT_EQ(q.counters().overlimit_drops, 2u);
  EXPECT_EQ(q.counters().early_drops, 0u);
}

// --- FQ-PIE ---

// Two flow ids guaranteed to land in different buckets (found by probing
// the deterministic hash, so the test cannot rot if the mix changes).
std::pair<FlowId, FlowId> distinct_bucket_flows(const FqPieQdisc& q) {
  const std::size_t first = q.bucket_of(1);
  for (FlowId flow = 2; flow < 100; ++flow) {
    if (q.bucket_of(flow) != first) return {1, flow};
  }
  ADD_FAILURE() << "hash mapped 99 flows into one bucket";
  return {1, 2};
}

TEST(FqPie, HashSpreadsFlowsAcrossBuckets) {
  FqPieQdisc q(0, 64, PieParams{}, 1);
  std::set<std::size_t> used;
  for (FlowId flow = 0; flow < 64; ++flow) used.insert(q.bucket_of(flow));
  // 64 balls into 64 bins lands ~40 distinct under a good hash; anything
  // above 30 rules out degenerate clustering.
  EXPECT_GT(used.size(), 30u);
  for (const std::size_t bucket : used) EXPECT_LT(bucket, 64u);
}

TEST(FqPie, DrrAlternatesBetweenActiveFlows) {
  FqPieQdisc q(0, 64, PieParams{}, 1);
  const auto [video, flood] = distinct_bucket_flows(q);
  for (int i = 0; i < 4; ++i) {
    q.enqueue(data_packet(video, i), SimTime::zero());
    q.enqueue(data_packet(flood, 100 + i), SimTime::zero());
  }
  // One-quantum (one full packet) DRR: strict alternation.
  Packet out;
  std::vector<FlowId> order;
  while (q.dequeue(&out, SimTime::millis(1))) order.push_back(out.flow);
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i + 2 < order.size(); i += 2) {
    EXPECT_EQ(order[i], order[0]);
    EXPECT_EQ(order[i + 1], order[1]);
    EXPECT_NE(order[i], order[i + 1]);
  }
}

TEST(FqPie, FloodCannotStarveVideoFlow) {
  FqPieQdisc q(0, 64, PieParams{}, 1);
  const auto [video, flood] = distinct_bucket_flows(q);
  for (int i = 0; i < 200; ++i) q.enqueue(data_packet(flood, i), SimTime::zero());
  for (int i = 0; i < 5; ++i) q.enqueue(data_packet(video, i), SimTime::zero());
  // Despite a 40:1 backlog imbalance, the video packets ride their fair
  // share: all 5 are served within the first 10 dequeues.
  Packet out;
  int video_served = 0;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(q.dequeue(&out, SimTime::millis(1)));
    if (out.flow == video) ++video_served;
  }
  EXPECT_EQ(video_served, 5);
}

TEST(FqPie, OverlimitEvictsHeadOfLongestBucketNotArrival) {
  FqPieQdisc q(4, 64, PieParams{}, 1);
  const auto [video, flood] = distinct_bucket_flows(q);
  for (int i = 0; i < 4; ++i) q.enqueue(data_packet(flood, i), SimTime::zero());
  std::vector<Packet> victims;
  q.set_drop_handler([&](const Packet& victim, QdiscDropReason reason) {
    EXPECT_EQ(reason, QdiscDropReason::kOverlimit);
    victims.push_back(victim);
  });
  // The arriving video packet is admitted; the flooding bucket's HEAD pays.
  EXPECT_TRUE(q.enqueue(data_packet(video, 50), SimTime::zero()));
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0].flow, flood);
  EXPECT_EQ(victims[0].seq, 0);
  EXPECT_EQ(q.len(), 4u);
  EXPECT_EQ(q.counters().overlimit_drops, 1u);
}

// --- DropTail twin equivalence ---

TEST(DropTail, TwinMatchesReferenceModelOnRandomizedTrace) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    DropTailQdisc q(10);
    std::deque<Packet> reference;  // the legacy Link::send queue, verbatim
    Rng rng(seed);
    for (int op = 0; op < 5000; ++op) {
      if (rng.uniform() < 0.7) {
        const Packet p = data_packet(1, op);
        const bool admitted_ref = reference.size() < 10;
        if (admitted_ref) reference.push_back(p);
        ASSERT_EQ(q.enqueue(p, SimTime::millis(op)), admitted_ref)
            << "seed " << seed << " op " << op;
      } else {
        Packet out;
        const bool popped = q.dequeue(&out, SimTime::millis(op));
        ASSERT_EQ(popped, !reference.empty());
        if (popped) {
          ASSERT_EQ(out.seq, reference.front().seq);
          reference.pop_front();
        }
      }
      ASSERT_EQ(q.len(), reference.size());
    }
    EXPECT_EQ(q.counters().early_drops, 0u);
  }
}

TEST(DropTail, UnboundedBufferAdmitsEverything) {
  DropTailQdisc q(0);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(q.enqueue(data_packet(1, i), SimTime::zero()));
  }
  EXPECT_EQ(q.counters().overlimit_drops, 0u);
  EXPECT_EQ(q.len(), 10000u);
}

// --- factory + names ---

TEST(QdiscFactory, BuildsEveryKindWithMatchingName) {
  for (const char* spec : {"droptail", "pie", "fq_pie", "codel"}) {
    const auto q = make_queue_discipline(QdiscSpec::parse(spec), 10);
    EXPECT_STREQ(q->name(), spec);
  }
}

TEST(QdiscFactory, AppliesSpecParametersOverDefaults) {
  auto spec = QdiscSpec::parse("pie:30,45");
  spec.seed = 5;
  const auto q = make_queue_discipline(spec, 0);
  const auto* pie = dynamic_cast<const PieQdisc*>(q.get());
  ASSERT_NE(pie, nullptr);
  EXPECT_DOUBLE_EQ(pie->controller().params().target_s, 0.030);
  EXPECT_DOUBLE_EQ(pie->controller().params().tupdate_s, 0.045);
}

TEST(QdiscDropReason, NamesAreStable) {
  EXPECT_EQ(qdisc_drop_reason_name(QdiscDropReason::kOverlimit), "overlimit");
  EXPECT_EQ(qdisc_drop_reason_name(QdiscDropReason::kEarly), "early");
}

// --- Link integration ---

LinkConfig aqm_link_config(const char* spec, std::uint64_t seed,
                           double bandwidth_bps = 1.2e6,
                           std::size_t buffer = 0) {
  LinkConfig config{bandwidth_bps, SimTime::millis(5), buffer};
  config.qdisc = QdiscSpec::parse(spec);
  config.qdisc.seed = seed;
  return config;
}

// Schedules one `link.send` per packet at a fixed arrival rate.
void offer_load(Scheduler& sched, Link& link, int packets,
                SimTime spacing, FlowId flow = 1) {
  for (int i = 0; i < packets; ++i) {
    Packet p = data_packet(flow, i);
    p.app_tag = i;
    sched.schedule_at(spacing * i, [&link, p] { link.send(p); });
  }
}

TEST(LinkQdisc, DefaultLinkReportsDroptailAndNoEarlyDrops) {
  Scheduler sched;
  Link link(sched, LinkConfig{1.2e6, SimTime::millis(1), 2});
  link.set_receiver([](const Packet&) {});
  EXPECT_STREQ(link.qdisc_name(), "droptail");
  for (int i = 0; i < 5; ++i) link.send(data_packet(7, i));
  sched.run();
  EXPECT_EQ(link.total_drops(), 2u);
  EXPECT_EQ(link.qdisc_counters().overlimit_drops, 2u);
  EXPECT_EQ(link.qdisc_counters().early_drops, 0u);
}

TEST(LinkQdisc, PieLinkAccountsEveryDropExactlyOnce) {
  Scheduler sched;
  Link link(sched, aqm_link_config("pie", 11));
  EXPECT_STREQ(link.qdisc_name(), "pie");
  std::uint64_t delivered = 0;
  link.set_receiver([&](const Packet&) { ++delivered; });
  // 1.2 Mbps drains 100 pkts/s; offer 200 pkts/s for 20 s.
  offer_load(sched, link, 4000, SimTime::millis(5));
  sched.run();
  const auto& counters = link.qdisc_counters();
  EXPECT_GT(counters.early_drops, 0u);
  EXPECT_EQ(link.total_drops(), counters.early_drops + counters.overlimit_drops);
  EXPECT_EQ(delivered + link.total_drops(), link.total_arrivals());
  EXPECT_EQ(link.flow_counters(1).drops, link.total_drops());
}

TEST(LinkQdisc, CoDelLinkDropsAtDequeueAndStillBalances) {
  Scheduler sched;
  Link link(sched, aqm_link_config("codel", 0));
  std::uint64_t delivered = 0;
  link.set_receiver([&](const Packet&) { ++delivered; });
  offer_load(sched, link, 4000, SimTime::millis(5));
  sched.run();
  EXPECT_GT(link.qdisc_counters().early_drops, 0u);
  EXPECT_EQ(delivered + link.total_drops(), link.total_arrivals());
}

TEST(LinkQdisc, UnderloadedAqmLinkNeverDrops) {
  Scheduler sched;
  Link link(sched, aqm_link_config("pie", 3));
  std::uint64_t delivered = 0;
  link.set_receiver([&](const Packet&) { ++delivered; });
  // 10 pkts/s against a 100 pkts/s drain: the queue stays near-empty and
  // arrivals mostly ride the idle bypass.
  offer_load(sched, link, 100, SimTime::millis(100));
  sched.run();
  EXPECT_EQ(link.total_drops(), 0u);
  EXPECT_EQ(delivered, 100u);
}

TEST(LinkQdisc, RescaleFeedsNewDrainRateToController) {
  // Same offered load; the rescaled-down link must drop more, which only
  // happens if rescale() actually reaches the controller's rate estimate.
  auto drops_with_rescale = [](bool rescale) {
    Scheduler sched;
    Link link(sched, aqm_link_config("pie", 21));
    link.set_receiver([](const Packet&) {});
    if (rescale) link.rescale(0.25, 1.0);
    offer_load(sched, link, 2000, SimTime::millis(5));
    sched.run();
    return link.qdisc_counters().early_drops;
  };
  EXPECT_GT(drops_with_rescale(true), drops_with_rescale(false));
}

TEST(LinkQdisc, FlightRecorderTagsDropCauseOnAqmLinksOnly) {
  // PIE link: kLinkDrop events carry an explicit cause.
  Scheduler sched;
  obs::FlightRecorder flight;
  Link link(sched, aqm_link_config("pie", 11));
  link.set_receiver([](const Packet&) {});
  link.set_flight_recorder(&flight, 0);
  offer_load(sched, link, 4000, SimTime::millis(5));
  sched.run();
  std::uint64_t early_tagged = 0;
  for (const auto& event : flight.events()) {
    if (event.kind != obs::FlightEventKind::kLinkDrop) continue;
    EXPECT_NE(event.drop, obs::DropCause::kNone);
    if (event.drop == obs::DropCause::kEarly) ++early_tagged;
  }
  EXPECT_EQ(early_tagged, link.qdisc_counters().early_drops);

  // DropTail link: same overflow story, but every cause stays kNone so
  // legacy traces serialize byte-identically.
  Scheduler sched2;
  obs::FlightRecorder flight2;
  Link droptail(sched2, LinkConfig{1.2e6, SimTime::millis(1), 2});
  droptail.set_receiver([](const Packet&) {});
  droptail.set_flight_recorder(&flight2, 0);
  for (int i = 0; i < 5; ++i) {
    Packet p = data_packet(1, i);
    p.app_tag = i;
    droptail.send(p);
  }
  sched2.run();
  std::uint64_t droptail_drops = 0;
  for (const auto& event : flight2.events()) {
    if (event.kind != obs::FlightEventKind::kLinkDrop) continue;
    ++droptail_drops;
    EXPECT_EQ(event.drop, obs::DropCause::kNone);
  }
  EXPECT_EQ(droptail_drops, 2u);
}

TEST(LinkQdisc, EarlyDropMetricRegisteredOnlyForAqm) {
  Scheduler sched;
  obs::MetricsRegistry registry;
  Link droptail(sched, LinkConfig{1.2e6, SimTime::millis(1), 2});
  droptail.attach_metrics(registry, "dt");
  EXPECT_EQ(registry.find_counter("dt.early_drops"), nullptr);
  EXPECT_NE(registry.find_counter("dt.drops"), nullptr);

  Link pie(sched, aqm_link_config("pie", 1));
  pie.attach_metrics(registry, "pie");
  EXPECT_NE(registry.find_counter("pie.early_drops"), nullptr);
}

}  // namespace
}  // namespace dmp
