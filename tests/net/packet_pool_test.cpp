#include "net/packet_pool.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dmp {
namespace {

Packet make_packet(std::int64_t seq) {
  Packet p;
  p.flow = 3;
  p.seq = seq;
  p.size_bytes = 1460;
  p.app_tag = seq;
  return p;
}

TEST(PacketPool, AcquireGetTakeRoundTrip) {
  PacketPool pool;
  const auto ref = pool.acquire(make_packet(7));
  EXPECT_TRUE(pool.valid(ref));
  EXPECT_EQ(pool.in_use(), 1u);
  EXPECT_EQ(pool.get(ref).seq, 7);
  const Packet out = pool.take(ref);
  EXPECT_EQ(out.seq, 7);
  EXPECT_EQ(out.size_bytes, 1460);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_FALSE(pool.valid(ref));
}

TEST(PacketPool, ReleaseInvalidatesRefViaGeneration) {
  PacketPool pool;
  const auto ref = pool.acquire(make_packet(1));
  pool.release(ref);
  EXPECT_FALSE(pool.valid(ref));
  // The slot is recycled with a bumped generation: the new ref names the
  // same arena index but the stale one stays dead.
  const auto fresh = pool.acquire(make_packet(2));
  EXPECT_EQ(fresh.index, ref.index);
  EXPECT_NE(fresh.gen, ref.gen);
  EXPECT_TRUE(pool.valid(fresh));
  EXPECT_FALSE(pool.valid(ref));
  EXPECT_EQ(pool.get(fresh).seq, 2);
}

TEST(PacketPool, SteadyStateReusesSlotsWithoutGrowingArena) {
  PacketPool pool;
  // FIFO-style churn with at most 4 in flight: capacity must stop at the
  // high-water mark, not track total traffic.
  std::vector<PacketPool::Ref> live;
  for (std::int64_t i = 0; i < 1000; ++i) {
    live.push_back(pool.acquire(make_packet(i)));
    if (live.size() == 4) {
      EXPECT_EQ(pool.take(live.front()).seq, i - 3);
      live.erase(live.begin());
    }
  }
  EXPECT_EQ(pool.capacity(), 4u);
  EXPECT_EQ(pool.in_use(), 3u);
  for (const auto& ref : live) pool.release(ref);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(PacketPool, InterleavedRefsStayIndependent) {
  PacketPool pool;
  const auto a = pool.acquire(make_packet(10));
  const auto b = pool.acquire(make_packet(20));
  const auto c = pool.acquire(make_packet(30));
  pool.release(b);
  EXPECT_TRUE(pool.valid(a));
  EXPECT_FALSE(pool.valid(b));
  EXPECT_TRUE(pool.valid(c));
  EXPECT_EQ(pool.get(a).seq, 10);
  EXPECT_EQ(pool.get(c).seq, 30);
  // b's slot comes back first (LIFO free list) without disturbing a or c.
  const auto d = pool.acquire(make_packet(40));
  EXPECT_EQ(d.index, b.index);
  EXPECT_EQ(pool.get(a).seq, 10);
  EXPECT_EQ(pool.get(c).seq, 30);
  EXPECT_EQ(pool.get(d).seq, 40);
  EXPECT_EQ(pool.capacity(), 3u);
}

TEST(PacketPool, OutOfRangeRefIsInvalid) {
  PacketPool pool;
  PacketPool::Ref bogus;
  bogus.index = 42;
  bogus.gen = 0;
  EXPECT_FALSE(pool.valid(bogus));
}

}  // namespace
}  // namespace dmp
