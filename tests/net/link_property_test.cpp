// Parameterized link/topology properties: work conservation, bounded
// queueing delay, and counter consistency across bandwidths and buffers.
#include <gtest/gtest.h>

#include <tuple>

#include "net/link.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"

namespace dmp {
namespace {

class LinkSweep
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(LinkSweep, CountersBalanceAndDelayIsBounded) {
  const auto [bandwidth, buffer] = GetParam();
  Scheduler sched;
  Link link(sched, LinkConfig{bandwidth, SimTime::millis(10), buffer});
  std::uint64_t received = 0;
  SimTime last_delivery = SimTime::zero();
  link.set_receiver([&](const Packet&) {
    ++received;
    last_delivery = sched.now();
  });

  // Poisson-ish arrivals at ~1.3x the service rate: guaranteed overload.
  Rng rng(7);
  const double service_pps = bandwidth / (kDataPacketBytes * 8.0);
  const double arrival_pps = 1.3 * service_pps;
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) {
    t += rng.exponential(1.0 / arrival_pps);
    sched.schedule_at(SimTime::seconds(t), [&link, i] {
      Packet p;
      p.flow = static_cast<FlowId>(i % 3);
      p.seq = i;
      p.size_bytes = kDataPacketBytes;
      link.send(p);
    });
  }
  sched.run();

  // Conservation: arrivals = deliveries + drops (+ nothing in flight).
  EXPECT_EQ(link.total_arrivals(), 2000u);
  EXPECT_EQ(link.total_arrivals(), link.total_delivered() + link.total_drops());
  EXPECT_EQ(received, link.total_delivered());
  EXPECT_GT(link.total_drops(), 0u);  // overloaded by construction
  // Per-flow counters add up to the totals.
  std::uint64_t arrivals = 0, drops = 0;
  for (FlowId f = 0; f < 3; ++f) {
    arrivals += link.flow_counters(f).arrivals;
    drops += link.flow_counters(f).drops;
  }
  EXPECT_EQ(arrivals, link.total_arrivals());
  EXPECT_EQ(drops, link.total_drops());

  // A bounded queue bounds delay: the last delivery happens at most
  // (buffer+1) service times + propagation after the last arrival.
  const double bound_s = t + (static_cast<double>(buffer) + 2.0) *
                                 (kDataPacketBytes * 8.0 / bandwidth) +
                         0.010 + 0.001;
  EXPECT_LE(last_delivery.to_seconds(), bound_s);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LinkSweep,
    ::testing::Combine(::testing::Values(1e6, 3.7e6, 10e6),
                       ::testing::Values(std::size_t{5}, std::size_t{50})));

class BottleneckConfigSweep : public ::testing::TestWithParam<int> {};

TEST_P(BottleneckConfigSweep, EveryTable1ConfigCarriesTraffic) {
  Scheduler sched;
  DumbbellPath path(sched, BottleneckConfig{3.7e6, SimTime::millis(1), 50});
  auto in = path.attach_source(1);
  int received = 0;
  path.register_sink(1, [&](const Packet&) { ++received; });
  const int n = GetParam();
  for (int i = 0; i < n; ++i) {
    sched.schedule_at(SimTime::millis(5 * i), [&in, i] {
      Packet p;
      p.flow = 1;
      p.seq = i;
      p.size_bytes = kDataPacketBytes;
      in(p);
    });
  }
  sched.run();
  EXPECT_EQ(received, n);  // paced below capacity: nothing drops
}

INSTANTIATE_TEST_SUITE_P(Sizes, BottleneckConfigSweep,
                         ::testing::Values(1, 10, 200));

}  // namespace
}  // namespace dmp
