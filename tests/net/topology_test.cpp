#include "net/topology.hpp"

#include <gtest/gtest.h>

namespace dmp {
namespace {

TEST(DumbbellPath, ForwardDeliveryReachesRegisteredSink) {
  Scheduler sched;
  DumbbellPath path(sched, BottleneckConfig{3.7e6, SimTime::millis(40), 50});
  auto inject = path.attach_source(1);
  int received = 0;
  SimTime arrival = SimTime::zero();
  path.register_sink(1, [&](const Packet&) {
    ++received;
    arrival = sched.now();
  });

  Packet p;
  p.flow = 1;
  p.size_bytes = kDataPacketBytes;
  inject(p);
  sched.run();

  EXPECT_EQ(received, 1);
  // 10 + 40 + 10 ms propagation, plus three serializations
  // (100M, 3.7M, 100M): 0.12 + 3.243 + 0.12 ms.
  const double expected_s = 0.060 + 1500.0 * 8 / 100e6 * 2 + 1500.0 * 8 / 3.7e6;
  EXPECT_NEAR(arrival.to_seconds(), expected_s, 1e-6);
}

TEST(DumbbellPath, DemuxSeparatesFlows) {
  Scheduler sched;
  DumbbellPath path(sched, BottleneckConfig{10e6, SimTime::millis(1), 50});
  auto in1 = path.attach_source(1);
  auto in2 = path.attach_source(2);
  int got1 = 0, got2 = 0;
  path.register_sink(1, [&](const Packet&) { ++got1; });
  path.register_sink(2, [&](const Packet&) { ++got2; });

  Packet p;
  p.size_bytes = 100;
  p.flow = 1;
  in1(p);
  in1(p);
  p.flow = 2;
  in2(p);
  sched.run();

  EXPECT_EQ(got1, 2);
  EXPECT_EQ(got2, 1);
}

TEST(DumbbellPath, UnregisteredFlowIsDiscardedSilently) {
  Scheduler sched;
  DumbbellPath path(sched, BottleneckConfig{10e6, SimTime::millis(1), 50});
  auto in = path.attach_source(9);
  Packet p;
  p.flow = 9;
  p.size_bytes = 100;
  in(p);
  EXPECT_NO_THROW(sched.run());
}

TEST(DumbbellPath, ReverseDirectionCarriesAcks) {
  Scheduler sched;
  DumbbellPath path(sched, BottleneckConfig{3.7e6, SimTime::millis(40), 50});
  auto rev_in = path.attach_reverse_source(1);
  SimTime arrival = SimTime::zero();
  path.register_reverse_sink(1, [&](const Packet&) { arrival = sched.now(); });

  Packet ack;
  ack.flow = 1;
  ack.kind = PacketKind::kAck;
  ack.size_bytes = kAckPacketBytes;
  rev_in(ack);
  sched.run();

  // Reverse path has the same propagation (60 ms) but access-speed links,
  // so the ACK sees essentially no queueing/serialization delay.
  EXPECT_NEAR(arrival.to_seconds(), 0.060, 1e-4);
  EXPECT_GT(arrival.to_seconds(), 0.060);
}

TEST(DumbbellPath, BottleneckDropsAreObservable) {
  Scheduler sched;
  DumbbellPath path(sched, BottleneckConfig{1e6, SimTime::millis(1), 3});
  auto in = path.attach_source(5);
  path.register_sink(5, [](const Packet&) {});
  Packet p;
  p.flow = 5;
  p.size_bytes = kDataPacketBytes;
  for (int i = 0; i < 20; ++i) in(p);
  sched.run();
  const auto counters = path.bottleneck().flow_counters(5);
  EXPECT_EQ(counters.arrivals, 20u);
  EXPECT_GT(counters.drops, 0u);
  // Delivered = arrivals - drops.
  EXPECT_EQ(path.bottleneck().total_delivered(),
            counters.arrivals - counters.drops);
}

TEST(DumbbellPath, BaseRttMatchesHandComputation) {
  Scheduler sched;
  DumbbellPath path(sched, BottleneckConfig{3.7e6, SimTime::millis(40), 50});
  // Round-trip propagation 2 * 60 ms dominates; serialization adds ~3.5 ms.
  EXPECT_GT(path.base_rtt_seconds(), 0.120);
  EXPECT_LT(path.base_rtt_seconds(), 0.130);
}

}  // namespace
}  // namespace dmp
