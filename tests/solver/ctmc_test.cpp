#include "solver/ctmc.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace dmp {
namespace {

// Two-state chain: 0 -> 1 at rate a, 1 -> 0 at rate b; pi = (b, a)/(a+b).
TEST(Ctmc, TwoStateClosedForm) {
  CtmcBuilder builder(2);
  builder.add_transition(0, 1, 3.0);
  builder.add_transition(1, 0, 1.5);
  const auto chain = std::move(builder).build();
  const auto pi = chain.steady_state_gauss_seidel();
  EXPECT_NEAR(pi[0], 1.5 / 4.5, 1e-10);
  EXPECT_NEAR(pi[1], 3.0 / 4.5, 1e-10);
  EXPECT_LT(chain.balance_residual(pi), 1e-10);
}

// M/M/1/K queue: pi_n proportional to rho^n.
TEST(Ctmc, Mm1kMatchesClosedForm) {
  const double lambda = 2.0, mu = 3.0;
  const int K = 10;
  CtmcBuilder builder(K + 1);
  for (int n = 0; n < K; ++n) {
    builder.add_transition(static_cast<std::uint32_t>(n),
                           static_cast<std::uint32_t>(n + 1), lambda);
    builder.add_transition(static_cast<std::uint32_t>(n + 1),
                           static_cast<std::uint32_t>(n), mu);
  }
  const auto pi = std::move(builder).build().steady_state_gauss_seidel();

  const double rho = lambda / mu;
  double norm = 0.0;
  for (int n = 0; n <= K; ++n) norm += std::pow(rho, n);
  for (int n = 0; n <= K; ++n) {
    EXPECT_NEAR(pi[static_cast<std::size_t>(n)], std::pow(rho, n) / norm, 1e-9)
        << "state " << n;
  }
}

TEST(Ctmc, PowerAndGaussSeidelAgree) {
  // Random irreducible chain.
  Rng rng(17);
  const std::uint32_t n = 40;
  CtmcBuilder builder(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    builder.add_transition(i, (i + 1) % n, 0.5 + rng.uniform());  // ring: irreducible
    for (int extra = 0; extra < 3; ++extra) {
      const auto j = static_cast<std::uint32_t>(rng.uniform_int(n));
      builder.add_transition(i, j, rng.uniform());
    }
  }
  const auto chain = std::move(builder).build();
  const auto gs = chain.steady_state_gauss_seidel(1e-13);
  const auto pw = chain.steady_state_power(1e-13);
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_NEAR(gs[i], pw[i], 1e-7) << "state " << i;
  }
}

TEST(Ctmc, DistributionSumsToOne) {
  CtmcBuilder builder(3);
  builder.add_transition(0, 1, 1.0);
  builder.add_transition(1, 2, 2.0);
  builder.add_transition(2, 0, 3.0);
  const auto pi = std::move(builder).build().steady_state_gauss_seidel();
  EXPECT_NEAR(pi[0] + pi[1] + pi[2], 1.0, 1e-12);
  // Cycle: pi inversely proportional to exit rates.
  EXPECT_GT(pi[0], pi[1]);
  EXPECT_GT(pi[1], pi[2]);
}

TEST(Ctmc, MergesDuplicateEdges) {
  CtmcBuilder a(2), b(2);
  a.add_transition(0, 1, 1.0);
  a.add_transition(0, 1, 1.0);
  a.add_transition(1, 0, 1.0);
  b.add_transition(0, 1, 2.0);
  b.add_transition(1, 0, 1.0);
  const auto pa = std::move(a).build().steady_state_gauss_seidel();
  const auto pb = std::move(b).build().steady_state_gauss_seidel();
  EXPECT_NEAR(pa[0], pb[0], 1e-12);
}

TEST(Ctmc, IgnoresSelfLoops) {
  CtmcBuilder builder(2);
  builder.add_transition(0, 0, 100.0);  // must not affect the result
  builder.add_transition(0, 1, 1.0);
  builder.add_transition(1, 0, 1.0);
  const auto pi = std::move(builder).build().steady_state_gauss_seidel();
  EXPECT_NEAR(pi[0], 0.5, 1e-12);
}

TEST(Ctmc, RejectsAbsorbingStates) {
  CtmcBuilder builder(2);
  builder.add_transition(0, 1, 1.0);  // state 1 has no exit
  const auto chain = std::move(builder).build();
  EXPECT_THROW(chain.steady_state_gauss_seidel(), std::invalid_argument);
  EXPECT_THROW(chain.steady_state_power(), std::invalid_argument);
}

TEST(Ctmc, RejectsInvalidTransitions) {
  CtmcBuilder builder(2);
  EXPECT_THROW(builder.add_transition(0, 5, 1.0), std::out_of_range);
  EXPECT_THROW(builder.add_transition(0, 1, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace dmp
