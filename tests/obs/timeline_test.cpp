// Chrome trace-event (Perfetto) timeline export: schema validity of the
// emitted JSON, span/instant/counter structure, the per-packet span cap,
// and byte-level determinism.  The JSON is checked with a small
// recursive-descent parser so a malformed document fails loudly instead of
// "loading" by substring luck.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "apps/background.hpp"
#include "obs/telemetry/timeline.hpp"
#include "obs/trace_analyzer.hpp"
#include "stream/session.hpp"

namespace {

using dmp::obs::chrome_trace_json;
using dmp::obs::TimelineOptions;
using dmp::obs::TraceAnalyzer;

// --- minimal strict JSON parser (only what the exporter emits) ----------

struct JVal {
  enum class Kind { kNull, kBool, kNum, kStr, kArr, kObj };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JVal> arr;
  std::map<std::string, JVal> obj;

  const JVal* get(const std::string& key) const {
    const auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view s) : s_(s) {}

  JVal parse() {
    JVal v = value();
    ws();
    if (i_ != s_.size()) fail("trailing bytes");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json: " + std::string(what) + " at byte " +
                             std::to_string(i_));
  }
  void ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }
  char peek() const {
    if (i_ >= s_.size()) fail("unexpected end");
    return s_[i_];
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++i_;
  }
  bool consume_literal(std::string_view lit) {
    if (s_.substr(i_, lit.size()) != lit) return false;
    i_ += lit.size();
    return true;
  }

  JVal value() {
    ws();
    const char c = peek();
    JVal v;
    if (c == '{') {
      v.kind = JVal::Kind::kObj;
      expect('{');
      ws();
      if (peek() == '}') {
        ++i_;
        return v;
      }
      while (true) {
        ws();
        std::string key = string_body();
        ws();
        expect(':');
        v.obj.emplace(std::move(key), value());
        ws();
        if (peek() == ',') {
          ++i_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      v.kind = JVal::Kind::kArr;
      expect('[');
      ws();
      if (peek() == ']') {
        ++i_;
        return v;
      }
      while (true) {
        v.arr.push_back(value());
        ws();
        if (peek() == ',') {
          ++i_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.kind = JVal::Kind::kStr;
      v.str = string_body();
      return v;
    }
    if (consume_literal("null")) return v;
    if (consume_literal("true")) {
      v.kind = JVal::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind = JVal::Kind::kBool;
      return v;
    }
    // Number: delegate to strtod but require progress and a sane charset
    // (bare inf/nan must NOT parse — that is the point of a strict check).
    if (c != '-' && (c < '0' || c > '9')) fail("unexpected token");
    std::size_t j = i_;
    while (j < s_.size() &&
           (s_[j] == '-' || s_[j] == '+' || s_[j] == '.' || s_[j] == 'e' ||
            s_[j] == 'E' || (s_[j] >= '0' && s_[j] <= '9'))) {
      ++j;
    }
    const std::string chunk{s_.substr(i_, j - i_)};
    char* end = nullptr;
    v.kind = JVal::Kind::kNum;
    v.number = std::strtod(chunk.c_str(), &end);
    if (end != chunk.c_str() + chunk.size()) fail("bad number");
    i_ = j;
    return v;
  }

  std::string string_body() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++i_;
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = peek();
        ++i_;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case '/': out += '/'; break;
          default: fail("unsupported escape");
        }
        continue;
      }
      out += c;
    }
  }

  std::string_view s_;
  std::size_t i_ = 0;
};

// --- one short traced + telemetered session, shared across tests --------

const dmp::SessionResult& traced_session() {
  static const dmp::SessionResult result = [] {
    dmp::SessionConfig config;
    config.path_configs = {dmp::table1_config(1), dmp::table1_config(1)};
    config.mu_pps = 20.0;
    config.duration_s = 10.0;
    config.warmup_s = 5.0;
    config.drain_s = 5.0;
    config.seed = 42;
    // A short outage on path 1 so the export has fault instants to emit.
    config.faults = "3 link_down path1; 5 link_up path1";
    config.obs.flight_recorder = true;
    config.obs.output_dir = ::testing::TempDir();
    config.obs.prefix = "timeline_test";
    config.telemetry.enabled = true;
    config.telemetry.write_artifacts = true;
    config.telemetry.output_dir = ::testing::TempDir();
    config.telemetry.prefix = "timeline_test";
    return dmp::run_session(config);
  }();
  return result;
}

int count_ph(const JVal& root, const std::string& ph) {
  int n = 0;
  for (const JVal& ev : root.get("traceEvents")->arr) {
    if (ev.get("ph")->str == ph) ++n;
  }
  return n;
}

TEST(Timeline, ChromeTraceIsSchemaValid) {
  const auto& result = traced_session();
  ASSERT_NE(result.flight, nullptr);
  ASSERT_GT(result.packets_generated, 0);
  const TraceAnalyzer analyzer{*result.flight};

  TimelineOptions options;
  options.telemetry_csv = result.telemetry_csv_path;
  const std::string json = chrome_trace_json(analyzer, options);

  JVal root;
  ASSERT_NO_THROW(root = JsonParser{json}.parse()) << json.substr(0, 200);
  ASSERT_EQ(root.kind, JVal::Kind::kObj);
  const JVal* events = root.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JVal::Kind::kArr);
  ASSERT_FALSE(events->arr.empty());

  std::map<long long, int> span_balance;  // async begin/end per id
  std::set<std::string> counter_names;
  int spans = 0;
  int instants = 0;
  int fault_instants = 0;
  for (const JVal& ev : events->arr) {
    ASSERT_EQ(ev.kind, JVal::Kind::kObj);
    const JVal* ph = ev.get("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_EQ(ph->kind, JVal::Kind::kStr);
    const std::string& kind = ph->str;
    ASSERT_TRUE(kind == "M" || kind == "b" || kind == "e" || kind == "X" ||
                kind == "i" || kind == "C")
        << "unknown ph: " << kind;
    ASSERT_NE(ev.get("pid"), nullptr);
    ASSERT_EQ(ev.get("pid")->kind, JVal::Kind::kNum);
    ASSERT_NE(ev.get("name"), nullptr);
    if (kind != "C") {
      ASSERT_NE(ev.get("tid"), nullptr);
      ASSERT_EQ(ev.get("tid")->kind, JVal::Kind::kNum);
    }
    if (kind != "M") {
      ASSERT_NE(ev.get("ts"), nullptr);
      ASSERT_EQ(ev.get("ts")->kind, JVal::Kind::kNum);
    }
    if (kind == "b" || kind == "e") {
      const JVal* id = ev.get("id");
      ASSERT_NE(id, nullptr);
      span_balance[static_cast<long long>(id->number)] +=
          kind == "b" ? 1 : -1;
      if (kind == "b") ++spans;
    }
    if (kind == "X") {
      const JVal* dur = ev.get("dur");
      ASSERT_NE(dur, nullptr);
      EXPECT_GE(dur->number, 0.0);
    }
    if (kind == "i") {
      ++instants;
      if (ev.get("name")->str.rfind("fault_start", 0) == 0) ++fault_instants;
    }
    if (kind == "C") {
      const JVal* args = ev.get("args");
      ASSERT_NE(args, nullptr);
      ASSERT_NE(args->get("value"), nullptr);
      ASSERT_EQ(args->get("value")->kind, JVal::Kind::kNum);
      counter_names.insert(ev.get("name")->str);
    }
  }

  EXPECT_GT(spans, 0);
  for (const auto& [id, balance] : span_balance) {
    EXPECT_EQ(balance, 0) << "unbalanced async span for packet " << id;
  }
  EXPECT_GE(fault_instants, 1) << "injected fault left no instant";
  // Every telemetry channel becomes a counter track; spot-check the CBR
  // generation channel that any session records.
  EXPECT_TRUE(counter_names.count("server.generated") == 1)
      << "counters seen: " << counter_names.size();
  EXPECT_GE(instants, fault_instants);
}

TEST(Timeline, MaxPacketsCapsSpansButKeepsInstants) {
  const auto& result = traced_session();
  const TraceAnalyzer analyzer{*result.flight};

  TimelineOptions capped;
  capped.max_packets = 3;
  const JVal root = JsonParser{chrome_trace_json(analyzer, capped)}.parse();
  EXPECT_EQ(count_ph(root, "b"), 3);
  EXPECT_EQ(count_ph(root, "e"), 3);

  TimelineOptions none;
  none.max_packets = 0;
  const JVal bare = JsonParser{chrome_trace_json(analyzer, none)}.parse();
  EXPECT_EQ(count_ph(bare, "b"), 0);
  EXPECT_EQ(count_ph(bare, "X"), 0);
  // Instants (drops, RTOs, faults) are the run's story; the cap must not
  // silence them.
  EXPECT_GE(count_ph(bare, "i"), 1);
}

TEST(Timeline, ExportIsDeterministic) {
  const auto& result = traced_session();
  const TraceAnalyzer analyzer{*result.flight};
  TimelineOptions options;
  options.telemetry_csv = result.telemetry_csv_path;
  EXPECT_EQ(chrome_trace_json(analyzer, options),
            chrome_trace_json(analyzer, options));
}

TEST(Timeline, WriteChromeTraceRoundTrips) {
  const auto& result = traced_session();
  const TraceAnalyzer analyzer{*result.flight};
  const std::string path = ::testing::TempDir() + "timeline_out.json";
  ASSERT_TRUE(dmp::obs::write_chrome_trace(analyzer, path));

  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::string json{std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>()};
  EXPECT_EQ(json, chrome_trace_json(analyzer));
  EXPECT_NO_THROW(JsonParser{json}.parse());
}

}  // namespace
