// Telemetry edge cases: QuantileSketch merge identities and the
// exact-to-bucketed crossover, and TimeSeries windows at exact
// t = k * window boundaries.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "obs/telemetry/sketch.hpp"
#include "obs/telemetry/time_series.hpp"
#include "util/sim_time.hpp"

namespace {

using dmp::SimTime;
using dmp::obs::QuantileSketch;
using dmp::obs::TimeSeriesChannel;
using dmp::obs::Window;

QuantileSketch with_values(std::size_t n, double start = 1.0) {
  QuantileSketch sketch;
  for (std::size_t i = 0; i < n; ++i) {
    sketch.add(start + static_cast<double>(i));
  }
  return sketch;
}

// --- merge identities ---

TEST(SketchMerge, EmptyOtherIsANoOp) {
  QuantileSketch sketch = with_values(10);
  const std::string before = sketch.to_json();
  sketch.merge(QuantileSketch{});
  EXPECT_EQ(sketch.to_json(), before);
  EXPECT_EQ(sketch.count(), 10u);
}

TEST(SketchMerge, IntoEmptyEqualsCopy) {
  // Exact-mode source.
  const QuantileSketch exact = with_values(10);
  QuantileSketch target;
  target.merge(exact);
  EXPECT_EQ(target.to_json(), exact.to_json());

  // Bucketed source: merging into a fresh sketch reproduces its bytes too.
  const QuantileSketch spilled = with_values(200);
  EXPECT_FALSE(spilled.exact_mode());
  QuantileSketch target2;
  target2.merge(spilled);
  EXPECT_EQ(target2.to_json(), spilled.to_json());
}

TEST(SketchMerge, SingletonBothDirections) {
  QuantileSketch one;
  one.add(42.0);
  QuantileSketch many = with_values(5);
  many.merge(one);
  EXPECT_EQ(many.count(), 6u);
  EXPECT_TRUE(many.exact_mode());
  EXPECT_DOUBLE_EQ(many.max(), 42.0);
  EXPECT_DOUBLE_EQ(many.quantile(1.0), 42.0);

  QuantileSketch other = with_values(5);
  one.merge(other);
  EXPECT_EQ(one.count(), 6u);
  // Serialization sorts exact samples, so merge order cannot matter.
  EXPECT_EQ(one.to_json(), many.to_json());
}

TEST(SketchMerge, ExactPairStaysExactUnderThreshold) {
  QuantileSketch a = with_values(60);
  const QuantileSketch b = with_values(60, 100.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 120u);
  EXPECT_TRUE(a.exact_mode());  // 120 <= 128: no precision given up
  EXPECT_DOUBLE_EQ(a.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(a.quantile(1.0), 159.0);
}

TEST(SketchMerge, ExactPairCrossingThresholdSpills) {
  QuantileSketch a = with_values(100);
  const QuantileSketch b = with_values(50, 200.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 150u);
  EXPECT_FALSE(a.exact_mode());  // 150 > 128: bucketed from here on
  // Relative error stays within alpha on a quantile inside each side.
  EXPECT_NEAR(a.quantile(0.25), 38.25, 38.25 * 2 * a.alpha());
}

// --- exact -> bucketed crossover at the threshold ---

TEST(SketchCrossover, SpillsOnAddPastThreshold) {
  QuantileSketch sketch = with_values(QuantileSketch::kDefaultExactThreshold);
  EXPECT_TRUE(sketch.exact_mode());  // 128 values: still exact
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 64.5);  // interpolated

  sketch.add(129.0);  // 129th value crosses
  EXPECT_FALSE(sketch.exact_mode());
  EXPECT_EQ(sketch.count(), QuantileSketch::kDefaultExactThreshold + 1);
  // Count/sum/extrema are exact either side of the spill.
  EXPECT_DOUBLE_EQ(sketch.min(), 1.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 129.0);
  EXPECT_DOUBLE_EQ(sketch.mean(), 65.0);
  // Quantiles degrade only to the alpha relative-error guarantee.
  EXPECT_NEAR(sketch.quantile(0.5), 65.0, 65.0 * 2 * sketch.alpha());
}

TEST(SketchCrossover, JsonRoundTripsInBothModes) {
  const QuantileSketch exact = with_values(128);
  EXPECT_EQ(QuantileSketch::from_json(exact.to_json()).to_json(),
            exact.to_json());
  const QuantileSketch spilled = with_values(129);
  EXPECT_EQ(QuantileSketch::from_json(spilled.to_json()).to_json(),
            spilled.to_json());
}

TEST(SketchCrossover, CustomThreshold) {
  QuantileSketch sketch(QuantileSketch::kDefaultAlpha, 4);
  for (int i = 1; i <= 4; ++i) sketch.add(i);
  EXPECT_TRUE(sketch.exact_mode());
  sketch.add(5.0);
  EXPECT_FALSE(sketch.exact_mode());
  EXPECT_EQ(sketch.count(), 5u);
}

// --- time-series windows at exact boundaries ---

constexpr std::int64_t kWindowNs = 1'000'000'000;  // 1 s

TEST(TimeSeriesBoundary, SampleAtExactBoundaryStartsTheNextWindow) {
  TimeSeriesChannel channel("c", kWindowNs);
  channel.add(SimTime::nanos(0), 1.0);             // t = 0: window 0
  channel.add(SimTime::nanos(kWindowNs - 1), 2.0); // last ns of window 0
  channel.add(SimTime::nanos(kWindowNs), 3.0);     // t = 1*w: window 1
  channel.add(SimTime::nanos(2 * kWindowNs), 4.0); // t = 2*w: window 2
  const std::vector<Window>& windows = channel.finish();
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].index, 0);
  EXPECT_EQ(windows[0].count, 2u);
  EXPECT_DOUBLE_EQ(windows[0].min, 1.0);
  EXPECT_DOUBLE_EQ(windows[0].max, 2.0);
  EXPECT_DOUBLE_EQ(windows[0].last, 2.0);
  EXPECT_EQ(windows[1].index, 1);
  EXPECT_EQ(windows[1].count, 1u);
  EXPECT_DOUBLE_EQ(windows[1].sum, 3.0);
  EXPECT_EQ(windows[2].index, 2);
  EXPECT_DOUBLE_EQ(windows[2].last, 4.0);
}

TEST(TimeSeriesBoundary, OnlyBoundarySamples) {
  // Every sample lands exactly on t = k * window: one window per sample,
  // never a stray sample in window k-1.
  TimeSeriesChannel channel("c", kWindowNs);
  for (std::int64_t k = 0; k < 4; ++k) {
    channel.add(SimTime::nanos(k * kWindowNs), static_cast<double>(k));
  }
  const auto& windows = channel.finish();
  ASSERT_EQ(windows.size(), 4u);
  for (std::int64_t k = 0; k < 4; ++k) {
    EXPECT_EQ(windows[static_cast<std::size_t>(k)].index, k);
    EXPECT_EQ(windows[static_cast<std::size_t>(k)].count, 1u);
    EXPECT_DOUBLE_EQ(windows[static_cast<std::size_t>(k)].sum,
                     static_cast<double>(k));
  }
  EXPECT_EQ(channel.total_samples(), 4u);
}

TEST(TimeSeriesBoundary, GapAcrossEmptyWindowsIsAbsentNotZero) {
  TimeSeriesChannel channel("c", kWindowNs);
  channel.add(SimTime::nanos(0), 1.0);
  channel.add(SimTime::nanos(5 * kWindowNs), 2.0);  // windows 1..4 empty
  const auto& windows = channel.finish();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].index, 0);
  EXPECT_EQ(windows[1].index, 5);
}

}  // namespace
