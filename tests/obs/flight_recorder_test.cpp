// Flight-recorder tests: the per-packet lifecycle trace must not perturb
// the simulation, its JSONL serialization must round-trip losslessly and
// byte-stably, and the analyzer's deadline-miss attribution must reconcile
// EXACTLY with StreamTrace::late_fraction_playback_order.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>

#include "obs/trace_analyzer.hpp"
#include "stream/session.hpp"

namespace dmp {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

SessionConfig flight_session(const std::string& prefix) {
  SessionConfig config;
  config.path_configs = {table1_config(4), table1_config(4)};
  config.mu_pps = 50.0;
  config.duration_s = 60.0;
  config.warmup_s = 10.0;
  config.drain_s = 30.0;
  config.seed = 7;
  config.obs.flight_recorder = true;
  config.obs.output_dir = "flight_recorder_test_out";
  config.obs.prefix = prefix;
  return config;
}

// Two congested paths small enough that video packets are drop-tailed at
// the bottleneck: exercises retransmission and drop events in the trace.
SessionConfig tight_session(const std::string& prefix) {
  PathConfig path;
  path.id = 1;
  path.ftp_flows = 2;
  path.http_flows = 0;
  path.prop_delay = SimTime::millis(20);
  path.bandwidth_bps = 1.0e6;
  path.buffer_packets = 5;
  SessionConfig config;
  config.path_configs = {path, path};
  config.mu_pps = 50.0;
  config.duration_s = 20.0;
  config.warmup_s = 5.0;
  config.drain_s = 10.0;
  config.seed = 11;
  config.obs.flight_recorder = true;
  config.obs.output_dir = "flight_recorder_test_out";
  config.obs.prefix = prefix;
  return config;
}

TEST(FlightRecorder, RunMatchesPlainRunPacketForPacket) {
  // The recorder must not perturb the simulation: identical seeds give
  // identical client traces with and without the recorder attached.
  SessionConfig plain = flight_session("unused");
  plain.obs = obs::ObsConfig{};
  const auto a = run_session(plain);
  const auto b = run_session(flight_session("perturb"));
  ASSERT_NE(b.flight, nullptr);
  EXPECT_EQ(a.packets_generated, b.packets_generated);
  ASSERT_EQ(a.trace.arrivals(), b.trace.arrivals());
  for (std::size_t i = 0; i < a.trace.arrivals(); ++i) {
    ASSERT_EQ(a.trace.entries()[i].packet_number,
              b.trace.entries()[i].packet_number);
    ASSERT_EQ(a.trace.entries()[i].arrived, b.trace.entries()[i].arrived);
    ASSERT_EQ(a.trace.entries()[i].path, b.trace.entries()[i].path);
  }
}

TEST(FlightRecorder, AnalyzerReconcilesExactlyWithStreamTrace) {
  const auto result = run_session(flight_session("reconcile"));
  ASSERT_NE(result.flight, nullptr);
  ASSERT_GT(result.packets_generated, 0);
  EXPECT_EQ(result.artifact_write_failures, 0);

  const obs::TraceAnalyzer analyzer(*result.flight);
  EXPECT_EQ(analyzer.total_packets_hint(), result.packets_generated);
  for (const double tau : {0.05, 0.1, 0.2, 0.5, 1.0, 2.0}) {
    const auto report = analyzer.attribute(tau);
    ASSERT_EQ(report.total_packets, result.packets_generated);
    EXPECT_EQ(report.arrived,
              static_cast<std::int64_t>(result.trace.arrivals()));
    // Exact equality, not approximate: the analyzer replicates the trace
    // metric's integer-nanosecond arithmetic operation for operation.
    EXPECT_EQ(report.late_fraction(),
              result.trace.late_fraction_playback_order(
                  tau, result.packets_generated))
        << "tau=" << tau;

    // Every late packet carries exactly one cause.
    const std::int64_t attributed = std::accumulate(
        report.by_cause.begin(), report.by_cause.end(), std::int64_t{0});
    EXPECT_EQ(attributed, report.late) << "tau=" << tau;
    EXPECT_EQ(static_cast<std::int64_t>(report.verdicts.size()),
              report.late -
                  report.by_cause[static_cast<std::size_t>(
                      obs::LateCause::kNeverArrived)])
        << "tau=" << tau;
    for (const auto& v : report.verdicts) {
      EXPECT_TRUE(v.late);
      EXPECT_GT(v.arrive_rel_ns, v.deadline_rel_ns);
    }
  }
}

TEST(FlightRecorder, FaultedSessionReconcilesAndAttributesPathFault) {
  // A 5 s blackhole of path0 mid-stream: the kPathFault events the
  // injector records must (a) show up as the path_fault cause for packets
  // whose flight window overlaps the outage, and (b) leave the analyzer's
  // late fraction EXACTLY equal to the trace metric at every tau — fault
  // attribution is a relabeling of causes, never a change in the count.
  SessionConfig config = flight_session("faulted");
  config.faults = "20 link_down path0; 25 link_up path0";
  const auto result = run_session(config);
  ASSERT_NE(result.flight, nullptr);
  EXPECT_EQ(result.fault_events_fired, 2u);

  // The fault events themselves are in the trace.
  std::size_t fault_events = 0;
  for (const auto& e : result.flight->events()) {
    if (e.kind == obs::FlightEventKind::kPathFault) {
      ++fault_events;
      EXPECT_EQ(e.path, 0);
    }
  }
  EXPECT_EQ(fault_events, 2u);

  const obs::TraceAnalyzer analyzer(*result.flight);
  bool saw_path_fault = false;
  for (const double tau : {0.05, 0.1, 0.5, 1.0, 2.0, 4.0}) {
    const auto report = analyzer.attribute(tau);
    ASSERT_EQ(report.total_packets, result.packets_generated);
    EXPECT_EQ(report.late_fraction(),
              result.trace.late_fraction_playback_order(
                  tau, result.packets_generated))
        << "tau=" << tau;
    const std::int64_t attributed = std::accumulate(
        report.by_cause.begin(), report.by_cause.end(), std::int64_t{0});
    EXPECT_EQ(attributed, report.late) << "tau=" << tau;
    saw_path_fault |=
        report.by_cause[static_cast<std::size_t>(
            obs::LateCause::kPathFault)] > 0;
  }
  // A 5 s outage against mu = 50 pkts/s makes *some* deadline miss
  // attributable to the fault at the tighter taus.
  EXPECT_TRUE(saw_path_fault);
}

TEST(FlightRecorder, JsonlRoundTripsLosslessly) {
  obs::FlightRecorder recorder;
  recorder.set_meta(50.0, 123456789, 3);

  obs::FlightEvent gen;
  gen.t_ns = 1000;
  gen.kind = obs::FlightEventKind::kGenerate;
  gen.packet = 0;
  gen.queue = 1;
  recorder.record(gen);

  obs::FlightEvent pull = gen;
  pull.t_ns = 1500;
  pull.kind = obs::FlightEventKind::kPull;
  pull.path = 1;
  pull.queue = 0;
  recorder.record(pull);

  obs::FlightEvent send;
  send.t_ns = 2000;
  send.kind = obs::FlightEventKind::kTcpSend;
  send.packet = 0;
  send.path = 1;
  send.seq = 7;
  send.attempt = 2;
  send.reason = obs::RtxReason::kFastRtx;
  send.cwnd = 3.5;
  send.ssthresh = 2.0;
  recorder.record(send);

  obs::FlightEvent hop;
  hop.t_ns = 2500;
  hop.kind = obs::FlightEventKind::kLinkDrop;
  hop.packet = 0;
  hop.path = 1;
  hop.hop = 1;
  hop.seq = 7;
  hop.queue = 5;
  recorder.record(hop);

  obs::FlightEvent rto;
  rto.t_ns = 3000;
  rto.kind = obs::FlightEventKind::kRto;
  rto.path = 1;
  rto.cwnd = 1.0;
  rto.ssthresh = 2.0;
  recorder.record(rto);

  obs::FlightEvent arrive;
  arrive.t_ns = 4000;
  arrive.kind = obs::FlightEventKind::kArrive;
  arrive.packet = 0;
  arrive.path = 1;
  recorder.record(arrive);

  std::ostringstream first;
  recorder.to_jsonl(first);

  std::istringstream in(first.str());
  const obs::FlightRecorder reloaded = obs::read_flight_trace(in);
  EXPECT_EQ(reloaded.mu_pps(), 50.0);
  EXPECT_EQ(reloaded.epoch_ns(), 123456789);
  EXPECT_EQ(reloaded.total_packets(), 3);
  ASSERT_EQ(reloaded.events().size(), recorder.events().size());

  std::ostringstream second;
  reloaded.to_jsonl(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(FlightRecorder, LoaderRejectsMalformedLines) {
  {
    std::istringstream in("{\"t_ns\":5,\"pkt\":0}\n");
    EXPECT_THROW(obs::read_flight_trace(in), std::runtime_error);
  }
  {
    std::istringstream in("{\"t_ns\":5,\"ev\":\"warp\",\"pkt\":0}\n");
    EXPECT_THROW(obs::read_flight_trace(in), std::runtime_error);
  }
  {
    std::istringstream in("{\"ev\":\"gen\",\"pkt\":0}\n");
    EXPECT_THROW(obs::read_flight_trace(in), std::runtime_error);
  }
  EXPECT_THROW(obs::read_flight_trace_file("does_not_exist.jsonl"),
               std::runtime_error);
}

TEST(FlightRecorder, GoldenTraceIsByteStableAcrossRuns) {
  const auto a = run_session(tight_session("golden_a"));
  const auto b = run_session(tight_session("golden_b"));
  ASSERT_FALSE(a.trace_path.empty());
  ASSERT_TRUE(std::filesystem::exists(a.trace_path));
  ASSERT_TRUE(std::filesystem::exists(b.trace_path));
  EXPECT_EQ(a.artifact_write_failures, 0);

  const std::string bytes_a = slurp(a.trace_path);
  const std::string bytes_b = slurp(b.trace_path);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);

  // The tight bottleneck forced at least one video drop, and the drop and
  // the ensuing retransmission made it into the trace.
  EXPECT_NE(bytes_a.find("\"ev\":\"link_drop\""), std::string::npos);
  EXPECT_NE(bytes_a.find("\"attempt\":2"), std::string::npos);

  // Attribution is equally stable: same late count, same per-cause split.
  const obs::TraceAnalyzer analyzer_a(*a.flight);
  const obs::TraceAnalyzer analyzer_b(*b.flight);
  const auto report_a = analyzer_a.attribute(0.5);
  const auto report_b = analyzer_b.attribute(0.5);
  EXPECT_EQ(report_a.late, report_b.late);
  EXPECT_EQ(report_a.by_cause, report_b.by_cause);
  EXPECT_EQ(report_a.late_fraction(),
            a.trace.late_fraction_playback_order(0.5, a.packets_generated));

  // Reloading the written file reproduces the in-memory recorder exactly.
  const auto reloaded = obs::read_flight_trace_file(a.trace_path);
  std::ostringstream out;
  reloaded.to_jsonl(out);
  EXPECT_EQ(out.str(), bytes_a);
}

}  // namespace
}  // namespace dmp
