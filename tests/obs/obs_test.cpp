// Unit tests for the observability layer: metrics registry, event log,
// probes and run reports.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/run_report.hpp"
#include "sim/scheduler.hpp"

namespace dmp::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::size_t count_lines(const std::string& text) {
  std::size_t n = 0;
  for (char c : text) {
    if (c == '\n') ++n;
  }
  return n;
}

TEST(Counter, IncrementsAndDefaultsToZero) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetValueAndSampler) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  EXPECT_FALSE(g.has_sampler());

  double backing = 7.0;
  g.set_sampler([&backing] { return backing; });
  EXPECT_TRUE(g.has_sampler());
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  backing = 9.0;
  EXPECT_DOUBLE_EQ(g.value(), 9.0);

  // freeze() pins the current value and detaches the sampler.
  g.freeze();
  EXPECT_FALSE(g.has_sampler());
  backing = 100.0;
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
}

TEST(Histogram, ExactMomentsApproximateQuantiles) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);

  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i) * 1e-3);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.sum(), 5.05, 1e-12);
  EXPECT_NEAR(h.mean(), 0.0505, 1e-12);
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 0.1);

  // Log2 buckets: quantiles are exact to a factor of sqrt(2).
  EXPECT_NEAR(h.quantile(0.5), 0.050, 0.5 * 0.050);
  EXPECT_NEAR(h.quantile(0.99), 0.100, 0.5 * 0.100);
  EXPECT_LE(h.quantile(0.0), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(1.0));
  EXPECT_LE(h.quantile(1.0), h.max());
  EXPECT_GE(h.quantile(0.0), h.min());
}

TEST(Histogram, UnderflowAndHugeValuesLandInEdgeBuckets) {
  Histogram h;
  h.observe(1e-12);  // below `lowest` -> bucket 0
  h.observe(1e30);   // beyond the top bucket -> clamped to the last
  EXPECT_EQ(h.buckets().front(), 1u);
  EXPECT_EQ(h.buckets().back(), 1u);
  EXPECT_EQ(h.count(), 2u);
}

TEST(MetricsRegistry, GetOrCreateAndFind) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("x"), nullptr);
  reg.counter("x").inc(3);
  reg.counter("x").inc(4);  // same counter, not a new one
  ASSERT_NE(reg.find_counter("x"), nullptr);
  EXPECT_EQ(reg.find_counter("x")->value(), 7u);
  EXPECT_EQ(reg.counters().size(), 1u);

  reg.gauge("g").set(1.25);
  EXPECT_EQ(reg.find_gauge("missing"), nullptr);
  EXPECT_DOUBLE_EQ(reg.find_gauge("g")->value(), 1.25);

  reg.histogram("h").observe(2.0);
  ASSERT_NE(reg.find_histogram("h"), nullptr);
  EXPECT_EQ(reg.find_histogram("h")->count(), 1u);
}

TEST(MetricsRegistry, StableAddressesAcrossInsertions) {
  MetricsRegistry reg;
  Counter* first = &reg.counter("a");
  for (int i = 0; i < 100; ++i) reg.counter("c" + std::to_string(i));
  EXPECT_EQ(first, &reg.counter("a"));  // node-based storage: no relocation
}

TEST(MetricsRegistry, FreezeGaugesDetachesAllSamplers) {
  MetricsRegistry reg;
  double v = 5.0;
  reg.gauge("a").set_sampler([&v] { return v; });
  reg.gauge("b").set(2.0);
  reg.freeze_gauges();
  v = 99.0;
  EXPECT_DOUBLE_EQ(reg.find_gauge("a")->value(), 5.0);
  EXPECT_FALSE(reg.find_gauge("a")->has_sampler());
  EXPECT_DOUBLE_EQ(reg.find_gauge("b")->value(), 2.0);
}

TEST(EventLog, SeverityFilterDropsBelowThreshold) {
  EventLog log(0, Severity::kInfo);
  EXPECT_FALSE(log.enabled(Severity::kDebug));
  EXPECT_TRUE(log.enabled(Severity::kWarn));
  log.record(1.0, Severity::kDebug, "pull", {});
  log.record(2.0, Severity::kInfo, "accept", {});
  log.record(3.0, Severity::kWarn, "drop", {});
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.total_recorded(), 2u);
  EXPECT_EQ(log.events().front().type, "accept");
}

TEST(EventLog, RingBufferTruncatesOldestAndCountsEvictions) {
  EventLog log(3);
  for (int i = 0; i < 10; ++i) {
    log.record(static_cast<double>(i), Severity::kInfo, "e",
               {EventField::num("i", i)});
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.ring_capacity(), 3u);
  EXPECT_EQ(log.total_recorded(), 10u);
  EXPECT_EQ(log.overwritten(), 7u);
  // The retained window is the newest three events, in order.
  EXPECT_DOUBLE_EQ(log.events()[0].time_s, 7.0);
  EXPECT_DOUBLE_EQ(log.events()[2].time_s, 9.0);
}

TEST(EventLog, JsonlShapeAndEscaping) {
  EventLog log;
  log.record(1.5, Severity::kWarn, "drop",
             {EventField::num("flow", std::int64_t{4}),
              EventField::num("queue", 12.0),
              EventField::text("note", "a \"quoted\"\nline")});
  std::ostringstream out;
  log.to_jsonl(out);
  const std::string line = out.str();
  EXPECT_NE(line.find("\"sev\":\"warn\""), std::string::npos);
  EXPECT_NE(line.find("\"type\":\"drop\""), std::string::npos);
  EXPECT_NE(line.find("\"flow\":4"), std::string::npos);
  EXPECT_NE(line.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(line.find("\\n"), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(count_lines(line), 1u);
}

TEST(Probe, SamplesAtFixedSimulatedInterval) {
  Scheduler sched;
  MetricsRegistry reg;
  reg.gauge("depth").set_sampler([&sched] {
    return sched.now().to_seconds() * 10.0;  // deterministic ramp
  });
  const std::string path = "probe_unit_test.csv";
  Probe probe(sched, reg, {"depth"}, path, SimTime::seconds(1));
  probe.start(SimTime::seconds(5));
  sched.run_until(SimTime::seconds(10));
  // t = 0,1,2,3,4,5 inclusive.
  EXPECT_EQ(probe.samples(), 6u);

  const std::string text = slurp(path);
  EXPECT_EQ(text.substr(0, text.find('\n')), "time_s,depth");
  EXPECT_EQ(count_lines(text), 7u);  // header + 6 rows
  EXPECT_NE(text.find("\n2,20"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Probe, RejectsNonPositiveInterval) {
  Scheduler sched;
  MetricsRegistry reg;
  EXPECT_THROW(Probe(sched, reg, {}, "probe_bad_interval.csv",
                     SimTime::zero()),
               std::invalid_argument);
  EXPECT_THROW(WallClockProbe(reg, {}, "probe_bad_interval.csv", 0),
               std::invalid_argument);
  std::remove("probe_bad_interval.csv");
}

TEST(Probe, StopCancelsFutureSamples) {
  Scheduler sched;
  MetricsRegistry reg;
  reg.gauge("g").set(1.0);
  const std::string path = "probe_stop_test.csv";
  Probe probe(sched, reg, {"g"}, path, SimTime::seconds(1));
  probe.start();
  sched.run_until(SimTime::seconds(2));
  probe.stop();
  sched.run_until(SimTime::seconds(10));
  EXPECT_EQ(probe.samples(), 3u);  // t = 0, 1, 2
  std::remove(path.c_str());
}

TEST(WallClockProbe, PollSamplesOnElapsedIntervals) {
  MetricsRegistry reg;
  reg.gauge("q").set(4.0);
  const std::string path = "probe_wall_test.csv";
  {
    WallClockProbe probe(reg, {"q"}, path, 1'000'000'000ull);  // 1 s
    const std::uint64_t epoch = 55'000'000'000ull;  // arbitrary clock origin
    probe.poll(epoch);                        // first poll -> sample at t=0
    probe.poll(epoch + 100'000'000ull);       // 0.1 s: too soon
    probe.poll(epoch + 1'500'000'000ull);     // 1.5 s: second sample
    probe.poll(epoch + 1'600'000'000ull);     // still within the interval
    probe.poll(epoch + 3'100'000'000ull);     // 3.1 s: third sample
    EXPECT_EQ(probe.samples(), 3u);
  }
  const std::string text = slurp(path);
  EXPECT_EQ(count_lines(text), 4u);  // header + 3 rows
  std::remove(path.c_str());
}

TEST(RunReport, JsonContainsMetaSeriesAndMetrics) {
  MetricsRegistry reg;
  reg.counter("tcp.path0.timeouts").inc(5);
  reg.gauge("tcp.path0.cwnd").set(17.0);
  reg.histogram("client.delay_s").observe(0.25);

  RunReport report;
  report.set_text("scheme", "dmp");
  report.set_scalar("mu_pps", 50.0);
  report.set_scalar("packets_generated", std::int64_t{1000});
  report.set_series("path_split", {0.75, 0.25});

  const std::string json = report.to_json(&reg);
  EXPECT_NE(json.find("\"scheme\":\"dmp\""), std::string::npos);
  EXPECT_NE(json.find("\"packets_generated\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"path_split\":[0.75,0.25]"), std::string::npos);
  EXPECT_NE(json.find("\"tcp.path0.timeouts\":5"), std::string::npos);
  EXPECT_NE(json.find("\"tcp.path0.cwnd\":17"), std::string::npos);
  EXPECT_NE(json.find("\"client.delay_s\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);

  // Null registry: meta/series only, still valid shape.
  const std::string bare = report.to_json(nullptr);
  EXPECT_NE(bare.find("\"meta\""), std::string::npos);
  EXPECT_EQ(bare.find("tcp.path0"), std::string::npos);
}

TEST(RunReport, WriteRoundTripsThroughDisk) {
  RunReport report;
  report.set_scalar("seed", std::int64_t{7});
  const std::string path = "report_unit_test.json";
  report.write(path, nullptr);
  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"seed\":7"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dmp::obs
