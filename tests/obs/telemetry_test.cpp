// Streaming-telemetry unit tests: quantile-sketch accuracy and merge
// algebra, windowed time-series semantics, the session telemetry hub, and
// the DES self-profiler.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "obs/run_report.hpp"
#include "obs/telemetry/sketch.hpp"
#include "obs/telemetry/telemetry.hpp"
#include "obs/telemetry/time_series.hpp"
#include "sim/profiler.hpp"
#include "sim/scheduler.hpp"

namespace {

using dmp::EventCategory;
using dmp::SchedProfile;
using dmp::Scheduler;
using dmp::SimTime;
using dmp::obs::QuantileSketch;
using dmp::obs::SessionTelemetry;
using dmp::obs::TelemetryConfig;
using dmp::obs::TimeSeries;
using dmp::obs::TimeSeriesChannel;
using dmp::obs::Window;

// Exact order statistics bracketing rank q*(n-1); the sketch's bucketed
// answer must be within relative error alpha of that bracket.
void expect_quantile_within(const QuantileSketch& sketch,
                            std::vector<double> sorted, double q,
                            double alpha) {
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const double lo = sorted[static_cast<std::size_t>(std::floor(pos))];
  const double hi = sorted[static_cast<std::size_t>(std::ceil(pos))];
  const double est = sketch.quantile(q);
  // Guarantee: est is within alpha (plus FP slack) of SOME value in
  // [lo, hi] — i.e. est/(1+a) <= hi and est*(1+a) >= lo, sign-adjusted.
  const double a = alpha * 1.001 + 1e-12;
  const double lo_bound = lo >= 0.0 ? lo * (1.0 - a) : lo * (1.0 + a);
  const double hi_bound = hi >= 0.0 ? hi * (1.0 + a) : hi * (1.0 - a);
  EXPECT_GE(est, lo_bound - 1e-12) << "q=" << q;
  EXPECT_LE(est, hi_bound + 1e-12) << "q=" << q;
}

TEST(QuantileSketch, ExactModeMatchesInterpolatedQuantiles) {
  QuantileSketch sketch;  // threshold 128 — these 11 samples stay exact
  std::vector<double> values{5, 1, 4, 2, 8, 9, 3, 7, 6, 0, 10};
  for (double v : values) sketch.add(v);
  EXPECT_TRUE(sketch.exact_mode());
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.25), 2.5);
  EXPECT_EQ(sketch.count(), 11u);
  EXPECT_DOUBLE_EQ(sketch.min(), 0.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 10.0);
}

TEST(QuantileSketch, RelativeErrorOnAdversarialDistributions) {
  const double alpha = 0.01;
  std::mt19937_64 rng(7);

  // Distributions chosen to stress the log buckets: many decades of scale,
  // heavy tails, duplicated point masses, negatives and exact zeros.
  const auto log_uniform = [&rng] {
    std::uniform_real_distribution<double> u(-9.0, 9.0);
    return [&rng, u]() mutable { return std::pow(10.0, u(rng)); };
  };
  const auto pareto = [&rng] {
    std::uniform_real_distribution<double> u(1e-9, 1.0);
    return [&rng, u]() mutable { return std::pow(u(rng), -1.0 / 1.2); };
  };
  const auto point_masses = [&rng] {
    std::uniform_int_distribution<int> pick(0, 2);
    return [&rng, pick]() mutable {
      return std::vector<double>{1e-6, 1.0, 1e6}[pick(rng)];
    };
  };
  const auto mixed_sign = [&rng] {
    std::uniform_real_distribution<double> u(-4.0, 4.0);
    std::uniform_int_distribution<int> z(0, 9);
    return [&rng, u, z]() mutable {
      if (z(rng) == 0) return 0.0;
      const double mag = std::pow(10.0, u(rng));
      return z(rng) % 2 == 0 ? mag : -mag;
    };
  };

  const std::vector<std::function<double()>> gens{
      log_uniform(), pareto(), point_masses(), mixed_sign()};
  for (auto& gen : gens) {
    QuantileSketch sketch(alpha);
    std::vector<double> values;
    for (int i = 0; i < 5000; ++i) {
      const double v = gen();
      values.push_back(v);
      sketch.add(v);
    }
    EXPECT_FALSE(sketch.exact_mode());
    for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999}) {
      expect_quantile_within(sketch, values, q, alpha);
    }
  }
}

TEST(QuantileSketch, MergeEqualsBulkAccumulation) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> u(0.001, 1000.0);
  QuantileSketch bulk;
  std::vector<QuantileSketch> parts;
  for (int p = 0; p < 4; ++p) parts.emplace_back();
  for (int i = 0; i < 2000; ++i) {
    const double v = u(rng);
    bulk.add(v);
    parts[static_cast<std::size_t>(i % 4)].add(v);
  }
  QuantileSketch merged;
  for (const auto& part : parts) merged.merge(part);
  EXPECT_EQ(merged.count(), bulk.count());
  EXPECT_DOUBLE_EQ(merged.quantile(0.5), bulk.quantile(0.5));
  EXPECT_DOUBLE_EQ(merged.quantile(0.99), bulk.quantile(0.99));
  EXPECT_DOUBLE_EQ(merged.min(), bulk.min());
  EXPECT_DOUBLE_EQ(merged.max(), bulk.max());
}

TEST(QuantileSketch, MergeAssociativeAndCommutative) {
  // Dyadic values make every partial FP sum exact, so the merged states
  // are byte-identical in any association/order — the strongest form of
  // the algebraic property (for general doubles the bucket counts are
  // still order-free; only the running sum picks up FP noise).
  const auto make = [](int lo, int hi) {
    QuantileSketch s(0.02, 4);  // tiny threshold: force bucketed mode
    for (int i = lo; i < hi; ++i) {
      s.add(static_cast<double>(i) / 1024.0);
    }
    return s;
  };
  const QuantileSketch a = make(1, 300);
  const QuantileSketch b = make(300, 700);
  const QuantileSketch c = make(700, 1200);

  QuantileSketch ab_c(0.02, 4);
  ab_c.merge(a);
  ab_c.merge(b);
  ab_c.merge(c);
  QuantileSketch a_bc = a;  // copy, then fold (b merged c) in
  QuantileSketch bc = b;
  bc.merge(c);
  a_bc.merge(bc);
  QuantileSketch cba(0.02, 4);
  cba.merge(c);
  cba.merge(b);
  cba.merge(a);

  EXPECT_EQ(ab_c.to_json(), a_bc.to_json());
  EXPECT_EQ(ab_c.to_json(), cba.to_json());
}

TEST(QuantileSketch, ExactMergeStaysExactUnderThreshold) {
  QuantileSketch a(0.01, 16), b(0.01, 16);
  for (int i = 0; i < 6; ++i) a.add(i);
  for (int i = 6; i < 12; ++i) b.add(i);
  a.merge(b);
  EXPECT_TRUE(a.exact_mode());
  EXPECT_DOUBLE_EQ(a.quantile(1.0), 11.0);
  b.merge(a);  // 6 + 12 > 16 — must spill
  EXPECT_FALSE(b.exact_mode());
}

TEST(QuantileSketch, JsonRoundTrip) {
  // Exact mode: values inserted in sorted order so the re-accumulated sum
  // is bit-identical and the round trip reproduces the bytes.
  QuantileSketch exact(0.01, 32);
  for (double v : {-3.0, -0.5, 0.0, 0.25, 1.5, 9.75}) exact.add(v);
  const std::string exact_json = exact.to_json();
  EXPECT_EQ(QuantileSketch::from_json(exact_json).to_json(), exact_json);

  // Bucketed mode with negatives and zeros.
  QuantileSketch bucketed(0.02, 4);
  for (int i = -50; i <= 50; ++i) bucketed.add(static_cast<double>(i));
  EXPECT_FALSE(bucketed.exact_mode());
  const std::string json = bucketed.to_json();
  const QuantileSketch back = QuantileSketch::from_json(json);
  EXPECT_EQ(back.to_json(), json);
  EXPECT_EQ(back.count(), bucketed.count());
  EXPECT_DOUBLE_EQ(back.quantile(0.5), bucketed.quantile(0.5));
  EXPECT_DOUBLE_EQ(back.quantile(0.05), bucketed.quantile(0.05));

  // Extra keys (the hub injects "name") are ignored.
  const std::string named = "{\"name\":\"client.delay_s\"," + json.substr(1);
  EXPECT_EQ(QuantileSketch::from_json(named).count(), bucketed.count());
}

TEST(QuantileSketch, EmptySketchJsonHasNullExtrema) {
  const QuantileSketch empty;
  const std::string json = empty.to_json();
  EXPECT_NE(json.find("\"min\":null"), std::string::npos);
  EXPECT_NE(json.find("\"max\":null"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(QuantileSketch, Validation) {
  QuantileSketch sketch;
  EXPECT_THROW(sketch.add(std::nan("")), std::invalid_argument);
  EXPECT_THROW(sketch.add(INFINITY), std::invalid_argument);
  EXPECT_THROW(sketch.quantile(0.5), std::logic_error);
  QuantileSketch other(0.05);
  other.add(1.0);
  EXPECT_THROW(sketch.merge(other), std::invalid_argument);
  EXPECT_THROW(QuantileSketch(0.0), std::invalid_argument);
  EXPECT_THROW(QuantileSketch::from_json("{\"bogus\":1}"), std::runtime_error);
}

TEST(TimeSeries, WindowFoldingSemantics) {
  TimeSeries series(1.0);
  TimeSeriesChannel* ch = series.channel("cwnd");
  ASSERT_NE(ch, nullptr);
  EXPECT_EQ(series.channel("cwnd"), ch);  // get-or-create is idempotent

  ch->add(SimTime::seconds(0.1), 2.0);
  ch->add(SimTime::seconds(0.9), 6.0);
  ch->add(SimTime::seconds(1.5), 4.0);
  // Window 2 is empty; next sample lands in window 3.
  ch->add(SimTime::seconds(3.25), 8.0);
  const auto& windows = ch->finish();

  ASSERT_EQ(windows.size(), 3u);  // empty window 2 absent, not zero-filled
  EXPECT_EQ(windows[0].index, 0);
  EXPECT_EQ(windows[0].count, 2u);
  EXPECT_DOUBLE_EQ(windows[0].sum, 8.0);
  EXPECT_DOUBLE_EQ(windows[0].mean(), 4.0);
  EXPECT_DOUBLE_EQ(windows[0].min, 2.0);
  EXPECT_DOUBLE_EQ(windows[0].max, 6.0);
  EXPECT_DOUBLE_EQ(windows[0].last, 6.0);
  EXPECT_EQ(windows[1].index, 1);
  EXPECT_EQ(windows[2].index, 3);
  EXPECT_EQ(ch->total_samples(), 4u);
}

TEST(TimeSeries, BumpCountsEventsPerWindow) {
  TimeSeries series(0.5);
  TimeSeriesChannel* drops = series.channel("drops");
  for (int i = 0; i < 7; ++i) drops->bump(SimTime::millis(100 * i));
  const auto& windows = drops->finish();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_DOUBLE_EQ(windows[0].sum, 5.0);  // t = 0.0 .. 0.4
  EXPECT_DOUBLE_EQ(windows[1].sum, 2.0);  // t = 0.5, 0.6
}

TEST(TimeSeries, CsvNeverContainsNonFiniteAndIsSorted) {
  TimeSeries series(1.0);
  series.channel("zzz")->add(SimTime::seconds(0.0), 1.0);
  series.channel("aaa")->add(SimTime::seconds(5.0), 2.0);
  series.channel("empty");  // no samples: contributes no rows
  const std::string path = ::testing::TempDir() + "telemetry_test.csv";
  ASSERT_TRUE(series.write_csv(path));

  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "window_start_s,channel,count,sum,mean,min,max,last");
  EXPECT_EQ(lines[1], "5,aaa,1,2,2,2,2,2");
  EXPECT_EQ(lines[2], "0,zzz,1,1,1,1,1,1");
  for (const auto& l : lines) {
    EXPECT_EQ(l.find("inf"), std::string::npos);
    EXPECT_EQ(l.find("nan"), std::string::npos);
  }
}

TEST(SessionTelemetry, WritesNamedSketchArtifacts) {
  TelemetryConfig config;
  config.enabled = true;
  config.write_artifacts = true;
  config.output_dir = ::testing::TempDir();
  config.prefix = "hub_test";
  SessionTelemetry hub(config);
  hub.series().channel("x")->add(SimTime::seconds(0.5), 3.0);
  QuantileSketch* sketch = hub.sketch("client.delay_s");
  ASSERT_NE(sketch, nullptr);
  EXPECT_EQ(hub.sketch("client.delay_s"), sketch);
  sketch->add(0.25);
  EXPECT_EQ(hub.write_artifacts(), 0);

  std::ifstream jsonl(config.sketches_path());
  std::string line;
  ASSERT_TRUE(std::getline(jsonl, line));
  EXPECT_NE(line.find("\"name\":\"client.delay_s\""), std::string::npos);
  const auto back = QuantileSketch::from_json(line);
  EXPECT_EQ(back.count(), 1u);

  EXPECT_NE(hub.find_sketch("client.delay_s"), nullptr);
  EXPECT_EQ(hub.find_sketch("missing"), nullptr);
}

TEST(Profiler, CategoryNamesCoverEveryCategory) {
  for (std::size_t c = 0; c < dmp::kNumEventCategories; ++c) {
    const auto name =
        dmp::event_category_name(static_cast<EventCategory>(c));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "invalid");
  }
  EXPECT_EQ(dmp::event_category_name(EventCategory::kCount), "invalid");
}

TEST(Profiler, SchedulerAttributesExecutedEventsByCategory) {
  Scheduler sched;
  SchedProfile profile;
  sched.set_profiler(&profile);
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    sched.post_after(SimTime::millis(i), [&fired] { ++fired; },
                     EventCategory::kLinkTx);
  }
  sched.post_after(SimTime::millis(9), [&fired] { ++fired; },
                   EventCategory::kTcpTimer);
  sched.post_after(SimTime::millis(10), [&fired] { ++fired; });  // kOther
  sched.run();
  EXPECT_EQ(fired, 7);
  EXPECT_EQ(profile[EventCategory::kLinkTx].executed, 5u);
  EXPECT_EQ(profile[EventCategory::kTcpTimer].executed, 1u);
  EXPECT_EQ(profile[EventCategory::kOther].executed, 1u);
  EXPECT_EQ(profile.total_executed(), 7u);
  EXPECT_EQ(profile.total_wall_ns(), 0u);  // timing was not enabled
}

TEST(Profiler, WallTimingAccumulatesWhenEnabled) {
  Scheduler sched;
  SchedProfile profile;
  sched.set_profiler(&profile, /*time_events=*/true);
  sched.post_after(SimTime::millis(1), [] {
    volatile double x = 0.0;
    for (int i = 0; i < 10000; ++i) x += static_cast<double>(i);
  }, EventCategory::kSource);
  sched.run();
  EXPECT_EQ(profile[EventCategory::kSource].executed, 1u);
  EXPECT_GT(profile[EventCategory::kSource].wall_ns, 0u);
}

// Non-finite values (a stall ratio dividing by zero, an untouched
// accumulator's +/-inf sentinel) must render as JSON null, never as the
// bare "inf"/"nan" tokens std::to_chars would produce.
TEST(RunReport, NonFiniteValuesSerializeAsNull) {
  dmp::obs::RunReport report;
  report.set_scalar("stall_ratio", std::numeric_limits<double>::infinity());
  report.set_scalar("skew", std::nan(""));
  report.set_scalar("good", 1.5);
  report.set_series("mixed",
                    {1.0, -std::numeric_limits<double>::infinity(), 2.0});
  const std::string json = report.to_json(nullptr);
  EXPECT_NE(json.find("\"stall_ratio\":null"), std::string::npos);
  EXPECT_NE(json.find("\"skew\":null"), std::string::npos);
  EXPECT_NE(json.find("[1,null,2]"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(RunReport, NonFiniteGaugeSerializesAsNull) {
  dmp::obs::MetricsRegistry registry;
  registry.gauge("srtt_s").set(std::numeric_limits<double>::infinity());
  registry.histogram("empty.delay_s");  // untouched: must not emit inf
  dmp::obs::RunReport report;
  const std::string json = report.to_json(&registry);
  EXPECT_NE(json.find("\"srtt_s\":null"), std::string::npos);
  EXPECT_NE(json.find("\"empty.delay_s\""), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

}  // namespace
