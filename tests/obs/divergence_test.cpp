// Divergence observatory: residual judging, aggregate stats, and the
// canonical JSON artifact (src/obs/divergence/).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/divergence/divergence.hpp"

namespace {

using dmp::obs::DivergencePoint;
using dmp::obs::DivergenceSeries;
using dmp::obs::DivergenceStats;
using dmp::obs::DivergenceTolerance;

DivergencePoint point(double predicted, double measured, double ci_half = 0.0) {
  return {"s", 1.0, predicted, measured, ci_half};
}

TEST(DivergenceTolerance, AbsoluteClause) {
  DivergenceTolerance tol;
  tol.abs = 0.01;
  tol.within_ci = false;
  EXPECT_TRUE(point(0.10, 0.105).ok(tol));
  EXPECT_TRUE(point(0.10, 0.095).ok(tol));  // two-sided
  EXPECT_FALSE(point(0.10, 0.12).ok(tol));
}

TEST(DivergenceTolerance, ConfidenceIntervalClause) {
  DivergenceTolerance tol;  // within_ci defaults on, abs 0
  EXPECT_TRUE(point(0.10, 0.12, 0.03).ok(tol));
  EXPECT_FALSE(point(0.10, 0.12, 0.01).ok(tol));
  tol.within_ci = false;
  EXPECT_FALSE(point(0.10, 0.12, 0.03).ok(tol));
}

TEST(DivergenceTolerance, RatioClause) {
  DivergenceTolerance tol;
  tol.within_ci = false;
  tol.ratio = 10.0;
  EXPECT_TRUE(point(0.01, 0.05).ok(tol));   // 5x off, within a decade
  EXPECT_TRUE(point(0.05, 0.01).ok(tol));
  EXPECT_FALSE(point(0.001, 0.05).ok(tol));  // 50x off
  // The ratio clause needs both sides strictly positive.
  EXPECT_FALSE(point(0.0, 0.05).ok(tol));
  EXPECT_FALSE(point(0.01, 0.0).ok(tol));
}

TEST(DivergenceTolerance, OneSidedClause) {
  DivergenceTolerance tol;
  tol.one_sided = true;
  tol.within_ci = false;
  // Undershoot of any size is fine; overshoot beyond abs diverges.
  EXPECT_TRUE(point(1e-4, 0.0).ok(tol));
  EXPECT_TRUE(point(1e-4, 1e-4).ok(tol));
  EXPECT_FALSE(point(1e-4, 2e-4).ok(tol));
  tol.abs = 1e-4;
  EXPECT_TRUE(point(1e-4, 2e-4).ok(tol));
}

TEST(DivergenceSeries, StatsAggregation) {
  DivergenceSeries series;
  series.tolerance.within_ci = false;
  series.tolerance.abs = 0.05;
  series.add("a", 4.0, 0.10, 0.13);   // r = +0.03, ok
  series.add("b", 6.0, 0.10, 0.06);   // r = -0.04, ok
  series.add("c", 8.0, 0.10, 0.20);   // r = +0.10, diverged, worst
  const DivergenceStats stats = series.stats();
  EXPECT_EQ(stats.count, 3u);
  EXPECT_EQ(stats.diverged, 1u);
  EXPECT_NEAR(stats.mean_residual, (0.03 - 0.04 + 0.10) / 3.0, 1e-12);
  EXPECT_NEAR(stats.rms_residual,
              std::sqrt((0.03 * 0.03 + 0.04 * 0.04 + 0.10 * 0.10) / 3.0),
              1e-12);
  EXPECT_NEAR(stats.max_abs_residual, 0.10, 1e-12);
  EXPECT_EQ(stats.worst_setting, "c");
  EXPECT_DOUBLE_EQ(stats.worst_x, 8.0);
}

TEST(DivergenceSeries, EmptySeriesStats) {
  const DivergenceStats stats = DivergenceSeries{}.stats();
  EXPECT_EQ(stats.count, 0u);
  EXPECT_EQ(stats.diverged, 0u);
  EXPECT_EQ(stats.max_abs_residual, 0.0);
}

DivergenceSeries sample_series() {
  DivergenceSeries series;
  series.name = "fig4";
  series.metric = "late_fraction_playback";
  series.x_label = "tau_s";
  series.tolerance.abs = 1e-6;
  series.tolerance.ratio = 10.0;
  series.add("1-1", 4.0, 0.0125, 0.0120, 0.002);
  series.add("1-1", 6.0, 0.0030, 0.0500, 0.001);  // diverged
  return series;
}

TEST(DivergenceSeries, JsonIsCanonicalAndCarriesVerdicts) {
  const std::string json = sample_series().to_json();
  // Equal state -> equal bytes (the thread-invariance contract).
  EXPECT_EQ(json, sample_series().to_json());
  EXPECT_NE(json.find("\"name\": \"fig4\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(json.find("\"diverged\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"worst_setting\": \"1-1\""), std::string::npos);
  // Single line: embeds directly into the report writer's output.
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(DivergenceSeries, DocumentShapeAndFileRoundTrip) {
  const std::string doc = dmp::obs::divergence_document_json({sample_series()});
  EXPECT_EQ(doc.rfind("{\"divergence\": [", 0), 0u);

  const std::string path = "divergence_test_artifact.json";
  ASSERT_TRUE(dmp::obs::write_divergence_json({sample_series()}, path));
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), doc + "\n");
  std::remove(path.c_str());

  EXPECT_FALSE(
      dmp::obs::write_divergence_json({sample_series()}, "no/such/dir/x.json"));
}

}  // namespace
