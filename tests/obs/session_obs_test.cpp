// Sim-level observability tests: a 2-path DMP session with obs enabled must
// emit a consistent RunReport, a gauge time series, and an event log, and
// the cross-checkable numbers (per-path packet counters vs. the client
// trace's path split) must agree exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "stream/session.hpp"

namespace dmp {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

SessionConfig obs_session(const std::string& prefix) {
  SessionConfig config;
  config.path_configs = {table1_config(4), table1_config(4)};
  config.mu_pps = 50.0;
  config.duration_s = 60.0;
  config.warmup_s = 10.0;
  config.drain_s = 30.0;
  config.seed = 7;
  config.obs.enabled = true;
  config.obs.output_dir = "obs_session_test_out";
  config.obs.prefix = prefix;
  config.obs.probe_interval_s = 1.0;
  config.obs.min_severity = obs::Severity::kDebug;
  return config;
}

TEST(SessionObs, DisabledByDefaultAllocatesNothing) {
  SessionConfig config;
  config.path_configs = {table1_config(4), table1_config(4)};
  config.duration_s = 30.0;
  config.warmup_s = 5.0;
  config.drain_s = 10.0;
  const auto result = run_session(config);
  EXPECT_EQ(result.metrics, nullptr);
  EXPECT_EQ(result.events, nullptr);
  EXPECT_TRUE(result.report_path.empty());
}

TEST(SessionObs, PathCountersMatchTracePathSplit) {
  const auto result = run_session(obs_session("split"));
  ASSERT_NE(result.metrics, nullptr);

  const auto split = result.trace.path_split(2);
  const auto arrivals = static_cast<double>(result.trace.arrivals());
  ASSERT_GT(arrivals, 0.0);
  for (std::size_t k = 0; k < 2; ++k) {
    const auto* counter = result.metrics->find_counter(
        "client.path" + std::to_string(k) + ".packets");
    ASSERT_NE(counter, nullptr) << "path " << k;
    EXPECT_EQ(counter->value(),
              static_cast<std::uint64_t>(std::llround(split[k] * arrivals)))
        << "path " << k;
  }

  // The client-side delay histogram saw every arrival.
  const auto* delay = result.metrics->find_histogram("client.delay_s");
  ASSERT_NE(delay, nullptr);
  EXPECT_EQ(delay->count(), result.trace.arrivals());
  EXPECT_GT(delay->mean(), 0.0);

  // Server pulls flow through the same counters the trace measures: every
  // delivered packet was pulled exactly once.
  const auto* p0 = result.metrics->find_counter("server.pulls.path0");
  const auto* p1 = result.metrics->find_counter("server.pulls.path1");
  ASSERT_NE(p0, nullptr);
  ASSERT_NE(p1, nullptr);
  EXPECT_GE(p0->value() + p1->value(), result.trace.arrivals());
}

TEST(SessionObs, EmitsReportProbeAndEventArtifacts) {
  const auto result = run_session(obs_session("artifacts"));
  ASSERT_FALSE(result.report_path.empty());
  ASSERT_TRUE(std::filesystem::exists(result.report_path));
  ASSERT_TRUE(std::filesystem::exists(result.probe_csv_path));
  ASSERT_TRUE(std::filesystem::exists(result.events_path));

  const std::string report = slurp(result.report_path);
  EXPECT_NE(report.find("\"scheme\":\"dmp\""), std::string::npos);
  EXPECT_NE(report.find("\"path_split\""), std::string::npos);
  EXPECT_NE(report.find("\"tcp.path0.retransmissions\""), std::string::npos);
  EXPECT_NE(report.find("\"client.delay_s\""), std::string::npos);

  // The probe CSV carries per-path cwnd and the server queue time series.
  const std::string csv = slurp(result.probe_csv_path);
  const std::string header = csv.substr(0, csv.find('\n'));
  EXPECT_NE(header.find("tcp.path0.cwnd"), std::string::npos);
  EXPECT_NE(header.find("tcp.path1.cwnd"), std::string::npos);
  EXPECT_NE(header.find("server.queue_depth"), std::string::npos);
  // ~1 sample/s over a 100 s horizon: expect a real time series.
  std::size_t rows = 0;
  for (char c : csv) {
    if (c == '\n') ++rows;
  }
  EXPECT_GT(rows, 50u);

  // Table-1 bottlenecks are congested, so drops and pulls must appear.
  ASSERT_NE(result.events, nullptr);
  EXPECT_GT(result.events->total_recorded(), 0u);
  const std::string events = slurp(result.events_path);
  EXPECT_NE(events.find("\"type\":\"pull\""), std::string::npos);
  EXPECT_NE(events.find("\"type\":\"drop\""), std::string::npos);
}

TEST(SessionObs, ObsRunMatchesPlainRunPacketForPacket) {
  // Instrumentation must not perturb the simulation: identical seeds give
  // identical traces with and without obs attached.
  SessionConfig plain;
  plain.path_configs = {table1_config(4), table1_config(4)};
  plain.mu_pps = 50.0;
  plain.duration_s = 60.0;
  plain.warmup_s = 10.0;
  plain.drain_s = 30.0;
  plain.seed = 7;
  const auto a = run_session(plain);
  const auto b = run_session(obs_session("perturb"));
  EXPECT_EQ(a.packets_generated, b.packets_generated);
  ASSERT_EQ(a.trace.arrivals(), b.trace.arrivals());
  for (std::size_t i = 0; i < a.trace.arrivals(); ++i) {
    ASSERT_EQ(a.trace.entries()[i].packet_number,
              b.trace.entries()[i].packet_number);
    ASSERT_EQ(a.trace.entries()[i].arrived, b.trace.entries()[i].arrived);
  }
}

}  // namespace
}  // namespace dmp
