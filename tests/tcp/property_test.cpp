// Property tests: TCP reliability and state invariants under randomized
// loss processes (data and ACK loss), swept with parameterized gtest.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "tcp/reno_sender.hpp"
#include "tcp/sink.hpp"
#include "util/rng.hpp"

namespace dmp {
namespace {

struct LossyWorld {
  LossyWorld(double data_loss, double ack_loss, std::uint64_t seed,
             TcpConfig config = {})
      : rng(seed),
        sender(sched, 1, config,
               [this, data_loss](const Packet& p) {
                 if (rng.chance(data_loss)) return;
                 const SimTime jitter = SimTime::micros(
                     static_cast<std::int64_t>(rng.uniform(0, 2000)));
                 sched.schedule_after(SimTime::millis(40) + jitter,
                                      [this, p] { sink.on_data(p); });
               }),
        sink(sched, 1, config, [this, ack_loss](const Packet& a) {
          if (rng.chance(ack_loss)) return;
          sched.schedule_after(SimTime::millis(40),
                               [this, a] { sender.on_ack(a); });
        }) {
    sink.set_deliver_callback(
        [this](std::int64_t tag, SimTime) { delivered.push_back(tag); });
  }

  Scheduler sched;
  Rng rng;
  RenoSender sender;
  TcpSink sink;
  std::vector<std::int64_t> delivered;
};

class TcpLossSweep
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(TcpLossSweep, ReliableInOrderExactlyOnce) {
  const auto [data_loss, ack_loss, seed] = GetParam();
  LossyWorld world(data_loss, ack_loss, static_cast<std::uint64_t>(seed));

  const int total = 600;
  int enqueued = 0;
  auto pump = [&] {
    while (enqueued < total && world.sender.enqueue(enqueued)) ++enqueued;
  };
  world.sender.set_space_callback(pump);
  pump();

  // Step the simulation, asserting state invariants as it runs.
  int checks = 0;
  while (world.sched.step(SimTime::seconds(3600))) {
    if (++checks % 64 == 0) {
      ASSERT_GE(world.sender.cwnd(), 1.0);
      ASSERT_GE(world.sender.ssthresh(), 2.0);
      ASSERT_LE(world.sender.snd_una(), world.sender.snd_nxt());
      ASSERT_LE(world.sender.snd_nxt(), world.sender.snd_max());
      ASSERT_LE(world.sender.buffered(),
                world.sender.config().send_buffer_packets);
    }
  }

  ASSERT_EQ(world.delivered.size(), static_cast<std::size_t>(total))
      << "data_loss=" << data_loss << " ack_loss=" << ack_loss;
  for (int i = 0; i < total; ++i) {
    ASSERT_EQ(world.delivered[static_cast<std::size_t>(i)], i);
  }
  // Terminal state: everything acknowledged, buffer drained.
  EXPECT_EQ(world.sender.snd_una(), total);
  EXPECT_EQ(world.sender.buffered(), 0u);
  EXPECT_EQ(world.sink.rcv_nxt(), total);
}

INSTANTIATE_TEST_SUITE_P(
    LossGrid, TcpLossSweep,
    ::testing::Combine(::testing::Values(0.0, 0.01, 0.05, 0.15, 0.3),
                       ::testing::Values(0.0, 0.05),
                       ::testing::Values(1, 2, 3)));

class TcpBufferSweep : public ::testing::TestWithParam<int> {};

TEST_P(TcpBufferSweep, SendBufferNeverOverflowsAndAlwaysDrains) {
  TcpConfig config;
  config.send_buffer_packets = static_cast<std::size_t>(GetParam());
  LossyWorld world(0.08, 0.0, 99, config);
  const int total = 300;
  int enqueued = 0;
  auto pump = [&] {
    while (enqueued < total && world.sender.enqueue(enqueued)) ++enqueued;
  };
  world.sender.set_space_callback(pump);
  pump();
  world.sched.run_until(SimTime::seconds(3600));
  ASSERT_EQ(world.delivered.size(), static_cast<std::size_t>(total));
  EXPECT_EQ(world.sender.buffered(), 0u);
}

INSTANTIATE_TEST_SUITE_P(BufferSizes, TcpBufferSweep,
                         ::testing::Values(1, 2, 4, 8, 32, 128));

class TcpDelackSweep : public ::testing::TestWithParam<bool> {};

TEST_P(TcpDelackSweep, DelackAndPerPacketAcksBothDeliverReliably) {
  TcpConfig config;
  config.delayed_ack = GetParam();
  LossyWorld world(0.05, 0.02, 7, config);
  const int total = 400;
  int enqueued = 0;
  auto pump = [&] {
    while (enqueued < total && world.sender.enqueue(enqueued)) ++enqueued;
  };
  world.sender.set_space_callback(pump);
  pump();
  world.sched.run_until(SimTime::seconds(3600));
  ASSERT_EQ(world.delivered.size(), static_cast<std::size_t>(total));
}

INSTANTIATE_TEST_SUITE_P(AckPolicies, TcpDelackSweep, ::testing::Bool());

TEST(TcpExtremes, SurvivesFiftyPercentLoss) {
  LossyWorld world(0.5, 0.1, 5);
  const int total = 60;
  int enqueued = 0;
  auto pump = [&] {
    while (enqueued < total && world.sender.enqueue(enqueued)) ++enqueued;
  };
  world.sender.set_space_callback(pump);
  pump();
  world.sched.run_until(SimTime::seconds(36000));
  ASSERT_EQ(world.delivered.size(), static_cast<std::size_t>(total));
  EXPECT_GT(world.sender.stats().timeouts, 0u);
}

TEST(TcpExtremes, ZeroDataIsANoOp) {
  LossyWorld world(0.1, 0.1, 6);
  world.sched.run_until(SimTime::seconds(10));
  EXPECT_TRUE(world.delivered.empty());
  EXPECT_EQ(world.sender.stats().data_packets_sent, 0u);
  EXPECT_EQ(world.sender.stats().timeouts, 0u);
}

}  // namespace
}  // namespace dmp
