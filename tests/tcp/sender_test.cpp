#include "tcp/reno_sender.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "tcp/sink.hpp"

namespace dmp {
namespace {

// Directly-wired sender <-> sink with a programmable one-way delay and a
// per-packet drop predicate, for deterministic TCP unit tests.
class Wire {
 private:
  Scheduler& sched_;  // declared first: members below capture it at init
  SimTime one_way_;

 public:
  Wire(Scheduler& sched, TcpConfig config, SimTime one_way = SimTime::millis(50))
      : sched_(sched),
        one_way_(one_way),
        sender(sched, 1, config,
               [this](const Packet& p) { forward_data(p); }),
        sink(sched, 1, config, [this](const Packet& p) { forward_ack(p); }) {}

  // Packets whose (seq, transmission_count) matches are dropped.
  std::function<bool(const Packet&)> drop_data = [](const Packet&) {
    return false;
  };

  std::vector<std::int64_t> delivered;

  void wire_delivery() {
    sink.set_deliver_callback(
        [this](std::int64_t tag, SimTime) { delivered.push_back(tag); });
  }

  RenoSender sender;
  TcpSink sink;

 private:
  void forward_data(const Packet& p) {
    if (drop_data(p)) return;
    sched_.schedule_after(one_way_, [this, p] { sink.on_data(p); });
  }
  void forward_ack(const Packet& p) {
    sched_.schedule_after(one_way_, [this, p] { sender.on_ack(p); });
  }
};

// Feeds `total` app packets, refilling the send buffer as ACKs free space.
void feed(Wire& wire, int total) {
  auto state = std::make_shared<int>(0);
  auto pump = [&wire, state, total] {
    while (*state < total && wire.sender.enqueue(*state)) ++*state;
  };
  wire.sender.set_space_callback(pump);
  pump();
}

TcpConfig small_config() {
  TcpConfig c;
  c.initial_cwnd = 2.0;
  c.initial_ssthresh = 16.0;
  c.max_cwnd = 32.0;
  c.send_buffer_packets = 64;
  return c;
}

TEST(RenoSender, DeliversAllDataInOrderOnCleanPath) {
  Scheduler sched;
  Wire wire(sched, small_config());
  wire.wire_delivery();
  feed(wire, 100);
  sched.run_until(SimTime::seconds(60));
  ASSERT_EQ(wire.delivered.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(wire.delivered[static_cast<size_t>(i)], i);
  EXPECT_EQ(wire.sender.stats().retransmissions, 0u);
  EXPECT_EQ(wire.sender.stats().timeouts, 0u);
}

TEST(RenoSender, RespectsInitialWindow) {
  Scheduler sched;
  auto config = small_config();
  config.initial_cwnd = 2.0;
  Wire wire(sched, config);
  wire.wire_delivery();
  for (int i = 0; i < 20; ++i) wire.sender.enqueue(i);
  // Before any ACK returns, exactly cwnd packets may be in flight.
  sched.run_until(SimTime::millis(40));  // less than one RTT
  EXPECT_EQ(wire.sender.snd_nxt(), 2);
}

TEST(RenoSender, SlowStartGrowsWindowMultiplicatively) {
  Scheduler sched;
  Wire wire(sched, small_config());
  wire.wire_delivery();
  feed(wire, 500);
  const double cwnd0 = wire.sender.cwnd();
  sched.run_until(SimTime::millis(450));  // ~4 RTTs (RTT = 100 ms)
  // With delayed ACKs slow start grows ~1.5x per RTT: 2 -> ~10 after 4 RTTs.
  EXPECT_GT(wire.sender.cwnd(), cwnd0 * 3);
  EXPECT_LE(wire.sender.cwnd(), small_config().initial_ssthresh);
}

TEST(RenoSender, CongestionAvoidanceIsLinear) {
  Scheduler sched;
  auto config = small_config();
  config.initial_ssthresh = 4.0;  // leave slow start quickly
  Wire wire(sched, config);
  wire.wire_delivery();
  feed(wire, 2000);
  sched.run_until(SimTime::seconds(1.0));
  const double w1 = wire.sender.cwnd();
  sched.run_until(SimTime::seconds(2.0));
  const double w2 = wire.sender.cwnd();
  // ~10 RTTs elapse; CA adds at most 1 per RTT (about 0.5 with delayed ACKs).
  EXPECT_GT(w2, w1 + 2.0);
  EXPECT_LT(w2, w1 + 11.0);
}

TEST(RenoSender, FastRetransmitRecoversSingleLoss) {
  Scheduler sched;
  Wire wire(sched, small_config());
  wire.wire_delivery();
  bool dropped = false;
  wire.drop_data = [&](const Packet& p) {
    if (p.seq == 20 && !dropped) {
      dropped = true;
      return true;
    }
    return false;
  };
  feed(wire, 200);
  sched.run_until(SimTime::seconds(60));
  ASSERT_EQ(wire.delivered.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(wire.delivered[static_cast<size_t>(i)], i);
  EXPECT_EQ(wire.sender.stats().fast_retransmits, 1u);
  EXPECT_EQ(wire.sender.stats().timeouts, 0u);
  EXPECT_EQ(wire.sender.stats().retransmissions, 1u);
}

TEST(RenoSender, FastRetransmitHalvesWindow) {
  Scheduler sched;
  auto config = small_config();
  config.initial_ssthresh = 4.0;
  Wire wire(sched, config);
  wire.wire_delivery();
  bool dropped = false;
  double cwnd_before_loss = 0.0;
  wire.drop_data = [&](const Packet& p) {
    if (p.seq == 60 && !dropped) {
      dropped = true;
      cwnd_before_loss = wire.sender.cwnd();
      return true;
    }
    return false;
  };
  feed(wire, 500);
  sched.run_until(SimTime::seconds(60));
  EXPECT_EQ(wire.sender.stats().fast_retransmits, 1u);
  // After recovery the window continues from about half the loss window.
  EXPECT_LT(wire.sender.ssthresh(), cwnd_before_loss);
  EXPECT_GE(wire.sender.ssthresh(), std::floor(cwnd_before_loss / 2.0) - 1.0);
}

TEST(RenoSender, TimeoutRecoversWhenWindowTooSmallForDupacks) {
  Scheduler sched;
  auto config = small_config();
  config.initial_cwnd = 1.0;
  Wire wire(sched, config);
  wire.wire_delivery();
  bool dropped = false;
  wire.drop_data = [&](const Packet& p) {
    // Drop the very first transmission: no dupacks possible -> RTO.
    if (p.seq == 0 && !dropped) {
      dropped = true;
      return true;
    }
    return false;
  };
  for (int i = 0; i < 10; ++i) wire.sender.enqueue(i);
  sched.run_until(SimTime::seconds(30));
  ASSERT_EQ(wire.delivered.size(), 10u);
  EXPECT_GE(wire.sender.stats().timeouts, 1u);
  EXPECT_EQ(wire.sender.stats().fast_retransmits, 0u);
}

TEST(RenoSender, ExponentialBackoffOnRepeatedTimeouts) {
  Scheduler sched;
  Wire wire(sched, small_config());
  wire.wire_delivery();
  int drops = 0;
  wire.drop_data = [&](const Packet& p) {
    if (p.seq == 0 && drops < 3) {
      ++drops;
      return true;
    }
    return false;
  };
  wire.sender.enqueue(0);
  sched.run_until(SimTime::seconds(120));
  ASSERT_EQ(wire.delivered.size(), 1u);
  EXPECT_EQ(wire.sender.stats().timeouts, 3u);
  // Only the first expiry of a backoff series is counted for the TO metric.
  EXPECT_EQ(wire.sender.stats().rto_at_timeout_count, 1u);
}

TEST(RenoSender, GoBackNAfterTimeoutResendsWindow) {
  Scheduler sched;
  auto config = small_config();
  Wire wire(sched, config);
  wire.wire_delivery();
  // Drop a burst (first transmission of seqs 10..14): heavy loss -> timeout.
  std::set<std::int64_t> burst{10, 11, 12, 13, 14};
  std::set<std::int64_t> dropped_once;
  wire.drop_data = [&](const Packet& p) {
    if (burst.count(p.seq) != 0 && dropped_once.insert(p.seq).second) {
      return true;
    }
    return false;
  };
  for (int i = 0; i < 60; ++i) wire.sender.enqueue(i);
  sched.run_until(SimTime::seconds(60));
  ASSERT_EQ(wire.delivered.size(), 60u);
  for (int i = 0; i < 60; ++i) EXPECT_EQ(wire.delivered[static_cast<size_t>(i)], i);
}

TEST(RenoSender, SendBufferBlocksAndFreesSpace) {
  Scheduler sched;
  auto config = small_config();
  config.send_buffer_packets = 8;
  Wire wire(sched, config);
  wire.wire_delivery();
  int fills = 0;
  for (int i = 0; i < 100; ++i) {
    if (wire.sender.enqueue(i)) ++fills;
  }
  EXPECT_EQ(fills, 8);  // buffer full after 8
  EXPECT_EQ(wire.sender.space(), 0u);

  int space_events = 0;
  wire.sender.set_space_callback([&] { ++space_events; });
  sched.run_until(SimTime::seconds(10));
  EXPECT_GT(space_events, 0);
  EXPECT_EQ(wire.sender.space(), 8u);  // everything acked
}

TEST(RenoSender, RttEstimateMatchesPathRtt) {
  Scheduler sched;
  Wire wire(sched, small_config(), SimTime::millis(75));
  wire.wire_delivery();
  feed(wire, 300);
  sched.run_until(SimTime::seconds(60));
  // One-way 75 ms each direction; delayed ACK adds up to 100 ms on the
  // first segment of a pair, but most samples see ~150 ms.
  EXPECT_GT(wire.sender.stats().mean_rtt_s(), 0.145);
  EXPECT_LT(wire.sender.stats().mean_rtt_s(), 0.260);
  // One segment is timed per window (single-timer Karn sampling), so a few
  // hundred packets yield on the order of tens of samples.
  EXPECT_GE(wire.sender.stats().rtt_sample_count, 10u);
}

TEST(RenoSender, CwndNeverExceedsMax) {
  Scheduler sched;
  auto config = small_config();
  config.max_cwnd = 10.0;
  Wire wire(sched, config);
  wire.wire_delivery();
  feed(wire, 3000);
  for (int t = 1; t <= 20; ++t) {
    sched.run_until(SimTime::seconds(t));
    EXPECT_LE(wire.sender.cwnd(), 10.0);
  }
}

TEST(RenoSender, IdleRestartResetsCwnd) {
  Scheduler sched;
  Wire wire(sched, small_config());
  wire.wire_delivery();
  feed(wire, 200);
  sched.run_until(SimTime::seconds(30));
  EXPECT_GT(wire.sender.cwnd(), small_config().initial_cwnd);
  wire.sender.idle_restart();
  EXPECT_LE(wire.sender.cwnd(), small_config().initial_cwnd);
}

}  // namespace
}  // namespace dmp
