#include "tcp/sink.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dmp {
namespace {

struct SinkHarness {
  explicit SinkHarness(TcpConfig config = {})
      : sink(sched, 1, config, [this](const Packet& p) { acks.push_back(p); }) {
    sink.set_deliver_callback(
        [this](std::int64_t tag, SimTime) { delivered.push_back(tag); });
  }

  Packet data(std::int64_t seq) {
    Packet p;
    p.flow = 1;
    p.seq = seq;
    p.size_bytes = kDataPacketBytes;
    p.app_tag = seq * 10;  // distinct tag to check tag plumbing
    return p;
  }

  Scheduler sched;
  std::vector<Packet> acks;
  std::vector<std::int64_t> delivered;
  TcpSink sink;
};

TEST(TcpSink, DelayedAckEverySecondSegment) {
  SinkHarness h;
  h.sink.on_data(h.data(0));
  EXPECT_TRUE(h.acks.empty());  // first segment: ack deferred
  h.sink.on_data(h.data(1));
  ASSERT_EQ(h.acks.size(), 1u);  // second segment: immediate cumulative ack
  EXPECT_EQ(h.acks[0].seq, 2);
  EXPECT_EQ(h.acks[0].kind, PacketKind::kAck);
}

TEST(TcpSink, DelackTimerFiresWhenAlone) {
  SinkHarness h;
  h.sink.on_data(h.data(0));
  EXPECT_TRUE(h.acks.empty());
  h.sched.run_until(SimTime::millis(150));
  ASSERT_EQ(h.acks.size(), 1u);
  EXPECT_EQ(h.acks[0].seq, 1);
}

TEST(TcpSink, ImmediateAckWithoutDelack) {
  TcpConfig config;
  config.delayed_ack = false;
  SinkHarness h(config);
  h.sink.on_data(h.data(0));
  ASSERT_EQ(h.acks.size(), 1u);
  EXPECT_EQ(h.acks[0].seq, 1);
}

TEST(TcpSink, OutOfOrderTriggersImmediateDupAck) {
  SinkHarness h;
  h.sink.on_data(h.data(0));
  h.sink.on_data(h.data(1));
  h.acks.clear();
  h.sink.on_data(h.data(3));  // gap: 2 missing
  ASSERT_EQ(h.acks.size(), 1u);
  EXPECT_EQ(h.acks[0].seq, 2);  // duplicate ack for next expected
  h.sink.on_data(h.data(4));
  ASSERT_EQ(h.acks.size(), 2u);
  EXPECT_EQ(h.acks[1].seq, 2);
  EXPECT_EQ(h.sink.out_of_order_segments(), 2u);
}

TEST(TcpSink, GapFillReleasesBufferedSegmentsInOrder) {
  SinkHarness h;
  h.sink.on_data(h.data(0));
  h.sink.on_data(h.data(2));
  h.sink.on_data(h.data(3));
  EXPECT_EQ(h.delivered, (std::vector<std::int64_t>{0}));
  h.sink.on_data(h.data(1));  // retransmission fills the gap
  EXPECT_EQ(h.delivered, (std::vector<std::int64_t>{0, 10, 20, 30}));
  // The gap fill must be acked immediately with the fully-advanced number.
  EXPECT_EQ(h.acks.back().seq, 4);
  EXPECT_EQ(h.sink.rcv_nxt(), 4);
}

TEST(TcpSink, BelowWindowSegmentCountsDuplicate) {
  SinkHarness h;
  h.sink.on_data(h.data(0));
  h.sink.on_data(h.data(1));
  h.acks.clear();
  h.sink.on_data(h.data(0));  // spurious retransmission
  EXPECT_EQ(h.sink.duplicate_segments(), 1u);
  ASSERT_EQ(h.acks.size(), 1u);
  EXPECT_EQ(h.acks[0].seq, 2);
  // Not delivered twice.
  EXPECT_EQ(h.delivered.size(), 2u);
}

TEST(TcpSink, AppTagsSurviveReordering) {
  SinkHarness h;
  h.sink.on_data(h.data(1));
  h.sink.on_data(h.data(0));
  EXPECT_EQ(h.delivered, (std::vector<std::int64_t>{0, 10}));
}

TEST(TcpSink, DelackTimerCancelledBySecondSegment) {
  SinkHarness h;
  h.sink.on_data(h.data(0));
  h.sink.on_data(h.data(1));
  ASSERT_EQ(h.acks.size(), 1u);
  h.sched.run_until(SimTime::seconds(1));
  EXPECT_EQ(h.acks.size(), 1u);  // no extra timer ack
}

}  // namespace
}  // namespace dmp
