// TCP over the dumbbell topology: end-to-end behaviour under real queueing
// losses, and agreement of the achieved throughput with first-principles
// expectations.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/ftp_source.hpp"
#include "net/topology.hpp"
#include "tcp/connection.hpp"

namespace dmp {
namespace {

TEST(TcpIntegration, SingleFlowSaturatesBottleneck) {
  Scheduler sched;
  // 2 Mbps bottleneck, ample buffer: a lone backlogged flow should reach
  // near-full utilization.
  DumbbellPath path(sched, BottleneckConfig{2e6, SimTime::millis(20), 100});
  auto conn = make_connection(sched, 1, path, TcpConfig{});
  std::int64_t delivered = 0;
  conn.sink->set_deliver_callback([&](std::int64_t, SimTime) { ++delivered; });
  FtpSource ftp(*conn.sender);

  const double duration_s = 50.0;
  sched.run_until(SimTime::seconds(duration_s));

  const double goodput_bps =
      static_cast<double>(delivered) * kDataPacketBytes * 8 / duration_s;
  EXPECT_GT(goodput_bps, 0.85 * 2e6);
  EXPECT_LE(goodput_bps, 2e6 * 1.01);
}

TEST(TcpIntegration, ReliabilityUnderQueueOverflow) {
  Scheduler sched;
  // Tiny buffer forces frequent drops; TCP must still deliver every app
  // packet exactly once, in order.
  DumbbellPath path(sched, BottleneckConfig{1e6, SimTime::millis(10), 5});
  auto conn = make_connection(sched, 1, path, TcpConfig{});
  std::vector<std::int64_t> delivered;
  conn.sink->set_deliver_callback(
      [&](std::int64_t tag, SimTime) { delivered.push_back(tag); });

  const int total = 2000;
  int enqueued = 0;
  conn.sender->set_space_callback([&] {
    while (enqueued < total && conn.sender->enqueue(enqueued)) ++enqueued;
  });
  while (enqueued < total && conn.sender->enqueue(enqueued)) ++enqueued;

  sched.run_until(SimTime::seconds(120));

  ASSERT_EQ(delivered.size(), static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    ASSERT_EQ(delivered[static_cast<std::size_t>(i)], i) << "at index " << i;
  }
  // Losses genuinely happened.
  EXPECT_GT(path.bottleneck().flow_counters(1).drops, 0u);
  EXPECT_GT(conn.sender->stats().retransmissions, 0u);
}

TEST(TcpIntegration, TwoFlowsShareBottleneckMeaningfully) {
  // Two identical deterministic Reno flows on one drop-tail queue can
  // phase-lock (the classic lockout effect), so exact fairness is not
  // expected; both flows must nevertheless obtain a substantial share.
  Scheduler sched;
  DumbbellPath path(sched, BottleneckConfig{4e6, SimTime::millis(20), 50});
  TcpConfig tcp;
  tcp.send_overhead_s = 0.001;  // break phase-locking, as ns-2 overhead_ does
  auto c1 = make_connection(sched, 1, path, tcp);
  auto c2 = make_connection(sched, 2, path, tcp);
  std::int64_t d1 = 0, d2 = 0;
  c1.sink->set_deliver_callback([&](std::int64_t, SimTime) { ++d1; });
  c2.sink->set_deliver_callback([&](std::int64_t, SimTime) { ++d2; });
  FtpSource f1(*c1.sender);
  // Desynchronize the second flow's start.
  std::unique_ptr<FtpSource> f2;
  sched.schedule_at(SimTime::millis(733), [&] {
    f2 = std::make_unique<FtpSource>(*c2.sender);
  });

  sched.run_until(SimTime::seconds(200));

  ASSERT_GT(d1, 0);
  ASSERT_GT(d2, 0);
  const double share1 =
      static_cast<double>(d1) / static_cast<double>(d1 + d2);
  EXPECT_GT(share1, 0.2);
  EXPECT_LT(share1, 0.8);
}

TEST(TcpIntegration, MeasuredRttIncludesQueueing) {
  Scheduler sched;
  DumbbellPath path(sched, BottleneckConfig{3.7e6, SimTime::millis(40), 50});
  auto conn = make_connection(sched, 1, path, TcpConfig{});
  conn.sink->set_deliver_callback([](std::int64_t, SimTime) {});
  FtpSource ftp(*conn.sender);
  sched.run_until(SimTime::seconds(60));

  const double base = path.base_rtt_seconds();
  const double measured = conn.sender->stats().mean_rtt_s();
  EXPECT_GT(measured, base);  // self-induced queueing delay
  // Full queue adds 50 * 1500 * 8 / 3.7 Mbps = 162 ms at most.
  EXPECT_LT(measured, base + 0.162 + 0.110);  // + delack allowance
}

TEST(TcpIntegration, NormalizedTimeoutIsPlausible) {
  Scheduler sched;
  DumbbellPath path(sched, BottleneckConfig{3.7e6, SimTime::millis(40), 50});
  auto conn = make_connection(sched, 1, path, TcpConfig{});
  conn.sink->set_deliver_callback([](std::int64_t, SimTime) {});
  FtpSource ftp(*conn.sender);
  sched.run_until(SimTime::seconds(120));

  const double to = conn.sender->stats().normalized_timeout();
  // The paper's Table-2 TO values span 1.6..3.3.
  EXPECT_GT(to, 1.0);
  EXPECT_LT(to, 6.0);
}

}  // namespace
}  // namespace dmp
