#include "model/alternating.hpp"

#include <gtest/gtest.h>

namespace dmp {
namespace {

AlternatingScenario base(double x) {
  AlternatingScenario s;
  s.mu_pps = 25.0;
  s.period_s = 20.0;  // 10 s up, 10 s down (the paper: "period of 10 seconds")
  s.tau_s = 5.0;
  s.x_pps = x;
  return s;
}

TEST(Alternating, InPhaseEqualsSinglePath) {
  // x + (2mu - x) active together is the same capacity profile as the
  // single path; the fluid model must agree exactly.
  for (double x : {5.0, 12.5, 25.0}) {
    const auto r = alternating_late_fractions(base(x));
    EXPECT_NEAR(r.f_dmp_in_phase, r.f_single, 1e-9) << "x = " << x;
  }
}

TEST(Alternating, AntiPhaseNeverWorseThanSinglePath) {
  for (double x : {2.5, 5.0, 10.0, 15.0, 20.0, 25.0}) {
    const auto r = alternating_late_fractions(base(x));
    EXPECT_LE(r.f_dmp_anti_phase, r.f_single + 1e-9) << "x = " << x;
  }
}

TEST(Alternating, AverageDmpBeatsSinglePathForAllX) {
  // The paper's Section-7.3 claim: for tau = 5 s and any x in (0, mu],
  // the average DMP late fraction is lower than single path.
  for (double x = 2.5; x <= 25.0; x += 2.5) {
    const auto r = alternating_late_fractions(base(x));
    EXPECT_LT(r.f_dmp_average, r.f_single + 1e-9) << "x = " << x;
    // And strictly better whenever the anti-phase case helps.
    EXPECT_LE(r.f_dmp_anti_phase, r.f_dmp_in_phase + 1e-9);
  }
}

TEST(Alternating, BalancedSplitEliminatesLateness) {
  // x = mu: anti-phase paths deliver mu in every half-period — the client
  // never starves once playback starts mu*tau packets behind.
  const auto r = alternating_late_fractions(base(25.0));
  EXPECT_NEAR(r.f_dmp_anti_phase, 0.0, 1e-3);
  EXPECT_GT(r.f_single, 0.0);
}

TEST(Alternating, SinglePathLateFractionMatchesHandAnalysis) {
  // Single path: 10 s at 2mu, 10 s outage; tau = 5 s.  Arrivals can never
  // exceed generation (live source), so the lead A - B is capped at
  // mu*tau = 5mu, reached exactly at the end of each on-phase.  The lead
  // then falls at rate mu for the 10 s outage (to -5mu) and recovers at
  // rate mu during the next on-phase: the client is behind for the second
  // half of every outage and the first half of every on-phase —
  // f_single = 1/2.
  const auto r = alternating_late_fractions(base(12.5));
  EXPECT_NEAR(r.f_single, 0.50, 0.02);
}

TEST(Alternating, ValidatesInput) {
  auto s = base(25.0);
  s.x_pps = 0.0;
  EXPECT_THROW(alternating_late_fractions(s), std::invalid_argument);
  s = base(30.0);  // x > mu
  EXPECT_THROW(alternating_late_fractions(s), std::invalid_argument);
  s = base(10.0);
  s.mu_pps = -1.0;
  EXPECT_THROW(alternating_late_fractions(s), std::invalid_argument);
}

}  // namespace
}  // namespace dmp
