#include "model/required_delay.hpp"

#include <gtest/gtest.h>

namespace dmp {
namespace {

TcpChainParams path(double loss, double rtt) {
  TcpChainParams p;
  p.loss_rate = loss;
  p.rtt_s = rtt;
  p.to_ratio = 2.0;
  p.wmax = 20;
  return p;
}

ComposedParams two_path_setup(double ratio) {
  // Two homogeneous paths; mu chosen so sigma_a / mu equals `ratio`.
  ComposedParams params;
  const auto flow = path(0.02, 0.2);
  const double sigma = TcpFlowChain(flow).achievable_throughput_pps();
  params.flows = {flow, flow};
  params.mu_pps = 2.0 * sigma / ratio;
  return params;
}

RequiredDelayOptions quick_options() {
  RequiredDelayOptions options;
  options.min_consumptions = 150'000;
  options.max_consumptions = 1'200'000;
  options.tau_max_s = 60.0;
  return options;
}

TEST(RequiredDelay, ComfortableRatioNeedsModestDelay) {
  const auto params = two_path_setup(1.8);
  const auto result = required_startup_delay(params, quick_options());
  ASSERT_TRUE(result.feasible);
  EXPECT_GE(result.tau_s, 1.0);
  EXPECT_LE(result.tau_s, 25.0);
}

TEST(RequiredDelay, TighterRatioNeedsLongerDelay) {
  const auto comfortable = required_startup_delay(two_path_setup(1.8),
                                                  quick_options());
  const auto tight = required_startup_delay(two_path_setup(1.3),
                                            quick_options());
  ASSERT_TRUE(comfortable.feasible);
  ASSERT_TRUE(tight.feasible);
  EXPECT_GE(tight.tau_s, comfortable.tau_s);
}

TEST(RequiredDelay, InfeasibleWhenMuExceedsCapacity) {
  ComposedParams params;
  params.flows = {path(0.05, 0.2), path(0.05, 0.2)};
  const double sigma =
      TcpFlowChain(params.flows[0]).achievable_throughput_pps();
  params.mu_pps = 2.5 * sigma;  // sigma_a/mu = 0.8: can never keep up
  RequiredDelayOptions options = quick_options();
  options.tau_max_s = 20.0;
  const auto result = required_startup_delay(params, options);
  EXPECT_FALSE(result.feasible);
  EXPECT_GT(result.late_at_tau, 1e-4);
}

TEST(RequiredDelay, ValidatesSearchRange) {
  const auto params = two_path_setup(1.6);
  RequiredDelayOptions options;
  options.grid_s = 0.0;
  EXPECT_THROW(required_startup_delay(params, options), std::invalid_argument);
  options = RequiredDelayOptions{};
  options.tau_max_s = 0.5;
  options.tau_min_s = 1.0;
  EXPECT_THROW(required_startup_delay(params, options), std::invalid_argument);
}

}  // namespace
}  // namespace dmp
