// Deterministic sharded Monte-Carlo estimation: run_sharded must be a pure
// function of (params, seed, shards, budget) — byte-identical at any worker
// thread count — and required_startup_delay with sharded probes must carry
// that invariance through the bisection.
#include <gtest/gtest.h>

#include <cstring>

#include "model/composed_chain.hpp"
#include "model/required_delay.hpp"

namespace dmp {
namespace {

TcpChainParams tiny_flow() {
  TcpChainParams p;
  p.loss_rate = 0.05;
  p.rtt_s = 0.2;
  p.to_ratio = 2.0;
  p.wmax = 6;
  p.max_backoff = 3;
  return p;
}

ComposedParams two_flows() {
  ComposedParams params;
  params.flows = {tiny_flow(), tiny_flow()};
  params.mu_pps = 30.0;
  params.tau_s = 0.4;
  return params;
}

// Bit-level equality: "same estimate up to rounding" is not the contract —
// the merged result must be the identical bytes at any thread count.
void expect_identical(const MonteCarloResult& a, const MonteCarloResult& b) {
  EXPECT_EQ(std::memcmp(&a.late_fraction, &b.late_fraction, sizeof(double)),
            0);
  EXPECT_EQ(a.consumptions, b.consumptions);
  EXPECT_EQ(a.late, b.late);
  EXPECT_EQ(std::memcmp(&a.ci.mean, &b.ci.mean, sizeof(double)), 0);
  EXPECT_EQ(
      std::memcmp(&a.ci.half_width, &b.ci.half_width, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.mean_early_packets, &b.mean_early_packets,
                        sizeof(double)),
            0);
  ASSERT_EQ(a.flow_share.size(), b.flow_share.size());
  for (std::size_t k = 0; k < a.flow_share.size(); ++k) {
    EXPECT_EQ(
        std::memcmp(&a.flow_share[k], &b.flow_share[k], sizeof(double)), 0);
  }
}

TEST(ShardedMonteCarlo, ByteIdenticalAcrossThreadCounts) {
  const DmpModelMonteCarlo mc(two_flows(), 41, SamplerMode::kAlias);
  const auto one = mc.run_sharded(6, 50'000, 5'000, /*threads=*/1);
  const auto two = mc.run_sharded(6, 50'000, 5'000, /*threads=*/2);
  const auto eight = mc.run_sharded(6, 50'000, 5'000, /*threads=*/8);
  expect_identical(one, two);
  expect_identical(one, eight);
}

TEST(ShardedMonteCarlo, MergesAllShardBudgets) {
  const DmpModelMonteCarlo mc(two_flows(), 41, SamplerMode::kAlias);
  const auto result = mc.run_sharded(5, 40'000, 4'000);
  EXPECT_EQ(result.consumptions, 5u * 40'000u);
  EXPECT_GT(result.late, 0u);
  EXPECT_LT(result.late_fraction, 1.0);
  double share = 0.0;
  for (double s : result.flow_share) share += s;
  EXPECT_NEAR(share, 1.0, 1e-12);
}

TEST(ShardedMonteCarlo, SeedSelectsTheEstimate) {
  const DmpModelMonteCarlo a(two_flows(), 41, SamplerMode::kAlias);
  const DmpModelMonteCarlo b(two_flows(), 42, SamplerMode::kAlias);
  const auto ra = a.run_sharded(4, 40'000);
  const auto rb = b.run_sharded(4, 40'000);
  EXPECT_NE(ra.late, rb.late);  // different shard streams
  EXPECT_NEAR(ra.late_fraction, rb.late_fraction, 0.05);  // same chain
}

TEST(ShardedMonteCarlo, DoesNotPerturbTheEngineTrajectory) {
  // run_sharded is const: a sequential run after it must match a run on a
  // fresh engine with the same seed.
  DmpModelMonteCarlo probed(two_flows(), 77, SamplerMode::kAlias);
  (void)probed.run_sharded(3, 20'000);
  const auto after = probed.run(100'000, 10'000);
  DmpModelMonteCarlo fresh(two_flows(), 77, SamplerMode::kAlias);
  const auto baseline = fresh.run(100'000, 10'000);
  expect_identical(after, baseline);
}

TEST(ShardedMonteCarlo, ValidatesArguments) {
  const DmpModelMonteCarlo mc(two_flows(), 1, SamplerMode::kAlias);
  EXPECT_THROW(mc.run_sharded(0, 1000), std::invalid_argument);
  EXPECT_THROW(mc.run_sharded(4, 0), std::invalid_argument);
}

TEST(RequiredDelaySharded, TauInvariantAcrossThreadCounts) {
  ComposedParams base = two_flows();
  RequiredDelayOptions options;
  options.target_late_fraction = 1e-2;
  options.tau_min_s = 1.0;
  options.tau_max_s = 16.0;
  options.min_consumptions = 40'000;
  options.max_consumptions = 320'000;
  options.seed = 9;
  options.shards = 4;

  options.threads = 1;
  const auto serial = required_startup_delay(base, options);
  options.threads = 3;
  const auto threaded = required_startup_delay(base, options);

  EXPECT_EQ(serial.tau_s, threaded.tau_s);
  EXPECT_EQ(serial.feasible, threaded.feasible);
  EXPECT_EQ(std::memcmp(&serial.late_at_tau, &threaded.late_at_tau,
                        sizeof(double)),
            0);
  EXPECT_EQ(serial.evaluations, threaded.evaluations);
}

}  // namespace
}  // namespace dmp
