#include "model/tcp_chain.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "model/pftk.hpp"
#include "util/rng.hpp"

namespace dmp {
namespace {

TcpChainParams base_params() {
  TcpChainParams p;
  p.loss_rate = 0.02;
  p.rtt_s = 0.2;
  p.to_ratio = 2.0;
  p.wmax = 20;
  p.ack_every = 1;
  return p;
}

TEST(TcpFlowChain, EnumeratesABoundedReachableSet) {
  const TcpFlowChain chain(base_params());
  EXPECT_GT(chain.num_states(), 50u);
  EXPECT_LT(chain.num_states(), 20000u);
  // Every state must have an exit (irreducible chain, no absorption).
  for (std::uint32_t s = 0; s < chain.num_states(); ++s) {
    EXPECT_GT(chain.exit_rate(s), 0.0) << "state " << s;
    EXPECT_FALSE(chain.transitions_from(s).empty());
  }
}

TEST(TcpFlowChain, StationaryDistributionIsProper) {
  const TcpFlowChain chain(base_params());
  const auto pi = chain.stationary();
  double total = 0.0;
  for (double v : pi) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(TcpFlowChain, ThroughputDecreasesWithLoss) {
  auto p = base_params();
  double prev = 1e18;
  for (double loss : {0.004, 0.01, 0.02, 0.04, 0.08}) {
    p.loss_rate = loss;
    const double sigma = TcpFlowChain(p).achievable_throughput_pps();
    EXPECT_LT(sigma, prev) << "p = " << loss;
    EXPECT_GT(sigma, 0.0);
    prev = sigma;
  }
}

TEST(TcpFlowChain, ThroughputScalesInverselyWithRtt) {
  auto p = base_params();
  p.rtt_s = 0.1;
  const double fast = TcpFlowChain(p).achievable_throughput_pps();
  p.rtt_s = 0.3;
  const double slow = TcpFlowChain(p).achievable_throughput_pps();
  // sigma ~ 1/R when not window-limited.
  EXPECT_NEAR(fast / slow, 3.0, 0.5);
}

TEST(TcpFlowChain, ThroughputNearPftkPrediction) {
  // The chain is an independent reconstruction; it should land within a
  // modest factor of PFTK across the paper's parameter ranges.
  for (double loss : {0.01, 0.02, 0.04}) {
    for (double rtt : {0.1, 0.2, 0.3}) {
      auto p = base_params();
      p.loss_rate = loss;
      p.rtt_s = rtt;
      const double sigma = TcpFlowChain(p).achievable_throughput_pps();
      PftkParams fp;
      fp.loss_rate = loss;
      fp.rtt_s = rtt;
      fp.rto_s = p.to_ratio * rtt;
      fp.wmax = p.wmax;
      fp.b = 1.0;
      const double pftk = pftk_throughput_pps(fp);
      EXPECT_GT(sigma, 0.55 * pftk) << "p=" << loss << " R=" << rtt;
      EXPECT_LT(sigma, 1.8 * pftk) << "p=" << loss << " R=" << rtt;
    }
  }
}

TEST(TcpFlowChain, HigherTimeoutValueLowersThroughput) {
  auto p = base_params();
  p.loss_rate = 0.04;  // timeouts matter at high loss
  p.to_ratio = 1.0;
  const double fast = TcpFlowChain(p).achievable_throughput_pps();
  p.to_ratio = 4.0;
  const double slow = TcpFlowChain(p).achievable_throughput_pps();
  EXPECT_LT(slow, fast);
}

TEST(TcpFlowChain, DelayedAcksReduceThroughput) {
  auto p = base_params();
  const double b1 = TcpFlowChain(p).achievable_throughput_pps();
  p.ack_every = 2;
  const double b2 = TcpFlowChain(p).achievable_throughput_pps();
  EXPECT_LT(b2, b1);
  EXPECT_GT(b2, 0.5 * b1);
}

TEST(TcpFlowChain, WindowCapLimitsCleanPaths) {
  auto p = base_params();
  p.loss_rate = 0.0005;  // nearly clean: throughput ~ wmax / R
  p.wmax = 8;
  const double sigma = TcpFlowChain(p).achievable_throughput_pps();
  EXPECT_LT(sigma, 8.0 / p.rtt_s * 1.05);
  EXPECT_GT(sigma, 8.0 / p.rtt_s * 0.6);
}

TEST(TcpFlowChain, RejectsInvalidParameters) {
  auto p = base_params();
  p.loss_rate = 0.0;
  EXPECT_THROW(TcpFlowChain{p}, std::invalid_argument);
  p = base_params();
  p.rtt_s = -1.0;
  EXPECT_THROW(TcpFlowChain{p}, std::invalid_argument);
  p = base_params();
  p.wmax = 1;
  EXPECT_THROW(TcpFlowChain{p}, std::invalid_argument);
  p = base_params();
  p.ack_every = 3;
  EXPECT_THROW(TcpFlowChain{p}, std::invalid_argument);
}

TEST(LossInversion, RoundTripsThroughput) {
  const auto p = base_params();
  const double sigma = TcpFlowChain(p).achievable_throughput_pps();
  const double recovered = loss_rate_for_throughput(sigma, p);
  EXPECT_NEAR(recovered, p.loss_rate, 0.15 * p.loss_rate);
}

TEST(LossInversion, RejectsUnreachableTargets) {
  const auto p = base_params();
  EXPECT_THROW(loss_rate_for_throughput(1e9, p), std::invalid_argument);
  EXPECT_THROW(loss_rate_for_throughput(-1.0, p), std::invalid_argument);
}

// The state with the largest out-degree exercises the alias table hardest.
std::uint32_t widest_state(const TcpFlowChain& chain) {
  std::uint32_t best = 0;
  std::size_t degree = 0;
  for (std::uint32_t s = 0; s < chain.num_states(); ++s) {
    if (chain.transitions_from(s).size() > degree) {
      degree = chain.transitions_from(s).size();
      best = s;
    }
  }
  return best;
}

TEST(AliasSampler, MatchesTransitionProbabilities) {
  const TcpFlowChain chain(base_params());
  const std::uint32_t s = widest_state(chain);
  const auto ts = chain.transitions_from(s);
  ASSERT_GT(ts.size(), 3u);

  constexpr int kSamples = 400'000;
  std::map<std::uint32_t, int> counts;
  Rng rng(123);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[chain.pick_alias(s, rng.uniform()).target];
  }
  for (const auto& t : ts) {
    const double expected = t.rate / chain.exit_rate(s);
    const double observed =
        static_cast<double>(counts[t.target]) / kSamples;
    // 5-sigma binomial tolerance (plus a floor for tiny probabilities).
    const double sigma =
        std::sqrt(expected * (1.0 - expected) / kSamples);
    EXPECT_NEAR(observed, expected, 5.0 * sigma + 1e-4)
        << "target " << t.target;
  }
}

TEST(AliasSampler, AgreesWithLinearScanInDistribution) {
  const TcpFlowChain chain(base_params());
  const std::uint32_t s = widest_state(chain);
  constexpr int kSamples = 400'000;
  std::map<std::uint32_t, int> alias_counts, linear_counts;
  Rng rng_a(7), rng_l(7);
  for (int i = 0; i < kSamples; ++i) {
    ++alias_counts[chain.pick_alias(s, rng_a.uniform()).target];
    const double x = rng_l.uniform() * chain.exit_rate(s);
    ++linear_counts[chain.pick_linear(s, x).target];
  }
  for (const auto& t : chain.transitions_from(s)) {
    const double pa =
        static_cast<double>(alias_counts[t.target]) / kSamples;
    const double pl =
        static_cast<double>(linear_counts[t.target]) / kSamples;
    EXPECT_NEAR(pa, pl, 0.005) << "target " << t.target;
  }
}

TEST(AliasSampler, EveryDrawReturnsAValidTransition) {
  // Edge inputs: u at and near the cell boundaries must still land on a
  // real transition of the sampled state.
  const TcpFlowChain chain(base_params());
  for (std::uint32_t s = 0; s < chain.num_states(); s += 7) {
    const auto ts = chain.transitions_from(s);
    for (double u : {0.0, 0.25, 0.5, 0.9999999999999999}) {
      const auto& t = chain.pick_alias(s, u);
      bool found = false;
      for (const auto& ref : ts) {
        if (&ref == &t) found = true;
      }
      EXPECT_TRUE(found) << "state " << s << " u " << u;
    }
  }
}

}  // namespace
}  // namespace dmp
