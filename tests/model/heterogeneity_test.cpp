#include "model/heterogeneity.hpp"

#include <gtest/gtest.h>

namespace dmp {
namespace {

TcpChainParams homogeneous() {
  TcpChainParams p;
  p.loss_rate = 0.02;
  p.rtt_s = 0.15;
  p.to_ratio = 4.0;
  p.wmax = 20;
  return p;
}

TEST(Heterogeneity, RttCaseMatchesSection72Formulas) {
  const auto pair = heterogeneous_pair(homogeneous(),
                                       HeterogeneityCase::kRtt, 2.0);
  EXPECT_DOUBLE_EQ(pair.flows[0].rtt_s, 0.30);
  EXPECT_NEAR(pair.flows[1].rtt_s, 0.15 / 1.5, 1e-12);
  // Loss and TO unchanged in Case 1.
  EXPECT_DOUBLE_EQ(pair.flows[0].loss_rate, 0.02);
  EXPECT_DOUBLE_EQ(pair.flows[1].loss_rate, 0.02);
}

TEST(Heterogeneity, RttCasePreservesAggregateThroughput) {
  const auto homo = homogeneous_pair(homogeneous());
  for (double gamma : {1.5, 2.0}) {
    const auto hetero = heterogeneous_pair(homogeneous(),
                                           HeterogeneityCase::kRtt, gamma);
    EXPECT_NEAR(hetero.aggregate_throughput_pps, homo.aggregate_throughput_pps,
                0.05 * homo.aggregate_throughput_pps)
        << "gamma " << gamma;
  }
}

TEST(Heterogeneity, LossCaseSetsGammaPonFirstPath) {
  const auto pair = heterogeneous_pair(homogeneous(),
                                       HeterogeneityCase::kLoss, 2.0);
  EXPECT_DOUBLE_EQ(pair.flows[0].loss_rate, 0.04);
  // Second path must be cleaner to compensate.
  EXPECT_LT(pair.flows[1].loss_rate, 0.02);
  EXPECT_GT(pair.flows[1].loss_rate, 0.0);
  // RTTs unchanged in Case 2.
  EXPECT_DOUBLE_EQ(pair.flows[0].rtt_s, 0.15);
  EXPECT_DOUBLE_EQ(pair.flows[1].rtt_s, 0.15);
}

TEST(Heterogeneity, LossCasePreservesAggregateThroughput) {
  const auto homo = homogeneous_pair(homogeneous());
  for (double gamma : {1.5, 2.0}) {
    const auto hetero = heterogeneous_pair(homogeneous(),
                                           HeterogeneityCase::kLoss, gamma);
    EXPECT_NEAR(hetero.aggregate_throughput_pps, homo.aggregate_throughput_pps,
                0.05 * homo.aggregate_throughput_pps)
        << "gamma " << gamma;
  }
}

TEST(Heterogeneity, RejectsGammaBelowOne) {
  EXPECT_THROW(
      heterogeneous_pair(homogeneous(), HeterogeneityCase::kRtt, 1.0),
      std::invalid_argument);
  EXPECT_THROW(
      heterogeneous_pair(homogeneous(), HeterogeneityCase::kLoss, 0.5),
      std::invalid_argument);
}

TEST(Heterogeneity, RejectsExtremeLossGamma) {
  auto base = homogeneous();
  base.loss_rate = 0.6;
  EXPECT_THROW(
      heterogeneous_pair(base, HeterogeneityCase::kLoss, 2.0),
      std::invalid_argument);
}

}  // namespace
}  // namespace dmp
