// Property sweeps over the analytical model: chain well-formedness across
// the paper's whole parameter box, throughput scaling laws, and exact-model
// monotonicity of the late fraction.
#include <gtest/gtest.h>

#include <tuple>

#include "model/composed_chain.hpp"
#include "model/tcp_chain.hpp"

namespace dmp {
namespace {

class ChainParamSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double, int>> {
};

TEST_P(ChainParamSweep, ChainIsWellFormed) {
  const auto [p, rtt, to, b] = GetParam();
  TcpChainParams params;
  params.loss_rate = p;
  params.rtt_s = rtt;
  params.to_ratio = to;
  params.ack_every = b;
  const TcpFlowChain chain(params);

  ASSERT_GT(chain.num_states(), 10u);
  double timeout_states = 0;
  for (std::uint32_t s = 0; s < chain.num_states(); ++s) {
    ASSERT_GT(chain.exit_rate(s), 0.0);
    double rate_sum = 0.0;
    for (const auto& t : chain.transitions_from(s)) {
      ASSERT_GT(t.rate, 0.0);
      ASSERT_LT(t.target, chain.num_states());
      ASSERT_LE(t.delivered, static_cast<std::uint32_t>(2 * params.wmax));
      rate_sum += t.rate;
    }
    ASSERT_NEAR(rate_sum, chain.exit_rate(s), 1e-9 * rate_sum);
    timeout_states += chain.is_timeout_state(s);
  }
  EXPECT_GT(timeout_states, 0);

  // Stationary distribution is proper and the throughput obeys hard bounds.
  const auto pi = chain.stationary();
  double total = 0.0;
  for (double v : pi) {
    ASSERT_GE(v, -1e-15);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-8);

  const double sigma = chain.achievable_throughput_pps();
  EXPECT_GT(sigma, 0.0);
  EXPECT_LE(sigma, params.wmax / params.rtt_s * 1.2);
}

INSTANTIATE_TEST_SUITE_P(
    PaperParameterBox, ChainParamSweep,
    ::testing::Combine(::testing::Values(0.004, 0.02, 0.04, 0.1),
                       ::testing::Values(0.04, 0.1, 0.3),
                       ::testing::Values(1.0, 2.0, 4.0),
                       ::testing::Values(1, 2)));

TEST(ChainScaling, ThroughputIsExactlyInverseInRtt) {
  // Every chain rate carries a 1/R factor, so sigma(p, R, TO) * R must be
  // constant — the identity the Section-7 parameter sweeps rely on.
  TcpChainParams params;
  params.loss_rate = 0.02;
  params.to_ratio = 3.0;
  params.rtt_s = 0.1;
  const double reference =
      TcpFlowChain(params).achievable_throughput_pps() * params.rtt_s;
  for (double rtt : {0.05, 0.2, 0.4, 1.0}) {
    params.rtt_s = rtt;
    const double scaled =
        TcpFlowChain(params).achievable_throughput_pps() * rtt;
    EXPECT_NEAR(scaled, reference, 1e-6 * reference) << "rtt " << rtt;
  }
}

class ExactTauSweep : public ::testing::TestWithParam<double> {};

TEST_P(ExactTauSweep, MoreLossMeansMoreLatePackets) {
  const double tau = GetParam();
  ComposedParams params;
  TcpChainParams flow;
  flow.rtt_s = 0.2;
  flow.to_ratio = 2.0;
  flow.wmax = 6;
  flow.max_backoff = 3;
  params.mu_pps = 20.0;
  params.tau_s = tau;
  double prev = -1.0;
  for (double p : {0.02, 0.05, 0.1, 0.2}) {
    flow.loss_rate = p;
    params.flows = {flow};
    const double f = ComposedChainExact(params).late_fraction();
    EXPECT_GT(f, prev) << "p " << p << " tau " << tau;
    prev = f;
  }
}

INSTANTIATE_TEST_SUITE_P(Taus, ExactTauSweep,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0));

TEST(ExactModel, NMarginalIsMonotoneNearTheCap) {
  // With sigma_a > mu the chain spends most of its time near N = Nmax;
  // the marginal must put more mass at the cap than at depletion.
  ComposedParams params;
  TcpChainParams flow;
  flow.loss_rate = 0.02;
  flow.rtt_s = 0.2;
  flow.to_ratio = 2.0;
  flow.wmax = 6;
  flow.max_backoff = 3;
  params.flows = {flow};
  params.mu_pps = 10.0;  // well below sigma ~ 30
  params.tau_s = 2.0;
  const ComposedChainExact exact(params);
  const auto& marginal = exact.n_marginal();
  EXPECT_GT(marginal.back(), marginal.front() * 10.0);
}

class McSeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(McSeedSweep, MonteCarloTracksExactAcrossSeeds) {
  ComposedParams params;
  TcpChainParams flow;
  flow.loss_rate = 0.06;
  flow.rtt_s = 0.2;
  flow.to_ratio = 2.0;
  flow.wmax = 6;
  flow.max_backoff = 3;
  params.flows = {flow};
  params.mu_pps = 18.0;
  params.tau_s = 1.0;
  const double exact = ComposedChainExact(params).late_fraction();
  DmpModelMonteCarlo mc(params, static_cast<std::uint64_t>(GetParam()));
  const auto result = mc.run(300'000, 30'000);
  EXPECT_NEAR(result.late_fraction, exact, 0.25 * exact + 0.003)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, McSeedSweep,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace dmp
