// The process-wide memoized chain cache: repeated solves of the same
// TcpChainParams must be O(1) lookups (no re-BFS, no re-solve), keyed by
// the canonicalized parameter bits, with bounded LRU eviction.
#include "model/chain_cache.hpp"

#include <gtest/gtest.h>

#include "model/composed_chain.hpp"
#include "model/tcp_chain.hpp"

namespace dmp {
namespace {

TcpChainParams flow(double loss) {
  TcpChainParams p;
  p.loss_rate = loss;
  p.rtt_s = 0.2;
  p.to_ratio = 2.0;
  p.wmax = 6;
  p.max_backoff = 3;
  return p;
}

TEST(ChainCache, RepeatedLookupsShareOneSolvedChain) {
  chain_cache_clear();
  const auto first = shared_flow_chain(flow(0.04));
  const auto misses_after_first = chain_cache_stats().misses;
  for (int i = 0; i < 50; ++i) {
    const auto again = shared_flow_chain(flow(0.04));
    EXPECT_EQ(again.get(), first.get());  // same object, not a rebuild
  }
  const auto stats = chain_cache_stats();
  EXPECT_EQ(stats.misses, misses_after_first);
  EXPECT_GE(stats.hits, 50u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ChainCache, HitIsConstantTimeRelativeToASolve) {
  chain_cache_clear();
  // A miss pays BFS + stationary solve; a hit is a mutex + hash lookup.
  // Rather than wall-clock (flaky under load), assert the observable
  // contract: constructing many engines over the same params performs
  // exactly one solve (miss count does not grow).
  ComposedParams params;
  params.flows = {flow(0.04), flow(0.04)};
  params.mu_pps = 40.0;
  params.tau_s = 1.0;
  { DmpModelMonteCarlo warm(params, 1, SamplerMode::kAlias); }
  const auto misses_before = chain_cache_stats().misses;
  for (int i = 0; i < 100; ++i) {
    DmpModelMonteCarlo engine(params, 1, SamplerMode::kAlias);
  }
  EXPECT_EQ(chain_cache_stats().misses, misses_before);
}

TEST(ChainCache, DistinctParametersGetDistinctEntries) {
  chain_cache_clear();
  const auto a = shared_flow_chain(flow(0.04));
  const auto b = shared_flow_chain(flow(0.05));
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(chain_cache_stats().entries, 2u);
}

TEST(ChainCache, EvictsLeastRecentlyUsedPastCapacity) {
  chain_cache_clear();
  const auto original_capacity = chain_cache_capacity();
  set_chain_cache_capacity(2);
  const auto a = shared_flow_chain(flow(0.03));
  shared_flow_chain(flow(0.04));
  shared_flow_chain(flow(0.05));  // evicts 0.03
  EXPECT_EQ(chain_cache_stats().entries, 2u);
  EXPECT_GE(chain_cache_stats().evictions, 1u);
  // The evicted chain is rebuilt on next request (a new object), while the
  // caller's shared_ptr keeps the old solve alive independently.
  const auto rebuilt = shared_flow_chain(flow(0.03));
  EXPECT_NE(rebuilt.get(), a.get());
  EXPECT_GT(a->num_states(), 0u);  // still usable
  set_chain_cache_capacity(original_capacity);
  chain_cache_clear();
}

TEST(ChainCache, RejectsZeroCapacity) {
  EXPECT_THROW(set_chain_cache_capacity(0), std::invalid_argument);
}

}  // namespace
}  // namespace dmp
