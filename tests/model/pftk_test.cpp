#include "model/pftk.hpp"

#include <gtest/gtest.h>

namespace dmp {
namespace {

PftkParams base() {
  PftkParams p;
  p.loss_rate = 0.02;
  p.rtt_s = 0.2;
  p.rto_s = 0.4;
  p.wmax = 64.0;
  p.b = 1.0;
  return p;
}

TEST(Pftk, MatchesHandComputedValue) {
  // p = 0.01, R = 0.1 s, T0 = 0.2 s, b = 1:
  //   term_fr = 0.1 * sqrt(0.02/3)            = 0.0081650
  //   q       = min(1, 3*sqrt(0.00375))       = 0.1837117
  //   term_to = 0.2 * q * 0.01 * (1+32e-4)    = 0.0003686
  //   B       = 1 / 0.0085336                 = 117.18 pps
  PftkParams p = base();
  p.loss_rate = 0.01;
  p.rtt_s = 0.1;
  p.rto_s = 0.2;
  EXPECT_NEAR(pftk_throughput_pps(p), 117.18, 0.5);
}

TEST(Pftk, SqrtModelIsUpperBound) {
  for (double loss : {0.004, 0.01, 0.02, 0.04}) {
    PftkParams p = base();
    p.loss_rate = loss;
    EXPECT_LE(pftk_throughput_pps(p), sqrt_model_throughput_pps(p) * 1.0001);
  }
}

TEST(Pftk, MonotoneDecreasingInLoss) {
  double prev = 1e18;
  for (double loss : {0.001, 0.004, 0.01, 0.04, 0.1, 0.3}) {
    PftkParams p = base();
    p.loss_rate = loss;
    const double t = pftk_throughput_pps(p);
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(Pftk, WindowLimitApplies) {
  PftkParams p = base();
  p.loss_rate = 0.0001;
  p.wmax = 10.0;
  EXPECT_DOUBLE_EQ(pftk_throughput_pps(p), 10.0 / p.rtt_s);
}

TEST(Pftk, DelayedAcksHalveTheSqrtTerm) {
  PftkParams p1 = base(), p2 = base();
  p2.b = 2.0;
  EXPECT_GT(pftk_throughput_pps(p1), pftk_throughput_pps(p2));
}

TEST(Pftk, InverseRoundTrips) {
  PftkParams p = base();
  const double t = pftk_throughput_pps(p);
  EXPECT_NEAR(pftk_loss_for_throughput(t, p), p.loss_rate, 1e-6);
}

TEST(Pftk, InverseRejectsBadTargets) {
  PftkParams p = base();
  EXPECT_THROW(pftk_loss_for_throughput(-1.0, p), std::invalid_argument);
  EXPECT_THROW(pftk_loss_for_throughput(p.wmax / p.rtt_s + 1.0, p),
               std::invalid_argument);
}

TEST(Pftk, RejectsInvalidParameters) {
  PftkParams p = base();
  p.loss_rate = 0.0;
  EXPECT_THROW(pftk_throughput_pps(p), std::invalid_argument);
  p = base();
  p.rtt_s = 0.0;
  EXPECT_THROW(pftk_throughput_pps(p), std::invalid_argument);
}

}  // namespace
}  // namespace dmp
