// The composed DMP model: exact product-chain solution vs. the Monte-Carlo
// engine, plus structural properties of the late-packet fraction.
#include "model/composed_chain.hpp"

#include <gtest/gtest.h>

namespace dmp {
namespace {

// Small per-flow chain so the exact product stays tractable.
TcpChainParams tiny_flow(double loss = 0.05) {
  TcpChainParams p;
  p.loss_rate = loss;
  p.rtt_s = 0.2;
  p.to_ratio = 2.0;
  p.wmax = 6;
  p.max_backoff = 3;
  return p;
}

TEST(ComposedExact, MarginalIsAProperDistribution) {
  ComposedParams params;
  params.flows = {tiny_flow()};
  params.mu_pps = 20.0;
  params.tau_s = 1.0;  // Nmax = 20
  const ComposedChainExact exact(params);
  double total = 0.0;
  for (double v : exact.n_marginal()) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-8);
  EXPECT_GT(exact.late_fraction(), 0.0);
  EXPECT_LT(exact.late_fraction(), 1.0);
}

TEST(ComposedExact, LateFractionDecreasesWithTau) {
  ComposedParams params;
  params.flows = {tiny_flow()};
  params.mu_pps = 20.0;
  double prev = 1.0;
  for (double tau : {0.25, 0.5, 1.0, 2.0}) {
    params.tau_s = tau;
    const double f = ComposedChainExact(params).late_fraction();
    EXPECT_LT(f, prev) << "tau " << tau;
    prev = f;
  }
}

TEST(ComposedExact, LateFractionDecreasesWithMoreHeadroom) {
  // Lower mu (same paths) -> higher sigma_a/mu -> fewer late packets.
  ComposedParams params;
  params.flows = {tiny_flow(), tiny_flow()};
  params.tau_s = 1.0;
  params.mu_pps = 30.0;
  const double f_tight = ComposedChainExact(params).late_fraction();
  params.mu_pps = 20.0;
  params.tau_s = 1.5;  // keep Nmax = 30 identical
  const double f_loose = ComposedChainExact(params).late_fraction();
  EXPECT_LT(f_loose, f_tight);
}

TEST(ComposedExactVsMonteCarlo, AgreeOnSingleFlow) {
  ComposedParams params;
  params.flows = {tiny_flow()};
  params.mu_pps = 15.0;
  params.tau_s = 1.0;
  const double exact = ComposedChainExact(params).late_fraction();

  DmpModelMonteCarlo mc(params, 99);
  const auto result = mc.run(400'000, 40'000);
  EXPECT_GT(exact, result.ci.lo() - 0.01);
  EXPECT_LT(exact, result.ci.hi() + 0.01);
  EXPECT_NEAR(result.late_fraction, exact, 0.15 * exact + 0.002);
}

TEST(ComposedExactVsMonteCarlo, AgreeOnTwoFlows) {
  ComposedParams params;
  params.flows = {tiny_flow(0.05), tiny_flow(0.08)};
  params.mu_pps = 25.0;
  params.tau_s = 0.8;  // Nmax = 20
  const double exact = ComposedChainExact(params).late_fraction();

  DmpModelMonteCarlo mc(params, 7);
  const auto result = mc.run(400'000, 40'000);
  EXPECT_NEAR(result.late_fraction, exact, 0.2 * exact + 0.002);
}

TEST(MonteCarlo, HigherThroughputFlowContributesMore) {
  // The model-side analogue of DMP's dynamic split: the flow with lower
  // loss (higher sigma) must deliver a larger share.
  ComposedParams params;
  params.flows = {tiny_flow(0.02), tiny_flow(0.10)};
  params.mu_pps = 30.0;
  params.tau_s = 2.0;
  DmpModelMonteCarlo mc(params, 3);
  const auto result = mc.run(300'000, 30'000);
  ASSERT_EQ(result.flow_share.size(), 2u);
  EXPECT_GT(result.flow_share[0], result.flow_share[1]);
  EXPECT_NEAR(result.flow_share[0] + result.flow_share[1], 1.0, 1e-9);
}

TEST(MonteCarlo, EarlyPacketsStayWithinNmax) {
  ComposedParams params;
  params.flows = {tiny_flow()};
  params.mu_pps = 10.0;
  params.tau_s = 2.0;  // Nmax = 20
  DmpModelMonteCarlo mc(params, 5);
  const auto result = mc.run(100'000, 10'000);
  EXPECT_GE(result.mean_early_packets, 0.0);
  EXPECT_LE(result.mean_early_packets, 20.0);
}

TEST(MonteCarlo, DeterministicForFixedSeed) {
  ComposedParams params;
  params.flows = {tiny_flow()};
  params.mu_pps = 15.0;
  params.tau_s = 1.0;
  const auto a = DmpModelMonteCarlo(params, 42).run(100'000, 10'000);
  const auto b = DmpModelMonteCarlo(params, 42).run(100'000, 10'000);
  EXPECT_EQ(a.late, b.late);
  EXPECT_DOUBLE_EQ(a.late_fraction, b.late_fraction);
}

TEST(MonteCarlo, RunUntilDecidesStopsEarlyOnClearCases) {
  // Hopeless configuration: mu far beyond capacity, f ~ large.
  ComposedParams params;
  params.flows = {tiny_flow(0.2)};
  params.mu_pps = 100.0;
  params.tau_s = 0.5;
  DmpModelMonteCarlo mc(params, 1);
  const auto result = mc.run_until_decides(1e-4, 100'000, 10'000'000);
  EXPECT_LT(result.consumptions, 1'000'000u);  // decided fast
  EXPECT_GT(result.late_fraction, 0.1);
}

TEST(MonteCarlo, TwoIdenticalPathsSplitEvenly) {
  ComposedParams params;
  params.flows = {tiny_flow(), tiny_flow()};
  params.mu_pps = 25.0;
  params.tau_s = 2.0;
  DmpModelMonteCarlo mc(params, 11);
  const auto result = mc.run(300'000, 30'000);
  EXPECT_NEAR(result.flow_share[0], 0.5, 0.03);
}

TEST(ComposedParams, NmaxRoundsMuTau) {
  ComposedParams params;
  params.mu_pps = 25.0;
  params.tau_s = 4.0;
  EXPECT_EQ(params.nmax(), 100);
  params.tau_s = 0.01;
  EXPECT_EQ(params.nmax(), 0);
  params.flows = {tiny_flow()};
  EXPECT_THROW(ComposedChainExact{params}, std::invalid_argument);
  EXPECT_THROW((DmpModelMonteCarlo{params, 1}), std::invalid_argument);
}

TEST(ComposedExactVsMonteCarlo, AliasSamplerAgreesAtKThree) {
  // Three-path differential for the alias fast path: small wmax keeps the
  // exact product tractable (16^3 x (Nmax+1) states).
  TcpChainParams flow = tiny_flow(0.08);
  flow.wmax = 4;
  flow.max_backoff = 2;
  ComposedParams params;
  params.flows = {flow, flow, flow};
  params.mu_pps = 24.0;
  params.tau_s = 0.25;  // Nmax = 6
  const double exact = ComposedChainExact(params).late_fraction();

  DmpModelMonteCarlo mc(params, 11, SamplerMode::kAlias);
  const auto result = mc.run(2'000'000, 100'000);
  EXPECT_NEAR(result.late_fraction, exact, 0.05 * exact);
  EXPECT_GT(exact, result.ci.lo() - 0.01);
  EXPECT_LT(exact, result.ci.hi() + 0.01);
}

TEST(ComposedExactVsMonteCarlo, AliasAndCompatSampleTheSameChain) {
  // Same generator, different realizations: both modes must straddle the
  // exact answer on a configuration with substantial lateness.
  ComposedParams params;
  params.flows = {tiny_flow(0.05), tiny_flow(0.05)};
  params.mu_pps = 30.0;
  params.tau_s = 0.4;
  const double exact = ComposedChainExact(params).late_fraction();
  const auto alias =
      DmpModelMonteCarlo(params, 9, SamplerMode::kAlias).run(800'000, 80'000);
  const auto compat =
      DmpModelMonteCarlo(params, 9, SamplerMode::kCompat).run(800'000, 80'000);
  EXPECT_NEAR(alias.late_fraction, exact, 0.05 * exact);
  EXPECT_NEAR(compat.late_fraction, exact, 0.05 * exact);
}

TEST(ComposedSolvers, GaussSeidelAndPowerAgreeOnTheProductChain) {
  ComposedParams params;
  params.flows = {tiny_flow(0.06)};
  params.mu_pps = 20.0;
  params.tau_s = 0.5;  // Nmax = 10
  const Ctmc chain = composed_ctmc(params);
  const auto gs = chain.steady_state_gauss_seidel(1e-13);
  const auto power = chain.steady_state_power(1e-13);
  ASSERT_EQ(gs.size(), power.size());
  for (std::size_t i = 0; i < gs.size(); ++i) {
    EXPECT_NEAR(gs[i], power[i], 1e-8);
  }
}

TEST(MonteCarlo, AliasModeDeterministicForFixedSeed) {
  ComposedParams params;
  params.flows = {tiny_flow(), tiny_flow()};
  params.mu_pps = 30.0;
  params.tau_s = 0.4;
  const auto a =
      DmpModelMonteCarlo(params, 42, SamplerMode::kAlias).run(200'000, 20'000);
  const auto b =
      DmpModelMonteCarlo(params, 42, SamplerMode::kAlias).run(200'000, 20'000);
  EXPECT_EQ(a.late, b.late);
  EXPECT_DOUBLE_EQ(a.late_fraction, b.late_fraction);
  EXPECT_DOUBLE_EQ(a.mean_early_packets, b.mean_early_packets);
}

TEST(MonteCarlo, RunUntilDecidesAtMinWhenThresholdIsUnreachable) {
  // threshold below any possible estimate: the CI separates immediately,
  // so the decision lands exactly at the minimum budget.
  ComposedParams params;
  params.flows = {tiny_flow(0.2)};
  params.mu_pps = 100.0;
  params.tau_s = 0.5;
  DmpModelMonteCarlo mc(params, 1);
  const auto result = mc.run_until_decides(-1.0, 50'000, 10'000'000);
  EXPECT_EQ(result.consumptions, 50'000u);
  // And the early decision reports the same estimate a plain run would.
  DmpModelMonteCarlo fresh(params, 1);
  const auto direct = fresh.run(50'000, 5'000);
  EXPECT_EQ(result.late, direct.late);
  EXPECT_DOUBLE_EQ(result.late_fraction, direct.late_fraction);
}

TEST(MonteCarlo, RunUntilDecidesExhaustsBudgetOnAKnifeEdge) {
  // Threshold pinned at the point estimate: the CI cannot separate, so the
  // sampler must run out its budget and still return a usable estimate.
  ComposedParams params;
  params.flows = {tiny_flow(0.1)};
  params.mu_pps = 40.0;
  params.tau_s = 0.5;
  DmpModelMonteCarlo probe(params, 21);
  const double knife = probe.run(400'000, 40'000).late_fraction;

  DmpModelMonteCarlo mc(params, 21);
  const auto result = mc.run_until_decides(knife, 50'000, 400'000);
  EXPECT_GE(result.consumptions, 400'000u);  // budget exhausted
  EXPECT_NEAR(result.late_fraction, knife, 0.1 * knife + 0.001);
}

TEST(MonteCarlo, ResultStaysInternallyConsistentAfterContinuation) {
  // run_until_decides extends the same trajectory in doubling rounds; the
  // merged counters must stay consistent after every continuation.
  ComposedParams params;
  params.flows = {tiny_flow(0.05), tiny_flow(0.08)};
  params.mu_pps = 30.0;
  params.tau_s = 0.4;
  DmpModelMonteCarlo mc(params, 17);
  const auto result = mc.run_until_decides(0.05, 30'000, 500'000);
  EXPECT_GE(result.consumptions, 30'000u);
  EXPECT_DOUBLE_EQ(result.late_fraction,
                   static_cast<double>(result.late) /
                       static_cast<double>(result.consumptions));
  double share = 0.0;
  for (double s : result.flow_share) share += s;
  EXPECT_NEAR(share, 1.0, 1e-9);
  EXPECT_GE(result.mean_early_packets, 0.0);
  EXPECT_LE(result.mean_early_packets, static_cast<double>(params.nmax()));
}

TEST(ComposedExact, RejectsOversizedProducts) {
  ComposedParams params;
  TcpChainParams big;
  big.wmax = 24;
  params.flows = {big, big};
  params.mu_pps = 100.0;
  params.tau_s = 10.0;  // Nmax = 1000: product chain far beyond the cap
  EXPECT_THROW(ComposedChainExact{params}, std::invalid_argument);
}

}  // namespace
}  // namespace dmp
