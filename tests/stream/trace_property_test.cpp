// Randomized trace properties: the late-fraction analyses must satisfy
// structural identities for any arrival process.
#include <gtest/gtest.h>

#include <algorithm>

#include "stream/trace.hpp"
#include "util/rng.hpp"

namespace dmp {
namespace {

// Build a random trace: in-order generation, random per-packet delays,
// delivered in arrival-time order (like the multipath client sees).
StreamTrace random_trace(double mu, int n, double max_delay_s,
                         std::uint64_t seed) {
  Rng rng(seed);
  struct Arrival {
    std::int64_t number;
    double at;
  };
  std::vector<Arrival> arrivals;
  for (int i = 0; i < n; ++i) {
    const double gen = static_cast<double>(i) / mu;
    arrivals.push_back({i, gen + rng.uniform(0.0, max_delay_s)});
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Arrival& a, const Arrival& b) { return a.at < b.at; });
  StreamTrace trace(mu);
  for (const auto& a : arrivals) {
    trace.record(a.number, SimTime::seconds(a.at),
                 static_cast<std::uint32_t>(a.number % 2));
  }
  return trace;
}

class TraceSeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(TraceSeedSweep, LateFractionsAreProperAndMonotone) {
  const auto trace =
      random_trace(25.0, 2000, 6.0, static_cast<std::uint64_t>(GetParam()));
  double prev_play = 1.1, prev_arr = 1.1;
  for (double tau = 0.5; tau <= 8.0; tau += 0.5) {
    const double fp = trace.late_fraction_playback_order(tau, 2000);
    const double fa = trace.late_fraction_arrival_order(tau, 2000);
    ASSERT_GE(fp, 0.0);
    ASSERT_LE(fp, 1.0);
    ASSERT_GE(fa, 0.0);
    ASSERT_LE(fa, 1.0);
    ASSERT_LE(fp, prev_play + 1e-12);  // monotone non-increasing in tau
    ASSERT_LE(fa, prev_arr + 1e-12);
    prev_play = fp;
    prev_arr = fa;
  }
  // tau beyond the max delay: nothing can be late under either discipline.
  EXPECT_DOUBLE_EQ(trace.late_fraction_playback_order(6.1, 2000), 0.0);
  EXPECT_DOUBLE_EQ(trace.late_fraction_arrival_order(6.1, 2000), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceSeedSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST_P(TraceSeedSweep, DisciplinesCoincideWhenLatenessIsClustered) {
  // The paper's Section-4.1 argument: when late packets come in short
  // congestion bursts (rather than as large independent per-packet
  // delays), playing back in arrival order changes the late fraction only
  // negligibly.  Construct exactly that: mostly-punctual delivery with
  // occasional multi-second outage bursts.
  const std::uint64_t seed = 200 + static_cast<std::uint64_t>(GetParam());
  Rng rng(seed);
  const double mu = 40.0;
  const int n = 4000;
  StreamTrace trace(mu);
  double backlog_until = 0.0;  // outage: packets queue and flush together
  for (int i = 0; i < n; ++i) {
    const double gen = static_cast<double>(i) / mu;
    if (rng.chance(0.001)) backlog_until = gen + rng.uniform(1.0, 3.0);
    const double at = std::max(gen + 0.05, backlog_until);
    trace.record(i, SimTime::seconds(at), 0);
  }
  for (double tau : {0.5, 1.0, 2.0}) {
    const double fp = trace.late_fraction_playback_order(tau, n);
    const double fa = trace.late_fraction_arrival_order(tau, n);
    // Same order of magnitude — the paper's match criterion.
    if (fp > 0.001) {
      EXPECT_GT(fa, 0.1 * fp) << "tau " << tau;
      EXPECT_LT(fa, 10.0 * fp) << "tau " << tau;
    }
  }
}

TEST(TraceIdentities, InOrderArrivalsMakeBothDisciplinesEqual) {
  // With strictly in-order arrivals, arrival rank == packet number, so
  // both analyses see identical deadlines.
  StreamTrace trace(30.0);
  Rng rng(9);
  double at = 0.0;
  for (int i = 0; i < 800; ++i) {
    at = std::max(at + 1e-6, i / 30.0 + rng.exponential(0.4));
    trace.record(i, SimTime::seconds(at), 0);
  }
  for (double tau : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    EXPECT_NEAR(trace.late_fraction_playback_order(tau, 800),
                trace.late_fraction_arrival_order(tau, 800), 1e-12)
        << "tau " << tau;
  }
}

TEST(TraceIdentities, OutOfOrderFractionZeroForSortedTrace) {
  StreamTrace trace(10.0);
  for (int i = 0; i < 100; ++i) {
    trace.record(i, SimTime::seconds(i / 10.0), 0);
  }
  EXPECT_DOUBLE_EQ(trace.out_of_order_fraction(), 0.0);
}

}  // namespace
}  // namespace dmp
