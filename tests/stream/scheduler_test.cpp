// Unit tests for the PathScheduler API: spec parsing, the shared weighted
// split, the client-side redundancy filter, and each strategy's pick
// behavior on synthetic path states.
#include <gtest/gtest.h>

#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "stream/scheduler/path_scheduler.hpp"
#include "stream/scheduler/redundancy_filter.hpp"
#include "stream/scheduler/strategies.hpp"
#include "stream/scheduler/weighted_split.hpp"

namespace dmp {
namespace {

// --- spec grammar ---

TEST(SchedulerSpec, ParsesEveryStrategy) {
  EXPECT_EQ(SchedulerSpec::parse("pull").strategy,
            SchedulerSpec::Strategy::kPull);
  EXPECT_EQ(SchedulerSpec::parse("best_path").strategy,
            SchedulerSpec::Strategy::kBestPath);
  EXPECT_EQ(SchedulerSpec::parse("round_robin").strategy,
            SchedulerSpec::Strategy::kRoundRobin);
  EXPECT_EQ(SchedulerSpec::parse("redundant").strategy,
            SchedulerSpec::Strategy::kRedundant);
  EXPECT_EQ(SchedulerSpec::parse("weighted").strategy,
            SchedulerSpec::Strategy::kWeighted);
  EXPECT_TRUE(SchedulerSpec::parse("weighted").weights.empty());

  const auto weighted = SchedulerSpec::parse("weighted:0.75,0.25");
  EXPECT_EQ(weighted.strategy, SchedulerSpec::Strategy::kWeighted);
  ASSERT_EQ(weighted.weights.size(), 2u);
  EXPECT_DOUBLE_EQ(weighted.weights[0], 0.75);
  EXPECT_DOUBLE_EQ(weighted.weights[1], 0.25);

  const auto parity = SchedulerSpec::parse("parity-8");
  EXPECT_EQ(parity.strategy, SchedulerSpec::Strategy::kParity);
  EXPECT_EQ(parity.parity_k, 8);
  EXPECT_TRUE(parity.redundant());
  EXPECT_TRUE(SchedulerSpec::parse("redundant").redundant());
  EXPECT_FALSE(SchedulerSpec::parse("pull").redundant());
}

TEST(SchedulerSpec, RejectsBadSpecsNamingTheAcceptedSet) {
  for (const char* bad : {"bogus", "", "weighted:", "weighted:0.5,x",
                          "weighted:-1", "parity-", "parity-1", "parity-33",
                          "parity-4x", "PULL"}) {
    try {
      SchedulerSpec::parse(bad);
      FAIL() << "expected invalid_argument for '" << bad << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(scheduler_spec_grammar()),
                std::string::npos)
          << "error for '" << bad << "' should cite the grammar: "
          << e.what();
    }
  }
}

TEST(SchedulerSpec, FactoryValidatesWeightCountAndPathCount) {
  EXPECT_THROW(
      make_path_scheduler(SchedulerSpec::parse("weighted:1,2,3"), 2),
      std::invalid_argument);
  EXPECT_THROW(make_path_scheduler(SchedulerSpec::parse("pull"), 0),
               std::invalid_argument);
  // Default weights (path rates) seed the split when the spec has none.
  const auto sched =
      make_path_scheduler(SchedulerSpec::parse("weighted"), 2, {3e6, 1e6});
  EXPECT_STREQ(sched->name(), "weighted");
}

TEST(SchedulerSpec, ParityTagsRoundTripAndStayOutOfDataRange) {
  for (const std::int64_t first : {0LL, 1LL, 499LL, 100000LL}) {
    for (const int k : {kParityKMin, 7, kParityKMax}) {
      const std::int64_t tag = encode_parity_tag(first, k);
      EXPECT_TRUE(is_parity_tag(tag));
      EXPECT_LT(tag, 0);
      std::int64_t got_first = -1;
      int got_k = 0;
      decode_parity_tag(tag, &got_first, &got_k);
      EXPECT_EQ(got_first, first);
      EXPECT_EQ(got_k, k);
    }
  }
  // Ordinary data tags and small negative control tags are not parity.
  EXPECT_FALSE(is_parity_tag(0));
  EXPECT_FALSE(is_parity_tag(12345));
  EXPECT_FALSE(is_parity_tag(-1));
}

// --- weighted split ---

TEST(WeightedSplit, EvenSplitIsRoundRobin) {
  WeightedSplit split(2, {});
  std::vector<int> counts(2, 0);
  for (int i = 0; i < 10; ++i) ++counts[split.assign()];
  EXPECT_EQ(counts[0], 5);
  EXPECT_EQ(counts[1], 5);
}

TEST(WeightedSplit, UnequalWeightsHitTargetFractions) {
  WeightedSplit split(2, {0.75, 0.25});
  std::vector<int> counts(2, 0);
  for (int i = 0; i < 100; ++i) ++counts[split.assign()];
  EXPECT_EQ(counts[0], 75);
  EXPECT_EQ(counts[1], 25);
}

TEST(WeightedSplit, AssignAmongSkipsExcludedPaths) {
  WeightedSplit split(3, {});
  std::vector<char> allowed{1, 0, 1};  // path 1 is down
  for (int i = 0; i < 12; ++i) {
    const std::size_t k = split.assign_among(&allowed);
    EXPECT_NE(k, 1u);
  }
  // All-excluded falls back to the unrestricted rule instead of looping.
  std::vector<char> none{0, 0, 0};
  const std::size_t k = split.assign_among(&none);
  EXPECT_LT(k, 3u);
}

TEST(WeightedSplit, RejectsBadWeights) {
  EXPECT_THROW(WeightedSplit(0, {}), std::invalid_argument);
  EXPECT_THROW(WeightedSplit(2, {1.0}), std::invalid_argument);
  EXPECT_THROW(WeightedSplit(2, {1.0, -0.5}), std::invalid_argument);
  EXPECT_THROW(WeightedSplit(2, {0.0, 0.0}), std::invalid_argument);
}

// --- redundancy filter ---

TEST(RedundancyFilter, FirstSightPassesRepeatsAreSuppressed) {
  RedundancyFilter filter;
  std::vector<std::int64_t> delivered;
  const auto record = [&](std::int64_t tag) { delivered.push_back(tag); };
  filter.on_deliver(0, record);
  filter.on_deliver(1, record);
  filter.on_deliver(0, record);  // duplicate copy
  filter.on_deliver(1, record);
  EXPECT_EQ(delivered, (std::vector<std::int64_t>{0, 1}));
  EXPECT_EQ(filter.counters().duplicates_suppressed, 2u);
  EXPECT_TRUE(filter.seen(0));
  EXPECT_FALSE(filter.seen(2));
}

TEST(RedundancyFilter, ParityRecoversExactlyOneMissingPacket) {
  RedundancyFilter filter;
  std::vector<std::int64_t> delivered;
  const auto record = [&](std::int64_t tag) { delivered.push_back(tag); };
  // Window [0, 4): tags 0, 2, 3 arrive; 1 is missing.
  filter.on_deliver(0, record);
  filter.on_deliver(2, record);
  filter.on_deliver(3, record);
  filter.on_deliver(encode_parity_tag(0, 4), record);
  EXPECT_EQ(delivered, (std::vector<std::int64_t>{0, 2, 3, 1}));
  EXPECT_EQ(filter.counters().parity_received, 1u);
  EXPECT_EQ(filter.counters().parity_recovered, 1u);
  // The late original is now a duplicate.
  filter.on_deliver(1, record);
  EXPECT_EQ(filter.counters().duplicates_suppressed, 1u);
  EXPECT_EQ(delivered.size(), 4u);
}

TEST(RedundancyFilter, ParityWithZeroOrManyMissingIsUnused) {
  RedundancyFilter filter;
  std::vector<std::int64_t> delivered;
  const auto record = [&](std::int64_t tag) { delivered.push_back(tag); };
  filter.on_deliver(0, record);
  filter.on_deliver(1, record);
  filter.on_deliver(encode_parity_tag(0, 2), record);  // nothing missing
  filter.on_deliver(encode_parity_tag(4, 3), record);  // 3 missing
  EXPECT_EQ(delivered, (std::vector<std::int64_t>{0, 1}));
  EXPECT_EQ(filter.counters().parity_received, 2u);
  EXPECT_EQ(filter.counters().parity_recovered, 0u);
  EXPECT_EQ(filter.counters().parity_unused, 2u);
}

TEST(RedundancyFilter, IgnoresNegativeControlTags) {
  RedundancyFilter filter;
  std::vector<std::int64_t> delivered;
  filter.on_deliver(-1, [&](std::int64_t tag) { delivered.push_back(tag); });
  EXPECT_TRUE(delivered.empty());
}

// --- strategies on synthetic states ---

std::vector<SchedPathState> two_paths(std::size_t space0, std::size_t space1,
                                      bool down0 = false, bool down1 = false) {
  std::vector<SchedPathState> paths(2);
  paths[0].space = space0;
  paths[0].down = down0;
  paths[1].space = space1;
  paths[1].down = down1;
  return paths;
}

// Runs the drain loop the server runs: pick until false, consuming pulled
// packets from `queue` and one send-buffer slot per dispatch (the real
// server's enqueue does the same), and returns the executed decisions.
std::vector<SchedDecision> drain(PathScheduler& sched,
                                 std::vector<SchedPathState> paths,
                                 std::deque<std::int64_t>& queue) {
  std::vector<SchedDecision> out;
  SchedDecision d;
  while (sched.pick(paths, queue, &d)) {
    if (d.kind == SchedDecision::Kind::kPull) {
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(d.queue_pos));
      // Mimic the server's state refresh: the first pull a path carries
      // becomes its oldest transmitted-but-unacked tag (no ACKs arrive
      // inside a synthetic drain).
      if (paths[d.path].oldest_unacked < 0) {
        paths[d.path].oldest_unacked = d.packet;
      }
    }
    if (paths[d.path].space > 0) --paths[d.path].space;
    out.push_back(d);
  }
  return out;
}

TEST(PullSchedulerUnit, OfferWalksSendersFromRotatingIndex) {
  PullScheduler sched(2);
  std::deque<std::int64_t> queue{0, 1, 2};
  // First offer starts at sender 0; it has space for 2, sender 1 takes the
  // rest.
  sched.on_offer();
  auto d = drain(sched, two_paths(2, 8), queue);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0].path, 0u);
  EXPECT_EQ(d[1].path, 0u);
  EXPECT_EQ(d[2].path, 1u);
  EXPECT_TRUE(queue.empty());
  // The rotation advanced: the next offer starts at sender 1.
  queue = {3};
  sched.on_offer();
  d = drain(sched, two_paths(8, 8), queue);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].path, 1u);
}

TEST(PullSchedulerUnit, RotationAdvancesEvenWhenNothingDispatches) {
  PullScheduler sched(2);
  std::deque<std::int64_t> queue{0};
  sched.on_offer();
  // No sender has space: nothing dispatched, but the rotation still moves.
  EXPECT_TRUE(drain(sched, two_paths(0, 0), queue).empty());
  EXPECT_EQ(sched.rotate(), 1u);
  queue.clear();
  sched.on_offer();
  EXPECT_TRUE(drain(sched, two_paths(5, 5), queue).empty());
  EXPECT_EQ(sched.rotate(), 0u);
}

TEST(PullSchedulerUnit, WindowOpenFocusesOneSender) {
  PullScheduler sched(2);
  std::deque<std::int64_t> queue{0, 1, 2};
  sched.on_window_open(1);
  const auto d = drain(sched, two_paths(8, 2), queue);
  // Focus drains sender 1 until its space is gone; sender 0 is not touched.
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0].path, 1u);
  EXPECT_EQ(d[1].path, 1u);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(PullSchedulerUnit, SkipsDownPaths) {
  PullScheduler sched(2);
  std::deque<std::int64_t> queue{0, 1};
  sched.on_offer();
  const auto d = drain(sched, two_paths(8, 8, /*down0=*/true), queue);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0].path, 1u);
  EXPECT_EQ(d[1].path, 1u);
}

TEST(BestPathUnit, PicksLowestSmoothedRtt) {
  BestPathScheduler sched;
  auto paths = two_paths(4, 4);
  paths[0].srtt_s = 0.2;
  paths[1].srtt_s = 0.05;
  std::deque<std::int64_t> queue{7};
  SchedDecision d;
  ASSERT_TRUE(sched.pick(paths, queue, &d));
  EXPECT_EQ(d.path, 1u);
  EXPECT_EQ(d.packet, 7);
  // An unmeasured path (srtt 0) ranks behind any measured one.
  paths[1].srtt_s = 0.0;
  ASSERT_TRUE(sched.pick(paths, queue, &d));
  EXPECT_EQ(d.path, 0u);
  // But still carries traffic when it is the only live option.
  paths[0].down = true;
  ASSERT_TRUE(sched.pick(paths, queue, &d));
  EXPECT_EQ(d.path, 1u);
}

TEST(RoundRobinUnit, AlternatesPathsOnePacketEach) {
  RoundRobinScheduler sched(2);
  std::deque<std::int64_t> queue{0, 1, 2, 3};
  const auto d = drain(sched, two_paths(8, 8), queue);
  ASSERT_EQ(d.size(), 4u);
  EXPECT_EQ(d[0].path, 0u);
  EXPECT_EQ(d[1].path, 1u);
  EXPECT_EQ(d[2].path, 0u);
  EXPECT_EQ(d[3].path, 1u);
}

TEST(RedundantUnit, DuplicatesOnIdleSpareWithinBudget) {
  RedundantScheduler sched(2);
  // 40 data packets buy a copy (1 per kBudgetDen = 25) AND leave the
  // head-of-line packet (tag 0, still unacked on path 0) at least kLagMin
  // = 32 tags behind the stream frontier — the real rescue condition.
  std::deque<std::int64_t> queue;
  for (std::int64_t i = 0; i < 40; ++i) {
    queue.push_back(i);
    sched.on_generate(i);
  }
  sched.on_offer();
  const auto d = drain(sched, two_paths(64, 64), queue);
  // 40 pulls (all on path 0: space never runs out) + 1 copy of the
  // head-of-line packet — path 0's oldest transmitted-but-unacked tag —
  // on the spare path.
  ASSERT_EQ(d.size(), 41u);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(d[i].kind, SchedDecision::Kind::kPull);
    EXPECT_EQ(d[i].path, 0u);
  }
  EXPECT_EQ(d[40].kind, SchedDecision::Kind::kDuplicate);
  EXPECT_EQ(d[40].path, 1u);  // spare != the head-of-line holder
  EXPECT_EQ(d[40].packet, 0);
  // Budget spent: the next idle window sends no second copy.
  std::deque<std::int64_t> one{40};
  sched.on_generate(40);
  sched.on_offer();
  const auto d2 = drain(sched, two_paths(64, 64), one);
  ASSERT_EQ(d2.size(), 1u);
  EXPECT_EQ(d2[0].kind, SchedDecision::Kind::kPull);
}

TEST(RedundantUnit, PathDownResendsAtRiskTagsOnSurvivors) {
  RedundantScheduler sched(2);
  std::deque<std::int64_t> queue{0, 1, 2, 3};
  sched.on_offer();
  drain(sched, two_paths(64, 64), queue);  // all four pulled onto path 0
  // Path 0 dies.  The server reclaims the never-transmitted share (2, 3 —
  // they re-enter the queue as data) and snapshots the transmitted-but-
  // unacked tags (0, 1) as the at-risk set; only the slice younger than
  // the dead path's SRTT is re-sent — tag 0 is older than one RTT (its
  // delivery completed before the fault), so only tag 1 rides again.
  sched.on_path_down(0, {2, 3},
                     {AtRiskPacket{0, /*age_s=*/0.5}, AtRiskPacket{1, 0.05}},
                     /*srtt_s=*/0.2);
  sched.on_offer();
  std::deque<std::int64_t> requeued{2, 3};
  const auto d =
      drain(sched, two_paths(0, 64, /*down0=*/true), requeued);
  ASSERT_GE(d.size(), 1u);
  EXPECT_EQ(d[0].kind, SchedDecision::Kind::kDuplicate);
  EXPECT_EQ(d[0].packet, 1);
  EXPECT_EQ(d[0].path, 1u);
  // The reclaimed share rides as ordinary data.
  std::size_t pulls = 0;
  for (const auto& dec : d) {
    if (dec.kind == SchedDecision::Kind::kPull) ++pulls;
  }
  EXPECT_EQ(pulls, 2u);
}

TEST(ParityUnit, EmitsOneParityPerKConsecutivePackets) {
  ParityScheduler sched(2, 3);
  EXPECT_STREQ(sched.name(), "parity-3");
  EXPECT_TRUE(sched.needs_dedup());
  std::deque<std::int64_t> queue{0, 1, 2};
  sched.on_offer();
  const auto d = drain(sched, two_paths(64, 64), queue);
  ASSERT_EQ(d.size(), 4u);
  EXPECT_EQ(d[3].kind, SchedDecision::Kind::kParity);
  EXPECT_EQ(d[3].path, 1u);  // spare, not the data path
  std::int64_t first = -1;
  int k = 0;
  decode_parity_tag(d[3].packet, &first, &k);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(k, 3);
}

TEST(ParityUnit, GapRestartsTheParityWindow) {
  ParityScheduler sched(2, 2);
  std::deque<std::int64_t> queue{0, 5, 6};  // 0 then a gap (reclaim reorder)
  sched.on_offer();
  const auto d = drain(sched, two_paths(64, 64), queue);
  // Window restarts at 5; parity covers [5, 7), never the gapped [0, 2).
  ASSERT_EQ(d.size(), 4u);
  EXPECT_EQ(d[3].kind, SchedDecision::Kind::kParity);
  std::int64_t first = -1;
  int k = 0;
  decode_parity_tag(d[3].packet, &first, &k);
  EXPECT_EQ(first, 5);
  EXPECT_EQ(k, 2);
}

}  // namespace
}  // namespace dmp
