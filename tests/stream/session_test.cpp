// End-to-end session harness tests: Table-1 configurations with background
// traffic, measured path parameters, and scheme comparison.
#include "stream/session.hpp"

#include <gtest/gtest.h>

namespace dmp {
namespace {

SessionConfig quick_session() {
  SessionConfig config;
  config.path_configs = {table1_config(4), table1_config(4)};
  config.mu_pps = 50.0;
  config.duration_s = 120.0;
  config.warmup_s = 10.0;
  config.drain_s = 30.0;
  config.seed = 7;
  return config;
}

TEST(Session, ProducesTraceAndMeasurements) {
  const auto result = run_session(quick_session());
  EXPECT_GT(result.packets_generated, 5000);
  EXPECT_GT(result.trace.arrivals(), 0u);
  ASSERT_EQ(result.paths.size(), 2u);
  for (const auto& m : result.paths) {
    EXPECT_GT(m.loss_rate, 0.0);   // Table-1 bottlenecks are congested
    EXPECT_LT(m.loss_rate, 0.3);
    EXPECT_GT(m.rtt_s, 0.01);
    EXPECT_LT(m.rtt_s, 1.0);
    EXPECT_GT(m.to_ratio, 1.0);
    EXPECT_LT(m.to_ratio, 8.0);
  }
  const double share_sum = result.paths[0].share + result.paths[1].share;
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
}

TEST(Session, IsDeterministicForFixedSeed) {
  const auto a = run_session(quick_session());
  const auto b = run_session(quick_session());
  EXPECT_EQ(a.packets_generated, b.packets_generated);
  EXPECT_EQ(a.trace.arrivals(), b.trace.arrivals());
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_DOUBLE_EQ(a.paths[0].loss_rate, b.paths[0].loss_rate);
  ASSERT_GT(a.trace.arrivals(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.trace.entries()[i].packet_number,
              b.trace.entries()[i].packet_number);
    EXPECT_EQ(a.trace.entries()[i].arrived, b.trace.entries()[i].arrived);
  }
}

TEST(Session, SeedChangesTheRun) {
  auto config = quick_session();
  const auto a = run_session(config);
  config.seed = 8;
  const auto b = run_session(config);
  EXPECT_NE(a.events_executed, b.events_executed);
}

TEST(Session, CorrelatedPathsShareOneBottleneck) {
  SessionConfig config;
  config.path_configs = {table1_config(4)};
  config.correlated = true;
  config.num_flows = 2;
  config.mu_pps = 40.0;
  config.duration_s = 120.0;
  config.warmup_s = 10.0;
  config.drain_s = 30.0;
  config.seed = 11;
  const auto result = run_session(config);
  ASSERT_EQ(result.paths.size(), 2u);
  // Two flows on the same bottleneck see statistically similar parameters
  // (the paper's Table-3 observation).
  EXPECT_NEAR(result.paths[0].rtt_s, result.paths[1].rtt_s,
              0.35 * result.paths[0].rtt_s);
}

TEST(Session, ValidatesConfiguration) {
  SessionConfig config;
  EXPECT_THROW(run_session(config), std::invalid_argument);  // no paths

  config.path_configs = {table1_config(1)};
  config.num_flows = 2;
  config.correlated = false;
  EXPECT_THROW(run_session(config), std::invalid_argument);  // count mismatch

  config.correlated = true;
  config.path_configs = {table1_config(1), table1_config(2)};
  EXPECT_THROW(run_session(config), std::invalid_argument);  // >1 shared path
}

TEST(Session, DmpBeatsStaticOnAsymmetricCongestion) {
  // Same network for both schemes; path 2 uses a busier configuration.
  SessionConfig config;
  config.path_configs = {table1_config(4), table1_config(3)};
  config.mu_pps = 60.0;
  config.duration_s = 200.0;
  config.warmup_s = 10.0;
  config.drain_s = 30.0;
  config.seed = 13;
  config.scheme = StreamScheme::kDmp;
  const auto dmp_result = run_session(config);
  config.scheme = StreamScheme::kStatic;
  const auto static_result = run_session(config);

  const double tau = 6.0;
  const double f_dmp = dmp_result.trace.late_fraction_playback_order(
      tau, dmp_result.packets_generated);
  const double f_static = static_result.trace.late_fraction_playback_order(
      tau, static_result.packets_generated);
  // DMP shifts load away from the congested path; static cannot.
  EXPECT_LE(f_dmp, f_static + 1e-9);
}

TEST(Session, ThreePathsWorkEndToEnd) {
  // The harness is not limited to the paper's K = 2: three independent
  // paths, exactly-once delivery, sane three-way split.
  SessionConfig config;
  config.path_configs = {table1_config(4), table1_config(4), table1_config(2)};
  config.num_flows = 3;
  config.mu_pps = 60.0;
  config.duration_s = 150.0;
  config.warmup_s = 10.0;
  config.seed = 321;
  const auto result = run_session(config);
  ASSERT_EQ(result.paths.size(), 3u);
  EXPECT_EQ(static_cast<std::int64_t>(result.trace.arrivals()),
            result.packets_generated);
  double total_share = 0.0;
  for (const auto& m : result.paths) {
    EXPECT_GT(m.share, 0.05);
    total_share += m.share;
  }
  EXPECT_NEAR(total_share, 1.0, 1e-9);
}

TEST(BackloggedProbe, MeasuresPlausibleParameters) {
  const auto probes = measure_backlogged_paths(table1_config(4), 1, 21, 200.0);
  ASSERT_EQ(probes.size(), 1u);
  const auto& m = probes[0];
  EXPECT_GT(m.loss_rate, 0.001);
  EXPECT_LT(m.loss_rate, 0.2);
  EXPECT_GT(m.rtt_s, 0.02);
  EXPECT_LT(m.rtt_s, 0.5);
  EXPECT_GT(m.to_ratio, 1.0);
  EXPECT_GT(m.throughput_pps, 10.0);
}

TEST(BackloggedProbe, AppLimitedStreamMeasuresHigherLoss) {
  // The documented drop-tail bias: the DMP video stream's bursts see a
  // higher drop probability than a backlogged flow on the same path.
  const auto probes = measure_backlogged_paths(table1_config(2), 1, 22, 300.0);
  SessionConfig config;
  config.path_configs = {table1_config(2), table1_config(2)};
  config.mu_pps = 50.0;
  config.duration_s = 300.0;
  config.seed = 22;
  const auto session = run_session(config);
  EXPECT_GT(session.paths[0].loss_rate, probes[0].loss_rate);
}

TEST(BackloggedProbe, TwoProbesShareCorrelatedPath) {
  const auto probes = measure_backlogged_paths(table1_config(4), 2, 23, 200.0);
  ASSERT_EQ(probes.size(), 2u);
  // Both flows compete on the same bottleneck: similar throughputs.
  const double ratio = probes[0].throughput_pps / probes[1].throughput_pps;
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 2.5);
}

TEST(BackloggedProbe, RejectsZeroFlows) {
  EXPECT_THROW(measure_backlogged_paths(table1_config(1), 0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace dmp
