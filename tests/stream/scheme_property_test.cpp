// Scheme-level property sweeps: conservation (every generated packet is
// delivered exactly once) must hold for every scheme, path asymmetry and
// seed; and the DMP split must track capacity ratios.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "net/topology.hpp"
#include "stream/dmp_server.hpp"
#include "stream/static_server.hpp"
#include "stream/stored_server.hpp"
#include "stream/trace.hpp"
#include "tcp/connection.hpp"

namespace dmp {
namespace {

enum class Scheme { kDmp, kStatic, kStored };

struct Rig {
  Rig(double bw1, double bw2, std::uint64_t jitter_seed) {
    path1 = std::make_unique<DumbbellPath>(
        sched, BottleneckConfig{bw1, SimTime::millis(15), 40});
    path2 = std::make_unique<DumbbellPath>(
        sched, BottleneckConfig{bw2, SimTime::millis(25), 40});
    TcpConfig tcp;
    tcp.delayed_ack = false;
    tcp.send_overhead_s = 0.0003;
    tcp.jitter_seed = jitter_seed;
    c1 = make_connection(sched, 1, *path1, tcp);
    c2 = make_connection(sched, 2, *path2, tcp);
    trace = std::make_unique<StreamTrace>(80.0);
    c1.sink->set_deliver_callback([this](std::int64_t tag, SimTime) {
      trace->record(tag, sched.now(), 0);
    });
    c2.sink->set_deliver_callback([this](std::int64_t tag, SimTime) {
      trace->record(tag, sched.now(), 1);
    });
  }

  Scheduler sched;
  std::unique_ptr<DumbbellPath> path1, path2;
  TcpConnection c1, c2;
  std::unique_ptr<StreamTrace> trace;
};

class SchemeSweep
    : public ::testing::TestWithParam<std::tuple<Scheme, double, int>> {};

TEST_P(SchemeSweep, ConservationExactlyOnce) {
  const auto [scheme, bw2, seed] = GetParam();
  Rig rig(2e6, bw2, static_cast<std::uint64_t>(seed));
  std::vector<RenoSender*> senders{rig.c1.sender.get(), rig.c2.sender.get()};

  std::int64_t total = 0;
  std::unique_ptr<DmpStreamingServer> dmp;
  std::unique_ptr<StaticStreamingServer> fixed;
  std::unique_ptr<StoredStreamingServer> stored;
  switch (scheme) {
    case Scheme::kDmp:
      dmp = std::make_unique<DmpStreamingServer>(
          rig.sched, 80.0, senders, SimTime::zero(), SimTime::seconds(60));
      break;
    case Scheme::kStatic:
      fixed = std::make_unique<StaticStreamingServer>(
          rig.sched, 80.0, senders, SimTime::zero(), SimTime::seconds(60));
      break;
    case Scheme::kStored:
      stored = std::make_unique<StoredStreamingServer>(rig.sched, 4800,
                                                       senders);
      break;
  }
  rig.sched.run_until(SimTime::seconds(400));

  if (dmp) total = dmp->packets_generated();
  if (fixed) total = fixed->packets_generated();
  if (stored) total = stored->packets_total();

  ASSERT_GT(total, 1000);
  ASSERT_EQ(static_cast<std::int64_t>(rig.trace->arrivals()), total)
      << "scheme lost or duplicated packets";
  std::vector<bool> seen(static_cast<std::size_t>(total), false);
  for (const auto& e : rig.trace->entries()) {
    ASSERT_GE(e.packet_number, 0);
    ASSERT_LT(e.packet_number, total);
    ASSERT_FALSE(seen[static_cast<std::size_t>(e.packet_number)]);
    seen[static_cast<std::size_t>(e.packet_number)] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SchemeSweep,
    ::testing::Combine(::testing::Values(Scheme::kDmp, Scheme::kStatic,
                                         Scheme::kStored),
                       ::testing::Values(2e6, 0.7e6),
                       ::testing::Values(1, 2)));

class DmpSplitSweep : public ::testing::TestWithParam<double> {};

TEST_P(DmpSplitSweep, SplitTracksCapacityRatio) {
  const double bw_ratio = GetParam();
  Rig rig(3e6, 3e6 / bw_ratio, 9);
  std::vector<RenoSender*> senders{rig.c1.sender.get(), rig.c2.sender.get()};
  // Saturating load so the split reflects achievable throughputs.
  DmpStreamingServer server(rig.sched, 400.0, senders, SimTime::zero(),
                            SimTime::seconds(120));
  rig.sched.run_until(SimTime::seconds(240));
  const auto split = rig.trace->path_split(2);
  const double observed = split[0] / split[1];
  EXPECT_GT(observed, bw_ratio * 0.55) << "bw_ratio " << bw_ratio;
  EXPECT_LT(observed, bw_ratio * 1.9) << "bw_ratio " << bw_ratio;
}

INSTANTIATE_TEST_SUITE_P(CapacityRatios, DmpSplitSweep,
                         ::testing::Values(1.0, 1.5, 2.0, 3.0));

}  // namespace
}  // namespace dmp
