#include "stream/client.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "stream/dmp_server.hpp"
#include "tcp/connection.hpp"

namespace dmp {
namespace {

TEST(StreamClient, CollectsDeliveriesFromAttachedSinks) {
  Scheduler sched;
  DumbbellPath p1(sched, BottleneckConfig{2e6, SimTime::millis(10), 50});
  DumbbellPath p2(sched, BottleneckConfig{2e6, SimTime::millis(10), 50});
  TcpConfig tcp;
  auto c1 = make_connection(sched, 1, p1, tcp);
  auto c2 = make_connection(sched, 2, p2, tcp);

  StreamClient client(50.0, 2);
  client.attach(0, *c1.sink);
  client.attach(1, *c2.sink);

  DmpStreamingServer server(sched, 50.0,
                            {c1.sender.get(), c2.sender.get()},
                            SimTime::zero(), SimTime::seconds(20));
  sched.run_until(SimTime::seconds(60));

  EXPECT_EQ(static_cast<std::int64_t>(client.trace().arrivals()),
            server.packets_generated());
  EXPECT_EQ(client.num_paths(), 2u);
  const auto split = client.trace().path_split(2);
  EXPECT_NEAR(split[0] + split[1], 1.0, 1e-12);
}

TEST(StreamClient, RejectsOutOfRangePathIndex) {
  Scheduler sched;
  DumbbellPath p1(sched, BottleneckConfig{2e6, SimTime::millis(10), 50});
  auto c1 = make_connection(sched, 1, p1, TcpConfig{});
  StreamClient client(50.0, 1);
  EXPECT_THROW(client.attach(1, *c1.sink), std::out_of_range);
}

TEST(StreamClient, IgnoresNonStreamTags) {
  Scheduler sched;
  DumbbellPath p1(sched, BottleneckConfig{2e6, SimTime::millis(10), 50});
  auto c1 = make_connection(sched, 1, p1, TcpConfig{});
  StreamClient client(50.0, 1);
  client.attach(0, *c1.sink);
  // Background-style traffic carries tag -1: the client must not record it.
  for (int i = 0; i < 10; ++i) c1.sender->enqueue(-1);
  sched.run_until(SimTime::seconds(5));
  EXPECT_EQ(client.trace().arrivals(), 0u);
}

}  // namespace
}  // namespace dmp
