// Stored-video DMP streaming (the paper's Section-3 extension): prefetching
// removes the live-source constraint, so at equal sigma_a/mu the stored
// stream is never worse than the live one.
#include <gtest/gtest.h>

#include "model/composed_chain.hpp"
#include "stream/session.hpp"
#include "stream/stored_server.hpp"
#include "tcp/connection.hpp"

namespace dmp {
namespace {

TEST(StoredStreaming, DispatchesTheWholeVideo) {
  Scheduler sched;
  DumbbellPath path(sched, BottleneckConfig{2e6, SimTime::millis(20), 50});
  auto conn = make_connection(sched, 1, path, default_video_tcp());
  std::int64_t delivered = 0;
  conn.sink->set_deliver_callback([&](std::int64_t, SimTime) { ++delivered; });
  StoredStreamingServer server(sched, 5000, {conn.sender.get()});
  sched.run_until(SimTime::seconds(300));
  EXPECT_TRUE(server.finished());
  EXPECT_EQ(delivered, 5000);
}

TEST(StoredStreaming, PrefetchesAheadOfRealTime) {
  // A stored video drains as fast as TCP allows: 2 Mbps of capacity moves
  // a 0.6 Mbps-equivalent video nearly 3x faster than real time.
  Scheduler sched;
  DumbbellPath path(sched, BottleneckConfig{2e6, SimTime::millis(20), 50});
  auto conn = make_connection(sched, 1, path, default_video_tcp());
  std::int64_t delivered = 0;
  conn.sink->set_deliver_callback([&](std::int64_t, SimTime) { ++delivered; });
  // 120 "seconds" of 50-pkt/s video = 6000 packets.
  StoredStreamingServer server(sched, 6000, {conn.sender.get()});
  sched.run_until(SimTime::seconds(60));
  EXPECT_GT(delivered, 6000 / 2);  // well ahead of the 50 pkt/s clock
}

TEST(StoredStreaming, SessionSchemeBeatsLiveAtEqualTau) {
  SessionConfig config;
  config.path_configs = {table1_config(2), table1_config(2)};
  config.mu_pps = 50.0;
  config.duration_s = 300.0;
  config.seed = 77;
  config.scheme = StreamScheme::kDmp;
  const auto live = run_session(config);
  config.scheme = StreamScheme::kStored;
  const auto stored = run_session(config);

  EXPECT_EQ(live.packets_generated, stored.packets_generated);
  EXPECT_EQ(static_cast<std::int64_t>(stored.trace.arrivals()),
            stored.packets_generated);
  for (double tau : {2.0, 4.0, 6.0}) {
    const double f_live =
        live.trace.late_fraction_playback_order(tau, live.packets_generated);
    const double f_stored = stored.trace.late_fraction_playback_order(
        tau, stored.packets_generated);
    EXPECT_LE(f_stored, f_live + 1e-9) << "tau " << tau;
  }
}

TEST(StoredStreaming, RejectsInvalidSetup) {
  Scheduler sched;
  EXPECT_THROW(StoredStreamingServer(sched, 100, {}), std::invalid_argument);
  DumbbellPath path(sched, BottleneckConfig{2e6, SimTime::millis(20), 50});
  auto conn = make_connection(sched, 1, path, default_video_tcp());
  EXPECT_THROW(StoredStreamingServer(sched, 0, {conn.sender.get()}),
               std::invalid_argument);
}

// --- model side ---

TcpChainParams flow(double p = 0.03) {
  TcpChainParams params;
  params.loss_rate = p;
  params.rtt_s = 0.2;
  params.to_ratio = 2.0;
  params.wmax = 12;
  return params;
}

TEST(StoredVideoModel, ComfortableRatioPlaysCleanly) {
  ComposedParams params;
  params.flows = {flow(0.01), flow(0.01)};
  const double sigma =
      2.0 * TcpFlowChain(params.flows[0]).achievable_throughput_pps();
  params.mu_pps = sigma / 2.0;  // sigma_a/mu = 2
  params.tau_s = 5.0;
  const auto result =
      stored_video_late_fraction(params, 20'000, 20, 1);
  EXPECT_LT(result.late_fraction, 1e-3);
}

TEST(StoredVideoModel, OverloadedVideoIsMostlyLate) {
  ComposedParams params;
  params.flows = {flow(0.05)};
  const double sigma =
      TcpFlowChain(params.flows[0]).achievable_throughput_pps();
  params.mu_pps = 3.0 * sigma;
  params.tau_s = 2.0;
  const auto result = stored_video_late_fraction(params, 10'000, 10, 2);
  EXPECT_GT(result.late_fraction, 0.3);
}

TEST(StoredVideoModel, StoredNeverWorseThanLiveModel) {
  // Same paths, same mu, same tau: removing the Nmax cap can only help.
  ComposedParams params;
  params.flows = {flow(0.04), flow(0.04)};
  const double sigma =
      2.0 * TcpFlowChain(params.flows[0]).achievable_throughput_pps();
  params.mu_pps = sigma / 1.3;
  params.tau_s = 4.0;

  DmpModelMonteCarlo live(params, 3);
  const double f_live = live.run(400'000, 40'000).late_fraction;
  const auto stored = stored_video_late_fraction(params, 100'000, 16, 3);
  EXPECT_LE(stored.late_fraction, f_live * 1.2 + 1e-4);
}

TEST(StoredVideoModel, LongerTauHelps) {
  ComposedParams params;
  params.flows = {flow(0.05), flow(0.05)};
  const double sigma =
      2.0 * TcpFlowChain(params.flows[0]).achievable_throughput_pps();
  params.mu_pps = sigma / 1.2;
  params.tau_s = 1.0;
  const auto short_tau = stored_video_late_fraction(params, 50'000, 12, 4);
  params.tau_s = 10.0;
  const auto long_tau = stored_video_late_fraction(params, 50'000, 12, 4);
  EXPECT_LE(long_tau.late_fraction, short_tau.late_fraction + 1e-4);
}

TEST(StoredVideoModel, ValidatesInput) {
  ComposedParams params;
  params.flows = {flow()};
  params.mu_pps = 10.0;
  EXPECT_THROW(stored_video_late_fraction(params, 0, 5, 1),
               std::invalid_argument);
  EXPECT_THROW(stored_video_late_fraction(params, 100, 0, 1),
               std::invalid_argument);
  params.flows.clear();
  EXPECT_THROW(stored_video_late_fraction(params, 100, 5, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace dmp
