// DMP-streaming scheme behaviour on controlled two-path networks.
#include <gtest/gtest.h>

#include <memory>

#include "net/topology.hpp"
#include "stream/dmp_server.hpp"
#include "stream/static_server.hpp"
#include "stream/trace.hpp"
#include "tcp/connection.hpp"

namespace dmp {
namespace {

struct TwoPathRig {
  TwoPathRig(double bw1_bps, double bw2_bps, double mu_pps,
             double duration_s = 100.0) {
    path1 = std::make_unique<DumbbellPath>(
        sched, BottleneckConfig{bw1_bps, SimTime::millis(20), 50});
    path2 = std::make_unique<DumbbellPath>(
        sched, BottleneckConfig{bw2_bps, SimTime::millis(20), 50});
    TcpConfig tcp;
    tcp.send_buffer_packets = 32;
    c1 = make_connection(sched, 1, *path1, tcp);
    c2 = make_connection(sched, 2, *path2, tcp);
    trace = std::make_unique<StreamTrace>(mu_pps);
    c1.sink->set_deliver_callback([this](std::int64_t tag, SimTime) {
      if (tag >= 0) trace->record(tag, sched.now(), 0);
    });
    c2.sink->set_deliver_callback([this](std::int64_t tag, SimTime) {
      if (tag >= 0) trace->record(tag, sched.now(), 1);
    });
    server = std::make_unique<DmpStreamingServer>(
        sched, mu_pps,
        std::vector<RenoSender*>{c1.sender.get(), c2.sender.get()},
        SimTime::zero(), SimTime::seconds(duration_s));
  }

  Scheduler sched;
  std::unique_ptr<DumbbellPath> path1, path2;
  TcpConnection c1, c2;
  std::unique_ptr<StreamTrace> trace;
  std::unique_ptr<DmpStreamingServer> server;
};

TEST(DmpStreaming, DeliversEveryPacketExactlyOnce) {
  TwoPathRig rig(2e6, 2e6, 100.0, 60.0);
  rig.sched.run_until(SimTime::seconds(120));
  const auto generated = rig.server->packets_generated();
  ASSERT_GT(generated, 5000);
  EXPECT_EQ(static_cast<std::int64_t>(rig.trace->arrivals()), generated);

  // Exactly-once: packet numbers 0..generated-1 each appear once.
  std::vector<bool> seen(static_cast<std::size_t>(generated), false);
  for (const auto& e : rig.trace->entries()) {
    ASSERT_GE(e.packet_number, 0);
    ASSERT_LT(e.packet_number, generated);
    ASSERT_FALSE(seen[static_cast<std::size_t>(e.packet_number)])
        << "duplicate " << e.packet_number;
    seen[static_cast<std::size_t>(e.packet_number)] = true;
  }
}

TEST(DmpStreaming, SplitsEvenlyOnHomogeneousPaths) {
  TwoPathRig rig(2e6, 2e6, 150.0, 100.0);
  rig.sched.run_until(SimTime::seconds(200));
  const auto split = rig.trace->path_split(2);
  EXPECT_NEAR(split[0], 0.5, 0.06);
  EXPECT_NEAR(split[1], 0.5, 0.06);
}

TEST(DmpStreaming, ShareFollowsPathBandwidth) {
  // Path 1 has 3x the bandwidth of path 2 and the stream saturates both:
  // DMP must carry roughly 3x the packets on path 1 with no explicit
  // bandwidth probing (the paper's implicit-inference property).
  TwoPathRig rig(3e6, 1e6, 300.0, 100.0);
  rig.sched.run_until(SimTime::seconds(200));
  const auto split = rig.trace->path_split(2);
  ASSERT_GT(rig.trace->arrivals(), 1000u);
  const double ratio = split[0] / split[1];
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.5);
}

TEST(DmpStreaming, UndersubscribedStreamHasNoLatePackets) {
  // Aggregate capacity ~4 Mbps vs. video 0.6 Mbps: everything is punctual
  // with a modest startup delay.
  TwoPathRig rig(2e6, 2e6, 50.0, 60.0);
  rig.sched.run_until(SimTime::seconds(120));
  const auto generated = rig.server->packets_generated();
  EXPECT_DOUBLE_EQ(rig.trace->late_fraction_playback_order(2.0, generated), 0.0);
}

TEST(DmpStreaming, OversubscribedStreamIsMostlyLate) {
  // Video rate 3.6 Mbps over aggregate ~2 Mbps achievable: the buffer can
  // never catch up and late packets dominate.
  TwoPathRig rig(1e6, 1e6, 300.0, 60.0);
  rig.sched.run_until(SimTime::seconds(200));
  const auto generated = rig.server->packets_generated();
  EXPECT_GT(rig.trace->late_fraction_playback_order(4.0, generated), 0.4);
}

TEST(DmpStreaming, ServerQueueStaysBoundedWhenPathsKeepUp) {
  TwoPathRig rig(2e6, 2e6, 50.0, 60.0);
  rig.sched.run_until(SimTime::seconds(120));
  // With TCP draining faster than generation, the shared queue cannot
  // accumulate beyond a few packets at a time.
  EXPECT_LT(rig.server->max_queue_length(), 16u);
}

TEST(DmpStreaming, SinglePathDegeneratesGracefully) {
  // K = 1 is single-path TCP streaming; the scheme must work unchanged.
  Scheduler sched;
  DumbbellPath path(sched, BottleneckConfig{2e6, SimTime::millis(20), 50});
  TcpConfig tcp;
  auto conn = make_connection(sched, 1, path, tcp);
  StreamTrace trace(50.0);
  conn.sink->set_deliver_callback([&](std::int64_t tag, SimTime) {
    if (tag >= 0) trace.record(tag, sched.now(), 0);
  });
  DmpStreamingServer server(sched, 50.0, {conn.sender.get()}, SimTime::zero(),
                            SimTime::seconds(30));
  sched.run_until(SimTime::seconds(60));
  EXPECT_EQ(static_cast<std::int64_t>(trace.arrivals()),
            server.packets_generated());
}

TEST(StaticStreaming, RoundRobinSplitIsExactlyEven) {
  Scheduler sched;
  DumbbellPath p1(sched, BottleneckConfig{2e6, SimTime::millis(20), 50});
  DumbbellPath p2(sched, BottleneckConfig{2e6, SimTime::millis(20), 50});
  TcpConfig tcp;
  auto c1 = make_connection(sched, 1, p1, tcp);
  auto c2 = make_connection(sched, 2, p2, tcp);
  StreamTrace trace(100.0);
  c1.sink->set_deliver_callback([&](std::int64_t tag, SimTime) {
    trace.record(tag, sched.now(), 0);
  });
  c2.sink->set_deliver_callback([&](std::int64_t tag, SimTime) {
    trace.record(tag, sched.now(), 1);
  });
  StaticStreamingServer server(sched, 100.0,
                               {c1.sender.get(), c2.sender.get()},
                               SimTime::zero(), SimTime::seconds(50));
  sched.run_until(SimTime::seconds(100));
  const auto split = trace.path_split(2);
  EXPECT_NEAR(split[0], 0.5, 0.01);
  EXPECT_NEAR(split[1], 0.5, 0.01);
  // Odd/even assignment: consecutive packets alternate paths.
  std::int64_t odd_on_path1 = 0, odd_total = 0;
  for (const auto& e : trace.entries()) {
    if (e.packet_number % 2 == 1) {
      ++odd_total;
      odd_on_path1 += (e.path == 1);
    }
  }
  EXPECT_EQ(odd_on_path1, odd_total);
}

TEST(StaticStreaming, WeightedSplitFollowsWeights) {
  Scheduler sched;
  DumbbellPath p1(sched, BottleneckConfig{4e6, SimTime::millis(20), 50});
  DumbbellPath p2(sched, BottleneckConfig{4e6, SimTime::millis(20), 50});
  TcpConfig tcp;
  auto c1 = make_connection(sched, 1, p1, tcp);
  auto c2 = make_connection(sched, 2, p2, tcp);
  StreamTrace trace(100.0);
  c1.sink->set_deliver_callback([&](std::int64_t tag, SimTime) {
    trace.record(tag, sched.now(), 0);
  });
  c2.sink->set_deliver_callback([&](std::int64_t tag, SimTime) {
    trace.record(tag, sched.now(), 1);
  });
  StaticStreamingServer server(sched, 100.0,
                               {c1.sender.get(), c2.sender.get()},
                               SimTime::zero(), SimTime::seconds(60),
                               {3.0, 1.0});
  sched.run_until(SimTime::seconds(120));
  const auto split = trace.path_split(2);
  EXPECT_NEAR(split[0], 0.75, 0.01);
  EXPECT_NEAR(split[1], 0.25, 0.01);
}

TEST(StaticStreaming, RejectsBadWeights) {
  Scheduler sched;
  DumbbellPath p1(sched, BottleneckConfig{4e6, SimTime::millis(20), 50});
  TcpConfig tcp;
  auto c1 = make_connection(sched, 1, p1, tcp);
  auto c2 = make_connection(sched, 2, p1, tcp);
  EXPECT_THROW(StaticStreamingServer(sched, 50.0,
                                     {c1.sender.get(), c2.sender.get()},
                                     SimTime::zero(), SimTime::seconds(10),
                                     {1.0}),
               std::invalid_argument);
  EXPECT_THROW(StaticStreamingServer(sched, 50.0,
                                     {c1.sender.get(), c2.sender.get()},
                                     SimTime::zero(), SimTime::seconds(10),
                                     {0.0, 0.0}),
               std::invalid_argument);
}

TEST(StaticStreaming, CongestedPathStrandsItsShare) {
  // Path 2 is far too slow for half the stream.  Static streaming cannot
  // reroute, so lateness concentrates on path-2 packets, while DMP on the
  // same paths stays comfortable.
  Scheduler sched;
  DumbbellPath p1(sched, BottleneckConfig{4e6, SimTime::millis(20), 50});
  DumbbellPath p2(sched, BottleneckConfig{0.3e6, SimTime::millis(20), 50});
  TcpConfig tcp;
  auto c1 = make_connection(sched, 1, p1, tcp);
  auto c2 = make_connection(sched, 2, p2, tcp);
  StreamTrace trace(100.0);  // 1.2 Mbps video
  c1.sink->set_deliver_callback([&](std::int64_t tag, SimTime) {
    trace.record(tag, sched.now(), 0);
  });
  c2.sink->set_deliver_callback([&](std::int64_t tag, SimTime) {
    trace.record(tag, sched.now(), 1);
  });
  StaticStreamingServer server(sched, 100.0,
                               {c1.sender.get(), c2.sender.get()},
                               SimTime::zero(), SimTime::seconds(60));
  sched.run_until(SimTime::seconds(120));
  const auto generated = server.packets_generated();
  // Half the stream needs 0.6 Mbps but path 2 offers ~0.3 Mbps.
  EXPECT_GT(trace.late_fraction_playback_order(5.0, generated), 0.2);
}

}  // namespace
}  // namespace dmp
