// Differential suite for the PathScheduler refactor.
//
// The contract that made the refactor safe: with the default "pull" spec
// the DmpStreamingServer must reproduce the pre-interface implementation
// decision-for-decision.  The first test pins the same golden summary
// string as tests/fault/golden_figures_test.cpp with the scheduler set
// EXPLICITLY, so a drift in the compat path shows up as a byte diff even
// if the default ever changes.  The rest cross-checks the alternative
// strategies: they all deliver the stream, and the experiment runner's
// aggregate report stays byte-identical at any worker-thread count.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "exp/plan.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "stream/session.hpp"

namespace dmp {
namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

SessionConfig golden_config() {
  SessionConfig config;
  config.path_configs = {table1_config(2), table1_config(2)};
  config.num_flows = 2;
  config.mu_pps = 50.0;
  config.duration_s = 30.0;
  config.warmup_s = 5.0;
  config.drain_s = 15.0;
  config.seed = exp::replication_seed(1, 0, 0);
  return config;
}

std::string summarize(const SessionResult& result) {
  return "gen=" + std::to_string(result.packets_generated) +
         " delivered=" + std::to_string(result.trace.entries().size()) +
         " f4=" + num(result.trace.late_fraction_playback_order(
                      4.0, result.packets_generated)) +
         " p1=" + num(result.paths[0].loss_rate) +
         " p2=" + num(result.paths[1].loss_rate) +
         " share1=" + num(result.paths[0].share);
}

// The golden from tests/fault/golden_figures_test.cpp (recorded before the
// PathScheduler interface existed).  `pull` must reproduce it byte for
// byte; any divergence means the compat scheduler's decision sequence
// drifted from the paper's scheme.
constexpr const char* kGoldenSummary =
    "gen=1500 delivered=1500 f4=0 p1=0.02732919254658385 "
    "p2=0.038770053475935831 share1=0.52200000000000002";

TEST(SchedulerDifferential, PullSpecIsByteIdenticalToPreRefactorGolden) {
  auto config = golden_config();
  config.scheduler = "pull";  // explicit, not just the default
  const auto result = run_session(config);
  ASSERT_EQ(result.paths.size(), 2u);
  EXPECT_EQ(summarize(result), kGoldenSummary);
  // The compat policy adds no redundancy machinery to the run.
  EXPECT_EQ(result.duplicates_sent, 0u);
  EXPECT_EQ(result.parity_sent, 0u);
  EXPECT_EQ(result.duplicates_suppressed, 0u);
}

TEST(SchedulerDifferential, DefaultSpecIsPull) {
  const auto result = run_session(golden_config());
  EXPECT_EQ(summarize(result), kGoldenSummary);
}

TEST(SchedulerDifferential, EveryStrategyDeliversTheStream) {
  for (const char* spec : {"weighted", "weighted:0.6,0.4", "best_path",
                           "round_robin", "redundant", "parity-4"}) {
    auto config = golden_config();
    config.scheduler = spec;
    const auto result = run_session(config);
    EXPECT_EQ(result.packets_generated, 1500) << spec;
    // Every strategy delivers (almost) the whole stream; exactly-once
    // means never more entries than generated packets.
    EXPECT_LE(static_cast<std::int64_t>(result.trace.entries().size()),
              result.packets_generated)
        << spec;
    EXPECT_GE(static_cast<double>(result.trace.entries().size()),
              0.98 * static_cast<double>(result.packets_generated))
        << spec;
  }
}

TEST(SchedulerDifferential, AggregateReportThreadInvariantPerScheduler) {
  for (const char* spec : {"pull", "redundant"}) {
    exp::ExperimentPlan plan;
    plan.name = std::string("sched_diff_") + spec;
    plan.seed = 99;
    plan.replications = 2;
    auto config = golden_config();
    config.duration_s = 20.0;
    config.drain_s = 10.0;
    config.scheduler = spec;
    plan.settings.push_back({spec, config});
    plan.metrics = [](const SessionResult& result, std::size_t,
                      std::size_t) {
      std::vector<std::pair<std::string, double>> m;
      m.emplace_back("delivered",
                     static_cast<double>(result.trace.entries().size()));
      m.emplace_back("duplicates",
                     static_cast<double>(result.duplicates_sent));
      return m;
    };
    const auto serial = exp::ExperimentRunner(1).run(plan);
    const auto parallel = exp::ExperimentRunner(8).run(plan);
    EXPECT_EQ(serial.aggregate_json(), parallel.aggregate_json()) << spec;
  }
}

}  // namespace
}  // namespace dmp
