#include "stream/trace.hpp"

#include <gtest/gtest.h>

namespace dmp {
namespace {

TEST(StreamTrace, GenerationTimesFollowCbr) {
  StreamTrace t(50.0);
  EXPECT_DOUBLE_EQ(t.generation_time(0).to_seconds(), 0.0);
  EXPECT_NEAR(t.generation_time(50).to_seconds(), 1.0, 1e-9);
  EXPECT_NEAR(t.generation_time(125).to_seconds(), 2.5, 1e-9);
}

TEST(StreamTrace, NoLatePacketsWhenAllOnTime) {
  StreamTrace t(10.0);  // playback of packet n at n/10 + tau
  for (int n = 0; n < 100; ++n) {
    t.record(n, SimTime::seconds(n / 10.0 + 0.5), 0);  // 0.5 s behind source
  }
  EXPECT_DOUBLE_EQ(t.late_fraction_playback_order(1.0, 100), 0.0);
  EXPECT_DOUBLE_EQ(t.late_fraction_arrival_order(1.0, 100), 0.0);
}

TEST(StreamTrace, AllLateWithZeroStartupDelay) {
  StreamTrace t(10.0);
  for (int n = 0; n < 100; ++n) {
    t.record(n, SimTime::seconds(n / 10.0 + 0.5), 0);
  }
  EXPECT_DOUBLE_EQ(t.late_fraction_playback_order(0.1, 100), 1.0);
}

TEST(StreamTrace, CountsExactlyTheLateOnes) {
  StreamTrace t(10.0);
  // Packets 0..9 arrive with delay 0.2 s; packets 10..19 with delay 2 s.
  for (int n = 0; n < 10; ++n) t.record(n, SimTime::seconds(n / 10.0 + 0.2), 0);
  for (int n = 10; n < 20; ++n) t.record(n, SimTime::seconds(n / 10.0 + 2.0), 0);
  // tau = 1 s: first half on time, second half late.
  EXPECT_DOUBLE_EQ(t.late_fraction_playback_order(1.0, 20), 0.5);
  // tau = 3 s: everything on time.
  EXPECT_DOUBLE_EQ(t.late_fraction_playback_order(3.0, 20), 0.0);
}

TEST(StreamTrace, MissingPacketsCountAsLate) {
  StreamTrace t(10.0);
  for (int n = 0; n < 50; ++n) t.record(n, SimTime::seconds(n / 10.0), 0);
  // 50 more packets were generated but never arrived.
  EXPECT_DOUBLE_EQ(t.late_fraction_playback_order(5.0, 100), 0.5);
  EXPECT_DOUBLE_EQ(t.late_fraction_arrival_order(5.0, 100), 0.5);
}

TEST(StreamTrace, ArrivalOrderMetricIgnoresPacketIdentity) {
  StreamTrace t(10.0);
  // Packets arrive swapped in pairs but each arrival is punctual for its
  // rank: arrival-order playback sees no lateness.
  for (int n = 0; n < 100; n += 2) {
    t.record(n + 1, SimTime::seconds(n / 10.0 + 0.01), 0);
    t.record(n, SimTime::seconds((n + 1) / 10.0 + 0.01), 1);
  }
  EXPECT_DOUBLE_EQ(t.late_fraction_arrival_order(0.5, 100), 0.0);
  EXPECT_GT(t.out_of_order_fraction(), 0.0);
}

TEST(StreamTrace, PathSplitSumsToOne) {
  StreamTrace t(10.0);
  for (int n = 0; n < 30; ++n) t.record(n, SimTime::seconds(n / 10.0), 0);
  for (int n = 30; n < 40; ++n) t.record(n, SimTime::seconds(n / 10.0), 1);
  const auto split = t.path_split(2);
  EXPECT_DOUBLE_EQ(split[0], 0.75);
  EXPECT_DOUBLE_EQ(split[1], 0.25);
}

TEST(StreamTrace, LateFractionMonotoneInTau) {
  StreamTrace t(25.0);
  // Arrival jitter grows with n: later tau should never increase lateness.
  for (int n = 0; n < 1000; ++n) {
    const double jitter = (n % 7) * 0.8;
    t.record(n, SimTime::seconds(n / 25.0 + jitter), 0);
  }
  double prev = 1.1;
  for (double tau = 0.0; tau <= 8.0; tau += 0.5) {
    const double f = t.late_fraction_playback_order(tau, 1000);
    EXPECT_LE(f, prev);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(prev, 0.0);
}

TEST(StreamTrace, ZeroArrivalsMakeEveryPacketLate) {
  StreamTrace t(10.0);
  // Nothing arrived: every generated packet missed its deadline no matter
  // how generous the startup delay.
  EXPECT_DOUBLE_EQ(t.late_fraction_playback_order(100.0, 50), 1.0);
  EXPECT_DOUBLE_EQ(t.late_fraction_arrival_order(100.0, 50), 1.0);
  EXPECT_DOUBLE_EQ(t.out_of_order_fraction(), 0.0);
  const auto split = t.path_split(2);
  EXPECT_DOUBLE_EQ(split[0], 0.0);
  EXPECT_DOUBLE_EQ(split[1], 0.0);
}

TEST(StreamTrace, NonPositiveTotalYieldsZeroLateFraction) {
  StreamTrace t(10.0);
  t.record(0, SimTime::seconds(100.0), 0);
  EXPECT_DOUBLE_EQ(t.late_fraction_playback_order(0.5, 0), 0.0);
  EXPECT_DOUBLE_EQ(t.late_fraction_playback_order(0.5, -3), 0.0);
  EXPECT_DOUBLE_EQ(t.late_fraction_arrival_order(0.5, 0), 0.0);
}

TEST(StreamTrace, DuplicateArrivalsEachCountAgainstTheirDeadline) {
  StreamTrace t(10.0);
  // Packet 0 is recorded twice (e.g. a spurious retransmission reached the
  // client): each copy is evaluated against packet 0's deadline, and the
  // duplicate also counts toward `seen` — pinning the current tally.
  t.record(0, SimTime::seconds(0.05), 0);  // on time for tau = 1
  t.record(0, SimTime::seconds(5.0), 1);   // late for tau = 1
  EXPECT_DOUBLE_EQ(t.late_fraction_playback_order(1.0, 2), 0.5);
  // tau = 10 puts both copies on time; nothing is charged as missing.
  EXPECT_DOUBLE_EQ(t.late_fraction_playback_order(10.0, 2), 0.0);
}

TEST(StreamTrace, RejectsNonPositiveMu) {
  EXPECT_THROW(StreamTrace(0.0), std::invalid_argument);
  EXPECT_THROW(StreamTrace(-5.0), std::invalid_argument);
}

}  // namespace
}  // namespace dmp
