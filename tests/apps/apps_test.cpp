#include <gtest/gtest.h>

#include "apps/background.hpp"
#include "apps/ftp_source.hpp"
#include "apps/http_source.hpp"
#include "net/topology.hpp"
#include "tcp/connection.hpp"

namespace dmp {
namespace {

TEST(Table1, ConfigurationsMatchThePaper) {
  const auto c1 = table1_config(1);
  EXPECT_EQ(c1.ftp_flows, 9u);
  EXPECT_EQ(c1.http_flows, 40u);
  EXPECT_EQ(c1.prop_delay, SimTime::millis(40));
  EXPECT_DOUBLE_EQ(c1.bandwidth_bps, 3.7e6);
  EXPECT_EQ(c1.buffer_packets, 50u);

  const auto c2 = table1_config(2);
  EXPECT_EQ(c2.prop_delay, SimTime::millis(1));
  EXPECT_DOUBLE_EQ(c2.bandwidth_bps, 3.7e6);

  const auto c3 = table1_config(3);
  EXPECT_EQ(c3.ftp_flows, 19u);
  EXPECT_DOUBLE_EQ(c3.bandwidth_bps, 5.0e6);

  const auto c4 = table1_config(4);
  EXPECT_EQ(c4.ftp_flows, 5u);
  EXPECT_EQ(c4.http_flows, 20u);
  EXPECT_EQ(c4.buffer_packets, 30u);

  EXPECT_THROW(table1_config(0), std::invalid_argument);
  EXPECT_THROW(table1_config(5), std::invalid_argument);
}

TEST(FtpSource, KeepsSenderBufferFull) {
  Scheduler sched;
  DumbbellPath path(sched, BottleneckConfig{2e6, SimTime::millis(10), 50});
  auto conn = make_connection(sched, 1, path, TcpConfig{});
  conn.sink->set_deliver_callback([](std::int64_t, SimTime) {});
  FtpSource ftp(*conn.sender);
  EXPECT_EQ(conn.sender->space(), 0u);  // filled immediately
  sched.run_until(SimTime::seconds(20));
  EXPECT_EQ(conn.sender->space(), 0u);  // refilled after every ack
  EXPECT_GT(ftp.packets_offered(), 100u);
}

TEST(HttpSource, AlternatesTransfersAndThinkTimes) {
  Scheduler sched;
  DumbbellPath path(sched, BottleneckConfig{10e6, SimTime::millis(5), 100});
  auto conn = make_connection(sched, 1, path, TcpConfig{});
  conn.sink->set_deliver_callback([](std::int64_t, SimTime) {});
  HttpSourceConfig config;
  config.mean_think_time_s = 0.5;
  config.start_jitter_s = 0.1;
  HttpSource http(sched, *conn.sender, config, Rng(1));
  sched.run_until(SimTime::seconds(120));
  // Over 2 minutes with sub-second think times, many objects complete.
  EXPECT_GT(http.objects_completed(), 20u);
  EXPECT_GT(http.packets_offered(), http.objects_completed());
}

TEST(HttpSource, ObjectSizesAreHeavyTailedButBounded) {
  Scheduler sched;
  DumbbellPath path(sched, BottleneckConfig{100e6, SimTime::millis(1), 1000});
  auto conn = make_connection(sched, 1, path, TcpConfig{});
  conn.sink->set_deliver_callback([](std::int64_t, SimTime) {});
  HttpSourceConfig config;
  config.mean_think_time_s = 0.05;
  config.start_jitter_s = 0.01;
  config.max_object_packets = 50.0;
  HttpSource http(sched, *conn.sender, config, Rng(2));
  sched.run_until(SimTime::seconds(60));
  ASSERT_GT(http.objects_completed(), 50u);
  const double mean_size = static_cast<double>(http.packets_offered()) /
                           static_cast<double>(http.objects_completed());
  EXPECT_GT(mean_size, config.min_object_packets);
  EXPECT_LT(mean_size, config.max_object_packets);
}

TEST(BackgroundTraffic, LoadsTheBottleneck) {
  Scheduler sched;
  const auto config = table1_config(4);  // smallest population: fastest test
  DumbbellPath path(sched, config.bottleneck());
  BackgroundTraffic bg(sched, path, config, 1000, Rng(3));
  EXPECT_EQ(bg.flow_count(), config.ftp_flows + config.http_flows);
  sched.run_until(SimTime::seconds(30));
  // FTP flows alone must drive the bottleneck to sustained losses.
  EXPECT_GT(path.bottleneck().total_drops(), 0u);
  EXPECT_GT(path.bottleneck().utilization(SimTime::seconds(30)), 0.7);
}

}  // namespace
}  // namespace dmp
