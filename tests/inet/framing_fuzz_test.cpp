// Property/fuzz coverage for the wire format: random truncations,
// corrupted prefixes, and adversarial read() chunkings must never crash
// the parser, over-read a buffer (the vectors are exactly sized, so ASan
// would flag any overrun), or desynchronize frame boundaries.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "inet/framing.hpp"
#include "util/rng.hpp"

namespace dmp::inet {
namespace {

std::vector<unsigned char> wire_of(std::uint64_t frames,
                                   std::size_t frame_bytes) {
  std::vector<unsigned char> wire;
  wire.reserve(frames * frame_bytes);
  for (std::uint64_t n = 0; n < frames; ++n) {
    std::vector<unsigned char> frame(frame_bytes, 0x5A);
    encode_frame_header(Frame{n, n * 13 + 7}, frame.data());
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  return wire;
}

TEST(HelloFuzz, EncodeDecodeRoundTrips) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    Hello hello;
    hello.path_id = rng.next_u64();
    hello.last_seq = rng.next_u64();
    std::vector<unsigned char> buffer(kHelloBytes);
    encode_hello(hello, buffer.data());
    Hello decoded;
    ASSERT_TRUE(decode_hello(buffer.data(), &decoded));
    EXPECT_EQ(decoded.path_id, hello.path_id);
    EXPECT_EQ(decoded.last_seq, hello.last_seq);
  }
}

TEST(HelloFuzz, CorruptedMagicIsRejectedAndOutputUntouched) {
  std::vector<unsigned char> buffer(kHelloBytes);
  encode_hello(Hello{3, 42}, buffer.data());
  for (std::size_t bit = 0; bit < 64; ++bit) {
    auto corrupt = buffer;
    corrupt[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
    Hello out;
    out.path_id = 777;
    out.last_seq = 888;
    EXPECT_FALSE(decode_hello(corrupt.data(), &out));
    EXPECT_EQ(out.path_id, 777u);
    EXPECT_EQ(out.last_seq, 888u);
  }
  // Bits outside the magic do not affect acceptance.
  auto tweaked = buffer;
  tweaked[8] ^= 0xFF;
  tweaked[23] ^= 0xFF;
  Hello out;
  EXPECT_TRUE(decode_hello(tweaked.data(), &out));
}

TEST(HelloFuzz, RandomPrefixesAlmostNeverDecode) {
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    std::vector<unsigned char> buffer(kHelloBytes);
    for (auto& b : buffer) {
      b = static_cast<unsigned char>(rng.uniform_int(256));
    }
    Hello out;
    EXPECT_FALSE(decode_hello(buffer.data(), &out));
  }
}

TEST(FramingFuzz, TruncatedStreamsNeverCrashAndKeepTheRemainder) {
  Rng rng(21);
  const std::size_t frame_bytes = 64;
  const auto wire = wire_of(40, frame_bytes);
  for (int i = 0; i < 300; ++i) {
    const std::size_t cut = rng.uniform_int(wire.size() + 1);
    // Exact-size copy: any read past `cut` is a heap-buffer-overflow.
    std::vector<unsigned char> truncated(wire.begin(),
                                         wire.begin() + static_cast<long>(cut));
    FrameParser parser(frame_bytes);
    std::vector<Frame> out;
    parser.feed(truncated.data(), truncated.size(),
                [&](const Frame& f) { out.push_back(f); });
    EXPECT_EQ(out.size(), cut / frame_bytes);
    EXPECT_EQ(parser.pending_bytes(), cut % frame_bytes);
    for (std::size_t n = 0; n < out.size(); ++n) {
      EXPECT_EQ(out[n].packet_number, n);
    }
  }
}

TEST(FramingFuzz, ByteDribbleRoundTripsEveryFrame) {
  const std::size_t frame_bytes = 48;
  const std::uint64_t frames = 200;
  const auto wire = wire_of(frames, frame_bytes);
  FrameParser parser(frame_bytes);
  std::vector<Frame> out;
  for (const unsigned char byte : wire) {
    // One byte per feed, from a one-byte buffer: the worst-case read()
    // pattern, and an over-read trap at every step.
    const std::vector<unsigned char> chunk{byte};
    parser.feed(chunk.data(), 1, [&](const Frame& f) { out.push_back(f); });
  }
  ASSERT_EQ(out.size(), frames);
  for (std::uint64_t n = 0; n < frames; ++n) {
    EXPECT_EQ(out[n].packet_number, n);
    EXPECT_EQ(out[n].generated_ns, n * 13 + 7);
  }
  EXPECT_EQ(parser.pending_bytes(), 0u);
}

TEST(FramingFuzz, RandomChunksOfRandomGarbageKeepInvariants) {
  Rng rng(33);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t frame_bytes = 16 + rng.uniform_int(100);
    FrameParser parser(frame_bytes);
    std::size_t fed = 0;
    std::size_t frames_out = 0;
    for (int step = 0; step < 100; ++step) {
      std::vector<unsigned char> chunk(1 + rng.uniform_int(2 * frame_bytes));
      for (auto& b : chunk) {
        b = static_cast<unsigned char>(rng.uniform_int(256));
      }
      parser.feed(chunk.data(), chunk.size(),
                  [&](const Frame&) { ++frames_out; });
      fed += chunk.size();
      // The parser never buffers a full frame and never loses bytes.
      EXPECT_LT(parser.pending_bytes(), frame_bytes);
      EXPECT_EQ(frames_out, fed / frame_bytes);
      EXPECT_EQ(parser.pending_bytes(), fed % frame_bytes);
    }
  }
}

TEST(FramingFuzz, CorruptedPayloadBytesDoNotDesyncFrameBoundaries) {
  Rng rng(55);
  const std::size_t frame_bytes = 96;
  auto wire = wire_of(100, frame_bytes);
  // Corrupt payload bytes only (offsets >= the 16-byte header): framing is
  // positional, so every packet number must still come out intact.
  for (int i = 0; i < 500; ++i) {
    const std::size_t frame = rng.uniform_int(100);
    const std::size_t offset =
        kFrameHeaderBytes + rng.uniform_int(frame_bytes - kFrameHeaderBytes);
    wire[frame * frame_bytes + offset] =
        static_cast<unsigned char>(rng.uniform_int(256));
  }
  FrameParser parser(frame_bytes);
  std::vector<Frame> out;
  std::size_t offset = 0;
  while (offset < wire.size()) {
    const std::size_t len =
        std::min<std::size_t>(1 + rng.uniform_int(301), wire.size() - offset);
    parser.feed(wire.data() + offset, len,
                [&](const Frame& f) { out.push_back(f); });
    offset += len;
  }
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t n = 0; n < out.size(); ++n) {
    EXPECT_EQ(out[n].packet_number, n);
  }
}

}  // namespace
}  // namespace dmp::inet
