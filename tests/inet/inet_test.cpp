// Real-socket DMP streaming over loopback: framing, end-to-end delivery,
// and the dynamic split under an artificially slow path.
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "inet/client.hpp"
#include "inet/framing.hpp"
#include "inet/server.hpp"

namespace dmp::inet {
namespace {

TEST(Framing, HeaderRoundTrips) {
  Frame in{0x0123456789ABCDEFull, 0xFEDCBA9876543210ull};
  unsigned char buffer[kFrameHeaderBytes] = {};
  encode_frame_header(in, buffer);
  FrameParser parser(kFrameHeaderBytes);
  std::vector<Frame> out;
  parser.feed(buffer, sizeof buffer,
              [&](const Frame& f) { out.push_back(f); });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].packet_number, in.packet_number);
  EXPECT_EQ(out[0].generated_ns, in.generated_ns);
}

TEST(Framing, ReassemblesAcrossArbitraryReadBoundaries) {
  const std::size_t frame_bytes = 64;
  std::vector<unsigned char> wire;
  for (std::uint64_t n = 0; n < 20; ++n) {
    std::vector<unsigned char> frame(frame_bytes, 0);
    encode_frame_header(Frame{n, n * 1000}, frame.data());
    wire.insert(wire.end(), frame.begin(), frame.end());
  }

  FrameParser parser(frame_bytes);
  std::vector<std::uint64_t> numbers;
  // Feed in awkward chunk sizes (1, 3, 7, 13, ... bytes).
  std::size_t offset = 0;
  std::size_t chunk = 1;
  while (offset < wire.size()) {
    const std::size_t len = std::min(chunk, wire.size() - offset);
    parser.feed(wire.data() + offset, len,
                [&](const Frame& f) { numbers.push_back(f.packet_number); });
    offset += len;
    chunk = (chunk * 2 + 1) % 17 + 1;
  }
  ASSERT_EQ(numbers.size(), 20u);
  for (std::uint64_t n = 0; n < 20; ++n) EXPECT_EQ(numbers[n], n);
  EXPECT_EQ(parser.pending_bytes(), 0u);
}

TEST(Framing, RejectsTinyFrames) {
  EXPECT_THROW(FrameParser(8), std::invalid_argument);
}

TEST(Framing, PartialHeaderStaysPendingUntilCompleted) {
  Frame in{42, 1234567};
  unsigned char buffer[kFrameHeaderBytes] = {};
  encode_frame_header(in, buffer);

  FrameParser parser(kFrameHeaderBytes);
  int frames = 0;
  parser.feed(buffer, kFrameHeaderBytes - 1, [&](const Frame&) { ++frames; });
  EXPECT_EQ(frames, 0);
  EXPECT_EQ(parser.pending_bytes(), kFrameHeaderBytes - 1);

  // The final byte completes the frame with the header intact.
  parser.feed(buffer + kFrameHeaderBytes - 1, 1, [&](const Frame& f) {
    ++frames;
    EXPECT_EQ(f.packet_number, in.packet_number);
    EXPECT_EQ(f.generated_ns, in.generated_ns);
  });
  EXPECT_EQ(frames, 1);
  EXPECT_EQ(parser.pending_bytes(), 0u);
}

TEST(Framing, TruncatedFinalFrameNeverEmits) {
  // A connection that dies mid-frame must deliver every complete frame and
  // surface the truncated tail only as pending bytes.
  const std::size_t frame_bytes = 48;
  std::vector<unsigned char> wire(frame_bytes * 2, 0);
  encode_frame_header(Frame{7, 700}, wire.data());
  encode_frame_header(Frame{8, 800}, wire.data() + frame_bytes);
  const std::size_t cut = frame_bytes + frame_bytes / 2;

  FrameParser parser(frame_bytes);
  std::vector<Frame> out;
  parser.feed(wire.data(), cut, [&](const Frame& f) { out.push_back(f); });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].packet_number, 7u);
  EXPECT_EQ(parser.pending_bytes(), cut - frame_bytes);

  // Zero-length reads (EOF polling) change nothing.
  parser.feed(wire.data(), 0, [&](const Frame&) { FAIL(); });
  EXPECT_EQ(parser.pending_bytes(), cut - frame_bytes);
}

// Runs a server and client concurrently over loopback.
std::pair<ServerStats, ClientReport> stream_loopback(ServerConfig server_cfg,
                                                     ClientConfig client_cfg) {
  DmpInetServer server(server_cfg);
  client_cfg.port = server.port();
  client_cfg.frame_bytes = server_cfg.frame_bytes;
  client_cfg.num_paths = server_cfg.num_paths;
  client_cfg.mu_pps = server_cfg.mu_pps;

  auto server_future =
      std::async(std::launch::async, [&server] { return server.run(); });
  DmpInetClient client(client_cfg);
  ClientReport report = client.run();
  ServerStats stats = server_future.get();
  return {std::move(stats), std::move(report)};
}

TEST(InetStreaming, DeliversEveryPacketExactlyOnce) {
  ServerConfig cfg;
  cfg.num_paths = 2;
  cfg.mu_pps = 500.0;
  cfg.duration_s = 2.0;
  auto [stats, report] = stream_loopback(cfg, ClientConfig{});

  EXPECT_EQ(stats.packets_generated, 1000);
  EXPECT_EQ(report.frames_received, 1000);
  std::vector<bool> seen(1000, false);
  for (const auto& e : report.trace.entries()) {
    ASSERT_GE(e.packet_number, 0);
    ASSERT_LT(e.packet_number, 1000);
    ASSERT_FALSE(seen[static_cast<std::size_t>(e.packet_number)]);
    seen[static_cast<std::size_t>(e.packet_number)] = true;
  }
}

TEST(InetStreaming, LoopbackIsPunctual) {
  ServerConfig cfg;
  cfg.num_paths = 2;
  cfg.mu_pps = 400.0;
  cfg.duration_s = 2.0;
  auto [stats, report] = stream_loopback(cfg, ClientConfig{});
  // With a 1-second startup delay nothing can be late on loopback.
  EXPECT_DOUBLE_EQ(
      report.trace.late_fraction_playback_order(1.0, stats.packets_generated),
      0.0);
}

TEST(InetStreaming, SinglePathWorks) {
  ServerConfig cfg;
  cfg.num_paths = 1;
  cfg.mu_pps = 300.0;
  cfg.duration_s = 1.0;
  auto [stats, report] = stream_loopback(cfg, ClientConfig{});
  EXPECT_EQ(report.frames_received, stats.packets_generated);
}

TEST(InetStreaming, ServerCountsMatchClientCounts) {
  ServerConfig cfg;
  cfg.num_paths = 2;
  cfg.mu_pps = 500.0;
  cfg.duration_s = 1.0;
  auto [stats, report] = stream_loopback(cfg, ClientConfig{});
  ASSERT_EQ(stats.sent_per_path.size(), 2u);
  ASSERT_EQ(report.received_per_path.size(), 2u);
  EXPECT_EQ(stats.sent_per_path[0], report.received_per_path[0]);
  EXPECT_EQ(stats.sent_per_path[1], report.received_per_path[1]);
  EXPECT_EQ(stats.sent_per_path[0] + stats.sent_per_path[1],
            static_cast<std::uint64_t>(stats.packets_generated));
}

TEST(InetStreaming, ThrottledPathReceivesSmallerShare) {
  // Path 1 is read-throttled to ~0.4 Mbps while the stream needs ~4.6 Mbps:
  // DMP must shift the load to path 0 with no explicit signalling.
  ServerConfig cfg;
  cfg.num_paths = 2;
  cfg.mu_pps = 400.0;
  cfg.duration_s = 3.0;
  cfg.send_buffer_bytes = 8 * 1024;
  ClientConfig client_cfg;
  client_cfg.read_rate_limit_bps = {0.0, 0.4e6};
  auto [stats, report] = stream_loopback(cfg, client_cfg);

  EXPECT_EQ(report.frames_received, stats.packets_generated);
  const auto split = report.trace.path_split(2);
  EXPECT_GT(split[0], 0.75) << "fast path should dominate";
  EXPECT_GT(split[1], 0.01) << "slow path must still contribute";
}

TEST(InetStreaming, ValidatesConfiguration) {
  ServerConfig cfg;
  cfg.num_paths = 0;
  EXPECT_THROW(DmpInetServer{cfg}, std::invalid_argument);
  cfg = ServerConfig{};
  cfg.mu_pps = 0.0;
  EXPECT_THROW(DmpInetServer{cfg}, std::invalid_argument);

  ClientConfig ccfg;
  ccfg.num_paths = 2;
  ccfg.read_rate_limit_bps = {1.0};  // wrong arity
  EXPECT_THROW(DmpInetClient{ccfg}, std::invalid_argument);
}

}  // namespace
}  // namespace dmp::inet
