// Socket-layer fault injection: scheduled conn_reset events RST a path's
// TCP connection mid-stream; a client with a reconnect budget resumes it
// with a hello naming the last frame received, the server replays what may
// have died in the broken connection's kernel buffers, and client-side
// dedup keeps delivery exactly-once.
#include <gtest/gtest.h>

#include <future>
#include <stdexcept>
#include <vector>

#include "inet/client.hpp"
#include "inet/server.hpp"

namespace dmp::inet {
namespace {

TEST(InetFault, ServerRejectsNonConnResetFaults) {
  ServerConfig cfg;
  cfg.faults = "1 link_down path0";
  EXPECT_THROW(DmpInetServer{cfg}, std::invalid_argument);
  cfg.faults = "1 conn_reset path9";  // beyond num_paths
  EXPECT_THROW(DmpInetServer{cfg}, std::invalid_argument);
  cfg.faults = "1 conn_reset path1";
  EXPECT_NO_THROW(DmpInetServer{cfg});
}

TEST(InetFault, ClientRejectsBadReconnectKnobs) {
  ClientConfig cfg;
  cfg.reconnect_max_retries = -1;
  EXPECT_THROW(DmpInetClient{cfg}, std::invalid_argument);
  cfg.reconnect_max_retries = 1;
  cfg.reconnect_backoff_ms = 0;
  EXPECT_THROW(DmpInetClient{cfg}, std::invalid_argument);
  cfg.reconnect_backoff_ms = 100;
  cfg.reconnect_backoff_cap_ms = 50;  // cap below the first delay
  EXPECT_THROW(DmpInetClient{cfg}, std::invalid_argument);
}

TEST(InetFault, ResetPathReconnectsAndDeliveryStaysExactlyOnce) {
  ServerConfig cfg;
  cfg.num_paths = 2;
  cfg.mu_pps = 400.0;
  cfg.duration_s = 3.0;
  // Reset path0 twice mid-stream.
  cfg.faults = "0.8 conn_reset path0; 1.8 conn_reset path0";
  DmpInetServer server(cfg);

  ClientConfig ccfg;
  ccfg.port = server.port();
  ccfg.num_paths = cfg.num_paths;
  ccfg.mu_pps = cfg.mu_pps;
  ccfg.reconnect_max_retries = 5;
  ccfg.reconnect_backoff_ms = 20;
  ccfg.reconnect_backoff_cap_ms = 200;

  auto server_future =
      std::async(std::launch::async, [&server] { return server.run(); });
  DmpInetClient client(ccfg);
  const auto report = client.run();
  const auto stats = server_future.get();

  EXPECT_EQ(stats.conn_resets, 2u);
  EXPECT_EQ(stats.reaccepts, report.reconnects);
  EXPECT_GE(report.reconnects, 1u);
  // Replay + dedup: every generated packet arrives exactly once.
  ASSERT_EQ(report.frames_received, stats.packets_generated);
  std::vector<bool> seen(static_cast<std::size_t>(stats.packets_generated),
                         false);
  for (const auto& e : report.trace.entries()) {
    ASSERT_GE(e.packet_number, 0);
    ASSERT_LT(e.packet_number, stats.packets_generated);
    ASSERT_FALSE(seen[static_cast<std::size_t>(e.packet_number)]);
    seen[static_cast<std::size_t>(e.packet_number)] = true;
  }
}

TEST(InetFault, NoRetryBudgetMeansAResetClosesThePathForGood) {
  ServerConfig cfg;
  cfg.num_paths = 2;
  cfg.mu_pps = 400.0;
  cfg.duration_s = 1.5;
  cfg.faults = "0.5 conn_reset path1";
  DmpInetServer server(cfg);

  ClientConfig ccfg;
  ccfg.port = server.port();
  ccfg.num_paths = cfg.num_paths;
  ccfg.mu_pps = cfg.mu_pps;  // legacy default: reconnect_max_retries = 0

  auto server_future =
      std::async(std::launch::async, [&server] { return server.run(); });
  DmpInetClient client(ccfg);
  const auto report = client.run();
  const auto stats = server_future.get();

  EXPECT_EQ(stats.conn_resets, 1u);
  EXPECT_EQ(stats.reaccepts, 0u);
  EXPECT_EQ(report.reconnects, 0u);
  // The surviving path carries the rest of the stream; only frames caught
  // in the RST connection's buffers (bounded by the socket buffers) are
  // lost, since nobody sends a resume hello to trigger replay.
  EXPECT_LE(report.frames_received, stats.packets_generated);
  EXPECT_GT(report.frames_received, stats.packets_generated / 2);
  EXPECT_EQ(report.duplicate_frames, 0u);
}

}  // namespace
}  // namespace dmp::inet
