// Property tests for the socket layer: framing under randomized chunking,
// server early stop, and exactly-once delivery across parameter sweeps.
#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "inet/client.hpp"
#include "inet/server.hpp"
#include "util/rng.hpp"

namespace dmp::inet {
namespace {

class FramingChunkSweep : public ::testing::TestWithParam<int> {};

TEST_P(FramingChunkSweep, RandomChunkingPreservesEveryFrame) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t frame_bytes = 80;
  const std::uint64_t frames = 500;
  std::vector<unsigned char> wire;
  for (std::uint64_t n = 0; n < frames; ++n) {
    std::vector<unsigned char> frame(frame_bytes, 0xAB);
    encode_frame_header(Frame{n, n * 7 + 1}, frame.data());
    wire.insert(wire.end(), frame.begin(), frame.end());
  }

  FrameParser parser(frame_bytes);
  std::vector<Frame> out;
  std::size_t offset = 0;
  while (offset < wire.size()) {
    const std::size_t len = std::min<std::size_t>(
        1 + rng.uniform_int(3 * frame_bytes), wire.size() - offset);
    parser.feed(wire.data() + offset, len,
                [&](const Frame& f) { out.push_back(f); });
    offset += len;
  }
  ASSERT_EQ(out.size(), frames);
  for (std::uint64_t n = 0; n < frames; ++n) {
    ASSERT_EQ(out[n].packet_number, n);
    ASSERT_EQ(out[n].generated_ns, n * 7 + 1);
  }
  EXPECT_EQ(parser.pending_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(ChunkSeeds, FramingChunkSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(InetServer, RequestStopEndsALongStreamEarly) {
  ServerConfig cfg;
  cfg.num_paths = 1;
  cfg.mu_pps = 100.0;
  cfg.duration_s = 3600.0;  // would run an hour without the stop
  DmpInetServer server(cfg);

  ClientConfig ccfg;
  ccfg.port = server.port();
  ccfg.num_paths = 1;
  ccfg.mu_pps = cfg.mu_pps;

  auto server_future =
      std::async(std::launch::async, [&server] { return server.run(); });
  std::thread stopper([&server] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    server.request_stop();
  });
  DmpInetClient client(ccfg);
  const auto report = client.run();
  const auto stats = server_future.get();
  stopper.join();

  EXPECT_LT(stats.packets_generated, 360'000);
  EXPECT_GT(report.frames_received, 0);
  EXPECT_LE(report.frames_received, stats.packets_generated);
}

class InetPathCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(InetPathCountSweep, ExactlyOnceForAnyK) {
  ServerConfig cfg;
  cfg.num_paths = static_cast<std::size_t>(GetParam());
  cfg.mu_pps = 400.0;
  cfg.duration_s = 1.0;
  DmpInetServer server(cfg);
  ClientConfig ccfg;
  ccfg.port = server.port();
  ccfg.num_paths = cfg.num_paths;
  ccfg.mu_pps = cfg.mu_pps;

  auto server_future =
      std::async(std::launch::async, [&server] { return server.run(); });
  DmpInetClient client(ccfg);
  const auto report = client.run();
  const auto stats = server_future.get();

  ASSERT_EQ(report.frames_received, stats.packets_generated);
  std::vector<bool> seen(static_cast<std::size_t>(stats.packets_generated),
                         false);
  for (const auto& e : report.trace.entries()) {
    ASSERT_FALSE(seen[static_cast<std::size_t>(e.packet_number)]);
    seen[static_cast<std::size_t>(e.packet_number)] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(PathCounts, InetPathCountSweep,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace dmp::inet
