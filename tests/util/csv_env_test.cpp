#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "util/csv.hpp"
#include "util/env.hpp"

namespace dmp {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "/tmp/dmp_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.row({"1", "x"});
    csv.row({CsvWriter::num(2.5), CsvWriter::num(std::int64_t{7})});
  }
  EXPECT_EQ(read_all(path), "a,b\n1,x\n2.5,7\n");
  std::filesystem::remove(path);
}

TEST(Csv, RejectsWidthMismatch) {
  const std::string path = "/tmp/dmp_csv_test2.csv";
  CsvWriter csv(path, {"a", "b", "c"});
  EXPECT_THROW(csv.row({"1", "2"}), std::invalid_argument);
  std::filesystem::remove(path);
}

TEST(Csv, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv", {"a"}),
               std::runtime_error);
}

TEST(Csv, NumRoundTripsDoubles) {
  EXPECT_EQ(CsvWriter::num(0.5), "0.5");
  const double v = 0.00012345;
  EXPECT_NEAR(std::stod(CsvWriter::num(v)), v, 1e-15);
}

TEST(Env, ParsesIntsAndFallsBack) {
  ::setenv("DMP_TEST_INT", "42", 1);
  EXPECT_EQ(env_int("DMP_TEST_INT", 7), 42);
  ::setenv("DMP_TEST_INT", "garbage", 1);
  EXPECT_EQ(env_int("DMP_TEST_INT", 7), 7);
  ::unsetenv("DMP_TEST_INT");
  EXPECT_EQ(env_int("DMP_TEST_INT", 7), 7);
  ::setenv("DMP_TEST_INT", "", 1);
  EXPECT_EQ(env_int("DMP_TEST_INT", 7), 7);
  ::unsetenv("DMP_TEST_INT");
}

TEST(Env, ParsesDoubles) {
  ::setenv("DMP_TEST_DBL", "2.75", 1);
  EXPECT_DOUBLE_EQ(env_double("DMP_TEST_DBL", 1.0), 2.75);
  ::setenv("DMP_TEST_DBL", "2.75x", 1);
  EXPECT_DOUBLE_EQ(env_double("DMP_TEST_DBL", 1.0), 1.0);
  ::unsetenv("DMP_TEST_DBL");
}

TEST(Env, ParsesStrings) {
  ::setenv("DMP_TEST_STR", "hello", 1);
  EXPECT_EQ(env_string("DMP_TEST_STR", "d"), "hello");
  ::unsetenv("DMP_TEST_STR");
  EXPECT_EQ(env_string("DMP_TEST_STR", "d"), "d");
}

}  // namespace
}  // namespace dmp
