#include "util/sim_time.hpp"

#include <gtest/gtest.h>

namespace dmp {
namespace {

TEST(SimTime, UnitConversionsRoundTrip) {
  EXPECT_EQ(SimTime::seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(SimTime::millis(250).ns(), 250'000'000);
  EXPECT_EQ(SimTime::micros(3).ns(), 3'000);
  EXPECT_DOUBLE_EQ(SimTime::millis(125).to_seconds(), 0.125);
  EXPECT_DOUBLE_EQ(SimTime::seconds(2.0).to_millis(), 2000.0);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::millis(100);
  const SimTime b = SimTime::millis(40);
  EXPECT_EQ((a + b).ns(), SimTime::millis(140).ns());
  EXPECT_EQ((a - b).ns(), SimTime::millis(60).ns());
  EXPECT_EQ((b * 3).ns(), SimTime::millis(120).ns());
  EXPECT_EQ((a / 4).ns(), SimTime::millis(25).ns());
}

TEST(SimTime, ComparisonIsTotalOrder) {
  EXPECT_LT(SimTime::millis(1), SimTime::millis(2));
  EXPECT_EQ(SimTime::seconds(0.001), SimTime::millis(1));
  EXPECT_GT(SimTime::max(), SimTime::seconds(1e9));
}

TEST(SimTime, ScaledAppliesRealFactor) {
  EXPECT_EQ(SimTime::millis(100).scaled(2.5).ns(), SimTime::millis(250).ns());
  EXPECT_EQ(SimTime::millis(100).scaled(0.5).ns(), SimTime::millis(50).ns());
}

TEST(SimTime, TransmissionTime) {
  // 1500 bytes at 1.2 Mbps = 10 ms.
  EXPECT_EQ(transmission_time(1500, 1.2e6).ns(), SimTime::millis(10).ns());
  // 40-byte ACK at 100 Mbps = 3.2 us.
  EXPECT_EQ(transmission_time(40, 100e6).ns(), SimTime::nanos(3200).ns());
}

TEST(SimTime, DefaultIsZero) {
  EXPECT_EQ(SimTime{}.ns(), 0);
  EXPECT_EQ(SimTime::zero(), SimTime{});
}

}  // namespace
}  // namespace dmp
