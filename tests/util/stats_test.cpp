#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace dmp {
namespace {

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, EmptyMergeSemantics) {
  // Merging an empty accumulator must be an identity in both directions —
  // in particular the empty side's min/max sentinels must never clamp the
  // populated side's extrema.
  RunningStats a;
  for (double x : {3.0, 5.0, 7.0}) a.add(x);

  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 7.0);

  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 3u);
  EXPECT_DOUBLE_EQ(b.mean(), 5.0);
  EXPECT_DOUBLE_EQ(b.min(), 3.0);
  EXPECT_DOUBLE_EQ(b.max(), 7.0);

  RunningStats c, d;
  c.merge(d);
  EXPECT_EQ(c.count(), 0u);
  EXPECT_DOUBLE_EQ(c.min(), 0.0);
  EXPECT_DOUBLE_EQ(c.max(), 0.0);
}

TEST(RunningStats, SignedExtremaNotClampedToZero) {
  // All-negative data: a zero-initialised max would win incorrectly.
  RunningStats neg;
  for (double x : {-4.0, -2.0, -9.0}) neg.add(x);
  EXPECT_DOUBLE_EQ(neg.min(), -9.0);
  EXPECT_DOUBLE_EQ(neg.max(), -2.0);

  // All-positive data: a zero-initialised min would win incorrectly.
  RunningStats pos;
  for (double x : {4.0, 2.0, 9.0}) pos.add(x);
  EXPECT_DOUBLE_EQ(pos.min(), 2.0);
  EXPECT_DOUBLE_EQ(pos.max(), 9.0);

  RunningStats merged;
  merged.merge(neg);
  merged.merge(pos);
  EXPECT_DOUBLE_EQ(merged.min(), -9.0);
  EXPECT_DOUBLE_EQ(merged.max(), 9.0);
}

TEST(RunningStats, MergeEqualsConcatenation) {
  RunningStats a, b, all;
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0, 10);
    a.add(x);
    all.add(x);
  }
  for (int i = 0; i < 300; ++i) {
    const double x = rng.exponential(3.0);
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StudentT, KnownCriticalValues) {
  EXPECT_NEAR(student_t_critical(0.95, 1), 12.706, 1e-3);
  EXPECT_NEAR(student_t_critical(0.95, 29), 2.045, 1e-3);
  EXPECT_NEAR(student_t_critical(0.95, 1000), 1.960, 1e-3);
  EXPECT_NEAR(student_t_critical(0.99, 10), 3.169, 1e-3);
  EXPECT_NEAR(student_t_critical(0.90, 5), 2.015, 1e-3);
}

TEST(ConfidenceInterval, CoversTrueMeanOfNormalishData) {
  Rng rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 30; ++i) {
    double s = 0;
    for (int j = 0; j < 12; ++j) s += rng.uniform();  // approx N(6, 1)
    samples.push_back(s);
  }
  const auto ci = confidence_interval(samples);
  EXPECT_TRUE(ci.contains(6.0)) << ci.lo() << " .. " << ci.hi();
  EXPECT_GT(ci.half_width, 0.0);
  EXPECT_LT(ci.half_width, 1.0);
}

TEST(ConfidenceInterval, SingleSampleHasZeroWidth) {
  const auto ci = confidence_interval({3.5});
  EXPECT_DOUBLE_EQ(ci.mean, 3.5);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(BatchMeans, MeanTracksAllSamples) {
  BatchMeans bm;
  Rng rng(3);
  RunningStats ref;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.chance(0.01) ? 1.0 : 0.0;
    bm.add(x);
    ref.add(x);
  }
  EXPECT_EQ(bm.count(), 100000u);
  EXPECT_NEAR(bm.mean(), ref.mean(), 1e-12);
}

TEST(BatchMeans, IntervalCoversIidMean) {
  BatchMeans bm;
  Rng rng(4);
  for (int i = 0; i < 200000; ++i) bm.add(rng.chance(0.05) ? 1.0 : 0.0);
  const auto ci = bm.interval();
  EXPECT_TRUE(ci.contains(0.05)) << ci.lo() << " .. " << ci.hi();
  EXPECT_LT(ci.half_width, 0.01);
}

TEST(BatchMeans, BatchCountStaysBounded) {
  // The pairwise-merge policy keeps memory O(num_batches) for any run length.
  BatchMeans bm(16);
  for (int i = 0; i < 2'000'000; ++i) bm.add(0.5);
  const auto ci = bm.interval();
  EXPECT_DOUBLE_EQ(ci.mean, 0.5);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(Quantile, InterpolatesLinearly) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
}

TEST(Quantile, ThrowsOnEmpty) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace dmp
