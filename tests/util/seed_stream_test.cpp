#include "util/seed_stream.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

namespace dmp {
namespace {

TEST(SeedStream, IsDeterministic) {
  const SeedStream a(2007, 1);
  const SeedStream b(2007, 1);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.at(i), b.at(i));
    EXPECT_EQ(a.at(i), derive_seed(2007, 1, i));
  }
}

TEST(SeedStream, JumpMatchesSequentialWalk) {
  // at() is O(1); handing a worker index 57 directly must equal walking
  // the stream 0..57 — there is no hidden sequential state.
  const SeedStream stream(42, 7);
  std::vector<std::uint64_t> walked;
  for (std::uint64_t i = 0; i < 64; ++i) walked.push_back(stream.at(i));
  EXPECT_EQ(stream.at(57), walked[57]);
  EXPECT_EQ(stream.at(0), walked[0]);
}

TEST(SeedStream, ElementsWithinStreamAreDistinct) {
  const SeedStream stream(2007, 1);
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    EXPECT_TRUE(seen.insert(stream.at(i)).second) << "collision at " << i;
  }
}

TEST(SeedStream, DomainsAreDisjoint) {
  // Streams from different domains over the same root must not overlap in
  // any small index range (probabilistically: finalized 64-bit outputs).
  const std::uint64_t root = 2007;
  std::set<std::uint64_t> seen;
  for (std::uint64_t domain = 0; domain < 16; ++domain) {
    const SeedStream stream(root, domain);
    for (std::uint64_t i = 0; i < 256; ++i) {
      EXPECT_TRUE(seen.insert(stream.at(i)).second)
          << "collision: domain " << domain << " index " << i;
    }
  }
}

TEST(SeedStream, FixesAdditiveSeedCollision) {
  // The bug the streams replace: benches derived the probe seed as
  // `seed + 1` and replication r's seed as `seed + r`, so replication 1
  // reused the probe's RNG stream exactly.  With domain-separated streams
  // the corresponding values never coincide.
  const std::uint64_t root = 2007;
  const SeedStream replications(root, /*domain=*/1);
  const SeedStream probes(root, /*domain=*/2);
  for (std::uint64_t r = 0; r < 64; ++r) {
    for (std::uint64_t p = 0; p < 8; ++p) {
      EXPECT_NE(replications.at(r), probes.at(p));
    }
  }
  // The literal old failure pair: probe seed (seed+1) vs replication 1.
  EXPECT_NE(replications.at(1), probes.at(0));
}

TEST(SeedStream, DifferentRootsDiverge) {
  const SeedStream a(1, 1);
  const SeedStream b(2, 1);
  int equal = 0;
  for (std::uint64_t i = 0; i < 256; ++i) equal += (a.at(i) == b.at(i));
  EXPECT_EQ(equal, 0);
}

TEST(SeedStream, SubstreamIsIndependentOfParent) {
  const SeedStream parent(2007, 3);
  const SeedStream child = parent.substream(5);
  EXPECT_EQ(child.root(), parent.at(5));
  EXPECT_EQ(child.domain(), parent.domain() + 1);
  // Same substream derived twice is identical.
  EXPECT_EQ(child.at(9), parent.substream(5).at(9));
  // And does not reproduce the parent's values.
  std::set<std::uint64_t> parent_vals;
  for (std::uint64_t i = 0; i < 256; ++i) parent_vals.insert(parent.at(i));
  for (std::uint64_t i = 0; i < 256; ++i) {
    EXPECT_EQ(parent_vals.count(child.at(i)), 0u);
  }
}

}  // namespace
}  // namespace dmp
