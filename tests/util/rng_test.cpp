#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dmp {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsIndependentOfParentContinuation) {
  Rng parent(7);
  Rng child = parent.fork();
  // The child stream must differ from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child.next_u64() == parent.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(5);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, ParetoRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.pareto(1.3, 2.0, 200.0);
    ASSERT_GE(v, 2.0);
    ASSERT_LE(v, 200.0);
  }
}

TEST(Rng, ParetoHeavyTail) {
  // With shape 1.3 and xm 2, P(X > 20) = (2/20)^1.3 ~ 0.05: the tail must
  // be visited but not dominate.
  Rng rng(9);
  int big = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) big += (rng.pareto(1.3, 2.0, 1e9) > 20.0);
  EXPECT_GT(big, n / 100);
  EXPECT_LT(big, n / 10);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(10);
  std::vector<int> histogram(7, 0);
  for (int i = 0; i < 70000; ++i) {
    const auto v = rng.uniform_int(7);
    ASSERT_LT(v, 7u);
    ++histogram[static_cast<int>(v)];
  }
  for (int count : histogram) EXPECT_NEAR(count, 10000, 500);
}

TEST(Rng, ChanceProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.chance(0.02);
  EXPECT_NEAR(hits, 2000, 300);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(12);
  const double weights[] = {1.0, 3.0};
  int second = 0;
  for (int i = 0; i < 40000; ++i) second += (rng.weighted_index(weights, 2) == 1);
  EXPECT_NEAR(second, 30000, 600);
}

}  // namespace
}  // namespace dmp
