// OrderedPool: deterministic fan-out/fan-in used by the experiment runner
// and the sharded Monte-Carlo estimator.  The contract under test: consume
// runs on the calling thread in strict index order regardless of worker
// count, and produce errors surface at the owning index.
#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace dmp {
namespace {

TEST(ResolveWorkerThreads, ZeroMeansHardwareButAtLeastOne) {
  EXPECT_GE(resolve_worker_threads(0), 1u);
  EXPECT_EQ(resolve_worker_threads(3), 3u);
}

TEST(OrderedPool, ConsumesInIndexOrderWithManyWorkers) {
  OrderedPool pool(4);
  constexpr std::size_t kN = 64;
  std::vector<std::size_t> order;
  pool.run_ordered(
      kN,
      [](std::size_t i) {
        // Stagger completion so out-of-order production is likely.
        if (i % 3 == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return i * 10;
      },
      [&](std::size_t i, std::size_t value) {
        EXPECT_EQ(value, i * 10);
        order.push_back(i);
      });
  ASSERT_EQ(order.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(order[i], i);
}

TEST(OrderedPool, SerialFallbackMatchesParallel) {
  auto run = [](std::size_t threads) {
    OrderedPool pool(threads);
    std::vector<int> out;
    pool.run_ordered(
        10, [](std::size_t i) { return static_cast<int>(i * i); },
        [&](std::size_t, int v) { out.push_back(v); });
    return out;
  };
  EXPECT_EQ(run(1), run(5));
}

TEST(OrderedPool, MapReturnsResultsInOrder) {
  OrderedPool pool(3);
  const auto squares =
      pool.map(8, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(squares.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(squares[i], static_cast<int>(i * i));
  }
}

TEST(OrderedPool, ProduceExceptionPropagatesToCaller) {
  OrderedPool pool(4);
  std::atomic<int> consumed{0};
  EXPECT_THROW(
      pool.run_ordered(
          16,
          [](std::size_t i) -> int {
            if (i == 7) throw std::runtime_error("boom");
            return static_cast<int>(i);
          },
          [&](std::size_t, int) { ++consumed; }),
      std::runtime_error);
  // Everything before the failing index was consumed in order.
  EXPECT_EQ(consumed.load(), 7);
}

TEST(OrderedPool, ZeroItemsIsANoOp) {
  OrderedPool pool(2);
  int consumed = 0;
  pool.run_ordered(
      0, [](std::size_t) { return 0; }, [&](std::size_t, int) { ++consumed; });
  EXPECT_EQ(consumed, 0);
}

}  // namespace
}  // namespace dmp
