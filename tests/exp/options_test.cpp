#include "exp/options.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

namespace dmp::exp {
namespace {

// Clears every DMP_* variable around each test so the suite is immune to
// the invoking shell's environment.
class OptionsTest : public ::testing::Test {
 protected:
  void SetUp() override { clear(); }
  void TearDown() override { clear(); }

  static void clear() {
    for (const char* name :
         {"DMP_RUNS", "DMP_DURATION_S", "DMP_SEED", "DMP_MC_MIN",
          "DMP_MC_MAX", "DMP_THREADS", "DMP_OBS", "DMP_OBS_PROBE_S",
          "DMP_TRACE", "DMP_OUT_DIR", "DMP_FIG7_DURATION_S",
          "DMP_TABLE1_PROBE_S", "DMP_FAULTS", "DMP_SANITIZE",
          "DMP_CHECK_BUILD_DIR", "DMP_SCHED", "DMP_QDISC", "DMP_TYPO",
          "DMP_RUN"}) {
      unsetenv(name);
    }
  }
};

TEST_F(OptionsTest, DefaultsWithEmptyEnvironment) {
  const auto options = BenchOptions::from_env();
  EXPECT_EQ(options.runs, 8);
  EXPECT_DOUBLE_EQ(options.duration_s, 3000.0);
  EXPECT_EQ(options.seed, 2007u);
  EXPECT_EQ(options.mc_min, 400'000u);
  EXPECT_EQ(options.mc_max, 6'400'000u);
  EXPECT_EQ(options.threads, 0u);
  EXPECT_FALSE(options.obs);
  EXPECT_FALSE(options.trace);
}

TEST_F(OptionsTest, ParsesAllKnobs) {
  setenv("DMP_RUNS", "3", 1);
  setenv("DMP_DURATION_S", "120.5", 1);
  setenv("DMP_SEED", "99", 1);
  setenv("DMP_MC_MIN", "1000", 1);
  setenv("DMP_MC_MAX", "2000", 1);
  setenv("DMP_THREADS", "4", 1);
  setenv("DMP_OBS", "1", 1);
  setenv("DMP_TRACE", "1", 1);
  const auto options = BenchOptions::from_env();
  EXPECT_EQ(options.runs, 3);
  EXPECT_DOUBLE_EQ(options.duration_s, 120.5);
  EXPECT_EQ(options.seed, 99u);
  EXPECT_EQ(options.mc_min, 1000u);
  EXPECT_EQ(options.mc_max, 2000u);
  EXPECT_EQ(options.threads, 4u);
  EXPECT_TRUE(options.obs);
  EXPECT_TRUE(options.trace);
}

TEST_F(OptionsTest, ParsesAndValidatesFaultPlan) {
  setenv("DMP_FAULTS", "20 link_down path1; 25 link_up path1", 1);
  const auto options = BenchOptions::from_env();
  EXPECT_EQ(options.faults, "20 link_down path1; 25 link_up path1");
}

TEST_F(OptionsTest, RejectsMalformedFaultPlan) {
  setenv("DMP_FAULTS", "20 link_dwn path1", 1);
  try {
    BenchOptions::from_env();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("DMP_FAULTS"), std::string::npos);
  }
}

TEST_F(OptionsTest, ParsesAndValidatesSchedulerSpec) {
  EXPECT_EQ(BenchOptions::from_env().sched, "pull");
  setenv("DMP_SCHED", "parity-4", 1);
  EXPECT_EQ(BenchOptions::from_env().sched, "parity-4");
  setenv("DMP_SCHED", "weighted:0.7,0.3", 1);
  EXPECT_EQ(BenchOptions::from_env().sched, "weighted:0.7,0.3");
}

TEST_F(OptionsTest, RejectsUnknownSchedulerWithAcceptedSet) {
  setenv("DMP_SCHED", "bogus", 1);
  try {
    BenchOptions::from_env();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    // Pinned: names the variable, the offending value, and the full
    // accepted grammar so a typo'd knob is self-diagnosing.
    EXPECT_STREQ(e.what(),
                 "bench options: DMP_SCHED: unknown scheduler 'bogus' "
                 "(accepted: pull, weighted[:w0,w1,...], best_path, "
                 "round_robin, redundant, parity-<k> for k in [2,32])");
  }
}

TEST_F(OptionsTest, ParsesAndValidatesQdiscSpec) {
  EXPECT_EQ(BenchOptions::from_env().qdisc, "droptail");
  setenv("DMP_QDISC", "pie:20,30", 1);
  EXPECT_EQ(BenchOptions::from_env().qdisc, "pie:20,30");
  setenv("DMP_QDISC", "fq_pie:16", 1);
  const auto options = BenchOptions::from_env();
  EXPECT_EQ(options.qdisc, "fq_pie:16");
  EXPECT_NE(options.summary().find("qdisc=fq_pie:16"), std::string::npos);
}

TEST_F(OptionsTest, DefaultQdiscStaysOutOfTheSummary) {
  // The summary line is part of golden bench logs: the default must not
  // add a qdisc field (byte-identity with pre-qdisc runs).
  EXPECT_EQ(BenchOptions::from_env().summary().find("qdisc"),
            std::string::npos);
  setenv("DMP_QDISC", "droptail", 1);
  EXPECT_EQ(BenchOptions::from_env().summary().find("qdisc"),
            std::string::npos);
}

TEST_F(OptionsTest, RejectsBadQdiscNamingVariableAndGrammar) {
  setenv("DMP_QDISC", "wred", 1);
  try {
    BenchOptions::from_env();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    // Pinned prefix: the bench-options layer names the variable, then the
    // qdisc parser names the value and the accepted grammar.
    EXPECT_STREQ(e.what(),
                 "bench options: DMP_QDISC: unknown qdisc 'wred' "
                 "(accepted: droptail, pie[:target_ms[,tupdate_ms]], "
                 "fq_pie[:flows], codel[:target_ms[,interval_ms]])");
  }
  clear();
  setenv("DMP_QDISC", "pie:0", 1);
  EXPECT_THROW(BenchOptions::from_env(), std::invalid_argument);
}

TEST_F(OptionsTest, RejectsUnknownDmpVariable) {
  setenv("DMP_TYPO", "1", 1);
  EXPECT_THROW(BenchOptions::from_env(), std::invalid_argument);
}

TEST_F(OptionsTest, RejectsMisspelledKnob) {
  setenv("DMP_RUN", "8", 1);  // missing the S
  EXPECT_THROW(BenchOptions::from_env(), std::invalid_argument);
}

TEST_F(OptionsTest, KnownNonBenchVariablesAreAllowed) {
  setenv("DMP_OUT_DIR", "/tmp/x", 1);
  setenv("DMP_SANITIZE", "asan", 1);
  EXPECT_NO_THROW(BenchOptions::from_env());
}

TEST_F(OptionsTest, RejectsMalformedNumbers) {
  setenv("DMP_RUNS", "eight", 1);
  EXPECT_THROW(BenchOptions::from_env(), std::invalid_argument);
  clear();
  setenv("DMP_RUNS", "8x", 1);  // trailing junk is an error, not 8
  EXPECT_THROW(BenchOptions::from_env(), std::invalid_argument);
  clear();
  setenv("DMP_DURATION_S", "", 1);
  EXPECT_THROW(BenchOptions::from_env(), std::invalid_argument);
}

TEST_F(OptionsTest, RejectsOutOfRangeValues) {
  setenv("DMP_RUNS", "0", 1);
  EXPECT_THROW(BenchOptions::from_env(), std::invalid_argument);
  clear();
  setenv("DMP_DURATION_S", "-5", 1);
  EXPECT_THROW(BenchOptions::from_env(), std::invalid_argument);
  clear();
  setenv("DMP_MC_MIN", "5000", 1);
  setenv("DMP_MC_MAX", "100", 1);  // max < min
  EXPECT_THROW(BenchOptions::from_env(), std::invalid_argument);
  clear();
  setenv("DMP_THREADS", "-1", 1);
  EXPECT_THROW(BenchOptions::from_env(), std::invalid_argument);
  clear();
  setenv("DMP_THREADS", "100000", 1);
  EXPECT_THROW(BenchOptions::from_env(), std::invalid_argument);
}

TEST_F(OptionsTest, ErrorNamesTheVariable) {
  setenv("DMP_MC_MAX", "ten", 1);
  try {
    BenchOptions::from_env();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("DMP_MC_MAX"), std::string::npos);
  }
}

TEST_F(OptionsTest, UnknownVariableErrorListsAcceptedSet) {
  setenv("DMP_TYPO", "1", 1);
  try {
    BenchOptions::from_env();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    // Names the offending variable...
    EXPECT_NE(what.find("DMP_TYPO"), std::string::npos);
    // ...and the accepted set is generated from the real known list, so
    // newer knobs can't drift out of the message.
    EXPECT_NE(what.find("DMP_SCHED"), std::string::npos);
    EXPECT_NE(what.find("DMP_SLO"), std::string::npos);
    EXPECT_NE(what.find("DMP_PROFILE"), std::string::npos);
  }
}

TEST_F(OptionsTest, SummaryMentionsEffectiveValues) {
  setenv("DMP_RUNS", "5", 1);
  setenv("DMP_THREADS", "2", 1);
  const auto summary = BenchOptions::from_env().summary();
  EXPECT_NE(summary.find("runs=5"), std::string::npos);
  EXPECT_NE(summary.find("threads=2"), std::string::npos);
}

}  // namespace
}  // namespace dmp::exp
