// Telemetry flowing through the experiment engine: merged quantile
// sketches must make the aggregate report byte-identical at any worker
// count, the percentiles block must carry real data, and the per-run
// telemetry CSV is pinned against golden rows (the CBR generation channel
// is exactly predictable) and byte-compared across identical runs.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "apps/background.hpp"
#include "exp/plan.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "stream/session.hpp"

namespace {

using dmp::exp::ExperimentPlan;
using dmp::exp::ExperimentReport;
using dmp::exp::ExperimentRunner;
using dmp::exp::PlanSetting;

dmp::SessionConfig short_config(double mu_pps) {
  dmp::SessionConfig config;
  config.path_configs = {dmp::table1_config(1), dmp::table1_config(1)};
  config.mu_pps = mu_pps;
  config.duration_s = 12.0;
  config.warmup_s = 2.0;
  config.drain_s = 5.0;
  return config;
}

ExperimentPlan telemetry_plan() {
  ExperimentPlan plan;
  plan.name = "telemetry_report_test";
  plan.settings.push_back(PlanSetting{"mu20", short_config(20.0)});
  plan.settings.push_back(PlanSetting{"mu30", short_config(30.0)});
  plan.replications = 4;
  plan.seed = 99;
  // Telemetry on EVERY replication (no artifacts): the per-replication
  // sketches feed the merged percentiles in the aggregate report.
  plan.configure = [](dmp::SessionConfig& config, std::size_t, std::size_t) {
    config.telemetry.enabled = true;
  };
  return plan;
}

TEST(TelemetryReport, PercentilesPresentAndPopulated) {
  const ExperimentReport report = ExperimentRunner{1}.run(telemetry_plan());
  ASSERT_EQ(report.settings.size(), 2u);
  for (const auto& setting : report.settings) {
    const auto* delay = setting.find_sketch("client.delay_s");
    ASSERT_NE(delay, nullptr) << setting.name;
    EXPECT_GT(delay->count(), 0u) << setting.name;
    EXPECT_GT(delay->quantile(0.99), 0.0) << setting.name;
    EXPECT_LE(delay->quantile(0.5), delay->quantile(0.99)) << setting.name;
  }
  const std::string json = report.aggregate_json();
  EXPECT_NE(json.find("\"percentiles\": ["), std::string::npos);
  EXPECT_NE(json.find("\"client.delay_s\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\": "), std::string::npos);
}

// The headline determinism contract: merged percentile columns (and the
// whole aggregate) are the same bytes whether the sweep ran on 1 worker or
// 8 — the ordered consumer merges sketches in replication-index order.
TEST(TelemetryReport, AggregateBytesIdenticalAcrossThreadCounts) {
  const std::string serial =
      ExperimentRunner{1}.run(telemetry_plan()).aggregate_json();
  const std::string parallel =
      ExperimentRunner{8}.run(telemetry_plan()).aggregate_json();
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"percentiles\": [{"), std::string::npos)
      << "determinism test ran without any merged sketch";
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in{path};
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  return std::string{std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>()};
}

// Golden-pinned telemetry CSV for a fig4-style run.  The CBR source is
// deterministic: with warmup 20 s and mu = 50 pps, every full generation
// window is exactly `20+k,server.generated,50,50,1,1,1,1`.  Pinning these
// rows (plus the header) locks the window indexing, the bump semantics and
// the CSV number rendering all at once.
TEST(TelemetryReport, GoldenTelemetryCsvForFig4StyleRun) {
  dmp::SessionConfig config;
  config.path_configs = {dmp::table1_config(1), dmp::table1_config(1)};
  config.mu_pps = 50.0;
  config.duration_s = 5.0;
  config.warmup_s = 20.0;
  config.drain_s = 5.0;
  config.seed = 2007;
  config.telemetry.enabled = true;
  config.telemetry.write_artifacts = true;
  config.telemetry.output_dir = ::testing::TempDir();
  config.telemetry.prefix = "golden_fig4";

  const auto result = dmp::run_session(config);
  ASSERT_NE(result.telemetry, nullptr);
  ASSERT_FALSE(result.telemetry_csv_path.empty());
  EXPECT_EQ(result.artifact_write_failures, 0);

  const auto lines = read_lines(result.telemetry_csv_path);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0], "window_start_s,channel,count,sum,mean,min,max,last");
  for (int k = 0; k < 5; ++k) {
    const std::string golden = std::to_string(20 + k) +
                               ",server.generated,50,50,1,1,1,1";
    bool found = false;
    for (const auto& line : lines) found = found || line == golden;
    EXPECT_TRUE(found) << "missing golden row: " << golden;
  }
  for (const auto& line : lines) {
    EXPECT_EQ(line.find("inf"), std::string::npos) << line;
    EXPECT_EQ(line.find("nan"), std::string::npos) << line;
  }

  // Byte-determinism of both artifacts across identical runs.
  dmp::SessionConfig again = config;
  again.telemetry.prefix = "golden_fig4_b";
  const auto rerun = dmp::run_session(again);
  EXPECT_EQ(read_file(result.telemetry_csv_path),
            read_file(rerun.telemetry_csv_path));
  ASSERT_FALSE(result.sketches_path.empty());
  EXPECT_EQ(read_file(result.sketches_path), read_file(rerun.sketches_path));
}

// Probe caps ride along the same report plumbing: a tiny row limit must
// surface dropped rows in the result and the run report scalar.
TEST(TelemetryReport, ProbeRowCapSurfacesDroppedRows) {
  dmp::SessionConfig config;
  config.path_configs = {dmp::table1_config(1)};
  config.num_flows = 1;
  config.mu_pps = 20.0;
  config.duration_s = 15.0;
  config.warmup_s = 2.0;
  config.drain_s = 5.0;
  config.seed = 7;
  config.obs.enabled = true;
  config.obs.output_dir = ::testing::TempDir();
  config.obs.prefix = "probe_cap";
  config.obs.probe_interval_s = 1.0;
  config.obs.probe_max_rows = 3;

  const auto result = dmp::run_session(config);
  EXPECT_GT(result.probe_rows_dropped, 0u);
  const auto probe_lines = read_lines(result.probe_csv_path);
  // Header + exactly the allowed rows.
  EXPECT_EQ(probe_lines.size(), 4u);
  const std::string report = read_file(result.report_path);
  EXPECT_NE(report.find("\"probe_rows_dropped\":"), std::string::npos);
}

}  // namespace
