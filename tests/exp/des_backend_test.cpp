// DES backend contract at the session level: the calendar queue is pure
// wall-clock tuning, so a full packet-level session must produce the same
// trajectory — trace, counters, per-path measurements — under kHeap and
// kCalendar, and the calendar (the default) must preserve the experiment
// engine's thread-count invariance.  DMP_DES is validated like every other
// knob: unknown backends fail fast at options parse time.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "exp/options.hpp"
#include "exp/plan.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "stream/session.hpp"

namespace dmp::exp {
namespace {

SessionConfig quick_config(StreamScheme scheme = StreamScheme::kDmp) {
  SessionConfig config;
  config.path_configs = {table1_config(2), table1_config(2)};
  config.num_flows = 2;
  config.mu_pps = 50.0;
  config.duration_s = 20.0;
  config.warmup_s = 5.0;
  config.drain_s = 10.0;
  config.scheme = scheme;
  config.seed = 20071211;
  return config;
}

void expect_identical(const SessionResult& a, const SessionResult& b) {
  ASSERT_EQ(a.trace.entries().size(), b.trace.entries().size());
  ASSERT_GT(a.trace.entries().size(), 0u);
  for (std::size_t i = 0; i < a.trace.entries().size(); ++i) {
    ASSERT_EQ(a.trace.entries()[i].packet_number,
              b.trace.entries()[i].packet_number);
    ASSERT_EQ(a.trace.entries()[i].arrived.ns(),
              b.trace.entries()[i].arrived.ns());
    ASSERT_EQ(a.trace.entries()[i].path, b.trace.entries()[i].path);
  }
  EXPECT_EQ(a.packets_generated, b.packets_generated);
  EXPECT_EQ(a.events_executed, b.events_executed);
  ASSERT_EQ(a.paths.size(), b.paths.size());
  for (std::size_t k = 0; k < a.paths.size(); ++k) {
    EXPECT_EQ(a.paths[k].loss_rate, b.paths[k].loss_rate);
    EXPECT_EQ(a.paths[k].rtt_s, b.paths[k].rtt_s);
    EXPECT_EQ(a.paths[k].to_ratio, b.paths[k].to_ratio);
    EXPECT_EQ(a.paths[k].share, b.paths[k].share);
  }
}

TEST(DesBackend, HeapAndCalendarSessionsAreBitIdentical) {
  auto calendar = quick_config();
  calendar.des = "calendar";
  auto heap = quick_config();
  heap.des = "heap";
  expect_identical(run_session(calendar), run_session(heap));
}

TEST(DesBackend, HeapAndCalendarMatchUnderStaticScheme) {
  auto calendar = quick_config(StreamScheme::kStatic);
  calendar.des = "calendar";
  auto heap = quick_config(StreamScheme::kStatic);
  heap.des = "heap";
  expect_identical(run_session(calendar), run_session(heap));
}

TEST(DesBackend, DefaultBackendIsCalendar) {
  // The default-constructed config and an explicit "calendar" run the same
  // engine: identical results, and the documented default spelling.
  EXPECT_EQ(SessionConfig{}.des, "calendar");
  auto explicit_cal = quick_config();
  explicit_cal.des = "calendar";
  expect_identical(run_session(quick_config()), run_session(explicit_cal));
}

TEST(DesBackend, UnknownBackendFailsFast) {
  auto config = quick_config();
  config.des = "splay";
  EXPECT_THROW(run_session(config), std::invalid_argument);
}

TEST(DesBackend, AggregateReportIsThreadCountInvariantUnderCalendar) {
  ExperimentPlan plan;
  plan.name = "des_backend_test";
  plan.seed = 777;
  plan.replications = 3;
  auto config = quick_config();
  config.des = "calendar";
  plan.settings.push_back({"dmp", config});
  const auto serial = ExperimentRunner(1).run(plan);
  const auto parallel = ExperimentRunner(4).run(plan);
  EXPECT_EQ(serial.aggregate_json(), parallel.aggregate_json());
  ASSERT_EQ(serial.settings.size(), 1u);
  EXPECT_FALSE(serial.settings[0].metrics.empty());
}

TEST(DesBackend, DmpDesKnobParsesAndValidates) {
  unsetenv("DMP_DES");
  EXPECT_EQ(BenchOptions::from_env().des, "calendar");
  setenv("DMP_DES", "heap", 1);
  EXPECT_EQ(BenchOptions::from_env().des, "heap");
  setenv("DMP_DES", "calendar", 1);
  EXPECT_EQ(BenchOptions::from_env().des, "calendar");
  setenv("DMP_DES", "splay", 1);
  EXPECT_THROW(BenchOptions::from_env(), std::invalid_argument);
  unsetenv("DMP_DES");
}

}  // namespace
}  // namespace dmp::exp
