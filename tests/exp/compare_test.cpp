// Comparison layer: JSON document model, structural report diff, and the
// declarative SLO engine (src/exp/compare/).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "exp/compare/json.hpp"
#include "exp/compare/report_diff.hpp"
#include "exp/compare/slo.hpp"

namespace {

using dmp::exp::DiffClass;
using dmp::exp::DiffOptions;
using dmp::exp::JsonValue;
using dmp::exp::SloOp;
using dmp::exp::SloSpec;

const char* kReport = R"({
  "experiment": "fig4",
  "timing": {"wall_s": 1.25, "threads": 8},
  "settings": [
    {"name": "1-1", "metrics": [
      {"name": "f_tau4", "mean": 0.0125, "ci_half": 0.002}
    ]},
    {"name": "2-2", "metrics": [
      {"name": "f_tau4", "mean": 0.05, "ci_half": 0.01}
    ]}
  ],
  "divergence": [
    {"name": "fig4", "stats": {"count": 9, "diverged": 0}}
  ]
})";

// --- JSON parsing ---

TEST(JsonParse, RoundTripsAndPreservesNumberSpelling) {
  const JsonValue doc = dmp::exp::parse_json(kReport);
  ASSERT_TRUE(doc.is_object());
  const JsonValue* wall = doc.find("timing")->find("wall_s");
  ASSERT_NE(wall, nullptr);
  EXPECT_DOUBLE_EQ(wall->number, 1.25);
  EXPECT_EQ(wall->text, "1.25");  // source bytes, not re-rendered

  // Re-serializing and re-parsing is a fixed point.
  const std::string once = doc.to_json();
  EXPECT_EQ(dmp::exp::parse_json(once).to_json(), once);
}

TEST(JsonParse, ScalarsAndEscapes) {
  const JsonValue doc =
      dmp::exp::parse_json(R"({"s": "a\"b\n", "t": true, "f": false,
                              "z": null, "n": -1.5e3})");
  EXPECT_EQ(doc.find("s")->text, "a\"b\n");
  EXPECT_TRUE(doc.find("t")->boolean);
  EXPECT_FALSE(doc.find("f")->boolean);
  EXPECT_TRUE(doc.find("z")->is_null());
  EXPECT_DOUBLE_EQ(doc.find("n")->number, -1500.0);
}

TEST(JsonParse, ThrowsOnMalformedAndTrailingGarbage) {
  EXPECT_THROW(dmp::exp::parse_json("{"), std::runtime_error);
  EXPECT_THROW(dmp::exp::parse_json("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(dmp::exp::parse_json("[1, 2,]"), std::runtime_error);
  EXPECT_THROW(dmp::exp::parse_json("{} trailing"), std::runtime_error);
  EXPECT_THROW(dmp::exp::parse_json(""), std::runtime_error);
}

TEST(JsonParse, FileErrorsThrow) {
  EXPECT_THROW(dmp::exp::parse_json_file("no/such/file.json"),
               std::runtime_error);
  const std::string path = "compare_test_empty.json";
  std::ofstream(path).close();
  EXPECT_THROW(dmp::exp::parse_json_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(JsonParse, ResolvePathKeysIndicesAndNames) {
  const JsonValue doc = dmp::exp::parse_json(kReport);
  const JsonValue* by_key = dmp::exp::resolve_path(doc, "timing.threads");
  ASSERT_NE(by_key, nullptr);
  EXPECT_DOUBLE_EQ(by_key->number, 8.0);

  // All-digit segment = array index; other segments match "name" members.
  const JsonValue* by_index =
      dmp::exp::resolve_path(doc, "settings.1.metrics.f_tau4.mean");
  ASSERT_NE(by_index, nullptr);
  EXPECT_DOUBLE_EQ(by_index->number, 0.05);
  const JsonValue* by_name =
      dmp::exp::resolve_path(doc, "settings.2-2.metrics.f_tau4.mean");
  ASSERT_NE(by_name, nullptr);
  EXPECT_DOUBLE_EQ(by_name->number, 0.05);
  EXPECT_NE(dmp::exp::resolve_path(doc, "divergence.fig4.stats.diverged"),
            nullptr);

  EXPECT_EQ(dmp::exp::resolve_path(doc, "settings.9-9.metrics"), nullptr);
  EXPECT_EQ(dmp::exp::resolve_path(doc, "timing.threads.deeper"), nullptr);
  EXPECT_EQ(dmp::exp::resolve_path(doc, "settings.7"), nullptr);
}

TEST(JsonParse, CsvAdapter) {
  std::istringstream in("setting,tau_s,model\n1-1,4,0.0125\nx y,6,n/a\n");
  const JsonValue table = dmp::exp::csv_to_json(in);
  const JsonValue* columns = table.find("columns");
  ASSERT_NE(columns, nullptr);
  EXPECT_EQ(columns->array.size(), 3u);
  const JsonValue* rows = table.find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->array.size(), 2u);
  EXPECT_TRUE(rows->array[0].find("tau_s")->is_number());
  EXPECT_EQ(rows->array[0].find("tau_s")->text, "4");
  EXPECT_EQ(rows->array[1].find("model")->text, "n/a");  // stays a string

  std::istringstream bad("a,b\n1\n");
  EXPECT_THROW(dmp::exp::csv_to_json(bad), std::runtime_error);
  std::istringstream empty("");
  EXPECT_THROW(dmp::exp::csv_to_json(empty), std::runtime_error);
}

// --- structural diff ---

TEST(ReportDiff, IdenticalDocumentsProduceZeroDiffs) {
  const JsonValue left = dmp::exp::parse_json(kReport);
  const JsonValue right = dmp::exp::parse_json(kReport);
  const auto result = dmp::exp::diff_reports(left, right);
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(result.diffs.size(), 0u);
  EXPECT_EQ(result.diverged(), 0u);
  EXPECT_GT(result.fields_compared, 0u);
  EXPECT_EQ(result.identical, result.fields_compared);
}

TEST(ReportDiff, NumericDivergenceAndTolerance) {
  const JsonValue left = dmp::exp::parse_json(R"({"a": 1.0, "b": 2.0})");
  const JsonValue right = dmp::exp::parse_json(R"({"a": 1.0, "b": 2.5})");
  const auto strict = dmp::exp::diff_reports(left, right);
  EXPECT_FALSE(strict.clean());
  ASSERT_EQ(strict.diffs.size(), 1u);
  EXPECT_EQ(strict.diffs[0].path, "b");
  EXPECT_EQ(strict.diffs[0].cls, DiffClass::kDiverged);
  EXPECT_DOUBLE_EQ(strict.diffs[0].abs_delta, 0.5);

  DiffOptions tolerant;
  tolerant.abs_tol = 0.5;
  const auto result = dmp::exp::diff_reports(left, right, tolerant);
  EXPECT_TRUE(result.clean());  // within tolerance does not break cleanliness
  EXPECT_EQ(result.within_tolerance, 1u);
}

TEST(ReportDiff, SameValueDifferentSpellingIsIdentical) {
  // 2.0 vs 2.00 — equal doubles, different bytes.
  const JsonValue left = dmp::exp::parse_json(R"({"a": 2.0})");
  const JsonValue right = dmp::exp::parse_json(R"({"a": 2.00})");
  const auto result = dmp::exp::diff_reports(left, right);
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(result.identical, 1u);
}

TEST(ReportDiff, StructuralClasses) {
  const JsonValue left =
      dmp::exp::parse_json(R"({"only_l": 1, "both": 2, "kind": 3})");
  const JsonValue right =
      dmp::exp::parse_json(R"({"both": 2, "kind": "3", "only_r": 4})");
  const auto result = dmp::exp::diff_reports(left, right);
  EXPECT_FALSE(result.clean());
  std::size_t only_left = 0, only_right = 0, mismatch = 0;
  for (const auto& d : result.diffs) {
    only_left += d.cls == DiffClass::kOnlyLeft;
    only_right += d.cls == DiffClass::kOnlyRight;
    mismatch += d.cls == DiffClass::kTypeMismatch;
  }
  EXPECT_EQ(only_left, 1u);
  EXPECT_EQ(only_right, 1u);
  EXPECT_EQ(mismatch, 1u);
}

TEST(ReportDiff, IgnorePrefixAndNamedArrayPaths) {
  const JsonValue left = dmp::exp::parse_json(kReport);
  JsonValue right = dmp::exp::parse_json(kReport);
  // Perturb timing (to be ignored) and one named setting's metric.
  right.object[1].second.object[0].second.number = 9.0;
  right.object[1].second.object[0].second.text = "9.0";
  JsonValue& mean = right.object[2]
                        .second.array[1]  // settings[1] = "2-2"
                        .object[1]
                        .second.array[0]  // metrics[0] = f_tau4
                        .object[1]
                        .second;  // mean
  mean.number = 0.06;
  mean.text = "0.06";

  DiffOptions options;
  options.ignore = {"timing"};
  const auto result = dmp::exp::diff_reports(left, right, options);
  ASSERT_EQ(result.diffs.size(), 1u);
  EXPECT_EQ(result.diffs[0].path, "settings.2-2.metrics.f_tau4.mean");
  EXPECT_EQ(result.diffs[0].cls, DiffClass::kDiverged);
}

// --- SLO engine ---

TEST(Slo, ParsesRulesCommentsAndBlanks) {
  const SloSpec spec = SloSpec::parse(
      "# gate\n"
      "\n"
      "report.experiment == 'fig4'\n"
      "timing.threads >= 1\n"
      "divergence.fig4.stats.diverged == 0\n"
      "flag != true\n");
  ASSERT_EQ(spec.rules.size(), 4u);
  EXPECT_EQ(spec.rules[0].op, SloOp::kEq);
  EXPECT_EQ(spec.rules[0].value_kind, dmp::exp::SloRule::ValueKind::kString);
  EXPECT_EQ(spec.rules[0].text, "fig4");
  EXPECT_EQ(spec.rules[1].op, SloOp::kGe);
  EXPECT_EQ(spec.rules[3].value_kind, dmp::exp::SloRule::ValueKind::kBool);
  EXPECT_EQ(spec.rules[0].line, 3);
}

TEST(Slo, ParseOrThrow) {
  EXPECT_THROW(SloSpec::parse("a.b ~= 3\n"), std::invalid_argument);
  EXPECT_THROW(SloSpec::parse("a.b <\n"), std::invalid_argument);
  EXPECT_THROW(SloSpec::parse("a.b < notanumber\n"), std::invalid_argument);
  EXPECT_THROW(SloSpec::parse("< 3\n"), std::invalid_argument);
  // Ordering comparisons only make sense for numbers.
  EXPECT_THROW(SloSpec::parse("a.b < 'str'\n"), std::invalid_argument);
  EXPECT_THROW(SloSpec::parse("a.b >= true\n"), std::invalid_argument);
  EXPECT_THROW(SloSpec::parse_file("no/such/spec.slo"),
               std::invalid_argument);
  // The offending line number is named.
  try {
    SloSpec::parse("ok == 1\nbroken ~ 2\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("2"), std::string::npos);
  }
}

TEST(Slo, EvaluatesAgainstDocumentsInOrder) {
  const JsonValue report = dmp::exp::parse_json(kReport);
  const JsonValue extra =
      dmp::exp::parse_json(R"({"bonus": {"value": 41}})");
  const SloSpec spec = SloSpec::parse(
      "experiment == 'fig4'\n"
      "timing.wall_s < 100\n"
      "settings.2-2.metrics.f_tau4.mean <= 0.05\n"
      "divergence.fig4.stats.diverged == 0\n"
      "bonus.value > 40\n");  // only in the second document
  const auto result = dmp::exp::evaluate_slo(spec, {&report, &extra});
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.results.size(), 5u);
  for (const auto& r : result.results) EXPECT_TRUE(r.passed) << r.message;
}

TEST(Slo, ViolationsAndMissingFields) {
  const JsonValue report = dmp::exp::parse_json(kReport);
  const SloSpec spec = SloSpec::parse(
      "timing.threads == 9\n"       // wrong value
      "experiment == 'fig9'\n"      // wrong string
      "no.such.field < 1\n");       // missing = violation, not skip
  const auto result = dmp::exp::evaluate_slo(spec, {&report});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.violations, 3u);
  EXPECT_EQ(result.results[2].actual, "<missing>");
}

TEST(Slo, EmptySpecPassesTrivially) {
  const JsonValue report = dmp::exp::parse_json(kReport);
  const SloSpec spec = SloSpec::parse("# nothing but comments\n\n");
  EXPECT_TRUE(spec.empty());
  EXPECT_TRUE(dmp::exp::evaluate_slo(spec, {&report}).ok());
}

}  // namespace
