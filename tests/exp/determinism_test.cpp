// Determinism contract of the experiment engine:
//   * one SessionConfig + seed -> bit-identical StreamTrace and
//     PathMeasurements, run after run;
//   * the ExperimentRunner's aggregate report is byte-identical at any
//     worker-thread count;
//   * replication exceptions are captured per outcome, in order;
//   * map()/run_ordered() deliver results in index order.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/plan.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "stream/session.hpp"

namespace dmp::exp {
namespace {

SessionConfig quick_config(StreamScheme scheme = StreamScheme::kDmp) {
  SessionConfig config;
  config.path_configs = {table1_config(2), table1_config(2)};
  config.num_flows = 2;
  config.mu_pps = 50.0;
  config.duration_s = 20.0;
  config.warmup_s = 5.0;
  config.drain_s = 10.0;
  config.scheme = scheme;
  return config;
}

TEST(Determinism, IdenticalConfigAndSeedGiveIdenticalResults) {
  auto config = quick_config();
  config.seed = 12345;
  const auto a = run_session(config);
  const auto b = run_session(config);

  ASSERT_EQ(a.trace.entries().size(), b.trace.entries().size());
  ASSERT_GT(a.trace.entries().size(), 0u);
  for (std::size_t i = 0; i < a.trace.entries().size(); ++i) {
    EXPECT_EQ(a.trace.entries()[i].packet_number,
              b.trace.entries()[i].packet_number);
    EXPECT_EQ(a.trace.entries()[i].arrived.ns(),
              b.trace.entries()[i].arrived.ns());
    EXPECT_EQ(a.trace.entries()[i].path, b.trace.entries()[i].path);
  }
  EXPECT_EQ(a.packets_generated, b.packets_generated);
  EXPECT_EQ(a.events_executed, b.events_executed);
  ASSERT_EQ(a.paths.size(), b.paths.size());
  for (std::size_t k = 0; k < a.paths.size(); ++k) {
    EXPECT_EQ(a.paths[k].loss_rate, b.paths[k].loss_rate);
    EXPECT_EQ(a.paths[k].rtt_s, b.paths[k].rtt_s);
    EXPECT_EQ(a.paths[k].to_ratio, b.paths[k].to_ratio);
    EXPECT_EQ(a.paths[k].share, b.paths[k].share);
  }
}

TEST(Determinism, DifferentSeedsGiveDifferentTraces) {
  auto config = quick_config();
  config.seed = 1;
  const auto a = run_session(config);
  config.seed = 2;
  const auto b = run_session(config);
  bool differs = a.trace.entries().size() != b.trace.entries().size();
  if (!differs) {
    for (std::size_t i = 0; i < a.trace.entries().size(); ++i) {
      if (a.trace.entries()[i].arrived.ns() !=
          b.trace.entries()[i].arrived.ns()) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

ExperimentPlan small_plan() {
  ExperimentPlan plan;
  plan.name = "determinism_test";
  plan.seed = 777;
  plan.replications = 3;
  plan.settings.push_back({"dmp", quick_config(StreamScheme::kDmp)});
  plan.settings.push_back({"static", quick_config(StreamScheme::kStatic)});
  return plan;
}

TEST(Determinism, AggregateReportIsThreadCountInvariant) {
  const auto plan = small_plan();
  const auto serial = ExperimentRunner(1).run(plan);
  const auto parallel = ExperimentRunner(4).run(plan);
  EXPECT_EQ(serial.aggregate_json(), parallel.aggregate_json());
  // Sanity: the report actually carries data.
  ASSERT_EQ(serial.settings.size(), 2u);
  EXPECT_EQ(serial.settings[0].seeds.size(), 3u);
  EXPECT_FALSE(serial.settings[0].metrics.empty());
  EXPECT_GT(serial.aggregate_json().size(), 100u);
}

TEST(Determinism, ReplicationSeedsAreDisjointAcrossSettingsAndReps) {
  const auto plan = small_plan();
  const auto report = ExperimentRunner(2).run(plan);
  std::vector<std::uint64_t> seeds;
  for (const auto& setting : report.settings) {
    for (std::uint64_t seed : setting.seeds) seeds.push_back(seed);
  }
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    for (std::size_t j = i + 1; j < seeds.size(); ++j) {
      EXPECT_NE(seeds[i], seeds[j]);
    }
  }
  // And they follow the documented derivation.
  EXPECT_EQ(report.settings[0].seeds[2], replication_seed(plan.seed, 0, 2));
  EXPECT_EQ(report.settings[1].seeds[0], replication_seed(plan.seed, 1, 0));
}

TEST(Determinism, ReplicationExceptionsAreCapturedPerOutcome) {
  ExperimentPlan plan;
  plan.name = "failure_capture";
  plan.seed = 5;
  plan.replications = 2;
  plan.settings.push_back({"ok", quick_config()});
  // Static scheme with a 3-entry weight vector over 2 senders throws
  // std::invalid_argument inside run_session.
  auto bad = quick_config(StreamScheme::kStatic);
  bad.static_weights = {1.0, 1.0, 1.0};
  plan.settings.push_back({"bad", bad});

  std::vector<std::string> errors;
  const auto report = ExperimentRunner(3).run(
      plan, [&](std::size_t, std::size_t, const ReplicationOutcome& outcome) {
        errors.push_back(outcome.error);
      });
  ASSERT_EQ(errors.size(), 4u);
  EXPECT_TRUE(errors[0].empty());
  EXPECT_TRUE(errors[1].empty());
  EXPECT_NE(errors[2].find("weights"), std::string::npos);
  EXPECT_NE(errors[3].find("weights"), std::string::npos);
  // Failures land in the report (and its JSON), successes do not.
  EXPECT_EQ(report.settings[0].failures[0], "");
  EXPECT_NE(report.settings[1].failures[0], "");
  EXPECT_NE(report.aggregate_json().find("weights"), std::string::npos);
  // The failing setting has no metric samples; the good one has one per
  // replication.
  EXPECT_TRUE(report.settings[1].metrics.empty());
  ASSERT_FALSE(report.settings[0].metrics.empty());
  EXPECT_EQ(report.settings[0].metrics[0].samples.size(), 2u);
}

TEST(RunOrdered, ConsumesInIndexOrderAtAnyThreadCount) {
  for (std::size_t threads : {1u, 2u, 7u}) {
    const ExperimentRunner runner(threads);
    std::vector<std::size_t> order;
    runner.run_ordered(
        25, [](std::size_t i) { return i * i; },
        [&](std::size_t i, std::size_t value) {
          EXPECT_EQ(value, i * i);
          order.push_back(i);
        });
    ASSERT_EQ(order.size(), 25u);
    for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  }
}

TEST(RunOrdered, MapReturnsResultsInIndexOrder) {
  const auto values = ExperimentRunner(4).map(
      50, [](std::size_t i) { return static_cast<int>(i) * 3; });
  ASSERT_EQ(values.size(), 50u);
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], static_cast<int>(i) * 3);
  }
}

TEST(RunOrdered, ProducerExceptionPropagatesToCaller) {
  const ExperimentRunner runner(3);
  EXPECT_THROW(
      runner.run_ordered(
          10,
          [](std::size_t i) -> int {
            if (i == 4) throw std::runtime_error{"boom"};
            return 0;
          },
          [](std::size_t, int) {}),
      std::runtime_error);
}

TEST(RunOrdered, AllIndicesProducedExactlyOnce) {
  std::atomic<int> produced{0};
  std::vector<int> counts(200, 0);
  ExperimentRunner(8).run_ordered(
      200,
      [&](std::size_t i) {
        produced.fetch_add(1);
        return i;
      },
      [&](std::size_t, std::size_t i) { ++counts[i]; });
  EXPECT_EQ(produced.load(), 200);
  for (int c : counts) EXPECT_EQ(c, 1);
}

}  // namespace
}  // namespace dmp::exp
