// Fault x AQM composition: injected faults (link_down / burst_loss /
// rescale) must stay disjoint from the queue discipline's congestion
// accounting on every discipline, faulted AQM sessions must keep the
// experiment engine's determinism contract (thread-count invariant
// aggregates), and an explicit qdisc="droptail" must be byte-identical to
// the default configuration.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exp/plan.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "net/link.hpp"
#include "net/qdisc/queue_discipline.hpp"
#include "sim/scheduler.hpp"
#include "stream/session.hpp"

namespace dmp {
namespace {

// 1.2 Mbps = 100 data packets/s drain; buffer 0 = unbounded so every
// discard in these tests is attributable to exactly one cause.
LinkConfig aqm_config(const std::string& spec, std::uint64_t seed) {
  LinkConfig config;
  config.bandwidth_bps = 1.2e6;
  config.prop_delay = SimTime::millis(5);
  config.buffer_packets = 0;
  config.qdisc = QdiscSpec::parse(spec);
  config.qdisc.seed = seed;
  return config;
}

void offer(Scheduler& sched, Link& link, int packets, SimTime spacing) {
  for (int i = 0; i < packets; ++i) {
    Packet p;
    p.flow = 1;
    p.seq = i;
    p.size_bytes = kDataPacketBytes;
    sched.schedule_at(spacing * i, [&link, p] { link.send(p); });
  }
}

TEST(FaultAqm, LinkDownDropsBypassTheQdiscEntirely) {
  Scheduler sched;
  Link link(sched, aqm_config("pie", 7));
  std::uint64_t delivered = 0;
  link.set_receiver([&](const Packet&) { ++delivered; });
  link.set_down(true);
  offer(sched, link, 50, SimTime::millis(1));
  sched.run();

  EXPECT_EQ(link.fault_drops(), 50u);
  EXPECT_EQ(link.total_arrivals(), 50u);
  // The discipline never saw a packet: no congestion drops of any reason.
  EXPECT_EQ(link.total_drops(), 0u);
  EXPECT_EQ(link.qdisc_counters().early_drops, 0u);
  EXPECT_EQ(link.qdisc_counters().overlimit_drops, 0u);
  EXPECT_EQ(link.queue_length(), 0u);
  EXPECT_EQ(delivered, 0u);
}

TEST(FaultAqm, BurstLossConsumesArrivalsBeforeTheQdisc) {
  Scheduler sched;
  Link link(sched, aqm_config("codel", 0));
  std::uint64_t delivered = 0;
  link.set_receiver([&](const Packet&) { ++delivered; });
  link.drop_next(5);
  // 100 ms spacing = exactly the drain rate: the 95 surviving packets all
  // sojourn ~0, so CoDel never drops either.
  offer(sched, link, 100, SimTime::millis(100));
  sched.run();

  EXPECT_EQ(link.fault_drops(), 5u);
  EXPECT_EQ(link.burst_remaining(), 0u);
  EXPECT_EQ(link.total_drops(), 0u);
  EXPECT_EQ(delivered, 95u);
}

TEST(FaultAqm, FaultAndCongestionDropsStayDisjointUnderOverload) {
  // PIE under 4x overload with a mid-run outage window: every offered
  // packet is accounted exactly once across {delivered, fault drop,
  // qdisc drop, still queued}, and both drop classes are non-zero.
  Scheduler sched;
  Link link(sched, aqm_config("pie", 21));
  std::uint64_t delivered = 0;
  link.set_receiver([&](const Packet&) { ++delivered; });
  constexpr int kPackets = 4000;
  offer(sched, link, kPackets, SimTime::millis(2));  // 500 pps vs 100 pps
  sched.schedule_at(SimTime::millis(2000), [&link] { link.set_down(true); });
  sched.schedule_at(SimTime::millis(3000), [&link] { link.set_down(false); });
  sched.run();

  EXPECT_EQ(link.total_arrivals(), static_cast<std::uint64_t>(kPackets));
  EXPECT_GT(link.fault_drops(), 0u);
  EXPECT_GT(link.qdisc_counters().early_drops, 0u);
  // Unbounded buffer: every congestion drop is an AQM early drop.
  EXPECT_EQ(link.total_drops(), link.qdisc_counters().early_drops);
  EXPECT_EQ(delivered + link.total_drops() + link.fault_drops() +
                link.queue_length(),
            static_cast<std::uint64_t>(kPackets));
}

TEST(FaultAqm, RescaleComposesWithEveryDiscipline) {
  // Halving the bandwidth mid-run must not break the accounting identity
  // on any discipline (PIE re-reads the drain rate; CoDel and droptail
  // only see the slower transmitter).
  for (const char* spec : {"droptail", "pie", "fq_pie", "codel"}) {
    Scheduler sched;
    Link link(sched, aqm_config(spec, 3));
    std::uint64_t delivered = 0;
    link.set_receiver([&](const Packet&) { ++delivered; });
    offer(sched, link, 600, SimTime::millis(8));  // 125 pps vs 100 pps
    sched.schedule_at(SimTime::millis(1200),
                      [&link] { link.rescale(0.5, 1.0); });
    sched.run();
    EXPECT_EQ(delivered + link.total_drops() + link.queue_length(), 600u)
        << spec;
    EXPECT_EQ(link.fault_drops(), 0u) << spec;
  }
}

// Table-1 config 2 carries a heavy background flood, so a short DMP
// session over PIE bottlenecks reliably sees controller drops.
SessionConfig pie_session(const std::string& faults) {
  SessionConfig config;
  config.path_configs = {table1_config(2), table1_config(2)};
  config.num_flows = 2;
  config.mu_pps = 50.0;
  config.duration_s = 20.0;
  config.warmup_s = 5.0;
  config.drain_s = 10.0;
  config.seed = 909;
  config.qdisc = "pie";
  config.faults = faults;
  return config;
}

TEST(FaultAqm, FaultedPieSessionFiresFaultsAndCountsEarlyDrops) {
  const auto result =
      run_session(pie_session("8 link_down path0; 11 link_up path0"));
  EXPECT_EQ(result.fault_events_fired, 2u);
  ASSERT_EQ(result.paths.size(), 2u);
  // Table-1 config 2's flood keeps PIE's controller busy on both paths;
  // the outage must not zero the survivor's controller either.
  std::uint64_t early = 0;
  for (const auto& path : result.paths) early += path.aqm_early_drops;
  EXPECT_GT(early, 0u);
  EXPECT_GT(result.trace.entries().size(), 0u);
}

TEST(FaultAqm, EveryQdiscRunsUnderFaultsWithExactAccounting) {
  for (const char* spec : {"droptail", "pie", "fq_pie", "codel"}) {
    auto config = pie_session("6 burst_loss path1 40");
    config.qdisc = spec;
    const auto result = run_session(config);
    EXPECT_EQ(result.fault_events_fired, 1u) << spec;
    ASSERT_EQ(result.paths.size(), 2u) << spec;
    std::uint64_t early = 0;
    for (const auto& path : result.paths) early += path.aqm_early_drops;
    if (std::string(spec) == "droptail") {
      EXPECT_EQ(early, 0u) << "droptail must never record AQM drops";
    } else {
      EXPECT_GT(early, 0u) << spec;
    }
    EXPECT_GT(result.trace.entries().size(), 0u) << spec;
  }
}

TEST(FaultAqm, AggregateReportThreadInvariantUnderPieWithFaults) {
  exp::ExperimentPlan plan;
  plan.name = "aqm_fault_determinism";
  plan.seed = 404;
  plan.replications = 2;
  plan.settings.push_back(
      {"pie_blackhole", pie_session("8 link_down path0; 11 link_up path0")});
  auto codel = pie_session("");
  codel.qdisc = "codel";
  plan.settings.push_back({"codel_clean", codel});

  const auto serial = exp::ExperimentRunner(1).run(plan);
  const auto parallel = exp::ExperimentRunner(8).run(plan);
  EXPECT_EQ(serial.aggregate_json(), parallel.aggregate_json());
  ASSERT_EQ(serial.settings.size(), 2u);
  EXPECT_FALSE(serial.settings[0].metrics.empty());
}

TEST(FaultAqm, ExplicitDroptailIsByteIdenticalToDefault) {
  auto config = pie_session("");
  config.qdisc = "droptail";
  const auto explicit_dt = run_session(config);
  SessionConfig defaulted = config;
  defaulted.qdisc = SessionConfig{}.qdisc;  // whatever the default spells
  const auto implicit_dt = run_session(defaulted);

  EXPECT_EQ(explicit_dt.events_executed, implicit_dt.events_executed);
  ASSERT_EQ(explicit_dt.trace.entries().size(),
            implicit_dt.trace.entries().size());
  ASSERT_GT(explicit_dt.trace.entries().size(), 0u);
  for (std::size_t i = 0; i < explicit_dt.trace.entries().size(); ++i) {
    EXPECT_EQ(explicit_dt.trace.entries()[i].arrived.ns(),
              implicit_dt.trace.entries()[i].arrived.ns());
    EXPECT_EQ(explicit_dt.trace.entries()[i].path,
              implicit_dt.trace.entries()[i].path);
  }
  ASSERT_EQ(explicit_dt.paths.size(), implicit_dt.paths.size());
  for (std::size_t k = 0; k < explicit_dt.paths.size(); ++k) {
    EXPECT_EQ(explicit_dt.paths[k].loss_rate, implicit_dt.paths[k].loss_rate);
    EXPECT_EQ(explicit_dt.paths[k].aqm_early_drops, 0u);
  }
}

}  // namespace
}  // namespace dmp
