// Differential robustness: the paper's Section 5.3/7 claim that DMP rides
// out a single-path outage (survivors absorb the reclaimed load) while
// single-path streaming pays for the whole outage in lateness — plus the
// fault layer's determinism contract (same faulted config + seed -> same
// trace; aggregate reports thread-count invariant; an empty plan leaves
// the run untouched).
#include <gtest/gtest.h>

#include <string>

#include "exp/plan.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "stream/session.hpp"

namespace dmp {
namespace {

// Table-1 config 4 is the lightest background (5 FTP / 20 HTTP, 5 Mbps),
// so one video flow can comfortably carry ~30 pkts/s and a two-path DMP
// session has real headroom when one path dies.
SessionConfig blackhole_config(std::size_t num_paths, const std::string& faults) {
  SessionConfig config;
  config.path_configs.assign(num_paths, table1_config(4));
  config.num_flows = num_paths;
  config.scheme = StreamScheme::kDmp;
  config.mu_pps = 30.0;
  config.duration_s = 40.0;
  config.warmup_s = 10.0;
  config.drain_s = 30.0;
  config.seed = 4242;
  config.faults = faults;
  return config;
}

// 5-second blackhole of path0 starting mid-stream.
constexpr const char* kBlackhole = "10 link_down path0; 15 link_up path0";

double late_fraction(const SessionResult& result, double tau_s) {
  return result.trace.late_fraction_playback_order(tau_s,
                                                   result.packets_generated);
}

TEST(Failover, DmpSurvivesBlackholeSinglePathDoesNot) {
  const auto dmp = run_session(blackhole_config(2, kBlackhole));
  const auto single = run_session(blackhole_config(1, kBlackhole));
  EXPECT_EQ(dmp.fault_events_fired, 2u);
  EXPECT_EQ(single.fault_events_fired, 2u);

  const double dmp_late = late_fraction(dmp, 4.0);
  const double single_late = late_fraction(single, 4.0);
  // DMP reclaims the dead sender's unsent share and the surviving path
  // absorbs it: lateness stays bounded.  The single-path session has
  // nowhere to shift load — it stalls on RTO backoff for the full outage,
  // so at least ~outage * mu packets (12.5% of the stream) miss a 4 s
  // deadline.
  EXPECT_LT(dmp_late, 0.05) << "DMP late fraction with one path down";
  EXPECT_GT(single_late, 0.10) << "single path must pay for the outage";
  EXPECT_LT(dmp_late, single_late);
}

TEST(Failover, FaultedRunIsDeterministic) {
  const auto config = blackhole_config(2, kBlackhole);
  const auto a = run_session(config);
  const auto b = run_session(config);
  EXPECT_EQ(a.fault_events_fired, 2u);
  EXPECT_EQ(a.events_executed, b.events_executed);
  ASSERT_EQ(a.trace.entries().size(), b.trace.entries().size());
  ASSERT_GT(a.trace.entries().size(), 0u);
  for (std::size_t i = 0; i < a.trace.entries().size(); ++i) {
    EXPECT_EQ(a.trace.entries()[i].packet_number,
              b.trace.entries()[i].packet_number);
    EXPECT_EQ(a.trace.entries()[i].arrived.ns(),
              b.trace.entries()[i].arrived.ns());
    EXPECT_EQ(a.trace.entries()[i].path, b.trace.entries()[i].path);
  }
}

TEST(Failover, EmptyPlanLeavesRunUntouched) {
  // A whitespace/semicolon-only spec parses to an empty plan, which must
  // construct no injector and schedule nothing: the run is identical to
  // the default (no-fault) configuration, event for event.
  auto config = blackhole_config(2, "");
  const auto baseline = run_session(config);
  config.faults = "  ;  ;; ";
  const auto blank = run_session(config);
  EXPECT_EQ(baseline.fault_events_fired, 0u);
  EXPECT_EQ(blank.fault_events_fired, 0u);
  EXPECT_EQ(baseline.events_executed, blank.events_executed);
  ASSERT_EQ(baseline.trace.entries().size(), blank.trace.entries().size());
  for (std::size_t i = 0; i < baseline.trace.entries().size(); ++i) {
    EXPECT_EQ(baseline.trace.entries()[i].arrived.ns(),
              blank.trace.entries()[i].arrived.ns());
  }
}

TEST(Failover, AggregateReportThreadInvariantWithFaults) {
  exp::ExperimentPlan plan;
  plan.name = "faulted_determinism";
  plan.seed = 99;
  plan.replications = 2;
  auto faulted = blackhole_config(2, kBlackhole);
  faulted.duration_s = 25.0;
  faulted.drain_s = 15.0;
  plan.settings.push_back({"blackhole", faulted});
  auto clean = blackhole_config(2, "");
  clean.duration_s = 25.0;
  clean.drain_s = 15.0;
  plan.settings.push_back({"clean", clean});

  const auto serial = exp::ExperimentRunner(1).run(plan);
  const auto parallel = exp::ExperimentRunner(4).run(plan);
  EXPECT_EQ(serial.aggregate_json(), parallel.aggregate_json());
  ASSERT_EQ(serial.settings.size(), 2u);
  EXPECT_FALSE(serial.settings[0].metrics.empty());
}

}  // namespace
}  // namespace dmp
