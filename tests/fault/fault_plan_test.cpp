// Fault layer unit tests: spec parsing, link fault semantics, and the
// injector's arm-time validation + schedule-driven replay.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "net/link.hpp"

namespace dmp::fault {
namespace {

TEST(FaultPlan, EmptySpecYieldsEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse("   \t ").empty());
  EXPECT_TRUE(FaultPlan::parse(" ; ;; ").empty());
}

TEST(FaultPlan, ParsesEveryKind) {
  const auto plan = FaultPlan::parse(
      "3.0 link_down path1; 8.0 link_up path1; 1.5 burst_loss path0 7; "
      "2 rescale path0 bw=0.5 delay=2; 4 conn_reset path2");
  ASSERT_EQ(plan.size(), 5u);
  // Stably sorted by time.
  EXPECT_EQ(plan.events[0].kind, FaultKind::kBurstLoss);
  EXPECT_EQ(plan.events[0].count, 7u);
  EXPECT_EQ(plan.events[0].target, "path0");
  EXPECT_EQ(plan.events[1].kind, FaultKind::kRescale);
  EXPECT_DOUBLE_EQ(plan.events[1].bw_factor, 0.5);
  EXPECT_DOUBLE_EQ(plan.events[1].delay_factor, 2.0);
  EXPECT_EQ(plan.events[2].kind, FaultKind::kLinkDown);
  EXPECT_DOUBLE_EQ(plan.events[2].t_s, 3.0);
  EXPECT_EQ(plan.events[3].kind, FaultKind::kConnReset);
  EXPECT_EQ(plan.events[3].target, "path2");
  EXPECT_EQ(plan.events[4].kind, FaultKind::kLinkUp);
}

TEST(FaultPlan, SimultaneousEventsKeepSpecOrder) {
  const auto plan =
      FaultPlan::parse("5 link_up path0; 5 link_down path1; 5 link_up path2");
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.events[0].target, "path0");
  EXPECT_EQ(plan.events[1].target, "path1");
  EXPECT_EQ(plan.events[2].target, "path2");
}

TEST(FaultPlan, ToStringRoundTrips) {
  const std::string spec =
      "1.5 burst_loss path0 7; 2 rescale path0 bw=0.5 delay=2; "
      "3 link_down path1; 8 link_up path1";
  const auto plan = FaultPlan::parse(spec);
  const auto reparsed = FaultPlan::parse(plan.to_string());
  ASSERT_EQ(reparsed.size(), plan.size());
  EXPECT_EQ(reparsed.to_string(), plan.to_string());
}

TEST(FaultPlan, RejectsMalformedEvents) {
  EXPECT_THROW(FaultPlan::parse("3 explode path0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("-1 link_down path0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("x link_down path0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("3 link_down"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("3 link_down path0 extra"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("3 burst_loss path0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("3 burst_loss path0 0"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("3 burst_loss path0 -2"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("3 rescale path0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("3 rescale path0 speed=2"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("3 rescale path0 bw=0"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("3 rescale path0 bw=nope"),
               std::invalid_argument);
}

TEST(FaultPlan, ErrorNamesTheOffendingEvent) {
  try {
    FaultPlan::parse("1 link_down path0; 3 explode path1");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("3 explode path1"),
              std::string::npos);
  }
}

TEST(FaultPlan, ParsePathIndex) {
  std::size_t index = 99;
  EXPECT_TRUE(parse_path_index("path0", &index));
  EXPECT_EQ(index, 0u);
  EXPECT_TRUE(parse_path_index("path12", &index));
  EXPECT_EQ(index, 12u);
  EXPECT_FALSE(parse_path_index("path", &index));
  EXPECT_FALSE(parse_path_index("path1x", &index));
  EXPECT_FALSE(parse_path_index("link0", &index));
  EXPECT_EQ(index, 12u) << "failed parses must not clobber the output";
}

// --- link fault semantics ---

Packet data_packet(FlowId flow, std::int64_t seq) {
  Packet p;
  p.flow = flow;
  p.seq = seq;
  p.size_bytes = kDataPacketBytes;
  return p;
}

TEST(LinkFaults, DownDropsArrivalsAndFreezesQueue) {
  Scheduler sched;
  // 1500 B at 1.2 Mbps = 10 ms serialization, 1 ms propagation.
  Link link(sched, LinkConfig{1.2e6, SimTime::millis(1), 0});
  std::vector<SimTime> deliveries;
  link.set_receiver([&](const Packet&) { deliveries.push_back(sched.now()); });

  // One on the wire, two queued, then the link goes down.
  for (int i = 0; i < 3; ++i) link.send(data_packet(1, i));
  link.set_down(true);
  // Arrivals while down are fault drops, not congestion drops.
  link.send(data_packet(1, 3));
  sched.run_until(SimTime::millis(100));
  // The in-flight transmission completed; the queue stayed frozen.
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0], SimTime::millis(11));
  EXPECT_EQ(link.queue_length(), 2u);
  EXPECT_EQ(link.fault_drops(), 1u);
  EXPECT_EQ(link.total_drops(), 0u) << "fault drops are not drop-tail drops";

  // Raising the link resumes draining the frozen queue.
  link.set_down(false);
  sched.run();
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[1], SimTime::millis(111));
  EXPECT_EQ(deliveries[2], SimTime::millis(121));
}

TEST(LinkFaults, BurstLossDropsExactlyTheNextN) {
  Scheduler sched;
  Link link(sched, LinkConfig{10e6, SimTime::millis(1), 0});
  std::vector<std::int64_t> seqs;
  link.set_receiver([&](const Packet& p) { seqs.push_back(p.seq); });
  link.drop_next(2);
  EXPECT_EQ(link.burst_remaining(), 2u);
  for (int i = 0; i < 5; ++i) link.send(data_packet(1, i));
  sched.run();
  ASSERT_EQ(seqs.size(), 3u);
  EXPECT_EQ(seqs[0], 2);
  EXPECT_EQ(link.fault_drops(), 2u);
  EXPECT_EQ(link.burst_remaining(), 0u);
}

TEST(LinkFaults, RescaleIsRelativeToBaseAndDoesNotCompound) {
  Scheduler sched;
  Link link(sched, LinkConfig{1.2e6, SimTime::millis(10), 0});
  std::vector<SimTime> deliveries;
  link.set_receiver([&](const Packet&) { deliveries.push_back(sched.now()); });

  // Halve bandwidth twice: factors are relative to the constructed config,
  // so the second call is a no-op, not a quarter.
  link.rescale(0.5, 1.0);
  link.rescale(0.5, 1.0);
  link.send(data_packet(1, 0));
  sched.run();
  // 1500 B at 0.6 Mbps = 20 ms serialization + 10 ms propagation.
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0], SimTime::millis(30));

  // Restoring factor 1 restores the constructed timing exactly.
  link.rescale(1.0, 1.0);
  deliveries.clear();
  link.send(data_packet(1, 1));
  sched.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0] - SimTime::millis(30), SimTime::millis(20));

  EXPECT_THROW(link.rescale(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(link.rescale(1.0, -2.0), std::invalid_argument);
}

// --- injector replay ---

struct RecordedCall {
  double t_s;
  std::string what;
};

TEST(FaultInjector, ReplaysThePlanAtEpochRelativeTimes) {
  Scheduler sched;
  auto plan = FaultPlan::parse(
      "1 link_down path0; 2 burst_loss path1 5; 3 rescale path1 bw=0.5; "
      "4 link_up path0");
  FaultInjector injector(sched, std::move(plan), SimTime::seconds(10.0));

  std::vector<RecordedCall> calls;
  const auto now_s = [&] { return sched.now().to_seconds(); };
  PathFaultTarget p0;
  p0.set_down = [&](bool down) {
    calls.push_back({now_s(), down ? "down0" : "up0"});
  };
  PathFaultTarget p1;
  p1.set_down = [&](bool) { calls.push_back({now_s(), "down1"}); };
  p1.burst_loss = [&](std::uint64_t n) {
    calls.push_back({now_s(), "burst1x" + std::to_string(n)});
  };
  p1.rescale = [&](double bw, double) {
    calls.push_back({now_s(), "rescale1@" + std::to_string(bw)});
  };
  injector.add_path("path0", 0, std::move(p0));
  injector.add_path("path1", 1, std::move(p1));
  injector.arm();
  EXPECT_EQ(injector.events_armed(), 4u);
  EXPECT_EQ(injector.events_fired(), 0u);

  sched.run();
  EXPECT_EQ(injector.events_fired(), 4u);
  ASSERT_EQ(calls.size(), 4u);
  EXPECT_EQ(calls[0].what, "down0");
  EXPECT_DOUBLE_EQ(calls[0].t_s, 11.0);  // epoch 10 + event time 1
  EXPECT_EQ(calls[1].what, "burst1x5");
  EXPECT_DOUBLE_EQ(calls[1].t_s, 12.0);
  EXPECT_EQ(calls[2].what, "rescale1@0.500000");
  EXPECT_EQ(calls[3].what, "up0");
  EXPECT_DOUBLE_EQ(calls[3].t_s, 14.0);
}

TEST(FaultInjector, EmptyPlanSchedulesNothing) {
  Scheduler sched;
  FaultInjector injector(sched, FaultPlan{}, SimTime::zero());
  injector.arm();
  EXPECT_EQ(injector.events_armed(), 0u);
  EXPECT_EQ(sched.events_pending(), 0u);
}

TEST(FaultInjector, ArmRejectsUnknownTargets) {
  Scheduler sched;
  FaultInjector injector(sched, FaultPlan::parse("1 link_down path7"),
                         SimTime::zero());
  PathFaultTarget target;
  target.set_down = [](bool) {};
  injector.add_path("path0", 0, std::move(target));
  EXPECT_THROW(injector.arm(), std::invalid_argument);
  EXPECT_EQ(sched.events_pending(), 0u)
      << "a rejected plan must schedule nothing";
}

TEST(FaultInjector, ArmRejectsMissingCapability) {
  Scheduler sched;
  FaultInjector injector(sched, FaultPlan::parse("1 burst_loss path0 3"),
                         SimTime::zero());
  PathFaultTarget target;
  target.set_down = [](bool) {};  // no burst_loss capability
  injector.add_path("path0", 0, std::move(target));
  EXPECT_THROW(injector.arm(), std::invalid_argument);
}

TEST(FaultInjector, ArmRejectsConnResetInSimulation) {
  Scheduler sched;
  FaultInjector injector(sched, FaultPlan::parse("1 conn_reset path0"),
                         SimTime::zero());
  PathFaultTarget target;
  target.set_down = [](bool) {};
  injector.add_path("path0", 0, std::move(target));
  EXPECT_THROW(injector.arm(), std::invalid_argument);
}

TEST(FaultInjector, LifecycleMisuseThrows) {
  Scheduler sched;
  FaultInjector injector(sched, FaultPlan{}, SimTime::zero());
  injector.arm();
  EXPECT_THROW(injector.arm(), std::logic_error);
  PathFaultTarget target;
  target.set_down = [](bool) {};
  EXPECT_THROW(injector.add_path("path0", 0, std::move(target)),
               std::logic_error);
}

}  // namespace
}  // namespace dmp::fault
