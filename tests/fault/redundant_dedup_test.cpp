// Redundant scheduling under a mid-stream blackhole: the scheme sends
// extra wire copies, the client's RedundancyFilter keeps delivery
// exactly-once, and the redundancy buys a lower late fraction than the
// paper's pull scheme over the same outage.
//
// The regime matters: redundancy rides SPARE capacity, so it pays off when
// the paths have headroom (Table-1 config 4, moderate mu — the
// bench_failover outage plan).  At saturation there is no spare window to
// ride and any copy displaces live data; docs/SCHEDULERS.md spells out
// that decision table.  These tests pin the headroom regime.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/plan.hpp"
#include "stream/session.hpp"

namespace dmp {
namespace {

// The bench_failover outage plan: 2 x Table-1 config 4 with path0 dark for
// 5 s starting at 6 s, CBR well inside the paths' fair share.
SessionConfig outage_config(const std::string& scheduler, std::uint32_t rep) {
  SessionConfig config;
  config.path_configs = {table1_config(4), table1_config(4)};
  config.num_flows = 2;
  config.mu_pps = 30.0;
  config.duration_s = 30.0;
  config.warmup_s = 5.0;
  config.drain_s = 15.0;
  config.seed = exp::replication_seed(1, 0, rep);
  config.scheduler = scheduler;
  config.faults = "6 link_down path0; 11 link_up path0";
  return config;
}

// Exactly-once: every recorded packet number appears at most once, and
// nothing outside the generated range ever reaches the trace.
void expect_exactly_once(const SessionResult& result) {
  std::vector<int> seen(static_cast<std::size_t>(result.packets_generated), 0);
  for (const auto& entry : result.trace.entries()) {
    ASSERT_GE(entry.packet_number, 0);
    ASSERT_LT(entry.packet_number, result.packets_generated);
    ++seen[static_cast<std::size_t>(entry.packet_number)];
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_LE(seen[i], 1) << "packet " << i << " recorded twice";
  }
  EXPECT_LE(result.trace.entries().size(),
            static_cast<std::size_t>(result.packets_generated));
}

TEST(RedundantDedup, ExactlyOnceDeliveryUnderBlackhole) {
  const auto result = run_session(outage_config("redundant", 0));
  ASSERT_EQ(result.packets_generated, 901);

  // The outage forced redundancy into action: copies went out (steady-state
  // idle duplicates and/or the failover re-send of the dead path's tail)
  // and at least some arrived after the original, i.e. were suppressed.
  EXPECT_GT(result.duplicates_sent, 0u);
  EXPECT_GT(result.duplicates_suppressed, 0u);
  EXPECT_EQ(result.parity_sent, 0u);

  expect_exactly_once(result);
}

TEST(RedundantDedup, RedundancyBeatsPullAcrossTheOutage) {
  // One replication is a single coin flip; aggregate a few so the
  // comparison pins the mechanism, not one lucky trajectory.
  double late_pull = 0.0;
  double late_red = 0.0;
  for (std::uint32_t rep = 0; rep < 4; ++rep) {
    const auto pull = run_session(outage_config("pull", rep));
    const auto redundant = run_session(outage_config("redundant", rep));
    late_pull += pull.trace.late_fraction_playback_order(
        4.0, pull.packets_generated);
    late_red += redundant.trace.late_fraction_playback_order(
        4.0, redundant.packets_generated);
    // And the extra wire copies stay within the scheduler's ~4% budget
    // plus the bounded failover re-send.
    const double overhead =
        static_cast<double>(redundant.packets_generated +
                            static_cast<std::int64_t>(
                                redundant.duplicates_sent)) /
        static_cast<double>(redundant.packets_generated);
    EXPECT_LE(overhead, 1.10) << "rep " << rep;
  }
  // The copies cover the dead path's stuck tail, so the mean late fraction
  // at tau = 4 s across the outage must strictly improve on pull's.
  EXPECT_LT(late_red, late_pull);
}

TEST(RedundantDedup, ParityRecoversAcrossTheOutage) {
  const auto result = run_session(outage_config("parity-4", 0));
  ASSERT_EQ(result.packets_generated, 901);
  EXPECT_GT(result.parity_sent, 0u);
  // Exactly-once still holds with parity in flight.
  expect_exactly_once(result);
}

}  // namespace
}  // namespace dmp
