// Golden-seed regression pins for the figure pipelines.  Each test runs a
// scaled-down version of a bench computation (1 replication, small budget,
// fixed seed) and compares a canonical %.17g summary string against a
// golden recorded from the current implementation.  Any change to the
// simulator core, the WAN emulator, the Monte-Carlo model, or the seed
// derivation shows up here as a byte diff — if a change is intentional,
// re-record the golden and say why in the commit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "emul/experiment.hpp"
#include "exp/plan.hpp"
#include "model/composed_chain.hpp"
#include "model/required_delay.hpp"
#include "stream/session.hpp"

namespace dmp {
namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// --- fig9 (required startup delay) at 1/8 of the bench's MC budget ---

TEST(GoldenFigures, RequiredDelayPipeline) {
  // One panel-(a) style point: homogeneous pair, p = 0.04, TO = 4,
  // mu = 50 pkts/s, RTT = 100 ms.  Same seed-stream derivation as the
  // bench (domain kModelMc, index 0 of DMP_SEED=1).
  ComposedParams params;
  TcpChainParams chain;
  chain.loss_rate = 0.04;
  chain.rtt_s = 0.1;
  chain.to_ratio = 4.0;
  chain.wmax = 20;
  chain.ack_every = 1;
  params.flows = {chain, chain};
  params.mu_pps = 50.0;

  RequiredDelayOptions options;
  options.min_consumptions = 50'000;
  options.max_consumptions = 100'000;
  options.tau_max_s = 60.0;
  options.seed = exp::mc_stream(1).at(0);

  const auto result = required_startup_delay(params, options);
  const std::string summary = "tau=" + num(result.tau_s) +
                              " feasible=" + (result.feasible ? "1" : "0") +
                              " late=" + num(result.late_at_tau);
  EXPECT_EQ(summary, "tau=6 feasible=1 late=0");
}

// --- fig7 (emulated Internet experiment + model) at 1/25 duration ---

TEST(GoldenFigures, InternetExperimentPipeline) {
  emul::InternetExperimentConfig config;
  config.paths = {emul::adsl_slow_profile(), emul::adsl_slow_profile()};
  config.mu_pps = 25.0;
  config.duration_s = 120.0;
  config.drain_s = 30.0;
  config.seed = SeedStream(1, exp::seed_domain::stream(
                                  exp::seed_domain::kEmul, 0))
                    .at(0);

  const auto result = emul::run_internet_experiment(config);
  ASSERT_EQ(result.paths.size(), 2u);
  const double fp2 = result.trace.late_fraction_playback_order(
      2.0, result.packets_generated);
  const double fa2 = result.trace.late_fraction_arrival_order(
      2.0, result.packets_generated);

  // Model late fraction from the run's own measured parameters, like the
  // bench (video-stream estimates are unbiased under Bernoulli WAN loss).
  ComposedParams model;
  model.mu_pps = config.mu_pps;
  model.tau_s = 2.0;
  for (const auto& m : result.paths) {
    TcpChainParams flow;
    flow.loss_rate = std::max(m.loss_rate, 1e-5);
    flow.rtt_s = m.rtt_s;
    flow.to_ratio = std::max(m.to_ratio, 1.0);
    flow.wmax = 20;
    model.flows.push_back(flow);
  }
  DmpModelMonteCarlo mc(model, exp::mc_stream(1, 0).at(0));
  const auto mr = mc.run(100'000, 10'000);

  const std::string summary =
      "gen=" + std::to_string(result.packets_generated) + " fp2=" + num(fp2) +
      " fa2=" + num(fa2) + " p1=" + num(result.paths[0].loss_rate) +
      " p2=" + num(result.paths[1].loss_rate) +
      " r1=" + num(result.paths[0].rtt_s) +
      " r2=" + num(result.paths[1].rtt_s) + " fm2=" + num(mr.late_fraction);
  EXPECT_EQ(summary, "gen=3000 fp2=0.037999999999999999 fa2=0.021333333333333333 p1=0.028104575163398694 p2=0.020473448496481125 r1=0.3458204606123782 r2=0.33928715546874982 fm2=0.038879999999999998");
}

// --- simulator session summary (the quantity every figure consumes) ---

TEST(GoldenFigures, SimSessionSummary) {
  SessionConfig config;
  config.path_configs = {table1_config(2), table1_config(2)};
  config.num_flows = 2;
  config.mu_pps = 50.0;
  config.duration_s = 30.0;
  config.warmup_s = 5.0;
  config.drain_s = 15.0;
  config.seed = exp::replication_seed(1, 0, 0);

  const auto result = run_session(config);
  ASSERT_EQ(result.paths.size(), 2u);
  const std::string summary =
      "gen=" + std::to_string(result.packets_generated) +
      " delivered=" + std::to_string(result.trace.entries().size()) +
      " f4=" + num(result.trace.late_fraction_playback_order(
                   4.0, result.packets_generated)) +
      " p1=" + num(result.paths[0].loss_rate) +
      " p2=" + num(result.paths[1].loss_rate) +
      " share1=" + num(result.paths[0].share);
  EXPECT_EQ(summary, "gen=1500 delivered=1500 f4=0 p1=0.02732919254658385 p2=0.038770053475935831 share1=0.52200000000000002");
}

TEST(GoldenFigures, SimSessionSummaryWithExplicitDroptail) {
  // The qdisc layer's byte-identity contract: spelling out the default
  // discipline reproduces the exact golden above, digit for digit.
  SessionConfig config;
  config.path_configs = {table1_config(2), table1_config(2)};
  config.num_flows = 2;
  config.mu_pps = 50.0;
  config.duration_s = 30.0;
  config.warmup_s = 5.0;
  config.drain_s = 15.0;
  config.seed = exp::replication_seed(1, 0, 0);
  config.qdisc = "droptail";

  const auto result = run_session(config);
  ASSERT_EQ(result.paths.size(), 2u);
  const std::string summary =
      "gen=" + std::to_string(result.packets_generated) +
      " delivered=" + std::to_string(result.trace.entries().size()) +
      " f4=" + num(result.trace.late_fraction_playback_order(
                   4.0, result.packets_generated)) +
      " p1=" + num(result.paths[0].loss_rate) +
      " p2=" + num(result.paths[1].loss_rate) +
      " share1=" + num(result.paths[0].share);
  EXPECT_EQ(summary, "gen=1500 delivered=1500 f4=0 p1=0.02732919254658385 p2=0.038770053475935831 share1=0.52200000000000002");
  EXPECT_EQ(result.paths[0].aqm_early_drops, 0u);
  EXPECT_EQ(result.paths[1].aqm_early_drops, 0u);
}

}  // namespace
}  // namespace dmp
