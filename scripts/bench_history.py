#!/usr/bin/env python3
"""Bench-history ledger: per-revision metric trends with regression flags.

Appends one JSONL entry per invocation, extracted from bench artifacts:

  * google-benchmark --benchmark_out JSON: items_per_second of every
    non-aggregate benchmark, keyed "<file-stem>/<benchmark name>";
  * experiment reports (BENCH_*.json with a "timing" block): wall_s,
    keyed "<file-stem>/wall_s".

`check` compares the newest entry against the median of a trailing window
of earlier entries and flags any rate that dropped (or wall time that
rose) by more than the threshold.  The ledger is an append-only trend
file — CI caches it across runs and uploads it as an artifact, so "when
did BM_ComposedMonteCarlo lose 20%" is a one-file question.

Usage:
  bench_history.py append LEDGER [--commit SHA] [--label TEXT] ARTIFACT...
  bench_history.py check  LEDGER [--window N] [--threshold PCT] [--strict]
  bench_history.py show   LEDGER [--metric KEY] [--last N]

Exit status: 0 ok (check: regressions only fail with --strict), 1
regression under --strict, 2 unusable ledger/artifact.
"""

import argparse
import datetime
import json
import os
import statistics
import sys


def eprint(*args):
    print(*args, file=sys.stderr)


def artifact_metrics(path):
    """Extracts {metric_key: value} from one artifact; {} if none apply."""
    stem = os.path.splitext(os.path.basename(path))[0]
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    metrics = {}
    if isinstance(doc, dict) and isinstance(doc.get("benchmarks"), list):
        for bench in doc["benchmarks"]:
            # Skip repetition aggregates (mean/median/stddev rows).
            if bench.get("run_type") == "aggregate":
                continue
            rate = bench.get("items_per_second")
            if isinstance(rate, (int, float)):
                metrics[f"{stem}/{bench['name']}"] = float(rate)
    if isinstance(doc, dict) and isinstance(doc.get("timing"), dict):
        wall = doc["timing"].get("wall_s")
        if isinstance(wall, (int, float)):
            metrics[f"{stem}/wall_s"] = float(wall)
    return metrics


def read_ledger(path):
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError as err:
                raise SystemExit(
                    f"error: {path}:{lineno}: malformed ledger line: {err}")
    return entries


def cmd_append(args):
    metrics = {}
    for artifact in args.artifacts:
        try:
            found = artifact_metrics(artifact)
        except (OSError, json.JSONDecodeError, KeyError) as err:
            eprint(f"error: cannot read {artifact}: {err}")
            return 2
        if not found:
            eprint(f"warning: no known metrics in {artifact} (skipped)")
        metrics.update(found)
    if not metrics:
        eprint("error: no metrics extracted from any artifact")
        return 2
    entry = {
        "ts": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"),
        "commit": args.commit,
        "label": args.label,
        "metrics": metrics,
    }
    with open(args.ledger, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"appended {len(metrics)} metric(s) to {args.ledger} "
          f"({len(read_ledger(args.ledger))} entries total)")
    return 0


def is_rate(key):
    """wall_s trends down-is-good; everything else (items/s) up-is-good."""
    return not key.endswith("/wall_s")


def cmd_check(args):
    entries = read_ledger(args.ledger)
    if len(entries) < 2:
        print(f"{args.ledger}: {len(entries)} entries — nothing to compare")
        return 0
    latest = entries[-1]
    window = entries[-(args.window + 1):-1]
    regressions = []
    for key, value in sorted(latest.get("metrics", {}).items()):
        history = [e["metrics"][key] for e in window
                   if key in e.get("metrics", {})]
        if not history:
            print(f"  new    {key}: {value:.6g} (no history)")
            continue
        baseline = statistics.median(history)
        if baseline == 0:
            continue
        change = (value - baseline) / baseline * 100.0
        bad = (change < -args.threshold if is_rate(key)
               else change > args.threshold)
        marker = "REGRESS" if bad else "ok"
        print(f"  {marker:8s}{key}: {value:.6g} vs median {baseline:.6g} "
              f"over {len(history)} ({change:+.1f}%)")
        if bad:
            regressions.append(key)
    if regressions:
        eprint(f"{len(regressions)} regression(s) beyond "
               f"{args.threshold:.0f}% of the trailing-{args.window} median")
        return 1 if args.strict else 0
    print("no regressions")
    return 0


def cmd_show(args):
    entries = read_ledger(args.ledger)
    for entry in entries[-args.last:]:
        metrics = entry.get("metrics", {})
        if args.metric:
            metrics = {k: v for k, v in metrics.items() if args.metric in k}
            if not metrics:
                continue
        tag = entry.get("commit") or entry.get("label") or "-"
        print(f"{entry.get('ts', '-')} {tag}")
        for key, value in sorted(metrics.items()):
            print(f"    {key}: {value:.6g}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p_append = sub.add_parser("append", help="extract metrics and append")
    p_append.add_argument("ledger")
    p_append.add_argument("artifacts", nargs="+")
    p_append.add_argument("--commit", default="")
    p_append.add_argument("--label", default="")
    p_append.set_defaults(func=cmd_append)

    p_check = sub.add_parser("check", help="flag regressions vs trailing window")
    p_check.add_argument("ledger")
    p_check.add_argument("--window", type=int, default=5,
                         help="trailing entries to median over (default 5)")
    p_check.add_argument("--threshold", type=float, default=25.0,
                         help="flag changes beyond this percent (default 25)")
    p_check.add_argument("--strict", action="store_true",
                         help="exit 1 on regressions (default: report only)")
    p_check.set_defaults(func=cmd_check)

    p_show = sub.add_parser("show", help="print recent ledger entries")
    p_show.add_argument("ledger")
    p_show.add_argument("--metric", default="",
                        help="substring filter on metric keys")
    p_show.add_argument("--last", type=int, default=10)
    p_show.set_defaults(func=cmd_show)

    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
