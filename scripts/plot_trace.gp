# Renders per-packet views from a flight-recorder trace
# (<prefix>_trace.jsonl written by a DMP_TRACE=1 bench run or any session
# with obs.flight_recorder set).  Run from the repo root:
#
#   gnuplot -e "trace='bench_out/fig4_4-4_trace.jsonl'" scripts/plot_trace.gp
#
# Produces, next to the trace:
#   <base>_delay.png — per-packet end-to-end delay vs packet number, by path
#   <base>_cwnd.png  — per-path congestion window over time, drops marked
# Requires gnuplot >= 5 and awk (scripts/trace_extract.awk).
if (!exists("trace")) trace = "bench_out/run_trace.jsonl"
base = trace[1:strlen(trace)-6]

extract(mode) = sprintf("< awk -v mode=%s -f scripts/trace_extract.awk '%s'", \
                        mode, trace)

set terminal pngcairo size 900,600 font ",11"
set key top right
set grid

# --- generation-to-arrival delay per packet ---
set output sprintf("%s_delay.png", base)
set xlabel "packet number"
set ylabel "end-to-end delay (s)"
set title "per-packet generation-to-arrival delay (color = path)"
plot extract("delay") using 1:2:($3+1) with points pt 7 ps 0.4 lc variable \
     notitle

# --- congestion windows with drop instants ---
set output sprintf("%s_cwnd.png", base)
set xlabel "time since video epoch (s)"
set ylabel "congestion window (packets)"
set title "per-path cwnd at each transmission; drops marked at y = 1"
plot extract("cwnd") using 1:2:($3+1) with points pt 7 ps 0.3 lc variable \
       notitle, \
     extract("drops") using 1:(1.0) with points pt 4 ps 1.2 lc rgb "red" \
       title "drop-tail drop"
