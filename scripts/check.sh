#!/usr/bin/env bash
# Full correctness gate: a sanitizer (ASan+UBSan) build of the whole tree
# plus the complete ctest suite.  Run from anywhere; builds out of source.
#
#   scripts/check.sh                 # address,undefined (default)
#   DMP_SANITIZE=undefined scripts/check.sh
#   DMP_CHECK_BUILD_DIR=/tmp/b scripts/check.sh
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
sanitize="${DMP_SANITIZE:-address,undefined}"
build_dir="${DMP_CHECK_BUILD_DIR:-${repo_root}/build-sanitize}"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== configure (sanitizers: ${sanitize}) =="
cmake -B "${build_dir}" -S "${repo_root}" -DDMP_SANITIZE="${sanitize}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== build =="
cmake --build "${build_dir}" -j "${jobs}"

echo "== test =="
# halt_on_error so any ASan/UBSan report fails the corresponding test.
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"

echo "== OK =="
