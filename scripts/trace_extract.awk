#!/usr/bin/awk -f
# Extracts plottable columns from a flight-recorder JSONL trace
# (<prefix>_trace.jsonl — schema in docs/OBSERVABILITY.md).  Used by
# scripts/plot_trace.gp; also handy standalone:
#
#   awk -v mode=delay -f scripts/trace_extract.awk trace.jsonl
#
# Modes (whitespace-separated columns on stdout):
#   delay: <packet> <end-to-end delay s> <path>   one row per arrival
#   cwnd:  <time s since epoch> <cwnd> <path>     one row per tcp_tx
#   drops: <time s since epoch> <hop> <path>      one row per link_drop

function num(key,    m) {
  if (match($0, "\"" key "\":-?[0-9.eE+-]+")) {
    m = substr($0, RSTART, RLENGTH)
    sub(/.*:/, "", m)
    return m + 0
  }
  return -1
}

function is(ev) { return index($0, "\"ev\":\"" ev "\"") > 0 }

is("meta") { epoch = num("epoch_ns"); next }
mode == "delay" && is("gen") { gen[num("pkt")] = num("t_ns"); next }
mode == "delay" && is("arrive") {
  p = num("pkt")
  if (p in gen) print p, (num("t_ns") - gen[p]) / 1e9, num("path")
  next
}
mode == "cwnd" && is("tcp_tx") {
  print (num("t_ns") - epoch) / 1e9, num("cwnd"), num("path")
  next
}
mode == "drops" && is("link_drop") {
  print (num("t_ns") - epoch) / 1e9, num("hop"), num("path")
  next
}
