# Renders the paper's figures from the bench CSVs.
#   gnuplot -e "outdir='bench_out'" scripts/plot_figures.gp
# Produces PNG files next to the CSVs.  Requires gnuplot >= 5.
if (!exists("outdir")) outdir = "bench_out"
set datafile separator ","
set terminal pngcairo size 900,600 font ",11"
set key top right
set grid

# Fig. 4(b) / 5(b): late fraction vs startup delay, sim vs model
do for [fig in "fig4 fig5"] {
  set output sprintf("%s/%sb_late_vs_tau.png", outdir, fig)
  set logscale y
  set xlabel "startup delay (s)"
  set ylabel "fraction of late packets"
  set title sprintf("%s(b): simulation vs model", fig)
  plot sprintf("%s/%sb_late_vs_tau.csv", outdir, fig) using 2:3:4 \
         with yerrorlines title "simulation (95% CI)", \
       '' using 2:5 with linespoints title "model"
  unset logscale y
}

# Fig. 7(b): model vs measurement scatter with decade lines
set output sprintf("%s/fig7b_scatter.png", outdir)
set logscale xy
set xlabel "measured late fraction"
set ylabel "model late fraction"
set title "fig7(b): Internet-experiment validation"
set xrange [1e-5:1]
set yrange [1e-5:1]
plot sprintf("%s/fig7_internet.csv", outdir) using 5:7 with points pt 7 title "experiments", \
     x with lines lc "gray" title "perfect match", \
     10*x with lines lc "gray" dt 2 title "10x band", \
     0.1*x with lines lc "gray" dt 2 notitle
unset logscale xy

# Fig. 8: diminishing gain
set output sprintf("%s/fig8_diminishing_gain.png", outdir)
set logscale y
set xlabel "startup delay (s)"
set ylabel "fraction of late packets"
set title "fig8: effect of sigma_a/mu (p=0.02, TO=4, mu=25)"
plot for [r in "1.2 1.4 1.6 1.8 2"] \
  sprintf("%s/fig8_diminishing_gain.csv", outdir) \
  using (strcol(1) eq r ? $3 : NaN):4 with linespoints title sprintf("ratio %s", r)
unset logscale y

# Fig. 10: heterogeneity scatter
set output sprintf("%s/fig10_heterogeneity.png", outdir)
set xlabel "required startup delay, homogeneous (s)"
set ylabel "required startup delay, heterogeneous (s)"
set title "fig10: insensitivity to path heterogeneity"
set xrange [0:30]
set yrange [0:30]
plot sprintf("%s/fig10_heterogeneity.csv", outdir) using 6:7 with points pt 7 title "24 settings", \
     x with lines lc "gray" title "diagonal"

# Fig. 11: DMP vs static
set output sprintf("%s/fig11_static_vs_dmp.png", outdir)
set xlabel "setting index"
set ylabel "required startup delay (s)"
set title "fig11: DMP vs static streaming"
set auto x
set auto y
set style data histograms
set style fill solid 0.6
plot sprintf("%s/fig11_static_vs_dmp.csv", outdir) using 5 title "static", \
     '' using 7 title "DMP"
