#!/usr/bin/env python3
"""Threshold guard on the composed Monte-Carlo fast path.

Reads a google-benchmark JSON report and fails CI when the alias-sampled
engine regresses:

  * absolute floor on BM_ComposedMonteCarlo/2 items/s (conservative, so a
    slow shared runner does not flake the build), and
  * a relative floor against BM_ComposedMonteCarloCompat from the same run
    (runner-speed independent: the fast path must stay meaningfully ahead
    of the historical event loop it replaced).

With --max-qdisc-overhead it additionally guards the AQM hot path: each
BM_PacketLevelSessionQdisc arm (droptail/pie/fq_pie/codel, DenseRange 0-3)
must process events within that fraction of BM_PacketLevelSessionQdisc/0
(the droptail-through-the-interface baseline) from the same run — a ratio
of two rates from one binary on one runner, so machine-speed independent.

It also guards the calendar-queue DES core on the packet-level session
bench: an absolute floor on BM_PacketLevelSession events/s (conservative
for slow shared runners; the floor corresponds to ~70% of the rate
measured on a 2.1 GHz single-core reference box) and a relative floor
against BM_PacketLevelSessionHeap from the same run — the calendar
backend must never fall behind the binary-heap backend it replaced
(runner-speed independent, a ratio of two rates from one binary).

With --obs-report it additionally guards the streaming-telemetry overhead:
BM_SessionTelemetryOn must process events within --max-obs-overhead
(default 3%) of BM_SessionTelemetryOff from the same run.  The comparison
is a ratio of two rates from one binary on one runner, so it is
machine-speed independent; the best rate across repetitions is used on
each side to damp scheduler noise.

Usage: bench_guard.py REPORT.json [--min-items-per-s N] [--min-speedup X]
                      [--obs-report OBS.json] [--max-obs-overhead F]
"""

import argparse
import json
import sys


def items_per_second(report, name):
    for bench in report.get("benchmarks", []):
        if bench.get("name") == name and bench.get("run_type") != "aggregate":
            rate = bench.get("items_per_second")
            if rate is None:
                raise SystemExit(f"{name}: no items_per_second counter")
            return float(rate)
    raise SystemExit(f"{name}: not found in report")


def best_items_per_second(report, name):
    """Max rate over non-aggregate repetitions (noise-damped)."""
    rates = [
        float(bench["items_per_second"])
        for bench in report.get("benchmarks", [])
        if bench.get("name") == name and bench.get("run_type") != "aggregate"
        and bench.get("items_per_second") is not None
    ]
    if not rates:
        raise SystemExit(f"{name}: not found in report")
    return max(rates)


def check_session_engine(report, min_events_per_s, min_vs_heap):
    """Calendar-backend session floor: absolute + relative to the heap arm."""
    failures = []
    calendar = best_items_per_second(report, "BM_PacketLevelSession")
    heap = best_items_per_second(report, "BM_PacketLevelSessionHeap")
    ratio = calendar / heap if heap > 0 else float("inf")
    print(f"BM_PacketLevelSession (calendar): {calendar / 1e6:8.2f} M events/s")
    print(f"BM_PacketLevelSessionHeap:        {heap / 1e6:8.2f} M events/s")
    print(f"calendar/heap: {ratio:.3f}x  (floors: "
          f"{min_events_per_s / 1e6:.1f}M abs, {min_vs_heap}x rel)")
    if calendar < min_events_per_s:
        failures.append(
            f"session floor violated: {calendar / 1e6:.2f}M < "
            f"{min_events_per_s / 1e6:.1f}M events/s")
    if ratio < min_vs_heap:
        failures.append(
            f"calendar backend fell behind the heap backend: "
            f"{ratio:.3f}x < {min_vs_heap}x")
    return failures


QDISC_ARMS = {1: "pie", 2: "fq_pie", 3: "codel"}


def check_qdisc_overhead(report, max_overhead):
    """AQM arms must stay within max_overhead of the droptail arm."""
    failures = []
    base = best_items_per_second(report, "BM_PacketLevelSessionQdisc/0")
    print(f"BM_PacketLevelSessionQdisc/0 (droptail): "
          f"{base / 1e6:8.2f} M events/s")
    for arm, name in sorted(QDISC_ARMS.items()):
        rate = best_items_per_second(report,
                                     f"BM_PacketLevelSessionQdisc/{arm}")
        overhead = 1.0 - rate / base if base > 0 else float("inf")
        print(f"BM_PacketLevelSessionQdisc/{arm} ({name}): "
              f"{rate / 1e6:8.2f} M events/s  "
              f"overhead {overhead * 100:.2f}%  "
              f"(floor: {max_overhead * 100:.0f}%)")
        if overhead > max_overhead:
            failures.append(
                f"{name} qdisc overhead {overhead * 100:.2f}% exceeds "
                f"{max_overhead * 100:.0f}%")
    return failures


def check_obs_overhead(path, max_overhead):
    with open(path) as fh:
        report = json.load(fh)
    off = best_items_per_second(report, "BM_SessionTelemetryOff")
    on = best_items_per_second(report, "BM_SessionTelemetryOn")
    overhead = 1.0 - on / off if off > 0 else float("inf")
    print(f"BM_SessionTelemetryOff: {off / 1e6:8.2f} M events/s")
    print(f"BM_SessionTelemetryOn:  {on / 1e6:8.2f} M events/s")
    print(f"telemetry overhead: {overhead * 100:.2f}%  "
          f"(floor: {max_overhead * 100:.0f}%)")
    if overhead > max_overhead:
        return (f"telemetry overhead {overhead * 100:.2f}% exceeds "
                f"{max_overhead * 100:.0f}%")
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report")
    parser.add_argument("--min-items-per-s", type=float, default=40e6)
    parser.add_argument("--min-speedup", type=float, default=1.3)
    parser.add_argument("--obs-report", default=None,
                        help="perf_obs_overhead JSON to guard as well")
    parser.add_argument("--max-obs-overhead", type=float, default=0.03)
    parser.add_argument("--max-qdisc-overhead", type=float, default=None,
                        help="guard BM_PacketLevelSessionQdisc arms against "
                             "the droptail arm (fraction, e.g. 0.10)")
    parser.add_argument("--min-session-events-per-s", type=float, default=6.5e6,
                        help="absolute floor on BM_PacketLevelSession "
                             "(calendar backend) events/s")
    parser.add_argument("--min-session-vs-heap", type=float, default=0.95,
                        help="BM_PacketLevelSession must reach this fraction "
                             "of BM_PacketLevelSessionHeap")
    args = parser.parse_args()

    with open(args.report) as fh:
        report = json.load(fh)

    alias = items_per_second(report, "BM_ComposedMonteCarlo/2")
    compat = items_per_second(report, "BM_ComposedMonteCarloCompat")
    speedup = alias / compat if compat > 0 else float("inf")

    print(f"BM_ComposedMonteCarlo/2:     {alias / 1e6:8.1f} M items/s")
    print(f"BM_ComposedMonteCarloCompat: {compat / 1e6:8.1f} M items/s")
    print(f"speedup: {speedup:.2f}x  (floors: "
          f"{args.min_items_per_s / 1e6:.0f}M abs, {args.min_speedup}x rel)")

    failures = check_session_engine(report, args.min_session_events_per_s,
                                    args.min_session_vs_heap)
    if alias < args.min_items_per_s:
        failures.append(
            f"absolute floor violated: {alias / 1e6:.1f}M < "
            f"{args.min_items_per_s / 1e6:.0f}M items/s")
    if speedup < args.min_speedup:
        failures.append(
            f"relative floor violated: {speedup:.2f}x < {args.min_speedup}x "
            "over the compat loop")
    if args.max_qdisc_overhead is not None:
        failures.extend(check_qdisc_overhead(report, args.max_qdisc_overhead))
    if args.obs_report:
        obs_failure = check_obs_overhead(args.obs_report,
                                         args.max_obs_overhead)
        if obs_failure:
            failures.append(obs_failure)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
