# Renders time-series plots from an observability probe CSV
# (<prefix>_probe.csv written by a DMP_OBS=1 bench run or any session with
# obs enabled).
#
#   gnuplot -e "probe='bench_out/fig4_4-4_obs_probe.csv'" scripts/plot_obs.gp
#
# Produces, next to the CSV:
#   <probe base>_cwnd.png   — per-path congestion windows vs time
#   <probe base>_queue.png  — server queue and link queue depths vs time
# Requires gnuplot >= 5 (column access by header name).
if (!exists("probe")) probe = "bench_out/run_probe.csv"
base = probe[1:strlen(probe)-4]

set datafile separator ","
set terminal pngcairo size 900,600 font ",11"
set key top right
set grid
set xlabel "time (s)"

# The probe's column set depends on path/flow counts, so discover the
# available gauges from the CSV header and build each plot command with
# by-name column references.
header = system(sprintf("head -n1 '%s'", probe))
has(name) = strstrt("," . header . ",", "," . name . ",") > 0
series(name, style, label) = \
  sprintf("'%s' using 'time_s':'%s' %s title '%s', ", probe, name, style, label)

# --- per-path cwnd ---
cmd = ""
do for [k=0:15] {
  name = sprintf("tcp.path%d.cwnd", k)
  if (has(name)) {
    cmd = cmd . series(name, "with lines lw 2", sprintf("path %d cwnd", k))
  }
}
if (strlen(cmd) > 0) {
  set output sprintf("%s_cwnd.png", base)
  set ylabel "congestion window (packets)"
  set title "per-path congestion window"
  eval("plot " . cmd[1:strlen(cmd)-2])
}

# --- server + bottleneck queues ---
cmd = ""
if (has("server.queue_depth")) {
  cmd = cmd . series("server.queue_depth", "with lines lw 2", "server queue")
}
do for [k=0:15] {
  name = sprintf("link.path%d.queue_depth", k)
  if (has(name)) {
    cmd = cmd . series(name, "with lines", sprintf("link %d queue", k))
  }
}
if (strlen(cmd) > 0) {
  set output sprintf("%s_queue.png", base)
  set ylabel "queue depth (packets)"
  set title "server and bottleneck queue depth"
  eval("plot " . cmd[1:strlen(cmd)-2])
}
