// run_diff: structural comparison of two run/experiment artifacts.
//
//   run_diff <left> <right> [--abs-tol=X] [--rel-tol=X] [--ignore=PATH,...]
//            [--max-print=N] [--quiet]
//
// Inputs are JSON reports (BENCH_*.json, obs *_report.json,
// DIVERGENCE_*.json) or CSV tables (fig CSVs, telemetry series) — the
// format is sniffed from the first non-space byte, so a thread-invariance
// gate is one line:
//
//   run_diff t1/BENCH_fig4.json t8/BENCH_fig4.json --ignore=timing
//
// Every field is classified identical / within-tolerance / diverged /
// only-left / only-right / type-mismatch.  Byte-identical inputs report
// zero diffs.  --ignore drops dotted path prefixes (default tolerance is
// zero: any numeric difference diverges unless --abs-tol/--rel-tol allow
// it).
//
// Exit status: 0 clean (identical or within tolerance), 1 diverged,
// 2 unreadable/malformed input or bad usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>

#include "exp/compare/report_diff.hpp"

namespace {

using dmp::exp::DiffClass;
using dmp::exp::DiffOptions;
using dmp::exp::DiffResult;
using dmp::exp::JsonValue;

void usage() {
  std::fprintf(stderr,
               "usage: run_diff <left> <right> [--abs-tol=X] [--rel-tol=X]\n"
               "                [--ignore=PATH,...] [--max-print=N] [--quiet]\n"
               "  inputs: JSON reports or CSV tables (format sniffed)\n"
               "  exit:   0 clean, 1 diverged, 2 bad input\n");
}

const char* flag_value(int argc, char** argv, const char* name) {
  const std::size_t len = std::strlen(name);
  for (int i = 3; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

// JSON document or CSV table, decided by the first non-space byte.
JsonValue load_artifact(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) throw std::runtime_error{"cannot open " + path};
  char c = '\0';
  while (probe.get(c) && (c == ' ' || c == '\t' || c == '\n' || c == '\r')) {
  }
  if (!probe) throw std::runtime_error{path + " is empty"};
  if (c == '{' || c == '[') return dmp::exp::parse_json_file(path);
  return dmp::exp::csv_file_to_json(path);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage();
    return 2;
  }
  DiffOptions options;
  if (const char* v = flag_value(argc, argv, "--abs-tol")) {
    options.abs_tol = std::atof(v);
  }
  if (const char* v = flag_value(argc, argv, "--rel-tol")) {
    options.rel_tol = std::atof(v);
  }
  if (const char* v = flag_value(argc, argv, "--ignore")) {
    std::string prefix;
    for (const char* p = v;; ++p) {
      if (*p == ',' || *p == '\0') {
        if (!prefix.empty()) options.ignore.push_back(prefix);
        prefix.clear();
        if (*p == '\0') break;
      } else {
        prefix += *p;
      }
    }
  }
  long long max_print = 40;
  if (const char* v = flag_value(argc, argv, "--max-print")) {
    max_print = std::atoll(v);
  }
  const bool quiet = has_flag(argc, argv, "--quiet");

  JsonValue left, right;
  try {
    left = load_artifact(argv[1]);
    right = load_artifact(argv[2]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "run_diff: error: %s\n", e.what());
    return 2;
  }

  const DiffResult result = dmp::exp::diff_reports(left, right, options);

  if (!quiet) {
    long long printed = 0;
    for (const auto& d : result.diffs) {
      if (printed++ >= max_print) {
        std::printf("... (%zu entries total; raise --max-print)\n",
                    result.diffs.size());
        break;
      }
      std::printf("%-13s %s: %s -> %s", diff_class_name(d.cls).data(),
                  d.path.c_str(), d.left.empty() ? "-" : d.left.c_str(),
                  d.right.empty() ? "-" : d.right.c_str());
      if (d.cls == DiffClass::kDiverged ||
          d.cls == DiffClass::kWithinTolerance) {
        std::printf("  (|delta| %.6g)", d.abs_delta);
      }
      std::printf("\n");
    }
  }
  std::printf("%zu field(s) compared: %zu identical, %zu within tolerance, "
              "%zu diverged\n",
              result.fields_compared, result.identical,
              result.within_tolerance, result.diverged());
  if (result.clean()) {
    std::printf("CLEAN: %s == %s%s\n", argv[1], argv[2],
                result.within_tolerance > 0 ? " (within tolerance)" : "");
    return 0;
  }
  std::printf("DIVERGED: %s != %s\n", argv[1], argv[2]);
  return 1;
}
