// trace_query: offline inspection of flight-recorder traces.
//
//   trace_query summary <trace.jsonl> [--tau=SECONDS]
//       meta, arrival totals, late fraction and the deadline-miss cause
//       breakdown at startup delay tau (default 4 s)
//   trace_query packet <trace.jsonl> <number>
//       one packet's full lifecycle timeline, station by station
//   trace_query paths <trace.jsonl>
//       per-path delivery counts, drops/retransmissions/RTOs and
//       bottleneck-queue wait percentiles
//   trace_query rtx <trace.jsonl>
//       every packet that needed more than one transmission
//   trace_query causes <trace.jsonl> [--tau=SECONDS] [--limit=N]
//       the late packets themselves with their dominant cause
//   trace_query timeline <trace.jsonl> [--telemetry=CSV] [--out=FILE]
//       [--max-packets=N]
//       Chrome trace-event JSON (Perfetto-loadable) to FILE or stdout
//   trace_query percentiles <sketches.jsonl> [--q=0.5,0.95,0.99]
//       quantiles from a run's `*_sketches.jsonl` telemetry artifact
//
// Exit status: 0 on success, 1 on bad usage, 2 on a malformed trace.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/telemetry/sketch.hpp"
#include "obs/telemetry/timeline.hpp"
#include "obs/trace_analyzer.hpp"

namespace {

using dmp::obs::AttributionReport;
using dmp::obs::FlightRecorder;
using dmp::obs::LateCause;
using dmp::obs::late_cause_name;
using dmp::obs::PacketTimeline;
using dmp::obs::rtx_reason_name;
using dmp::obs::TraceAnalyzer;

void usage() {
  std::fprintf(
      stderr,
      "usage: trace_query <summary|packet|paths|rtx|causes> <trace.jsonl> "
      "[args]\n"
      "  summary <trace> [--tau=S]          late fraction + cause breakdown\n"
      "  packet  <trace> <number>           one packet's timeline\n"
      "  paths   <trace>                    per-path stats\n"
      "  rtx     <trace>                    retransmitted packets\n"
      "  causes  <trace> [--tau=S] [--limit=N]  late packets with causes\n"
      "  timeline <trace> [--telemetry=CSV] [--out=FILE] [--max-packets=N]\n"
      "                                     Perfetto trace-event JSON\n"
      "  percentiles <sketches.jsonl> [--q=0.5,0.95,0.99]\n"
      "                                     sketch quantiles\n");
}

double parse_flag(int argc, char** argv, const char* name, double fallback) {
  const std::size_t len = std::strlen(name);
  for (int i = 3; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return std::atof(argv[i] + len + 1);
    }
  }
  return fallback;
}

const char* parse_str_flag(int argc, char** argv, const char* name) {
  const std::size_t len = std::strlen(name);
  for (int i = 3; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

// Station timestamps are absolute recorder-clock ns; print them relative
// to the generation epoch so they read as stream time.
double rel_s(const TraceAnalyzer& az, std::int64_t t_ns) {
  return static_cast<double>(t_ns - az.epoch_ns()) * 1e-9;
}

void print_attribution(const TraceAnalyzer& az, const AttributionReport& rep,
                       double tau_s) {
  std::printf("tau            %.3f s\n", tau_s);
  std::printf("total packets  %lld\n",
              static_cast<long long>(rep.total_packets));
  std::printf("arrived        %lld\n", static_cast<long long>(rep.arrived));
  std::printf("late           %lld  (fraction %.6g)\n",
              static_cast<long long>(rep.late), rep.late_fraction());
  std::printf("late by dominant cause:\n");
  for (std::size_t c = 0; c < dmp::obs::kNumLateCauses; ++c) {
    if (rep.by_cause[c] == 0) continue;
    std::printf("  %-15s %lld\n",
                std::string(late_cause_name(static_cast<LateCause>(c))).c_str(),
                static_cast<long long>(rep.by_cause[c]));
  }
  (void)az;
}

int cmd_summary(const TraceAnalyzer& az, double tau_s) {
  std::printf("mu             %.6g pkts/s\n", az.mu_pps());
  std::printf("epoch          %lld ns\n", static_cast<long long>(az.epoch_ns()));
  std::printf("packets traced %zu\n", az.timelines().size());
  print_attribution(az, az.attribute(tau_s), tau_s);
  return 0;
}

int cmd_packet(const TraceAnalyzer& az, std::int64_t number) {
  const PacketTimeline* tl = az.timeline(number);
  if (!tl) {
    std::fprintf(stderr, "packet %lld not in trace\n",
                 static_cast<long long>(number));
    return 1;
  }
  std::printf("packet %lld  path %d  transmissions %u  drops %u\n",
              static_cast<long long>(tl->packet), tl->path, tl->transmissions,
              tl->drops);
  auto station = [&](const char* name, std::int64_t t_ns) {
    if (t_ns < 0) {
      std::printf("  %-12s -\n", name);
    } else {
      std::printf("  %-12s %.9f s\n", name, rel_s(az, t_ns));
    }
  };
  station("generate", tl->gen_ns);
  station("pull", tl->pull_ns);
  station("tcp_enqueue", tl->enqueue_ns);
  for (const auto& send : tl->sends) {
    std::printf("  %-12s %.9f s  seq %lld attempt %u%s%s  cwnd %.6g "
                "ssthresh %.6g\n",
                "tcp_send", rel_s(az, send.t_ns),
                static_cast<long long>(send.seq), send.attempt,
                send.reason == dmp::obs::RtxReason::kNone ? "" : " ",
                send.reason == dmp::obs::RtxReason::kNone
                    ? ""
                    : std::string(rtx_reason_name(send.reason)).c_str(),
                send.cwnd, send.ssthresh);
  }
  for (const auto& hop : tl->hops) {
    if (hop.dropped) {
      std::printf("  %-12s %.9f s  hop %d  DROPPED\n", "link",
                  rel_s(az, hop.enqueue_ns), hop.hop);
    } else if (hop.dequeue_ns >= 0) {
      std::printf("  %-12s %.9f s  hop %d  queued %.9f s\n", "link",
                  rel_s(az, hop.enqueue_ns), hop.hop,
                  static_cast<double>(hop.dequeue_ns - hop.enqueue_ns) * 1e-9);
    } else {
      std::printf("  %-12s %.9f s  hop %d  (still queued at end)\n", "link",
                  rel_s(az, hop.enqueue_ns), hop.hop);
    }
  }
  station("sink_rx", tl->sink_rx_ns);
  station("deliver", tl->deliver_ns);
  station("arrive", tl->arrive_ns);
  std::printf("  waits: pre-tx %.9f s  link-queue %.9f s  reorder %.9f s\n",
              static_cast<double>(tl->pre_tx_wait_ns()) * 1e-9,
              static_cast<double>(tl->link_queue_wait_ns()) * 1e-9,
              static_cast<double>(tl->reorder_wait_ns()) * 1e-9);
  return 0;
}

int cmd_paths(const TraceAnalyzer& az) {
  std::printf("%5s %10s %7s %7s %6s %12s %12s %12s %12s\n", "path",
              "delivered", "drops", "rtx", "rtos", "qwait_p50_s",
              "qwait_p90_s", "qwait_p99_s", "qwait_max_s");
  for (const auto& s : az.path_stats()) {
    std::printf("%5d %10llu %7llu %7llu %6llu %12.6g %12.6g %12.6g %12.6g\n",
                s.path, static_cast<unsigned long long>(s.packets_delivered),
                static_cast<unsigned long long>(s.drops),
                static_cast<unsigned long long>(s.retransmissions),
                static_cast<unsigned long long>(s.rtos), s.queue_wait_p50_s,
                s.queue_wait_p90_s, s.queue_wait_p99_s, s.queue_wait_max_s);
  }
  return 0;
}

int cmd_rtx(const TraceAnalyzer& az) {
  const auto rtx = az.retransmitted_packets();
  std::printf("%llu retransmitted packet(s)\n",
              static_cast<unsigned long long>(rtx.size()));
  for (const PacketTimeline* tl : rtx) {
    std::printf("packet %lld  path %d  attempts %u  drops %u  reasons:",
                static_cast<long long>(tl->packet), tl->path,
                tl->transmissions, tl->drops);
    for (const auto& send : tl->sends) {
      if (send.attempt <= 1) continue;
      std::printf(" %s@%.6fs",
                  std::string(rtx_reason_name(send.reason)).c_str(),
                  rel_s(az, send.t_ns));
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_causes(const TraceAnalyzer& az, double tau_s, std::int64_t limit) {
  const auto rep = az.attribute(tau_s);
  print_attribution(az, rep, tau_s);
  std::printf("%8s %12s %12s %s\n", "packet", "deadline_s", "arrived_s",
              "cause");
  std::int64_t shown = 0;
  for (const auto& v : rep.verdicts) {
    if (limit >= 0 && shown++ >= limit) {
      std::printf("... (%zu total; raise --limit)\n", rep.verdicts.size());
      break;
    }
    std::printf("%8lld %12.6f %12.6f %s\n", static_cast<long long>(v.packet),
                static_cast<double>(v.deadline_rel_ns) * 1e-9,
                static_cast<double>(v.arrive_rel_ns) * 1e-9,
                std::string(late_cause_name(v.cause)).c_str());
  }
  return 0;
}

int cmd_timeline(const TraceAnalyzer& az, int argc, char** argv) {
  dmp::obs::TimelineOptions options;
  if (const char* csv = parse_str_flag(argc, argv, "--telemetry")) {
    options.telemetry_csv = csv;
  }
  options.max_packets = static_cast<std::int64_t>(
      parse_flag(argc, argv, "--max-packets", -1.0));
  if (const char* out = parse_str_flag(argc, argv, "--out")) {
    if (!dmp::obs::write_chrome_trace(az, out, options)) {
      std::fprintf(stderr, "error: failed to write %s\n", out);
      return 2;
    }
    std::printf("wrote %s\n", out);
    return 0;
  }
  const std::string json = dmp::obs::chrome_trace_json(az, options);
  std::fwrite(json.data(), 1, json.size(), stdout);
  std::fputc('\n', stdout);
  return 0;
}

// `percentiles` reads a `*_sketches.jsonl` artifact, not a flight trace —
// dispatched before the trace load in main().
int cmd_percentiles(const char* path, int argc, char** argv) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path);
    return 2;
  }
  std::vector<double> qs{0.5, 0.95, 0.99};
  if (const char* spec = parse_str_flag(argc, argv, "--q")) {
    qs.clear();
    for (const char* p = spec; *p != '\0';) {
      char* end = nullptr;
      const double q = std::strtod(p, &end);
      if (end == p) break;
      qs.push_back(q);
      p = *end == ',' ? end + 1 : end;
    }
    if (qs.empty()) {
      std::fprintf(stderr, "error: --q needs a comma-separated list\n");
      return 1;
    }
  }
  std::printf("%-28s %10s", "sketch", "count");
  for (double q : qs) {
    char label[16];
    std::snprintf(label, sizeof label, "p%g", q);
    std::printf(" %11s", label);
  }
  std::printf("\n");
  std::string line;
  bool any = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string name = "?";
    const auto pos = line.find("\"name\":\"");
    if (pos != std::string::npos) {
      const auto start = pos + 8;
      const auto end = line.find('"', start);
      if (end != std::string::npos) name = line.substr(start, end - start);
    }
    try {
      const auto sketch = dmp::obs::QuantileSketch::from_json(line);
      std::printf("%-28s %10llu", name.c_str(),
                  static_cast<unsigned long long>(sketch.count()));
      for (double q : qs) {
        if (sketch.count() == 0) {
          std::printf(" %11s", "-");
        } else {
          std::printf(" %11.6g", sketch.quantile(q));
        }
      }
      std::printf("\n");
      any = true;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: bad sketch line: %s\n", e.what());
      return 2;
    }
  }
  if (!any) {
    std::fprintf(stderr,
                 "error: no sketches in %s (empty or truncated artifact?)\n",
                 path);
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage();
    return 1;
  }
  const std::string cmd = argv[1];
  if (cmd == "percentiles") return cmd_percentiles(argv[2], argc, argv);
  FlightRecorder recorder;
  try {
    recorder = dmp::obs::read_flight_trace_file(argv[2]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  // A trace a recorder actually wrote always contains events; an empty
  // load means the input is not a trace (empty file, or one truncated
  // before any event survived) and an empty summary would be misleading.
  if (recorder.events().empty()) {
    std::fprintf(stderr,
                 "error: %s contains no flight-recorder events (empty or "
                 "truncated trace?)\n",
                 argv[2]);
    return 2;
  }
  const TraceAnalyzer az(recorder);
  const double tau_s = parse_flag(argc, argv, "--tau", 4.0);

  if (cmd == "summary") return cmd_summary(az, tau_s);
  if (cmd == "packet") {
    if (argc < 4) {
      usage();
      return 1;
    }
    return cmd_packet(az, std::atoll(argv[3]));
  }
  if (cmd == "paths") return cmd_paths(az);
  if (cmd == "rtx") return cmd_rtx(az);
  if (cmd == "timeline") return cmd_timeline(az, argc, argv);
  if (cmd == "causes") {
    const auto limit = static_cast<std::int64_t>(
        parse_flag(argc, argv, "--limit", 50.0));
    return cmd_causes(az, tau_s, limit);
  }
  usage();
  return 1;
}
