// slo_check: evaluate a declarative SLO spec against report artifacts.
//
//   slo_check <spec.slo> <report.json> [more-reports.json...]
//
// Each rule's dotted path is resolved against the given documents in
// order; the first document containing the field is judged.  A field
// found in no document is a violation (a gate must not silently pass by
// pointing at nothing).  The same engine runs inside every bench when
// DMP_SLO is set — this binary is the CI-side entry point for evaluating
// one checked-in spec against several artifacts at once.
//
// Exit status: 0 all rules pass, 1 violations, 2 unreadable/malformed
// spec or report.
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/compare/slo.hpp"

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: slo_check <spec.slo> <report.json> [more...]\n");
    return 2;
  }
  dmp::exp::SloSpec spec;
  try {
    spec = dmp::exp::SloSpec::parse_file(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "slo_check: %s\n", e.what());
    return 2;
  }
  std::vector<dmp::exp::JsonValue> docs;
  docs.reserve(static_cast<std::size_t>(argc - 2));
  for (int i = 2; i < argc; ++i) {
    try {
      docs.push_back(dmp::exp::parse_json_file(argv[i]));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "slo_check: %s\n", e.what());
      return 2;
    }
  }
  std::vector<const dmp::exp::JsonValue*> doc_ptrs;
  doc_ptrs.reserve(docs.size());
  for (const auto& d : docs) doc_ptrs.push_back(&d);

  const auto report = dmp::exp::evaluate_slo(spec, doc_ptrs);
  std::printf("%s: %zu rule(s) against %zu document(s)\n", argv[1],
              spec.rules.size(), docs.size());
  for (const auto& r : report.results) {
    std::printf("  %s\n", r.message.c_str());
  }
  if (report.ok()) {
    std::printf("SLO OK\n");
    return 0;
  }
  std::fprintf(stderr, "SLO FAIL: %zu violation(s)\n", report.violations);
  return 1;
}
