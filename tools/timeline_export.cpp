// timeline_export: flight-recorder trace (+ optional windowed-telemetry
// CSV) -> Chrome trace-event JSON, loadable in ui.perfetto.dev or
// chrome://tracing.
//
//   timeline_export <trace.jsonl> [--telemetry=CSV] [--out=FILE]
//                   [--max-packets=N]
//
// Without --out the document goes to stdout.  Exit status: 0 on success,
// 1 on bad usage, 2 on a malformed trace, 3 on a write failure.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "obs/telemetry/timeline.hpp"
#include "obs/trace_analyzer.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: timeline_export <trace.jsonl> [--telemetry=CSV] "
               "[--out=FILE] [--max-packets=N]\n");
}

const char* parse_flag(int argc, char** argv, const char* name) {
  const std::size_t len = std::strlen(name);
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  dmp::obs::FlightRecorder recorder;
  try {
    recorder = dmp::obs::read_flight_trace_file(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  // Refuse to render an empty timeline: a trace with zero events means
  // the input was missing its content (empty or truncated file), and a
  // silently empty Perfetto document hides that.
  if (recorder.events().empty()) {
    std::fprintf(stderr,
                 "error: %s contains no flight-recorder events (empty or "
                 "truncated trace?)\n",
                 argv[1]);
    return 2;
  }
  const dmp::obs::TraceAnalyzer analyzer(recorder);

  dmp::obs::TimelineOptions options;
  if (const char* csv = parse_flag(argc, argv, "--telemetry")) {
    options.telemetry_csv = csv;
  }
  if (const char* cap = parse_flag(argc, argv, "--max-packets")) {
    options.max_packets = std::atoll(cap);
  }

  if (const char* out = parse_flag(argc, argv, "--out")) {
    if (!dmp::obs::write_chrome_trace(analyzer, out, options)) {
      std::fprintf(stderr, "error: failed to write %s\n", out);
      return 3;
    }
    std::printf("wrote %s\n", out);
    return 0;
  }
  const std::string json = dmp::obs::chrome_trace_json(analyzer, options);
  std::fwrite(json.data(), 1, json.size(), stdout);
  std::fputc('\n', stdout);
  return 0;
}
