// divergence_report: render a run's model-vs-simulation divergence
// sections as a table, and optionally re-emit them as a standalone JSON
// artifact.
//
//   divergence_report <report.json> [--json=OUT] [--fail-on-divergence]
//
// Accepts any artifact carrying a divergence block: a BENCH_*.json
// experiment report ({"report": {"divergence": [...]}}) or a standalone
// DIVERGENCE_*.json document ({"divergence": [...]}).
//
// Exit status: 0 on success, 1 when --fail-on-divergence is given and any
// point diverged, 2 on unreadable/malformed input or a report with no
// divergence section.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>

#include "exp/compare/json.hpp"

namespace {

using dmp::exp::JsonValue;

const char* flag_value(int argc, char** argv, const char* name) {
  const std::size_t len = std::strlen(name);
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

double member_number(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  return (v != nullptr && v->is_number()) ? v->number : 0.0;
}

std::string member_text(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr ? v->text : std::string{};
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: divergence_report <report.json> [--json=OUT] "
                 "[--fail-on-divergence]\n");
    return 2;
  }
  JsonValue doc;
  try {
    doc = dmp::exp::parse_json_file(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "divergence_report: %s\n", e.what());
    return 2;
  }
  const JsonValue* divergence = doc.find("divergence");
  if (divergence == nullptr) {
    if (const JsonValue* report = doc.find("report")) {
      divergence = report->find("divergence");
    }
  }
  if (divergence == nullptr || !divergence->is_array()) {
    std::fprintf(stderr,
                 "divergence_report: %s has no divergence section (run the "
                 "figure bench from this revision?)\n",
                 argv[1]);
    return 2;
  }
  if (divergence->array.empty()) {
    std::fprintf(stderr, "divergence_report: %s: divergence section is empty\n",
                 argv[1]);
    return 2;
  }

  std::size_t total_diverged = 0;
  for (const auto& series : divergence->array) {
    std::printf("series %s  (%s vs model, x = %s)\n",
                member_text(series, "name").c_str(),
                member_text(series, "metric").c_str(),
                member_text(series, "x_label").c_str());
    std::printf("%-10s %10s %14s %14s %12s %12s  %s\n", "setting", "x",
                "predicted", "measured", "ci_half", "residual", "ok");
    if (const JsonValue* points = series.find("points")) {
      for (const auto& p : points->array) {
        const JsonValue* ok = p.find("ok");
        std::printf("%-10s %10.4g %14.6g %14.6g %12.4g %12.4g  %s\n",
                    member_text(p, "setting").c_str(), member_number(p, "x"),
                    member_number(p, "predicted"), member_number(p, "measured"),
                    member_number(p, "ci_half"), member_number(p, "residual"),
                    (ok != nullptr && ok->boolean) ? "yes" : "NO");
      }
    }
    if (const JsonValue* stats = series.find("stats")) {
      const auto diverged =
          static_cast<std::size_t>(member_number(*stats, "diverged"));
      total_diverged += diverged;
      std::printf("  stats: n=%g diverged=%zu mean=%.6g rms=%.6g max|r|=%.6g "
                  "worst=%s@%g\n\n",
                  member_number(*stats, "count"), diverged,
                  member_number(*stats, "mean_residual"),
                  member_number(*stats, "rms_residual"),
                  member_number(*stats, "max_abs_residual"),
                  member_text(*stats, "worst_setting").c_str(),
                  member_number(*stats, "worst_x"));
    }
  }

  if (const char* out_path = flag_value(argc, argv, "--json")) {
    std::ofstream out(out_path);
    JsonValue standalone;
    standalone.kind = JsonValue::Kind::kObject;
    standalone.object.emplace_back("divergence", *divergence);
    if (!out || !(out << standalone.to_json() << "\n")) {
      std::fprintf(stderr, "divergence_report: cannot write %s\n", out_path);
      return 2;
    }
    std::printf("wrote %s\n", out_path);
  }
  if (total_diverged > 0) {
    std::printf("%zu diverged point(s)\n", total_diverged);
    if (has_flag(argc, argv, "--fail-on-divergence")) return 1;
  }
  return 0;
}
