// The common interface of the three streaming servers (DMP, static,
// stored).  The session harness and the observability wiring talk to this
// interface only, so adding a scheme means implementing it and extending
// the factory — not editing a switch in every consumer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/time_series.hpp"
#include "stream/scheduler/path_scheduler.hpp"
#include "util/sim_time.hpp"

namespace dmp {

class RenoSender;
class Scheduler;
struct SessionConfig;

class StreamServer {
 public:
  virtual ~StreamServer() = default;

  // Stream packets the scheme accounts for: packets generated so far for
  // live schemes, the full video length for stored streaming (the whole
  // file exists up front).  This is the denominator of every late-fraction
  // metric.
  virtual std::int64_t packets_generated() const = 0;

  // Packets fetched by sender k since the start of the run.
  virtual std::uint64_t pulls(std::size_t k) const = 0;

  // Short scheme tag for reports ("dmp", "static", "stored").
  virtual const char* scheme_name() const = 0;

  // Dispatch-policy tag for reports: the PathScheduler spec a DMP server
  // runs ("pull", "weighted", "parity-4", ...), "weighted" for static
  // streaming (it is the same split rule applied offline).  Empty when the
  // scheme has no policy dimension.
  virtual const char* scheduler_name() const { return ""; }

  // Redundancy decisions executed by the dispatch policy (0 for schemes /
  // policies that never send a stream packet twice).
  virtual std::uint64_t duplicates_sent() const { return 0; }
  virtual std::uint64_t parity_sent() const { return 0; }

  // Registers the scheme's counters and sampler gauges under `prefix`.
  // Optional; a no-op when never called.
  virtual void attach_metrics(obs::MetricsRegistry& registry,
                              const std::string& prefix) = 0;

  // Per-pull / per-generate diagnostics.  Base-class no-ops: schemes opt in.
  virtual void set_event_log(obs::EventLog*) {}
  virtual void set_flight_recorder(obs::FlightRecorder*) {}
  // Windowed telemetry (either may be null): `backlog` samples the
  // scheme's undispatched-packet count (shared queue, summed private
  // queues, or remaining file) at generation/dispatch instants;
  // `generated` gets one bump per stream packet entering the system.
  virtual void set_telemetry(obs::TimeSeriesChannel* /*backlog*/,
                             obs::TimeSeriesChannel* /*generated*/) {}
  // Windowed per-redundancy-decision telemetry (duplicate copies / parity
  // packets per window).  Base-class no-op: only policies that make such
  // decisions record anything.
  virtual void set_sched_telemetry(obs::TimeSeriesChannel* /*duplicates*/,
                                   obs::TimeSeriesChannel* /*parity*/) {}

  // Path-fault notifications from the fault injector (src/fault/): path k's
  // link just went down / came back up.  Base-class no-ops; schemes decide
  // their degradation story.  DMP and stored reclaim the dead sender's
  // never-transmitted share into the shared backlog (graceful degradation:
  // surviving paths carry it); static streaming deliberately does nothing —
  // its fixed packet-to-path assignment means the dead path's share stalls
  // head-of-line until the link returns, which is exactly the fragility the
  // paper's Section-7 comparison punishes.
  virtual void on_path_down(std::size_t /*k*/) {}
  virtual void on_path_up(std::size_t /*k*/) {}

  // Gauge names (under `prefix`) a time-series probe should sample for this
  // scheme — the scheme knows whether its backlog is one shared queue,
  // per-path queues, or a remaining-packets count.
  virtual std::vector<std::string> probe_columns(
      const std::string& prefix, std::size_t num_flows) const = 0;
};

// Builds the server for `config.scheme`: generation starts at `epoch` and
// lasts `duration` (live schemes) or dispatches the whole
// `mu * duration`-packet video from `epoch` on (stored).  `senders` must
// outlive the returned server.  The dispatch policy comes from
// `config.scheduler` (parsed and validated here).
std::unique_ptr<StreamServer> make_stream_server(
    const SessionConfig& config, Scheduler& sched,
    std::vector<RenoSender*> senders, SimTime epoch, SimTime duration);

// Overload with a pre-parsed PathScheduler spec (callers that already
// validated the spec — the session does, so a bad DMP_SCHED fails before
// any network is built).  The spec drives DMP sessions; static and stored
// schemes have their policy baked in and ignore it.
std::unique_ptr<StreamServer> make_stream_server(
    const SessionConfig& config, Scheduler& sched,
    std::vector<RenoSender*> senders, SimTime epoch, SimTime duration,
    const SchedulerSpec& scheduler_spec);

}  // namespace dmp
