// Streaming client: collects in-order TCP deliveries from the K paths into
// the shared trace.  The client buffer is unbounded (Section 2's assumption
// that modern machines have ample storage), so recording is all it does —
// playback analysis happens on the trace afterwards.
#pragma once

#include <cstdint>
#include <vector>

#include "stream/trace.hpp"
#include "tcp/sink.hpp"

namespace dmp {

class StreamClient {
 public:
  StreamClient(double mu_pps, std::size_t num_paths);

  // Wire path k's TCP sink to this client; must be called once per path.
  void attach(std::size_t path, TcpSink& sink);

  const StreamTrace& trace() const { return trace_; }
  std::size_t num_paths() const { return num_paths_; }

 private:
  void on_packet(std::int64_t number, SimTime when, std::uint32_t path);

  StreamTrace trace_;
  std::size_t num_paths_;
};

}  // namespace dmp
