#include "stream/dmp_server.hpp"

#include <stdexcept>

namespace dmp {

DmpStreamingServer::DmpStreamingServer(Scheduler& sched, double mu_pps,
                                       std::vector<RenoSender*> senders,
                                       SimTime start, SimTime duration)
    : sched_(sched),
      mu_pps_(mu_pps),
      senders_(std::move(senders)),
      period_(SimTime::seconds(1.0 / mu_pps)),
      end_(start + duration) {
  if (senders_.empty()) throw std::invalid_argument{"DMP needs >= 1 sender"};
  if (mu_pps <= 0) throw std::invalid_argument{"mu must be positive"};
  for (std::size_t k = 0; k < senders_.size(); ++k) {
    senders_[k]->set_space_callback([this, k] { pull_into(k); });
  }
  sched_.schedule_at(start, [this] { generate(); });
}

void DmpStreamingServer::generate() {
  queue_.push_back(next_number_++);
  max_queue_ = std::max(max_queue_, queue_.size());
  offer_all();
  if (sched_.now() + period_ < end_) {
    sched_.schedule_after(period_, [this] { generate(); });
  }
}

void DmpStreamingServer::pull_into(std::size_t k) {
  // The sender fetches from the head of the server queue until it blocks
  // (buffer full) or the queue empties — exactly the Fig. 2 loop.
  while (!queue_.empty() && senders_[k]->enqueue(queue_.front())) {
    queue_.pop_front();
  }
}

void DmpStreamingServer::offer_all() {
  // At generation instants several senders may have space (e.g. during
  // startup); rotate the starting index so no path is structurally favored.
  const std::size_t n = senders_.size();
  for (std::size_t i = 0; i < n && !queue_.empty(); ++i) {
    pull_into((rotate_ + i) % n);
  }
  rotate_ = (rotate_ + 1) % n;
}

}  // namespace dmp
