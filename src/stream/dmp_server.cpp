#include "stream/dmp_server.hpp"

#include <stdexcept>

namespace dmp {

DmpStreamingServer::DmpStreamingServer(Scheduler& sched, double mu_pps,
                                       std::vector<RenoSender*> senders,
                                       SimTime start, SimTime duration)
    : sched_(sched),
      mu_pps_(mu_pps),
      senders_(std::move(senders)),
      period_(SimTime::seconds(1.0 / mu_pps)),
      end_(start + duration) {
  if (senders_.empty()) throw std::invalid_argument{"DMP needs >= 1 sender"};
  if (mu_pps <= 0) throw std::invalid_argument{"mu must be positive"};
  pulls_.assign(senders_.size(), 0);
  down_.assign(senders_.size(), false);
  for (std::size_t k = 0; k < senders_.size(); ++k) {
    senders_[k]->set_space_callback([this, k] { pull_into(k); });
  }
  sched_.post_at(start, [this] { generate(); }, EventCategory::kSource);
}

void DmpStreamingServer::attach_metrics(obs::MetricsRegistry& registry,
                                        const std::string& prefix) {
  m_generated_ = &registry.counter(prefix + ".generated");
  m_pulls_.clear();
  for (std::size_t k = 0; k < senders_.size(); ++k) {
    m_pulls_.push_back(
        &registry.counter(prefix + ".pulls.path" + std::to_string(k)));
  }
  registry.gauge(prefix + ".queue_depth").set_sampler([this] {
    return static_cast<double>(queue_.size());
  });
  registry.gauge(prefix + ".max_queue_depth").set_sampler([this] {
    return static_cast<double>(max_queue_);
  });
}

void DmpStreamingServer::generate() {
  const std::int64_t number = next_number_++;
  queue_.push_back(number);
  if (m_generated_) m_generated_->inc();
  max_queue_ = std::max(max_queue_, queue_.size());
  if (flight_) {
    obs::FlightEvent e;
    e.t_ns = sched_.now().ns();
    e.kind = obs::FlightEventKind::kGenerate;
    e.packet = number;
    e.queue = static_cast<std::int64_t>(queue_.size());
    flight_->record(e);
  }
  if (ts_generated_) ts_generated_->bump(sched_.now());
  offer_all();
  // Post-offer backlog: what the CBR source left behind after every sender
  // with space took its share — the paper's "TCP lags generation" signal.
  if (ts_backlog_) {
    ts_backlog_->add(sched_.now(), static_cast<double>(queue_.size()));
  }
  if (sched_.now() + period_ < end_) {
    sched_.post_after(period_, [this] { generate(); }, EventCategory::kSource);
  }
}

void DmpStreamingServer::pull_into(std::size_t k) {
  // A failed path must not soak up fresh packets: its sender would sit on
  // them behind a dead link.  (The flag is only ever set by the fault
  // injector; fault-free runs never take this branch.)
  if (down_[k]) return;
  // The sender fetches from the head of the server queue until it blocks
  // (buffer full) or the queue empties — exactly the Fig. 2 loop.  The
  // fetch is recorded before enqueue() so trace lines stay in lifecycle
  // order (enqueue itself emits the tcp/link events).
  while (!queue_.empty() && senders_[k]->space() > 0) {
    const std::int64_t number = queue_.front();
    queue_.pop_front();
    ++pulls_[k];
    if (!m_pulls_.empty()) m_pulls_[k]->inc();
    if (flight_) {
      obs::FlightEvent e;
      e.t_ns = sched_.now().ns();
      e.kind = obs::FlightEventKind::kPull;
      e.packet = number;
      e.path = static_cast<std::int32_t>(k);
      e.queue = static_cast<std::int64_t>(queue_.size());
      flight_->record(e);
    }
    if (event_log_ && event_log_->enabled(obs::Severity::kDebug)) {
      event_log_->record(sched_.now().to_seconds(), obs::Severity::kDebug,
                         "pull",
                         {obs::EventField::num("path", k),
                          obs::EventField::num("packet", number),
                          obs::EventField::num("queue", queue_.size())});
    }
    senders_[k]->enqueue(number);
  }
}

void DmpStreamingServer::on_path_down(std::size_t k) {
  down_[k] = true;
  // Segments the dead sender accepted but never transmitted go back to the
  // head of the shared queue (they are older than anything queued there),
  // in their original order.  Segments already on the wire stay with TCP —
  // recovery is organic once the link returns.
  const auto tags = senders_[k]->reclaim_unsent();
  reclaimed_ += tags.size();
  queue_.insert(queue_.begin(), tags.begin(), tags.end());
  max_queue_ = std::max(max_queue_, queue_.size());
  if (event_log_ && event_log_->enabled(obs::Severity::kInfo)) {
    event_log_->record(sched_.now().to_seconds(), obs::Severity::kInfo,
                       "reclaim",
                       {obs::EventField::num("path", k),
                        obs::EventField::num("packets", tags.size()),
                        obs::EventField::num("queue", queue_.size())});
  }
  offer_all();
}

void DmpStreamingServer::on_path_up(std::size_t k) {
  down_[k] = false;
  pull_into(k);
}

void DmpStreamingServer::offer_all() {
  // At generation instants several senders may have space (e.g. during
  // startup); rotate the starting index so no path is structurally favored.
  const std::size_t n = senders_.size();
  for (std::size_t i = 0; i < n && !queue_.empty(); ++i) {
    pull_into((rotate_ + i) % n);
  }
  rotate_ = (rotate_ + 1) % n;
}

}  // namespace dmp
