#include "stream/dmp_server.hpp"

#include <stdexcept>

#include "stream/scheduler/strategies.hpp"

namespace dmp {

DmpStreamingServer::DmpStreamingServer(
    Scheduler& sched, double mu_pps, std::vector<RenoSender*> senders,
    SimTime start, SimTime duration, std::unique_ptr<PathScheduler> scheduler)
    : sched_(sched),
      mu_pps_(mu_pps),
      senders_(std::move(senders)),
      period_(SimTime::seconds(1.0 / mu_pps)),
      end_(start + duration),
      scheduler_(std::move(scheduler)) {
  if (senders_.empty()) throw std::invalid_argument{"DMP needs >= 1 sender"};
  if (mu_pps <= 0) throw std::invalid_argument{"mu must be positive"};
  if (!scheduler_) scheduler_ = std::make_unique<PullScheduler>(senders_.size());
  pulls_.assign(senders_.size(), 0);
  down_.assign(senders_.size(), false);
  path_state_.assign(senders_.size(), SchedPathState{});
  for (std::size_t k = 0; k < senders_.size(); ++k) {
    senders_[k]->set_space_callback([this, k] { window_open(k); });
  }
  sched_.post_at(start, [this] { generate(); }, EventCategory::kSource);
}

void DmpStreamingServer::attach_metrics(obs::MetricsRegistry& registry,
                                        const std::string& prefix) {
  m_generated_ = &registry.counter(prefix + ".generated");
  m_pulls_.clear();
  for (std::size_t k = 0; k < senders_.size(); ++k) {
    m_pulls_.push_back(
        &registry.counter(prefix + ".pulls.path" + std::to_string(k)));
  }
  m_duplicates_ = &registry.counter(prefix + ".sched.duplicates");
  m_parity_ = &registry.counter(prefix + ".sched.parity");
  registry.gauge(prefix + ".queue_depth").set_sampler([this] {
    return static_cast<double>(queue_.size());
  });
  registry.gauge(prefix + ".max_queue_depth").set_sampler([this] {
    return static_cast<double>(max_queue_);
  });
}

void DmpStreamingServer::generate() {
  const std::int64_t number = next_number_++;
  queue_.push_back(number);
  if (m_generated_) m_generated_->inc();
  max_queue_ = std::max(max_queue_, queue_.size());
  if (flight_) {
    obs::FlightEvent e;
    e.t_ns = sched_.now().ns();
    e.kind = obs::FlightEventKind::kGenerate;
    e.packet = number;
    e.queue = static_cast<std::int64_t>(queue_.size());
    flight_->record(e);
  }
  if (ts_generated_) ts_generated_->bump(sched_.now());
  scheduler_->on_generate(number);
  // At generation instants several senders may have space (e.g. during
  // startup); the policy decides who gets the backlog.
  scheduler_->on_offer();
  drain();
  // Post-offer backlog: what the CBR source left behind after every sender
  // with space took its share — the paper's "TCP lags generation" signal.
  if (ts_backlog_) {
    ts_backlog_->add(sched_.now(), static_cast<double>(queue_.size()));
  }
  if (sched_.now() + period_ < end_) {
    sched_.post_after(period_, [this] { generate(); }, EventCategory::kSource);
  }
}

void DmpStreamingServer::window_open(std::size_t k) {
  // A failed path must not soak up fresh packets: its sender would sit on
  // them behind a dead link.  (The flag is only ever set by the fault
  // injector; fault-free runs never take this branch.)
  if (down_[k]) return;
  scheduler_->on_window_open(k);
  drain();
}

void DmpStreamingServer::drain() {
  SchedDecision decision;
  while (true) {
    for (std::size_t k = 0; k < senders_.size(); ++k) {
      path_state_[k].space = senders_[k]->space();
      path_state_[k].down = down_[k];
      path_state_[k].srtt_s = senders_[k]->srtt_s();
      path_state_[k].oldest_unacked = senders_[k]->oldest_unacked_tag();
      path_state_[k].rto_backoff = senders_[k]->rto_backoff();
    }
    if (!scheduler_->pick(path_state_, queue_, &decision)) return;
    execute(decision);
  }
}

void DmpStreamingServer::execute(const SchedDecision& decision) {
  const std::size_t k = decision.path;
  switch (decision.kind) {
    case SchedDecision::Kind::kPull: {
      // The fetch is recorded before enqueue() so trace lines stay in
      // lifecycle order (enqueue itself emits the tcp/link events).
      const std::int64_t number = queue_[decision.queue_pos];
      queue_.erase(queue_.begin() +
                   static_cast<std::ptrdiff_t>(decision.queue_pos));
      ++pulls_[k];
      if (!m_pulls_.empty()) m_pulls_[k]->inc();
      if (flight_) {
        obs::FlightEvent e;
        e.t_ns = sched_.now().ns();
        e.kind = obs::FlightEventKind::kPull;
        e.packet = number;
        e.path = static_cast<std::int32_t>(k);
        e.queue = static_cast<std::int64_t>(queue_.size());
        flight_->record(e);
      }
      if (event_log_ && event_log_->enabled(obs::Severity::kDebug)) {
        event_log_->record(sched_.now().to_seconds(), obs::Severity::kDebug,
                           "pull",
                           {obs::EventField::num("path", k),
                            obs::EventField::num("packet", number),
                            obs::EventField::num("queue", queue_.size())});
      }
      senders_[k]->enqueue(number);
      break;
    }
    case SchedDecision::Kind::kDuplicate:
    case SchedDecision::Kind::kParity: {
      const bool dup = decision.kind == SchedDecision::Kind::kDuplicate;
      if (dup) {
        ++duplicates_sent_;
        if (m_duplicates_) m_duplicates_->inc();
        if (ts_duplicates_) ts_duplicates_->bump(sched_.now());
      } else {
        ++parity_sent_;
        if (m_parity_) m_parity_->inc();
        if (ts_parity_) ts_parity_->bump(sched_.now());
      }
      if (flight_) {
        obs::FlightEvent e;
        e.t_ns = sched_.now().ns();
        e.kind = obs::FlightEventKind::kSchedDecision;
        e.packet = decision.packet;
        e.path = static_cast<std::int32_t>(k);
        e.queue = static_cast<std::int64_t>(queue_.size());
        flight_->record(e);
      }
      if (event_log_ && event_log_->enabled(obs::Severity::kDebug)) {
        event_log_->record(sched_.now().to_seconds(), obs::Severity::kDebug,
                           dup ? "dup" : "parity",
                           {obs::EventField::num("path", k),
                            obs::EventField::num("packet", decision.packet),
                            obs::EventField::num("queue", queue_.size())});
      }
      senders_[k]->enqueue(decision.packet);
      break;
    }
  }
}

void DmpStreamingServer::on_path_down(std::size_t k) {
  down_[k] = true;
  // Segments the dead sender accepted but never transmitted go back to the
  // head of the shared queue (they are older than anything queued there),
  // in their original order.  Segments already on the wire stay with TCP —
  // recovery is organic once the link returns.
  const auto tags = senders_[k]->reclaim_unsent();
  reclaimed_ += tags.size();
  queue_.insert(queue_.begin(), tags.begin(), tags.end());
  max_queue_ = std::max(max_queue_, queue_.size());
  if (event_log_ && event_log_->enabled(obs::Severity::kInfo)) {
    event_log_->record(sched_.now().to_seconds(), obs::Severity::kInfo,
                       "reclaim",
                       {obs::EventField::num("path", k),
                        obs::EventField::num("packets", tags.size()),
                        obs::EventField::num("queue", queue_.size())});
  }
  std::vector<AtRiskPacket> at_risk;
  for (const auto& segment : senders_[k]->transmitted_unacked()) {
    at_risk.push_back(AtRiskPacket{
        segment.app_tag, (sched_.now() - segment.last_sent).to_seconds()});
  }
  scheduler_->on_path_down(k, tags, at_risk, senders_[k]->srtt_s());
  // Re-offer the (reclaimed) backlog to the surviving senders.
  scheduler_->on_offer();
  drain();
}

void DmpStreamingServer::on_path_up(std::size_t k) {
  down_[k] = false;
  scheduler_->on_path_up(k);
  scheduler_->on_window_open(k);
  drain();
}

}  // namespace dmp
