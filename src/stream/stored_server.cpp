#include "stream/stored_server.hpp"

#include <stdexcept>

namespace dmp {

StoredStreamingServer::StoredStreamingServer(Scheduler& sched,
                                             std::int64_t total_packets,
                                             std::vector<RenoSender*> senders,
                                             SimTime start)
    : sched_(sched), senders_(std::move(senders)), total_(total_packets) {
  if (senders_.empty()) throw std::invalid_argument{"need >= 1 sender"};
  if (total_ <= 0) throw std::invalid_argument{"video must be non-empty"};
  pulls_.assign(senders_.size(), 0);
  down_.assign(senders_.size(), false);
  for (std::size_t k = 0; k < senders_.size(); ++k) {
    senders_[k]->set_space_callback([this, k] { pull_into(k); });
  }
  // Prime every sender at `start` — the whole video is available then.
  sched_.post_at(start, [this] {
    for (std::size_t k = 0; k < senders_.size(); ++k) pull_into(k);
  }, EventCategory::kSource);
}

void StoredStreamingServer::attach_metrics(obs::MetricsRegistry& registry,
                                           const std::string& prefix) {
  m_dispatched_ = &registry.counter(prefix + ".dispatched");
  m_pulls_.clear();
  for (std::size_t k = 0; k < senders_.size(); ++k) {
    m_pulls_.push_back(
        &registry.counter(prefix + ".pulls.path" + std::to_string(k)));
  }
  registry.gauge(prefix + ".remaining").set_sampler([this] {
    return static_cast<double>(total_ - next_number_) +
           static_cast<double>(redispatch_.size());
  });
}

void StoredStreamingServer::pull_into(std::size_t k) {
  // Skipped while the path is down (fault injector); fault-free runs never
  // set the flag.
  if (down_[k]) return;
  // Fetch recorded before enqueue() so trace lines stay in lifecycle order
  // (enqueue itself emits the tcp/link events).  Reclaimed numbers (from a
  // failed path) are older than next_number_ and are served first.
  while ((!redispatch_.empty() || next_number_ < total_) &&
         senders_[k]->space() > 0) {
    std::int64_t number;
    if (!redispatch_.empty()) {
      number = redispatch_.front();
      redispatch_.pop_front();
    } else {
      number = next_number_++;
    }
    ++pulls_[k];
    if (!m_pulls_.empty()) {
      m_pulls_[k]->inc();
      m_dispatched_->inc();
    }
    if (flight_) {
      obs::FlightEvent e;
      e.t_ns = sched_.now().ns();
      e.kind = obs::FlightEventKind::kPull;
      e.packet = number;
      e.path = static_cast<std::int32_t>(k);
      e.queue = total_ - next_number_ +
                static_cast<std::int64_t>(redispatch_.size());
      flight_->record(e);
    }
    if (ts_generated_) ts_generated_->bump(sched_.now());
    if (ts_backlog_) {
      ts_backlog_->add(sched_.now(),
                       static_cast<double>(total_ - next_number_) +
                           static_cast<double>(redispatch_.size()));
    }
    senders_[k]->enqueue(number);
  }
}

void StoredStreamingServer::on_path_down(std::size_t k) {
  down_[k] = true;
  const auto tags = senders_[k]->reclaim_unsent();
  reclaimed_ += tags.size();
  redispatch_.insert(redispatch_.begin(), tags.begin(), tags.end());
  for (std::size_t i = 0; i < senders_.size(); ++i) pull_into(i);
}

void StoredStreamingServer::on_path_up(std::size_t k) {
  down_[k] = false;
  pull_into(k);
}

}  // namespace dmp
