#include "stream/stored_server.hpp"

#include <stdexcept>

namespace dmp {

StoredStreamingServer::StoredStreamingServer(Scheduler& sched,
                                             std::int64_t total_packets,
                                             std::vector<RenoSender*> senders,
                                             SimTime start)
    : sched_(sched), senders_(std::move(senders)), total_(total_packets) {
  if (senders_.empty()) throw std::invalid_argument{"need >= 1 sender"};
  if (total_ <= 0) throw std::invalid_argument{"video must be non-empty"};
  pulls_.assign(senders_.size(), 0);
  for (std::size_t k = 0; k < senders_.size(); ++k) {
    senders_[k]->set_space_callback([this, k] { pull_into(k); });
  }
  // Prime every sender at `start` — the whole video is available then.
  sched_.post_at(start, [this] {
    for (std::size_t k = 0; k < senders_.size(); ++k) pull_into(k);
  });
}

void StoredStreamingServer::attach_metrics(obs::MetricsRegistry& registry,
                                           const std::string& prefix) {
  m_dispatched_ = &registry.counter(prefix + ".dispatched");
  m_pulls_.clear();
  for (std::size_t k = 0; k < senders_.size(); ++k) {
    m_pulls_.push_back(
        &registry.counter(prefix + ".pulls.path" + std::to_string(k)));
  }
  registry.gauge(prefix + ".remaining").set_sampler([this] {
    return static_cast<double>(total_ - next_number_);
  });
}

void StoredStreamingServer::pull_into(std::size_t k) {
  // Fetch recorded before enqueue() so trace lines stay in lifecycle order
  // (enqueue itself emits the tcp/link events).
  while (next_number_ < total_ && senders_[k]->space() > 0) {
    const std::int64_t number = next_number_++;
    ++pulls_[k];
    if (!m_pulls_.empty()) {
      m_pulls_[k]->inc();
      m_dispatched_->inc();
    }
    if (flight_) {
      obs::FlightEvent e;
      e.t_ns = sched_.now().ns();
      e.kind = obs::FlightEventKind::kPull;
      e.packet = number;
      e.path = static_cast<std::int32_t>(k);
      e.queue = total_ - next_number_;
      flight_->record(e);
    }
    senders_[k]->enqueue(number);
  }
}

}  // namespace dmp
