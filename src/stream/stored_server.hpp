// Stored-video DMP streaming — the paper's Section-3 remark ("it is also
// applicable to stored-video streaming"), left as future work there and
// implemented here as an extension.
//
// The whole video exists before streaming starts, so the live-source
// constraint disappears: the server queue is the entire remaining video
// and the senders prefetch as far ahead as TCP allows.  The client buffer
// is unbounded (Section-2 assumption), so the prefetch depth is limited
// only by path throughput — the early-packet cap Nmax = mu*tau of live
// streaming no longer applies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "tcp/reno_sender.hpp"

namespace dmp {

class StoredStreamingServer {
 public:
  // Streams packets [0, total_packets) over the given senders, starting
  // immediately; `mu_pps` is kept only for bookkeeping symmetry with the
  // live server (the send rate is whatever TCP achieves).  The optional
  // `flight` recorder is taken as a constructor argument because the
  // constructor already primes every sender — a post-construction setter
  // would miss those first pulls.
  StoredStreamingServer(Scheduler& sched, std::int64_t total_packets,
                        std::vector<RenoSender*> senders,
                        obs::FlightRecorder* flight = nullptr);

  std::int64_t packets_total() const { return total_; }
  std::int64_t packets_dispatched() const { return next_number_; }
  bool finished() const { return next_number_ == total_; }

  // Registers the `<prefix>.dispatched` counter, per-path `<prefix>.pulls.
  // path<k>` counters and a `<prefix>.remaining` sampler gauge.  Optional;
  // a no-op when never called.
  void attach_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix);

 private:
  void pull_into(std::size_t k);

  Scheduler& sched_;
  std::vector<RenoSender*> senders_;
  std::int64_t total_;
  std::int64_t next_number_ = 0;

  std::vector<obs::Counter*> m_pulls_;
  obs::Counter* m_dispatched_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
};

}  // namespace dmp
