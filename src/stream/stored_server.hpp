// Stored-video DMP streaming — the paper's Section-3 remark ("it is also
// applicable to stored-video streaming"), left as future work there and
// implemented here as an extension.
//
// The whole video exists before streaming starts, so the live-source
// constraint disappears: the server queue is the entire remaining video
// and the senders prefetch as far ahead as TCP allows.  The client buffer
// is unbounded (Section-2 assumption), so the prefetch depth is limited
// only by path throughput — the early-packet cap Nmax = mu*tau of live
// streaming no longer applies.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "stream/stream_server.hpp"
#include "tcp/reno_sender.hpp"

namespace dmp {

class StoredStreamingServer : public StreamServer {
 public:
  // Streams packets [0, total_packets) over the given senders.  Dispatch
  // begins at `start` (a scheduled event, so metrics / recorders attached
  // between construction and `start` observe the very first pulls); the
  // send rate is whatever TCP achieves.
  StoredStreamingServer(Scheduler& sched, std::int64_t total_packets,
                        std::vector<RenoSender*> senders,
                        SimTime start = SimTime::zero());

  std::int64_t packets_total() const { return total_; }
  std::int64_t packets_dispatched() const { return next_number_; }
  bool finished() const { return next_number_ == total_; }

  // The whole video exists before streaming starts, so every packet counts
  // toward the late-fraction denominator from the outset.
  std::int64_t packets_generated() const override { return total_; }
  std::uint64_t pulls(std::size_t k) const override { return pulls_[k]; }

  const char* scheme_name() const override { return "stored"; }

  // Registers the `<prefix>.dispatched` counter, per-path `<prefix>.pulls.
  // path<k>` counters and a `<prefix>.remaining` sampler gauge.  Optional;
  // a no-op when never called.
  void attach_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix) override;

  // Records sender fetch (kPull) span events.  Optional; call before the
  // `start` instant to capture the priming pulls.
  void set_flight_recorder(obs::FlightRecorder* recorder) override {
    flight_ = recorder;
  }
  // `generated` is bumped once per dispatched packet (the stored file has
  // no generation instant of its own); `backlog` samples remaining +
  // redispatch at each dispatch.
  void set_telemetry(obs::TimeSeriesChannel* backlog,
                     obs::TimeSeriesChannel* generated) override {
    ts_backlog_ = backlog;
    ts_generated_ = generated;
  }

  // Path failure: the dead sender's never-transmitted packet numbers move
  // to a redispatch queue served (in order, before fresh numbers) by the
  // surviving senders; the path is skipped until it comes back.
  void on_path_down(std::size_t k) override;
  void on_path_up(std::size_t k) override;
  bool path_down(std::size_t k) const { return down_[k]; }
  std::uint64_t reclaimed() const { return reclaimed_; }

  // Remaining-packets gauge (there is no generation-side backlog).
  std::vector<std::string> probe_columns(
      const std::string& prefix, std::size_t /*num_flows*/) const override {
    return {prefix + ".remaining"};
  }

 private:
  void pull_into(std::size_t k);

  Scheduler& sched_;
  std::vector<RenoSender*> senders_;
  std::int64_t total_;
  std::int64_t next_number_ = 0;
  std::vector<std::uint64_t> pulls_;
  std::vector<bool> down_;                 // fault-injector path state
  std::deque<std::int64_t> redispatch_;    // reclaimed numbers, oldest first
  std::uint64_t reclaimed_ = 0;

  std::vector<obs::Counter*> m_pulls_;
  obs::Counter* m_dispatched_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  obs::TimeSeriesChannel* ts_backlog_ = nullptr;
  obs::TimeSeriesChannel* ts_generated_ = nullptr;
};

}  // namespace dmp
