// The concrete PathScheduler strategies.  Exposed as a header so unit
// tests can drive each policy directly; production code goes through
// make_path_scheduler (path_scheduler.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "stream/scheduler/path_scheduler.hpp"
#include "stream/scheduler/weighted_split.hpp"

namespace dmp {

// The paper's scheme (Fig. 2), decision-for-decision.  Two dispatch modes
// mirror the historical server entry points: a window-open (or path-up)
// grant focuses on one sender and drains it; a generation / reclaim offer
// walks every sender from a rotating start index, draining each, and
// advances the rotation exactly once per offer — including when the queue
// empties mid-round or no sender has space, matching offer_all().
class PullScheduler : public PathScheduler {
 public:
  explicit PullScheduler(std::size_t num_paths) : n_(num_paths) {}

  const char* name() const override { return "pull"; }
  void on_window_open(std::size_t path) override {
    mode_ = Mode::kFocus;
    focus_ = path;
  }
  void on_offer() override {
    mode_ = Mode::kRound;
    round_i_ = 0;
  }
  bool pick(const std::vector<SchedPathState>& paths,
            const std::deque<std::int64_t>& queue,
            SchedDecision* out) override;

  std::size_t rotate() const { return rotate_; }

 private:
  enum class Mode : std::uint8_t { kIdle, kFocus, kRound };
  std::size_t n_;
  Mode mode_ = Mode::kIdle;
  std::size_t focus_ = 0;
  std::size_t round_i_ = 0;
  std::size_t rotate_ = 0;  // fairness when several senders have space
};

// Static split by path weight: every generated packet is pre-assigned to a
// path by the shared deficit rule (WeightedSplit); a path only ever pulls
// its own packets, even when another path idles.  Under faults the dead
// path's pending share — and the tags the server reclaimed from its
// sender — are reassigned across the surviving paths.
class WeightedScheduler : public PathScheduler {
 public:
  WeightedScheduler(std::size_t num_paths, std::vector<double> weights);

  const char* name() const override { return "weighted"; }
  void on_generate(std::int64_t packet) override;
  void on_path_down(std::size_t path,
                    const std::vector<std::int64_t>& reclaimed,
                    const std::vector<AtRiskPacket>& at_risk,
                    double srtt_s) override;
  void on_path_up(std::size_t path) override { up_[path] = 1; }
  bool pick(const std::vector<SchedPathState>& paths,
            const std::deque<std::int64_t>& queue,
            SchedDecision* out) override;

 private:
  void assign(std::int64_t packet);

  WeightedSplit split_;
  std::vector<char> up_;
  std::vector<std::deque<std::int64_t>> pending_;  // assigned, not yet pulled
};

// Greedy lowest-smoothed-RTT path with send-buffer room takes the queue
// head.  Unmeasured paths (no RTT sample yet) rank last; ties break toward
// the lowest index.
class BestPathScheduler : public PathScheduler {
 public:
  const char* name() const override { return "best_path"; }
  bool pick(const std::vector<SchedPathState>& paths,
            const std::deque<std::int64_t>& queue,
            SchedDecision* out) override;
};

// One packet per grant to the next path (cursor order), skipping paths
// that are down or full — an EQUAL split in MultiPathNadaClient's terms.
class RoundRobinScheduler : public PathScheduler {
 public:
  explicit RoundRobinScheduler(std::size_t num_paths) : n_(num_paths) {}

  const char* name() const override { return "round_robin"; }
  bool pick(const std::vector<SchedPathState>& paths,
            const std::deque<std::int64_t>& queue,
            SchedDecision* out) override;

 private:
  std::size_t n_;
  std::size_t cursor_ = 0;
};

// Pull for the data stream, plus bounded redundancy in two forms:
//  - steady state: a copy of the head-of-line packet — the oldest
//    transmitted-but-unacked tag across all paths, i.e. the packet closest
//    to playing late — rides a spare path's idle window (queue drained,
//    a path other than the blocked one has send-buffer room), but only
//    when that packet genuinely lags the stream frontier (kLagMin tags):
//    a healthy stream's oldest unacked trails generation by a handful of
//    tags and a copy of it rescues nothing, while a packet stuck behind a
//    stalled path falls seconds behind.  Capped at 1 copy per kBudgetDen
//    data packets so the goodput overhead stays ~4% — redundancy must
//    never crowd out the stream;
//  - failover: when a path dies, the slice of its transmitted-but-unacked
//    packets young enough to be caught in the blackhole (age <= the dead
//    path's SRTT; older ones were delivered before the fault and merely
//    lost their ACK) is re-sent at data priority on the survivors.
//    Copying the whole unacked set would displace live data on the
//    survivors during the very window they are the stream's only
//    capacity — the filtered slice is one RTT's flight, a handful.
//    The server's reclaim already covers the never-transmitted share.
// The client dedups for exactly-once delivery.
class RedundantScheduler : public PathScheduler {
 public:
  explicit RedundantScheduler(std::size_t num_paths) : pull_(num_paths) {}

  const char* name() const override { return "redundant"; }
  bool needs_dedup() const override { return true; }
  void on_window_open(std::size_t path) override {
    pull_.on_window_open(path);
  }
  void on_offer() override { pull_.on_offer(); }
  void on_generate(std::int64_t packet) override;
  void on_path_down(std::size_t path,
                    const std::vector<std::int64_t>& reclaimed,
                    const std::vector<AtRiskPacket>& at_risk,
                    double srtt_s) override;
  bool pick(const std::vector<SchedPathState>& paths,
            const std::deque<std::int64_t>& queue,
            SchedDecision* out) override;

  // 1 idle-window copy per this many data packets (4% wire overhead cap).
  static constexpr std::uint64_t kBudgetDen = 25;
  // Minimum lag (stream-frontier tag minus head-of-line tag) before a
  // steady-state copy is worth sending: ~1 s of stream at typical rates.
  static constexpr std::int64_t kLagMin = 32;
  // A sender is treated as soft-down (stalled) when its Karn backoff is
  // deep (>= kStallBackoff) AND the stream has spare capacity to shift
  // onto.  After an outage the recovering path can sit at 16-64x backoff
  // with its next retransmission seconds out; feeding it then parks data
  // behind that timer (observed: a whole send buffer delivered ~20 s
  // late).  But masking is only safe with headroom — at saturation a
  // backed-off path is still needed capacity, and shifting its load onto
  // an equally-congested survivor melts the stream down.  Headroom is
  // observable per generation interval: with spare capacity the shared
  // queue drains to empty before the next packet is generated; under
  // sustained congestion it fails to.  The scheduler keeps one bit per
  // generation ("failed to drain") over a sliding kHeadroomWindow; the
  // mask disarms when more than kSaturatedBacklog of those failed.  This
  // is the MPTCP "penalize stalled subflows" idea, gated so it cannot
  // trigger at saturation.  When every live path is stalled the mask is
  // dropped: degraded service beats none.
  static constexpr std::uint32_t kStallBackoff = 4;
  static constexpr std::uint32_t kHeadroomWindow = 32;
  static constexpr int kSaturatedBacklog = 8;  // > 25% undrained = saturated

 private:
  PullScheduler pull_;
  std::deque<std::int64_t> failover_;  // dead path's at-risk tags to re-send
  std::vector<SchedPathState> masked_;  // scratch: paths with stalls downed
  std::uint64_t data_sent_ = 0;
  std::uint64_t dups_sent_ = 0;
  std::int64_t last_dup_tag_ = -1;  // never copy the same packet twice
  // One bit per recent generation interval, 1 = the shared queue never
  // drained to empty during it.  Low kHeadroomWindow bits are the sliding
  // headroom detector; 0 (all drained) is a fresh stream's state.
  std::uint64_t backlog_bits_ = 0;
  bool drained_since_gen_ = true;
  std::int64_t frontier_ = -1;  // most recently generated stream tag
};

// Pull for the data stream, plus one XOR-parity packet covering each run
// of k consecutively pulled data packets, sent on the spare path with the
// most room (dropped when no spare window is open — parity rides spare
// capacity only, à la CTCP).  The client recovers a covered packet when
// it is the only one missing, and dedups when the original later arrives.
class ParityScheduler : public PathScheduler {
 public:
  ParityScheduler(std::size_t num_paths, int k);

  const char* name() const override { return name_.c_str(); }
  bool needs_dedup() const override { return true; }
  void on_window_open(std::size_t path) override {
    pull_.on_window_open(path);
  }
  void on_offer() override { pull_.on_offer(); }
  bool pick(const std::vector<SchedPathState>& paths,
            const std::deque<std::int64_t>& queue,
            SchedDecision* out) override;

 private:
  PullScheduler pull_;
  std::string name_;
  int k_;
  std::int64_t first_ = -1;  // first data tag of the open parity window
  int count_ = 0;            // data tags accumulated in the window
  std::size_t last_path_ = 0;
  bool parity_pending_ = false;
};

// The spare path for redundancy: most free send-buffer space among live
// paths other than `exclude`; false when none has space.
bool pick_spare_path(const std::vector<SchedPathState>& paths,
                     std::size_t exclude, std::size_t* out);

}  // namespace dmp
