#include "stream/scheduler/weighted_split.hpp"

#include <numeric>
#include <stdexcept>

namespace dmp {

WeightedSplit::WeightedSplit(std::size_t num_paths,
                             std::vector<double> weights) {
  if (num_paths == 0) throw std::invalid_argument{"split needs >= 1 path"};
  if (!weights.empty() && weights.size() != num_paths) {
    throw std::invalid_argument{"weights size must match sender count"};
  }
  if (weights.empty()) weights.assign(num_paths, 1.0);
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) throw std::invalid_argument{"weights must be positive"};
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument{"weights must be non-negative"};
    weights_.push_back(w / total);
  }
  assigned_.assign(num_paths, 0);
}

std::size_t WeightedSplit::assign_among(const std::vector<char>* allowed) {
  // Deficit (weighted) round-robin: packet n goes to the path furthest
  // behind its target share.  The arithmetic matches the historical
  // StaticStreamingServer::assign_path exactly so static splits stay
  // byte-identical across the extraction.
  const double n1 = static_cast<double>(total_ + 1);
  std::size_t best = 0;
  double best_deficit = -1e300;
  bool found = false;
  for (std::size_t k = 0; k < weights_.size(); ++k) {
    if (allowed && !(*allowed)[k]) continue;
    const double deficit = weights_[k] * n1 - static_cast<double>(assigned_[k]);
    if (deficit > best_deficit) {
      best_deficit = deficit;
      best = k;
      found = true;
    }
  }
  if (!found) return assign_among(nullptr);  // every path excluded
  ++assigned_[best];
  ++total_;
  return best;
}

}  // namespace dmp
