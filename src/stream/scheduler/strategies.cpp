#include "stream/scheduler/strategies.hpp"

#include <algorithm>
#include <bit>
#include <limits>

namespace dmp {

bool pick_spare_path(const std::vector<SchedPathState>& paths,
                     std::size_t exclude, std::size_t* out) {
  bool found = false;
  std::size_t best_space = 0;
  for (std::size_t k = 0; k < paths.size(); ++k) {
    if (k == exclude || paths[k].down || paths[k].space == 0) continue;
    if (paths[k].space > best_space) {
      best_space = paths[k].space;
      *out = k;
      found = true;
    }
  }
  return found;
}

// --- pull (the paper's scheme) ---

bool PullScheduler::pick(const std::vector<SchedPathState>& paths,
                         const std::deque<std::int64_t>& queue,
                         SchedDecision* out) {
  switch (mode_) {
    case Mode::kIdle:
      return false;
    case Mode::kFocus:
      // pull_into(k): drain one sender until it blocks or the queue empties.
      if (!queue.empty() && !paths[focus_].down && paths[focus_].space > 0) {
        out->kind = SchedDecision::Kind::kPull;
        out->path = focus_;
        out->queue_pos = 0;
        out->packet = queue.front();
        return true;
      }
      mode_ = Mode::kIdle;
      return false;
    case Mode::kRound:
      // offer_all(): visit every sender once from the rotating start index,
      // fully draining each; the rotation advances exactly once per offer,
      // whether or not anything was dispatched.
      while (round_i_ < n_) {
        if (queue.empty()) break;
        const std::size_t k = (rotate_ + round_i_) % n_;
        if (!paths[k].down && paths[k].space > 0) {
          out->kind = SchedDecision::Kind::kPull;
          out->path = k;
          out->queue_pos = 0;
          out->packet = queue.front();
          return true;
        }
        ++round_i_;
      }
      rotate_ = (rotate_ + 1) % n_;
      mode_ = Mode::kIdle;
      return false;
  }
  return false;
}

// --- weighted (static split via the shared deficit rule) ---

WeightedScheduler::WeightedScheduler(std::size_t num_paths,
                                     std::vector<double> weights)
    : split_(num_paths, std::move(weights)),
      up_(num_paths, 1),
      pending_(num_paths) {}

void WeightedScheduler::assign(std::int64_t packet) {
  pending_[split_.assign_among(&up_)].push_back(packet);
}

void WeightedScheduler::on_generate(std::int64_t packet) { assign(packet); }

void WeightedScheduler::on_path_down(
    std::size_t path, const std::vector<std::int64_t>& reclaimed,
    const std::vector<AtRiskPacket>& /*at_risk*/, double /*srtt_s*/) {
  up_[path] = 0;
  // The dead path's share — reclaimed sender tags (oldest) plus its
  // pending assignment — is re-split across the surviving paths.
  std::deque<std::int64_t> orphans;
  orphans.insert(orphans.end(), reclaimed.begin(), reclaimed.end());
  orphans.insert(orphans.end(), pending_[path].begin(), pending_[path].end());
  pending_[path].clear();
  for (std::int64_t tag : orphans) assign(tag);
}

bool WeightedScheduler::pick(const std::vector<SchedPathState>& paths,
                             const std::deque<std::int64_t>& queue,
                             SchedDecision* out) {
  for (std::size_t k = 0; k < paths.size(); ++k) {
    if (paths[k].down || paths[k].space == 0) continue;
    auto& pend = pending_[k];
    while (!pend.empty()) {
      const std::int64_t tag = pend.front();
      // The shared queue holds ascending tags, so the assigned packet's
      // position is a binary search away.
      const auto it = std::lower_bound(queue.begin(), queue.end(), tag);
      if (it == queue.end() || *it != tag) {
        pend.pop_front();  // stale assignment (defensive; should not occur)
        continue;
      }
      out->kind = SchedDecision::Kind::kPull;
      out->path = k;
      out->queue_pos = static_cast<std::size_t>(it - queue.begin());
      out->packet = tag;
      pend.pop_front();
      return true;
    }
  }
  return false;
}

// --- best_path ---

bool BestPathScheduler::pick(const std::vector<SchedPathState>& paths,
                             const std::deque<std::int64_t>& queue,
                             SchedDecision* out) {
  if (queue.empty()) return false;
  std::size_t best = 0;
  double best_metric = std::numeric_limits<double>::infinity();
  bool found = false;
  for (std::size_t k = 0; k < paths.size(); ++k) {
    if (paths[k].down || paths[k].space == 0) continue;
    // No RTT sample yet ranks behind every measured path.
    const double metric =
        paths[k].srtt_s > 0.0 ? paths[k].srtt_s : std::numeric_limits<double>::max();
    if (!found || metric < best_metric) {
      best_metric = metric;
      best = k;
      found = true;
    }
  }
  if (!found) return false;
  out->kind = SchedDecision::Kind::kPull;
  out->path = best;
  out->queue_pos = 0;
  out->packet = queue.front();
  return true;
}

// --- round_robin ---

bool RoundRobinScheduler::pick(const std::vector<SchedPathState>& paths,
                               const std::deque<std::int64_t>& queue,
                               SchedDecision* out) {
  if (queue.empty()) return false;
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t k = (cursor_ + i) % n_;
    if (paths[k].down || paths[k].space == 0) continue;
    cursor_ = (k + 1) % n_;
    out->kind = SchedDecision::Kind::kPull;
    out->path = k;
    out->queue_pos = 0;
    out->packet = queue.front();
    return true;
  }
  return false;
}

// --- redundant ---

void RedundantScheduler::on_generate(std::int64_t packet) {
  frontier_ = packet;
  // Headroom detector: close out the previous generation interval — did
  // the shared queue drain to empty at any point during it?
  backlog_bits_ = (backlog_bits_ << 1) | (drained_since_gen_ ? 0u : 1u);
  drained_since_gen_ = false;
}

void RedundantScheduler::on_path_down(
    std::size_t /*path*/, const std::vector<std::int64_t>& /*reclaimed*/,
    const std::vector<AtRiskPacket>& at_risk, double srtt_s) {
  // Only the slice of the unacked set transmitted within ~one RTT of the
  // fault can actually be caught in the blackhole: an older segment's
  // delivery (and usually its ACK) completed while the link was still up,
  // so copying it would waste survivor capacity exactly when the stream
  // has none to spare.  An unmeasured SRTT means the sender barely
  // started — the whole (tiny) set is then at risk.
  const double horizon =
      srtt_s > 0.0 ? srtt_s : std::numeric_limits<double>::infinity();
  for (const auto& p : at_risk) {
    if (p.age_s <= horizon) failover_.push_back(p.tag);
  }
}

bool RedundantScheduler::pick(const std::vector<SchedPathState>& raw_paths,
                              const std::deque<std::int64_t>& queue,
                              SchedDecision* out) {
  if (queue.empty()) drained_since_gen_ = true;
  // Mask stalled paths (deep RTO backoff) as down so neither data nor
  // copies queue up behind a retransmission that may be tens of seconds
  // out — but only while the stream has headroom (most recent generation
  // intervals saw the queue drain to empty).  At saturation the mask is
  // disarmed: a backed-off path is still needed capacity there.  If no
  // live path survives the mask, run unmasked — a stalled path beats
  // dropping the stream on the floor.
  const int undrained = std::popcount(
      backlog_bits_ & ((std::uint64_t{1} << kHeadroomWindow) - 1));
  const bool mask_armed = undrained <= kSaturatedBacklog;
  masked_ = raw_paths;
  bool any_live = false;
  for (auto& p : masked_) {
    if (p.down) continue;
    if (mask_armed && p.rto_backoff >= kStallBackoff) {
      p.down = true;
    } else {
      any_live = true;
    }
  }
  const std::vector<SchedPathState>& paths = any_live ? masked_ : raw_paths;
  // Failover copies first: they stand in for retransmissions the dead
  // sender cannot make.  Any live path with room carries them.
  if (!failover_.empty()) {
    std::size_t spare = 0;
    if (pick_spare_path(paths, paths.size(), &spare)) {
      out->kind = SchedDecision::Kind::kDuplicate;
      out->path = spare;
      out->queue_pos = 0;
      out->packet = failover_.front();
      failover_.pop_front();
      ++dups_sent_;
      return true;
    }
  }
  if (pull_.pick(paths, queue, out)) {
    ++data_sent_;
    return true;
  }
  // The steady-state copy rides only genuinely idle capacity — the shared
  // queue is drained (pull found nothing) and the copy budget (kBudgetDen)
  // has room.  It re-sends the head-of-line packet: the oldest
  // transmitted-but-unacked tag across all paths is the packet closest to
  // its playback deadline, stuck behind the slowest path's backlog; a copy
  // on an idle path overtakes that backlog.  When the copy is not possible
  // it is skipped, not queued: redundancy never delays the stream.  And it
  // only goes out when the head-of-line packet genuinely lags the stream
  // frontier (kLagMin) — a healthy stream's oldest unacked trails by a
  // handful of tags, and copying it rescues nothing while perturbing a
  // possibly near-capacity system.
  if (queue.empty() && (dups_sent_ + 1) * kBudgetDen <= data_sent_) {
    std::size_t hol_path = 0;
    std::int64_t hol_tag = -1;
    for (std::size_t k = 0; k < paths.size(); ++k) {
      const std::int64_t tag = paths[k].oldest_unacked;
      if (tag < 0) continue;
      if (hol_tag < 0 || tag < hol_tag) {
        hol_tag = tag;
        hol_path = k;
      }
    }
    std::size_t spare = 0;
    if (hol_tag >= 0 && hol_tag != last_dup_tag_ &&
        frontier_ - hol_tag >= kLagMin &&
        pick_spare_path(paths, hol_path, &spare)) {
      out->kind = SchedDecision::Kind::kDuplicate;
      out->path = spare;
      out->queue_pos = 0;
      out->packet = hol_tag;
      last_dup_tag_ = hol_tag;
      ++dups_sent_;
      return true;
    }
  }
  return false;
}

// --- parity-k ---

ParityScheduler::ParityScheduler(std::size_t num_paths, int k)
    : pull_(num_paths), name_("parity-" + std::to_string(k)), k_(k) {}

bool ParityScheduler::pick(const std::vector<SchedPathState>& paths,
                           const std::deque<std::int64_t>& queue,
                           SchedDecision* out) {
  if (parity_pending_) {
    parity_pending_ = false;
    const std::int64_t first = first_;
    first_ = -1;
    count_ = 0;
    std::size_t spare = 0;
    if (pick_spare_path(paths, last_path_, &spare)) {
      out->kind = SchedDecision::Kind::kParity;
      out->path = spare;
      out->queue_pos = 0;
      out->packet = encode_parity_tag(first, k_);
      return true;
    }
    // No spare window: this parity packet is dropped, not deferred.
  }
  if (!pull_.pick(paths, queue, out)) return false;
  // Parity covers k *consecutive* tags; a gap (reclaim reordering) restarts
  // the window at the current packet.
  if (count_ == 0 || out->packet != first_ + count_) {
    first_ = out->packet;
    count_ = 0;
  }
  ++count_;
  last_path_ = out->path;
  if (count_ == k_) parity_pending_ = true;
  return true;
}

}  // namespace dmp
