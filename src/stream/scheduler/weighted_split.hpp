// Deficit weighted round-robin packet-to-path assignment — the static
// multipath split rule (Section 7.4), shared by StaticStreamingServer and
// the `weighted` PathScheduler so both schemes split identically for the
// same weights.
#pragma once

#include <cstdint>
#include <vector>

namespace dmp {

class WeightedSplit {
 public:
  // `weights` gives the long-run fraction of packets per path (measured
  // average bandwidths in the paper); empty means an even split over
  // `num_paths`.  Throws std::invalid_argument on a negative weight or a
  // non-positive total.
  WeightedSplit(std::size_t num_paths, std::vector<double> weights);

  // Assigns the next packet: the path furthest behind its target share.
  // Equal weights reduce to plain round-robin (odd/even for K = 2);
  // unequal weights interleave proportionally.
  std::size_t assign() { return assign_among(nullptr); }

  // Same deficit rule restricted to paths with allowed[k] != 0 (used under
  // faults: a down path must not accumulate fresh packets).  `allowed`
  // null, or with no allowed entry, falls back to the unrestricted rule.
  std::size_t assign_among(const std::vector<char>* allowed);

  const std::vector<double>& weights() const { return weights_; }
  std::int64_t assigned(std::size_t k) const { return assigned_[k]; }

 private:
  std::vector<double> weights_;         // normalized target fractions
  std::vector<std::int64_t> assigned_;  // packets assigned per path
  std::int64_t total_ = 0;              // packets assigned overall
};

}  // namespace dmp
