// Pluggable path-scheduling policies for the DMP streaming server.
//
// The paper's scheme hard-codes one policy: pull the head-of-queue packet
// onto whichever path has TCP send-buffer room (Fig. 2).  PathScheduler
// extracts that decision behind an interface so the same server core can
// run alternative policies — weighted static splits, lowest-RTT path,
// round-robin, per-packet duplication, and XOR parity à la CTCP — chosen
// by a validated spec string (the DMP_SCHED bench knob).
//
// Contract (see docs/SCHEDULERS.md for the full decision table):
//   * The server owns the shared queue, the senders and all observability;
//     the scheduler only decides *what to send where next*.  After any
//     hook fires, the server calls pick() repeatedly and executes each
//     decision until pick() returns false.
//   * `pull` reproduces the paper's scheme decision-for-decision: with the
//     default spec the server's pull sequence — and therefore every golden
//     figure — is byte-identical to the pre-interface implementation
//     (pinned by tests/stream/scheduler_differential_test.cpp).
//   * Policies that can deliver a stream packet more than once (redundant,
//     parity-k) declare needs_dedup(); the session then routes client
//     deliveries through a RedundancyFilter for exactly-once semantics.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace dmp {

// Snapshot of one sender/path at decision time.
struct SchedPathState {
  std::size_t space = 0;  // free send-buffer slots
  bool down = false;      // fault injector latched the path down
  double srtt_s = 0.0;    // smoothed RTT estimate (0 until the first sample)
  // Oldest transmitted-but-unacked tag on this path (-1 when none): the
  // head-of-line packet, i.e. the most deadline-critical one still in the
  // path's hands.  Stream tags ascend with generation time, so the global
  // minimum across paths is the packet closest to playing late.
  std::int64_t oldest_unacked = -1;
  // The sender's Karn backoff multiplier (1 = healthy; doubles per
  // consecutive unanswered RTO).  A large value flags a stalled path: its
  // next retransmission may be tens of seconds out, and anything handed to
  // it meanwhile sits behind that stall.
  std::uint32_t rto_backoff = 1;
};

// One transmitted-but-unacked packet on a failed path, as seen at the
// fault instant.  `age_s` (time since its last transmission) separates
// packets that can genuinely be caught in the blackhole — sent within
// ~one RTT of the fault — from older ones that were already delivered
// and merely lost their ACK.
struct AtRiskPacket {
  std::int64_t tag = -1;
  double age_s = 0.0;
};

// One dispatch decision.
struct SchedDecision {
  enum class Kind : std::uint8_t {
    kPull,       // move queue[queue_pos] onto `path` (consumes the packet)
    kDuplicate,  // send a copy of already-pulled `packet` on `path`
    kParity,     // send a synthetic parity packet (negative tag) on `path`
  };
  Kind kind = Kind::kPull;
  std::size_t path = 0;
  std::size_t queue_pos = 0;  // kPull: index into the shared queue
  std::int64_t packet = -1;   // the tag that will ride the wire
};

// XOR-parity packets ride the existing app-tag channel as negative tags, so
// no wire format changes: tag <= kParityTagBase - 2 encodes "parity of the
// k consecutive data packets [first, first + 64)-window".  The simulation
// carries abstract tags rather than payloads, so "XOR recovery" at the
// client means: when all but one covered packet have been seen, the missing
// one is reconstructible (see RedundancyFilter).
inline constexpr std::int64_t kParityTagBase = -1000;
inline constexpr int kParityKMin = 2;
inline constexpr int kParityKMax = 32;

inline std::int64_t encode_parity_tag(std::int64_t first, int k) {
  return kParityTagBase - (first * 64 + k);
}
inline bool is_parity_tag(std::int64_t tag) {
  return tag <= kParityTagBase - kParityKMin;
}
inline void decode_parity_tag(std::int64_t tag, std::int64_t* first, int* k) {
  const std::int64_t v = kParityTagBase - tag;
  *k = static_cast<int>(v % 64);
  *first = v / 64;
}

class PathScheduler {
 public:
  virtual ~PathScheduler() = default;

  // Canonical spec string ("pull", "weighted", "parity-4", ...).
  virtual const char* name() const = 0;

  // True when the policy can deliver the same stream packet more than once;
  // the client must then dedup before recording its trace.
  virtual bool needs_dedup() const { return false; }

  // --- event hooks, mirroring the server / fault layer ---
  // A new stream packet was appended to the shared queue.
  virtual void on_generate(std::int64_t /*packet*/) {}
  // Path `path`'s sender freed send-buffer space (ACK arrived).
  virtual void on_window_open(std::size_t /*path*/) {}
  // Generation / reclaim instant: every path may be offered the backlog.
  virtual void on_offer() {}
  // Fault layer: path went down.  `reclaimed` are the tags the server just
  // returned from the dead sender to the front of the shared queue (never
  // transmitted — they re-ride as ordinary data); `at_risk` are the tags
  // the dead sender transmitted but never saw acknowledged — stuck behind
  // its RTO backoff unless a policy re-sends them on the survivors.
  // `srtt_s` is the dead sender's smoothed RTT at the fault instant (0 if
  // never measured): the natural loss horizon against each at-risk age.
  virtual void on_path_down(std::size_t /*path*/,
                            const std::vector<std::int64_t>& /*reclaimed*/,
                            const std::vector<AtRiskPacket>& /*at_risk*/,
                            double /*srtt_s*/) {}
  virtual void on_path_up(std::size_t /*path*/) {}

  // Produces the next decision, or returns false when the policy has
  // nothing (more) to dispatch right now.  `queue` is the shared server
  // queue (ascending tags); `paths` is refreshed before every call.
  virtual bool pick(const std::vector<SchedPathState>& paths,
                    const std::deque<std::int64_t>& queue,
                    SchedDecision* out) = 0;
};

// Parsed, validated scheduler spec — the DMP_SCHED grammar:
//   pull | weighted[:w0,w1,...] | best_path | round_robin | redundant |
//   parity-<k>          (k in [2, 32])
struct SchedulerSpec {
  enum class Strategy : std::uint8_t {
    kPull,
    kWeighted,
    kBestPath,
    kRoundRobin,
    kRedundant,
    kParity,
  };
  Strategy strategy = Strategy::kPull;
  std::vector<double> weights{};  // kWeighted: explicit split (else path rates)
  int parity_k = 0;               // kParity: data packets per parity packet
  std::string text = "pull";      // canonical spec string

  // Throws std::invalid_argument naming the bad token and the accepted set.
  static SchedulerSpec parse(const std::string& spec);

  // Policies that require client-side exactly-once dedup.
  bool redundant() const {
    return strategy == Strategy::kRedundant || strategy == Strategy::kParity;
  }
};

// The accepted-spec set, for error messages and option docs.
const char* scheduler_spec_grammar();

// Builds the scheduler for `spec` over `num_paths` senders.
// `default_weights` (one entry per path, e.g. configured path bandwidths)
// seeds the `weighted` strategy when the spec carries no explicit weights;
// empty means an even split.  Throws std::invalid_argument when explicit
// weights do not match `num_paths` or are invalid.
std::unique_ptr<PathScheduler> make_path_scheduler(
    const SchedulerSpec& spec, std::size_t num_paths,
    const std::vector<double>& default_weights = {});

}  // namespace dmp
