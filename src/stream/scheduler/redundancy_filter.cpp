#include "stream/scheduler/redundancy_filter.hpp"

#include "stream/scheduler/path_scheduler.hpp"

namespace dmp {

void RedundancyFilter::mark(std::int64_t tag) {
  const auto index = static_cast<std::size_t>(tag);
  if (index >= seen_.size()) seen_.resize(index + 1, false);
  seen_[index] = true;
}

void RedundancyFilter::on_deliver(
    std::int64_t tag, const std::function<void(std::int64_t)>& deliver) {
  if (is_parity_tag(tag)) {
    ++counters_.parity_received;
    std::int64_t first = 0;
    int k = 0;
    decode_parity_tag(tag, &first, &k);
    std::int64_t missing = -1;
    int missing_count = 0;
    for (std::int64_t t = first; t < first + k; ++t) {
      if (!seen(t)) {
        missing = t;
        ++missing_count;
      }
    }
    if (missing_count == 1) {
      ++counters_.parity_recovered;
      mark(missing);
      deliver(missing);
    } else {
      ++counters_.parity_unused;
    }
    return;
  }
  if (tag < 0) return;  // background / control tags
  if (seen(tag)) {
    ++counters_.duplicates_suppressed;
    return;
  }
  mark(tag);
  deliver(tag);
}

}  // namespace dmp
