// Client-side exactly-once filter for redundant scheduling policies.
//
// The redundant / parity-k schedulers may put the same stream packet on
// the wire more than once (a copy, or a parity packet it is recoverable
// from).  StreamTrace assumes at-most-once recording — a duplicate entry
// would corrupt late_fraction_playback_order — so sessions running a
// needs_dedup() policy route every sink delivery through this filter:
//
//   * the first sight of a data tag passes through;
//   * repeats are suppressed (counted, not delivered);
//   * a parity tag (see path_scheduler.hpp's encoding) covering exactly
//     one still-missing data packet reconstructs it — the simulation's
//     tag-level equivalent of XOR recovery — delivering the missing tag
//     at the parity packet's arrival instant; parity with zero or more
//     than one missing packet is counted and discarded.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace dmp {

class RedundancyFilter {
 public:
  struct Counters {
    std::uint64_t duplicates_suppressed = 0;  // repeat data arrivals dropped
    std::uint64_t parity_received = 0;        // parity packets that arrived
    std::uint64_t parity_recovered = 0;       // data packets reconstructed
    std::uint64_t parity_unused = 0;          // 0 or >1 covered tags missing
  };

  // Handles one in-order sink delivery of `tag`; invokes `deliver` at most
  // once with a data tag that should be recorded (first sight or parity
  // recovery).  Negative non-parity tags (background/control) are ignored.
  void on_deliver(std::int64_t tag,
                  const std::function<void(std::int64_t)>& deliver);

  bool seen(std::int64_t tag) const {
    return tag >= 0 && static_cast<std::size_t>(tag) < seen_.size() &&
           seen_[static_cast<std::size_t>(tag)];
  }
  const Counters& counters() const { return counters_; }

 private:
  void mark(std::int64_t tag);

  std::vector<bool> seen_;  // indexed by data tag
  Counters counters_;
};

}  // namespace dmp
