#include "stream/scheduler/path_scheduler.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "stream/scheduler/strategies.hpp"

namespace dmp {

namespace {

[[noreturn]] void bad_spec(const std::string& message) {
  throw std::invalid_argument{message + " (accepted: " +
                              scheduler_spec_grammar() + ")"};
}

// Strict full-token double parse; "0.5x" and "" are errors.
double parse_weight(const std::string& spec, const std::string& token) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(v) || v < 0.0) {
    bad_spec("bad weight '" + token + "' in scheduler spec '" + spec + "'");
  }
  return v;
}

}  // namespace

const char* scheduler_spec_grammar() {
  return "pull, weighted[:w0,w1,...], best_path, round_robin, redundant, "
         "parity-<k> for k in [2,32]";
}

SchedulerSpec SchedulerSpec::parse(const std::string& spec) {
  SchedulerSpec out;
  out.text = spec;
  if (spec == "pull") {
    out.strategy = Strategy::kPull;
    return out;
  }
  if (spec == "best_path") {
    out.strategy = Strategy::kBestPath;
    return out;
  }
  if (spec == "round_robin") {
    out.strategy = Strategy::kRoundRobin;
    return out;
  }
  if (spec == "redundant") {
    out.strategy = Strategy::kRedundant;
    return out;
  }
  if (spec == "weighted" || spec.rfind("weighted:", 0) == 0) {
    out.strategy = Strategy::kWeighted;
    if (spec.size() > 9) {
      std::string rest = spec.substr(9);
      std::size_t start = 0;
      while (true) {
        const std::size_t comma = rest.find(',', start);
        const std::string token =
            rest.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        out.weights.push_back(parse_weight(spec, token));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (spec.size() == 9) {
      bad_spec("scheduler spec '" + spec + "' has an empty weight list");
    }
    return out;
  }
  if (spec.rfind("parity-", 0) == 0) {
    const std::string token = spec.substr(7);
    errno = 0;
    char* end = nullptr;
    const long k = std::strtol(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0' || errno == ERANGE) {
      bad_spec("bad parity window '" + token + "' in scheduler spec '" +
               spec + "'");
    }
    if (k < kParityKMin || k > kParityKMax) {
      bad_spec("parity window " + std::to_string(k) + " out of range [" +
               std::to_string(kParityKMin) + ", " +
               std::to_string(kParityKMax) + "]");
    }
    out.strategy = Strategy::kParity;
    out.parity_k = static_cast<int>(k);
    return out;
  }
  bad_spec("unknown scheduler '" + spec + "'");
}

std::unique_ptr<PathScheduler> make_path_scheduler(
    const SchedulerSpec& spec, std::size_t num_paths,
    const std::vector<double>& default_weights) {
  if (num_paths == 0) {
    throw std::invalid_argument{"scheduler needs >= 1 path"};
  }
  switch (spec.strategy) {
    case SchedulerSpec::Strategy::kPull:
      return std::make_unique<PullScheduler>(num_paths);
    case SchedulerSpec::Strategy::kWeighted: {
      std::vector<double> weights =
          spec.weights.empty() ? default_weights : spec.weights;
      if (!weights.empty() && weights.size() != num_paths) {
        throw std::invalid_argument{
            "scheduler spec '" + spec.text + "' carries " +
            std::to_string(weights.size()) + " weights for " +
            std::to_string(num_paths) + " paths"};
      }
      return std::make_unique<WeightedScheduler>(num_paths,
                                                 std::move(weights));
    }
    case SchedulerSpec::Strategy::kBestPath:
      return std::make_unique<BestPathScheduler>();
    case SchedulerSpec::Strategy::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>(num_paths);
    case SchedulerSpec::Strategy::kRedundant:
      return std::make_unique<RedundantScheduler>(num_paths);
    case SchedulerSpec::Strategy::kParity:
      return std::make_unique<ParityScheduler>(num_paths, spec.parity_k);
  }
  return nullptr;  // unreachable
}

}  // namespace dmp
