// Static multipath streaming (Section 7.4 baseline): packets are assigned
// to paths by a fixed rule decided in advance — packet n goes to path
// n mod K (the paper's odd/even split for K = 2, generalizing to weighted
// splits when average path bandwidths differ).  Each sender pulls only from
// its own private queue, so a congested path blocks its own share of the
// stream even while the other path idles.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "stream/scheduler/weighted_split.hpp"
#include "stream/stream_server.hpp"
#include "tcp/reno_sender.hpp"
#include "util/sim_time.hpp"

namespace dmp {

class StaticStreamingServer : public StreamServer {
 public:
  // `weights` gives the long-run fraction of packets per path (measured
  // average bandwidths in the paper); empty means an even split.
  StaticStreamingServer(Scheduler& sched, double mu_pps,
                        std::vector<RenoSender*> senders, SimTime start,
                        SimTime duration, std::vector<double> weights = {});

  std::int64_t packets_generated() const override { return next_number_; }
  std::size_t queue_length(std::size_t k) const { return queues_[k].size(); }
  // Packets fetched by sender k from its private queue.
  std::uint64_t pulls(std::size_t k) const override { return pulls_[k]; }

  const char* scheme_name() const override { return "static"; }
  // Static streaming *is* the weighted split, applied offline: the same
  // deficit rule the `weighted` PathScheduler uses (shared WeightedSplit).
  const char* scheduler_name() const override { return "weighted"; }

  // Registers the `<prefix>.generated` counter, per-path `<prefix>.pulls.
  // path<k>` counters and `<prefix>.queue_depth.path<k>` sampler gauges.
  // Optional; a no-op when never called.
  void attach_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix) override;

  // Records per-stream-packet birth (kGenerate, with the chosen path and
  // that path's private-queue depth) and sender fetch (kPull) span events.
  // Optional; a no-op when never called.
  void set_flight_recorder(obs::FlightRecorder* recorder) override {
    flight_ = recorder;
  }
  void set_telemetry(obs::TimeSeriesChannel* backlog,
                     obs::TimeSeriesChannel* generated) override {
    ts_backlog_ = backlog;
    ts_generated_ = generated;
  }

  // Path failure (fault injector): static streaming has NO graceful
  // degradation — that is the point of the baseline.  The packet-to-path
  // assignment is fixed in advance, so a failed path's share keeps being
  // generated into its private queue and stalls head-of-line there (the
  // sender's buffer fills behind the dead link and pulls stop naturally).
  // The overrides only latch the state for introspection; reassigning the
  // stalled share would turn the baseline into DMP.
  void on_path_down(std::size_t k) override { down_[k] = true; }
  void on_path_up(std::size_t k) override { down_[k] = false; }
  bool path_down(std::size_t k) const { return down_[k]; }

  // One private backlog gauge per path.
  std::vector<std::string> probe_columns(
      const std::string& prefix, std::size_t num_flows) const override {
    std::vector<std::string> columns;
    for (std::size_t k = 0; k < num_flows; ++k) {
      columns.push_back(prefix + ".queue_depth.path" + std::to_string(k));
    }
    return columns;
  }

 private:
  void generate();
  void pull_into(std::size_t k);

  Scheduler& sched_;
  double mu_pps_;
  std::vector<RenoSender*> senders_;
  SimTime period_;
  SimTime end_;
  // The packet-to-path assignment rule, shared with the `weighted`
  // PathScheduler so both split identically for the same weights.
  WeightedSplit split_;

  std::vector<std::deque<std::int64_t>> queues_;
  std::int64_t next_number_ = 0;
  std::vector<std::uint64_t> pulls_;
  std::vector<bool> down_;  // latched fault state (introspection only)

  obs::Counter* m_generated_ = nullptr;
  std::vector<obs::Counter*> m_pulls_;
  obs::FlightRecorder* flight_ = nullptr;
  obs::TimeSeriesChannel* ts_backlog_ = nullptr;
  obs::TimeSeriesChannel* ts_generated_ = nullptr;
};

}  // namespace dmp
