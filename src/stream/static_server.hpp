// Static multipath streaming (Section 7.4 baseline): packets are assigned
// to paths by a fixed rule decided in advance — packet n goes to path
// n mod K (the paper's odd/even split for K = 2, generalizing to weighted
// splits when average path bandwidths differ).  Each sender pulls only from
// its own private queue, so a congested path blocks its own share of the
// stream even while the other path idles.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "tcp/reno_sender.hpp"
#include "util/sim_time.hpp"

namespace dmp {

class StaticStreamingServer {
 public:
  // `weights` gives the long-run fraction of packets per path (measured
  // average bandwidths in the paper); empty means an even split.
  StaticStreamingServer(Scheduler& sched, double mu_pps,
                        std::vector<RenoSender*> senders, SimTime start,
                        SimTime duration, std::vector<double> weights = {});

  std::int64_t packets_generated() const { return next_number_; }
  std::size_t queue_length(std::size_t k) const { return queues_[k].size(); }

  // Registers the `<prefix>.generated` counter, per-path `<prefix>.pulls.
  // path<k>` counters and `<prefix>.queue_depth.path<k>` sampler gauges.
  // Optional; a no-op when never called.
  void attach_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix);

  // Records per-stream-packet birth (kGenerate, with the chosen path and
  // that path's private-queue depth) and sender fetch (kPull) span events.
  // Optional; a no-op when never called.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    flight_ = recorder;
  }

 private:
  void generate();
  void pull_into(std::size_t k);
  std::size_t assign_path();

  Scheduler& sched_;
  double mu_pps_;
  std::vector<RenoSender*> senders_;
  SimTime period_;
  SimTime end_;
  std::vector<double> weights_;            // normalized target fractions
  std::vector<std::int64_t> assigned_;     // packets assigned per path

  std::vector<std::deque<std::int64_t>> queues_;
  std::int64_t next_number_ = 0;

  obs::Counter* m_generated_ = nullptr;
  std::vector<obs::Counter*> m_pulls_;
  obs::FlightRecorder* flight_ = nullptr;
};

}  // namespace dmp
