#include "stream/session.hpp"

#include <cmath>
#include <filesystem>
#include <memory>
#include <stdexcept>

#include "fault/fault_injector.hpp"
#include "net/qdisc/queue_discipline.hpp"
#include "net/topology.hpp"
#include "obs/probe.hpp"
#include "obs/run_report.hpp"
#include "sim/scheduler.hpp"
#include "stream/scheduler/redundancy_filter.hpp"
#include "stream/stream_server.hpp"
#include "tcp/connection.hpp"
#include "util/rng.hpp"
#include "util/seed_stream.hpp"

namespace dmp {

namespace {

// Registers the scheduler's work counters as sampler gauges so probes can
// plot event-rate over time (the scheduler itself stays obs-free to keep
// the sim -> obs dependency one-directional).
// Seed-stream kind for AQM early-drop trials (registered in
// src/exp/plan.hpp): per-path Rng roots disjoint from every other random
// quantity the session derives from its seed.
constexpr std::uint64_t kQdiscSeedDomain = 18ULL << 32;

// The validated spec for path `index`, with its per-path trial seed.
QdiscSpec qdisc_for_path(const QdiscSpec& spec, std::uint64_t session_seed,
                         std::size_t index) {
  QdiscSpec out = spec;
  out.seed = SeedStream(session_seed, kQdiscSeedDomain).at(index);
  return out;
}

void attach_scheduler_gauges(obs::MetricsRegistry& registry,
                             const Scheduler& sched) {
  registry.gauge("sched.events_pending").set_sampler([&sched] {
    return static_cast<double>(sched.events_pending());
  });
  registry.gauge("sched.events_executed").set_sampler([&sched] {
    return static_cast<double>(sched.events_executed());
  });
  registry.gauge("sched.events_cancelled").set_sampler([&sched] {
    return static_cast<double>(sched.events_cancelled());
  });
  registry.gauge("sched.max_events_pending").set_sampler([&sched] {
    return static_cast<double>(sched.max_events_pending());
  });
}

}  // namespace

SessionResult run_session(const SessionConfig& config) {
  if (config.path_configs.empty()) {
    throw std::invalid_argument{"session needs at least one path config"};
  }
  if (config.correlated && config.path_configs.size() != 1) {
    throw std::invalid_argument{"correlated sessions use a single bottleneck"};
  }
  if (!config.correlated && config.path_configs.size() != config.num_flows) {
    throw std::invalid_argument{
        "independent sessions need one path config per video flow"};
  }
  // Parse the dispatch-policy spec up front so a typo fails before any
  // network is built.  Only DMP sessions running a redundant policy route
  // deliveries through the exactly-once filter; everything else keeps the
  // direct callback path (no allocation, no behavior change).
  const SchedulerSpec scheduler_spec = SchedulerSpec::parse(config.scheduler);
  // Same fail-fast discipline for the bottleneck queue spec and the DES
  // backend.
  const QdiscSpec qdisc_spec = QdiscSpec::parse(config.qdisc);
  const SchedulerBackend des_backend = parse_scheduler_backend(config.des);
  const bool dedup = config.scheme == StreamScheme::kDmp &&
                     scheduler_spec.redundant();
  std::unique_ptr<RedundancyFilter> redundancy;
  if (dedup) redundancy = std::make_unique<RedundancyFilter>();

  Scheduler sched(des_backend);
  Rng rng(config.seed);

  // --- observability (optional) ---
  std::shared_ptr<obs::MetricsRegistry> registry;
  std::shared_ptr<obs::EventLog> events;
  std::shared_ptr<obs::FlightRecorder> flight;
  if (config.obs.enabled || config.obs.flight_recorder) {
    std::filesystem::create_directories(config.obs.output_dir);
  }
  if (config.obs.enabled) {
    registry = std::make_shared<obs::MetricsRegistry>();
    events = std::make_shared<obs::EventLog>(config.obs.event_ring_capacity,
                                             config.obs.min_severity);
    attach_scheduler_gauges(*registry, sched);
  }
  if (config.obs.flight_recorder) {
    flight = std::make_shared<obs::FlightRecorder>();
  }

  // --- streaming telemetry (optional; independent of `obs`) ---
  std::shared_ptr<obs::SessionTelemetry> telemetry;
  if (config.telemetry.enabled) {
    telemetry = std::make_shared<obs::SessionTelemetry>(config.telemetry);
    if (config.telemetry.write_artifacts) {
      std::filesystem::create_directories(config.telemetry.output_dir);
    }
  }

  // --- DES self-profiler (counts are deterministic; wall time opt-in) ---
  SessionResult result;
  if (config.profile) {
    sched.set_profiler(&result.profile, config.profile_wall_time);
  }

  // --- network paths + background traffic ---
  std::vector<std::unique_ptr<DumbbellPath>> paths;
  std::vector<std::unique_ptr<BackgroundTraffic>> background;
  for (std::size_t i = 0; i < config.path_configs.size(); ++i) {
    BottleneckConfig bottleneck = config.path_configs[i].bottleneck();
    bottleneck.qdisc = qdisc_for_path(qdisc_spec, config.seed, i);
    paths.push_back(std::make_unique<DumbbellPath>(sched, bottleneck));
    if (registry) {
      const std::string prefix = "link.path" + std::to_string(i);
      paths.back()->bottleneck().attach_metrics(*registry, prefix);
      paths.back()->bottleneck().set_event_log(events.get());
    }
    if (flight) paths.back()->set_flight_recorder(flight.get());
    if (telemetry) {
      const std::string prefix = "link.path" + std::to_string(i);
      paths.back()->bottleneck().set_telemetry(
          telemetry->series().channel(prefix + ".delivered"),
          telemetry->series().channel(prefix + ".drops"),
          telemetry->series().channel(prefix + ".queue_depth"));
    }
    const FlowId first_bg = static_cast<FlowId>(1000 * (i + 1));
    background.push_back(std::make_unique<BackgroundTraffic>(
        sched, *paths.back(), config.path_configs[i], first_bg, rng.fork()));
  }

  // --- video connections (flow k rides path k, or the shared path) ---
  TcpConfig video_tcp = config.video_tcp;
  if (video_tcp.send_overhead_s == 0.0) {
    // Default anti-phase-effect jitter (ns-2 overhead_ practice).
    video_tcp.send_overhead_s = 0.0005;
    video_tcp.jitter_seed = rng.next_u64();
  }
  std::vector<TcpConnection> video;
  std::vector<RenoSender*> senders;
  for (std::size_t k = 0; k < config.num_flows; ++k) {
    DumbbellPath& target = config.correlated ? *paths[0] : *paths[k];
    video.push_back(
        make_connection(sched, static_cast<FlowId>(k), target, video_tcp));
    senders.push_back(video.back().sender.get());
    if (registry) {
      const std::string suffix = ".path" + std::to_string(k);
      video.back().sender->attach_metrics(*registry, "tcp" + suffix);
      video.back().sender->set_event_log(events.get());
      video.back().sink->attach_metrics(*registry, "sink" + suffix);
    }
    if (flight) {
      video.back().sender->set_flight_recorder(flight.get());
      video.back().sink->set_flight_recorder(flight.get());
    }
    if (telemetry) {
      const std::string suffix = ".path" + std::to_string(k);
      video.back().sender->set_telemetry(
          telemetry->series().channel("tcp" + suffix + ".cwnd"),
          telemetry->series().channel("tcp" + suffix + ".srtt_s"));
      video.back().sink->set_telemetry(
          telemetry->series().channel("sink" + suffix + ".reorder_depth"));
    }
  }

  const SimTime epoch = SimTime::seconds(config.warmup_s);
  if (flight) flight->set_meta(config.mu_pps, epoch.ns());
  StreamTrace trace(config.mu_pps);
  for (std::size_t k = 0; k < config.num_flows; ++k) {
    const auto path32 = static_cast<std::uint32_t>(k);
    // Per-path arrival counter and end-to-end delay histogram (generation
    // to in-order delivery, the quantity the late-fraction analysis binns).
    obs::Counter* arrived = nullptr;
    obs::Histogram* delay = nullptr;
    if (registry) {
      arrived = &registry->counter("client.path" + std::to_string(k) +
                                   ".packets");
      delay = &registry->histogram("client.delay_s");
    }
    // Telemetry recording points: per-path goodput (sum/window = pps), the
    // generation-to-delivery delay sketch (the percentile columns of the
    // experiment report), and a late indicator whose window mean is the
    // windowed late fraction at `telemetry.late_tau_s`.
    obs::TimeSeriesChannel* ts_delivered = nullptr;
    obs::TimeSeriesChannel* ts_late = nullptr;
    obs::QuantileSketch* delay_sketch = nullptr;
    if (telemetry) {
      ts_delivered = telemetry->series().channel(
          "client.path" + std::to_string(k) + ".delivered");
      ts_late = telemetry->series().channel("client.late_indicator");
      delay_sketch = telemetry->sketch("client.delay_s");
    }
    const double late_tau = config.telemetry.late_tau_s;
    obs::FlightRecorder* fr = flight.get();
    RedundancyFilter* filter = redundancy.get();
    video[k].sink->set_deliver_callback(
        [&trace, path32, &sched, epoch, arrived, delay, fr, ts_delivered,
         ts_late, delay_sketch, late_tau, filter](std::int64_t tag, SimTime) {
          const auto record = [&](std::int64_t data_tag) {
            const SimTime arrival = sched.now() - epoch;
            trace.record(data_tag, arrival, path32);
            if (fr) {
              obs::FlightEvent e;
              e.t_ns = sched.now().ns();
              e.kind = obs::FlightEventKind::kArrive;
              e.packet = data_tag;
              e.path = static_cast<std::int32_t>(path32);
              fr->record(e);
            }
            if (arrived || delay_sketch || ts_late) {
              const double d =
                  (arrival - trace.generation_time(data_tag)).to_seconds();
              if (arrived) {
                arrived->inc();
                delay->observe(d);
              }
              if (delay_sketch) delay_sketch->add(d);
              if (ts_late) ts_late->add(sched.now(), d > late_tau ? 1.0 : 0.0);
            }
            if (ts_delivered) ts_delivered->bump(sched.now());
          };
          if (filter) {
            // Redundant policy: exactly-once semantics — first sight passes,
            // repeats are suppressed, a parity arrival may reconstruct the
            // one missing packet it covers (recorded at this instant).
            filter->on_deliver(tag, record);
            return;
          }
          if (tag < 0) return;
          record(tag);
        });
  }

  // --- server (scheme under test; one interface, no per-scheme wiring) ---
  const SimTime duration = SimTime::seconds(config.duration_s);
  std::unique_ptr<StreamServer> server = make_stream_server(
      config, sched, senders, epoch, duration, scheduler_spec);
  if (registry) {
    server->attach_metrics(*registry, "server");
    server->set_event_log(events.get());
  }
  if (flight) server->set_flight_recorder(flight.get());
  if (telemetry) {
    server->set_telemetry(telemetry->series().channel("server.backlog"),
                          telemetry->series().channel("server.generated"));
    // Redundancy channels only exist when the policy can emit them, so
    // compat-policy telemetry artifacts stay unchanged.
    if (dedup) {
      server->set_sched_telemetry(
          telemetry->series().channel("server.sched.duplicates"),
          telemetry->series().channel("server.sched.parity"));
    }
  }

  // --- fault injector (only when a plan is given: an empty spec builds
  // nothing and schedules nothing, keeping fault-free runs byte-identical
  // to a build without this block) ---
  std::unique_ptr<fault::FaultInjector> injector;
  if (!config.faults.empty()) {
    injector = std::make_unique<fault::FaultInjector>(
        sched, fault::FaultPlan::parse(config.faults), epoch);
    StreamServer* srv = server.get();
    const std::size_t flows = config.num_flows;
    for (std::size_t i = 0; i < paths.size(); ++i) {
      DumbbellPath* path = paths[i].get();
      fault::PathFaultTarget target;
      // Down the links first, then notify the server: reclaimed packets
      // re-offered to surviving senders must not leak onto the dead path.
      // Correlated sessions have one path carrying every flow, so its
      // outage stalls (and its recovery wakes) all of them.
      target.set_down = [path, srv, i, flows,
                         correlated = config.correlated](bool down) {
        path->set_path_down(down);
        if (correlated) {
          for (std::size_t f = 0; f < flows; ++f) {
            if (down) srv->on_path_down(f); else srv->on_path_up(f);
          }
        } else {
          if (down) srv->on_path_down(i); else srv->on_path_up(i);
        }
      };
      target.burst_loss = [path](std::uint64_t n) { path->drop_next(n); };
      target.rescale = [path](double bw, double delay) {
        path->rescale(bw, delay);
      };
      injector->add_path("path" + std::to_string(i),
                         static_cast<std::int32_t>(i), std::move(target));
    }
    injector->set_event_log(events.get());
    injector->set_flight_recorder(flight.get());
    injector->arm();
  }

  const SimTime horizon =
      epoch + duration + SimTime::seconds(config.drain_s);

  // --- time-series probe (per-path cwnd / RTT / queues, server backlog) ---
  std::unique_ptr<obs::Probe> probe;
  if (registry) {
    std::vector<std::string> columns =
        server->probe_columns("server", config.num_flows);
    for (std::size_t k = 0; k < config.num_flows; ++k) {
      const std::string path = ".path" + std::to_string(k);
      columns.push_back("tcp" + path + ".cwnd");
      columns.push_back("tcp" + path + ".ssthresh");
      columns.push_back("tcp" + path + ".srtt_s");
      columns.push_back("tcp" + path + ".buffered");
    }
    for (std::size_t i = 0; i < paths.size(); ++i) {
      columns.push_back("link.path" + std::to_string(i) + ".queue_depth");
    }
    columns.push_back("sched.events_pending");
    if (config.obs.probe_interval_s > 0.0) {
      result.probe_csv_path = config.obs.probe_csv_path();
      probe = std::make_unique<obs::Probe>(
          sched, *registry, std::move(columns), result.probe_csv_path,
          SimTime::seconds(config.obs.probe_interval_s));
      probe->set_limits(config.obs.probe_max_rows, config.obs.probe_max_bytes);
      probe->start(horizon);
    }
  }

  result.events_executed = sched.run_until(horizon);
  if (probe) {
    probe->stop();
    result.probe_rows_dropped = probe->dropped_rows();
  }
  if (injector) result.fault_events_fired = injector->events_fired();

  // --- per-path measurements (Table 2 / Table 3 rows) ---
  result.packets_generated = server->packets_generated();
  const auto split = trace.path_split(config.num_flows);
  for (std::size_t k = 0; k < config.num_flows; ++k) {
    const DumbbellPath& path = config.correlated ? *paths[0] : *paths[k];
    const auto counters =
        path.bottleneck().flow_counters(static_cast<FlowId>(k));
    PathMeasurement m;
    m.loss_rate = counters.arrivals == 0
                      ? 0.0
                      : static_cast<double>(counters.drops) /
                            static_cast<double>(counters.arrivals);
    m.rtt_s = video[k].sender->stats().mean_rtt_s();
    m.to_ratio = video[k].sender->stats().normalized_timeout();
    m.share = split[k];
    m.aqm_early_drops = path.bottleneck().qdisc_counters().early_drops;
    m.tcp = video[k].sender->stats();
    result.paths.push_back(m);
  }
  result.trace = std::move(trace);
  result.duplicates_sent = server->duplicates_sent();
  result.parity_sent = server->parity_sent();
  if (redundancy) {
    result.duplicates_suppressed = redundancy->counters().duplicates_suppressed;
    result.parity_recovered = redundancy->counters().parity_recovered;
  }

  // --- end-of-run artifacts ---
  if (flight) {
    flight->set_total_packets(result.packets_generated);
    result.trace_path = config.obs.trace_path();
    if (!flight->write_jsonl(result.trace_path)) {
      ++result.artifact_write_failures;
    }
    result.flight = std::move(flight);
  }
  if (probe && !probe->ok()) ++result.artifact_write_failures;
  if (telemetry) {
    if (config.telemetry.write_artifacts) {
      result.telemetry_csv_path = config.telemetry.telemetry_csv_path();
      result.sketches_path = config.telemetry.sketches_path();
    }
    result.artifact_write_failures += telemetry->write_artifacts();
    result.telemetry = std::move(telemetry);
  }
  if (registry) {
    // The instrumented objects die with this scope; keep their last values.
    registry->freeze_gauges();

    result.events_path = config.obs.events_path();
    if (!events->write_jsonl(result.events_path)) {
      ++result.artifact_write_failures;
    }

    obs::RunReport report;
    report.set_text("scheme", server->scheme_name());
    if (*server->scheduler_name() != '\0') {
      report.set_text("scheduler", server->scheduler_name());
    }
    // Qdisc identity + AQM discard tallies only when one actually ran, so
    // droptail reports stay byte-identical to pre-qdisc artifacts.
    if (!qdisc_spec.droptail()) {
      report.set_text("qdisc", qdisc_spec.kind_name());
      std::uint64_t early = 0;
      std::uint64_t overlimit = 0;
      std::vector<double> per_path_early;
      for (std::size_t i = 0; i < paths.size(); ++i) {
        const auto& counters = paths[i]->bottleneck().qdisc_counters();
        early += counters.early_drops;
        overlimit += counters.overlimit_drops;
        per_path_early.push_back(static_cast<double>(counters.early_drops));
      }
      report.set_scalar("aqm_early_drops", static_cast<std::int64_t>(early));
      report.set_scalar("aqm_overlimit_drops",
                        static_cast<std::int64_t>(overlimit));
      report.set_series("path_aqm_early_drops", per_path_early);
    }
    if (dedup) {
      report.set_scalar("duplicates_sent",
                        static_cast<std::int64_t>(result.duplicates_sent));
      report.set_scalar("parity_sent",
                        static_cast<std::int64_t>(result.parity_sent));
      report.set_scalar(
          "duplicates_suppressed",
          static_cast<std::int64_t>(result.duplicates_suppressed));
      report.set_scalar("parity_recovered",
                        static_cast<std::int64_t>(result.parity_recovered));
    }
    report.set_scalar("mu_pps", config.mu_pps);
    report.set_scalar("duration_s", config.duration_s);
    report.set_scalar("warmup_s", config.warmup_s);
    report.set_scalar("num_flows",
                      static_cast<std::int64_t>(config.num_flows));
    report.set_scalar("seed", static_cast<std::int64_t>(config.seed));
    report.set_scalar("packets_generated", result.packets_generated);
    report.set_scalar("arrivals",
                      static_cast<std::int64_t>(result.trace.arrivals()));
    report.set_scalar("out_of_order_fraction",
                      result.trace.out_of_order_fraction());
    report.set_scalar("events_executed",
                      static_cast<std::int64_t>(result.events_executed));
    report.set_scalar("events_cancelled",
                      static_cast<std::int64_t>(sched.events_cancelled()));
    report.set_scalar("max_events_pending",
                      static_cast<std::int64_t>(sched.max_events_pending()));
    report.set_scalar("events_overwritten",
                      static_cast<std::int64_t>(events->overwritten()));
    report.set_scalar("fault_events_fired",
                      static_cast<std::int64_t>(result.fault_events_fired));
    report.set_scalar("probe_rows_dropped",
                      static_cast<std::int64_t>(result.probe_rows_dropped));
    if (config.profile) {
      // Per-category executed-event attribution (deterministic counts).
      // Wall times stay out of the report unless explicitly requested: they
      // vary run to run and would poison golden comparisons.
      for (std::size_t c = 0; c < kNumEventCategories; ++c) {
        const auto cat = static_cast<EventCategory>(c);
        const std::string name{event_category_name(cat)};
        report.set_scalar(
            "sched.events." + name,
            static_cast<std::int64_t>(result.profile.by_category[c].executed));
        if (config.profile_wall_time) {
          report.set_scalar(
              "sched.wall_ns." + name,
              static_cast<std::int64_t>(result.profile.by_category[c].wall_ns));
        }
      }
    }
    // Artifact-write health: non-zero status means at least one artifact
    // (trace, probe CSV, event log) failed to reach disk before this report.
    report.set_scalar("io_errors",
                      static_cast<std::int64_t>(result.artifact_write_failures));
    report.set_scalar("status",
                      result.artifact_write_failures == 0 ? std::int64_t{0}
                                                          : std::int64_t{1});
    report.set_series("path_split", split);
    std::vector<double> loss, rtt, to_ratio;
    for (const auto& m : result.paths) {
      loss.push_back(m.loss_rate);
      rtt.push_back(m.rtt_s);
      to_ratio.push_back(m.to_ratio);
    }
    report.set_series("path_loss_rate", loss);
    report.set_series("path_rtt_s", rtt);
    report.set_series("path_to_ratio", to_ratio);
    // Late fractions at a few startup delays, so a report alone answers
    // "was this run healthy" without re-parsing the trace.
    const std::vector<double> taus{2.0, 4.0, 6.0, 8.0, 10.0};
    std::vector<double> late;
    for (double tau : taus) {
      late.push_back(result.trace.late_fraction_playback_order(
          tau, result.packets_generated));
    }
    report.set_series("late_taus_s", taus);
    report.set_series("late_fraction_playback", late);

    result.report_path = config.obs.report_path();
    if (!report.write(result.report_path, registry.get())) {
      ++result.artifact_write_failures;
    }
    result.metrics = std::move(registry);
    result.events = std::move(events);
  }
  return result;
}

std::vector<BackloggedProbe> measure_backlogged_paths(
    const PathConfig& config, std::size_t num_probe_flows, std::uint64_t seed,
    double duration_s, const TcpConfig& probe_tcp, const std::string& qdisc) {
  if (num_probe_flows == 0) {
    throw std::invalid_argument{"need at least one probe flow"};
  }
  Scheduler sched;
  Rng rng(seed);
  BottleneckConfig bottleneck = config.bottleneck();
  bottleneck.qdisc = qdisc_for_path(QdiscSpec::parse(qdisc), seed, 0);
  DumbbellPath path(sched, bottleneck);
  BackgroundTraffic background(sched, path, config, 1000, rng.fork());

  TcpConfig tcp = probe_tcp;
  if (tcp.send_overhead_s == 0.0) {
    tcp.send_overhead_s = 0.0005;
    tcp.jitter_seed = rng.next_u64();
  }
  std::vector<TcpConnection> probes;
  std::vector<std::unique_ptr<FtpSource>> sources;
  std::vector<std::int64_t> delivered(num_probe_flows, 0);
  for (std::size_t k = 0; k < num_probe_flows; ++k) {
    probes.push_back(make_connection(sched, static_cast<FlowId>(k), path, tcp));
    auto* count = &delivered[k];
    probes.back().sink->set_deliver_callback(
        [count](std::int64_t, SimTime) { ++*count; });
    sources.push_back(std::make_unique<FtpSource>(*probes.back().sender));
  }

  const double warmup_s = 20.0;
  sched.run_until(SimTime::seconds(warmup_s + duration_s));

  std::vector<BackloggedProbe> measurements;
  for (std::size_t k = 0; k < num_probe_flows; ++k) {
    const auto counters =
        path.bottleneck().flow_counters(static_cast<FlowId>(k));
    BackloggedProbe m;
    m.loss_rate = counters.arrivals == 0
                      ? 0.0
                      : static_cast<double>(counters.drops) /
                            static_cast<double>(counters.arrivals);
    m.rtt_s = probes[k].sender->stats().mean_rtt_s();
    m.to_ratio = probes[k].sender->stats().normalized_timeout();
    m.throughput_pps = static_cast<double>(delivered[k]) / duration_s;
    measurements.push_back(m);
  }
  return measurements;
}

}  // namespace dmp
