#include "stream/session.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "net/topology.hpp"
#include "sim/scheduler.hpp"
#include "stream/dmp_server.hpp"
#include "stream/static_server.hpp"
#include "stream/stored_server.hpp"
#include "tcp/connection.hpp"
#include "util/rng.hpp"

namespace dmp {

SessionResult run_session(const SessionConfig& config) {
  if (config.path_configs.empty()) {
    throw std::invalid_argument{"session needs at least one path config"};
  }
  if (config.correlated && config.path_configs.size() != 1) {
    throw std::invalid_argument{"correlated sessions use a single bottleneck"};
  }
  if (!config.correlated && config.path_configs.size() != config.num_flows) {
    throw std::invalid_argument{
        "independent sessions need one path config per video flow"};
  }

  Scheduler sched;
  Rng rng(config.seed);

  // --- network paths + background traffic ---
  std::vector<std::unique_ptr<DumbbellPath>> paths;
  std::vector<std::unique_ptr<BackgroundTraffic>> background;
  for (std::size_t i = 0; i < config.path_configs.size(); ++i) {
    paths.push_back(std::make_unique<DumbbellPath>(
        sched, config.path_configs[i].bottleneck()));
    const FlowId first_bg = static_cast<FlowId>(1000 * (i + 1));
    background.push_back(std::make_unique<BackgroundTraffic>(
        sched, *paths.back(), config.path_configs[i], first_bg, rng.fork()));
  }

  // --- video connections (flow k rides path k, or the shared path) ---
  TcpConfig video_tcp = config.video_tcp;
  if (video_tcp.send_overhead_s == 0.0) {
    // Default anti-phase-effect jitter (ns-2 overhead_ practice).
    video_tcp.send_overhead_s = 0.0005;
    video_tcp.jitter_seed = rng.next_u64();
  }
  std::vector<TcpConnection> video;
  std::vector<RenoSender*> senders;
  for (std::size_t k = 0; k < config.num_flows; ++k) {
    DumbbellPath& target = config.correlated ? *paths[0] : *paths[k];
    video.push_back(
        make_connection(sched, static_cast<FlowId>(k), target, video_tcp));
    senders.push_back(video.back().sender.get());
  }

  const SimTime epoch = SimTime::seconds(config.warmup_s);
  StreamTrace trace(config.mu_pps);
  for (std::size_t k = 0; k < config.num_flows; ++k) {
    const auto path32 = static_cast<std::uint32_t>(k);
    video[k].sink->set_deliver_callback(
        [&trace, path32, &sched, epoch](std::int64_t tag, SimTime) {
          if (tag >= 0) trace.record(tag, sched.now() - epoch, path32);
        });
  }

  // --- server (scheme under test) ---
  std::unique_ptr<DmpStreamingServer> dmp_server;
  std::unique_ptr<StaticStreamingServer> static_server;
  std::unique_ptr<StoredStreamingServer> stored_server;
  const SimTime duration = SimTime::seconds(config.duration_s);
  const auto stored_total = static_cast<std::int64_t>(
      std::llround(config.mu_pps * config.duration_s));
  switch (config.scheme) {
    case StreamScheme::kDmp:
      dmp_server = std::make_unique<DmpStreamingServer>(
          sched, config.mu_pps, senders, epoch, duration);
      break;
    case StreamScheme::kStatic:
      static_server = std::make_unique<StaticStreamingServer>(
          sched, config.mu_pps, senders, epoch, duration,
          config.static_weights);
      break;
    case StreamScheme::kStored:
      // The whole video is on disk; transmission starts at the epoch.
      sched.schedule_at(epoch, [&sched, &stored_server, senders,
                                stored_total] {
        stored_server = std::make_unique<StoredStreamingServer>(
            sched, stored_total, senders);
      });
      break;
  }

  const SimTime horizon =
      epoch + duration + SimTime::seconds(config.drain_s);
  SessionResult result;
  result.events_executed = sched.run_until(horizon);

  // --- per-path measurements (Table 2 / Table 3 rows) ---
  switch (config.scheme) {
    case StreamScheme::kDmp:
      result.packets_generated = dmp_server->packets_generated();
      break;
    case StreamScheme::kStatic:
      result.packets_generated = static_server->packets_generated();
      break;
    case StreamScheme::kStored:
      result.packets_generated = stored_total;
      break;
  }
  const auto split = trace.path_split(config.num_flows);
  for (std::size_t k = 0; k < config.num_flows; ++k) {
    const DumbbellPath& path = config.correlated ? *paths[0] : *paths[k];
    const auto counters =
        path.bottleneck().flow_counters(static_cast<FlowId>(k));
    PathMeasurement m;
    m.loss_rate = counters.arrivals == 0
                      ? 0.0
                      : static_cast<double>(counters.drops) /
                            static_cast<double>(counters.arrivals);
    m.rtt_s = video[k].sender->stats().mean_rtt_s();
    m.to_ratio = video[k].sender->stats().normalized_timeout();
    m.share = split[k];
    m.tcp = video[k].sender->stats();
    result.paths.push_back(m);
  }
  result.trace = std::move(trace);
  return result;
}

std::vector<BackloggedProbe> measure_backlogged_paths(
    const PathConfig& config, std::size_t num_probe_flows, std::uint64_t seed,
    double duration_s, const TcpConfig& probe_tcp) {
  if (num_probe_flows == 0) {
    throw std::invalid_argument{"need at least one probe flow"};
  }
  Scheduler sched;
  Rng rng(seed);
  DumbbellPath path(sched, config.bottleneck());
  BackgroundTraffic background(sched, path, config, 1000, rng.fork());

  TcpConfig tcp = probe_tcp;
  if (tcp.send_overhead_s == 0.0) {
    tcp.send_overhead_s = 0.0005;
    tcp.jitter_seed = rng.next_u64();
  }
  std::vector<TcpConnection> probes;
  std::vector<std::unique_ptr<FtpSource>> sources;
  std::vector<std::int64_t> delivered(num_probe_flows, 0);
  for (std::size_t k = 0; k < num_probe_flows; ++k) {
    probes.push_back(make_connection(sched, static_cast<FlowId>(k), path, tcp));
    auto* count = &delivered[k];
    probes.back().sink->set_deliver_callback(
        [count](std::int64_t, SimTime) { ++*count; });
    sources.push_back(std::make_unique<FtpSource>(*probes.back().sender));
  }

  const double warmup_s = 20.0;
  sched.run_until(SimTime::seconds(warmup_s + duration_s));

  std::vector<BackloggedProbe> measurements;
  for (std::size_t k = 0; k < num_probe_flows; ++k) {
    const auto counters =
        path.bottleneck().flow_counters(static_cast<FlowId>(k));
    BackloggedProbe m;
    m.loss_rate = counters.arrivals == 0
                      ? 0.0
                      : static_cast<double>(counters.drops) /
                            static_cast<double>(counters.arrivals);
    m.rtt_s = probes[k].sender->stats().mean_rtt_s();
    m.to_ratio = probes[k].sender->stats().normalized_timeout();
    m.throughput_pps = static_cast<double>(delivered[k]) / duration_s;
    measurements.push_back(m);
  }
  return measurements;
}

}  // namespace dmp
