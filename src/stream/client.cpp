#include "stream/client.hpp"

#include <stdexcept>

namespace dmp {

StreamClient::StreamClient(double mu_pps, std::size_t num_paths)
    : trace_(mu_pps), num_paths_(num_paths) {}

void StreamClient::attach(std::size_t path, TcpSink& sink) {
  if (path >= num_paths_) throw std::out_of_range{"path index out of range"};
  const auto path32 = static_cast<std::uint32_t>(path);
  sink.set_deliver_callback([this, path32](std::int64_t tag, SimTime when) {
    on_packet(tag, when, path32);
  });
}

void StreamClient::on_packet(std::int64_t number, SimTime when,
                             std::uint32_t path) {
  if (number < 0) return;  // non-stream filler (should not happen for video)
  trace_.record(number, when, path);
}

}  // namespace dmp
