// DMP-streaming server (Fig. 2 of the paper).
//
// A CBR generator places packets into a shared server queue; each of the K
// TCP senders fetches from the head of the queue whenever it can send (for
// us: whenever its send buffer has space).  The paper's lock is implicit in
// the discrete-event setting — pulls are serialized by the scheduler.
// Dynamic load balancing emerges with no bandwidth probing: a path with
// higher achievable throughput drains its send buffer faster, so it pulls
// (and therefore carries) a larger share of the stream.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "stream/stream_server.hpp"
#include "tcp/reno_sender.hpp"
#include "util/sim_time.hpp"

namespace dmp {

class DmpStreamingServer : public StreamServer {
 public:
  // `senders` must outlive the server.  Generation begins at `start` and
  // runs for `duration`; `mu_pps` is the CBR playback rate in packets/s.
  DmpStreamingServer(Scheduler& sched, double mu_pps,
                     std::vector<RenoSender*> senders, SimTime start,
                     SimTime duration);

  std::int64_t packets_generated() const override { return next_number_; }
  std::size_t queue_length() const { return queue_.size(); }
  double mu() const { return mu_pps_; }
  // Peak backlog observed in the server queue (diagnostic: bounded by
  // mu * (time TCP lags behind generation)).
  std::size_t max_queue_length() const { return max_queue_; }
  // Packets fetched by sender k since the start of the run.
  std::uint64_t pulls(std::size_t k) const override { return pulls_[k]; }

  const char* scheme_name() const override { return "dmp"; }

  // Registers `<prefix>.queue_depth` / `<prefix>.max_queue_depth` sampler
  // gauges, the `<prefix>.generated` counter, and one `<prefix>.pulls.
  // path<k>` counter per sender.  Optional; a no-op when never called.
  void attach_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix) override;
  // Emits per-pull "pull" events at kDebug severity.
  void set_event_log(obs::EventLog* log) override { event_log_ = log; }
  // Records per-stream-packet birth (kGenerate, with the shared-queue depth)
  // and sender fetch (kPull, with the chosen path) span events.  Optional;
  // a no-op when never called.
  void set_flight_recorder(obs::FlightRecorder* recorder) override {
    flight_ = recorder;
  }
  void set_telemetry(obs::TimeSeriesChannel* backlog,
                     obs::TimeSeriesChannel* generated) override {
    ts_backlog_ = backlog;
    ts_generated_ = generated;
  }

  // Path failure: reclaim the dead sender's never-transmitted segments into
  // the FRONT of the shared queue (they are the oldest outstanding packets)
  // and re-offer the backlog to the surviving senders.  While a path is
  // down its sender is skipped by pull_into/offer_all, so the shared-queue
  // discipline routes the whole stream over the survivors — the paper's
  // implicit load shifting, exercised under failure.
  void on_path_down(std::size_t k) override;
  void on_path_up(std::size_t k) override;
  bool path_down(std::size_t k) const { return down_[k]; }
  // Packets reclaimed from dead senders over the run (diagnostic).
  std::uint64_t reclaimed() const { return reclaimed_; }

  // One shared backlog gauge.
  std::vector<std::string> probe_columns(
      const std::string& prefix, std::size_t /*num_flows*/) const override {
    return {prefix + ".queue_depth"};
  }

 private:
  void generate();
  void pull_into(std::size_t k);
  void offer_all();

  Scheduler& sched_;
  double mu_pps_;
  std::vector<RenoSender*> senders_;
  SimTime period_;
  SimTime end_;

  std::deque<std::int64_t> queue_;  // packet numbers awaiting a sender
  std::int64_t next_number_ = 0;
  std::size_t rotate_ = 0;  // fairness when several senders have space
  std::size_t max_queue_ = 0;
  std::vector<std::uint64_t> pulls_;
  std::vector<bool> down_;  // paths currently failed (fault injector)
  std::uint64_t reclaimed_ = 0;

  obs::Counter* m_generated_ = nullptr;
  std::vector<obs::Counter*> m_pulls_;
  obs::EventLog* event_log_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  obs::TimeSeriesChannel* ts_backlog_ = nullptr;
  obs::TimeSeriesChannel* ts_generated_ = nullptr;
};

}  // namespace dmp
