// DMP-streaming server (Fig. 2 of the paper).
//
// A CBR generator places packets into a shared server queue; each of the K
// TCP senders fetches from the head of the queue whenever it can send (for
// us: whenever its send buffer has space).  The paper's lock is implicit in
// the discrete-event setting — pulls are serialized by the scheduler.
// Dynamic load balancing emerges with no bandwidth probing: a path with
// higher achievable throughput drains its send buffer faster, so it pulls
// (and therefore carries) a larger share of the stream.
//
// The *decision* of what to send where is delegated to a PathScheduler
// (src/stream/scheduler/): the server owns the queue, the senders and all
// observability, translates sender/fault events into scheduler hooks, and
// executes the scheduler's decisions.  The default `pull` policy
// reproduces the paper's scheme decision-for-decision (golden-pinned);
// other policies (weighted, best_path, round_robin, redundant, parity-k)
// reuse this server core unchanged.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "stream/scheduler/path_scheduler.hpp"
#include "stream/stream_server.hpp"
#include "tcp/reno_sender.hpp"
#include "util/sim_time.hpp"

namespace dmp {

class DmpStreamingServer : public StreamServer {
 public:
  // `senders` must outlive the server.  Generation begins at `start` and
  // runs for `duration`; `mu_pps` is the CBR playback rate in packets/s.
  // `scheduler` chooses the dispatch policy; null builds the compat `pull`
  // policy.  (Direct construction is the legacy path — prefer
  // make_stream_server, which wires the policy from the session config.)
  DmpStreamingServer(Scheduler& sched, double mu_pps,
                     std::vector<RenoSender*> senders, SimTime start,
                     SimTime duration,
                     std::unique_ptr<PathScheduler> scheduler = nullptr);

  std::int64_t packets_generated() const override { return next_number_; }
  std::size_t queue_length() const { return queue_.size(); }
  double mu() const { return mu_pps_; }
  // Peak backlog observed in the server queue (diagnostic: bounded by
  // mu * (time TCP lags behind generation)).
  std::size_t max_queue_length() const { return max_queue_; }
  // Packets fetched by sender k since the start of the run.
  std::uint64_t pulls(std::size_t k) const override { return pulls_[k]; }

  const char* scheme_name() const override { return "dmp"; }
  const char* scheduler_name() const override { return scheduler_->name(); }
  bool scheduler_needs_dedup() const { return scheduler_->needs_dedup(); }
  // Redundancy decisions executed (0 under non-redundant policies).
  std::uint64_t duplicates_sent() const override { return duplicates_sent_; }
  std::uint64_t parity_sent() const override { return parity_sent_; }

  // Registers `<prefix>.queue_depth` / `<prefix>.max_queue_depth` sampler
  // gauges, the `<prefix>.generated` counter, one `<prefix>.pulls.
  // path<k>` counter per sender, and the `<prefix>.sched.{duplicates,
  // parity}` redundancy counters.  Optional; a no-op when never called.
  void attach_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix) override;
  // Emits per-pull "pull" (and per-redundancy-decision "dup"/"parity")
  // events at kDebug severity.
  void set_event_log(obs::EventLog* log) override { event_log_ = log; }
  // Records per-stream-packet birth (kGenerate, with the shared-queue depth)
  // and sender fetch (kPull, with the chosen path) span events; redundancy
  // decisions add kSchedDecision events.  Optional; a no-op when never
  // called.
  void set_flight_recorder(obs::FlightRecorder* recorder) override {
    flight_ = recorder;
  }
  void set_telemetry(obs::TimeSeriesChannel* backlog,
                     obs::TimeSeriesChannel* generated) override {
    ts_backlog_ = backlog;
    ts_generated_ = generated;
  }
  // Windowed per-decision redundancy telemetry (either may be null).
  void set_sched_telemetry(obs::TimeSeriesChannel* duplicates,
                           obs::TimeSeriesChannel* parity) override {
    ts_duplicates_ = duplicates;
    ts_parity_ = parity;
  }

  // Path failure: reclaim the dead sender's never-transmitted segments into
  // the FRONT of the shared queue (they are the oldest outstanding packets)
  // and re-offer the backlog to the surviving senders.  While a path is
  // down its sender is skipped by every policy, so the shared-queue
  // discipline routes the whole stream over the survivors — the paper's
  // implicit load shifting, exercised under failure.
  void on_path_down(std::size_t k) override;
  void on_path_up(std::size_t k) override;
  bool path_down(std::size_t k) const { return down_[k]; }
  // Packets reclaimed from dead senders over the run (diagnostic).
  std::uint64_t reclaimed() const { return reclaimed_; }

  // One shared backlog gauge.
  std::vector<std::string> probe_columns(
      const std::string& prefix, std::size_t /*num_flows*/) const override {
    return {prefix + ".queue_depth"};
  }

 private:
  void generate();
  void window_open(std::size_t k);
  // Refreshes the per-path snapshot and executes scheduler decisions until
  // pick() runs dry.
  void drain();
  void execute(const SchedDecision& decision);

  Scheduler& sched_;
  double mu_pps_;
  std::vector<RenoSender*> senders_;
  SimTime period_;
  SimTime end_;
  std::unique_ptr<PathScheduler> scheduler_;

  std::deque<std::int64_t> queue_;  // packet numbers awaiting a sender
  std::int64_t next_number_ = 0;
  std::size_t max_queue_ = 0;
  std::vector<std::uint64_t> pulls_;
  std::vector<bool> down_;  // paths currently failed (fault injector)
  std::uint64_t reclaimed_ = 0;
  std::uint64_t duplicates_sent_ = 0;
  std::uint64_t parity_sent_ = 0;
  std::vector<SchedPathState> path_state_;  // reused pick() scratch

  obs::Counter* m_generated_ = nullptr;
  std::vector<obs::Counter*> m_pulls_;
  obs::Counter* m_duplicates_ = nullptr;
  obs::Counter* m_parity_ = nullptr;
  obs::EventLog* event_log_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  obs::TimeSeriesChannel* ts_backlog_ = nullptr;
  obs::TimeSeriesChannel* ts_generated_ = nullptr;
  obs::TimeSeriesChannel* ts_duplicates_ = nullptr;
  obs::TimeSeriesChannel* ts_parity_ = nullptr;
};

}  // namespace dmp
