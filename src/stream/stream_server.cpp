#include "stream/stream_server.hpp"

#include <cmath>

#include "stream/dmp_server.hpp"
#include "stream/session.hpp"
#include "stream/static_server.hpp"
#include "stream/stored_server.hpp"

namespace dmp {

std::unique_ptr<StreamServer> make_stream_server(
    const SessionConfig& config, Scheduler& sched,
    std::vector<RenoSender*> senders, SimTime epoch, SimTime duration) {
  switch (config.scheme) {
    case StreamScheme::kDmp:
      return std::make_unique<DmpStreamingServer>(
          sched, config.mu_pps, std::move(senders), epoch, duration);
    case StreamScheme::kStatic:
      return std::make_unique<StaticStreamingServer>(
          sched, config.mu_pps, std::move(senders), epoch, duration,
          config.static_weights);
    case StreamScheme::kStored:
      return std::make_unique<StoredStreamingServer>(
          sched,
          static_cast<std::int64_t>(
              std::llround(config.mu_pps * config.duration_s)),
          std::move(senders), epoch);
  }
  return nullptr;  // unreachable
}

}  // namespace dmp
