#include "stream/stream_server.hpp"

#include <cmath>

#include "stream/dmp_server.hpp"
#include "stream/session.hpp"
#include "stream/static_server.hpp"
#include "stream/stored_server.hpp"

namespace dmp {

std::unique_ptr<StreamServer> make_stream_server(
    const SessionConfig& config, Scheduler& sched,
    std::vector<RenoSender*> senders, SimTime epoch, SimTime duration) {
  return make_stream_server(config, sched, std::move(senders), epoch,
                            duration, SchedulerSpec::parse(config.scheduler));
}

std::unique_ptr<StreamServer> make_stream_server(
    const SessionConfig& config, Scheduler& sched,
    std::vector<RenoSender*> senders, SimTime epoch, SimTime duration,
    const SchedulerSpec& scheduler_spec) {
  switch (config.scheme) {
    case StreamScheme::kDmp: {
      // Default `weighted` weights: the configured path rates, so the
      // static split targets each path's provisioned share of the stream.
      std::vector<double> path_rates;
      for (std::size_t k = 0; k < senders.size(); ++k) {
        const PathConfig& path =
            config.correlated ? config.path_configs[0] : config.path_configs[k];
        path_rates.push_back(path.bandwidth_bps);
      }
      const std::size_t num_paths = senders.size();
      return std::make_unique<DmpStreamingServer>(
          sched, config.mu_pps, std::move(senders), epoch, duration,
          make_path_scheduler(scheduler_spec, num_paths, path_rates));
    }
    case StreamScheme::kStatic:
      return std::make_unique<StaticStreamingServer>(
          sched, config.mu_pps, std::move(senders), epoch, duration,
          config.static_weights);
    case StreamScheme::kStored:
      return std::make_unique<StoredStreamingServer>(
          sched,
          static_cast<std::int64_t>(
              std::llround(config.mu_pps * config.duration_s)),
          std::move(senders), epoch);
  }
  return nullptr;  // unreachable
}

}  // namespace dmp
