// Client-side packet trace and the paper's performance metrics.
//
// The sender side of live streaming does not depend on the startup delay
// tau (the server transmits generated packets as fast as TCP allows either
// way), so one simulation trace yields the late-packet fraction for every
// tau: we record (packet number, arrival time, path) and evaluate lateness
// afterwards.  Two playback disciplines are analyzed, mirroring Figs. 4(a),
// 5(a), 7(a):
//   * playback order: packet n plays at n/mu + tau; late iff it arrives
//     after that instant (this is the "actual" metric);
//   * arrival order: the j-th arriving packet is played as packet j (the
//     model's simplification; the paper shows the two nearly coincide).
#pragma once

#include <cstdint>
#include <vector>

#include "util/sim_time.hpp"

namespace dmp {

struct StreamTraceEntry {
  std::int64_t packet_number = 0;
  SimTime arrived = SimTime::zero();
  std::uint32_t path = 0;
};

class StreamTrace {
 public:
  explicit StreamTrace(double mu_pps);

  void record(std::int64_t packet_number, SimTime arrived, std::uint32_t path);

  // Generation instant of packet n (generation starts at time 0).
  SimTime generation_time(std::int64_t n) const;

  std::size_t arrivals() const { return entries_.size(); }
  const std::vector<StreamTraceEntry>& entries() const { return entries_; }
  double mu() const { return mu_pps_; }

  // Fraction of late packets when playing in playback (packet-number) order.
  // Considers packets 0..total_packets-1; generated packets that never
  // arrived count as late.
  double late_fraction_playback_order(double tau_s,
                                      std::int64_t total_packets) const;

  // Fraction of late packets when consuming strictly in arrival order.
  double late_fraction_arrival_order(double tau_s,
                                     std::int64_t total_packets) const;

  // Fraction of packets delivered by each path (the DMP split).
  std::vector<double> path_split(std::size_t num_paths) const;

  // Fraction of packets whose arrival order differs from packet order
  // (out-of-order at the multipath reassembly level).
  double out_of_order_fraction() const;

 private:
  double mu_pps_;
  std::vector<StreamTraceEntry> entries_;  // in arrival order
};

}  // namespace dmp
