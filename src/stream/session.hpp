// One complete validation experiment (the paper's Section 5 setup):
// K network paths with Table-1 bottleneck configurations and FTP/HTTP
// background traffic, a multipath video stream (DMP or static), and
// per-path measurements of the parameters the model consumes
// (p_k, R_k, TO_k), exactly as Tables 2 and 3 report them.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/background.hpp"
#include "obs/config.hpp"
#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/telemetry.hpp"
#include "sim/profiler.hpp"
#include "stream/trace.hpp"
#include "tcp/tcp_config.hpp"

namespace dmp {

// kStored streams a pre-recorded video of mu*duration packets with the DMP
// pull discipline but no live-source constraint (Section-3 extension).
enum class StreamScheme { kDmp, kStatic, kStored };

// Video flows default to per-packet ACKs — the ns-2 TCPSink default the
// paper's simulations would have used (delayed ACKs remain available).
inline TcpConfig default_video_tcp() {
  TcpConfig t;
  t.delayed_ack = false;
  return t;
}

struct SessionConfig {
  // One entry per independent path (Fig. 3).  For correlated paths (Fig. 6)
  // set `correlated = true` and provide exactly one entry: all `num_flows`
  // video flows then share that single bottleneck.
  std::vector<PathConfig> path_configs;
  bool correlated = false;
  std::size_t num_flows = 2;
  StreamScheme scheme = StreamScheme::kDmp;
  double mu_pps = 50.0;
  double duration_s = 3000.0;
  // Background warm-up before video generation starts; arrival timestamps
  // are reported relative to the video epoch.
  double warmup_s = 20.0;
  // Extra simulated time after generation ends so in-flight video packets
  // drain to the client.
  double drain_s = 60.0;
  std::uint64_t seed = 1;
  TcpConfig video_tcp = default_video_tcp();
  std::vector<double> static_weights{};  // empty = even split
  // DMP dispatch policy (src/stream/scheduler/ spec grammar, the DMP_SCHED
  // bench knob): pull | weighted[:w0,w1,...] | best_path | round_robin |
  // redundant | parity-<k>.  Parsed and validated before any network is
  // built; the default reproduces the paper's scheme byte-identically.
  // Redundant policies route client deliveries through a RedundancyFilter
  // for exactly-once trace recording.  Static / stored schemes ignore it.
  std::string scheduler = "pull";
  // Bottleneck queue discipline (src/net/qdisc/ spec grammar, the
  // DMP_QDISC bench knob): droptail | pie[:target_ms[,tupdate_ms]] |
  // fq_pie[:flows] | codel[:target_ms[,interval_ms]].  Parsed and
  // validated before any network is built; applied to EVERY path's
  // bottleneck, with per-path early-drop RNG seeds derived from `seed`
  // (seed-stream kind 18, disjoint from all session randomness).  The
  // default reproduces the paper's drop-tail bottlenecks byte-identically.
  std::string qdisc = "droptail";
  // DES event-queue backend (the DMP_DES bench knob): calendar | heap.
  // The calendar queue is the default and pops in an order bit-identical
  // to the binary heap ((when, seq) tie-breaking — docs/DES_ENGINE.md);
  // `heap` keeps the std::push_heap baseline selectable for differential
  // runs and benchmarks.  Parsed and validated before any network is built.
  std::string des = "calendar";
  // Fault schedule (src/fault/ spec grammar, e.g.
  // "20 link_down path1; 25 link_up path1"), times relative to the video
  // epoch.  Targets name paths ("path<k>"); link faults hit path k's
  // dumbbell (forward + reverse bottleneck for outages) and notify the
  // streaming server so DMP reclaims the dead sender's unsent share.  In
  // correlated sessions the single path is "path0" and an outage notifies
  // every flow.  Empty (the default) constructs no injector and schedules
  // nothing: byte-identical to a build without the fault layer.
  std::string faults{};
  // Observability: when `obs.enabled`, the run attaches a metrics registry
  // and event log to every layer (links, TCP agents, server, scheduler,
  // client), samples gauges into `<prefix>_probe.csv` every
  // `obs.probe_interval_s`, and writes `<prefix>_events.jsonl` plus a
  // `<prefix>_report.json` summary at the end of the run.  Off by default:
  // nothing is allocated or scheduled and the hot path is unchanged.
  obs::ObsConfig obs{};
  // Streaming telemetry (src/obs/telemetry): windowed time-series channels
  // on links / TCP / server / client plus a client delay quantile sketch.
  // Independent of `obs` — off by default, and when off every recording
  // pointer stays null so the hot path is unchanged.
  obs::TelemetryConfig telemetry{};
  // DES self-profiling: per-category executed-event counts, written into
  // `SessionResult::profile` (deterministic; safe for golden artifacts).
  bool profile = false;
  // Additionally bracket every callback with steady_clock reads to charge
  // wall nanoseconds per category.  Non-deterministic; report-only.
  bool profile_wall_time = false;
};

// Per-video-flow path statistics (one row of Table 2 / Table 3).
struct PathMeasurement {
  double loss_rate = 0.0;   // p_k: drops/arrivals at the bottleneck
  double rtt_s = 0.0;       // R_k: mean Karn-filtered RTT sample
  double to_ratio = 0.0;    // TO_k = R_TO / R_k
  double share = 0.0;       // fraction of the stream carried by this path
  // AQM controller discards at this path's bottleneck, all flows (0 on
  // droptail paths; a subset of the drops behind loss_rate's numerator).
  std::uint64_t aqm_early_drops = 0;
  TcpSenderStats tcp{};
};

struct SessionResult {
  StreamTrace trace;
  std::vector<PathMeasurement> paths;
  std::int64_t packets_generated = 0;
  std::uint64_t events_executed = 0;
  // Fault events replayed from `config.faults` (0 for fault-free runs).
  std::uint64_t fault_events_fired = 0;

  // Redundancy accounting (all 0 unless a needs-dedup scheduler ran):
  // extra wire copies / parity packets the server dispatched, and what the
  // client-side RedundancyFilter did with the arrivals.
  std::uint64_t duplicates_sent = 0;
  std::uint64_t parity_sent = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t parity_recovered = 0;

  // Populated only when the session ran with `obs.enabled`.  Gauges are
  // frozen to their end-of-run values (the instrumented objects are gone).
  std::shared_ptr<obs::MetricsRegistry> metrics;
  std::shared_ptr<obs::EventLog> events;
  std::string report_path;
  std::string probe_csv_path;
  std::string events_path;

  // Populated only when the session ran with `obs.flight_recorder`: the
  // in-memory per-packet lifecycle trace and the JSONL path it was written
  // to (feed either to `obs::TraceAnalyzer` / `trace_query`).
  std::shared_ptr<obs::FlightRecorder> flight;
  std::string trace_path;

  // Populated only when the session ran with `telemetry.enabled`: the
  // windowed channels and quantile sketches, plus the artifact paths when
  // `telemetry.write_artifacts` was also set (empty otherwise).
  std::shared_ptr<obs::SessionTelemetry> telemetry;
  std::string telemetry_csv_path;
  std::string sketches_path;

  // Per-category executed-event counts (populated when `config.profile`).
  SchedProfile profile{};

  // Probe rows discarded by the `obs.probe_max_rows` / `obs.probe_max_bytes`
  // caps (0 when uncapped or when no probe ran).
  std::uint64_t probe_rows_dropped = 0;

  // Artifacts (events/probe/report/trace) that failed to reach disk.
  // Writers warn on stderr and the count lands in the report's
  // `meta.io_errors` / `meta.status`; the run itself never aborts.
  int artifact_write_failures = 0;

  SessionResult() : trace(1.0) {}
};

SessionResult run_session(const SessionConfig& config);

// Backlogged-probe measurement of a path's model parameters.
//
// Section 2.2 defines sigma_k as the throughput of a *backlogged* TCP
// source, and the analytical model's (p, R, TO) parameterize exactly that
// achievable-throughput process.  Under drop-tail queues an app-limited
// video stream measures a noticeably higher p than a backlogged flow on
// the same path (its post-idle bursts land on full queues), so feeding the
// model video-stream-measured parameters biases it pessimistic.  The probe
// runs `num_probe_flows` backlogged flows (flow ids 0..n-1, matching the
// video flows they stand in for) against the configuration's background
// traffic and reports each flow's parameters.
struct BackloggedProbe {
  double loss_rate = 0.0;
  double rtt_s = 0.0;
  double to_ratio = 0.0;
  double throughput_pps = 0.0;
};

// `qdisc` puts the probe's bottleneck under the same discipline as the
// session it parameterizes (spec grammar as SessionConfig::qdisc), so the
// model sees the loss/RTT process AQM actually produces.
std::vector<BackloggedProbe> measure_backlogged_paths(
    const PathConfig& config, std::size_t num_probe_flows, std::uint64_t seed,
    double duration_s = 1500.0,
    const TcpConfig& probe_tcp = default_video_tcp(),
    const std::string& qdisc = "droptail");

}  // namespace dmp
