#include "stream/static_server.hpp"

#include <numeric>
#include <stdexcept>

namespace dmp {

StaticStreamingServer::StaticStreamingServer(Scheduler& sched, double mu_pps,
                                             std::vector<RenoSender*> senders,
                                             SimTime start, SimTime duration,
                                             std::vector<double> weights)
    : sched_(sched),
      mu_pps_(mu_pps),
      senders_(std::move(senders)),
      period_(SimTime::seconds(1.0 / mu_pps)),
      end_(start + duration),
      queues_(this->senders_.size()) {
  if (senders_.empty()) throw std::invalid_argument{"static needs >= 1 sender"};
  if (!weights.empty() && weights.size() != senders_.size()) {
    throw std::invalid_argument{"weights size must match sender count"};
  }
  if (weights.empty()) weights.assign(senders_.size(), 1.0);
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) throw std::invalid_argument{"weights must be positive"};
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument{"weights must be non-negative"};
    weights_.push_back(w / total);
  }
  assigned_.assign(senders_.size(), 0);
  pulls_.assign(senders_.size(), 0);
  down_.assign(senders_.size(), false);
  for (std::size_t k = 0; k < senders_.size(); ++k) {
    senders_[k]->set_space_callback([this, k] { pull_into(k); });
  }
  sched_.post_at(start, [this] { generate(); }, EventCategory::kSource);
}

void StaticStreamingServer::attach_metrics(obs::MetricsRegistry& registry,
                                           const std::string& prefix) {
  m_generated_ = &registry.counter(prefix + ".generated");
  m_pulls_.clear();
  for (std::size_t k = 0; k < senders_.size(); ++k) {
    m_pulls_.push_back(
        &registry.counter(prefix + ".pulls.path" + std::to_string(k)));
    registry.gauge(prefix + ".queue_depth.path" + std::to_string(k))
        .set_sampler([this, k] {
          return static_cast<double>(queues_[k].size());
        });
  }
}

std::size_t StaticStreamingServer::assign_path() {
  // Deficit (weighted) round-robin: packet n goes to the path furthest
  // behind its target share.  Equal weights reduce to plain round-robin
  // (odd/even for K = 2); unequal weights interleave proportionally.
  const double n1 = static_cast<double>(next_number_ + 1);
  std::size_t best = 0;
  double best_deficit = -1e300;
  for (std::size_t k = 0; k < queues_.size(); ++k) {
    const double deficit =
        weights_[k] * n1 - static_cast<double>(assigned_[k]);
    if (deficit > best_deficit) {
      best_deficit = deficit;
      best = k;
    }
  }
  ++assigned_[best];
  return best;
}

void StaticStreamingServer::generate() {
  const std::size_t k = assign_path();
  const std::int64_t number = next_number_++;
  queues_[k].push_back(number);
  if (m_generated_) m_generated_->inc();
  if (flight_) {
    obs::FlightEvent e;
    e.t_ns = sched_.now().ns();
    e.kind = obs::FlightEventKind::kGenerate;
    e.packet = number;
    e.path = static_cast<std::int32_t>(k);
    e.queue = static_cast<std::int64_t>(queues_[k].size());
    flight_->record(e);
  }
  if (ts_generated_) ts_generated_->bump(sched_.now());
  pull_into(k);
  // Post-pull backlog summed over the private queues — comparable to the
  // DMP shared-queue channel.
  if (ts_backlog_) {
    std::size_t backlog = 0;
    for (const auto& q : queues_) backlog += q.size();
    ts_backlog_->add(sched_.now(), static_cast<double>(backlog));
  }
  if (sched_.now() + period_ < end_) {
    sched_.post_after(period_, [this] { generate(); }, EventCategory::kSource);
  }
}

void StaticStreamingServer::pull_into(std::size_t k) {
  // Fetch recorded before enqueue() so trace lines stay in lifecycle order
  // (enqueue itself emits the tcp/link events).
  while (!queues_[k].empty() && senders_[k]->space() > 0) {
    const std::int64_t number = queues_[k].front();
    queues_[k].pop_front();
    ++pulls_[k];
    if (!m_pulls_.empty()) m_pulls_[k]->inc();
    if (flight_) {
      obs::FlightEvent e;
      e.t_ns = sched_.now().ns();
      e.kind = obs::FlightEventKind::kPull;
      e.packet = number;
      e.path = static_cast<std::int32_t>(k);
      e.queue = static_cast<std::int64_t>(queues_[k].size());
      flight_->record(e);
    }
    senders_[k]->enqueue(number);
  }
}

}  // namespace dmp
