#include "stream/static_server.hpp"

#include <stdexcept>

namespace dmp {

namespace {

// Validation order preserved from the pre-WeightedSplit constructor: the
// sender-count errors fire before any weight arithmetic.
WeightedSplit make_static_split(std::size_t num_senders,
                                std::vector<double> weights) {
  if (num_senders == 0) {
    throw std::invalid_argument{"static needs >= 1 sender"};
  }
  if (!weights.empty() && weights.size() != num_senders) {
    throw std::invalid_argument{"weights size must match sender count"};
  }
  return WeightedSplit(num_senders, std::move(weights));
}

}  // namespace

StaticStreamingServer::StaticStreamingServer(Scheduler& sched, double mu_pps,
                                             std::vector<RenoSender*> senders,
                                             SimTime start, SimTime duration,
                                             std::vector<double> weights)
    : sched_(sched),
      mu_pps_(mu_pps),
      senders_(std::move(senders)),
      period_(SimTime::seconds(1.0 / mu_pps)),
      end_(start + duration),
      split_(make_static_split(this->senders_.size(), std::move(weights))),
      queues_(this->senders_.size()) {
  pulls_.assign(senders_.size(), 0);
  down_.assign(senders_.size(), false);
  for (std::size_t k = 0; k < senders_.size(); ++k) {
    senders_[k]->set_space_callback([this, k] { pull_into(k); });
  }
  sched_.post_at(start, [this] { generate(); }, EventCategory::kSource);
}

void StaticStreamingServer::attach_metrics(obs::MetricsRegistry& registry,
                                           const std::string& prefix) {
  m_generated_ = &registry.counter(prefix + ".generated");
  m_pulls_.clear();
  for (std::size_t k = 0; k < senders_.size(); ++k) {
    m_pulls_.push_back(
        &registry.counter(prefix + ".pulls.path" + std::to_string(k)));
    registry.gauge(prefix + ".queue_depth.path" + std::to_string(k))
        .set_sampler([this, k] {
          return static_cast<double>(queues_[k].size());
        });
  }
}

void StaticStreamingServer::generate() {
  const std::size_t k = split_.assign();
  const std::int64_t number = next_number_++;
  queues_[k].push_back(number);
  if (m_generated_) m_generated_->inc();
  if (flight_) {
    obs::FlightEvent e;
    e.t_ns = sched_.now().ns();
    e.kind = obs::FlightEventKind::kGenerate;
    e.packet = number;
    e.path = static_cast<std::int32_t>(k);
    e.queue = static_cast<std::int64_t>(queues_[k].size());
    flight_->record(e);
  }
  if (ts_generated_) ts_generated_->bump(sched_.now());
  pull_into(k);
  // Post-pull backlog summed over the private queues — comparable to the
  // DMP shared-queue channel.
  if (ts_backlog_) {
    std::size_t backlog = 0;
    for (const auto& q : queues_) backlog += q.size();
    ts_backlog_->add(sched_.now(), static_cast<double>(backlog));
  }
  if (sched_.now() + period_ < end_) {
    sched_.post_after(period_, [this] { generate(); }, EventCategory::kSource);
  }
}

void StaticStreamingServer::pull_into(std::size_t k) {
  // Fetch recorded before enqueue() so trace lines stay in lifecycle order
  // (enqueue itself emits the tcp/link events).
  while (!queues_[k].empty() && senders_[k]->space() > 0) {
    const std::int64_t number = queues_[k].front();
    queues_[k].pop_front();
    ++pulls_[k];
    if (!m_pulls_.empty()) m_pulls_[k]->inc();
    if (flight_) {
      obs::FlightEvent e;
      e.t_ns = sched_.now().ns();
      e.kind = obs::FlightEventKind::kPull;
      e.packet = number;
      e.path = static_cast<std::int32_t>(k);
      e.queue = static_cast<std::int64_t>(queues_[k].size());
      flight_->record(e);
    }
    senders_[k]->enqueue(number);
  }
}

}  // namespace dmp
