#include "stream/trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmp {

StreamTrace::StreamTrace(double mu_pps) : mu_pps_(mu_pps) {
  if (mu_pps <= 0) throw std::invalid_argument{"mu must be positive"};
}

void StreamTrace::record(std::int64_t packet_number, SimTime arrived,
                         std::uint32_t path) {
  entries_.push_back(StreamTraceEntry{packet_number, arrived, path});
}

SimTime StreamTrace::generation_time(std::int64_t n) const {
  return SimTime::seconds(static_cast<double>(n) / mu_pps_);
}

double StreamTrace::late_fraction_playback_order(
    double tau_s, std::int64_t total_packets) const {
  if (total_packets <= 0) return 0.0;
  std::int64_t late = 0;
  std::int64_t seen = 0;
  for (const auto& e : entries_) {
    if (e.packet_number >= total_packets) continue;
    ++seen;
    const SimTime playback =
        generation_time(e.packet_number) + SimTime::seconds(tau_s);
    if (e.arrived > playback) ++late;
  }
  // Generated-but-never-arrived packets missed every playback deadline.
  late += total_packets - seen;
  return static_cast<double>(late) / static_cast<double>(total_packets);
}

double StreamTrace::late_fraction_arrival_order(
    double tau_s, std::int64_t total_packets) const {
  if (total_packets <= 0) return 0.0;
  std::int64_t late = 0;
  std::int64_t played = 0;  // arrival rank doubles as the played-back number
  for (const auto& e : entries_) {
    if (played >= total_packets) break;
    const SimTime playback =
        generation_time(played) + SimTime::seconds(tau_s);
    if (e.arrived > playback) ++late;
    ++played;
  }
  late += total_packets - played;
  return static_cast<double>(late) / static_cast<double>(total_packets);
}

std::vector<double> StreamTrace::path_split(std::size_t num_paths) const {
  std::vector<double> split(num_paths, 0.0);
  if (entries_.empty()) return split;
  for (const auto& e : entries_) {
    if (e.path < num_paths) split[e.path] += 1.0;
  }
  for (auto& s : split) s /= static_cast<double>(entries_.size());
  return split;
}

double StreamTrace::out_of_order_fraction() const {
  if (entries_.empty()) return 0.0;
  std::int64_t out_of_order = 0;
  std::int64_t expected = 0;
  for (const auto& e : entries_) {
    if (e.packet_number != expected) ++out_of_order;
    expected = std::max(expected, e.packet_number) + 1;
  }
  return static_cast<double>(out_of_order) /
         static_cast<double>(entries_.size());
}

}  // namespace dmp
