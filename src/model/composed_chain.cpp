#include "model/composed_chain.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "model/chain_cache.hpp"
#include "solver/ctmc.hpp"
#include "util/parallel.hpp"
#include "util/seed_stream.hpp"

namespace dmp {

namespace {

// Seed-stream domain for Monte-Carlo shards (kind 17 of the registry in
// exp/plan.hpp; kinds >= 16 are reserved for library-internal streams).
constexpr std::uint64_t kShardDomain = 17ull << 32;

// Number of consecutive consumption events before the next flow event,
// capped at `remaining`.  Each event is independently a consumption with
// probability q = mu / (mu + active), so the count is Geometric(1 - q);
// inverting the tail with one uniform replaces up to `remaining`
// per-event draws.  Truncating at the cap is exact: holding times are
// memoryless, so the caller may redraw fresh on the next call.
std::uint64_t geometric_consumptions(double q, double u,
                                     std::uint64_t remaining) {
  if (u <= 0.0) return remaining;  // tail of the tail: beyond any cap
  const double j = std::floor(std::log(u) / std::log(q));
  if (j >= static_cast<double>(remaining)) return remaining;
  return static_cast<std::uint64_t>(j);
}

}  // namespace

std::int64_t ComposedParams::nmax() const {
  return static_cast<std::int64_t>(std::llround(mu_pps * tau_s));
}

// ---------------------------------------------------------------------------
// Exact product-chain backend
// ---------------------------------------------------------------------------

Ctmc composed_ctmc(const ComposedParams& params) {
  if (params.flows.empty()) throw std::invalid_argument{"need >= 1 flow"};
  if (params.mu_pps <= 0.0) throw std::invalid_argument{"mu must be positive"};
  const std::int64_t nmax = params.nmax();
  if (nmax < 1) throw std::invalid_argument{"Nmax = mu*tau must be >= 1"};

  std::vector<std::shared_ptr<const TcpFlowChain>> chains;
  chains.reserve(params.flows.size());
  std::uint64_t flow_product = 1;
  for (const auto& fp : params.flows) {
    chains.push_back(shared_flow_chain(fp));
    flow_product *= chains.back()->num_states();
  }
  const std::uint64_t total =
      flow_product * static_cast<std::uint64_t>(nmax + 1);
  // The triplet store costs ~16 B per edge and Gauss-Seidel sweeps the
  // whole chain repeatedly; beyond a couple of million states the Monte-
  // Carlo backend is the right tool.
  if (total > 2'000'000ull) {
    throw std::invalid_argument{
        "exact composed chain too large; use DmpModelMonteCarlo"};
  }

  const std::size_t kflows = chains.size();
  // Mixed-radix index: (((x_0 * n_1 + x_1) ... ) * (nmax+1)) + N.
  std::vector<std::uint64_t> stride(kflows);
  std::uint64_t acc = static_cast<std::uint64_t>(nmax + 1);
  for (std::size_t k = kflows; k-- > 0;) {
    stride[k] = acc;
    acc *= chains[k]->num_states();
  }

  CtmcBuilder builder(static_cast<std::uint32_t>(total));
  // Enumerate composed states by iterating flow-state tuples and N.
  std::vector<std::uint32_t> x(kflows, 0);
  while (true) {
    std::uint64_t base = 0;
    for (std::size_t k = 0; k < kflows; ++k) base += x[k] * stride[k];

    for (std::int64_t n = 0; n <= nmax; ++n) {
      const auto from = static_cast<std::uint32_t>(base + static_cast<std::uint64_t>(n));
      // Consumption: N -> max(N-1, 0); at N = 0 the state is unchanged
      // (self-loop, dropped) but the consumed packet is late — the metric
      // reads P(N = 0), so no edge is needed.
      if (n > 0) {
        builder.add_transition(from, from - 1, params.mu_pps);
      }
      // Flow transitions, frozen at N = Nmax.
      if (n == nmax) continue;
      for (std::size_t k = 0; k < kflows; ++k) {
        for (const auto& t : chains[k]->transitions_from(x[k])) {
          const std::int64_t n2 =
              std::min<std::int64_t>(n + t.delivered, nmax);
          const std::uint64_t to = base +
                                   (static_cast<std::uint64_t>(t.target) -
                                    static_cast<std::uint64_t>(x[k])) *
                                       stride[k] +
                                   static_cast<std::uint64_t>(n2);
          builder.add_transition(from, static_cast<std::uint32_t>(to), t.rate);
        }
      }
    }

    // Advance the flow-state tuple (odometer).
    std::size_t k = kflows;
    while (k-- > 0) {
      if (++x[k] < chains[k]->num_states()) break;
      x[k] = 0;
      if (k == 0) {
        k = SIZE_MAX;
        break;
      }
    }
    if (k == SIZE_MAX) break;
  }

  return std::move(builder).build();
}

ComposedChainExact::ComposedChainExact(const ComposedParams& params) {
  const Ctmc chain = composed_ctmc(params);
  num_states_ = chain.num_states();

  const auto pi = chain.steady_state_gauss_seidel(1e-13);

  const std::int64_t nmax = params.nmax();
  n_marginal_.assign(static_cast<std::size_t>(nmax + 1), 0.0);
  for (std::uint64_t s = 0; s < pi.size(); ++s) {
    n_marginal_[s % static_cast<std::uint64_t>(nmax + 1)] += pi[s];
  }
  late_fraction_ = n_marginal_[0];
}

// ---------------------------------------------------------------------------
// Stored-video finite-horizon Monte Carlo
// ---------------------------------------------------------------------------

namespace {

// One alias-mode replication: the fast-path equivalent of the event loop
// below.  Before playback starts only flow events change state; after tau
// the event *times* no longer matter (nothing else is gated on the clock),
// so consecutive consumptions collapse into geometric bulk draws exactly
// as in DmpModelMonteCarlo::advance_alias.
double stored_video_replication_alias(
    const ComposedParams& params,
    const std::vector<std::shared_ptr<const TcpFlowChain>>& chains,
    std::int64_t video_packets, Rng& rng) {
  std::vector<std::uint32_t> state;
  state.reserve(chains.size());
  for (const auto& chain : chains) state.push_back(chain->initial_state());

  auto active_rate = [&] {
    double active = 0.0;
    for (std::size_t k = 0; k < chains.size(); ++k) {
      active += chains[k]->exit_rate(state[k]);
    }
    return active;
  };
  std::int64_t delivered = 0;
  auto flow_event = [&](double active) {
    double x = rng.uniform() * active;
    std::size_t k = 0;
    for (; k + 1 < chains.size(); ++k) {
      const double r = chains[k]->exit_rate(state[k]);
      if (x < r) break;
      x -= r;
    }
    const auto& t = chains[k]->pick_alias(state[k], rng.uniform());
    state[k] = t.target;
    delivered =
        std::min<std::int64_t>(delivered + t.delivered, video_packets);
  };

  // Phase 1: prefetch until playback starts at tau.
  double t = 0.0;
  while (t < params.tau_s) {
    if (delivered >= video_packets) break;  // fully prefetched
    const double active = active_rate();
    const double dt = rng.exponential(1.0 / active);
    if (t + dt >= params.tau_s) break;
    t += dt;
    flow_event(active);
  }

  // Phase 2: playback active.
  std::int64_t consumed = 0;
  std::int64_t late = 0;
  while (consumed < video_packets) {
    if (delivered >= video_packets) {
      // Only consumptions remain and the whole video is buffered: the
      // rest plays on time.
      consumed = video_packets;
      break;
    }
    const double active = active_rate();
    const double q = params.mu_pps / (params.mu_pps + active);
    const auto remaining =
        static_cast<std::uint64_t>(video_packets - consumed);
    const std::uint64_t j =
        geometric_consumptions(q, rng.uniform(), remaining);
    if (j > 0) {
      // Consumption i of the bulk is on time iff consumed + i - 1 <
      // delivered, i.e. the first (delivered - consumed) of them.
      const std::int64_t backlog = delivered - consumed;
      const std::int64_t ontime = std::clamp<std::int64_t>(
          backlog, 0, static_cast<std::int64_t>(j));
      late += static_cast<std::int64_t>(j) - ontime;
      consumed += static_cast<std::int64_t>(j);
    }
    if (consumed >= video_packets) break;
    flow_event(active);
  }
  return static_cast<double>(late) / static_cast<double>(video_packets);
}

// One compat-mode replication: the historical event loop, byte for byte.
double stored_video_replication_compat(
    const ComposedParams& params,
    const std::vector<std::shared_ptr<const TcpFlowChain>>& chains,
    std::int64_t video_packets, Rng& rng) {
  std::vector<std::uint32_t> state;
  for (const auto& chain : chains) state.push_back(chain->initial_state());

  double t = 0.0;
  std::int64_t delivered = 0;
  std::int64_t consumed = 0;
  std::int64_t late = 0;
  while (consumed < video_packets) {
    const bool consuming = t >= params.tau_s;
    const bool sending = delivered < video_packets;
    double total_rate = consuming ? params.mu_pps : 0.0;
    if (sending) {
      for (std::size_t k = 0; k < chains.size(); ++k) {
        total_rate += chains[k]->exit_rate(state[k]);
      }
    }
    if (total_rate <= 0.0) {
      // Everything delivered, playback not yet started: jump to tau.
      t = params.tau_s;
      continue;
    }
    const double dt = rng.exponential(1.0 / total_rate);
    // If playback has not started and this event lands past tau, the
    // consumption process must activate first; restarting the clock at
    // tau is exact because exponential holding times are memoryless.
    if (!consuming && t + dt >= params.tau_s) {
      t = params.tau_s;
      continue;
    }
    t += dt;

    double x = rng.uniform() * total_rate;
    if (consuming && x < params.mu_pps) {
      if (consumed >= delivered) ++late;  // nothing to play: glitch
      ++consumed;
      continue;
    }
    if (consuming) x -= params.mu_pps;
    for (std::size_t k = 0; k < chains.size(); ++k) {
      const double r = chains[k]->exit_rate(state[k]);
      if (x < r || k + 1 == chains.size()) {
        const auto& ts = chains[k]->transitions_from(state[k]);
        double y = rng.uniform() * r;
        for (const auto& tr : ts) {
          if (y < tr.rate || &tr == &ts.back()) {
            state[k] = tr.target;
            delivered = std::min<std::int64_t>(delivered + tr.delivered,
                                               video_packets);
            break;
          }
          y -= tr.rate;
        }
        break;
      }
      x -= r;
    }
  }
  return static_cast<double>(late) / static_cast<double>(video_packets);
}

}  // namespace

StoredVideoResult stored_video_late_fraction(const ComposedParams& params,
                                             std::int64_t video_packets,
                                             std::uint64_t replications,
                                             std::uint64_t seed,
                                             SamplerMode mode) {
  if (params.flows.empty()) throw std::invalid_argument{"need >= 1 flow"};
  if (params.mu_pps <= 0.0) throw std::invalid_argument{"mu must be positive"};
  if (video_packets <= 0) throw std::invalid_argument{"empty video"};
  if (replications == 0) throw std::invalid_argument{"need >= 1 replication"};

  std::vector<std::shared_ptr<const TcpFlowChain>> chains;
  chains.reserve(params.flows.size());
  for (const auto& fp : params.flows) chains.push_back(shared_flow_chain(fp));

  Rng master(seed);
  std::vector<double> per_run;
  per_run.reserve(replications);
  for (std::uint64_t rep = 0; rep < replications; ++rep) {
    Rng rng = master.fork();
    per_run.push_back(
        mode == SamplerMode::kCompat
            ? stored_video_replication_compat(params, chains, video_packets,
                                              rng)
            : stored_video_replication_alias(params, chains, video_packets,
                                             rng));
  }

  StoredVideoResult result;
  result.replications = replications;
  result.ci = confidence_interval(per_run);
  result.late_fraction = result.ci.mean;
  return result;
}

// ---------------------------------------------------------------------------
// Monte-Carlo backend
// ---------------------------------------------------------------------------

DmpModelMonteCarlo::DmpModelMonteCarlo(const ComposedParams& params,
                                       std::uint64_t seed, SamplerMode mode)
    : params_(params),
      nmax_(params.nmax()),
      rng_(seed),
      seed_(seed),
      mode_(mode) {
  if (params.flows.empty()) throw std::invalid_argument{"need >= 1 flow"};
  if (params.mu_pps <= 0.0) throw std::invalid_argument{"mu must be positive"};
  if (nmax_ < 1) throw std::invalid_argument{"Nmax = mu*tau must be >= 1"};
  for (const auto& fp : params.flows) {
    chains_.push_back(shared_flow_chain(fp));
    flow_state_.push_back(chains_.back()->initial_state());
  }
  flow_delivered_.assign(chains_.size(), 0);
  // Start with a full buffer: live streaming begins consuming after the
  // buffer had tau seconds to fill; the warmup discards any residual bias.
  n_ = nmax_;
}

void DmpModelMonteCarlo::step_flow(std::size_t k) {
  const auto& chain = *chains_[k];
  const auto& ts = chain.transitions_from(flow_state_[k]);
  double x = rng_.uniform() * chain.exit_rate(flow_state_[k]);
  for (const auto& t : ts) {
    if (x < t.rate || &t == &ts.back()) {
      flow_state_[k] = t.target;
      if (t.delivered > 0) {
        n_ = std::min<std::int64_t>(n_ + t.delivered, nmax_);
        flow_delivered_[k] += t.delivered;
      }
      return;
    }
    x -= t.rate;
  }
}

bool DmpModelMonteCarlo::step() {
  // Total event rate: consumption + active (non-frozen) flows.
  double total = params_.mu_pps;
  const bool frozen = (n_ == nmax_);
  if (!frozen) {
    for (std::size_t k = 0; k < chains_.size(); ++k) {
      total += chains_[k]->exit_rate(flow_state_[k]);
    }
  }
  double x = rng_.uniform() * total;
  if (x < params_.mu_pps || frozen) {
    // Consumption event.
    if (n_ == 0) {
      ++late_;
      batches_.add(1.0);
    } else {
      --n_;
      batches_.add(0.0);
    }
    early_sum_ += static_cast<double>(n_);
    ++counted_;
    return true;
  }
  x -= params_.mu_pps;
  for (std::size_t k = 0; k < chains_.size(); ++k) {
    const double r = chains_[k]->exit_rate(flow_state_[k]);
    if (x < r || k + 1 == chains_.size()) {
      step_flow(k);
      return false;
    }
    x -= r;
  }
  return false;
}

const DmpModelMonteCarlo::GeomClass& DmpModelMonteCarlo::geom_class_for(
    double active) {
  for (std::size_t i = 0; i < geom_classes_.size(); ++i) {
    if (std::fabs(active - geom_classes_[i].active) <= 1e-9 * active) {
      alias_class_ = i;
      return geom_classes_[i];
    }
  }
  // Degenerate safeguard: the class list is bounded by the number of
  // semantically distinct exit-rate sums (a handful); if pathological
  // parameters ever produce unbounded drift, start over rather than grow.
  if (geom_classes_.size() >= 4096) geom_classes_.clear();
  GeomClass cls;
  cls.active = active;
  const double q = params_.mu_pps / (params_.mu_pps + active);
  // Outcome probabilities: P(J = j) = q^j (1 - q) for j < 32, and the
  // tail P(J >= 32) = q^32 (worth 32 consumptions + a fresh resample).
  std::array<double, 33> prob{};
  double qj = 1.0;
  for (std::size_t j = 0; j < 32; ++j) {
    prob[j] = qj * (1.0 - q);
    qj *= q;
  }
  prob[32] = qj;
  // Vose's stable alias construction, as in TcpFlowChain's tables.
  constexpr std::size_t kN = 33;
  std::array<double, kN> scaled{};
  for (std::size_t j = 0; j < kN; ++j) {
    scaled[j] = prob[j] * static_cast<double>(kN);
  }
  std::array<std::uint8_t, kN> small{}, large{};
  std::size_t nsmall = 0, nlarge = 0;
  for (std::size_t j = 0; j < kN; ++j) {
    if (scaled[j] < 1.0) {
      small[nsmall++] = static_cast<std::uint8_t>(j);
    } else {
      large[nlarge++] = static_cast<std::uint8_t>(j);
    }
  }
  for (std::size_t j = 0; j < kN; ++j) {
    cls.cut[j] = 1.0;
    cls.alias[j] = static_cast<std::uint8_t>(j);
  }
  while (nsmall > 0 && nlarge > 0) {
    const std::uint8_t s = small[--nsmall];
    const std::uint8_t l = large[--nlarge];
    cls.cut[s] = scaled[s];
    cls.alias[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      small[nsmall++] = l;
    } else {
      large[nlarge++] = l;
    }
  }
  geom_classes_.push_back(cls);
  alias_class_ = geom_classes_.size() - 1;
  return geom_classes_.back();
}

void DmpModelMonteCarlo::advance_alias(std::uint64_t target) {
  const std::size_t kflows = chains_.size();
  exit_now_.resize(kflows);
  for (std::size_t k = 0; k < kflows; ++k) {
    exit_now_[k] = chains_[k]->exit_rate(flow_state_[k]);
  }
  // All mutable state lives in locals for the duration of the loop (the
  // batch-means folds are inline, so nothing here escapes the optimizer's
  // view) and is flushed back to the members once on exit.
  double* const exits = exit_now_.data();
  std::uint32_t* const states = flow_state_.data();
  std::uint64_t* const delivered = flow_delivered_.data();
  const std::int64_t nmax = nmax_;
  std::int64_t n = n_;
  std::uint64_t counted = counted_;
  std::uint64_t late = late_;
  double early_sum = early_sum_;
  double alias_active = alias_active_;
  const GeomClass* cls =
      alias_class_ < geom_classes_.size() ? &geom_classes_[alias_class_]
                                          : nullptr;
  Rng rng = rng_;
  while (counted < target) {
    // While frozen (N = Nmax) the flows make no transitions, so the next
    // event is a consumption with probability 1; it folds into the
    // following geometric bulk (same RNG stream and trajectory: the exit
    // rates — and so the draw — are unchanged while frozen).
    const std::uint64_t forced = (n == nmax) ? 1 : 0;
    double active = 0.0;
    for (std::size_t k = 0; k < kflows; ++k) active += exits[k];
    if (!(std::fabs(active - alias_active) <= 1e-9 * active)) {
      // Exit rates cluster on a handful of values (every round/recovery
      // state leaves at 1/RTT mathematically), but the per-state FP sums
      // differ in the last bits, so an exact-equality lookup would miss on
      // most flow events.  A 1e-9 relative tolerance — orders of magnitude
      // above summation noise, orders below model accuracy — makes the
      // rate class hit whenever the rate is semantically unchanged, and
      // stays deterministic (same trajectory -> same comparisons).
      alias_active = active;
      cls = &geom_class_for(active);
    }
    // Number of consumptions J before the next flow event: geometric with
    // success probability mu / (mu + active), sampled through the rate
    // class's alias table (one uniform; the >= 32 tail adds 32 and
    // resamples, exact by memorylessness).  Truncated at `remaining` — by
    // memorylessness the truncation needs no correction, and a truncated
    // bulk draws no flow event.
    const std::uint64_t remaining = target - counted;
    std::uint64_t j = forced;
    for (;;) {
      const double s = rng.uniform() * 33.0;
      auto col = static_cast<std::uint32_t>(s);
      if (col > 32) col = 32;  // guard the u -> [0,33) edge
      const std::uint32_t d =
          (s - static_cast<double>(col)) < cls->cut[col] ? col
                                                         : cls->alias[col];
      if (d < 32) {
        j += d;
        break;
      }
      j += 32;
      if (j >= remaining) break;
    }
    if (j > remaining) j = remaining;
    if (j > 0) {
      // The first min(j, N) consumptions are on time and walk N down to 0;
      // the rest find an empty buffer.  Equivalent, sample for sample (and
      // in the same order for the batch-means stream), to j singles.
      const auto ontime =
          std::min<std::uint64_t>(j, static_cast<std::uint64_t>(n));
      const std::uint64_t newly_late = j - ontime;
      const double n0 = static_cast<double>(n);
      const double m = static_cast<double>(ontime);
      // Sum of N after each on-time consumption: (n0-1) + ... + (n0-m).
      early_sum += m * n0 - 0.5 * m * (m + 1.0);
      n -= static_cast<std::int64_t>(ontime);
      late += newly_late;
      counted += j;
      batches_.add_many(0.0, ontime);
      batches_.add_many(1.0, newly_late);
    }
    if (counted >= target) break;  // truncated bulk: no flow event drawn
    // Flow event: pick the flow proportionally to its exit rate, then its
    // transition through the per-state alias table in O(1).
    double x = rng.uniform() * active;
    std::size_t k = 0;
    for (; k + 1 < kflows; ++k) {
      if (x < exits[k]) break;
      x -= exits[k];
    }
    const TcpFlowChain& chain = *chains_[k];
    const auto& t = chain.pick_alias(states[k], rng.uniform());
    states[k] = t.target;
    exits[k] = chain.exit_rate(t.target);
    if (t.delivered > 0) {
      n = std::min<std::int64_t>(n + t.delivered, nmax);
      delivered[k] += t.delivered;
    }
  }
  n_ = n;
  counted_ = counted;
  late_ = late;
  early_sum_ = early_sum;
  alias_active_ = alias_active;  // alias_class_ is kept by geom_class_for
  rng_ = rng;
}

void DmpModelMonteCarlo::advance_to(std::uint64_t target) {
  if (mode_ == SamplerMode::kCompat) {
    while (counted_ < target) step();
  } else {
    advance_alias(target);
  }
}

MonteCarloResult DmpModelMonteCarlo::snapshot() const {
  MonteCarloResult result;
  result.consumptions = counted_;
  result.late = late_;
  result.late_fraction =
      static_cast<double>(late_) / static_cast<double>(counted_);
  result.ci = batches_.interval();
  result.mean_early_packets = early_sum_ / static_cast<double>(counted_);
  std::uint64_t delivered_total = 0;
  for (auto d : flow_delivered_) delivered_total += d;
  for (auto d : flow_delivered_) {
    result.flow_share.push_back(delivered_total == 0
                                    ? 0.0
                                    : static_cast<double>(d) /
                                          static_cast<double>(delivered_total));
  }
  return result;
}

MonteCarloResult DmpModelMonteCarlo::run(std::uint64_t consumptions,
                                         std::uint64_t warmup) {
  // Transient: run `warmup` consumptions without counting.
  if (mode_ == SamplerMode::kCompat) {
    std::uint64_t seen = 0;
    while (seen < warmup) seen += step() ? 1 : 0;
  } else {
    advance_alias(counted_ + warmup);
  }

  late_ = 0;
  counted_ = 0;
  early_sum_ = 0.0;
  batches_ = BatchMeans{};
  std::fill(flow_delivered_.begin(), flow_delivered_.end(), 0);

  advance_to(consumptions);
  return snapshot();
}

MonteCarloResult DmpModelMonteCarlo::run_until_decides(
    double threshold, std::uint64_t min_consumptions,
    std::uint64_t max_consumptions) {
  MonteCarloResult result = run(min_consumptions, min_consumptions / 10);
  std::uint64_t target = min_consumptions;
  while (result.consumptions < max_consumptions) {
    const bool decided =
        result.ci.hi() < threshold || result.ci.lo() > threshold;
    // Also stop when the estimate is overwhelmingly far from the threshold.
    if (decided) break;
    target *= 2;
    // Continue the same trajectory: accumulate more consumptions.
    advance_to(target);
    result = snapshot();
  }
  return result;
}

MonteCarloResult DmpModelMonteCarlo::run_sharded(
    std::uint64_t shards, std::uint64_t consumptions_per_shard,
    std::uint64_t warmup_per_shard, std::size_t threads) const {
  if (shards == 0) throw std::invalid_argument{"need >= 1 shard"};
  if (consumptions_per_shard == 0) {
    throw std::invalid_argument{"need >= 1 consumption per shard"};
  }
  if (warmup_per_shard == kAutoWarmup) {
    warmup_per_shard = consumptions_per_shard / 10;
  }

  struct ShardTotals {
    std::uint64_t late = 0;
    std::uint64_t counted = 0;
    double early_sum = 0.0;
    std::vector<std::uint64_t> delivered;
    double fraction = 0.0;
  };

  const SeedStream shard_seeds(seed_, kShardDomain);
  std::uint64_t late = 0;
  std::uint64_t counted = 0;
  double early_sum = 0.0;
  std::vector<std::uint64_t> delivered(chains_.size(), 0);
  std::vector<double> fractions;
  fractions.reserve(shards);

  const OrderedPool pool(threads);
  pool.run_ordered(
      static_cast<std::size_t>(shards),
      [&](std::size_t s) {
        DmpModelMonteCarlo engine(params_, shard_seeds.at(s),
                                  SamplerMode::kAlias);
        engine.run(consumptions_per_shard, warmup_per_shard);
        return ShardTotals{engine.late_, engine.counted_, engine.early_sum_,
                           engine.flow_delivered_,
                           static_cast<double>(engine.late_) /
                               static_cast<double>(engine.counted_)};
      },
      [&](std::size_t, ShardTotals&& shard) {
        late += shard.late;
        counted += shard.counted;
        early_sum += shard.early_sum;
        for (std::size_t k = 0; k < delivered.size(); ++k) {
          delivered[k] += shard.delivered[k];
        }
        fractions.push_back(shard.fraction);
      });

  MonteCarloResult result;
  result.consumptions = counted;
  result.late = late;
  result.late_fraction =
      static_cast<double>(late) / static_cast<double>(counted);
  result.ci = confidence_interval(fractions);
  result.mean_early_packets = early_sum / static_cast<double>(counted);
  std::uint64_t delivered_total = 0;
  for (auto d : delivered) delivered_total += d;
  for (auto d : delivered) {
    result.flow_share.push_back(delivered_total == 0
                                    ? 0.0
                                    : static_cast<double>(d) /
                                          static_cast<double>(delivered_total));
  }
  return result;
}

}  // namespace dmp
