#include "model/composed_chain.hpp"

#include <cmath>
#include <stdexcept>

#include "solver/ctmc.hpp"

namespace dmp {

std::int64_t ComposedParams::nmax() const {
  return static_cast<std::int64_t>(std::llround(mu_pps * tau_s));
}

// ---------------------------------------------------------------------------
// Exact product-chain backend
// ---------------------------------------------------------------------------

ComposedChainExact::ComposedChainExact(const ComposedParams& params) {
  if (params.flows.empty()) throw std::invalid_argument{"need >= 1 flow"};
  if (params.mu_pps <= 0.0) throw std::invalid_argument{"mu must be positive"};
  const std::int64_t nmax = params.nmax();
  if (nmax < 1) throw std::invalid_argument{"Nmax = mu*tau must be >= 1"};

  std::vector<TcpFlowChain> chains;
  chains.reserve(params.flows.size());
  std::uint64_t flow_product = 1;
  for (const auto& fp : params.flows) {
    chains.emplace_back(fp);
    flow_product *= chains.back().num_states();
  }
  const std::uint64_t total =
      flow_product * static_cast<std::uint64_t>(nmax + 1);
  // The triplet store costs ~16 B per edge and Gauss-Seidel sweeps the
  // whole chain repeatedly; beyond a couple of million states the Monte-
  // Carlo backend is the right tool.
  if (total > 2'000'000ull) {
    throw std::invalid_argument{
        "exact composed chain too large; use DmpModelMonteCarlo"};
  }
  num_states_ = static_cast<std::uint32_t>(total);

  const std::size_t kflows = chains.size();
  // Mixed-radix index: (((x_0 * n_1 + x_1) ... ) * (nmax+1)) + N.
  std::vector<std::uint64_t> stride(kflows);
  std::uint64_t acc = static_cast<std::uint64_t>(nmax + 1);
  for (std::size_t k = kflows; k-- > 0;) {
    stride[k] = acc;
    acc *= chains[k].num_states();
  }

  CtmcBuilder builder(num_states_);
  // Enumerate composed states by iterating flow-state tuples and N.
  std::vector<std::uint32_t> x(kflows, 0);
  while (true) {
    std::uint64_t base = 0;
    for (std::size_t k = 0; k < kflows; ++k) base += x[k] * stride[k];

    for (std::int64_t n = 0; n <= nmax; ++n) {
      const auto from = static_cast<std::uint32_t>(base + static_cast<std::uint64_t>(n));
      // Consumption: N -> max(N-1, 0); at N = 0 the state is unchanged
      // (self-loop, dropped) but the consumed packet is late — the metric
      // reads P(N = 0), so no edge is needed.
      if (n > 0) {
        builder.add_transition(from, from - 1, params.mu_pps);
      }
      // Flow transitions, frozen at N = Nmax.
      if (n == nmax) continue;
      for (std::size_t k = 0; k < kflows; ++k) {
        for (const auto& t : chains[k].transitions_from(x[k])) {
          const std::int64_t n2 =
              std::min<std::int64_t>(n + t.delivered, nmax);
          const std::uint64_t to = base +
                                   (static_cast<std::uint64_t>(t.target) -
                                    static_cast<std::uint64_t>(x[k])) *
                                       stride[k] +
                                   static_cast<std::uint64_t>(n2);
          builder.add_transition(from, static_cast<std::uint32_t>(to), t.rate);
        }
      }
    }

    // Advance the flow-state tuple (odometer).
    std::size_t k = kflows;
    while (k-- > 0) {
      if (++x[k] < chains[k].num_states()) break;
      x[k] = 0;
      if (k == 0) {
        k = SIZE_MAX;
        break;
      }
    }
    if (k == SIZE_MAX) break;
  }

  const auto pi = std::move(builder).build().steady_state_gauss_seidel(1e-13);

  n_marginal_.assign(static_cast<std::size_t>(nmax + 1), 0.0);
  for (std::uint64_t s = 0; s < pi.size(); ++s) {
    n_marginal_[s % static_cast<std::uint64_t>(nmax + 1)] += pi[s];
  }
  late_fraction_ = n_marginal_[0];
}

// ---------------------------------------------------------------------------
// Stored-video finite-horizon Monte Carlo
// ---------------------------------------------------------------------------

StoredVideoResult stored_video_late_fraction(const ComposedParams& params,
                                             std::int64_t video_packets,
                                             std::uint64_t replications,
                                             std::uint64_t seed) {
  if (params.flows.empty()) throw std::invalid_argument{"need >= 1 flow"};
  if (params.mu_pps <= 0.0) throw std::invalid_argument{"mu must be positive"};
  if (video_packets <= 0) throw std::invalid_argument{"empty video"};
  if (replications == 0) throw std::invalid_argument{"need >= 1 replication"};

  std::vector<TcpFlowChain> chains;
  chains.reserve(params.flows.size());
  for (const auto& fp : params.flows) chains.emplace_back(fp);

  Rng master(seed);
  std::vector<double> per_run;
  per_run.reserve(replications);
  for (std::uint64_t rep = 0; rep < replications; ++rep) {
    Rng rng = master.fork();
    std::vector<std::uint32_t> state;
    for (const auto& chain : chains) state.push_back(chain.initial_state());

    double t = 0.0;
    std::int64_t delivered = 0;
    std::int64_t consumed = 0;
    std::int64_t late = 0;
    while (consumed < video_packets) {
      const bool consuming = t >= params.tau_s;
      const bool sending = delivered < video_packets;
      double total_rate = consuming ? params.mu_pps : 0.0;
      if (sending) {
        for (std::size_t k = 0; k < chains.size(); ++k) {
          total_rate += chains[k].exit_rate(state[k]);
        }
      }
      if (total_rate <= 0.0) {
        // Everything delivered, playback not yet started: jump to tau.
        t = params.tau_s;
        continue;
      }
      const double dt = rng.exponential(1.0 / total_rate);
      // If playback has not started and this event lands past tau, the
      // consumption process must activate first; restarting the clock at
      // tau is exact because exponential holding times are memoryless.
      if (!consuming && t + dt >= params.tau_s) {
        t = params.tau_s;
        continue;
      }
      t += dt;

      double x = rng.uniform() * total_rate;
      if (consuming && x < params.mu_pps) {
        if (consumed >= delivered) ++late;  // nothing to play: glitch
        ++consumed;
        continue;
      }
      if (consuming) x -= params.mu_pps;
      for (std::size_t k = 0; k < chains.size(); ++k) {
        const double r = chains[k].exit_rate(state[k]);
        if (x < r || k + 1 == chains.size()) {
          const auto& ts = chains[k].transitions_from(state[k]);
          double y = rng.uniform() * r;
          for (const auto& tr : ts) {
            if (y < tr.rate || &tr == &ts.back()) {
              state[k] = tr.target;
              delivered = std::min<std::int64_t>(delivered + tr.delivered,
                                                 video_packets);
              break;
            }
            y -= tr.rate;
          }
          break;
        }
        x -= r;
      }
    }
    per_run.push_back(static_cast<double>(late) /
                      static_cast<double>(video_packets));
  }

  StoredVideoResult result;
  result.replications = replications;
  result.ci = confidence_interval(per_run);
  result.late_fraction = result.ci.mean;
  return result;
}

// ---------------------------------------------------------------------------
// Monte-Carlo backend
// ---------------------------------------------------------------------------

DmpModelMonteCarlo::DmpModelMonteCarlo(const ComposedParams& params,
                                       std::uint64_t seed)
    : params_(params), nmax_(params.nmax()), rng_(seed) {
  if (params.flows.empty()) throw std::invalid_argument{"need >= 1 flow"};
  if (params.mu_pps <= 0.0) throw std::invalid_argument{"mu must be positive"};
  if (nmax_ < 1) throw std::invalid_argument{"Nmax = mu*tau must be >= 1"};
  for (const auto& fp : params.flows) {
    chains_.push_back(std::make_shared<const TcpFlowChain>(fp));
    flow_state_.push_back(chains_.back()->initial_state());
  }
  flow_delivered_.assign(chains_.size(), 0);
  // Start with a full buffer: live streaming begins consuming after the
  // buffer had tau seconds to fill; the warmup discards any residual bias.
  n_ = nmax_;
}

void DmpModelMonteCarlo::step_flow(std::size_t k) {
  const auto& chain = *chains_[k];
  const auto& ts = chain.transitions_from(flow_state_[k]);
  double x = rng_.uniform() * chain.exit_rate(flow_state_[k]);
  for (const auto& t : ts) {
    if (x < t.rate || &t == &ts.back()) {
      flow_state_[k] = t.target;
      if (t.delivered > 0) {
        n_ = std::min<std::int64_t>(n_ + t.delivered, nmax_);
        flow_delivered_[k] += t.delivered;
      }
      return;
    }
    x -= t.rate;
  }
}

bool DmpModelMonteCarlo::step() {
  // Total event rate: consumption + active (non-frozen) flows.
  double total = params_.mu_pps;
  const bool frozen = (n_ == nmax_);
  if (!frozen) {
    for (std::size_t k = 0; k < chains_.size(); ++k) {
      total += chains_[k]->exit_rate(flow_state_[k]);
    }
  }
  double x = rng_.uniform() * total;
  if (x < params_.mu_pps || frozen) {
    // Consumption event.
    if (n_ == 0) {
      ++late_;
      batches_.add(1.0);
    } else {
      --n_;
      batches_.add(0.0);
    }
    early_sum_ += static_cast<double>(n_);
    ++counted_;
    return true;
  }
  x -= params_.mu_pps;
  for (std::size_t k = 0; k < chains_.size(); ++k) {
    const double r = chains_[k]->exit_rate(flow_state_[k]);
    if (x < r || k + 1 == chains_.size()) {
      step_flow(k);
      return false;
    }
    x -= r;
  }
  return false;
}

MonteCarloResult DmpModelMonteCarlo::run(std::uint64_t consumptions,
                                         std::uint64_t warmup) {
  // Transient: run `warmup` consumptions without counting.
  std::uint64_t seen = 0;
  while (seen < warmup) seen += step() ? 1 : 0;

  late_ = 0;
  counted_ = 0;
  early_sum_ = 0.0;
  batches_ = BatchMeans{};
  std::fill(flow_delivered_.begin(), flow_delivered_.end(), 0);

  while (counted_ < consumptions) step();

  MonteCarloResult result;
  result.consumptions = counted_;
  result.late = late_;
  result.late_fraction =
      static_cast<double>(late_) / static_cast<double>(counted_);
  result.ci = batches_.interval();
  result.mean_early_packets = early_sum_ / static_cast<double>(counted_);
  std::uint64_t delivered_total = 0;
  for (auto d : flow_delivered_) delivered_total += d;
  for (auto d : flow_delivered_) {
    result.flow_share.push_back(delivered_total == 0
                                    ? 0.0
                                    : static_cast<double>(d) /
                                          static_cast<double>(delivered_total));
  }
  return result;
}

MonteCarloResult DmpModelMonteCarlo::run_until_decides(
    double threshold, std::uint64_t min_consumptions,
    std::uint64_t max_consumptions) {
  MonteCarloResult result = run(min_consumptions, min_consumptions / 10);
  std::uint64_t target = min_consumptions;
  while (result.consumptions < max_consumptions) {
    const bool decided =
        result.ci.hi() < threshold || result.ci.lo() > threshold;
    // Also stop when the estimate is overwhelmingly far from the threshold.
    if (decided) break;
    target *= 2;
    // Continue the same trajectory: accumulate more consumptions.
    while (counted_ < target) step();
    result.consumptions = counted_;
    result.late = late_;
    result.late_fraction =
        static_cast<double>(late_) / static_cast<double>(counted_);
    result.ci = batches_.interval();
    result.mean_early_packets = early_sum_ / static_cast<double>(counted_);
  }
  std::uint64_t delivered_total = 0;
  for (auto d : flow_delivered_) delivered_total += d;
  result.flow_share.clear();
  for (auto d : flow_delivered_) {
    result.flow_share.push_back(delivered_total == 0
                                    ? 0.0
                                    : static_cast<double>(d) /
                                          static_cast<double>(delivered_total));
  }
  return result;
}

}  // namespace dmp
