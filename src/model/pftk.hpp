// The PFTK steady-state TCP throughput formula (Padhye, Firoiu, Towsley,
// Kurose, SIGCOMM '98) — the paper's reference [24], used in Section 7.2
// to construct loss-heterogeneous path pairs with a prescribed aggregate
// achievable throughput.
#pragma once

namespace dmp {

struct PftkParams {
  double loss_rate = 0.02;  // p
  double rtt_s = 0.2;       // R (seconds)
  double rto_s = 0.4;       // T_0 (seconds); the paper's TO * R
  double wmax = 20.0;       // receiver-window cap (packets)
  double b = 1.0;           // packets acknowledged per ACK
};

// Full PFTK throughput (packets per second), including the timeout term
// and the window limit.
double pftk_throughput_pps(const PftkParams& params);

// The square-root-only approximation 1 / (R * sqrt(2bp/3)); useful as an
// upper-bound sanity check.
double sqrt_model_throughput_pps(const PftkParams& params);

// Inverse of the full formula in p (bisection).
double pftk_loss_for_throughput(double target_pps, const PftkParams& base);

}  // namespace dmp
