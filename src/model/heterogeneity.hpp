// Section 7.2's controlled heterogeneous path constructions.
//
// Given a homogeneous pair (p_o, R_o, TO_o) and a heterogeneity factor
// gamma > 1, build a two-path set with the SAME aggregate achievable
// throughput:
//   * Case 1 (RTT heterogeneity):  R1 = gamma * R_o, R2 = R_o / (2 - 1/gamma)
//     (throughput scales as 1/R, so sigma1 + sigma2 = 2 sigma_o exactly).
//   * Case 2 (loss heterogeneity): p1 = gamma * p_o and p2 solved from the
//     achievable-throughput model so sigma1 + sigma2 = 2 sigma_o.  The
//     paper inverts the PFTK formula; we invert our own chain's throughput
//     for self-consistency (PFTK inversion is available separately).
#pragma once

#include <array>

#include "model/tcp_chain.hpp"

namespace dmp {

enum class HeterogeneityCase { kRtt, kLoss };

struct HeterogeneousPair {
  std::array<TcpChainParams, 2> flows;
  double aggregate_throughput_pps = 0.0;  // sigma1 + sigma2 (model-derived)
};

// The homogeneous baseline pair for comparison.
HeterogeneousPair homogeneous_pair(const TcpChainParams& per_path);

HeterogeneousPair heterogeneous_pair(const TcpChainParams& homogeneous,
                                     HeterogeneityCase which, double gamma);

}  // namespace dmp
