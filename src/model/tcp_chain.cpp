#include "model/tcp_chain.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <tuple>
#include <unordered_map>

#include "model/chain_cache.hpp"

namespace dmp {

namespace {

enum class Mode : std::uint8_t {
  kSlowStart,
  kCongestionAvoidance,
  kRecovery,
  kTimeout
};

// Symbolic state; enumeration assigns dense indices to reachable states only.
struct StateDesc {
  Mode mode = Mode::kSlowStart;
  int w = 1;        // congestion window (packets); 1 in timeout states
  int ssthresh = 2; // slow-start threshold
  int c = 0;        // delayed-ACK phase (CA only, 0..b-1)
  int l = 0;        // packets lost in the previous round, pending recovery
  int e = 0;        // timeout backoff exponent (timeout states only)

  // Dense packing for the BFS hash map: every field is bounded (w, ssthresh
  // and l by wmax <= 4095, e by max_backoff, c by b), so the whole state
  // fits one 64-bit key.
  std::uint64_t key() const {
    return (static_cast<std::uint64_t>(mode) << 44) |
           (static_cast<std::uint64_t>(w) << 32) |
           (static_cast<std::uint64_t>(ssthresh) << 20) |
           (static_cast<std::uint64_t>(c) << 19) |
           (static_cast<std::uint64_t>(l) << 7) |
           static_cast<std::uint64_t>(e);
  }
};

struct SymbolicTransition {
  StateDesc target;
  double rate;
  int delivered;
};

class Expander {
 public:
  explicit Expander(const TcpChainParams& p) : p_(p) {
    if (p.loss_rate <= 0.0 || p.loss_rate >= 1.0) {
      throw std::invalid_argument{"loss rate must lie in (0, 1)"};
    }
    if (p.rtt_s <= 0.0) throw std::invalid_argument{"RTT must be positive"};
    if (p.to_ratio <= 0.0) throw std::invalid_argument{"TO must be positive"};
    if (p.wmax < 2) throw std::invalid_argument{"wmax must be >= 2"};
    if (p.wmax > 4095) throw std::invalid_argument{"wmax must be <= 4095"};
    if (p.ack_every < 1 || p.ack_every > 2) {
      throw std::invalid_argument{"ack_every must be 1 or 2"};
    }
    if (p.max_backoff < 1) throw std::invalid_argument{"max_backoff >= 1"};
    if (p.max_backoff > 127) {
      throw std::invalid_argument{"max_backoff must be <= 127"};
    }
  }

  std::vector<SymbolicTransition> expand(const StateDesc& s) const {
    switch (s.mode) {
      case Mode::kSlowStart:
      case Mode::kCongestionAvoidance:
        return expand_round(s);
      case Mode::kRecovery:
        return expand_recovery(s);
      case Mode::kTimeout:
        return expand_timeout(s);
    }
    return {};
  }

 private:
  int half(int w) const { return std::max(w / 2, 2); }

  StateDesc grown(const StateDesc& s) const {
    StateDesc n = s;
    if (s.mode == Mode::kSlowStart) {
      // One window-increment per ACK: b=1 doubles the window per round,
      // b=2 grows it 1.5x.
      const int acks = (s.w + p_.ack_every - 1) / p_.ack_every;
      n.w = std::min({s.w + acks, s.ssthresh, p_.wmax});
      if (n.w >= s.ssthresh) {
        n.mode = Mode::kCongestionAvoidance;
        n.c = 0;
      }
    } else {
      // Congestion avoidance: +1 packet every b rounds via the phase bit C.
      if (s.c + 1 >= p_.ack_every) {
        n.w = std::min(s.w + 1, p_.wmax);
        n.c = 0;
      } else {
        n.c = s.c + 1;
      }
    }
    return n;
  }

  std::vector<SymbolicTransition> expand_round(const StateDesc& s) const {
    std::vector<SymbolicTransition> out;
    const double p = p_.loss_rate;
    const double round_rate = 1.0 / p_.rtt_s;
    const double ok = std::pow(1.0 - p, s.w);

    out.push_back({grown(s), round_rate * ok, s.w});

    // First loss at position i: packets 1..i-1 deliver, i..w are lost.
    const double q_to = std::min(1.0, 3.0 / s.w);
    for (int i = 1; i <= s.w; ++i) {
      const double prob_i = std::pow(1.0 - p, i - 1) * p;
      const int lost = s.w - i + 1;

      if (q_to > 0.0) {
        StateDesc to{};
        to.mode = Mode::kTimeout;
        to.w = 1;
        to.ssthresh = half(s.w);
        to.l = lost;
        to.e = 1;
        out.push_back({to, round_rate * prob_i * q_to, i - 1});
      }
      if (q_to < 1.0) {
        StateDesc fr{};
        fr.mode = Mode::kRecovery;
        fr.w = half(s.w);
        fr.ssthresh = half(s.w);
        fr.l = lost;
        out.push_back({fr, round_rate * prob_i * (1.0 - q_to), i - 1});
      }
    }
    return out;
  }

  std::vector<SymbolicTransition> expand_recovery(const StateDesc& s) const {
    // The recovery round retransmits the l lost packets AND keeps the
    // (halved) window of new data flowing, as Reno does.  If any
    // retransmission is lost, recovery fails into timeout; otherwise the
    // new data faces the usual per-round loss process.
    std::vector<SymbolicTransition> out;
    const double p = p_.loss_rate;
    const double round_rate = 1.0 / p_.rtt_s;
    const double rtx_ok = std::pow(1.0 - p, s.l);

    // Retransmission lost -> timeout; the gap persists, nothing delivers.
    {
      StateDesc to{};
      to.mode = Mode::kTimeout;
      to.w = 1;
      to.ssthresh = half(s.w);
      to.l = s.l;
      to.e = 1;
      out.push_back({to, round_rate * (1.0 - rtx_ok), 0});
    }

    // Retransmissions arrive: the l blocked packets release, and the new
    // w-packet round behaves like a normal round.
    const double all_ok = std::pow(1.0 - p, s.w);
    StateDesc recovered = s;
    recovered.mode = Mode::kCongestionAvoidance;
    recovered.c = 0;
    recovered.l = 0;
    out.push_back({recovered, round_rate * rtx_ok * all_ok, s.l + s.w});

    const double q_to = std::min(1.0, 3.0 / s.w);
    for (int j = 1; j <= s.w; ++j) {
      const double prob_j = std::pow(1.0 - p, j - 1) * p;
      const int lost = s.w - j + 1;
      if (q_to > 0.0) {
        StateDesc to{};
        to.mode = Mode::kTimeout;
        to.w = 1;
        to.ssthresh = half(s.w);
        to.l = lost;
        to.e = 1;
        out.push_back({to, round_rate * rtx_ok * prob_j * q_to, s.l + j - 1});
      }
      if (q_to < 1.0) {
        StateDesc fr{};
        fr.mode = Mode::kRecovery;
        fr.w = half(s.w);
        fr.ssthresh = half(s.w);
        fr.l = lost;
        out.push_back(
            {fr, round_rate * rtx_ok * prob_j * (1.0 - q_to), s.l + j - 1});
      }
    }
    return out;
  }

  std::vector<SymbolicTransition> expand_timeout(const StateDesc& s) const {
    std::vector<SymbolicTransition> out;
    const double backoff = std::pow(2.0, s.e - 1);
    const double rate = 1.0 / (p_.to_ratio * backoff * p_.rtt_s);

    StateDesc ss{};
    ss.mode = Mode::kSlowStart;
    ss.w = 1;
    ss.ssthresh = s.ssthresh;
    out.push_back({ss, rate * (1.0 - p_.loss_rate), s.l});

    StateDesc again = s;
    again.e = std::min(s.e + 1, p_.max_backoff);
    if (again.e != s.e) {
      out.push_back({again, rate * p_.loss_rate, 0});
    } else {
      // At the backoff cap the failed retransmission re-enters the same
      // state; as a CTMC self-loop it is dropped, which only rescales the
      // holding time the way repeated failures would.
      out.push_back({again, 0.0, 0});
    }
    return out;
  }

  TcpChainParams p_;
};

}  // namespace

TcpFlowChain::TcpFlowChain(TcpChainParams params) : params_(params) {
  const Expander expander(params);

  StateDesc init{};
  init.mode = Mode::kSlowStart;
  init.w = 1;
  init.ssthresh = std::max(params.wmax / 2, 2);

  // BFS over reachable symbolic states, assigning dense indices.  The
  // frontier pops states in discovery (= index) order, so one expansion
  // pass both discovers successors and emits state si's CSR row before
  // row si+1 starts.
  std::unordered_map<std::uint64_t, std::uint32_t> index;
  index.reserve(4096);
  std::queue<StateDesc> frontier;
  index.emplace(init.key(), 0);
  frontier.push(init);

  row_off_.push_back(0);
  while (!frontier.empty()) {
    const StateDesc s = frontier.front();
    frontier.pop();
    double exits = 0.0;
    for (const auto& t : expander.expand(s)) {
      if (t.rate <= 0.0) continue;
      const auto [it, inserted] = index.emplace(
          t.target.key(), static_cast<std::uint32_t>(index.size()));
      if (inserted) frontier.push(t.target);
      flat_.push_back(FlowTransition{it->second, t.rate,
                                     static_cast<std::uint32_t>(t.delivered)});
      exits += t.rate;
    }
    row_off_.push_back(static_cast<std::uint32_t>(flat_.size()));
    exit_rate_.push_back(exits);
    timeout_flag_.push_back(s.mode == Mode::kTimeout);
  }
  initial_ = 0;

  // Walker alias tables, one per state over its out-degree d: column j
  // keeps transition j with probability alias_cut_[j] of the fractional
  // draw, and donates the rest of its 1/d column to alias_other_[j]
  // (Vose's stable construction).
  alias_cut_.assign(flat_.size(), 1.0);
  alias_other_.assign(flat_.size(), 0);
  std::vector<std::uint32_t> small_cols, large_cols;
  std::vector<double> scaled;
  for (std::uint32_t s = 0; s + 1 < row_off_.size(); ++s) {
    const std::uint32_t off = row_off_[s];
    const std::uint32_t d = row_off_[s + 1] - off;
    if (d == 0) continue;
    scaled.assign(d, 0.0);
    small_cols.clear();
    large_cols.clear();
    const double norm = static_cast<double>(d) / exit_rate_[s];
    for (std::uint32_t j = 0; j < d; ++j) {
      scaled[j] = flat_[off + j].rate * norm;
      (scaled[j] < 1.0 ? small_cols : large_cols).push_back(j);
    }
    while (!small_cols.empty() && !large_cols.empty()) {
      const std::uint32_t sm = small_cols.back();
      small_cols.pop_back();
      const std::uint32_t lg = large_cols.back();
      alias_cut_[off + sm] = scaled[sm];
      alias_other_[off + sm] = lg;
      scaled[lg] -= 1.0 - scaled[sm];
      if (scaled[lg] < 1.0) {
        large_cols.pop_back();
        small_cols.push_back(lg);
      }
    }
    // Leftovers (either list) keep their own column: cut = 1.
    for (const std::uint32_t j : small_cols) {
      alias_cut_[off + j] = 1.0;
      alias_other_[off + j] = j;
    }
    for (const std::uint32_t j : large_cols) {
      alias_cut_[off + j] = 1.0;
      alias_other_[off + j] = j;
    }
  }
}

void TcpFlowChain::solve_locked() const {
  if (stationary_) return;
  CtmcBuilder builder(num_states());
  for (std::uint32_t s = 0; s < num_states(); ++s) {
    for (const auto& t : transitions_from(s)) {
      builder.add_transition(s, t.target, t.rate);
    }
  }
  std::vector<double> pi = std::move(builder).build().steady_state_gauss_seidel();
  double rate = 0.0;
  for (std::uint32_t s = 0; s < num_states(); ++s) {
    for (const auto& t : transitions_from(s)) {
      rate += pi[s] * t.rate * t.delivered;
    }
  }
  throughput_pps_ = rate;
  stationary_ = std::move(pi);
}

const std::vector<double>& TcpFlowChain::stationary() const {
  std::lock_guard<std::mutex> lock(solve_mu_);
  solve_locked();
  return *stationary_;
}

double TcpFlowChain::achievable_throughput_pps() const {
  std::lock_guard<std::mutex> lock(solve_mu_);
  solve_locked();
  return throughput_pps_;
}

double loss_rate_for_throughput(double target_pps, const TcpChainParams& base) {
  if (target_pps <= 0.0) {
    throw std::invalid_argument{"target throughput must be positive"};
  }
  // Chains go through the shared cache: a repeated inversion (the
  // heterogeneity benches call this per grid point) re-uses both the chain
  // build and its memoized solve.
  auto throughput_at = [&](double p) {
    TcpChainParams params = base;
    params.loss_rate = p;
    return shared_flow_chain(params)->achievable_throughput_pps();
  };
  double lo = 1e-5, hi = 0.6;  // throughput decreasing in p
  if (throughput_at(lo) < target_pps) {
    throw std::invalid_argument{
        "target throughput unreachable even at negligible loss"};
  }
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (throughput_at(mid) >= target_pps) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-7) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace dmp
