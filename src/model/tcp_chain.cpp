#include "model/tcp_chain.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <stdexcept>
#include <tuple>

namespace dmp {

namespace {

enum class Mode : std::uint8_t {
  kSlowStart,
  kCongestionAvoidance,
  kRecovery,
  kTimeout
};

// Symbolic state; enumeration assigns dense indices to reachable states only.
struct StateDesc {
  Mode mode = Mode::kSlowStart;
  int w = 1;        // congestion window (packets); 1 in timeout states
  int ssthresh = 2; // slow-start threshold
  int c = 0;        // delayed-ACK phase (CA only, 0..b-1)
  int l = 0;        // packets lost in the previous round, pending recovery
  int e = 0;        // timeout backoff exponent (timeout states only)

  auto key() const { return std::tie(mode, w, ssthresh, c, l, e); }
  bool operator<(const StateDesc& o) const { return key() < o.key(); }
};

struct SymbolicTransition {
  StateDesc target;
  double rate;
  int delivered;
};

class Expander {
 public:
  explicit Expander(const TcpChainParams& p) : p_(p) {
    if (p.loss_rate <= 0.0 || p.loss_rate >= 1.0) {
      throw std::invalid_argument{"loss rate must lie in (0, 1)"};
    }
    if (p.rtt_s <= 0.0) throw std::invalid_argument{"RTT must be positive"};
    if (p.to_ratio <= 0.0) throw std::invalid_argument{"TO must be positive"};
    if (p.wmax < 2) throw std::invalid_argument{"wmax must be >= 2"};
    if (p.ack_every < 1 || p.ack_every > 2) {
      throw std::invalid_argument{"ack_every must be 1 or 2"};
    }
    if (p.max_backoff < 1) throw std::invalid_argument{"max_backoff >= 1"};
  }

  std::vector<SymbolicTransition> expand(const StateDesc& s) const {
    switch (s.mode) {
      case Mode::kSlowStart:
      case Mode::kCongestionAvoidance:
        return expand_round(s);
      case Mode::kRecovery:
        return expand_recovery(s);
      case Mode::kTimeout:
        return expand_timeout(s);
    }
    return {};
  }

 private:
  int half(int w) const { return std::max(w / 2, 2); }

  StateDesc grown(const StateDesc& s) const {
    StateDesc n = s;
    if (s.mode == Mode::kSlowStart) {
      // One window-increment per ACK: b=1 doubles the window per round,
      // b=2 grows it 1.5x.
      const int acks = (s.w + p_.ack_every - 1) / p_.ack_every;
      n.w = std::min({s.w + acks, s.ssthresh, p_.wmax});
      if (n.w >= s.ssthresh) {
        n.mode = Mode::kCongestionAvoidance;
        n.c = 0;
      }
    } else {
      // Congestion avoidance: +1 packet every b rounds via the phase bit C.
      if (s.c + 1 >= p_.ack_every) {
        n.w = std::min(s.w + 1, p_.wmax);
        n.c = 0;
      } else {
        n.c = s.c + 1;
      }
    }
    return n;
  }

  std::vector<SymbolicTransition> expand_round(const StateDesc& s) const {
    std::vector<SymbolicTransition> out;
    const double p = p_.loss_rate;
    const double round_rate = 1.0 / p_.rtt_s;
    const double ok = std::pow(1.0 - p, s.w);

    out.push_back({grown(s), round_rate * ok, s.w});

    // First loss at position i: packets 1..i-1 deliver, i..w are lost.
    const double q_to = std::min(1.0, 3.0 / s.w);
    for (int i = 1; i <= s.w; ++i) {
      const double prob_i = std::pow(1.0 - p, i - 1) * p;
      const int lost = s.w - i + 1;

      if (q_to > 0.0) {
        StateDesc to{};
        to.mode = Mode::kTimeout;
        to.w = 1;
        to.ssthresh = half(s.w);
        to.l = lost;
        to.e = 1;
        out.push_back({to, round_rate * prob_i * q_to, i - 1});
      }
      if (q_to < 1.0) {
        StateDesc fr{};
        fr.mode = Mode::kRecovery;
        fr.w = half(s.w);
        fr.ssthresh = half(s.w);
        fr.l = lost;
        out.push_back({fr, round_rate * prob_i * (1.0 - q_to), i - 1});
      }
    }
    return out;
  }

  std::vector<SymbolicTransition> expand_recovery(const StateDesc& s) const {
    // The recovery round retransmits the l lost packets AND keeps the
    // (halved) window of new data flowing, as Reno does.  If any
    // retransmission is lost, recovery fails into timeout; otherwise the
    // new data faces the usual per-round loss process.
    std::vector<SymbolicTransition> out;
    const double p = p_.loss_rate;
    const double round_rate = 1.0 / p_.rtt_s;
    const double rtx_ok = std::pow(1.0 - p, s.l);

    // Retransmission lost -> timeout; the gap persists, nothing delivers.
    {
      StateDesc to{};
      to.mode = Mode::kTimeout;
      to.w = 1;
      to.ssthresh = half(s.w);
      to.l = s.l;
      to.e = 1;
      out.push_back({to, round_rate * (1.0 - rtx_ok), 0});
    }

    // Retransmissions arrive: the l blocked packets release, and the new
    // w-packet round behaves like a normal round.
    const double all_ok = std::pow(1.0 - p, s.w);
    StateDesc recovered = s;
    recovered.mode = Mode::kCongestionAvoidance;
    recovered.c = 0;
    recovered.l = 0;
    out.push_back({recovered, round_rate * rtx_ok * all_ok, s.l + s.w});

    const double q_to = std::min(1.0, 3.0 / s.w);
    for (int j = 1; j <= s.w; ++j) {
      const double prob_j = std::pow(1.0 - p, j - 1) * p;
      const int lost = s.w - j + 1;
      if (q_to > 0.0) {
        StateDesc to{};
        to.mode = Mode::kTimeout;
        to.w = 1;
        to.ssthresh = half(s.w);
        to.l = lost;
        to.e = 1;
        out.push_back({to, round_rate * rtx_ok * prob_j * q_to, s.l + j - 1});
      }
      if (q_to < 1.0) {
        StateDesc fr{};
        fr.mode = Mode::kRecovery;
        fr.w = half(s.w);
        fr.ssthresh = half(s.w);
        fr.l = lost;
        out.push_back(
            {fr, round_rate * rtx_ok * prob_j * (1.0 - q_to), s.l + j - 1});
      }
    }
    return out;
  }

  std::vector<SymbolicTransition> expand_timeout(const StateDesc& s) const {
    std::vector<SymbolicTransition> out;
    const double backoff = std::pow(2.0, s.e - 1);
    const double rate = 1.0 / (p_.to_ratio * backoff * p_.rtt_s);

    StateDesc ss{};
    ss.mode = Mode::kSlowStart;
    ss.w = 1;
    ss.ssthresh = s.ssthresh;
    out.push_back({ss, rate * (1.0 - p_.loss_rate), s.l});

    StateDesc again = s;
    again.e = std::min(s.e + 1, p_.max_backoff);
    if (again.e != s.e) {
      out.push_back({again, rate * p_.loss_rate, 0});
    } else {
      // At the backoff cap the failed retransmission re-enters the same
      // state; as a CTMC self-loop it is dropped, which only rescales the
      // holding time the way repeated failures would.
      out.push_back({again, 0.0, 0});
    }
    return out;
  }

  TcpChainParams p_;
};

}  // namespace

TcpFlowChain::TcpFlowChain(TcpChainParams params) : params_(params) {
  const Expander expander(params);

  StateDesc init{};
  init.mode = Mode::kSlowStart;
  init.w = 1;
  init.ssthresh = std::max(params.wmax / 2, 2);

  // BFS over reachable symbolic states, assigning dense indices.
  std::map<StateDesc, std::uint32_t> index;
  std::vector<StateDesc> order;
  std::queue<StateDesc> frontier;
  index.emplace(init, 0);
  order.push_back(init);
  frontier.push(init);
  while (!frontier.empty()) {
    const StateDesc s = frontier.front();
    frontier.pop();
    for (const auto& t : expander.expand(s)) {
      if (t.rate <= 0.0) continue;
      if (index.emplace(t.target, static_cast<std::uint32_t>(order.size()))
              .second) {
        order.push_back(t.target);
        frontier.push(t.target);
      }
    }
  }

  transitions_.resize(order.size());
  exit_rate_.assign(order.size(), 0.0);
  timeout_flag_.assign(order.size(), false);
  for (std::uint32_t si = 0; si < order.size(); ++si) {
    timeout_flag_[si] = order[si].mode == Mode::kTimeout;
    for (const auto& t : expander.expand(order[si])) {
      if (t.rate <= 0.0) continue;
      transitions_[si].push_back(FlowTransition{
          index.at(t.target), t.rate, static_cast<std::uint32_t>(t.delivered)});
      exit_rate_[si] += t.rate;
    }
  }
  initial_ = 0;
}

std::uint32_t TcpFlowChain::num_states() const {
  return static_cast<std::uint32_t>(transitions_.size());
}

std::vector<double> TcpFlowChain::stationary() const {
  CtmcBuilder builder(num_states());
  for (std::uint32_t s = 0; s < num_states(); ++s) {
    for (const auto& t : transitions_[s]) {
      builder.add_transition(s, t.target, t.rate);
    }
  }
  return std::move(builder).build().steady_state_gauss_seidel();
}

double TcpFlowChain::achievable_throughput_pps() const {
  const auto pi = stationary();
  double rate = 0.0;
  for (std::uint32_t s = 0; s < num_states(); ++s) {
    for (const auto& t : transitions_[s]) {
      rate += pi[s] * t.rate * t.delivered;
    }
  }
  return rate;
}

double loss_rate_for_throughput(double target_pps, const TcpChainParams& base) {
  if (target_pps <= 0.0) {
    throw std::invalid_argument{"target throughput must be positive"};
  }
  auto throughput_at = [&](double p) {
    TcpChainParams params = base;
    params.loss_rate = p;
    return TcpFlowChain(params).achievable_throughput_pps();
  };
  double lo = 1e-5, hi = 0.6;  // throughput decreasing in p
  if (throughput_at(lo) < target_pps) {
    throw std::invalid_argument{
        "target throughput unreachable even at negligible loss"};
  }
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (throughput_at(mid) >= target_pps) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-7) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace dmp
