#include "model/heterogeneity.hpp"

#include <stdexcept>

#include "model/chain_cache.hpp"

namespace dmp {

HeterogeneousPair homogeneous_pair(const TcpChainParams& per_path) {
  HeterogeneousPair pair;
  pair.flows = {per_path, per_path};
  pair.aggregate_throughput_pps =
      2.0 * shared_flow_chain(per_path)->achievable_throughput_pps();
  return pair;
}

HeterogeneousPair heterogeneous_pair(const TcpChainParams& homogeneous,
                                     HeterogeneityCase which, double gamma) {
  if (gamma <= 1.0) throw std::invalid_argument{"gamma must exceed 1"};
  HeterogeneousPair pair;
  pair.flows = {homogeneous, homogeneous};

  if (which == HeterogeneityCase::kRtt) {
    pair.flows[0].rtt_s = gamma * homogeneous.rtt_s;
    pair.flows[1].rtt_s = homogeneous.rtt_s / (2.0 - 1.0 / gamma);
  } else {
    const double sigma_o =
        shared_flow_chain(homogeneous)->achievable_throughput_pps();
    pair.flows[0].loss_rate = gamma * homogeneous.loss_rate;
    if (pair.flows[0].loss_rate >= 1.0) {
      throw std::invalid_argument{"gamma * p must stay below 1"};
    }
    const double sigma_1 =
        shared_flow_chain(pair.flows[0])->achievable_throughput_pps();
    const double sigma_2_target = 2.0 * sigma_o - sigma_1;
    if (sigma_2_target <= 0.0) {
      throw std::invalid_argument{
          "loss heterogeneity too extreme: path 2 would need infinite rate"};
    }
    pair.flows[1].loss_rate =
        loss_rate_for_throughput(sigma_2_target, pair.flows[1]);
  }

  pair.aggregate_throughput_pps =
      shared_flow_chain(pair.flows[0])->achievable_throughput_pps() +
      shared_flow_chain(pair.flows[1])->achievable_throughput_pps();
  return pair;
}

}  // namespace dmp
