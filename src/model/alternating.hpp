// Section 7.3's illustrative example: all paths alternate between zero and
// non-zero throughput with a fixed period.  A single path P delivers 2*mu
// when "on"; DMP uses P1 (rate x) and P2 (rate 2*mu - x).  When the two DMP
// paths are out of phase, DMP sends on whichever path is up and beats
// single-path streaming; in phase it degenerates to the single path.
//
// The computation is a deterministic fluid model: generation at mu from
// time 0, playback at mu from tau, transmission limited by the currently
// available capacity and by how much content exists.  The late fraction is
// the long-run fraction of playback deadlines at which cumulative arrivals
// trail cumulative playback.
#pragma once

namespace dmp {

struct AlternatingScenario {
  double mu_pps = 25.0;   // playback rate
  double period_s = 20.0; // full on/off cycle (half up, half down); the
                          // paper's "period of 10 seconds" reads as the
                          // phase length — 10 s up, 10 s down
  double tau_s = 5.0;     // startup delay (the paper's example value)
  double x_pps = 25.0;    // P1's non-zero rate, x in (0, mu]
};

struct AlternatingResult {
  double f_single = 0.0;         // single path at 2*mu / 0
  double f_dmp_in_phase = 0.0;   // both DMP paths up together (== single)
  double f_dmp_anti_phase = 0.0; // paths alternate
  double f_dmp_average = 0.0;    // mean over the two phase alignments
};

AlternatingResult alternating_late_fractions(const AlternatingScenario& s);

}  // namespace dmp
