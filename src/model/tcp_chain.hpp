// Per-flow TCP CTMC — the X_k(t) component of the paper's model.
//
// The paper (Section 4.2) tracks X_k = (W, C, L, E, Q) and defers the full
// transition table to its companion TR [32], which is not retrievable; this
// is our documented reconstruction following the cited modeling lineage
// (Padhye et al. 1998; Figueiredo et al. 2002; Wang et al. 2004):
//
//   * Rounds: in normal operation the flow makes one transition per RTT
//     (exponential with rate 1/R), sending a W-packet round.
//   * Correlated intra-round losses: the first loss at position i loses
//     packets i..W (L = W-i+1); earlier packets deliver (S = i-1).
//   * Loss detection: timeout with probability min(1, 3/W) (too few dup
//     ACKs), otherwise fast retransmit -> a recovery round that redelivers
//     the L lost packets with probability (1-p)^L and halves the window.
//   * Timeout states: exponential duration with mean TO * 2^(E-1) * R
//     (E = backoff exponent, capped); the retransmission succeeds w.p. 1-p,
//     releasing the L blocked packets and restarting in slow start.
//   * Slow start doubles (b=1) or grows 1.5x (b=2, delayed ACKs) per round
//     up to ssthresh; congestion avoidance adds one packet per b rounds
//     (the paper's C component is the b=2 phase bit).
//
// Each transition carries S, the number of packets released in order to the
// client — the increment applied to the early-packet count N(t) in the
// composed chain.
#pragma once

#include <cstdint>
#include <vector>

#include "solver/ctmc.hpp"

namespace dmp {

struct TcpChainParams {
  double loss_rate = 0.02;  // p: per-packet loss probability
  double rtt_s = 0.2;       // R: round-trip time in seconds
  double to_ratio = 2.0;    // TO: first retransmission timer / RTT
  int wmax = 20;            // maximum congestion window (packets)
  int ack_every = 1;        // b: 1 = per-packet ACKs, 2 = delayed ACKs
  int max_backoff = 6;      // timeout exponent cap
};

// One outgoing transition of the per-flow chain.
struct FlowTransition {
  std::uint32_t target = 0;
  double rate = 0.0;       // exponential rate (1/s)
  std::uint32_t delivered = 0;  // S: packets released in order by this event
};

class TcpFlowChain {
 public:
  explicit TcpFlowChain(TcpChainParams params);

  const TcpChainParams& params() const { return params_; }
  std::uint32_t num_states() const;
  std::uint32_t initial_state() const { return initial_; }

  const std::vector<FlowTransition>& transitions_from(std::uint32_t s) const {
    return transitions_[s];
  }
  double exit_rate(std::uint32_t s) const { return exit_rate_[s]; }
  // True while the flow sits in a timeout state (diagnostics).
  bool is_timeout_state(std::uint32_t s) const { return timeout_flag_[s]; }

  // Stationary distribution of the flow chain alone (backlogged source).
  std::vector<double> stationary() const;

  // sigma_k: the achievable (backlogged) TCP throughput in packets/s —
  // long-run delivered rate of the chain with no Nmax constraint.
  double achievable_throughput_pps() const;

 private:
  TcpChainParams params_;
  std::uint32_t initial_ = 0;
  std::vector<std::vector<FlowTransition>> transitions_;
  std::vector<double> exit_rate_;
  std::vector<bool> timeout_flag_;
};

// Inverse throughput map: the loss rate at which a path with the given RTT,
// TO and window limit achieves `target_pps` (bisection; throughput is
// monotone decreasing in p).  Used by the paper's heterogeneity Case 2.
double loss_rate_for_throughput(double target_pps, const TcpChainParams& base);

}  // namespace dmp
