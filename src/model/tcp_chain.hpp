// Per-flow TCP CTMC — the X_k(t) component of the paper's model.
//
// The paper (Section 4.2) tracks X_k = (W, C, L, E, Q) and defers the full
// transition table to its companion TR [32], which is not retrievable; this
// is our documented reconstruction following the cited modeling lineage
// (Padhye et al. 1998; Figueiredo et al. 2002; Wang et al. 2004):
//
//   * Rounds: in normal operation the flow makes one transition per RTT
//     (exponential with rate 1/R), sending a W-packet round.
//   * Correlated intra-round losses: the first loss at position i loses
//     packets i..W (L = W-i+1); earlier packets deliver (S = i-1).
//   * Loss detection: timeout with probability min(1, 3/W) (too few dup
//     ACKs), otherwise fast retransmit -> a recovery round that redelivers
//     the L lost packets with probability (1-p)^L and halves the window.
//   * Timeout states: exponential duration with mean TO * 2^(E-1) * R
//     (E = backoff exponent, capped); the retransmission succeeds w.p. 1-p,
//     releasing the L blocked packets and restarting in slow start.
//   * Slow start doubles (b=1) or grows 1.5x (b=2, delayed ACKs) per round
//     up to ssthresh; congestion avoidance adds one packet per b rounds
//     (the paper's C component is the b=2 phase bit).
//
// Each transition carries S, the number of packets released in order to the
// client — the increment applied to the early-packet count N(t) in the
// composed chain.
//
// Storage is CSR (one flat transition array + per-state row offsets) so the
// Monte-Carlo hot loops walk contiguous memory, and every state carries a
// Walker alias table so the fast samplers draw the next transition in O(1)
// (`pick_alias`).  `pick_linear` reproduces, operation for operation, the
// sequential-subtraction scan the engine has always used, so the default
// "compat" sampling path stays byte-identical to historical golden runs.
// See docs/MODEL_ENGINE.md.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "solver/ctmc.hpp"

namespace dmp {

struct TcpChainParams {
  double loss_rate = 0.02;  // p: per-packet loss probability
  double rtt_s = 0.2;       // R: round-trip time in seconds
  double to_ratio = 2.0;    // TO: first retransmission timer / RTT
  int wmax = 20;            // maximum congestion window (packets)
  int ack_every = 1;        // b: 1 = per-packet ACKs, 2 = delayed ACKs
  int max_backoff = 6;      // timeout exponent cap
};

// One outgoing transition of the per-flow chain.
struct FlowTransition {
  std::uint32_t target = 0;
  double rate = 0.0;       // exponential rate (1/s)
  std::uint32_t delivered = 0;  // S: packets released in order by this event
};

class TcpFlowChain {
 public:
  explicit TcpFlowChain(TcpChainParams params);

  // The chain owns flat CSR arrays plus a lazily solved stationary vector
  // guarded by a mutex; instances are shared via shared_flow_chain()
  // (model/chain_cache.hpp) instead of being copied.
  TcpFlowChain(const TcpFlowChain&) = delete;
  TcpFlowChain& operator=(const TcpFlowChain&) = delete;

  const TcpChainParams& params() const { return params_; }
  std::uint32_t num_states() const {
    return static_cast<std::uint32_t>(exit_rate_.size());
  }
  std::uint32_t initial_state() const { return initial_; }

  // Lightweight view over one CSR row (a state's outgoing transitions).
  struct TransitionSpan {
    const FlowTransition* data = nullptr;
    std::uint32_t count = 0;
    const FlowTransition* begin() const { return data; }
    const FlowTransition* end() const { return data + count; }
    std::uint32_t size() const { return count; }
    bool empty() const { return count == 0; }
    const FlowTransition& operator[](std::uint32_t i) const { return data[i]; }
    const FlowTransition& back() const { return data[count - 1]; }
  };

  TransitionSpan transitions_from(std::uint32_t s) const {
    const std::uint32_t off = row_off_[s];
    return {flat_.data() + off, row_off_[s + 1] - off};
  }

  double exit_rate(std::uint32_t s) const { return exit_rate_[s]; }
  // True while the flow sits in a timeout state (diagnostics).
  bool is_timeout_state(std::uint32_t s) const { return timeout_flag_[s]; }

  // Next transition from `s` given x in [0, exit_rate(s)): the historical
  // sequential-subtraction scan, preserved bit for bit so seeded runs that
  // predate the CSR layout reproduce byte-identically.
  const FlowTransition& pick_linear(std::uint32_t s, double x) const {
    const std::uint32_t off = row_off_[s];
    const std::uint32_t last = row_off_[s + 1] - 1;
    for (std::uint32_t i = off; i < last; ++i) {
      if (x < flat_[i].rate) return flat_[i];
      x -= flat_[i].rate;
    }
    return flat_[last];
  }

  // Next transition from `s` given u uniform in [0, 1): Walker alias table,
  // O(1) for any out-degree.  Same distribution as pick_linear but a
  // different map from u to outcome, so trajectories differ realization-
  // by-realization — this is the SamplerMode::kAlias fast path.
  const FlowTransition& pick_alias(std::uint32_t s, double u) const {
    const std::uint32_t off = row_off_[s];
    const std::uint32_t d = row_off_[s + 1] - off;
    const double scaled = u * static_cast<double>(d);
    std::uint32_t col = static_cast<std::uint32_t>(scaled);
    if (col >= d) col = d - 1;  // guards u rounding up to 1.0 * d
    const double frac = scaled - static_cast<double>(col);
    const std::uint32_t slot = off + col;
    const std::uint32_t pick =
        frac < alias_cut_[slot] ? col : alias_other_[slot];
    return flat_[off + pick];
  }

  // Stationary distribution of the flow chain alone (backlogged source).
  // Solved once and memoized; thread-safe, so chains shared through the
  // chain cache never re-solve.
  const std::vector<double>& stationary() const;

  // sigma_k: the achievable (backlogged) TCP throughput in packets/s —
  // long-run delivered rate of the chain with no Nmax constraint.
  // Memoized alongside stationary().
  double achievable_throughput_pps() const;

 private:
  void solve_locked() const;

  TcpChainParams params_;
  std::uint32_t initial_ = 0;
  // CSR: state s owns flat_[row_off_[s] .. row_off_[s+1]).
  std::vector<std::uint32_t> row_off_;
  std::vector<FlowTransition> flat_;
  // Per-slot Walker alias table, sharing row_off_'s layout: column j of
  // state s keeps its own transition when the fractional draw falls below
  // alias_cut_, and alias_other_ (a row-local index) otherwise.
  std::vector<double> alias_cut_;
  std::vector<std::uint32_t> alias_other_;
  std::vector<double> exit_rate_;
  std::vector<bool> timeout_flag_;

  mutable std::mutex solve_mu_;
  mutable std::optional<std::vector<double>> stationary_;
  mutable double throughput_pps_ = 0.0;
};

// Inverse throughput map: the loss rate at which a path with the given RTT,
// TO and window limit achieves `target_pps` (bisection; throughput is
// monotone decreasing in p).  Used by the paper's heterogeneity Case 2.
double loss_rate_for_throughput(double target_pps, const TcpChainParams& base);

}  // namespace dmp
