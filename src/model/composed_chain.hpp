// The composed DMP-streaming model (Section 4.2):
//
//   state = (X_1, ..., X_K, N),  N = early packets in the client buffer.
//
//   * Each flow's transition adds its delivered count S to N, clipped at
//     Nmax = mu * tau (live-source constraint, Section 2.1); a flow is
//     frozen (makes no transition) while N = Nmax.
//   * Consumption events fire at the playback rate mu; a consumption that
//     finds N = 0 is a late packet.  Consumption is Poisson and state-
//     independent, so by PASTA the late fraction equals the stationary
//     probability P(N = 0) — the paper's f = P(N < 0 | E = C).
//
// Two backends:
//   * ComposedChainExact materializes the product chain and solves it with
//     the sparse CTMC solver — exact, but exponential in K and linear in
//     Nmax, so practical only for small configurations (used to validate
//     the Monte-Carlo engine).
//   * DmpModelMonteCarlo samples trajectories of the same generator —
//     linear-time per event, handles any Nmax / wmax, and is the workhorse
//     behind every Section-7 figure.
//
// The Monte-Carlo engine has two sampling modes (docs/MODEL_ENGINE.md):
//   * SamplerMode::kCompat (default) replays the historical event loop
//     operation for operation — one uniform per event, linear transition
//     scans — so seeded runs reproduce the golden pins byte-identically.
//   * SamplerMode::kAlias is the fast path: consecutive consumptions
//     between flow events collapse into one geometric draw, and flow
//     transitions sample through the per-state Walker alias tables in
//     O(1).  Same generator, same distribution, different realizations.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "model/tcp_chain.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace dmp {

struct ComposedParams {
  std::vector<TcpChainParams> flows;  // K >= 1 paths
  double mu_pps = 25.0;               // playback / generation rate
  double tau_s = 10.0;                // startup delay; Nmax = round(mu * tau)

  std::int64_t nmax() const;
};

enum class SamplerMode {
  kCompat,  // historical event loop, byte-identical to pre-CSR goldens
  kAlias,   // alias-table transitions + bulk geometric consumptions
};

// The materialized product-chain generator (validation sizes only; throws
// beyond ~2M states).  Exposed so tests can cross-check the two
// steady-state solvers on the same composed chain.
Ctmc composed_ctmc(const ComposedParams& params);

class ComposedChainExact {
 public:
  explicit ComposedChainExact(const ComposedParams& params);

  std::uint32_t num_states() const { return num_states_; }
  // Stationary late-packet fraction f = P(N = 0).
  double late_fraction() const { return late_fraction_; }
  // Stationary distribution of N alone (marginal).
  const std::vector<double>& n_marginal() const { return n_marginal_; }

 private:
  std::uint32_t num_states_ = 0;
  double late_fraction_ = 0.0;
  std::vector<double> n_marginal_;
};

struct MonteCarloResult {
  double late_fraction = 0.0;
  ConfidenceInterval ci{};
  std::uint64_t consumptions = 0;
  std::uint64_t late = 0;
  // Fraction of the delivered packets contributed by each flow — the
  // model-side analogue of the DMP path split.
  std::vector<double> flow_share;
  double mean_early_packets = 0.0;
};

// Stored-video extension: the live-source constraint (and with it the
// Nmax cap) disappears — flows prefetch arbitrarily far ahead, and the
// video has a finite length, so the analysis is finite-horizon instead of
// stationary.  One replication plays the whole video; the late fraction is
// averaged over replications.
struct StoredVideoResult {
  double late_fraction = 0.0;
  ConfidenceInterval ci{};  // across replications
  std::uint64_t replications = 0;
};

StoredVideoResult stored_video_late_fraction(
    const ComposedParams& params, std::int64_t video_packets,
    std::uint64_t replications, std::uint64_t seed,
    SamplerMode mode = SamplerMode::kCompat);

class DmpModelMonteCarlo {
 public:
  DmpModelMonteCarlo(const ComposedParams& params, std::uint64_t seed,
                     SamplerMode mode = SamplerMode::kCompat);

  SamplerMode sampler_mode() const { return mode_; }

  // Simulates until `consumptions` consumption events have been *counted*
  // (after discarding `warmup` consumptions for the initial transient).
  MonteCarloResult run(std::uint64_t consumptions, std::uint64_t warmup = 0);

  // Sequential variant for threshold decisions: stops early once the CI
  // (95%) separates from `threshold`, or after `max_consumptions`.
  // Returns the estimate with whatever precision was reached.
  MonteCarloResult run_until_decides(double threshold,
                                     std::uint64_t min_consumptions,
                                     std::uint64_t max_consumptions);

  static constexpr std::uint64_t kAutoWarmup = ~0ull;

  // Deterministic sharded estimation: `shards` independent alias-mode
  // trajectories, shard s seeded from the SplitMix64 stream
  // (seed, shard domain).at(s), executed on an OrderedPool and merged in
  // shard order.  The result is a pure function of (params, seed, shards,
  // consumptions_per_shard, warmup_per_shard) — byte-identical at any
  // `threads` / DMP_THREADS, matching the experiment-runner contract.
  // The CI is a t-interval over per-shard late fractions.  This engine's
  // own trajectory and RNG are untouched.
  MonteCarloResult run_sharded(std::uint64_t shards,
                               std::uint64_t consumptions_per_shard,
                               std::uint64_t warmup_per_shard = kAutoWarmup,
                               std::size_t threads = 0) const;

 private:
  void step_flow(std::size_t k);
  // One event of the composed chain; returns true if it was a consumption.
  bool step();
  // Counted consumptions reach `target` (mode-dispatched hot loop).
  void advance_to(std::uint64_t target);
  // The alias-mode hot loop: bulk geometric consumption draws between
  // alias-sampled flow transitions.
  void advance_alias(std::uint64_t target);
  MonteCarloResult snapshot() const;

  ComposedParams params_;
  std::vector<std::shared_ptr<const TcpFlowChain>> chains_;
  std::vector<std::uint32_t> flow_state_;
  std::int64_t n_ = 0;
  std::int64_t nmax_;
  Rng rng_;
  std::uint64_t seed_;
  SamplerMode mode_;

  // accounting for the current run() call
  std::uint64_t late_ = 0;
  std::uint64_t counted_ = 0;
  std::vector<std::uint64_t> flow_delivered_;
  double early_sum_ = 0.0;
  BatchMeans batches_;

  // Alias-path working state: per-flow current exit rates (contiguous, so
  // the hot loop never chases chain pointers), and one geometric-draw
  // alias table per distinct total exit rate ("rate class").  The table
  // samples J = #consumptions before the next flow event — outcomes 0..31
  // plus a tail outcome worth 32 + resample, exact by memorylessness — in
  // one uniform instead of a std::log call.  Exit rates take only a
  // handful of semantically distinct values, so the class list stays tiny;
  // matching is by the same 1e-9 relative tolerance the hot loop uses.
  struct GeomClass {
    double active = 0.0;                 // total exit rate this table is for
    std::array<double, 33> cut{};        // Walker alias: acceptance cuts
    std::array<std::uint8_t, 33> alias{};  // Walker alias: overflow targets
  };
  const GeomClass& geom_class_for(double active);

  std::vector<double> exit_now_;
  std::vector<GeomClass> geom_classes_;
  double alias_active_ = -1.0;   // rate class currently in effect
  std::size_t alias_class_ = 0;  // index into geom_classes_
};

}  // namespace dmp
