// The composed DMP-streaming model (Section 4.2):
//
//   state = (X_1, ..., X_K, N),  N = early packets in the client buffer.
//
//   * Each flow's transition adds its delivered count S to N, clipped at
//     Nmax = mu * tau (live-source constraint, Section 2.1); a flow is
//     frozen (makes no transition) while N = Nmax.
//   * Consumption events fire at the playback rate mu; a consumption that
//     finds N = 0 is a late packet.  Consumption is Poisson and state-
//     independent, so by PASTA the late fraction equals the stationary
//     probability P(N = 0) — the paper's f = P(N < 0 | E = C).
//
// Two backends:
//   * ComposedChainExact materializes the product chain and solves it with
//     the sparse CTMC solver — exact, but exponential in K and linear in
//     Nmax, so practical only for small configurations (used to validate
//     the Monte-Carlo engine).
//   * DmpModelMonteCarlo samples trajectories of the same generator —
//     linear-time per event, handles any Nmax / wmax, and is the workhorse
//     behind every Section-7 figure.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "model/tcp_chain.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace dmp {

struct ComposedParams {
  std::vector<TcpChainParams> flows;  // K >= 1 paths
  double mu_pps = 25.0;               // playback / generation rate
  double tau_s = 10.0;                // startup delay; Nmax = round(mu * tau)

  std::int64_t nmax() const;
};

class ComposedChainExact {
 public:
  explicit ComposedChainExact(const ComposedParams& params);

  std::uint32_t num_states() const { return num_states_; }
  // Stationary late-packet fraction f = P(N = 0).
  double late_fraction() const { return late_fraction_; }
  // Stationary distribution of N alone (marginal).
  const std::vector<double>& n_marginal() const { return n_marginal_; }

 private:
  std::uint32_t num_states_ = 0;
  double late_fraction_ = 0.0;
  std::vector<double> n_marginal_;
};

struct MonteCarloResult {
  double late_fraction = 0.0;
  ConfidenceInterval ci{};
  std::uint64_t consumptions = 0;
  std::uint64_t late = 0;
  // Fraction of the delivered packets contributed by each flow — the
  // model-side analogue of the DMP path split.
  std::vector<double> flow_share;
  double mean_early_packets = 0.0;
};

// Stored-video extension: the live-source constraint (and with it the
// Nmax cap) disappears — flows prefetch arbitrarily far ahead, and the
// video has a finite length, so the analysis is finite-horizon instead of
// stationary.  One replication plays the whole video; the late fraction is
// averaged over replications.
struct StoredVideoResult {
  double late_fraction = 0.0;
  ConfidenceInterval ci{};  // across replications
  std::uint64_t replications = 0;
};

StoredVideoResult stored_video_late_fraction(const ComposedParams& params,
                                             std::int64_t video_packets,
                                             std::uint64_t replications,
                                             std::uint64_t seed);

class DmpModelMonteCarlo {
 public:
  DmpModelMonteCarlo(const ComposedParams& params, std::uint64_t seed);

  // Simulates until `consumptions` consumption events have been *counted*
  // (after discarding `warmup` consumptions for the initial transient).
  MonteCarloResult run(std::uint64_t consumptions, std::uint64_t warmup = 0);

  // Sequential variant for threshold decisions: stops early once the CI
  // (95%) separates from `threshold`, or after `max_consumptions`.
  // Returns the estimate with whatever precision was reached.
  MonteCarloResult run_until_decides(double threshold,
                                     std::uint64_t min_consumptions,
                                     std::uint64_t max_consumptions);

 private:
  void step_flow(std::size_t k);
  // One event of the composed chain; returns true if it was a consumption.
  bool step();

  ComposedParams params_;
  std::vector<std::shared_ptr<const TcpFlowChain>> chains_;
  std::vector<std::uint32_t> flow_state_;
  std::int64_t n_ = 0;
  std::int64_t nmax_;
  Rng rng_;

  // accounting for the current run() call
  std::uint64_t late_ = 0;
  std::uint64_t counted_ = 0;
  std::vector<std::uint64_t> flow_delivered_;
  double early_sum_ = 0.0;
  BatchMeans batches_;
};

}  // namespace dmp
