#include "model/required_delay.hpp"

#include <cmath>
#include <stdexcept>

#include "util/seed_stream.hpp"

namespace dmp {

namespace {

// Seed-stream domain for per-grid-point probe seeds (kind 16 of the
// registry in exp/plan.hpp; kinds >= 16 are library-internal).  Distinct
// grid points draw from effectively disjoint SplitMix64 streams, unlike
// the old additive `seed + salt` scheme where probe g of one setting
// collided with probe g+1 of a setting seeded one apart.
constexpr std::uint64_t kDelayProbeDomain = 16ull << 32;

// True if the late fraction at this tau is below the target; `grid_index`
// selects the probe's seed-stream element.
bool tau_passes(const ComposedParams& base, double tau_s,
                const RequiredDelayOptions& options, double* estimate,
                std::uint64_t grid_index) {
  ComposedParams params = base;
  params.tau_s = tau_s;
  const std::uint64_t probe_seed =
      SeedStream(options.seed, kDelayProbeDomain).at(grid_index);

  if (options.shards == 0) {
    DmpModelMonteCarlo mc(params, probe_seed);
    const auto result = mc.run_until_decides(options.target_late_fraction,
                                             options.min_consumptions,
                                             options.max_consumptions);
    *estimate = result.late_fraction;
    // Undecided after the full budget: classify by the point estimate.
    return result.late_fraction < options.target_late_fraction;
  }

  // Sharded probe: a fresh deterministic estimate per round with the
  // per-shard budget doubling until the CI separates from the target or
  // the total budget is spent.  Every round is a pure function of
  // (probe_seed, shards, budget), so the decision is byte-identical at
  // any thread count.
  const DmpModelMonteCarlo mc(params, probe_seed, SamplerMode::kAlias);
  std::uint64_t per_shard = options.min_consumptions / options.shards;
  if (per_shard == 0) per_shard = 1;
  MonteCarloResult result;
  for (;;) {
    result = mc.run_sharded(options.shards, per_shard,
                            DmpModelMonteCarlo::kAutoWarmup, options.threads);
    const bool decided = result.ci.hi() < options.target_late_fraction ||
                         result.ci.lo() > options.target_late_fraction;
    if (decided || result.consumptions >= options.max_consumptions) break;
    per_shard *= 2;
  }
  *estimate = result.late_fraction;
  return result.late_fraction < options.target_late_fraction;
}

}  // namespace

RequiredDelayResult required_startup_delay(const ComposedParams& base,
                                           const RequiredDelayOptions& options) {
  if (options.grid_s <= 0.0 || options.tau_min_s <= 0.0 ||
      options.tau_max_s < options.tau_min_s) {
    throw std::invalid_argument{"invalid required-delay search range"};
  }

  RequiredDelayResult result;
  const auto grid_points = static_cast<std::int64_t>(
      std::floor((options.tau_max_s - options.tau_min_s) / options.grid_s));
  auto tau_at = [&](std::int64_t g) {
    return options.tau_min_s + static_cast<double>(g) * options.grid_s;
  };

  // Check feasibility at the top of the range first.
  double estimate_hi = 0.0;
  ++result.evaluations;
  if (!tau_passes(base, tau_at(grid_points), options, &estimate_hi,
                  static_cast<std::uint64_t>(grid_points))) {
    result.feasible = false;
    result.tau_s = tau_at(grid_points);
    result.late_at_tau = estimate_hi;
    return result;
  }

  std::int64_t lo = 0, hi = grid_points;  // hi always passes
  double estimate_at_hi = estimate_hi;
  // Does the bottom already pass?
  double estimate_lo = 0.0;
  ++result.evaluations;
  if (tau_passes(base, tau_at(0), options, &estimate_lo, 0)) {
    result.feasible = true;
    result.tau_s = tau_at(0);
    result.late_at_tau = estimate_lo;
    return result;
  }

  while (hi - lo > 1) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    double estimate = 0.0;
    ++result.evaluations;
    if (tau_passes(base, tau_at(mid), options, &estimate,
                   static_cast<std::uint64_t>(mid))) {
      hi = mid;
      estimate_at_hi = estimate;
    } else {
      lo = mid;
    }
  }

  result.feasible = true;
  result.tau_s = tau_at(hi);
  result.late_at_tau = estimate_at_hi;
  return result;
}

}  // namespace dmp
