#include "model/chain_cache.hpp"

#include <array>
#include <cstring>
#include <list>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace dmp {

namespace {

struct ChainKey {
  // Bit patterns of the double fields (-0.0 canonicalized to +0.0) plus
  // the packed integer fields.  NaNs never reach the cache: the
  // TcpFlowChain ctor rejects them first.
  std::array<std::uint64_t, 4> words{};

  bool operator==(const ChainKey& o) const { return words == o.words; }
};

std::uint64_t double_bits(double x) {
  if (x == 0.0) x = 0.0;  // collapse -0.0 onto +0.0
  std::uint64_t bits = 0;
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

ChainKey make_key(const TcpChainParams& p) {
  ChainKey key;
  key.words[0] = double_bits(p.loss_rate);
  key.words[1] = double_bits(p.rtt_s);
  key.words[2] = double_bits(p.to_ratio);
  key.words[3] = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.wmax))
                  << 32) |
                 (static_cast<std::uint64_t>(
                      static_cast<std::uint8_t>(p.ack_every))
                  << 8) |
                 static_cast<std::uint64_t>(
                     static_cast<std::uint8_t>(p.max_backoff));
  return key;
}

struct ChainKeyHash {
  std::size_t operator()(const ChainKey& k) const {
    // SplitMix64-style mix over the four words.
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (std::uint64_t w : k.words) {
      h ^= w + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      h *= 0xbf58476d1ce4e5b9ull;
      h ^= h >> 27;
    }
    return static_cast<std::size_t>(h);
  }
};

struct Cache {
  std::mutex mu;
  // Most-recently-used at the front; map values point into the list.
  using Entry = std::pair<ChainKey, std::shared_ptr<const TcpFlowChain>>;
  std::list<Entry> lru;
  std::unordered_map<ChainKey, std::list<Entry>::iterator, ChainKeyHash> map;
  std::size_t capacity = 128;
  ChainCacheStats stats;
};

Cache& cache() {
  static Cache* instance = new Cache;  // never destroyed: avoids shutdown races
  return *instance;
}

}  // namespace

std::shared_ptr<const TcpFlowChain> shared_flow_chain(
    const TcpChainParams& params) {
  const ChainKey key = make_key(params);
  Cache& c = cache();
  std::unique_lock<std::mutex> lock(c.mu);
  if (auto it = c.map.find(key); it != c.map.end()) {
    ++c.stats.hits;
    c.lru.splice(c.lru.begin(), c.lru, it->second);
    return it->second->second;
  }
  ++c.stats.misses;
  // Build outside the lock: chain construction is the expensive part, and
  // holding the mutex through it would serialize every worker thread on a
  // cold start.  Concurrent misses on the same key may build twice; the
  // second insert wins the map slot and the first copy dies with its
  // callers' shared_ptrs.
  lock.unlock();
  auto chain = std::make_shared<const TcpFlowChain>(params);
  lock.lock();
  if (auto it = c.map.find(key); it != c.map.end()) {
    ++c.stats.hits;
    c.lru.splice(c.lru.begin(), c.lru, it->second);
    return it->second->second;
  }
  c.lru.emplace_front(key, chain);
  c.map.emplace(key, c.lru.begin());
  while (c.lru.size() > c.capacity) {
    c.map.erase(c.lru.back().first);
    c.lru.pop_back();
    ++c.stats.evictions;
  }
  return chain;
}

ChainCacheStats chain_cache_stats() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  ChainCacheStats out = c.stats;
  out.entries = c.lru.size();
  return out;
}

void chain_cache_clear() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  c.lru.clear();
  c.map.clear();
  c.stats = ChainCacheStats{};
}

std::size_t chain_cache_capacity() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  return c.capacity;
}

void set_chain_cache_capacity(std::size_t capacity) {
  if (capacity == 0) {
    throw std::invalid_argument{"chain cache capacity must be >= 1"};
  }
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  c.capacity = capacity;
  while (c.lru.size() > c.capacity) {
    c.map.erase(c.lru.back().first);
    c.lru.pop_back();
    ++c.stats.evictions;
  }
}

}  // namespace dmp
