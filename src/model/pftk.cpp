#include "model/pftk.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dmp {

double sqrt_model_throughput_pps(const PftkParams& params) {
  return 1.0 /
         (params.rtt_s * std::sqrt(2.0 * params.b * params.loss_rate / 3.0));
}

double pftk_throughput_pps(const PftkParams& params) {
  const double p = params.loss_rate;
  const double R = params.rtt_s;
  const double T0 = params.rto_s;
  const double b = params.b;
  if (p <= 0.0 || p >= 1.0) throw std::invalid_argument{"p must be in (0,1)"};
  if (R <= 0.0 || T0 <= 0.0) throw std::invalid_argument{"R, T0 must be > 0"};

  // Full model, equation (30) of the paper:
  //   B(p) = min( Wmax/R,
  //               1 / ( R*sqrt(2bp/3) + T0 * min(1, 3*sqrt(3bp/8)) * p*(1+32p^2) ) )
  const double term_fr = R * std::sqrt(2.0 * b * p / 3.0);
  const double q = std::min(1.0, 3.0 * std::sqrt(3.0 * b * p / 8.0));
  const double term_to = T0 * q * p * (1.0 + 32.0 * p * p);
  const double unlimited = 1.0 / (term_fr + term_to);
  return std::min(params.wmax / R, unlimited);
}

double pftk_loss_for_throughput(double target_pps, const PftkParams& base) {
  if (target_pps <= 0.0) {
    throw std::invalid_argument{"target throughput must be positive"};
  }
  if (target_pps >= base.wmax / base.rtt_s) {
    throw std::invalid_argument{"target exceeds the window-limited rate"};
  }
  double lo = 1e-8, hi = 0.99;
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    PftkParams params = base;
    params.loss_rate = mid;
    if (pftk_throughput_pps(params) >= target_pps) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace dmp
