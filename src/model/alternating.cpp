#include "model/alternating.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace dmp {

namespace {

// Fluid playback simulation under a periodic capacity profile; returns the
// long-run fraction of time (== fraction of packets, for CBR playback)
// during which arrivals trail the playback clock.
double fluid_late_fraction(double mu, double tau,
                           const std::vector<double>& capacity_profile,
                           double slot_s) {
  const double dt = 1e-3;
  const double period = slot_s * static_cast<double>(capacity_profile.size());
  const double horizon = 100.0 * period;
  const double warmup = 50.0 * period;

  double backlog = 0.0;  // generated but not yet transmitted
  double arrived = 0.0;  // cumulative arrivals at the client
  double late_time = 0.0;
  double measured_time = 0.0;

  for (double t = 0.0; t < horizon; t += dt) {
    const auto slot = static_cast<std::size_t>(
        std::fmod(t, period) / slot_s);
    const double capacity = capacity_profile[slot];

    backlog += mu * dt;
    const double sent = std::min(capacity * dt, backlog);
    backlog -= sent;
    arrived += sent;

    if (t >= tau) {
      const double played = mu * (t - tau);
      if (t >= warmup) {
        measured_time += dt;
        if (arrived + 1e-9 < played) late_time += dt;
      }
    }
  }
  return measured_time > 0.0 ? late_time / measured_time : 0.0;
}

}  // namespace

AlternatingResult alternating_late_fractions(const AlternatingScenario& s) {
  if (s.mu_pps <= 0.0 || s.period_s <= 0.0 || s.tau_s < 0.0) {
    throw std::invalid_argument{"invalid alternating scenario"};
  }
  if (s.x_pps <= 0.0 || s.x_pps > s.mu_pps) {
    throw std::invalid_argument{"x must lie in (0, mu]"};
  }
  const double half = s.period_s / 2.0;
  const double y = 2.0 * s.mu_pps - s.x_pps;

  AlternatingResult result;
  // Single path: 2*mu for half a period, then nothing.
  result.f_single =
      fluid_late_fraction(s.mu_pps, s.tau_s, {2.0 * s.mu_pps, 0.0}, half);
  // DMP in phase: x + y = 2*mu together, then nothing — identical profile.
  result.f_dmp_in_phase =
      fluid_late_fraction(s.mu_pps, s.tau_s, {s.x_pps + y, 0.0}, half);
  // DMP anti-phase: P1 up in the first half, P2 in the second.
  result.f_dmp_anti_phase =
      fluid_late_fraction(s.mu_pps, s.tau_s, {s.x_pps, y}, half);
  result.f_dmp_average =
      0.5 * (result.f_dmp_in_phase + result.f_dmp_anti_phase);
  return result;
}

}  // namespace dmp
