// Process-wide memo cache of solved per-flow chains.
//
// Every layer above the per-flow CTMC — bisection probes in
// required_delay, Monte-Carlo replications, stored-video runs, the
// heterogeneity inversions — constructs `TcpFlowChain`s for a handful of
// parameter points over and over.  `shared_flow_chain` canonicalizes the
// parameters into a bit-exact key and hands out a shared_ptr to a single
// immutable chain per point, so the BFS build and the Gauss-Seidel solve
// (memoized inside TcpFlowChain) each happen once per process instead of
// once per probe.
//
// The cache is a mutex-guarded LRU (default capacity 128 chains; a
// wmax=20 chain is ~1k states, so the cap bounds memory at a few tens of
// MB even for large windows).  Keying is by the raw bit patterns of the
// double fields (with -0.0 normalized to +0.0) plus the integer fields:
// two TcpChainParams share a cache entry iff every field compares
// bit-identical, so there is no epsilon aliasing and no invalidation —
// entries only leave by LRU eviction or an explicit clear.
// See docs/MODEL_ENGINE.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "model/tcp_chain.hpp"

namespace dmp {

// Shared immutable chain for `params`, built (and later solved) at most
// once per process per distinct parameter point.  Thread-safe.
std::shared_ptr<const TcpFlowChain> shared_flow_chain(
    const TcpChainParams& params);

struct ChainCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
};

ChainCacheStats chain_cache_stats();

// Drops every cached chain (outstanding shared_ptrs stay valid) and
// zeroes the counters.  Mainly for tests that assert on hit/miss counts.
void chain_cache_clear();

std::size_t chain_cache_capacity();
void set_chain_cache_capacity(std::size_t capacity);  // >= 1

}  // namespace dmp
