// "Required startup delay": the smallest tau (on a 1-second grid, as the
// paper reports it) for which the stationary late-packet fraction drops
// below a target — f < 1e-4 throughout Section 7.
#pragma once

#include <cstdint>

#include "model/composed_chain.hpp"

namespace dmp {

struct RequiredDelayOptions {
  double target_late_fraction = 1e-4;
  double tau_min_s = 1.0;
  double tau_max_s = 120.0;
  double grid_s = 1.0;  // the paper quotes whole seconds
  // Monte-Carlo evaluation budget per tau.
  std::uint64_t min_consumptions = 400'000;
  std::uint64_t max_consumptions = 6'400'000;
  std::uint64_t seed = 2007;
  // shards > 0 switches each probe to the deterministic sharded estimator
  // (alias sampling, run_sharded): the estimate is a pure function of
  // (seed, shards, budget), byte-identical at any `threads`.  shards == 0
  // keeps the sequential compat probe that the golden pins were recorded
  // against.
  std::uint64_t shards = 0;
  std::size_t threads = 0;  // worker threads for sharded probes; 0 = auto
};

struct RequiredDelayResult {
  double tau_s = 0.0;        // smallest grid tau meeting the target
  bool feasible = false;     // false if even tau_max fails
  double late_at_tau = 0.0;  // estimate at the returned tau
  std::uint64_t evaluations = 0;
};

// Binary search on the tau grid.  f(tau) is monotone non-increasing (a
// larger startup delay only relaxes deadlines), so bisection is sound;
// each probe is a sequential Monte-Carlo threshold decision.
RequiredDelayResult required_startup_delay(const ComposedParams& base,
                                           const RequiredDelayOptions& options = {});

}  // namespace dmp
