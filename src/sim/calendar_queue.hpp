// Calendar queue (R. Brown, CACM 1988) for the DES scheduler hot path.
//
// The event set of a packet-level simulation is dominated by near-future
// events whose timestamps advance with the clock — the textbook case where
// a calendar beats a binary heap: O(1) amortized enqueue/dequeue instead of
// O(log n) sifts.  Days are power-of-two nanosecond spans so the bucket of
// a timestamp is a shift+mask, never a divide; the year wraps over a
// power-of-two bucket count.
//
// Each bucket is an ascending (when, seq) run with a pop cursor: pushes in
// a DES almost always arrive keyed at or after the bucket's current tail,
// so the common push is a plain append and the common pop a cursor bump —
// no memmove, no sift.  Out-of-order pushes (timers undercutting the tail)
// take a sorted insert into the live suffix.
//
// Ordering contract: pops come out in EXACTLY the order a binary heap over
// the same (when, seq) keys would produce them — strictly increasing
// (when, seq) lexicographic order.  Same-nanosecond events always land in
// the same bucket, where the sorted insert orders them by seq, so FIFO
// tie-breaking survives every resize and year wrap.  The scheduler's
// differential suite (tests/sim/calendar_queue_test.cpp) pins this against
// std::priority_queue on randomized workloads.  Calendar geometry (bucket
// count, day width, rebuild timing) is pure wall-clock tuning — it can
// never reorder pops.
//
// Sizing policy: the calendar doubles when occupancy exceeds two entries
// per bucket and halves below one entry per two buckets (4x hysteresis, so
// steady-state churn never thrashes).  The day width comes from an EMA of
// the gaps between consecutively popped keys — the rate the clock actually
// advances — NOT from the pending set's span: a steady-size queue (the
// classic DES profile) never triggers an occupancy resize, and one
// far-future sentinel would poison a span-based estimate for good.  Every
// kCalibratePops pops the width is re-checked and the calendar rebuilt in
// place when it drifts 4x from the target.  A full year without a hit
// falls back to a global min-bucket scan and jumps straight to that day.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dmp {

// Entry must expose `when` (SimTime) and `seq` (uint64); (when, seq) pairs
// are unique per queue (seq is a global schedule counter).
template <typename Entry>
class CalendarQueue {
 public:
  CalendarQueue() { buckets_.resize(kMinBuckets); }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push(const Entry& e) {
    const std::uint64_t ns = key_ns(e);
    Bucket& bucket = buckets_[bucket_of(ns)];
    if (bucket.v.empty() || !Less{}(e, bucket.v.back())) {
      // Monotone fast path: at or after the bucket tail.
      bucket.v.push_back(e);
    } else {
      // Out-of-order: sorted insert into the live suffix (everything before
      // `head` is already popped, so the position is never below it).
      bucket.v.insert(std::upper_bound(bucket.v.begin() +
                                           static_cast<std::ptrdiff_t>(
                                               bucket.head),
                                       bucket.v.end(), e, Less{}),
                      e);
    }
    ++size_;
    // An event behind the calendar's current day would be missed by the
    // forward scan: rewind to its day (cheap, and rare — only timers that
    // undercut every pending event do this).
    if (ns < day_start_) {
      cur_ = bucket_of(ns);
      day_start_ = align_day(ns);
    }
    if (size_ > (buckets_.size() << 1)) {
      rebuild(buckets_.size() << 1);
    }
  }

  // Smallest (when, seq) entry; undefined when empty.
  const Entry& min() {
    locate_min();
    const Bucket& bucket = buckets_[cur_];
    return bucket.v[bucket.head];
  }

  Entry pop_min() {
    locate_min();
    Bucket& bucket = buckets_[cur_];
    Entry e = bucket.v[bucket.head++];
    if (bucket.head == bucket.v.size()) {
      bucket.v.clear();
      bucket.head = 0;
    } else if (bucket.head >= 64 && bucket.head > (bucket.v.size() >> 1)) {
      // A long-lived bucket (streamed through within one day) keeps its
      // dead prefix bounded.
      bucket.v.erase(bucket.v.begin(),
                     bucket.v.begin() +
                         static_cast<std::ptrdiff_t>(bucket.head));
      bucket.head = 0;
    }
    --size_;
    observe_pop(key_ns(e));
    if (buckets_.size() > kMinBuckets && size_ < (buckets_.size() >> 1)) {
      rebuild(buckets_.size() >> 1);
    }
    return e;
  }

  // Introspection for tests and the resize differential suite.
  std::size_t bucket_count() const { return buckets_.size(); }
  int day_shift() const { return shift_; }

 private:
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::uint32_t kCalibratePops = 1024;

  struct Less {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when < b.when;
      return a.seq < b.seq;
    }
  };

  // Ascending (when, seq) run; live entries are v[head..).
  struct Bucket {
    std::vector<Entry> v;
    std::size_t head = 0;
    bool live() const { return head < v.size(); }
    const Entry& front() const { return v[head]; }
  };

  static std::uint64_t key_ns(const Entry& e) {
    // SimTime is non-negative (scheduling in the past throws upstream), so
    // the unsigned cast preserves order and makes day arithmetic overflow-
    // free even for sentinel far-future timestamps.
    return static_cast<std::uint64_t>(e.when.ns());
  }

  std::size_t bucket_of(std::uint64_t ns) const {
    return static_cast<std::size_t>(ns >> shift_) & (buckets_.size() - 1);
  }
  std::uint64_t align_day(std::uint64_t ns) const {
    return (ns >> shift_) << shift_;
  }
  std::uint64_t day_width() const { return std::uint64_t{1} << shift_; }

  // Power-of-two day width near 3x the estimated inter-pop gap: wide
  // enough that consecutive pops usually stay in one bucket, narrow enough
  // that a day rarely holds a long sorted run.
  int shift_for_gap(std::uint64_t gap_ns) const {
    const std::uint64_t target = gap_ns * 3 + 1;
    int shift = 1;
    while (shift < 40 && (std::uint64_t{1} << shift) < target) ++shift;
    return shift;
  }

  // Per-pop gap EMA (alpha = 1/8) + periodic width recalibration.
  void observe_pop(std::uint64_t ns) {
    if (popped_any_) {
      const std::int64_t delta =
          static_cast<std::int64_t>(ns - last_pop_ns_) -
          static_cast<std::int64_t>(gap_ema_ns_);
      gap_ema_ns_ = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(gap_ema_ns_) + (delta >> 3));
    }
    popped_any_ = true;
    last_pop_ns_ = ns;
    if (++pops_since_calibrate_ >= kCalibratePops) {
      pops_since_calibrate_ = 0;
      const int target = shift_for_gap(gap_ema_ns_);
      if (target >= shift_ + 2 || target + 2 <= shift_) {
        rebuild(buckets_.size());
      }
    }
  }

  // Advance cur_ to the bucket holding the global minimum.  The fast path
  // finds it within the current year's forward scan; a dry year falls back
  // to one pass over all bucket minima.
  void locate_min() {
    for (std::size_t scanned = 0; scanned <= buckets_.size(); ++scanned) {
      const Bucket& bucket = buckets_[cur_];
      if (bucket.live() &&
          key_ns(bucket.front()) < day_start_ + day_width()) {
        return;
      }
      cur_ = (cur_ + 1) & (buckets_.size() - 1);
      day_start_ += day_width();
    }
    // Sparse tail: no event within a full year of the clock.  Distinct
    // buckets never hold equal timestamps (same ns implies same bucket), so
    // comparing bucket minima by (when, seq) is unambiguous.
    std::size_t best = buckets_.size();
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      if (!buckets_[b].live()) continue;
      if (best == buckets_.size() ||
          Less{}(buckets_[b].front(), buckets_[best].front())) {
        best = b;
      }
    }
    cur_ = best;
    day_start_ = align_day(key_ns(buckets_[best].front()));
  }

  void rebuild(std::size_t nbuckets) {
    std::vector<Entry> all;
    all.reserve(size_);
    for (Bucket& bucket : buckets_) {
      for (std::size_t i = bucket.head; i < bucket.v.size(); ++i) {
        all.push_back(bucket.v[i]);
      }
      bucket.v.clear();
      bucket.head = 0;
    }
    buckets_.resize(nbuckets);
    // Globally sorted redistribution keeps every per-bucket run ascending
    // with plain appends.
    std::sort(all.begin(), all.end(), Less{});
    if (popped_any_) {
      shift_ = shift_for_gap(gap_ema_ns_);
    } else if (size_ > 1) {
      // No pops yet (bulk setup): fall back to the pending set's mean gap.
      const std::uint64_t span = key_ns(all.back()) - key_ns(all.front());
      shift_ = shift_for_gap(span / static_cast<std::uint64_t>(size_));
    }
    for (const Entry& e : all) {
      buckets_[bucket_of(key_ns(e))].v.push_back(e);
    }
    // Re-anchor the calendar on the new geometry at the global minimum (or
    // at the epoch when empty; the next push rewinds as needed).
    day_start_ = 0;
    cur_ = 0;
    if (size_ > 0) {
      const std::uint64_t min_ns = key_ns(all.front());
      cur_ = bucket_of(min_ns);
      day_start_ = align_day(min_ns);
    }
  }

  std::vector<Bucket> buckets_;
  std::size_t size_ = 0;
  int shift_ = 20;  // ~1 ms days until the first calibration
  std::size_t cur_ = 0;
  std::uint64_t day_start_ = 0;
  // Width estimator state (observe_pop).
  std::uint64_t gap_ema_ns_ = std::uint64_t{1} << 18;
  std::uint64_t last_pop_ns_ = 0;
  std::uint32_t pops_since_calibrate_ = 0;
  bool popped_any_ = false;
};

}  // namespace dmp