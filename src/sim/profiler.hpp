// DES self-profiling: per-category attribution of executed events.
//
// Every event pushed into the Scheduler carries an `EventCategory` byte
// (defaulted to kOther, so existing call sites compile unchanged).  When a
// `SchedProfile` is attached the run loop charges each executed event to
// its category; with `time_events` also set it brackets the callback with
// steady_clock reads and accumulates wall nanoseconds per category.  Counts
// are deterministic (safe for golden artifacts); wall times are not —
// report them, never pin them.
//
// The category byte lives in a slab parallel to the scheduler's callable
// slab, so heap entries stay 24 bytes and the untimed fast path costs one
// byte store per push and one predictable branch per step.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dmp {

enum class EventCategory : std::uint8_t {
  kOther = 0,     // uncategorised (default for legacy call sites)
  kLinkTx,        // link serialization completions (dequeue → wire)
  kLinkDelivery,  // propagation-delay arrivals at the far end
  kTcpSend,       // sender segment transmissions into the link
  kTcpTimer,      // RTO and delayed-ACK timers
  kSource,        // application CBR/file generation ticks
  kProbe,         // observability sampling ticks
  kFault,         // fault-injector transitions
  kCount          // sentinel — keep last
};

inline constexpr std::size_t kNumEventCategories =
    static_cast<std::size_t>(EventCategory::kCount);

constexpr std::string_view event_category_name(EventCategory c) {
  switch (c) {
    case EventCategory::kOther: return "other";
    case EventCategory::kLinkTx: return "link_tx";
    case EventCategory::kLinkDelivery: return "link_delivery";
    case EventCategory::kTcpSend: return "tcp_send";
    case EventCategory::kTcpTimer: return "tcp_timer";
    case EventCategory::kSource: return "source";
    case EventCategory::kProbe: return "probe";
    case EventCategory::kFault: return "fault";
    case EventCategory::kCount: break;
  }
  return "invalid";
}

// Accumulated per-category work.  Plain data: the scheduler writes it, the
// session report reads it, nothing owns it.
struct SchedProfile {
  struct CategoryStats {
    std::uint64_t executed = 0;
    std::uint64_t wall_ns = 0;  // 0 unless wall timing was enabled
  };

  std::array<CategoryStats, kNumEventCategories> by_category{};

  std::uint64_t total_executed() const {
    std::uint64_t n = 0;
    for (const auto& c : by_category) n += c.executed;
    return n;
  }
  std::uint64_t total_wall_ns() const {
    std::uint64_t ns = 0;
    for (const auto& c : by_category) ns += c.wall_ns;
    return ns;
  }
  const CategoryStats& operator[](EventCategory c) const {
    return by_category[static_cast<std::size_t>(c)];
  }
};

}  // namespace dmp
