// Discrete-event scheduler.
//
// A binary heap of (time, sequence, callback) entries.  Entries scheduled at
// the same instant fire in scheduling order (FIFO tie-break), which keeps
// runs deterministic.  Cancellation is lazy: `EventHandle::cancel()` marks
// the entry and the run loop skips it when popped — O(1) cancel, no heap
// surgery, which suits TCP timers that are rescheduled on every ACK.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/sim_time.hpp"

namespace dmp {

class Scheduler;

// Shared cancellation token for a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  // True while the event is scheduled and not cancelled / fired.
  bool pending() const { return state_ && !state_->done; }
  void cancel() {
    if (state_) state_->done = true;
  }

 private:
  friend class Scheduler;
  struct State {
    bool done = false;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime now() const { return now_; }

  // Schedule `fn` at absolute time `when` (must be >= now()).
  EventHandle schedule_at(SimTime when, std::function<void()> fn);
  // Schedule `fn` after a relative delay (must be >= 0).
  EventHandle schedule_after(SimTime delay, std::function<void()> fn);

  // Run until the event queue drains or the clock passes `horizon`.
  // Returns the number of events executed.
  std::uint64_t run_until(SimTime horizon);
  // Run until the queue drains.
  std::uint64_t run();

  // Execute at most one event; false when the queue is empty or the next
  // event lies beyond `horizon` (clock is then left unchanged).
  bool step(SimTime horizon = SimTime::max());

  std::size_t pending_events() const { return queue_.size(); }
  std::size_t events_pending() const { return queue_.size(); }

  // Lifetime work counters.  Lazily-cancelled entries popped off the heap
  // are counted separately from executed events, so scheduler metrics
  // distinguish real work from cancel skips (TCP timers are rescheduled on
  // every ACK, so skips can rival executions).
  std::uint64_t events_executed() const { return executed_; }
  std::uint64_t events_cancelled() const { return cancelled_; }
  std::uint64_t events_scheduled() const { return next_seq_; }
  // High-water mark of the event queue.
  std::size_t max_events_pending() const { return max_pending_; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t max_pending_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace dmp
