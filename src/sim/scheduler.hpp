// Discrete-event scheduler.
//
// Entries are (time, sequence, callback) triples.  Entries scheduled at the
// same instant fire in scheduling order (FIFO tie-break), which keeps runs
// deterministic.  Cancellation is lazy: `EventHandle::cancel()` marks the
// entry and the run loop skips it when popped — O(1) cancel, no queue
// surgery, which suits TCP timers that are rescheduled on every ACK.
//
// Two priority-queue backends sit behind one knob (docs/DES_ENGINE.md):
//
//   kHeap     — binary heap (std::push_heap/pop_heap), the original
//               implementation, kept as the differential-testing reference.
//   kCalendar — calendar queue (src/sim/calendar_queue.hpp), O(1) amortized
//               scheduling; the default.  Pop order is bit-identical to the
//               heap's — both sort on exactly (when, seq) — so every golden
//               artifact is backend-independent (CI diffs the two).
//
// Hot-path cost model: callables live in a pooled slab of EventFn slots
// (inline storage, no per-event heap allocation) and queue entries carry
// only {time, seq, slot indexes} — 24 trivially-movable bytes — so queue
// operations never touch the callable.  The common case (a link delivery,
// a CBR tick) never cancels, so `post_at` / `post_after` skip cancellation
// bookkeeping entirely.  `schedule_at` / `schedule_after` return a
// cancellable EventHandle backed by a pooled generation-stamped slot: slots
// are recycled through free lists, so steady-state timer churn allocates
// nothing.  Handles stay safe after the scheduler dies (the slot pool is
// shared) — they simply report `pending() == false`.
//
// Ports + deferred events (the batched-dequeue fast path): an object whose
// events always run the same member function registers a raw function
// pointer once (`register_port`) and schedules against the port id — no
// EventFn construction, no slab traffic, no type erasure on pop.  An object
// that owns a FIFO of future events (a link's in-flight deliveries, a
// sender's jittered emissions) keeps the FIFO itself and materializes only
// its head in the queue: `defer_at` allocates the event's (when, seq) key —
// at the exact moment the old code would have pushed it, so sequence
// numbers and FIFO tie-breaks are unchanged — and `arm_deferred` inserts a
// stored key when it becomes the FIFO's head.  Deferred events are counted
// in `pending_events()` / `max_events_pending()` as if they were queued, so
// every externally observable counter matches the one-entry-per-event
// implementation bit for bit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/event_fn.hpp"
#include "sim/profiler.hpp"
#include "util/sim_time.hpp"

namespace dmp {

class Scheduler;

// Priority-queue implementation behind the scheduler (see header comment).
enum class SchedulerBackend : std::uint8_t { kHeap, kCalendar };

// Strict spec parse for the DMP_DES / SessionConfig::des knob: "heap" or
// "calendar".  Throws std::invalid_argument on anything else.
SchedulerBackend parse_scheduler_backend(const std::string& spec);
const char* scheduler_backend_name(SchedulerBackend backend);

namespace detail {

// Generation-stamped cancellation slots.  A slot matches a handle only
// while the generations agree; firing or skipping an event bumps the
// generation and recycles the slot.
struct SlotPool {
  struct Slot {
    std::uint32_t gen = 0;
    bool cancelled = false;
  };
  std::vector<Slot> slots;
  std::vector<std::uint32_t> free_list;

  std::uint32_t acquire() {
    if (!free_list.empty()) {
      const std::uint32_t idx = free_list.back();
      free_list.pop_back();
      return idx;
    }
    slots.push_back(Slot{});
    return static_cast<std::uint32_t>(slots.size() - 1);
  }

  void release(std::uint32_t idx) {
    ++slots[idx].gen;
    slots[idx].cancelled = false;
    free_list.push_back(idx);
  }

  bool live(std::uint32_t idx, std::uint32_t gen) const {
    return slots[idx].gen == gen;
  }
};

}  // namespace detail

// Shared cancellation token for a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  // True while the event is scheduled and not cancelled / fired.
  bool pending() const {
    return pool_ && pool_->live(slot_, gen_) && !pool_->slots[slot_].cancelled;
  }
  void cancel() {
    if (pool_ && pool_->live(slot_, gen_)) pool_->slots[slot_].cancelled = true;
  }

 private:
  friend class Scheduler;
  EventHandle(std::shared_ptr<detail::SlotPool> pool, std::uint32_t slot,
              std::uint32_t gen)
      : pool_(std::move(pool)), slot_(slot), gen_(gen) {}

  std::shared_ptr<detail::SlotPool> pool_;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerBackend backend = SchedulerBackend::kCalendar)
      : backend_(backend) {}
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime now() const { return now_; }
  SchedulerBackend backend() const { return backend_; }

  // Schedule `fn` at absolute time `when` (must be >= now()).  The
  // category tags the event for the optional profiler; kOther is free to
  // leave in place at call sites nobody profiles.
  EventHandle schedule_at(SimTime when, EventFn fn,
                          EventCategory cat = EventCategory::kOther);
  // Schedule `fn` after a relative delay (must be >= 0).
  EventHandle schedule_after(SimTime delay, EventFn fn,
                             EventCategory cat = EventCategory::kOther);

  // Fire-and-forget variants for events that are never cancelled (packet
  // deliveries, generator ticks): no slot, no handle, no shared state.
  void post_at(SimTime when, EventFn fn,
               EventCategory cat = EventCategory::kOther);
  void post_after(SimTime delay, EventFn fn,
                  EventCategory cat = EventCategory::kOther);

  // --- ports: devirtualized fire-and-forget dispatch ---
  // A port binds (function pointer, context, category) once; port events
  // skip the EventFn slab entirely.  Ports are never cancelled and never
  // unregistered; the context must outlive every scheduled port event.
  using PortFn = void (*)(void* ctx);
  std::uint32_t register_port(PortFn fn, void* ctx,
                              EventCategory cat = EventCategory::kOther);
  // Defined inline below: these run once per simulated packet hop.
  void post_port_at(SimTime when, std::uint32_t port);
  void post_port_after(SimTime delay, std::uint32_t port);

  // --- deferred events: caller-owned FIFOs with one armed head ---
  // `defer_at` claims the event's (when, seq) key NOW — bumping the
  // scheduled/pending accounting exactly as a push would — but inserts
  // nothing; the caller stores the key in its FIFO.  `arm_deferred` inserts
  // a previously claimed key (a FIFO head) for port dispatch.  Every
  // claimed key must be armed exactly once; keys armed out of claim order
  // must still be armed in (when, seq) order relative to their FIFO.
  struct Deferred {
    SimTime when;
    std::uint64_t seq;
  };
  Deferred defer_at(SimTime when);
  Deferred defer_after(SimTime delay);
  void arm_deferred(const Deferred& d, std::uint32_t port);

  // Attach (or detach, with nullptr) a per-category execution profile.
  // `time_events` additionally brackets every callback with steady_clock
  // reads — roughly 40 ns/event, so it is a separate opt-in (DMP_PROFILE)
  // rather than part of the cheap telemetry path.
  void set_profiler(SchedProfile* profile, bool time_events = false) {
    profile_ = profile;
    time_events_ = time_events && profile != nullptr;
  }

  // Run until the event queue drains or the clock passes `horizon`.
  // Returns the number of events executed.
  std::uint64_t run_until(SimTime horizon);
  // Run until the queue drains.
  std::uint64_t run();

  // Execute at most one event; false when the queue is empty or the next
  // event lies beyond `horizon` (clock is then left unchanged).
  bool step(SimTime horizon = SimTime::max());

  // Pending = queued entries + deferred keys parked in caller FIFOs, i.e.
  // every event that would have been queued before deferral existed.
  std::size_t pending_events() const { return q_size() + deferred_pending_; }
  std::size_t events_pending() const { return pending_events(); }

  // Lifetime work counters.  Lazily-cancelled entries popped off the queue
  // are counted separately from executed events, so scheduler metrics
  // distinguish real work from cancel skips (TCP timers are rescheduled on
  // every ACK, so skips can rival executions).
  std::uint64_t events_executed() const { return executed_; }
  std::uint64_t events_cancelled() const { return cancelled_; }
  std::uint64_t events_scheduled() const { return next_seq_; }
  // High-water mark of pending events (queued + deferred).
  std::size_t max_events_pending() const { return max_pending_; }

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  // fn_index values with this bit set index ports_, not the EventFn slab.
  static constexpr std::uint32_t kPortBit = 0x80000000u;

  // Queue entries are deliberately tiny and trivially movable: the callable
  // sits in the fns_ slab (or a port), referenced by index, so queue
  // operations shuffle 24 bytes instead of a type-erased function object.
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t fn_index;  // into fns_, or ports_ when kPortBit is set
    std::uint32_t slot;      // kNoSlot for fire-and-forget posts
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  struct Port {
    PortFn fn;
    void* ctx;
    std::uint8_t cat;
  };

  void push(SimTime when, EventFn fn, std::uint32_t slot, EventCategory cat);
  void push_entry(const Entry& e);
  void dispatch(const Entry& e);

  // Backend dispatch.  One predictable branch per operation; both backends
  // order on exactly (when, seq).
  bool q_empty() const { return q_size() == 0; }
  std::size_t q_size() const {
    return backend_ == SchedulerBackend::kCalendar ? cal_.size() : heap_.size();
  }
  const Entry& q_min() {
    return backend_ == SchedulerBackend::kCalendar ? cal_.min() : heap_.front();
  }
  Entry q_pop();

  SchedulerBackend backend_;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t max_pending_ = 0;
  std::size_t deferred_pending_ = 0;  // claimed keys parked in caller FIFOs
  SchedProfile* profile_ = nullptr;  // not owned; null = no attribution
  bool time_events_ = false;
  std::shared_ptr<detail::SlotPool> pool_ =
      std::make_shared<detail::SlotPool>();
  std::vector<EventFn> fns_;               // slab of pending callables
  std::vector<std::uint8_t> fn_cats_;      // category byte, parallel to fns_
  std::vector<std::uint32_t> free_fns_;    // recycled slab indexes
  std::vector<Port> ports_;
  std::vector<Entry> heap_;                // kHeap backend (std::*_heap)
  CalendarQueue<Entry> cal_;               // kCalendar backend
};

// --- inline hot paths (one call per simulated packet hop) ---

inline void Scheduler::push_entry(const Entry& e) {
  if (backend_ == SchedulerBackend::kCalendar) {
    cal_.push(e);
  } else {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
}

inline Scheduler::Entry Scheduler::q_pop() {
  if (backend_ == SchedulerBackend::kCalendar) return cal_.pop_min();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry e = heap_.back();
  heap_.pop_back();
  return e;
}

inline void Scheduler::post_port_at(SimTime when, std::uint32_t port) {
  if (when < now_) {
    throw std::invalid_argument{"post_port_at: time in the past"};
  }
  push_entry(Entry{when, next_seq_++, port | kPortBit, kNoSlot});
  if (pending_events() > max_pending_) max_pending_ = pending_events();
}

inline void Scheduler::post_port_after(SimTime delay, std::uint32_t port) {
  post_port_at(now_ + delay, port);
}

inline Scheduler::Deferred Scheduler::defer_at(SimTime when) {
  if (when < now_) throw std::invalid_argument{"defer_at: time in the past"};
  // The key is claimed at the exact point the one-entry-per-event code
  // would have pushed, so seq assignment (and with it every same-time
  // tie-break downstream) is unchanged.  The event is logically pending
  // from this moment: counters move now, the queue entry comes later.
  const Deferred d{when, next_seq_++};
  ++deferred_pending_;
  if (pending_events() > max_pending_) max_pending_ = pending_events();
  return d;
}

inline Scheduler::Deferred Scheduler::defer_after(SimTime delay) {
  return defer_at(now_ + delay);
}

inline void Scheduler::arm_deferred(const Deferred& d, std::uint32_t port) {
  // Moves one event from a caller FIFO into the queue: total pending is
  // unchanged, so no high-water update.
  --deferred_pending_;
  push_entry(Entry{d.when, d.seq, port | kPortBit, kNoSlot});
}

}  // namespace dmp
