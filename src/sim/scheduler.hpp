// Discrete-event scheduler.
//
// A binary heap of (time, sequence, callback) entries.  Entries scheduled at
// the same instant fire in scheduling order (FIFO tie-break), which keeps
// runs deterministic.  Cancellation is lazy: `EventHandle::cancel()` marks
// the entry and the run loop skips it when popped — O(1) cancel, no heap
// surgery, which suits TCP timers that are rescheduled on every ACK.
//
// Hot-path cost model: callables live in a pooled slab of EventFn slots
// (inline storage, no per-event heap allocation) and heap entries carry
// only {time, seq, slot indexes} — 24 trivially-movable bytes — so sift
// operations never touch the callable.  The common case (a link delivery,
// a CBR tick) never cancels, so `post_at` / `post_after` skip cancellation
// bookkeeping entirely.  `schedule_at` / `schedule_after` return a
// cancellable EventHandle backed by a pooled generation-stamped slot: slots
// are recycled through free lists, so steady-state timer churn allocates
// nothing.  Handles stay safe after the scheduler dies (the slot pool is
// shared) — they simply report `pending() == false`.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/profiler.hpp"
#include "util/sim_time.hpp"

namespace dmp {

class Scheduler;

namespace detail {

// Generation-stamped cancellation slots.  A slot matches a handle only
// while the generations agree; firing or skipping an event bumps the
// generation and recycles the slot.
struct SlotPool {
  struct Slot {
    std::uint32_t gen = 0;
    bool cancelled = false;
  };
  std::vector<Slot> slots;
  std::vector<std::uint32_t> free_list;

  std::uint32_t acquire() {
    if (!free_list.empty()) {
      const std::uint32_t idx = free_list.back();
      free_list.pop_back();
      return idx;
    }
    slots.push_back(Slot{});
    return static_cast<std::uint32_t>(slots.size() - 1);
  }

  void release(std::uint32_t idx) {
    ++slots[idx].gen;
    slots[idx].cancelled = false;
    free_list.push_back(idx);
  }

  bool live(std::uint32_t idx, std::uint32_t gen) const {
    return slots[idx].gen == gen;
  }
};

}  // namespace detail

// Shared cancellation token for a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  // True while the event is scheduled and not cancelled / fired.
  bool pending() const {
    return pool_ && pool_->live(slot_, gen_) && !pool_->slots[slot_].cancelled;
  }
  void cancel() {
    if (pool_ && pool_->live(slot_, gen_)) pool_->slots[slot_].cancelled = true;
  }

 private:
  friend class Scheduler;
  EventHandle(std::shared_ptr<detail::SlotPool> pool, std::uint32_t slot,
              std::uint32_t gen)
      : pool_(std::move(pool)), slot_(slot), gen_(gen) {}

  std::shared_ptr<detail::SlotPool> pool_;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime now() const { return now_; }

  // Schedule `fn` at absolute time `when` (must be >= now()).  The
  // category tags the event for the optional profiler; kOther is free to
  // leave in place at call sites nobody profiles.
  EventHandle schedule_at(SimTime when, EventFn fn,
                          EventCategory cat = EventCategory::kOther);
  // Schedule `fn` after a relative delay (must be >= 0).
  EventHandle schedule_after(SimTime delay, EventFn fn,
                             EventCategory cat = EventCategory::kOther);

  // Fire-and-forget variants for events that are never cancelled (packet
  // deliveries, generator ticks): no slot, no handle, no shared state.
  void post_at(SimTime when, EventFn fn,
               EventCategory cat = EventCategory::kOther);
  void post_after(SimTime delay, EventFn fn,
                  EventCategory cat = EventCategory::kOther);

  // Attach (or detach, with nullptr) a per-category execution profile.
  // `time_events` additionally brackets every callback with steady_clock
  // reads — roughly 40 ns/event, so it is a separate opt-in (DMP_PROFILE)
  // rather than part of the cheap telemetry path.
  void set_profiler(SchedProfile* profile, bool time_events = false) {
    profile_ = profile;
    time_events_ = time_events && profile != nullptr;
  }

  // Run until the event queue drains or the clock passes `horizon`.
  // Returns the number of events executed.
  std::uint64_t run_until(SimTime horizon);
  // Run until the queue drains.
  std::uint64_t run();

  // Execute at most one event; false when the queue is empty or the next
  // event lies beyond `horizon` (clock is then left unchanged).
  bool step(SimTime horizon = SimTime::max());

  std::size_t pending_events() const { return queue_.size(); }
  std::size_t events_pending() const { return queue_.size(); }

  // Lifetime work counters.  Lazily-cancelled entries popped off the heap
  // are counted separately from executed events, so scheduler metrics
  // distinguish real work from cancel skips (TCP timers are rescheduled on
  // every ACK, so skips can rival executions).
  std::uint64_t events_executed() const { return executed_; }
  std::uint64_t events_cancelled() const { return cancelled_; }
  std::uint64_t events_scheduled() const { return next_seq_; }
  // High-water mark of the event queue.
  std::size_t max_events_pending() const { return max_pending_; }

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  // Heap entries are deliberately tiny and trivially movable: the callable
  // sits in the fns_ slab, referenced by index, so priority-queue sifts
  // shuffle 24 bytes instead of a type-erased function object.
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t fn_index;  // into fns_
    std::uint32_t slot;      // kNoSlot for fire-and-forget posts
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void push(SimTime when, EventFn fn, std::uint32_t slot, EventCategory cat);

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t max_pending_ = 0;
  SchedProfile* profile_ = nullptr;  // not owned; null = no attribution
  bool time_events_ = false;
  std::shared_ptr<detail::SlotPool> pool_ =
      std::make_shared<detail::SlotPool>();
  std::vector<EventFn> fns_;               // slab of pending callables
  std::vector<std::uint8_t> fn_cats_;      // category byte, parallel to fns_
  std::vector<std::uint32_t> free_fns_;    // recycled slab indexes
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace dmp
