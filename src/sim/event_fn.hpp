// Move-only callable for scheduler events.
//
// std::function's small-buffer optimization (16 bytes on common standard
// libraries) is too small for the simulator's hot-path lambdas — a link
// delivery captures `this` plus a 40-byte Packet — so nearly every
// scheduled event used to heap-allocate.  EventFn widens the inline buffer
// to cover every callback the simulator schedules; larger captures still
// work but fall back to the heap.  Move-only (events fire once), no
// copy, no allocation for callables up to kInlineSize bytes.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace dmp {

class EventFn {
 public:
  // Fits `this` + a Packet + a couple of extra words with alignment slack.
  static constexpr std::size_t kInlineSize = 72;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->call(storage_); }

 private:
  struct Ops {
    void (*call)(void*);
    void (*move)(void* dst, void* src);  // src is destroyed
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](void* dst, void* src) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); }};

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* s) { delete *std::launder(reinterpret_cast<Fn**>(s)); }};

  void move_from(EventFn& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->move(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace dmp
