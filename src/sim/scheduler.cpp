#include "sim/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dmp {

EventHandle Scheduler::schedule_at(SimTime when, std::function<void()> fn) {
  if (when < now_) throw std::invalid_argument{"schedule_at: time in the past"};
  auto state = std::make_shared<EventHandle::State>();
  queue_.push(Entry{when, next_seq_++, std::move(fn), state});
  max_pending_ = std::max(max_pending_, queue_.size());
  return EventHandle{std::move(state)};
}

EventHandle Scheduler::schedule_after(SimTime delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

bool Scheduler::step(SimTime horizon) {
  while (!queue_.empty()) {
    if (queue_.top().when > horizon) return false;
    // const_cast is safe: the entry is removed from the queue before use and
    // priority_queue provides no non-const top().
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (entry.state->done) {  // lazily-cancelled event
      ++cancelled_;
      continue;
    }
    entry.state->done = true;
    now_ = entry.when;
    ++executed_;
    entry.fn();
    return true;
  }
  return false;
}

std::uint64_t Scheduler::run_until(SimTime horizon) {
  std::uint64_t executed = 0;
  while (step(horizon)) ++executed;
  if (horizon != SimTime::max() && now_ < horizon) now_ = horizon;
  return executed;
}

std::uint64_t Scheduler::run() { return run_until(SimTime::max()); }

}  // namespace dmp
