#include "sim/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace dmp {

SchedulerBackend parse_scheduler_backend(const std::string& spec) {
  if (spec == "calendar") return SchedulerBackend::kCalendar;
  if (spec == "heap") return SchedulerBackend::kHeap;
  throw std::invalid_argument{"scheduler backend '" + spec +
                              "' (expected: calendar | heap)"};
}

const char* scheduler_backend_name(SchedulerBackend backend) {
  return backend == SchedulerBackend::kCalendar ? "calendar" : "heap";
}

void Scheduler::push(SimTime when, EventFn fn, std::uint32_t slot,
                     EventCategory cat) {
  if (when < now_) throw std::invalid_argument{"schedule_at: time in the past"};
  std::uint32_t fn_index;
  if (!free_fns_.empty()) {
    fn_index = free_fns_.back();
    free_fns_.pop_back();
    fns_[fn_index] = std::move(fn);
  } else {
    fn_index = static_cast<std::uint32_t>(fns_.size());
    fns_.push_back(std::move(fn));
    fn_cats_.push_back(0);
  }
  fn_cats_[fn_index] = static_cast<std::uint8_t>(cat);
  push_entry(Entry{when, next_seq_++, fn_index, slot});
  max_pending_ = std::max(max_pending_, pending_events());
}

EventHandle Scheduler::schedule_at(SimTime when, EventFn fn,
                                   EventCategory cat) {
  const std::uint32_t slot = pool_->acquire();
  const std::uint32_t gen = pool_->slots[slot].gen;
  push(when, std::move(fn), slot, cat);
  return EventHandle{pool_, slot, gen};
}

EventHandle Scheduler::schedule_after(SimTime delay, EventFn fn,
                                      EventCategory cat) {
  return schedule_at(now_ + delay, std::move(fn), cat);
}

void Scheduler::post_at(SimTime when, EventFn fn, EventCategory cat) {
  push(when, std::move(fn), kNoSlot, cat);
}

void Scheduler::post_after(SimTime delay, EventFn fn, EventCategory cat) {
  post_at(now_ + delay, std::move(fn), cat);
}

std::uint32_t Scheduler::register_port(PortFn fn, void* ctx,
                                       EventCategory cat) {
  ports_.push_back(Port{fn, ctx, static_cast<std::uint8_t>(cat)});
  return static_cast<std::uint32_t>(ports_.size() - 1);
}

void Scheduler::dispatch(const Entry& e) {
  now_ = e.when;
  ++executed_;
  if (e.fn_index & kPortBit) {
    const Port port = ports_[e.fn_index & ~kPortBit];
    if (profile_ == nullptr) {
      port.fn(port.ctx);
      return;
    }
    auto& stats = profile_->by_category[port.cat < kNumEventCategories
                                            ? port.cat
                                            : 0];
    ++stats.executed;
    if (time_events_) {
      const auto t0 = std::chrono::steady_clock::now();
      port.fn(port.ctx);
      const auto t1 = std::chrono::steady_clock::now();
      stats.wall_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count());
    } else {
      port.fn(port.ctx);
    }
    return;
  }
  EventFn fn = std::move(fns_[e.fn_index]);
  const std::uint8_t cat = fn_cats_[e.fn_index];
  free_fns_.push_back(e.fn_index);
  if (profile_ == nullptr) {
    fn();
  } else {
    auto& stats = profile_->by_category[cat < kNumEventCategories ? cat : 0];
    ++stats.executed;
    if (time_events_) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      const auto t1 = std::chrono::steady_clock::now();
      stats.wall_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count());
    } else {
      fn();
    }
  }
}

bool Scheduler::step(SimTime horizon) {
  while (!q_empty()) {
    if (q_min().when > horizon) return false;
    const Entry top = q_pop();
    if (!(top.fn_index & kPortBit) && top.slot != kNoSlot) {
      // Release the callable slab slot before the cancellation check so
      // cancelled entries recycle their storage exactly like fired ones.
      EventFn fn = std::move(fns_[top.fn_index]);
      const std::uint8_t cat = fn_cats_[top.fn_index];
      free_fns_.push_back(top.fn_index);
      // The slot is released exactly once — here — so its generation still
      // matches this entry's and `cancelled` is this entry's flag.
      const bool was_cancelled = pool_->slots[top.slot].cancelled;
      pool_->release(top.slot);  // the handle goes dead before fn() runs
      if (was_cancelled) {
        ++cancelled_;
        continue;
      }
      now_ = top.when;
      ++executed_;
      if (profile_ == nullptr) {
        fn();
      } else {
        auto& stats =
            profile_->by_category[cat < kNumEventCategories ? cat : 0];
        ++stats.executed;
        if (time_events_) {
          const auto t0 = std::chrono::steady_clock::now();
          fn();
          const auto t1 = std::chrono::steady_clock::now();
          stats.wall_ns += static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count());
        } else {
          fn();
        }
      }
      return true;
    }
    dispatch(top);
    return true;
  }
  return false;
}

std::uint64_t Scheduler::run_until(SimTime horizon) {
  std::uint64_t executed = 0;
  while (step(horizon)) ++executed;
  if (horizon != SimTime::max() && now_ < horizon) now_ = horizon;
  return executed;
}

std::uint64_t Scheduler::run() { return run_until(SimTime::max()); }

}  // namespace dmp
