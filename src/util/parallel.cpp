#include "util/parallel.hpp"

namespace dmp {

std::size_t resolve_worker_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace dmp
