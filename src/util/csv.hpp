// Minimal CSV writer for benchmark outputs.  Every bench binary both prints
// human-readable rows and drops a machine-readable CSV next to the build.
#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace dmp {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row.  Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);

  // Appends one row; the number of cells must match the header width.
  // Write errors after a successful open (disk full, file deleted) are
  // reported once on stderr and latch `ok()` false instead of throwing —
  // a broken artifact must not abort the run that produced it.
  void row(const std::vector<std::string>& cells);

  // False once any row failed to reach the file.
  bool ok() const { return !write_failed_; }

  // Convenience: formats doubles with enough digits to round-trip.
  static std::string num(double v);
  static std::string num(std::int64_t v);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t width_;
  bool write_failed_ = false;
};

// Resolves the output directory for bench CSVs: $DMP_OUT_DIR or "bench_out".
// Creates the directory if needed.
std::string bench_output_dir();

}  // namespace dmp
