#include "util/rng.hpp"

#include <cmath>

namespace dmp {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
}

Rng Rng::fork() { return Rng{next_u64()}; }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  // Lemire's unbiased bounded sampling.
  if (n == 0) return 0;
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::pareto(double alpha, double xm, double cap) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  const double v = xm / std::pow(u, 1.0 / alpha);
  return v < cap ? v : cap;
}

std::size_t Rng::weighted_index(const double* weights, std::size_t n) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += weights[i];
  double x = uniform() * total;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (x < weights[i]) return i;
    x -= weights[i];
  }
  return n == 0 ? 0 : n - 1;
}

}  // namespace dmp
