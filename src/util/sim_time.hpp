// Simulation time as a strong integer type.
//
// All simulator components agree on a single clock representation:
// a signed 64-bit count of nanoseconds.  Integer time keeps event ordering
// exact and runs reproducible across platforms; the range (+/- ~292 years)
// is far beyond any simulation horizon used here.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>

namespace dmp {

class SimTime {
 public:
  constexpr SimTime() = default;

  // Named constructors; the unit is always explicit at the call site.
  static constexpr SimTime nanos(std::int64_t n) { return SimTime{n}; }
  static constexpr SimTime micros(std::int64_t u) { return SimTime{u * 1000}; }
  static constexpr SimTime millis(std::int64_t m) { return SimTime{m * 1'000'000}; }
  static constexpr SimTime seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9)};
  }
  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  constexpr SimTime operator+(SimTime o) const { return SimTime{ns_ + o.ns_}; }
  constexpr SimTime operator-(SimTime o) const { return SimTime{ns_ - o.ns_}; }
  constexpr SimTime& operator+=(SimTime o) { ns_ += o.ns_; return *this; }
  constexpr SimTime& operator-=(SimTime o) { ns_ -= o.ns_; return *this; }

  constexpr SimTime operator*(std::int64_t k) const { return SimTime{ns_ * k}; }
  constexpr SimTime operator/(std::int64_t k) const { return SimTime{ns_ / k}; }

  // Scaling by a real factor (e.g. RTO backoff); rounds toward zero.
  constexpr SimTime scaled(double f) const {
    return SimTime{static_cast<std::int64_t>(static_cast<double>(ns_) * f)};
  }

 private:
  constexpr explicit SimTime(std::int64_t n) : ns_{n} {}
  std::int64_t ns_ = 0;
};

// Transmission (serialization) time of `bytes` at `bits_per_second`.
constexpr SimTime transmission_time(std::int64_t bytes, double bits_per_second) {
  return SimTime::seconds(static_cast<double>(bytes) * 8.0 / bits_per_second);
}

}  // namespace dmp
