#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dmp {

void RunningStats::add(double x) {
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sum() const { return mean_ * static_cast<double>(n_); }

namespace {

// Abridged two-sided t-tables; beyond 30 dof the normal quantile is used.
constexpr double kT95[] = {0,     12.706, 4.303, 3.182, 2.776, 2.571, 2.447,
                           2.365, 2.306,  2.262, 2.228, 2.201, 2.179, 2.160,
                           2.145, 2.131,  2.120, 2.110, 2.101, 2.093, 2.086,
                           2.080, 2.074,  2.069, 2.064, 2.060, 2.056, 2.052,
                           2.048, 2.045,  2.042};
constexpr double kT90[] = {0,     6.314, 2.920, 2.353, 2.132, 2.015, 1.943,
                           1.895, 1.860, 1.833, 1.812, 1.796, 1.782, 1.771,
                           1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
                           1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703,
                           1.701, 1.699, 1.697};
constexpr double kT99[] = {0,     63.657, 9.925, 5.841, 4.604, 4.032, 3.707,
                           3.499, 3.355,  3.250, 3.169, 3.106, 3.055, 3.012,
                           2.977, 2.947,  2.921, 2.898, 2.878, 2.861, 2.845,
                           2.831, 2.819,  2.807, 2.797, 2.787, 2.779, 2.771,
                           2.763, 2.756,  2.750};

}  // namespace

double student_t_critical(double confidence, std::size_t dof) {
  if (dof == 0) return 0.0;
  const double* table = nullptr;
  double asymptote = 0.0;
  if (confidence >= 0.985) {
    table = kT99;
    asymptote = 2.576;
  } else if (confidence >= 0.925) {
    table = kT95;
    asymptote = 1.960;
  } else {
    table = kT90;
    asymptote = 1.645;
  }
  return dof <= 30 ? table[dof] : asymptote;
}

ConfidenceInterval confidence_interval(const std::vector<double>& samples,
                                       double confidence) {
  RunningStats s;
  for (double x : samples) s.add(x);
  ConfidenceInterval ci;
  ci.mean = s.mean();
  if (s.count() >= 2) {
    const double t = student_t_critical(confidence, s.count() - 1);
    ci.half_width = t * s.stddev() / std::sqrt(static_cast<double>(s.count()));
  }
  return ci;
}

BatchMeans::BatchMeans(std::size_t num_batches)
    : batch_target_(256), num_batches_(std::max<std::size_t>(num_batches, 2)) {}

void BatchMeans::add(double x) {
  ++total_n_;
  total_sum_ += x;
  batch_sum_ += x;
  if (++in_batch_ >= batch_target_) close_batch();
}

void BatchMeans::close_batch() {
  batch_means_.push_back(batch_sum_ / static_cast<double>(in_batch_));
  batch_sum_ = 0.0;
  in_batch_ = 0;
  if (batch_means_.size() >= 2 * num_batches_) {
    // Pairwise-merge batches and double the target so the number of
    // retained batches stays bounded as the run grows.
    std::vector<double> merged;
    merged.reserve(num_batches_);
    for (std::size_t i = 0; i + 1 < batch_means_.size(); i += 2) {
      merged.push_back(0.5 * (batch_means_[i] + batch_means_[i + 1]));
    }
    batch_means_ = std::move(merged);
    batch_target_ *= 2;
  }
}

double BatchMeans::mean() const {
  return total_n_ == 0 ? 0.0 : total_sum_ / static_cast<double>(total_n_);
}

ConfidenceInterval BatchMeans::interval(double confidence) const {
  ConfidenceInterval ci;
  ci.mean = mean();
  if (batch_means_.size() >= 2) {
    RunningStats s;
    for (double b : batch_means_) s.add(b);
    const double t = student_t_critical(confidence, s.count() - 1);
    ci.half_width = t * s.stddev() / std::sqrt(static_cast<double>(s.count()));
  }
  return ci;
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument{"quantile of empty sample"};
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace dmp
