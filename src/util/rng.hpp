// Deterministic pseudo-random number generation for simulations.
//
// xoshiro256** seeded via SplitMix64: fast, high quality, and — unlike
// std::mt19937 + std::*_distribution — bit-identical across standard-library
// implementations, which keeps every experiment reproducible from its seed.
#pragma once

#include <array>
#include <cstdint>

namespace dmp {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Derive an independent child stream (for per-flow / per-module RNGs).
  Rng fork();

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n);

  // Exponential with the given mean (> 0).
  double exponential(double mean);

  // Bounded Pareto with shape `alpha` and scale `xm` (minimum value),
  // truncated at `cap` to keep background-traffic object sizes sane.
  double pareto(double alpha, double xm, double cap);

  // Bernoulli trial.
  bool chance(double p);

  // Sample an index from an unnormalized weight array.
  std::size_t weighted_index(const double* weights, std::size_t n);

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace dmp
