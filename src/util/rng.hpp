// Deterministic pseudo-random number generation for simulations.
//
// xoshiro256** seeded via SplitMix64: fast, high quality, and — unlike
// std::mt19937 + std::*_distribution — bit-identical across standard-library
// implementations, which keeps every experiment reproducible from its seed.
#pragma once

#include <array>
#include <cstdint>

namespace dmp {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Derive an independent child stream (for per-flow / per-module RNGs).
  Rng fork();

  // Inline: this is the innermost call of every simulation hot loop (DES
  // events, Monte-Carlo transitions), and the call overhead is measurable.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, 1): 53 random bits.
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }
  // Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }
  // Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n);

  // Exponential with the given mean (> 0).
  double exponential(double mean);

  // Bounded Pareto with shape `alpha` and scale `xm` (minimum value),
  // truncated at `cap` to keep background-traffic object sizes sane.
  double pareto(double alpha, double xm, double cap);

  // Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  // Sample an index from an unnormalized weight array.
  std::size_t weighted_index(const double* weights, std::size_t n);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
};

}  // namespace dmp
