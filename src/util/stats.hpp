// Streaming statistics: Welford accumulators, Student-t confidence
// intervals over independent replications, and batch-means intervals for
// correlated within-run samples (late-packet indicators are bursty).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace dmp {

// Single-pass mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  // Unbiased sample variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  // 0 when empty.  Internally the extrema start at +/-infinity, so merging
  // an empty accumulator can never clamp an all-positive or all-negative
  // sample set toward 0.
  double min() const;
  double max() const;
  double sum() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Two-sided Student-t critical value at the given confidence level
// (supported: 0.90, 0.95, 0.99) with `dof` degrees of freedom.
double student_t_critical(double confidence, std::size_t dof);

struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;
  double lo() const { return mean - half_width; }
  double hi() const { return mean + half_width; }
  bool contains(double x) const { return x >= lo() && x <= hi(); }
};

// CI over independent replications (one sample per run).
ConfidenceInterval confidence_interval(const std::vector<double>& samples,
                                       double confidence = 0.95);

// Batch-means estimator for the mean of a correlated 0/1 (or real) series.
// Samples are folded into `num_batches` consecutive batches; the CI is a
// t-interval over the batch averages.
class BatchMeans {
 public:
  explicit BatchMeans(std::size_t num_batches = 32);

  void add(double x);
  // Folds `count` consecutive samples of the same value `x` in O(batches)
  // instead of O(count).  For integer-valued x the accumulators match
  // `count` repeated add(x) calls exactly (the sums stay integral), so the
  // Monte-Carlo bulk-consumption fast path feeds the same batch stream as
  // the event-by-event loop.
  // Inline: this sits inside the Monte-Carlo bulk loop, and keeping the
  // common no-boundary case visible to the caller's optimizer is worth it.
  void add_many(double x, std::uint64_t count) {
    while (count > 0) {
      const std::uint64_t room = batch_target_ - in_batch_;
      const std::uint64_t m = count < room ? count : room;
      const double contrib = x * static_cast<double>(m);
      total_n_ += static_cast<std::size_t>(m);
      total_sum_ += contrib;
      batch_sum_ += contrib;
      in_batch_ += static_cast<std::size_t>(m);
      if (in_batch_ >= batch_target_) close_batch();
      count -= m;
    }
  }
  std::size_t count() const { return total_n_; }
  double mean() const;
  // CI over completed batches; falls back to a degenerate interval when
  // fewer than two batches have completed.
  ConfidenceInterval interval(double confidence = 0.95) const;

 private:
  void close_batch();

  std::size_t batch_target_;  // samples per batch before it closes (doubles over time)
  std::size_t in_batch_ = 0;
  double batch_sum_ = 0.0;
  std::size_t total_n_ = 0;
  double total_sum_ = 0.0;
  std::size_t num_batches_;
  std::vector<double> batch_means_;
};

// Quantile of a sample (linear interpolation); sorts a copy.
double quantile(std::vector<double> values, double q);

}  // namespace dmp
