// Ordered worker pool: deterministic fan-out/fan-in for pure work items.
//
// `run_ordered(n, produce, consume)` runs `produce(i)` on a worker pool and
// hands each result to `consume(i, value)` on the calling thread in STRICT
// index order.  When every work item is a pure function of its index, the
// observable output is bit-identical whether the pool has 1 thread or 16 —
// parallelism only changes wall-clock.  A sliding admission window (2x the
// worker count) bounds how far production runs ahead of consumption, so a
// sweep of thousands of items holds O(threads) results in memory, not O(n).
//
// This is the engine underneath exp::ExperimentRunner (PR 3) and the
// model's sharded Monte-Carlo estimator; it lives in util so the model
// layer can use it without depending on the experiment/session stack.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace dmp {

// 0 -> one worker per hardware thread (at least 1).
std::size_t resolve_worker_threads(std::size_t requested);

class OrderedPool {
 public:
  explicit OrderedPool(std::size_t threads = 0)
      : threads_(resolve_worker_threads(threads)) {}

  std::size_t threads() const { return threads_; }

  // produce(i) on the pool; consume(i, produced) on this thread in index
  // order.  An exception thrown by produce(i) is rethrown on this thread
  // when index i is due for consumption.
  template <class Produce, class Consume>
  void run_ordered(std::size_t n, Produce produce, Consume consume) const {
    using R = std::invoke_result_t<Produce&, std::size_t>;
    const std::size_t workers = threads_ < n ? threads_ : n;
    if (workers <= 1) {
      for (std::size_t i = 0; i < n; ++i) consume(i, produce(i));
      return;
    }

    std::mutex mu;
    std::condition_variable may_produce, may_consume;
    std::size_t next = 0;      // next index a worker may claim
    std::size_t consumed = 0;  // items already handed to consume()
    const std::size_t window = 2 * workers;
    std::vector<std::optional<R>> slots(n);
    std::vector<std::exception_ptr> errors(n);

    auto worker = [&] {
      for (;;) {
        std::size_t i;
        {
          std::unique_lock<std::mutex> lock(mu);
          may_produce.wait(
              lock, [&] { return next >= n || next < consumed + window; });
          if (next >= n) return;
          i = next++;
        }
        std::optional<R> value;
        std::exception_ptr error;
        try {
          value.emplace(produce(i));
        } catch (...) {
          error = std::current_exception();
        }
        {
          std::lock_guard<std::mutex> lock(mu);
          slots[i] = std::move(value);
          errors[i] = error;
        }
        may_consume.notify_all();
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);

    // Join even if consume() throws: park the claim counter past the end
    // so idle workers exit, then join before propagating.
    struct Joiner {
      std::mutex& mu;
      std::condition_variable& may_produce;
      std::size_t& next;
      std::size_t n;
      std::vector<std::thread>& pool;
      ~Joiner() {
        {
          std::lock_guard<std::mutex> lock(mu);
          next = n;
        }
        may_produce.notify_all();
        for (auto& t : pool) t.join();
      }
    } joiner{mu, may_produce, next, n, pool};

    for (std::size_t i = 0; i < n; ++i) {
      std::optional<R> value;
      std::exception_ptr error;
      {
        std::unique_lock<std::mutex> lock(mu);
        may_consume.wait(lock,
                         [&] { return slots[i].has_value() || errors[i]; });
        value = std::move(slots[i]);
        slots[i].reset();  // free the result before the window advances
        error = errors[i];
        ++consumed;
      }
      may_produce.notify_all();
      if (error) std::rethrow_exception(error);
      consume(i, std::move(*value));
    }
  }

  // Convenience: fn(i) for i in [0, n), results returned in index order.
  template <class Fn>
  auto map(std::size_t n, Fn fn) const
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    std::vector<std::invoke_result_t<Fn&, std::size_t>> results;
    results.reserve(n);
    run_ordered(n, fn, [&](std::size_t, auto&& value) {
      results.push_back(std::forward<decltype(value)>(value));
    });
    return results;
  }

 private:
  std::size_t threads_;
};

}  // namespace dmp
