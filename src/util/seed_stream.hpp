// Deterministic seed derivation for experiments.
//
// A SeedStream is an indexed family of 64-bit seeds derived from a (root,
// domain) pair with SplitMix64: element i is the finalizer output of the
// state `base + (i+1) * GAMMA`, where `base` itself is a finalizer output
// mixing root and domain.  Two streams with different domains walk
// pseudo-random, effectively disjoint regions of the 2^64 state space, so
// replication seeds, probe seeds and Monte-Carlo seeds can never collide
// the way additive schemes do (`seed + 1` vs `seed + r`).  `at()` is O(1),
// which lets a parallel runner hand replication r its seed without
// generating the first r-1.
#pragma once

#include <cstdint>

namespace dmp {

// Element `index` of the stream identified by (root, domain).
std::uint64_t derive_seed(std::uint64_t root, std::uint64_t domain,
                          std::uint64_t index);

class SeedStream {
 public:
  SeedStream(std::uint64_t root, std::uint64_t domain)
      : root_(root), domain_(domain) {}

  std::uint64_t at(std::uint64_t index) const {
    return derive_seed(root_, domain_, index);
  }

  // An independent child stream rooted at element `index` of this one.
  SeedStream substream(std::uint64_t index) const {
    return SeedStream(at(index), domain_ + 1);
  }

  std::uint64_t root() const { return root_; }
  std::uint64_t domain() const { return domain_; }

 private:
  std::uint64_t root_;
  std::uint64_t domain_;
};

}  // namespace dmp
