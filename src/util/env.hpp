// Typed environment-variable lookups used by benches to scale workloads
// (e.g. DMP_RUNS, DMP_DURATION_S) without recompiling.
#pragma once

#include <cstdint>
#include <string>

namespace dmp {

std::int64_t env_int(const char* name, std::int64_t fallback);
double env_double(const char* name, double fallback);
std::string env_string(const char* name, const std::string& fallback);

}  // namespace dmp
