#include "util/csv.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#include "util/env.hpp"

namespace dmp {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : path_(path), out_(path), width_(columns.size()) {
  if (!out_) throw std::runtime_error{"cannot open CSV output: " + path};
  row(columns);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != width_) {
    throw std::invalid_argument{"CSV row width mismatch in " + path_};
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
  if (!out_.flush() && !write_failed_) {
    write_failed_ = true;
    std::fprintf(stderr, "warning: CSV write failed: %s\n", path_.c_str());
  }
}

std::string CsvWriter::num(double v) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v,
                                 std::chars_format::general, 12);
  if (ec != std::errc{}) return "nan";
  return std::string(buf, ptr);
}

std::string CsvWriter::num(std::int64_t v) { return std::to_string(v); }

std::string bench_output_dir() {
  const std::string dir = env_string("DMP_OUT_DIR", "bench_out");
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace dmp
