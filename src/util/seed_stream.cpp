#include "util/seed_stream.hpp"

namespace dmp {

namespace {

constexpr std::uint64_t kGamma = 0x9E3779B97F4A7C15ULL;

// SplitMix64 finalizer (the output function applied to a raw state).
constexpr std::uint64_t finalize(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t root, std::uint64_t domain,
                          std::uint64_t index) {
  // Mix the domain through the finalizer before combining with the root so
  // that small domain tags (1, 2, 3, ...) land far apart, then jump the
  // SplitMix64 state directly to element `index`.
  const std::uint64_t base = finalize(root + finalize(domain * kGamma + 1));
  return finalize(base + (index + 1) * kGamma);
}

}  // namespace dmp
