#include "solver/ctmc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dmp {

CtmcBuilder::CtmcBuilder(std::uint32_t num_states) : n_(num_states) {}

void CtmcBuilder::add_transition(std::uint32_t from, std::uint32_t to,
                                 double rate) {
  if (from >= n_ || to >= n_) {
    throw std::out_of_range{"CTMC transition endpoint out of range"};
  }
  if (rate < 0.0 || !std::isfinite(rate)) {
    throw std::invalid_argument{"CTMC transition rate must be finite and >= 0"};
  }
  if (rate == 0.0 || from == to) return;
  triplets_.push_back(Triplet{from, to, rate});
}

Ctmc CtmcBuilder::build() && {
  // Sort by destination (then source) so the incoming CSR assembles in one
  // pass and duplicate edges merge.
  std::sort(triplets_.begin(), triplets_.end(),
            [](const Triplet& a, const Triplet& b) {
              if (a.to != b.to) return a.to < b.to;
              return a.from < b.from;
            });

  Ctmc chain;
  chain.n_ = n_;
  chain.exit_rate_.assign(n_, 0.0);
  chain.in_off_.assign(static_cast<std::size_t>(n_) + 1, 0);
  chain.in_src_.reserve(triplets_.size());
  chain.in_rate_.reserve(triplets_.size());

  std::size_t idx = 0;
  for (std::uint32_t j = 0; j < n_; ++j) {
    chain.in_off_[j] = chain.in_src_.size();
    while (idx < triplets_.size() && triplets_[idx].to == j) {
      const std::uint32_t src = triplets_[idx].from;
      double rate = 0.0;
      while (idx < triplets_.size() && triplets_[idx].to == j &&
             triplets_[idx].from == src) {
        rate += triplets_[idx].rate;
        ++idx;
      }
      chain.in_src_.push_back(src);
      chain.in_rate_.push_back(rate);
      chain.exit_rate_[src] += rate;
    }
  }
  chain.in_off_[n_] = chain.in_src_.size();
  return chain;
}

std::vector<double> Ctmc::steady_state_gauss_seidel(double tol,
                                                    std::size_t max_sweeps) const {
  if (n_ == 0) throw std::invalid_argument{"empty chain"};
  for (std::uint32_t s = 0; s < n_; ++s) {
    if (exit_rate_[s] <= 0.0) {
      throw std::invalid_argument{
          "CTMC has an absorbing state; no stationary distribution"};
    }
  }
  std::vector<double> pi(n_, 1.0 / static_cast<double>(n_));
  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double delta = 0.0;
    for (std::uint32_t j = 0; j < n_; ++j) {
      double inflow = 0.0;
      for (std::size_t k = in_off_[j]; k < in_off_[j + 1]; ++k) {
        inflow += pi[in_src_[k]] * in_rate_[k];
      }
      const double updated = inflow / exit_rate_[j];
      delta += std::abs(updated - pi[j]);
      pi[j] = updated;
    }
    // Normalize each sweep; Gauss-Seidel on the unnormalized balance
    // equations drifts in scale otherwise.
    double total = 0.0;
    for (double v : pi) total += v;
    if (total <= 0.0) throw std::runtime_error{"Gauss-Seidel collapsed to zero"};
    for (double& v : pi) v /= total;
    if (delta / total < tol) return pi;
  }
  throw std::runtime_error{"Gauss-Seidel did not converge"};
}

std::vector<double> Ctmc::steady_state_power(double tol,
                                             std::size_t max_iters) const {
  if (n_ == 0) throw std::invalid_argument{"empty chain"};
  double lambda = 0.0;
  for (std::uint32_t s = 0; s < n_; ++s) {
    if (exit_rate_[s] <= 0.0) {
      throw std::invalid_argument{
          "CTMC has an absorbing state; no stationary distribution"};
    }
    lambda = std::max(lambda, exit_rate_[s]);
  }
  lambda *= 1.02;  // keep the uniformized chain aperiodic

  std::vector<double> pi(n_, 1.0 / static_cast<double>(n_));
  std::vector<double> next(n_, 0.0);
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    for (std::uint32_t j = 0; j < n_; ++j) {
      double inflow = 0.0;
      for (std::size_t k = in_off_[j]; k < in_off_[j + 1]; ++k) {
        inflow += pi[in_src_[k]] * in_rate_[k];
      }
      next[j] = pi[j] * (1.0 - exit_rate_[j] / lambda) + inflow / lambda;
    }
    double delta = 0.0;
    for (std::uint32_t j = 0; j < n_; ++j) delta += std::abs(next[j] - pi[j]);
    pi.swap(next);
    if (delta < tol) return pi;
  }
  throw std::runtime_error{"power iteration did not converge"};
}

double Ctmc::balance_residual(const std::vector<double>& pi) const {
  double worst = 0.0;
  for (std::uint32_t j = 0; j < n_; ++j) {
    double inflow = 0.0;
    for (std::size_t k = in_off_[j]; k < in_off_[j + 1]; ++k) {
      inflow += pi[in_src_[k]] * in_rate_[k];
    }
    worst = std::max(worst, std::abs(pi[j] * exit_rate_[j] - inflow));
  }
  return worst;
}

}  // namespace dmp
