// Sparse continuous-time Markov chain representation and steady-state
// solvers (the TANGRAM-II substitute).
//
// The chain is stored column-oriented (incoming transitions per state) plus
// per-state exit rates — exactly what both solvers need:
//   * Gauss-Seidel sweeps on the balance equations
//         pi_j * exit_j = sum_i pi_i * q_ij
//     (fast on the stiff chains arising here), and
//   * uniformized power iteration as a slower, assumption-free fallback.
#pragma once

#include <cstdint>
#include <vector>

namespace dmp {

class CtmcBuilder;

class Ctmc {
 public:
  std::uint32_t num_states() const { return n_; }

  // Steady-state distribution via Gauss-Seidel; throws if the chain has a
  // state with no exit (absorbing) or fails to converge.
  std::vector<double> steady_state_gauss_seidel(double tol = 1e-12,
                                                std::size_t max_sweeps = 50000) const;

  // Steady-state via uniformized power iteration.
  std::vector<double> steady_state_power(double tol = 1e-12,
                                         std::size_t max_iters = 2000000) const;

  double exit_rate(std::uint32_t state) const { return exit_rate_[state]; }

  // Residual max_j |pi_j * exit_j - inflow_j|; diagnostic for tests.
  double balance_residual(const std::vector<double>& pi) const;

 private:
  friend class CtmcBuilder;
  std::uint32_t n_ = 0;
  // Incoming-transition CSR: for state j, sources in_src_[in_off_[j]..in_off_[j+1]).
  std::vector<std::size_t> in_off_;
  std::vector<std::uint32_t> in_src_;
  std::vector<double> in_rate_;
  std::vector<double> exit_rate_;
};

// Accumulates (from, to, rate) triplets; duplicate edges are merged.
// Self-loops are ignored (they do not affect a CTMC's stationary law).
class CtmcBuilder {
 public:
  explicit CtmcBuilder(std::uint32_t num_states);

  void add_transition(std::uint32_t from, std::uint32_t to, double rate);

  Ctmc build() &&;

 private:
  struct Triplet {
    std::uint32_t from;
    std::uint32_t to;
    double rate;
  };
  std::uint32_t n_;
  std::vector<Triplet> triplets_;
};

}  // namespace dmp
