// Parameters of the simulated TCP Reno agent.
//
// The agent follows the ns-2 one-way TCP abstraction the paper simulates
// with: packet-granularity sequence numbers (one segment = one MSS), no
// three-way handshake, cumulative ACKs with the delayed-ACK policy, classic
// Reno loss recovery (fast retransmit + fast recovery, deflate-and-exit on
// the first new ACK), go-back-N after timeout, Jacobson/Karn RTO with
// exponential backoff.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/sim_time.hpp"

namespace dmp {

struct TcpConfig {
  std::uint32_t mss_bytes = 1500;
  double initial_cwnd = 2.0;
  double initial_ssthresh = 64.0;
  // Maximum congestion window in packets (ns-2 `window_`).
  double max_cwnd = 64.0;
  // Application send buffer in packets: unsent + sent-but-unacked segments.
  // This bound is what makes DMP-streaming's implicit bandwidth inference
  // work — a sender blocks when it fills, and frees space at its ACK rate.
  std::size_t send_buffer_packets = 64;
  SimTime min_rto = SimTime::millis(200);
  SimTime max_rto = SimTime::seconds(64);
  SimTime delack_timeout = SimTime::millis(100);
  bool delayed_ack = true;
  // Random per-send processing delay, uniform in [0, send_overhead_s]
  // (ns-2's `overhead_`).  Deterministic simulations of identical flows on
  // one drop-tail queue phase-lock (Floyd/Jacobson phase effects); a small
  // overhead breaks the synchronization.  0 disables it.
  double send_overhead_s = 0.0;
  // Seed for the overhead jitter stream (combined with the flow id).
  std::uint64_t jitter_seed = 0x9E3779B97F4A7C15ULL;
};

// Counters and estimates exported by a sender for the paper's per-path
// statistics (loss rate p, RTT R, normalized timeout TO = R_TO / R).
struct TcpSenderStats {
  std::uint64_t data_packets_sent = 0;   // first transmissions
  std::uint64_t retransmissions = 0;
  std::uint64_t timeouts = 0;            // RTO expirations
  std::uint64_t fast_retransmits = 0;
  std::uint64_t acks_received = 0;
  double rtt_sample_sum_s = 0.0;         // Karn-filtered RTT samples
  std::uint64_t rtt_sample_count = 0;
  double rto_sample_sum_s = 0.0;         // RTO value observed at each RTT sample
  std::uint64_t rto_sample_count = 0;
  double rto_at_timeout_sum_s = 0.0;     // first (non-backed-off) RTO at expiry
  std::uint64_t rto_at_timeout_count = 0;

  double mean_rtt_s() const {
    return rtt_sample_count == 0 ? 0.0
                                 : rtt_sample_sum_s /
                                       static_cast<double>(rtt_sample_count);
  }
  double mean_rto_s() const {
    return rto_sample_count == 0 ? 0.0
                                 : rto_sample_sum_s /
                                       static_cast<double>(rto_sample_count);
  }
  // The paper's TO_k = R_TO / R.
  double normalized_timeout() const {
    const double r = mean_rtt_s();
    return r <= 0.0 ? 0.0 : mean_rto_s() / r;
  }
};

}  // namespace dmp
