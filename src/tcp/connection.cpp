#include "tcp/connection.hpp"

namespace dmp {

TcpConnection make_connection(Scheduler& sched, FlowId flow,
                              NetworkPath& path, const TcpConfig& config) {
  TcpConnection conn;
  conn.sender = std::make_unique<RenoSender>(sched, flow, config,
                                             path.attach_source(flow));
  conn.sink = std::make_unique<TcpSink>(sched, flow, config,
                                        path.attach_reverse_source(flow));

  TcpSink* sink = conn.sink.get();
  path.register_sink(flow, [sink](const Packet& p) { sink->on_data(p); });
  RenoSender* sender = conn.sender.get();
  path.register_reverse_sink(flow,
                             [sender](const Packet& p) { sender->on_ack(p); });
  return conn;
}

}  // namespace dmp
