// TCP Reno sender agent (one-way data, ns-2 style).
//
// The application hands the sender MSS-sized "app packets" (each carrying an
// opaque tag, e.g. the stream packet number) through a bounded send buffer.
// `space()` and the space callback are the hook DMP-streaming uses: a sender
// with free buffer space pulls more packets from the shared server queue.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/time_series.hpp"
#include "sim/scheduler.hpp"
#include "tcp/tcp_config.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace dmp {

class RenoSender {
 public:
  RenoSender(Scheduler& sched, FlowId flow, TcpConfig config,
             PacketHandler network_out);

  // --- application side ---
  // Free send-buffer slots.
  std::size_t space() const;
  // Appends one segment carrying `app_tag`; returns false when the buffer is
  // full.  Transmission is attempted immediately if the window allows.
  bool enqueue(std::int64_t app_tag);
  // Invoked whenever ACKs free buffer space (after the sender has already
  // used the new window itself); the callback may call enqueue().
  void set_space_callback(std::function<void()> cb) { space_cb_ = std::move(cb); }

  // --- network side ---
  void on_ack(const Packet& ack);

  // --- introspection ---
  FlowId flow() const { return flow_; }
  double cwnd() const { return cwnd_; }
  double ssthresh() const { return ssthresh_; }
  bool in_recovery() const { return in_recovery_; }
  std::int64_t snd_una() const { return snd_una_; }
  std::int64_t snd_nxt() const { return snd_nxt_; }
  std::int64_t snd_max() const { return snd_max_; }
  // Segments enqueued and not yet cumulatively acknowledged.
  std::size_t buffered() const { return segments_.size(); }
  SimTime current_rto() const;
  // Smoothed RTT estimate in seconds; 0 until the first valid sample
  // (Karn-filtered).  Consumed by RTT-aware path schedulers.
  double srtt_s() const { return rtt_valid_ ? srtt_s_ : 0.0; }
  const TcpSenderStats& stats() const { return stats_; }
  const TcpConfig& config() const { return config_; }

  // Reset cwnd after an application idle period (slow-start restart); used
  // by the HTTP background source between transfers.
  void idle_restart();

  // Removes every segment that has never been transmitted from the back of
  // the send buffer and returns their app tags in enqueue order.  Segments
  // that are in flight (or were ever sent) stay — their recovery is TCP's
  // job.  Used by the DMP server when a path fails: the dead sender's
  // unsent share goes back to the shared queue so surviving paths carry it.
  std::vector<std::int64_t> reclaim_unsent();

  // One transmitted-but-unacked segment: the at-risk set when this
  // sender's path fails (recovery is otherwise pinned to this sender's
  // RTO backoff).  `last_sent` separates segments that may genuinely be
  // caught in a blackhole (sent within ~one RTT of the fault) from older
  // ones that were already delivered and merely lost their ACK.
  struct AtRiskSegment {
    std::int64_t app_tag = -1;
    SimTime last_sent = SimTime::zero();
  };

  // Every segment transmitted at least once and not yet cumulatively
  // acknowledged, in sequence order.  A redundant failover policy may
  // re-send (a subset of) them on surviving paths; the client dedups.
  std::vector<AtRiskSegment> transmitted_unacked() const {
    std::vector<AtRiskSegment> at_risk;
    for (const auto& segment : segments_) {
      if (segment.times_sent > 0) {
        at_risk.push_back(AtRiskSegment{segment.app_tag, segment.last_sent});
      }
    }
    return at_risk;
  }

  // Current Karn backoff multiplier (1 = no backoff; doubles per
  // consecutive timeout up to 64).  Exposed for failover diagnostics.
  std::uint32_t rto_backoff() const { return backoff_; }

  // App tag of the oldest transmitted-but-unacked segment (the head-of-line
  // packet whose delivery this sender's path is currently blocking), or -1
  // when nothing transmitted is outstanding.  O(1); consumed by redundancy
  // policies that duplicate the most deadline-critical packet.
  std::int64_t oldest_unacked_tag() const {
    if (segments_.empty() || segments_.front().times_sent == 0) return -1;
    return segments_.front().app_tag;
  }

  // --- observability (all optional; no-ops when never called) ---
  // Registers `<prefix>.{cwnd,ssthresh,srtt_s,rto_s,buffered}` sampler
  // gauges, `<prefix>.{data_packets_sent,retransmissions,timeouts,
  // fast_retransmits,acks_received}` counters mirroring `stats()`, and the
  // `<prefix>.ack_interarrival_s` histogram.
  void attach_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix);
  // Emits "rto" (kWarn), "fast_retransmit" (kInfo) and "ss_to_ca" phase-
  // transition (kInfo) events tagged with this sender's flow id.
  void set_event_log(obs::EventLog* log) { event_log_ = log; }
  // Records per-stream-packet send-buffer enqueues and (re)transmissions
  // (with cwnd/ssthresh snapshots and the recovery mechanism), plus
  // flow-level RTO span events, into the flight recorder.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    flight_ = recorder;
  }
  // Windowed telemetry (either may be null): cwnd and srtt sampled on
  // every cumulative ACK — event-driven, so the windows catch the sawtooth
  // a fixed-interval probe aliases over.
  void set_telemetry(obs::TimeSeriesChannel* cwnd,
                     obs::TimeSeriesChannel* srtt_s) {
    ts_cwnd_ = cwnd;
    ts_srtt_ = srtt_s;
  }

 private:
  struct Segment {
    std::int64_t app_tag;
    std::uint32_t times_sent = 0;
    SimTime last_sent = SimTime::zero();
  };

  // One jitter-delayed emission: a (when, seq) key claimed from the
  // scheduler at transmit() time plus the packet itself.  `when` is
  // strictly increasing (the last_emission_ guard), so the ring is FIFO by
  // construction and only its head is ever armed in the event queue.
  struct PendingEmission {
    SimTime when;
    std::uint64_t seq;
    Packet p;
  };

  static void emit_port(void* ctx) {
    static_cast<RenoSender*>(ctx)->on_emit();
  }

  Segment& seg(std::int64_t seq) {
    return segments_[static_cast<std::size_t>(seq - snd_una_)];
  }
  std::int64_t enq_end() const {
    return snd_una_ + static_cast<std::int64_t>(segments_.size());
  }

  void try_send();
  void emit(std::int64_t seq);
  void transmit(const Packet& p);
  void on_emit();
  void open_cwnd(std::int64_t newly_acked);
  void enter_fast_recovery();
  void on_rto();
  void arm_rto();
  void rtt_sample(SimTime sample);

  Scheduler& sched_;
  FlowId flow_;
  TcpConfig config_;
  PacketHandler out_;
  std::function<void()> space_cb_;

  std::deque<Segment> segments_;  // front = snd_una_
  std::int64_t snd_una_ = 0;
  std::int64_t snd_nxt_ = 0;
  std::int64_t snd_max_ = 0;

  double cwnd_;
  double ssthresh_;
  std::uint32_t dupacks_ = 0;
  bool in_recovery_ = false;
  std::int64_t recover_ = 0;

  // Jacobson/Karn estimator state (seconds).
  bool rtt_valid_ = false;
  double srtt_s_ = 0.0;
  double rttvar_s_ = 0.0;
  std::uint32_t backoff_ = 1;
  bool timing_ = false;
  std::int64_t rtt_seq_ = -1;
  SimTime rtt_ts_ = SimTime::zero();
  EventHandle rtx_timer_;

  Rng jitter_rng_;
  SimTime last_emission_ = SimTime::zero();  // keeps jittered sends FIFO
  // Jitter-delayed packets waiting for their armed head to fire;
  // `emissions_head_` is the ring's pop cursor.
  std::vector<PendingEmission> emissions_;
  std::size_t emissions_head_ = 0;
  std::uint32_t emit_port_id_ = 0;

  TcpSenderStats stats_;

  obs::Counter* m_data_sent_ = nullptr;
  obs::Counter* m_retransmissions_ = nullptr;
  obs::Counter* m_timeouts_ = nullptr;
  obs::Counter* m_fast_retransmits_ = nullptr;
  obs::Counter* m_acks_ = nullptr;
  obs::Histogram* m_ack_interarrival_ = nullptr;
  SimTime last_ack_at_ = SimTime::zero();
  bool seen_ack_ = false;
  obs::EventLog* event_log_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  obs::TimeSeriesChannel* ts_cwnd_ = nullptr;
  obs::TimeSeriesChannel* ts_srtt_ = nullptr;
};

}  // namespace dmp
