// Convenience wiring of a RenoSender + TcpSink pair across a NetworkPath.
#pragma once

#include <memory>

#include "net/path_interface.hpp"
#include "tcp/reno_sender.hpp"
#include "tcp/sink.hpp"

namespace dmp {

struct TcpConnection {
  std::unique_ptr<RenoSender> sender;
  std::unique_ptr<TcpSink> sink;
};

// Creates a connection whose data flows forward over `path` and whose ACKs
// return on the reverse direction.  The flow id must be unique per path.
TcpConnection make_connection(Scheduler& sched, FlowId flow,
                              NetworkPath& path, const TcpConfig& config);

}  // namespace dmp
