#include "tcp/reno_sender.hpp"

#include <algorithm>
#include <cmath>

namespace dmp {

RenoSender::RenoSender(Scheduler& sched, FlowId flow, TcpConfig config,
                       PacketHandler network_out)
    : sched_(sched),
      flow_(flow),
      config_(config),
      out_(std::move(network_out)),
      cwnd_(config.initial_cwnd),
      ssthresh_(config.initial_ssthresh),
      jitter_rng_(config.jitter_seed ^ (0xD1B54A32D192ED03ULL * (flow + 1))) {
  emit_port_id_ =
      sched_.register_port(&RenoSender::emit_port, this, EventCategory::kTcpSend);
}

std::size_t RenoSender::space() const {
  const std::size_t used = segments_.size();
  return used >= config_.send_buffer_packets
             ? 0
             : config_.send_buffer_packets - used;
}

bool RenoSender::enqueue(std::int64_t app_tag) {
  if (space() == 0) return false;
  segments_.push_back(Segment{app_tag, 0});
  if (flight_ && app_tag >= 0) {
    obs::FlightEvent e;
    e.t_ns = sched_.now().ns();
    e.kind = obs::FlightEventKind::kTcpEnqueue;
    e.packet = app_tag;
    e.path = static_cast<std::int32_t>(flow_);
    e.seq = enq_end() - 1;
    e.queue = static_cast<std::int64_t>(segments_.size());
    flight_->record(e);
  }
  try_send();
  return true;
}

void RenoSender::try_send() {
  const auto win =
      static_cast<std::int64_t>(std::min(cwnd_, config_.max_cwnd));
  while (snd_nxt_ < snd_una_ + win && snd_nxt_ < enq_end()) {
    emit(snd_nxt_);
    ++snd_nxt_;
  }
}

void RenoSender::emit(std::int64_t seq) {
  Segment& s = seg(seq);
  ++s.times_sent;
  s.last_sent = sched_.now();
  if (s.times_sent == 1) {
    ++stats_.data_packets_sent;
    if (m_data_sent_) m_data_sent_->inc();
    snd_max_ = std::max(snd_max_, seq + 1);
    if (!timing_) {
      timing_ = true;
      rtt_seq_ = seq;
      rtt_ts_ = sched_.now();
    }
  } else {
    ++stats_.retransmissions;
    if (m_retransmissions_) m_retransmissions_->inc();
    // Karn: never sample a segment that has been retransmitted.
    if (timing_ && seq == rtt_seq_) timing_ = false;
  }
  if (flight_ && s.app_tag >= 0) {
    obs::FlightEvent e;
    e.t_ns = sched_.now().ns();
    e.kind = obs::FlightEventKind::kTcpSend;
    e.packet = s.app_tag;
    e.path = static_cast<std::int32_t>(flow_);
    e.seq = seq;
    e.attempt = s.times_sent;
    // Retransmissions from fast recovery carry kFastRtx; go-back-N resends
    // after a timeout (in_recovery_ already cleared) carry kRtoRtx.
    if (s.times_sent > 1) {
      e.reason = in_recovery_ ? obs::RtxReason::kFastRtx
                              : obs::RtxReason::kRtoRtx;
    }
    e.cwnd = cwnd_;
    e.ssthresh = ssthresh_;
    flight_->record(e);
  }

  Packet p;
  p.flow = flow_;
  p.kind = PacketKind::kData;
  p.seq = seq;
  p.size_bytes = config_.mss_bytes;
  p.app_tag = s.app_tag;
  // Diagnostic timestamp, only consumed by trace tooling — skip the write
  // on uninstrumented hot paths.
  if (flight_) p.injected = sched_.now();
  transmit(p);

  if (!rtx_timer_.pending()) arm_rto();
}

void RenoSender::transmit(const Packet& p) {
  if (config_.send_overhead_s <= 0.0) {
    out_(p);
    return;
  }
  // Random processing delay, kept FIFO so the jitter never reorders the
  // sender's own segments.  `when` is strictly increasing, so the pending
  // ring stays sorted: claim the (when, seq) key now, park the packet, and
  // keep exactly one armed head in the event queue.
  const SimTime jitter =
      SimTime::seconds(jitter_rng_.uniform(0.0, config_.send_overhead_s));
  SimTime when = sched_.now() + jitter;
  if (when <= last_emission_) when = last_emission_ + SimTime::nanos(1);
  last_emission_ = when;
  const Scheduler::Deferred d = sched_.defer_at(when);
  const bool was_empty = emissions_head_ == emissions_.size();
  emissions_.push_back(PendingEmission{d.when, d.seq, p});
  if (was_empty) sched_.arm_deferred(d, emit_port_id_);
}

void RenoSender::on_emit() {
  // Pop the ring head, re-arm the successor (its key was claimed when it
  // was scheduled, so arming order cannot disturb pop order), then hand the
  // packet to the network.
  const PendingEmission head = emissions_[emissions_head_++];
  if (emissions_head_ < emissions_.size()) {
    const PendingEmission& next = emissions_[emissions_head_];
    sched_.arm_deferred(Scheduler::Deferred{next.when, next.seq},
                        emit_port_id_);
  } else {
    emissions_.clear();
    emissions_head_ = 0;
  }
  out_(head.p);
}

SimTime RenoSender::current_rto() const {
  // RFC 6298 backstop of 1s is deliberately not applied below min_rto so the
  // Table-1 configurations reproduce the paper's TO = R_TO/R range of 1.6-3.3.
  double rto_s = rtt_valid_ ? srtt_s_ + 4.0 * rttvar_s_
                            : 3.0;  // conservative pre-sample default
  rto_s = std::max(rto_s, config_.min_rto.to_seconds());
  rto_s = std::min(rto_s * backoff_, config_.max_rto.to_seconds());
  return SimTime::seconds(rto_s);
}

void RenoSender::arm_rto() {
  rtx_timer_.cancel();
  rtx_timer_ = sched_.schedule_after(current_rto(), [this] { on_rto(); },
                                     EventCategory::kTcpTimer);
}

void RenoSender::rtt_sample(SimTime sample) {
  const double m = sample.to_seconds();
  if (!rtt_valid_) {
    srtt_s_ = m;
    rttvar_s_ = m / 2.0;
    rtt_valid_ = true;
  } else {
    rttvar_s_ = 0.75 * rttvar_s_ + 0.25 * std::abs(srtt_s_ - m);
    srtt_s_ = 0.875 * srtt_s_ + 0.125 * m;
  }
  backoff_ = 1;  // Karn: backoff cleared only on a valid sample
  stats_.rtt_sample_sum_s += m;
  ++stats_.rtt_sample_count;
  stats_.rto_sample_sum_s +=
      std::max(srtt_s_ + 4.0 * rttvar_s_, config_.min_rto.to_seconds());
  ++stats_.rto_sample_count;
}

void RenoSender::open_cwnd(std::int64_t newly_acked) {
  const bool was_slow_start = cwnd_ < ssthresh_;
  if (was_slow_start) {
    // Slow start: one segment per ACK event; delayed ACKs naturally slow
    // the doubling to ~1.5x per RTT, as in real stacks.
    cwnd_ += 1.0;
  } else {
    cwnd_ += static_cast<double>(newly_acked) / cwnd_;
  }
  cwnd_ = std::min(cwnd_, config_.max_cwnd);
  if (was_slow_start && cwnd_ >= ssthresh_ && event_log_ &&
      event_log_->enabled(obs::Severity::kInfo)) {
    event_log_->record(sched_.now().to_seconds(), obs::Severity::kInfo,
                       "ss_to_ca",
                       {obs::EventField::num("flow", flow_),
                        obs::EventField::num("cwnd", cwnd_),
                        obs::EventField::num("ssthresh", ssthresh_)});
  }
}

void RenoSender::on_ack(const Packet& ack) {
  ++stats_.acks_received;
  if (m_acks_) {
    m_acks_->inc();
    if (seen_ack_) {
      m_ack_interarrival_->observe((sched_.now() - last_ack_at_).to_seconds());
    }
    seen_ack_ = true;
    last_ack_at_ = sched_.now();
  }
  if (ts_cwnd_) ts_cwnd_->add(sched_.now(), cwnd_);
  if (ts_srtt_ && rtt_valid_) ts_srtt_->add(sched_.now(), srtt_s_);
  const std::int64_t ackno = std::min(ack.seq, snd_max_);

  if (ackno > snd_una_) {
    const std::int64_t newly_acked = ackno - snd_una_;
    if (timing_ && ackno > rtt_seq_) {
      rtt_sample(sched_.now() - rtt_ts_);
      timing_ = false;
    }
    for (std::int64_t i = 0; i < newly_acked; ++i) segments_.pop_front();
    snd_una_ = ackno;
    snd_nxt_ = std::max(snd_nxt_, snd_una_);

    if (in_recovery_) {
      // Classic Reno: deflate to ssthresh and resume congestion avoidance
      // on the first ACK that advances snd_una (partial or full).
      cwnd_ = std::max(ssthresh_, 1.0);
      in_recovery_ = false;
    } else {
      open_cwnd(newly_acked);
    }
    dupacks_ = 0;

    if (snd_una_ == snd_max_) {
      rtx_timer_.cancel();
    } else {
      arm_rto();
    }
    try_send();
    if (space_cb_ && space() > 0) space_cb_();
    return;
  }

  if (ackno == snd_una_ && snd_max_ > snd_una_) {
    ++dupacks_;
    if (!in_recovery_ && dupacks_ == 3) {
      enter_fast_recovery();
    } else if (in_recovery_) {
      cwnd_ = std::min(cwnd_ + 1.0, config_.max_cwnd);  // window inflation
      try_send();
    }
  }
}

void RenoSender::enter_fast_recovery() {
  ++stats_.fast_retransmits;
  if (m_fast_retransmits_) m_fast_retransmits_->inc();
  if (event_log_ && event_log_->enabled(obs::Severity::kInfo)) {
    event_log_->record(sched_.now().to_seconds(), obs::Severity::kInfo,
                       "fast_retransmit",
                       {obs::EventField::num("flow", flow_),
                        obs::EventField::num("seq", snd_una_),
                        obs::EventField::num("cwnd", cwnd_)});
  }
  ssthresh_ = std::max(std::floor(cwnd_ / 2.0), 2.0);
  cwnd_ = ssthresh_ + 3.0;
  in_recovery_ = true;
  recover_ = snd_max_;
  emit(snd_una_);
  arm_rto();
}

void RenoSender::on_rto() {
  if (segments_.empty()) return;  // raced with a final ACK

  if (backoff_ == 1) {
    stats_.rto_at_timeout_sum_s += current_rto().to_seconds();
    ++stats_.rto_at_timeout_count;
  }
  ++stats_.timeouts;
  if (m_timeouts_) m_timeouts_->inc();
  if (event_log_ && event_log_->enabled(obs::Severity::kWarn)) {
    event_log_->record(sched_.now().to_seconds(), obs::Severity::kWarn, "rto",
                       {obs::EventField::num("flow", flow_),
                        obs::EventField::num("snd_una", snd_una_),
                        obs::EventField::num("cwnd", cwnd_),
                        obs::EventField::num("backoff", backoff_),
                        obs::EventField::num("rto_s",
                                             current_rto().to_seconds())});
  }
  if (flight_) {
    // Flow-level stall marker with the pre-collapse window; the packet at
    // snd_una is the one the timeout fired for.
    obs::FlightEvent e;
    e.t_ns = sched_.now().ns();
    e.kind = obs::FlightEventKind::kRto;
    e.packet = segments_.front().app_tag;
    e.path = static_cast<std::int32_t>(flow_);
    e.seq = snd_una_;
    e.cwnd = cwnd_;
    e.ssthresh = ssthresh_;
    flight_->record(e);
  }

  ssthresh_ = std::max(std::floor(cwnd_ / 2.0), 2.0);
  cwnd_ = 1.0;
  dupacks_ = 0;
  in_recovery_ = false;
  backoff_ = std::min(backoff_ * 2, 64u);
  timing_ = false;
  snd_nxt_ = snd_una_;  // go-back-N
  arm_rto();
  try_send();
}

void RenoSender::attach_metrics(obs::MetricsRegistry& registry,
                                const std::string& prefix) {
  m_data_sent_ = &registry.counter(prefix + ".data_packets_sent");
  m_retransmissions_ = &registry.counter(prefix + ".retransmissions");
  m_timeouts_ = &registry.counter(prefix + ".timeouts");
  m_fast_retransmits_ = &registry.counter(prefix + ".fast_retransmits");
  m_acks_ = &registry.counter(prefix + ".acks_received");
  m_ack_interarrival_ = &registry.histogram(prefix + ".ack_interarrival_s");
  registry.gauge(prefix + ".cwnd").set_sampler([this] { return cwnd_; });
  registry.gauge(prefix + ".ssthresh").set_sampler([this] {
    return ssthresh_;
  });
  registry.gauge(prefix + ".srtt_s").set_sampler([this] { return srtt_s_; });
  registry.gauge(prefix + ".rto_s").set_sampler([this] {
    return current_rto().to_seconds();
  });
  registry.gauge(prefix + ".buffered").set_sampler([this] {
    return static_cast<double>(segments_.size());
  });
}

std::vector<std::int64_t> RenoSender::reclaim_unsent() {
  // Never-transmitted segments are exactly those past max(snd_max_,
  // snd_nxt_): snd_max_ is the highest sequence ever emitted (+1) and
  // snd_nxt_ can only exceed it transiently inside try_send.  Popping from
  // the back cannot disturb snd_una_-relative indexing of the rest.
  std::vector<std::int64_t> tags;
  const std::int64_t sent_end = std::max(snd_max_, snd_nxt_);
  while (enq_end() > sent_end) {
    tags.push_back(segments_.back().app_tag);
    segments_.pop_back();
  }
  std::reverse(tags.begin(), tags.end());
  return tags;
}

void RenoSender::idle_restart() {
  cwnd_ = std::min(cwnd_, config_.initial_cwnd);
  dupacks_ = 0;
  in_recovery_ = false;
}

}  // namespace dmp
