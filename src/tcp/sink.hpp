// TCP receiver: reassembles segments, delivers app packets in order, and
// generates cumulative ACKs with the standard delayed-ACK policy (ack every
// second segment or after 100 ms; immediate duplicate ACKs on out-of-order
// arrivals; immediate ACK when a retransmission fills a gap).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "net/packet.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/time_series.hpp"
#include "sim/scheduler.hpp"
#include "tcp/tcp_config.hpp"

namespace dmp {

class TcpSink {
 public:
  // `deliver` receives (app_tag, arrival_time) for each segment the moment
  // TCP releases it in order to the application.
  using DeliverFn = std::function<void(std::int64_t app_tag, SimTime when)>;

  TcpSink(Scheduler& sched, FlowId flow, TcpConfig config,
          PacketHandler ack_out);

  void set_deliver_callback(DeliverFn fn) { deliver_ = std::move(fn); }
  void on_data(const Packet& p);

  std::int64_t rcv_nxt() const { return rcv_nxt_; }
  std::uint64_t segments_received() const { return segments_received_; }
  std::uint64_t duplicate_segments() const { return duplicate_segments_; }
  std::uint64_t out_of_order_segments() const { return out_of_order_segments_; }

  // Registers `<prefix>.{segments_received,duplicate_segments,
  // out_of_order_segments}` counters and a `<prefix>.reorder_buffer`
  // sampler gauge.  Optional; a no-op when never called.
  void attach_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix);

  // Records per-stream-packet receiver span events: segment arrival
  // (kSinkRx, possibly out of order) and in-order cumulative-ACK release
  // (kDeliver).  The gap between the two is reorder-buffer (head-of-line)
  // wait.  Optional; a no-op when never called.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    flight_ = recorder;
  }

  // Windowed reorder-buffer occupancy (head-of-line depth), sampled on
  // every arrival.  May be null.
  void set_telemetry(obs::TimeSeriesChannel* reorder_depth) {
    ts_reorder_ = reorder_depth;
  }

 private:
  void send_ack();
  void schedule_delack();
  void record_flight(obs::FlightEventKind kind, std::int64_t app_tag,
                     std::int64_t seq);

  Scheduler& sched_;
  FlowId flow_;
  TcpConfig config_;
  PacketHandler ack_out_;
  DeliverFn deliver_;

  std::int64_t rcv_nxt_ = 0;
  std::map<std::int64_t, std::int64_t> reorder_buffer_;  // seq -> app_tag
  bool ack_pending_ = false;
  EventHandle delack_timer_;

  std::uint64_t segments_received_ = 0;
  std::uint64_t duplicate_segments_ = 0;
  std::uint64_t out_of_order_segments_ = 0;

  obs::Counter* m_received_ = nullptr;
  obs::Counter* m_duplicates_ = nullptr;
  obs::Counter* m_out_of_order_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  obs::TimeSeriesChannel* ts_reorder_ = nullptr;
};

}  // namespace dmp
