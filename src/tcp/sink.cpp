#include "tcp/sink.hpp"

namespace dmp {

TcpSink::TcpSink(Scheduler& sched, FlowId flow, TcpConfig config,
                 PacketHandler ack_out)
    : sched_(sched), flow_(flow), config_(config), ack_out_(std::move(ack_out)) {}

void TcpSink::attach_metrics(obs::MetricsRegistry& registry,
                             const std::string& prefix) {
  m_received_ = &registry.counter(prefix + ".segments_received");
  m_duplicates_ = &registry.counter(prefix + ".duplicate_segments");
  m_out_of_order_ = &registry.counter(prefix + ".out_of_order_segments");
  registry.gauge(prefix + ".reorder_buffer").set_sampler([this] {
    return static_cast<double>(reorder_buffer_.size());
  });
}

void TcpSink::record_flight(obs::FlightEventKind kind, std::int64_t app_tag,
                            std::int64_t seq) {
  obs::FlightEvent e;
  e.t_ns = sched_.now().ns();
  e.kind = kind;
  e.packet = app_tag;
  e.path = static_cast<std::int32_t>(flow_);
  e.seq = seq;
  e.queue = static_cast<std::int64_t>(reorder_buffer_.size());
  flight_->record(e);
}

void TcpSink::on_data(const Packet& p) {
  ++segments_received_;
  if (m_received_) m_received_->inc();
  if (ts_reorder_) {
    ts_reorder_->add(sched_.now(),
                     static_cast<double>(reorder_buffer_.size()));
  }
  if (flight_ && p.app_tag >= 0) {
    record_flight(obs::FlightEventKind::kSinkRx, p.app_tag, p.seq);
  }

  if (p.seq == rcv_nxt_) {
    const bool filled_gap = !reorder_buffer_.empty();
    if (flight_ && p.app_tag >= 0) {
      record_flight(obs::FlightEventKind::kDeliver, p.app_tag, p.seq);
    }
    if (deliver_) deliver_(p.app_tag, sched_.now());
    ++rcv_nxt_;
    // Release any buffered segments that are now in order.
    auto it = reorder_buffer_.begin();
    while (it != reorder_buffer_.end() && it->first == rcv_nxt_) {
      if (flight_ && it->second >= 0) {
        record_flight(obs::FlightEventKind::kDeliver, it->second, it->first);
      }
      if (deliver_) deliver_(it->second, sched_.now());
      ++rcv_nxt_;
      it = reorder_buffer_.erase(it);
    }

    if (!config_.delayed_ack || filled_gap) {
      send_ack();
    } else if (ack_pending_) {
      send_ack();  // every second in-order segment
    } else {
      ack_pending_ = true;
      schedule_delack();
    }
    return;
  }

  if (p.seq > rcv_nxt_) {
    ++out_of_order_segments_;
    if (m_out_of_order_) m_out_of_order_->inc();
    reorder_buffer_.emplace(p.seq, p.app_tag);
    send_ack();  // duplicate ACK, immediately
    return;
  }

  // Segment below rcv_nxt_: spurious retransmission.
  ++duplicate_segments_;
  if (m_duplicates_) m_duplicates_->inc();
  send_ack();
}

void TcpSink::send_ack() {
  ack_pending_ = false;
  delack_timer_.cancel();
  Packet ack;
  ack.flow = flow_;
  ack.kind = PacketKind::kAck;
  ack.seq = rcv_nxt_;
  ack.size_bytes = kAckPacketBytes;
  // Diagnostic timestamp, only consumed by trace tooling — skip the write
  // on uninstrumented hot paths.
  if (flight_) ack.injected = sched_.now();
  ack_out_(ack);
}

void TcpSink::schedule_delack() {
  delack_timer_.cancel();
  delack_timer_ = sched_.schedule_after(config_.delack_timeout, [this] {
    if (ack_pending_) send_ack();
  }, EventCategory::kTcpTimer);
}

}  // namespace dmp
