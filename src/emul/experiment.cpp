#include "emul/experiment.hpp"

#include <memory>
#include <stdexcept>

#include "stream/dmp_server.hpp"
#include "tcp/connection.hpp"

namespace dmp::emul {

// The binding constraint on these profiles is loss+RTT, not the access
// rate: the model's achievable-throughput process has no rate-cap concept
// (neither does the paper's), so cap-limited paths would be invisible to
// it.  Loss-limited profiles keep measurement and model comparable.
WanPathConfig adsl_slow_profile() {
  WanPathConfig config;
  config.bandwidth_bps = 1.0e6;
  config.buffer_packets = 40;
  config.base_owd_s = 0.150;  // cross-country + DSL interleaving latency
  config.jitter_mean_s = 0.005;
  config.loss_good = 0.025;
  config.loss_bad = 0.045;  // mild modulation: near-stationary loss
  config.mean_good_s = 30.0;
  config.mean_bad_s = 4.0;
  return config;
}

WanPathConfig adsl_fast_profile() {
  WanPathConfig config = adsl_slow_profile();
  config.bandwidth_bps = 2.0e6;
  config.buffer_packets = 60;
  config.base_owd_s = 0.085;
  config.loss_good = 0.015;
  config.loss_bad = 0.030;
  return config;
}

WanPathConfig transpacific_path_profile() {
  WanPathConfig config;
  config.bandwidth_bps = 3.0e6;
  config.buffer_packets = 80;
  config.base_owd_s = 0.110;  // UConn <-> Hefei
  config.jitter_mean_s = 0.008;
  config.loss_good = 0.003;
  config.loss_bad = 0.008;
  config.mean_good_s = 25.0;
  config.mean_bad_s = 4.0;
  return config;
}

InternetExperimentResult run_internet_experiment(
    const InternetExperimentConfig& config) {
  if (config.paths.empty()) {
    throw std::invalid_argument{"need at least one WAN path"};
  }
  Scheduler sched;
  Rng rng(config.seed);

  std::vector<std::unique_ptr<WanPath>> paths;
  for (const auto& pc : config.paths) {
    paths.push_back(std::make_unique<WanPath>(sched, pc, rng.fork()));
  }

  TcpConfig tcp = config.tcp;
  if (tcp.send_overhead_s == 0.0) {
    tcp.send_overhead_s = 0.0005;
    tcp.jitter_seed = rng.next_u64();
  }
  std::vector<TcpConnection> flows;
  std::vector<RenoSender*> senders;
  StreamTrace trace(config.mu_pps);
  for (std::size_t k = 0; k < paths.size(); ++k) {
    flows.push_back(
        make_connection(sched, static_cast<FlowId>(k), *paths[k], tcp));
    senders.push_back(flows.back().sender.get());
    const auto path32 = static_cast<std::uint32_t>(k);
    flows[k].sink->set_deliver_callback(
        [&trace, path32, &sched](std::int64_t tag, SimTime) {
          if (tag >= 0) trace.record(tag, sched.now(), path32);
        });
  }

  DmpStreamingServer server(sched, config.mu_pps, senders, SimTime::zero(),
                            SimTime::seconds(config.duration_s));
  sched.run_until(SimTime::seconds(config.duration_s + config.drain_s));

  InternetExperimentResult result;
  result.packets_generated = server.packets_generated();
  const auto split = trace.path_split(paths.size());
  for (std::size_t k = 0; k < paths.size(); ++k) {
    PathMeasurement m;
    const auto counters = paths[k]->flow_counters(static_cast<FlowId>(k));
    m.loss_rate = counters.arrivals == 0
                      ? 0.0
                      : static_cast<double>(counters.drops) /
                            static_cast<double>(counters.arrivals);
    m.rtt_s = flows[k].sender->stats().mean_rtt_s();
    m.to_ratio = flows[k].sender->stats().normalized_timeout();
    m.share = split[k];
    m.tcp = flows[k].sender->stats();
    result.paths.push_back(m);
  }
  result.trace = std::move(trace);
  return result;
}

}  // namespace dmp::emul
