#include "emul/wan_path.hpp"

namespace dmp::emul {

WanPath::WanPath(Scheduler& sched, WanPathConfig config, Rng rng)
    : sched_(sched), config_(config), rng_(rng) {
  access_ = std::make_unique<Link>(
      sched_, LinkConfig{config.bandwidth_bps, SimTime::seconds(config.base_owd_s),
                         config.buffer_packets});
  access_->set_receiver([this](const Packet& p) { deliver_with_jitter(p); });

  reverse_ = std::make_unique<Link>(
      sched_,
      LinkConfig{100e6, SimTime::seconds(config.base_owd_s), 0});
  reverse_->set_receiver(rev_demux_.as_handler());

  state_entered_ = sched_.now();
  next_toggle_ =
      sched_.now() + SimTime::seconds(rng_.exponential(config_.mean_good_s));
}

void WanPath::advance_loss_state() {
  while (next_toggle_ <= sched_.now()) {
    if (bad_) bad_time_ += next_toggle_ - state_entered_;
    bad_ = !bad_;
    state_entered_ = next_toggle_;
    const double mean = bad_ ? config_.mean_bad_s : config_.mean_good_s;
    next_toggle_ += SimTime::seconds(rng_.exponential(mean));
  }
}

bool WanPath::in_bad_state() {
  advance_loss_state();
  return bad_;
}

double WanPath::time_fraction_bad() {
  advance_loss_state();
  SimTime total_bad = bad_time_;
  if (bad_) total_bad += sched_.now() - state_entered_;
  const double elapsed = sched_.now().to_seconds();
  return elapsed > 0.0 ? total_bad.to_seconds() / elapsed : 0.0;
}

void WanPath::inject(const Packet& p) {
  advance_loss_state();
  auto& counters = random_drops_[p.flow];
  ++counters.arrivals;
  const double loss = bad_ ? config_.loss_bad : config_.loss_good;
  if (rng_.chance(loss)) {
    ++counters.drops;
    return;
  }
  access_->send(p);
}

void WanPath::deliver_with_jitter(const Packet& p) {
  SimTime when =
      sched_.now() + SimTime::seconds(rng_.exponential(config_.jitter_mean_s));
  // Do not reorder within the path: Internet reordering is rare and the
  // paper's out-of-order effects come from the multipath split, not from
  // per-path reordering.
  if (when <= last_delivery_) when = last_delivery_ + SimTime::nanos(1);
  last_delivery_ = when;
  sched_.post_at(when, [this, p] { fwd_demux_.deliver(p); },
                 EventCategory::kLinkDelivery);
}

PacketHandler WanPath::attach_source(FlowId) {
  return [this](const Packet& p) { inject(p); };
}

void WanPath::register_sink(FlowId flow, PacketHandler handler) {
  fwd_demux_.register_flow(flow, std::move(handler));
}

PacketHandler WanPath::attach_reverse_source(FlowId) {
  return [this](const Packet& p) { reverse_->send(p); };
}

void WanPath::register_reverse_sink(FlowId flow, PacketHandler handler) {
  rev_demux_.register_flow(flow, std::move(handler));
}

LinkFlowCounters WanPath::flow_counters(FlowId flow) const {
  LinkFlowCounters total;
  const auto it = random_drops_.find(flow);
  if (it != random_drops_.end()) total = it->second;
  const auto buffered = access_->flow_counters(flow);
  // Arrivals are counted at injection; add only the buffer's drops.
  total.drops += buffered.drops;
  return total;
}

}  // namespace dmp::emul
