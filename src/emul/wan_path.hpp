// Stochastic WAN path emulation — the substitute for the paper's Section-6
// PlanetLab/ADSL Internet experiments (no Internet vantage points here).
//
// What the Internet experiments contribute to the paper is validation on
// paths whose loss and delay are *not* the clean drop-tail process of the
// ns topology: loss arrives in quality epochs, delay jitters, and the
// parameters fed to the model are estimated from traces.  The emulator
// reproduces exactly those properties:
//
//   * an access-rate limit with a drop-tail buffer (ADSL-like),
//   * base one-way propagation plus exponential FIFO-preserving jitter,
//   * Gilbert-Elliott random loss: a hidden good/bad process modulates the
//     per-packet drop probability on the timescale of seconds.
//
// Flow-level counters expose drops/arrivals so the experiment harness can
// estimate p the way tcpdump post-processing did.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/demux.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/path_interface.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace dmp::emul {

struct WanPathConfig {
  double bandwidth_bps = 2.0e6;     // access-link rate (ADSL-like)
  std::size_t buffer_packets = 60;  // access drop-tail buffer
  double base_owd_s = 0.030;        // one-way propagation delay
  double jitter_mean_s = 0.002;     // exponential extra delay (FIFO kept)
  // Gilbert-Elliott loss modulation.
  double loss_good = 0.004;
  double loss_bad = 0.05;
  double mean_good_s = 30.0;
  double mean_bad_s = 5.0;
  // Reverse direction: ACKs see the same propagation, no loss, high rate.
};

class WanPath final : public NetworkPath {
 public:
  WanPath(Scheduler& sched, WanPathConfig config, Rng rng);

  PacketHandler attach_source(FlowId flow) override;
  void register_sink(FlowId flow, PacketHandler handler) override;
  PacketHandler attach_reverse_source(FlowId flow) override;
  void register_reverse_sink(FlowId flow, PacketHandler handler) override;

  // tcpdump-equivalent per-flow accounting (random drops + buffer drops).
  LinkFlowCounters flow_counters(FlowId flow) const;
  // Advances the loss process to the current simulation time and reports.
  bool in_bad_state();
  double time_fraction_bad();

 private:
  void inject(const Packet& p);
  void deliver_with_jitter(const Packet& p);
  // The good/bad process is sampled lazily: no scheduler events, so the
  // path never keeps an idle simulation alive.
  void advance_loss_state();

  Scheduler& sched_;
  WanPathConfig config_;
  Rng rng_;

  std::unique_ptr<Link> access_;   // rate limit + buffer + base delay
  FlowDemux fwd_demux_;
  std::unique_ptr<Link> reverse_;  // uncongested return path
  FlowDemux rev_demux_;

  bool bad_ = false;
  SimTime state_entered_ = SimTime::zero();
  SimTime next_toggle_ = SimTime::zero();
  SimTime bad_time_ = SimTime::zero();
  SimTime last_delivery_ = SimTime::zero();  // FIFO-preserving jitter

  std::unordered_map<FlowId, LinkFlowCounters> random_drops_;
};

}  // namespace dmp::emul
