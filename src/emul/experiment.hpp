// The Section-6 "Internet experiment" harness over emulated WAN paths:
// stream a CBR video with DMP over K stochastic paths, capture the client
// trace, and estimate each path's (p, R, TO) from the run the way the
// paper post-processed tcpdump captures.
#pragma once

#include <cstdint>
#include <vector>

#include "emul/wan_path.hpp"
#include "stream/session.hpp"
#include "stream/trace.hpp"

namespace dmp::emul {

// WAN streaming keeps a smaller send buffer than the simulator default: a
// deep buffer strands up to its whole contents behind a path's bad epoch
// (head-of-line blocking the model cannot see), and the real implementation
// shrinks SO_SNDBUF for the same reason.
inline TcpConfig wan_video_tcp() {
  TcpConfig t = default_video_tcp();
  t.send_buffer_packets = 32;
  return t;
}

struct InternetExperimentConfig {
  std::vector<WanPathConfig> paths;  // one per TCP flow (K >= 1)
  double mu_pps = 50.0;
  double duration_s = 3000.0;
  double drain_s = 60.0;
  std::uint64_t seed = 1;
  TcpConfig tcp = wan_video_tcp();
};

struct InternetExperimentResult {
  StreamTrace trace;
  std::vector<PathMeasurement> paths;
  std::int64_t packets_generated = 0;

  InternetExperimentResult() : trace(1.0) {}
};

InternetExperimentResult run_internet_experiment(
    const InternetExperimentConfig& config);

// Preset path profiles used by the Fig.-7 reproduction.  The paper's
// Internet paths were tight for the playback rates it chose (its measured
// late fractions span 1e-4..0.2); these profiles put sigma_a/mu in the
// same 1.1-1.7 regime.
// A slow ADSL-like access path, suited to the mu = 25 pkts/s experiments.
WanPathConfig adsl_slow_profile();
// A faster ADSL-like access path, suited to mu = 50 pkts/s.
WanPathConfig adsl_fast_profile();
// A long transpacific path (the paper's Hefei node), paired with an ADSL
// path for the heterogeneous mu = 100 pkts/s experiments.
WanPathConfig transpacific_path_profile();

}  // namespace dmp::emul
