#include "apps/background.hpp"

#include <stdexcept>

namespace dmp {

PathConfig table1_config(int id) {
  // | Config | FTP | HTTP | prop delay | bandwidth | buffer |
  // |   1    |  9  |  40  |   40 ms    |  3.7 Mbps |   50   |
  // |   2    |  9  |  40  |    1 ms    |  3.7 Mbps |   50   |
  // |   3    | 19  |  40  |   40 ms    |  5.0 Mbps |   50   |
  // |   4    |  5  |  20  |    1 ms    |  5.0 Mbps |   30   |
  PathConfig config;
  config.id = id;
  switch (id) {
    case 1:
      config.ftp_flows = 9;
      config.http_flows = 40;
      config.prop_delay = SimTime::millis(40);
      config.bandwidth_bps = 3.7e6;
      config.buffer_packets = 50;
      break;
    case 2:
      config.ftp_flows = 9;
      config.http_flows = 40;
      config.prop_delay = SimTime::millis(1);
      config.bandwidth_bps = 3.7e6;
      config.buffer_packets = 50;
      config.http.mean_think_time_s = 1.2;  // busier web users -> higher p
      break;
    case 3:
      config.ftp_flows = 19;
      config.http_flows = 40;
      config.prop_delay = SimTime::millis(40);
      config.bandwidth_bps = 5.0e6;
      config.buffer_packets = 50;
      break;
    case 4:
      config.ftp_flows = 5;
      config.http_flows = 20;
      config.prop_delay = SimTime::millis(1);
      config.bandwidth_bps = 5.0e6;
      config.buffer_packets = 30;
      config.http.mean_think_time_s = 0.4;  // few FTPs: HTTP supplies the load
      break;
    default:
      throw std::invalid_argument{"Table-1 config id must be 1..4"};
  }
  return config;
}

BackgroundTraffic::BackgroundTraffic(Scheduler& sched, DumbbellPath& path,
                                     const PathConfig& config,
                                     FlowId first_flow_id, Rng rng)
    : next_flow_id_(first_flow_id) {
  TcpConfig tcp;
  // ns-2-era defaults: window_ = 20 packets.  Bounding the backlogged
  // flows' windows keeps the bottleneck queue from sitting pinned at
  // capacity, matching the queueing delays the paper reports.
  tcp.max_cwnd = 20.0;
  tcp.initial_ssthresh = 20.0;
  // Small random send overhead so the deterministic flow population does
  // not phase-lock on the shared drop-tail queue.
  tcp.send_overhead_s = 0.0005;
  tcp.jitter_seed = rng.next_u64();
  for (std::size_t i = 0; i < config.ftp_flows; ++i) {
    connections_.push_back(make_connection(sched, next_flow_id_++, path, tcp));
    ftp_.push_back(std::make_unique<FtpSource>(*connections_.back().sender));
  }
  for (std::size_t i = 0; i < config.http_flows; ++i) {
    connections_.push_back(make_connection(sched, next_flow_id_++, path, tcp));
    http_.push_back(std::make_unique<HttpSource>(
        sched, *connections_.back().sender, config.http, rng.fork()));
  }
}

}  // namespace dmp
