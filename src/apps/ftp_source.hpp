// Backlogged FTP source: keeps its TCP sender's buffer permanently full,
// so the connection always transmits at its achievable throughput.
#pragma once

#include "tcp/reno_sender.hpp"

namespace dmp {

class FtpSource {
 public:
  explicit FtpSource(RenoSender& sender);

  std::uint64_t packets_offered() const { return offered_; }

 private:
  void fill();

  RenoSender& sender_;
  std::uint64_t offered_ = 0;
};

}  // namespace dmp
