#include "apps/http_source.hpp"

#include <cmath>

namespace dmp {

HttpSource::HttpSource(Scheduler& sched, RenoSender& sender,
                       HttpSourceConfig config, Rng rng)
    : sched_(sched), sender_(sender), config_(config), rng_(rng) {
  sender_.set_space_callback([this] { feed(); });
  const double jitter = rng_.uniform(0.0, config_.start_jitter_s);
  sched_.post_after(SimTime::seconds(jitter), [this] { start_transfer(); },
                    EventCategory::kSource);
}

void HttpSource::start_transfer() {
  remaining_ = static_cast<std::int64_t>(
      std::ceil(rng_.pareto(config_.pareto_shape, config_.min_object_packets,
                            config_.max_object_packets)));
  transferring_ = true;
  sender_.idle_restart();
  feed();
}

void HttpSource::feed() {
  if (!transferring_) return;
  while (remaining_ > 0 && sender_.enqueue(-1)) {
    --remaining_;
    ++offered_;
  }
  if (remaining_ == 0 && sender_.buffered() == 0) on_object_done();
}

void HttpSource::on_object_done() {
  transferring_ = false;
  ++objects_completed_;
  const double think = rng_.exponential(config_.mean_think_time_s);
  sched_.post_after(SimTime::seconds(think), [this] { start_transfer(); },
                    EventCategory::kSource);
}

}  // namespace dmp
