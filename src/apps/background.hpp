// The paper's Table-1 bottleneck configurations and the background traffic
// (FTP + HTTP flows) that loads them.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "apps/ftp_source.hpp"
#include "apps/http_source.hpp"
#include "net/topology.hpp"
#include "tcp/connection.hpp"
#include "util/rng.hpp"

namespace dmp {

// One row of Table 1.  The paper does not specify its HTTP traffic
// parameters; per-config think times below are calibrated so the measured
// per-path loss rates land near the Table-2/3 values.
struct PathConfig {
  int id = 0;
  std::size_t ftp_flows = 0;
  std::size_t http_flows = 0;
  SimTime prop_delay = SimTime::millis(40);
  double bandwidth_bps = 3.7e6;
  std::size_t buffer_packets = 50;
  HttpSourceConfig http{};

  BottleneckConfig bottleneck() const {
    return BottleneckConfig{bandwidth_bps, prop_delay, buffer_packets};
  }
};

// Table 1 of the paper, configurations 1-4 (index by 1-based id).
PathConfig table1_config(int id);

// Owns the background flows sharing one DumbbellPath's bottleneck.
// Flow ids are allocated from `first_flow_id` upward.
class BackgroundTraffic {
 public:
  BackgroundTraffic(Scheduler& sched, DumbbellPath& path,
                    const PathConfig& config, FlowId first_flow_id, Rng rng);

  FlowId next_free_flow_id() const { return next_flow_id_; }
  std::size_t flow_count() const { return connections_.size(); }

 private:
  std::vector<TcpConnection> connections_;
  std::vector<std::unique_ptr<FtpSource>> ftp_;
  std::vector<std::unique_ptr<HttpSource>> http_;
  FlowId next_flow_id_;
};

}  // namespace dmp
