// HTTP-like on/off background source: alternates between transferring an
// object (bounded-Pareto size, the classic heavy-tailed web-object model)
// and an exponential think time.  cwnd is reset after each idle period
// (slow-start restart), so transfers behave like fresh short connections.
#pragma once

#include <cstdint>

#include "sim/scheduler.hpp"
#include "tcp/reno_sender.hpp"
#include "util/rng.hpp"

namespace dmp {

struct HttpSourceConfig {
  double pareto_shape = 1.3;
  double min_object_packets = 2.0;
  double max_object_packets = 200.0;
  double mean_think_time_s = 2.0;
  // Initial desynchronization: the first request starts uniformly within
  // this window so a population of sources does not phase-lock.
  double start_jitter_s = 5.0;
};

class HttpSource {
 public:
  HttpSource(Scheduler& sched, RenoSender& sender, HttpSourceConfig config,
             Rng rng);

  std::uint64_t objects_completed() const { return objects_completed_; }
  std::uint64_t packets_offered() const { return offered_; }

 private:
  void start_transfer();
  void feed();
  void on_object_done();

  Scheduler& sched_;
  RenoSender& sender_;
  HttpSourceConfig config_;
  Rng rng_;

  std::int64_t remaining_ = 0;  // packets left to enqueue in current object
  bool transferring_ = false;
  std::uint64_t objects_completed_ = 0;
  std::uint64_t offered_ = 0;
};

}  // namespace dmp
