#include "apps/ftp_source.hpp"

namespace dmp {

FtpSource::FtpSource(RenoSender& sender) : sender_(sender) {
  sender_.set_space_callback([this] { fill(); });
  fill();
}

void FtpSource::fill() {
  while (sender_.enqueue(-1)) ++offered_;
}

}  // namespace dmp
