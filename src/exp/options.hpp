// Validated bench configuration from DMP_* environment variables.
//
// Every bench binary reads the same knob set through BenchOptions, so a
// typo'd variable (DMP_RUN, DMP_DURATION) fails loudly instead of being
// silently ignored, out-of-range values are rejected with the offending
// name and value, and the effective configuration is printed exactly once
// per process so a run's provenance is always in its log.
#pragma once

#include <cstdint>
#include <string>

namespace dmp::exp {

struct BenchOptions {
  std::int64_t runs = 8;             // DMP_RUNS: replications per setting
  double duration_s = 3000.0;        // DMP_DURATION_S: simulated video length
  std::uint64_t seed = 2007;         // DMP_SEED: root of every seed stream
  std::uint64_t mc_min = 400'000;    // DMP_MC_MIN: Monte-Carlo budget floor
  std::uint64_t mc_max = 6'400'000;  // DMP_MC_MAX: Monte-Carlo budget ceiling
  // DMP_THREADS: experiment-runner worker count; 0 = hardware concurrency.
  std::size_t threads = 0;
  // DMP_MODEL_SHARDS: when > 0, model benches (fig8/fig9) estimate with the
  // deterministic sharded Monte-Carlo engine (this many shards, alias
  // sampling) instead of the sequential compat engine.  Output is a pure
  // function of the seed and shard count — identical at any DMP_THREADS —
  // but differs from the shards=0 golden numbers.
  std::uint64_t model_shards = 0;
  // DMP_OBS=1 attaches the observability layer (metrics registry, gauge
  // probe CSV, event JSONL, RunReport JSON) to the first replication.
  bool obs = false;
  double obs_probe_interval_s = 1.0;  // DMP_OBS_PROBE_S
  // DMP_TRACE=1 additionally attaches the per-packet flight recorder to
  // the first replication (inspect with `trace_query`).
  bool trace = false;
  // DMP_TELEMETRY=1 enables the streaming telemetry layer (windowed
  // time-series + quantile sketches) on EVERY replication, so merged-sketch
  // percentiles land in the aggregate report; CSV/JSONL artifacts are
  // written for the first replication only.
  bool telemetry = false;
  double telemetry_window_s = 1.0;  // DMP_TELEMETRY_WINDOW_S
  // DMP_PROFILE=1 attaches the DES self-profiler (per-category executed
  // event counts in the run report); DMP_PROFILE=2 also charges wall
  // nanoseconds per category (non-deterministic; report-only).
  int profile = 0;
  double fig7_duration_s = 3000.0;  // DMP_FIG7_DURATION_S
  double table1_probe_s = 120.0;    // DMP_TABLE1_PROBE_S
  // DMP_SCHED: DMP dispatch policy applied to every simulated session a
  // bench runs (src/stream/scheduler/ grammar: pull | weighted[:w0,w1,...]
  // | best_path | round_robin | redundant | parity-<k>).  Validated by
  // parsing here so a typo'd spec fails before any run starts.
  std::string sched = "pull";
  // DMP_QDISC: bottleneck queue discipline applied to every simulated
  // session a bench runs (src/net/qdisc/ grammar: droptail |
  // pie[:target_ms[,tupdate_ms]] | fq_pie[:flows] |
  // codel[:target_ms[,interval_ms]]).  Validated by parsing here so a
  // typo'd spec fails before any run starts; "droptail" (the default) is
  // byte-identical to the pre-qdisc benches.
  std::string qdisc = "droptail";
  // DMP_DES: discrete-event scheduler backend for every simulated session
  // a bench runs (calendar | heap).  The calendar queue pops in an order
  // bit-identical to the heap (docs/DES_ENGINE.md), so this knob changes
  // wall-clock speed only — artifacts are byte-identical either way.
  // Validated by parsing here so a typo'd spec fails before any run starts.
  std::string des = "calendar";
  // DMP_FAULTS: fault-plan spec applied to every simulated session a bench
  // runs (src/fault/ grammar, e.g. "20 link_down path1; 25 link_up path1").
  // Validated by parsing here so a typo'd plan fails before any run starts.
  std::string faults{};
  // DMP_SLO: path to a declarative expectation spec (slo/*.slo).  The
  // spec is parsed here (fail-fast on typos) and evaluated against each
  // BENCH_*.json the run writes; any violation exits the bench with
  // status 3 (see exp::evaluate_slo_env).
  std::string slo{};

  // Parses and validates the environment.  Throws std::invalid_argument
  // naming the variable on a malformed value, an out-of-range value, or an
  // unrecognized DMP_*-prefixed variable.
  static BenchOptions from_env();

  // One-line effective configuration (printed by `bench_options()` below).
  std::string summary() const;
};

// from_env() with bench ergonomics: on failure prints the error to stderr
// and exits with status 2; on success prints the effective configuration
// once per process.
BenchOptions bench_options();

}  // namespace dmp::exp
