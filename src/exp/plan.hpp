// Experiment plans: named session settings, a replication count, and the
// seed-stream discipline that makes the parallel runner reproducible.
//
// Every random quantity in a bench draws from a SeedStream rooted at the
// single DMP_SEED value, with a distinct domain per purpose (replication,
// backlogged probe, Monte-Carlo, WAN emulation).  Domains are disjoint by
// construction, so replication r of setting s can never collide with a
// probe seed the way the old additive scheme did (`seed + 1` vs
// `seed + r` at r = 1), and seeds are O(1) to derive, which lets a worker
// thread pick up replication 7 without generating replications 0..6.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "stream/session.hpp"
#include "util/seed_stream.hpp"

namespace dmp::exp {

namespace seed_domain {

// One domain per independent purpose.  `stream(kind, index)` packs a
// purpose with a bench-local index (setting number, experiment number) so
// e.g. each setting's replications form their own disjoint stream.
inline constexpr std::uint64_t kReplication = 1;  // per-setting session seeds
inline constexpr std::uint64_t kProbe = 2;        // backlogged-probe seeds
inline constexpr std::uint64_t kModelMc = 3;      // model Monte-Carlo seeds
inline constexpr std::uint64_t kEmul = 4;         // WAN-emulation seeds

// Kinds 5..15 are reserved for future bench-level streams.  Kinds >= 16
// belong to library-internal streams that derive from a caller-supplied
// root seed below the exp layer (which cannot include this header):
//   16 — required-delay probe seeds, one per tau grid point
//        (model/required_delay.cpp)
//   17 — Monte-Carlo shard seeds for run_sharded
//        (model/composed_chain.cpp)
//   18 — per-path AQM early-drop trial seeds, index = path number
//        (stream/session.cpp; PIE / FQ-PIE Bernoulli draws)
// Keep this registry in sync when adding either kind of stream.

inline constexpr std::uint64_t stream(std::uint64_t kind,
                                      std::uint64_t index) {
  return (kind << 32) | index;
}

}  // namespace seed_domain

// Seed for replication `rep` of setting `setting` under root seed `root`.
inline std::uint64_t replication_seed(std::uint64_t root, std::size_t setting,
                                      std::size_t rep) {
  return SeedStream(root, seed_domain::stream(seed_domain::kReplication,
                                              setting))
      .at(rep);
}

// The probe stream for a bench: element k seeds the k-th backlogged-probe
// measurement (disjoint from every replication seed).
inline SeedStream probe_stream(std::uint64_t root, std::uint64_t index = 0) {
  return SeedStream(root, seed_domain::stream(seed_domain::kProbe, index));
}

// The Monte-Carlo stream for a bench: element i seeds the i-th model run.
inline SeedStream mc_stream(std::uint64_t root, std::uint64_t index = 0) {
  return SeedStream(root, seed_domain::stream(seed_domain::kModelMc, index));
}

struct PlanSetting {
  std::string name;
  // `config.seed` is ignored: the runner overwrites it with
  // replication_seed(plan.seed, setting_index, rep).
  SessionConfig config;
};

struct ExperimentPlan {
  // Report name; the runner writes bench_out/BENCH_<name>.json.
  std::string name;
  std::vector<PlanSetting> settings;
  std::size_t replications = 1;
  std::uint64_t seed = 2007;  // root of every derived stream

  // Optional per-replication hook, applied after the runner assigns the
  // replication seed — e.g. attach observability to replication (0, 0)
  // only.  Must be thread-safe: it runs on worker threads.
  std::function<void(SessionConfig& config, std::size_t setting,
                     std::size_t rep)>
      configure;

  // Optional scalar metrics extracted from each successful replication and
  // aggregated into per-setting confidence intervals in the report.  Must
  // return the same metric names for every replication of a setting.
  // When empty the runner records a default set (late fractions at
  // tau = 4/6/8/10 s and per-path loss/RTT/share).
  std::function<std::vector<std::pair<std::string, double>>(
      const SessionResult& result, std::size_t setting, std::size_t rep)>
      metrics;
};

}  // namespace dmp::exp
