// Aggregated results of an experiment plan.
//
// The report splits into a deterministic part and a timing part.  The
// deterministic part (`aggregate_json()`) contains everything derived from
// the simulations — per-setting metric samples, confidence intervals,
// replication seeds and outcomes — and is byte-identical for a given plan
// at ANY worker-thread count: replications are seeded independently and
// collected in submission order, so parallelism cannot reorder or perturb
// it.  Wall-clock and thread count live in a separate timing block that
// `write_json()` appends; determinism tests compare `aggregate_json()`
// strings directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/divergence/divergence.hpp"
#include "obs/telemetry/sketch.hpp"
#include "stream/session.hpp"
#include "util/stats.hpp"

namespace dmp::exp {

// One replication's result, or the exception that replaced it.  A throwing
// replication is captured here (first ~200 chars of the message) instead
// of tearing down the whole sweep.
struct ReplicationOutcome {
  bool ok = false;
  std::string error;       // exception message when !ok
  std::uint64_t seed = 0;  // the derived replication seed actually used
  double wall_s = 0.0;     // excluded from aggregate_json()
  SessionResult result;    // meaningful only when ok
};

// Samples of one named metric across a setting's replications.
struct MetricSeries {
  std::string name;
  std::vector<double> samples;  // replication order
  ConfidenceInterval ci(double confidence = 0.95) const {
    return confidence_interval(samples, confidence);
  }
};

// Merged distribution of one named quantity across a setting's
// replications (e.g. per-packet delay).  Sketches are merged in
// replication-index order by the runner's ordered consumer, so the merged
// state — and its JSON — is identical at any DMP_THREADS.
struct MergedSketch {
  std::string name;
  obs::QuantileSketch sketch;
};

struct SettingSummary {
  std::string name;
  std::vector<std::uint64_t> seeds;   // per replication
  std::vector<std::string> failures;  // "" when the replication succeeded
  std::vector<MetricSeries> metrics;  // insertion order of first replication
  std::vector<MergedSketch> sketches;  // insertion order of first replication
  double wall_s = 0.0;                // sum of replication wall-clocks

  // Appends `value` to the series for `metric`, creating it on first use.
  void add_metric(const std::string& metric, double value);
  const MetricSeries* find(const std::string& metric) const;

  // Folds one replication's sketch into the setting-level merge.
  void merge_sketch(const std::string& name, const obs::QuantileSketch& s);
  const obs::QuantileSketch* find_sketch(const std::string& name) const;
};

class ExperimentReport {
 public:
  std::string experiment;
  std::uint64_t root_seed = 0;
  std::size_t replications = 0;
  std::vector<SettingSummary> settings;
  // Model-vs-simulation residual series, filled by the bench after the
  // replications complete (the model curve is computed outside the
  // runner).  Deterministic, so it belongs to aggregate_json().
  std::vector<obs::DivergenceSeries> divergence;

  // Timing — never part of aggregate_json().
  std::size_t threads_used = 0;
  double wall_s = 0.0;

  // The deterministic portion as canonical JSON (fixed key order, %.17g
  // doubles).  Byte-identical across worker-thread counts.
  std::string aggregate_json() const;

  // Writes {"timing": {...}, "report": <aggregate>} to
  // `<bench_output_dir()>/BENCH_<experiment>.json` and returns the path.
  // Returns "" (after a stderr warning) if the file cannot be written.
  // When DMP_SLO names a spec file, the written report is evaluated
  // against it post-run (see evaluate_slo_env below).
  std::string write_json() const;
};

// The experiment runner's post-run SLO hook: when the DMP_SLO environment
// variable names a `.slo` spec, parses it, evaluates every rule against
// the report JSON at `report_path`, prints the verdict, and exits the
// process with status 3 on any violation (or an unreadable spec) — a
// gated bench must not be allowed to "pass" by losing its gate.  No-op
// when DMP_SLO is unset or empty.
void evaluate_slo_env(const std::string& report_path);

}  // namespace dmp::exp
