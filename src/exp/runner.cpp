#include "exp/runner.hpp"

#include <chrono>

namespace dmp::exp {

namespace {

// Default metric set: the quantities nearly every validation bench reports.
std::vector<std::pair<std::string, double>> default_metrics(
    const SessionResult& result) {
  std::vector<std::pair<std::string, double>> m;
  for (double tau : {4.0, 6.0, 8.0, 10.0}) {
    m.emplace_back("late_playback_tau" + std::to_string(static_cast<int>(tau)),
                   result.trace.late_fraction_playback_order(
                       tau, result.packets_generated));
  }
  for (std::size_t k = 0; k < result.paths.size(); ++k) {
    const std::string suffix = ".path" + std::to_string(k);
    m.emplace_back("loss_rate" + suffix, result.paths[k].loss_rate);
    m.emplace_back("rtt_s" + suffix, result.paths[k].rtt_s);
    m.emplace_back("share" + suffix, result.paths[k].share);
  }
  return m;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

ExperimentReport ExperimentRunner::run(const ExperimentPlan& plan,
                                       Consume consume,
                                       Progress progress) const {
  const std::size_t reps = plan.replications == 0 ? 1 : plan.replications;
  const std::size_t n = plan.settings.size() * reps;

  ExperimentReport report;
  report.experiment = plan.name;
  report.root_seed = plan.seed;
  report.replications = reps;
  report.threads_used = threads();
  report.settings.resize(plan.settings.size());
  for (std::size_t s = 0; s < plan.settings.size(); ++s) {
    report.settings[s].name = plan.settings[s].name;
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t done = 0;

  run_ordered(
      n,
      [&](std::size_t i) {
        const std::size_t s = i / reps;
        const std::size_t r = i % reps;
        SessionConfig config = plan.settings[s].config;
        config.seed = replication_seed(plan.seed, s, r);
        if (plan.configure) plan.configure(config, s, r);

        ReplicationOutcome outcome;
        outcome.seed = config.seed;
        const auto start = std::chrono::steady_clock::now();
        try {
          outcome.result = run_session(config);
          outcome.ok = true;
        } catch (const std::exception& e) {
          outcome.error = e.what();
        } catch (...) {
          outcome.error = "unknown exception";
        }
        outcome.wall_s = seconds_since(start);
        return outcome;
      },
      [&](std::size_t i, ReplicationOutcome outcome) {
        const std::size_t s = i / reps;
        const std::size_t r = i % reps;
        auto& setting = report.settings[s];
        setting.seeds.push_back(outcome.seed);
        setting.failures.push_back(outcome.error);
        setting.wall_s += outcome.wall_s;
        if (outcome.ok) {
          const auto metrics = plan.metrics
                                   ? plan.metrics(outcome.result, s, r)
                                   : default_metrics(outcome.result);
          for (const auto& [name, value] : metrics) {
            setting.add_metric(name, value);
          }
          // Quantile sketches merge here, on the consumer, which runs in
          // strict replication order regardless of DMP_THREADS — so the
          // merged percentiles (and their FP sums) are byte-identical at
          // any worker count.
          if (outcome.result.telemetry) {
            for (const auto& [name, sketch] :
                 outcome.result.telemetry->sketches()) {
              setting.merge_sketch(name, sketch);
            }
          }
        }
        if (consume) consume(s, r, outcome);
        ++done;
        if (progress) progress(done, n);
      });

  report.wall_s = seconds_since(t0);
  return report;
}

}  // namespace dmp::exp
