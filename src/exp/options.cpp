#include "exp/options.hpp"

#include "exp/compare/slo.hpp"
#include "fault/fault_plan.hpp"
#include "net/qdisc/queue_discipline.hpp"
#include "sim/scheduler.hpp"
#include "stream/scheduler/path_scheduler.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string_view>
#include <vector>

extern char** environ;

namespace dmp::exp {

namespace {

// Every DMP_* variable any part of the repo reads.  DMP_OUT_DIR belongs to
// util/csv, DMP_SANITIZE / DMP_CHECK_BUILD_DIR to scripts/check.sh — they
// are not bench knobs but must not trip the unknown-variable check.
const char* const kKnownVars[] = {
    "DMP_RUNS",           "DMP_DURATION_S",      "DMP_SEED",
    "DMP_MC_MIN",         "DMP_MC_MAX",          "DMP_THREADS",
    "DMP_MODEL_SHARDS",   "DMP_OBS",             "DMP_OBS_PROBE_S",
    "DMP_TRACE",          "DMP_OUT_DIR",         "DMP_FIG7_DURATION_S",
    "DMP_TABLE1_PROBE_S", "DMP_FAULTS",          "DMP_SANITIZE",
    "DMP_CHECK_BUILD_DIR", "DMP_TELEMETRY",      "DMP_TELEMETRY_WINDOW_S",
    "DMP_PROFILE",        "DMP_SLO",             "DMP_SCHED",
    "DMP_QDISC",          "DMP_DES",
};

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument{"bench options: " + message};
}

// Strict full-string parses: "8x" or "" are errors, not 8 and 0.
std::int64_t parse_int(const char* name, const char* text) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) {
    fail(std::string(name) + "='" + text + "' is not an integer");
  }
  return v;
}

double parse_double(const char* name, const char* text) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE) {
    fail(std::string(name) + "='" + text + "' is not a number");
  }
  return v;
}

bool parse_bool(const char* name, const char* text) {
  return parse_int(name, text) != 0;
}

const char* get(const char* name) { return std::getenv(name); }

void reject_unknown_vars() {
  for (char** e = environ; e && *e; ++e) {
    const std::string_view entry{*e};
    if (entry.rfind("DMP_", 0) != 0) continue;
    const auto eq = entry.find('=');
    const std::string_view name = entry.substr(0, eq);
    bool known = false;
    for (const char* k : kKnownVars) {
      if (name == k) {
        known = true;
        break;
      }
    }
    if (!known) {
      // Build the accepted set from kKnownVars itself: a hand-maintained
      // copy of the list in this message drifted out of date once already
      // (it was missing newer knobs), so generate it.
      std::string accepted;
      for (const char* k : kKnownVars) {
        if (!accepted.empty()) accepted += ' ';
        accepted += k;
      }
      fail("unknown variable " + std::string(name) +
           " (misspelled knob? known: " + accepted + ")");
    }
  }
}

}  // namespace

BenchOptions BenchOptions::from_env() {
  reject_unknown_vars();
  BenchOptions o;
  if (const char* v = get("DMP_RUNS")) o.runs = parse_int("DMP_RUNS", v);
  if (const char* v = get("DMP_DURATION_S")) {
    o.duration_s = parse_double("DMP_DURATION_S", v);
  }
  if (const char* v = get("DMP_SEED")) {
    o.seed = static_cast<std::uint64_t>(parse_int("DMP_SEED", v));
  }
  if (const char* v = get("DMP_MC_MIN")) {
    o.mc_min = static_cast<std::uint64_t>(parse_int("DMP_MC_MIN", v));
  }
  if (const char* v = get("DMP_MC_MAX")) {
    o.mc_max = static_cast<std::uint64_t>(parse_int("DMP_MC_MAX", v));
  }
  if (const char* v = get("DMP_THREADS")) {
    const std::int64_t t = parse_int("DMP_THREADS", v);
    if (t < 0 || t > 1024) fail("DMP_THREADS must be in [0, 1024]");
    o.threads = static_cast<std::size_t>(t);
  }
  if (const char* v = get("DMP_MODEL_SHARDS")) {
    const std::int64_t s = parse_int("DMP_MODEL_SHARDS", v);
    if (s < 0 || s > 65536) fail("DMP_MODEL_SHARDS must be in [0, 65536]");
    o.model_shards = static_cast<std::uint64_t>(s);
  }
  if (const char* v = get("DMP_OBS")) o.obs = parse_bool("DMP_OBS", v);
  if (const char* v = get("DMP_OBS_PROBE_S")) {
    o.obs_probe_interval_s = parse_double("DMP_OBS_PROBE_S", v);
  }
  if (const char* v = get("DMP_TRACE")) o.trace = parse_bool("DMP_TRACE", v);
  if (const char* v = get("DMP_TELEMETRY")) {
    o.telemetry = parse_bool("DMP_TELEMETRY", v);
  }
  if (const char* v = get("DMP_TELEMETRY_WINDOW_S")) {
    o.telemetry_window_s = parse_double("DMP_TELEMETRY_WINDOW_S", v);
  }
  if (const char* v = get("DMP_PROFILE")) {
    const std::int64_t p = parse_int("DMP_PROFILE", v);
    if (p < 0 || p > 2) fail("DMP_PROFILE must be 0, 1 or 2");
    o.profile = static_cast<int>(p);
  }
  if (const char* v = get("DMP_FIG7_DURATION_S")) {
    o.fig7_duration_s = parse_double("DMP_FIG7_DURATION_S", v);
  }
  if (const char* v = get("DMP_TABLE1_PROBE_S")) {
    o.table1_probe_s = parse_double("DMP_TABLE1_PROBE_S", v);
  }
  if (const char* v = get("DMP_SCHED")) {
    try {
      SchedulerSpec::parse(v);  // validation only; benches re-parse
    } catch (const std::exception& e) {
      fail("DMP_SCHED: " + std::string(e.what()));
    }
    o.sched = v;
  }
  if (const char* v = get("DMP_QDISC")) {
    try {
      QdiscSpec::parse(v);  // validation only; benches re-parse
    } catch (const std::exception& e) {
      fail("DMP_QDISC: " + std::string(e.what()));
    }
    o.qdisc = v;
  }
  if (const char* v = get("DMP_DES")) {
    try {
      parse_scheduler_backend(v);  // validation only; benches re-parse
    } catch (const std::exception& e) {
      fail("DMP_DES: " + std::string(e.what()));
    }
    o.des = v;
  }
  if (const char* v = get("DMP_FAULTS")) {
    try {
      fault::FaultPlan::parse(v);  // validation only; benches re-parse
    } catch (const std::exception& e) {
      fail("DMP_FAULTS: " + std::string(e.what()));
    }
    o.faults = v;
  }
  if (const char* v = get("DMP_SLO")) {
    try {
      SloSpec::parse_file(v);  // fail before any run, not after it
    } catch (const std::exception& e) {
      fail(std::string(e.what()));
    }
    o.slo = v;
  }

  if (o.runs < 1) fail("DMP_RUNS must be >= 1");
  if (!(o.duration_s > 0.0)) fail("DMP_DURATION_S must be > 0");
  if (o.mc_min < 1) fail("DMP_MC_MIN must be >= 1");
  if (o.mc_max < o.mc_min) fail("DMP_MC_MAX must be >= DMP_MC_MIN");
  if (!(o.obs_probe_interval_s > 0.0)) fail("DMP_OBS_PROBE_S must be > 0");
  if (!(o.telemetry_window_s > 0.0)) fail("DMP_TELEMETRY_WINDOW_S must be > 0");
  if (!(o.fig7_duration_s > 0.0)) fail("DMP_FIG7_DURATION_S must be > 0");
  if (!(o.table1_probe_s > 0.0)) fail("DMP_TABLE1_PROBE_S must be > 0");
  return o;
}

std::string BenchOptions::summary() const {
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "runs=%lld duration_s=%g seed=%llu mc=[%llu, %llu] "
                "threads=%zu model_shards=%llu obs=%d trace=%d telemetry=%d "
                "profile=%d",
                static_cast<long long>(runs), duration_s,
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(mc_min),
                static_cast<unsigned long long>(mc_max), threads,
                static_cast<unsigned long long>(model_shards), obs ? 1 : 0,
                trace ? 1 : 0, telemetry ? 1 : 0, profile);
  std::string out = buf;
  if (sched != "pull") out += " sched=" + sched;
  if (qdisc != "droptail") out += " qdisc=" + qdisc;
  if (des != "calendar") out += " des=" + des;
  if (!faults.empty()) out += " faults='" + faults + "'";
  if (!slo.empty()) out += " slo=" + slo;
  return out;
}

BenchOptions bench_options() {
  static bool printed = false;
  try {
    BenchOptions o = BenchOptions::from_env();
    if (!printed) {
      printed = true;
      std::printf("[bench config] %s\n", o.summary().c_str());
    }
    return o;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

}  // namespace dmp::exp
