// Declarative SLO / expectation specs over report fields.
//
// A .slo file is a list of assertions on any field of a report document
// (BENCH_*.json, DIVERGENCE_*.json, an obs run report — anything JSON):
//
//   # comments and blank lines are ignored
//   report.experiment == 'fig4'
//   report.settings.2-2.metrics.f_tau10.mean < 0.05
//   report.divergence.fig4.stats.diverged == 0
//   timing.threads >= 1
//
//   rule  := path op value
//   op    := < | <= | > | >= | == | !=
//   value := number | true | false | 'string'
//   path  := dotted field path (json.hpp resolve_path semantics: object
//            keys, array indices, or "name"-matched array elements)
//
// Parsing is strict — parse-or-throw, like fault::FaultPlan: an unknown
// operator, a malformed number, an empty path all throw
// std::invalid_argument naming the offending line, because a silently
// dropped assertion turns a gated experiment into an ungated one.
//
// Evaluation takes one or more documents (CI evaluates fig4's BENCH
// report and fig9's DIVERGENCE artifact against a single ci.slo): each
// rule resolves its path against the documents in order and judges the
// first hit; a path found in no document is a violation, not a skip.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "exp/compare/json.hpp"

namespace dmp::exp {

enum class SloOp { kLt, kLe, kGt, kGe, kEq, kNe };

std::string_view slo_op_name(SloOp op);

struct SloRule {
  std::string path;
  SloOp op = SloOp::kLt;
  // Exactly one of these shapes applies, chosen at parse time.
  enum class ValueKind { kNumber, kBool, kString } value_kind = ValueKind::kNumber;
  double number = 0.0;
  bool boolean = false;
  std::string text;
  int line = 0;  // 1-based spec line, for messages

  std::string to_string() const;  // canonical "path op value"
};

struct SloSpec {
  std::vector<SloRule> rules;

  bool empty() const { return rules.empty(); }

  // Parses a spec body.  Throws std::invalid_argument on any malformed
  // rule, naming its line.
  static SloSpec parse(const std::string& body);
  // Reads and parses a file; throws std::invalid_argument (unreadable or
  // malformed).  An existing-but-empty spec is valid and passes trivially.
  static SloSpec parse_file(const std::string& path);
};

struct SloRuleResult {
  SloRule rule;
  bool passed = false;
  std::string actual;   // brief() of the resolved field, or "<missing>"
  std::string message;  // human-readable verdict line
};

struct SloReport {
  std::vector<SloRuleResult> results;
  std::size_t violations = 0;
  bool ok() const { return violations == 0; }
};

// Evaluates every rule against the documents (first document that
// resolves the rule's path wins).
SloReport evaluate_slo(const SloSpec& spec,
                       const std::vector<const JsonValue*>& documents);

}  // namespace dmp::exp
