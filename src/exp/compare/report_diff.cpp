#include "exp/compare/report_diff.hpp"

#include <cmath>
#include <cctype>

namespace dmp::exp {

namespace {

class Differ {
 public:
  Differ(const DiffOptions& options, DiffResult& out)
      : options_(options), out_(out) {}

  void walk(const std::string& path, const JsonValue& l, const JsonValue& r) {
    if (ignored(path)) return;
    if (l.kind != r.kind) {
      record(path, DiffClass::kTypeMismatch, l.brief(), r.brief(), 0.0);
      return;
    }
    switch (l.kind) {
      case JsonValue::Kind::kObject: walk_object(path, l, r); return;
      case JsonValue::Kind::kArray: walk_array(path, l, r); return;
      case JsonValue::Kind::kNull:
        leaf_identical();
        return;
      case JsonValue::Kind::kBool:
        if (l.boolean == r.boolean) leaf_identical();
        else record(path, DiffClass::kDiverged, l.brief(), r.brief(), 0.0);
        return;
      case JsonValue::Kind::kString:
        if (l.text == r.text) leaf_identical();
        else record(path, DiffClass::kDiverged, l.brief(), r.brief(), 0.0);
        return;
      case JsonValue::Kind::kNumber: {
        if (l.text == r.text || l.number == r.number) {
          leaf_identical();
          return;
        }
        const double delta = std::fabs(l.number - r.number);
        const double scale =
            std::max(std::fabs(l.number), std::fabs(r.number));
        if (delta <= options_.abs_tol + options_.rel_tol * scale) {
          ++out_.fields_compared;
          ++out_.within_tolerance;
          out_.diffs.push_back(
              {path, DiffClass::kWithinTolerance, l.brief(), r.brief(), delta});
          return;
        }
        record(path, DiffClass::kDiverged, l.brief(), r.brief(), delta);
        return;
      }
    }
  }

 private:
  bool ignored(const std::string& path) const {
    for (const auto& prefix : options_.ignore) {
      if (path == prefix ||
          (path.size() > prefix.size() &&
           path.compare(0, prefix.size(), prefix) == 0 &&
           path[prefix.size()] == '.')) {
        return true;
      }
    }
    return false;
  }

  void leaf_identical() {
    ++out_.fields_compared;
    ++out_.identical;
  }

  void record(const std::string& path, DiffClass cls, std::string left,
              std::string right, double delta) {
    if (cls != DiffClass::kOnlyLeft && cls != DiffClass::kOnlyRight) {
      ++out_.fields_compared;
    }
    out_.diffs.push_back({path, cls, std::move(left), std::move(right), delta});
  }

  void walk_object(const std::string& path, const JsonValue& l,
                   const JsonValue& r) {
    for (const auto& [key, lv] : l.object) {
      const std::string child = path.empty() ? key : path + "." + key;
      const JsonValue* rv = r.find(key);
      if (rv == nullptr) {
        if (!ignored(child)) {
          record(child, DiffClass::kOnlyLeft, lv.brief(), "", 0.0);
        }
        continue;
      }
      walk(child, lv, *rv);
    }
    for (const auto& [key, rv] : r.object) {
      if (l.find(key) != nullptr) continue;
      const std::string child = path.empty() ? key : path + "." + key;
      if (!ignored(child)) {
        record(child, DiffClass::kOnlyRight, "", rv.brief(), 0.0);
      }
    }
  }

  // A "name"d array element is addressed by that name; anything else by
  // index.  Elements are still compared positionally — reports are
  // deterministic, so ordering IS part of the contract — the name only
  // improves the path rendering.
  static std::string element_label(const JsonValue& elem, std::size_t index) {
    const JsonValue* name = elem.find("name");
    if (name != nullptr && name->kind == JsonValue::Kind::kString &&
        !name->text.empty() && name->text.find('.') == std::string::npos) {
      return name->text;
    }
    return std::to_string(index);
  }

  void walk_array(const std::string& path, const JsonValue& l,
                  const JsonValue& r) {
    const std::size_t common = std::min(l.array.size(), r.array.size());
    for (std::size_t i = 0; i < common; ++i) {
      const std::string child =
          path + "." + element_label(l.array[i], i);
      walk(child, l.array[i], r.array[i]);
    }
    for (std::size_t i = common; i < l.array.size(); ++i) {
      const std::string child = path + "." + element_label(l.array[i], i);
      if (!ignored(child)) {
        record(child, DiffClass::kOnlyLeft, l.array[i].brief(), "", 0.0);
      }
    }
    for (std::size_t i = common; i < r.array.size(); ++i) {
      const std::string child = path + "." + element_label(r.array[i], i);
      if (!ignored(child)) {
        record(child, DiffClass::kOnlyRight, "", r.array[i].brief(), 0.0);
      }
    }
  }

  const DiffOptions& options_;
  DiffResult& out_;
};

}  // namespace

std::string_view diff_class_name(DiffClass c) {
  switch (c) {
    case DiffClass::kIdentical: return "identical";
    case DiffClass::kWithinTolerance: return "within-tol";
    case DiffClass::kDiverged: return "DIVERGED";
    case DiffClass::kOnlyLeft: return "only-left";
    case DiffClass::kOnlyRight: return "only-right";
    case DiffClass::kTypeMismatch: return "type-mismatch";
  }
  return "?";
}

bool DiffResult::clean() const {
  for (const auto& d : diffs) {
    if (d.cls != DiffClass::kWithinTolerance) return false;
  }
  return true;
}

std::size_t DiffResult::diverged() const {
  std::size_t n = 0;
  for (const auto& d : diffs) {
    if (d.cls != DiffClass::kWithinTolerance) ++n;
  }
  return n;
}

DiffResult diff_reports(const JsonValue& left, const JsonValue& right,
                        const DiffOptions& options) {
  DiffResult result;
  Differ{options, result}.walk("", left, right);
  return result;
}

}  // namespace dmp::exp
