// Minimal JSON document model for the comparison tools.
//
// The repo's reports are *emitted* by hand-rolled canonical writers; the
// run-diff and SLO engines need to *read* them back generically, so this
// is the one place a real (recursive-descent) JSON parser lives.  It is a
// reader for our own artifacts, not a general-purpose library: objects
// preserve key order (diffs walk both documents in the left document's
// order), numbers keep their source text (so "identical" can mean
// byte-identical, not merely equal-after-rounding), and any syntax error
// throws std::runtime_error with the offending line.
//
// CSV artifacts (fig CSVs, telemetry series) are adapted into the same
// tree by csv_to_json() — header row becomes column names, each data row
// an object — so one structural differ covers every artifact the benches
// produce.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace dmp::exp {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;  // kString: the value; kNumber: the source spelling
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // key order kept

  bool is_null() const { return kind == Kind::kNull; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  // Human-readable scalar rendering for diff/SLO messages ("3.25", "true",
  // "\"fig4\"", "[12 items]", "{8 keys}").
  std::string brief() const;

  // Canonical re-serialization (numbers keep their source spelling, key
  // order preserved) — what --json emitters write back out.
  std::string to_json() const;
};

// Parses one JSON document; trailing non-whitespace is an error.  Throws
// std::runtime_error naming the 1-based line of the first offence.
JsonValue parse_json(const std::string& text);

// Reads and parses a whole file.  Throws std::runtime_error when the file
// cannot be opened, is empty, or is malformed.
JsonValue parse_json_file(const std::string& path);

// Adapts a CSV table into {"columns": [...], "rows": [{col: cell}...]}.
// Cells that parse fully as numbers become JSON numbers (keeping their
// spelling), everything else stays a string.  Throws std::runtime_error on
// an empty file or a row with the wrong arity.
JsonValue csv_to_json(std::istream& in);
JsonValue csv_file_to_json(const std::string& path);

// Resolves a dotted path against a document: each segment selects an
// object key; against an array, an all-digit segment is an index and any
// other segment matches the element whose "name" member equals it (the
// shape of settings/metrics/divergence lists).  Returns nullptr when any
// hop fails.
const JsonValue* resolve_path(const JsonValue& root, const std::string& path);

}  // namespace dmp::exp
