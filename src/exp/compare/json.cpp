#include "exp/compare/json.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dmp::exp {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < s_.size(); ++i) {
      if (s_[i] == '\n') ++line;
    }
    throw std::runtime_error{"json: " + message + " (line " +
                             std::to_string(line) + ")"};
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    if (depth_ > 128) fail("nesting too deep");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.text = parse_string();
        return v;
      }
      case 't':
        if (consume_literal("true")) {
          JsonValue v;
          v.kind = JsonValue::Kind::kBool;
          v.boolean = true;
          return v;
        }
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) {
          JsonValue v;
          v.kind = JsonValue::Kind::kBool;
          v.boolean = false;
          return v;
        }
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue{};
        fail("bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    ++depth_;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      --depth_;
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    ++depth_;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return v;
    }
    while (true) {
      skip_ws();
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      --depth_;
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Our writers only escape control characters; render anything in
          // the Latin-1 range directly and pass the rest through as '?'.
          if (code < 0x80) out += static_cast<char>(code);
          else out += '?';
          break;
        }
        default: fail("bad escape");
      }
    }
    fail("unterminated string");
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.text = s_.substr(start, pos_ - start);
    char* end = nullptr;
    v.number = std::strtod(v.text.c_str(), &end);
    if (end != v.text.c_str() + v.text.size()) fail("bad number");
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// One CSV cell becomes a number exactly when the whole cell parses as one.
JsonValue cell_value(const std::string& cell) {
  JsonValue v;
  if (!cell.empty()) {
    char* end = nullptr;
    const double d = std::strtod(cell.c_str(), &end);
    if (end == cell.c_str() + cell.size()) {
      v.kind = JsonValue::Kind::kNumber;
      v.number = d;
      v.text = cell;
      return v;
    }
  }
  v.kind = JsonValue::Kind::kString;
  v.text = cell;
  return v;
}

std::vector<std::string> split_csv_row(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (char c : line) {
    if (c == ',') {
      cells.push_back(cell);
      cell.clear();
    } else if (c != '\r') {
      cell += c;
    }
  }
  cells.push_back(cell);
  return cells;
}

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::brief() const {
  switch (kind) {
    case Kind::kNull: return "null";
    case Kind::kBool: return boolean ? "true" : "false";
    case Kind::kNumber: return text;
    case Kind::kString: return "\"" + text + "\"";
    case Kind::kArray: return "[" + std::to_string(array.size()) + " items]";
    case Kind::kObject: return "{" + std::to_string(object.size()) + " keys}";
  }
  return "?";
}

std::string JsonValue::to_json() const {
  std::string out;
  switch (kind) {
    case Kind::kNull: return "null";
    case Kind::kBool: return boolean ? "true" : "false";
    case Kind::kNumber: return text;
    case Kind::kString:
      append_quoted(out, text);
      return out;
    case Kind::kArray:
      out = "[";
      for (std::size_t i = 0; i < array.size(); ++i) {
        if (i) out += ", ";
        out += array[i].to_json();
      }
      return out + "]";
    case Kind::kObject:
      out = "{";
      for (std::size_t i = 0; i < object.size(); ++i) {
        if (i) out += ", ";
        append_quoted(out, object[i].first);
        out += ": ";
        out += object[i].second.to_json();
      }
      return out + "}";
  }
  return "null";
}

JsonValue parse_json(const std::string& text) {
  return Parser{text}.parse_document();
}

JsonValue parse_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error{"cannot open " + path};
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  if (text.find_first_not_of(" \t\r\n") == std::string::npos) {
    throw std::runtime_error{path + " is empty"};
  }
  try {
    return parse_json(text);
  } catch (const std::exception& e) {
    throw std::runtime_error{path + ": " + e.what()};
  }
}

JsonValue csv_to_json(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error{"csv: empty file"};
  }
  const auto columns = split_csv_row(line);
  JsonValue doc;
  doc.kind = JsonValue::Kind::kObject;
  JsonValue cols;
  cols.kind = JsonValue::Kind::kArray;
  for (const auto& c : columns) {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    v.text = c;
    cols.array.push_back(std::move(v));
  }
  JsonValue rows;
  rows.kind = JsonValue::Kind::kArray;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto cells = split_csv_row(line);
    if (cells.size() != columns.size()) {
      throw std::runtime_error{"csv: row " + std::to_string(line_no) + " has " +
                               std::to_string(cells.size()) + " cells, header " +
                               std::to_string(columns.size())};
    }
    JsonValue row;
    row.kind = JsonValue::Kind::kObject;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      row.object.emplace_back(columns[i], cell_value(cells[i]));
    }
    rows.array.push_back(std::move(row));
  }
  doc.object.emplace_back("columns", std::move(cols));
  doc.object.emplace_back("rows", std::move(rows));
  return doc;
}

JsonValue csv_file_to_json(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error{"cannot open " + path};
  try {
    return csv_to_json(in);
  } catch (const std::exception& e) {
    throw std::runtime_error{path + ": " + e.what()};
  }
}

const JsonValue* resolve_path(const JsonValue& root, const std::string& path) {
  const JsonValue* at = &root;
  std::size_t start = 0;
  while (start <= path.size()) {
    const auto dot = path.find('.', start);
    const std::string seg = path.substr(
        start, dot == std::string::npos ? std::string::npos : dot - start);
    if (seg.empty()) return nullptr;
    if (at->is_object()) {
      at = at->find(seg);
      if (at == nullptr) return nullptr;
    } else if (at->is_array()) {
      bool digits = true;
      for (char c : seg) {
        if (!std::isdigit(static_cast<unsigned char>(c))) digits = false;
      }
      if (digits) {
        const std::size_t idx = std::strtoull(seg.c_str(), nullptr, 10);
        if (idx >= at->array.size()) return nullptr;
        at = &at->array[idx];
      } else {
        const JsonValue* hit = nullptr;
        for (const auto& elem : at->array) {
          const JsonValue* name = elem.find("name");
          if (name != nullptr && name->kind == JsonValue::Kind::kString &&
              name->text == seg) {
            hit = &elem;
            break;
          }
        }
        if (hit == nullptr) return nullptr;
        at = hit;
      }
    } else {
      return nullptr;
    }
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  return at;
}

}  // namespace dmp::exp
