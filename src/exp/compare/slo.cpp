#include "exp/compare/slo.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dmp::exp {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::invalid_argument{"slo: line " + std::to_string(line) + ": " +
                              message};
}

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

bool compare_numbers(double actual, SloOp op, double expected) {
  switch (op) {
    case SloOp::kLt: return actual < expected;
    case SloOp::kLe: return actual <= expected;
    case SloOp::kGt: return actual > expected;
    case SloOp::kGe: return actual >= expected;
    case SloOp::kEq: return actual == expected;
    case SloOp::kNe: return actual != expected;
  }
  return false;
}

SloRule parse_rule(const std::string& text, int line) {
  // Find the operator: the first of < <= > >= == != outside the path.
  // Paths never contain comparison characters, so a plain scan works.
  SloRule rule;
  rule.line = line;
  std::size_t op_at = std::string::npos;
  std::size_t op_len = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c != '<' && c != '>' && c != '=' && c != '!') continue;
    op_at = i;
    op_len = (i + 1 < text.size() && text[i + 1] == '=') ? 2 : 1;
    break;
  }
  if (op_at == std::string::npos) fail(line, "no comparison operator");
  const std::string op_text = text.substr(op_at, op_len);
  if (op_text == "<") rule.op = SloOp::kLt;
  else if (op_text == "<=") rule.op = SloOp::kLe;
  else if (op_text == ">") rule.op = SloOp::kGt;
  else if (op_text == ">=") rule.op = SloOp::kGe;
  else if (op_text == "==") rule.op = SloOp::kEq;
  else if (op_text == "!=") rule.op = SloOp::kNe;
  else fail(line, "bad operator '" + op_text + "'");

  rule.path = trim(text.substr(0, op_at));
  if (rule.path.empty()) fail(line, "empty field path");
  const std::string value = trim(text.substr(op_at + op_len));
  if (value.empty()) fail(line, "empty expected value");

  if (value == "true" || value == "false") {
    if (rule.op != SloOp::kEq && rule.op != SloOp::kNe) {
      fail(line, "booleans only support == and !=");
    }
    rule.value_kind = SloRule::ValueKind::kBool;
    rule.boolean = value == "true";
    return rule;
  }
  if (value.size() >= 2 && value.front() == '\'' && value.back() == '\'') {
    if (rule.op != SloOp::kEq && rule.op != SloOp::kNe) {
      fail(line, "strings only support == and !=");
    }
    rule.value_kind = SloRule::ValueKind::kString;
    rule.text = value.substr(1, value.size() - 2);
    return rule;
  }
  char* end = nullptr;
  rule.number = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size() || !std::isfinite(rule.number)) {
    fail(line, "'" + value + "' is not a number, boolean or 'string'");
  }
  rule.value_kind = SloRule::ValueKind::kNumber;
  return rule;
}

}  // namespace

std::string_view slo_op_name(SloOp op) {
  switch (op) {
    case SloOp::kLt: return "<";
    case SloOp::kLe: return "<=";
    case SloOp::kGt: return ">";
    case SloOp::kGe: return ">=";
    case SloOp::kEq: return "==";
    case SloOp::kNe: return "!=";
  }
  return "?";
}

std::string SloRule::to_string() const {
  std::string out = path + " " + std::string(slo_op_name(op)) + " ";
  switch (value_kind) {
    case ValueKind::kNumber: {
      // Display form: %g keeps "0.05" reading as 0.05 (the comparison
      // itself uses the parsed double, not this rendering).
      char buf[32];
      std::snprintf(buf, sizeof buf, "%g", number);
      out += buf;
      break;
    }
    case ValueKind::kBool: out += boolean ? "true" : "false"; break;
    case ValueKind::kString: out += "'" + text + "'"; break;
  }
  return out;
}

SloSpec SloSpec::parse(const std::string& body) {
  SloSpec spec;
  std::istringstream in(body);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    spec.rules.push_back(parse_rule(line, line_no));
  }
  return spec;
}

SloSpec SloSpec::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument{"slo: cannot open " + path};
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

SloReport evaluate_slo(const SloSpec& spec,
                       const std::vector<const JsonValue*>& documents) {
  SloReport report;
  for (const auto& rule : spec.rules) {
    SloRuleResult r;
    r.rule = rule;
    const JsonValue* field = nullptr;
    for (const JsonValue* doc : documents) {
      if (doc == nullptr) continue;
      field = resolve_path(*doc, rule.path);
      if (field != nullptr) break;
    }
    if (field == nullptr) {
      r.passed = false;
      r.actual = "<missing>";
      r.message = "FAIL " + rule.to_string() + "  (field not found in any document)";
    } else {
      r.actual = field->brief();
      switch (rule.value_kind) {
        case SloRule::ValueKind::kNumber:
          if (field->kind != JsonValue::Kind::kNumber) {
            r.passed = false;
          } else {
            r.passed = compare_numbers(field->number, rule.op, rule.number);
          }
          break;
        case SloRule::ValueKind::kBool:
          r.passed = field->kind == JsonValue::Kind::kBool &&
                     compare_numbers(field->boolean ? 1.0 : 0.0, rule.op,
                                     rule.boolean ? 1.0 : 0.0);
          break;
        case SloRule::ValueKind::kString:
          r.passed = field->kind == JsonValue::Kind::kString &&
                     compare_numbers(field->text == rule.text ? 0.0 : 1.0,
                                     rule.op == SloOp::kEq ? SloOp::kEq
                                                           : SloOp::kNe,
                                     0.0);
          break;
      }
      r.message = std::string(r.passed ? "ok   " : "FAIL ") +
                  rule.to_string() + "  (actual: " + r.actual + ")";
    }
    if (!r.passed) ++report.violations;
    report.results.push_back(std::move(r));
  }
  return report;
}

}  // namespace dmp::exp
