// Structural diff of two run/experiment reports.
//
// Walks two JSON documents (or CSV tables adapted via csv_to_json) field
// by field and classifies every leaf: identical (same bytes / same
// scalar), within-tolerance (numbers whose delta clears the configured
// abs/rel bounds), or diverged — plus the structural classes (present on
// one side only, type mismatch).  Byte-identical inputs therefore produce
// zero non-identical entries, which turns the benches' thread-invariance
// gate ("DMP_THREADS=1 and =8 must emit the same bytes") into a single
// `run_diff a b` invocation, and tolerant mode answers the softer question
// "did this refactor move any number by more than epsilon".
//
// Paths use the same dotted syntax as the SLO engine; array elements with
// a "name" member are addressed by it (settings.2-2.metrics.f_tau4), so a
// diff in replication 3 of setting 2-2 reads as a report coordinate, not
// an offset.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "exp/compare/json.hpp"

namespace dmp::exp {

enum class DiffClass {
  kIdentical = 0,
  kWithinTolerance,  // numeric, |delta| within abs/rel bounds
  kDiverged,         // numeric beyond tolerance, or unequal non-numerics
  kOnlyLeft,         // key/element missing on the right
  kOnlyRight,        // key/element missing on the left
  kTypeMismatch,     // e.g. number vs string
};

std::string_view diff_class_name(DiffClass c);

struct FieldDiff {
  std::string path;
  DiffClass cls = DiffClass::kIdentical;
  std::string left;   // brief() rendering; "" for the absent side
  std::string right;
  double abs_delta = 0.0;  // numeric diffs only
};

struct DiffOptions {
  double abs_tol = 0.0;
  double rel_tol = 0.0;
  // Path prefixes to skip entirely (e.g. "timing" — wall-clock blocks can
  // never be expected to match across runs).
  std::vector<std::string> ignore;
};

struct DiffResult {
  std::size_t fields_compared = 0;  // leaves visited (both-sided)
  std::size_t identical = 0;
  std::size_t within_tolerance = 0;
  std::vector<FieldDiff> diffs;  // every non-identical entry, walk order

  // True when nothing diverged and no structural mismatch exists —
  // within-tolerance entries do not break cleanliness.
  bool clean() const;
  std::size_t diverged() const;
};

DiffResult diff_reports(const JsonValue& left, const JsonValue& right,
                        const DiffOptions& options = {});

}  // namespace dmp::exp
