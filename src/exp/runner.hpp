// Multi-threaded experiment runner with deterministic aggregation.
//
// The core primitive is `run_ordered(n, produce, consume)`: `produce(i)`
// runs on a worker pool, `consume(i, value)` runs on the calling thread in
// STRICT index order.  Because every work item is a pure function of its
// index (seeded via util/seed_stream) and consumption is ordered, the
// observable output is bit-identical whether the pool has 1 thread or 16 —
// parallelism only changes wall-clock.
//
// The pool itself is util's OrderedPool (also the engine under the model's
// sharded Monte-Carlo estimator); this class layers the experiment-plan
// orchestration — replication seeding, outcome capture, per-setting
// aggregation — on top of it.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>

#include "exp/plan.hpp"
#include "exp/report.hpp"
#include "util/parallel.hpp"

namespace dmp::exp {

class ExperimentRunner {
 public:
  // 0 = one worker per hardware thread.
  explicit ExperimentRunner(std::size_t threads = 0) : pool_(threads) {}

  std::size_t threads() const { return pool_.threads(); }

  using Progress = std::function<void(std::size_t done, std::size_t total)>;
  using Consume = std::function<void(std::size_t setting, std::size_t rep,
                                     const ReplicationOutcome& outcome)>;

  // Runs `plan.settings.size() * plan.replications` sessions on the pool.
  // Each replication gets its seed from the plan's replication stream, has
  // its exceptions captured into the outcome, and is handed to `consume`
  // (setting-major, replication order) on the calling thread.  The
  // returned report aggregates the plan's metrics per setting; its
  // aggregate_json() does not depend on the thread count.
  ExperimentReport run(const ExperimentPlan& plan, Consume consume = nullptr,
                       Progress progress = nullptr) const;

  // produce(i) on the pool; consume(i, produced) on this thread in index
  // order.  An exception thrown by produce(i) is rethrown on this thread
  // when index i is due for consumption.
  template <class Produce, class Consume2>
  void run_ordered(std::size_t n, Produce produce, Consume2 consume) const {
    pool_.run_ordered(n, std::move(produce), std::move(consume));
  }

  // Convenience: fn(i) for i in [0, n), results returned in index order.
  template <class Fn>
  auto map(std::size_t n, Fn fn) const {
    return pool_.map(n, std::move(fn));
  }

 private:
  OrderedPool pool_;
};

}  // namespace dmp::exp
