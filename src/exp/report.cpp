#include "exp/report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "exp/compare/slo.hpp"
#include "util/csv.hpp"

namespace dmp::exp {

namespace {

// Canonical double formatting: %.17g round-trips every finite double and
// is stable across runs, which is what makes aggregate_json() comparable
// byte-for-byte.  Non-finite values (empty-series ±inf sentinels) become
// JSON null — "%.17g" would print "inf", which no parser accepts.
std::string num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

void SettingSummary::add_metric(const std::string& metric, double value) {
  for (auto& series : metrics) {
    if (series.name == metric) {
      series.samples.push_back(value);
      return;
    }
  }
  metrics.push_back({metric, {value}});
}

const MetricSeries* SettingSummary::find(const std::string& metric) const {
  for (const auto& series : metrics) {
    if (series.name == metric) return &series;
  }
  return nullptr;
}

void SettingSummary::merge_sketch(const std::string& name,
                                  const obs::QuantileSketch& s) {
  for (auto& merged : sketches) {
    if (merged.name == name) {
      merged.sketch.merge(s);
      return;
    }
  }
  sketches.push_back(MergedSketch{name, s});
}

const obs::QuantileSketch* SettingSummary::find_sketch(
    const std::string& name) const {
  for (const auto& merged : sketches) {
    if (merged.name == name) return &merged.sketch;
  }
  return nullptr;
}

std::string ExperimentReport::aggregate_json() const {
  std::string out;
  out += "{\"experiment\": ";
  json_string(out, experiment);
  out += ", \"root_seed\": " + std::to_string(root_seed);
  out += ", \"replications\": " + std::to_string(replications);
  out += ", \"settings\": [";
  for (std::size_t s = 0; s < settings.size(); ++s) {
    const auto& setting = settings[s];
    if (s) out += ", ";
    out += "{\"name\": ";
    json_string(out, setting.name);
    out += ", \"seeds\": [";
    for (std::size_t r = 0; r < setting.seeds.size(); ++r) {
      if (r) out += ", ";
      out += std::to_string(setting.seeds[r]);
    }
    out += "], \"failures\": [";
    bool first = true;
    for (std::size_t r = 0; r < setting.failures.size(); ++r) {
      if (setting.failures[r].empty()) continue;
      if (!first) out += ", ";
      first = false;
      out += "{\"replication\": " + std::to_string(r) + ", \"error\": ";
      json_string(out, setting.failures[r]);
      out += "}";
    }
    out += "], \"metrics\": [";
    for (std::size_t m = 0; m < setting.metrics.size(); ++m) {
      const auto& series = setting.metrics[m];
      const auto ci = series.ci();
      if (m) out += ", ";
      out += "{\"name\": ";
      json_string(out, series.name);
      out += ", \"mean\": " + num(ci.mean);
      out += ", \"ci_half\": " + num(ci.half_width);
      out += ", \"samples\": [";
      for (std::size_t i = 0; i < series.samples.size(); ++i) {
        if (i) out += ", ";
        out += num(series.samples[i]);
      }
      out += "]}";
    }
    out += "], \"percentiles\": [";
    for (std::size_t p = 0; p < setting.sketches.size(); ++p) {
      const auto& merged = setting.sketches[p];
      if (p) out += ", ";
      out += "{\"name\": ";
      json_string(out, merged.name);
      const auto& sk = merged.sketch;
      out += ", \"count\": " + std::to_string(sk.count());
      if (sk.count() == 0) {
        out += ", \"min\": null, \"p50\": null, \"p95\": null"
               ", \"p99\": null, \"max\": null}";
        continue;
      }
      out += ", \"min\": " + num(sk.min());
      out += ", \"p50\": " + num(sk.quantile(0.50));
      out += ", \"p95\": " + num(sk.quantile(0.95));
      out += ", \"p99\": " + num(sk.quantile(0.99));
      out += ", \"max\": " + num(sk.max());
      out += "}";
    }
    out += "]}";
  }
  out += "], \"divergence\": [";
  for (std::size_t d = 0; d < divergence.size(); ++d) {
    if (d) out += ", ";
    out += divergence[d].to_json();
  }
  out += "]}";
  return out;
}

std::string ExperimentReport::write_json() const {
  const std::string path = bench_output_dir() + "/BENCH_" + experiment + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return "";
  }
  std::string timing = "{\"threads\": " + std::to_string(threads_used) +
                       ", \"wall_s\": " + num(wall_s) +
                       ", \"per_setting_wall_s\": [";
  for (std::size_t s = 0; s < settings.size(); ++s) {
    if (s) timing += ", ";
    timing += num(settings[s].wall_s);
  }
  timing += "]}";
  out << "{\"timing\": " << timing << ", \"report\": " << aggregate_json()
      << "}\n";
  if (!out) {
    std::fprintf(stderr, "warning: short write to %s\n", path.c_str());
    return "";
  }
  out.close();  // the SLO hook re-reads the file; flush before judging it
  evaluate_slo_env(path);
  return path;
}

void evaluate_slo_env(const std::string& report_path) {
  const char* spec_path = std::getenv("DMP_SLO");
  if (spec_path == nullptr || spec_path[0] == '\0') return;
  try {
    const SloSpec spec = SloSpec::parse_file(spec_path);
    const JsonValue doc = parse_json_file(report_path);
    const SloReport verdict = evaluate_slo(spec, {&doc});
    std::printf("[slo] %s against %s:\n", spec_path, report_path.c_str());
    for (const auto& r : verdict.results) {
      std::printf("[slo]   %s\n", r.message.c_str());
    }
    if (!verdict.ok()) {
      std::fprintf(stderr, "[slo] %zu violation(s); failing the run\n",
                   verdict.violations);
      std::exit(3);
    }
  } catch (const std::exception& e) {
    // A spec that cannot be parsed must not pass silently either.
    std::fprintf(stderr, "[slo] error: %s\n", e.what());
    std::exit(3);
  }
}

}  // namespace dmp::exp
