#include "inet/server.hpp"

#include <poll.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "obs/probe.hpp"

namespace dmp::inet {

namespace {

std::uint64_t monotonic_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace

DmpInetServer::DmpInetServer(ServerConfig config) : config_(config) {
  if (config_.num_paths == 0) throw std::invalid_argument{"need >= 1 path"};
  if (config_.mu_pps <= 0.0) throw std::invalid_argument{"mu must be > 0"};
  if (config_.frame_bytes < kFrameHeaderBytes) {
    throw std::invalid_argument{"frame too small"};
  }
  listener_ = listen_on(config_.bind_ip, config_.port, &port_);
}

bool DmpInetServer::pump_connection(Connection& conn) {
  // Flush a partially-written frame first: it already belongs to this path.
  while (true) {
    if (conn.partial_offset < conn.partial.size()) {
      const ssize_t n = ::write(conn.fd.get(),
                                conn.partial.data() + conn.partial_offset,
                                conn.partial.size() - conn.partial_offset);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        return false;  // connection failed
      }
      conn.partial_offset += static_cast<std::size_t>(n);
      if (conn.partial_offset < conn.partial.size()) continue;
      ++conn.sent_frames;
      conn.partial.clear();
      conn.partial_offset = 0;
    }
    if (queue_.empty()) return true;
    // Fetch the head-of-queue packet (the Fig. 2 fetch step).
    const Frame frame = queue_.front();
    queue_.pop_front();
    if (conn.pulls) conn.pulls->inc();
    if (config_.flight) {
      obs::FlightEvent e;
      e.t_ns = static_cast<std::int64_t>(monotonic_ns());
      e.kind = obs::FlightEventKind::kPull;
      e.packet = static_cast<std::int64_t>(frame.packet_number);
      e.path = conn.path;
      e.queue = static_cast<std::int64_t>(queue_.size());
      config_.flight->record(e);
    }
    conn.partial.assign(config_.frame_bytes, 0);
    encode_frame_header(frame, conn.partial.data());
    conn.partial_offset = 0;
  }
}

ServerStats DmpInetServer::run() {
  const std::uint64_t run_epoch_ns = monotonic_ns();
  const auto elapsed_s = [run_epoch_ns] {
    return static_cast<double>(monotonic_ns() - run_epoch_ns) * 1e-9;
  };

  // Wall-clock observability: the same counter/gauge/probe layer the
  // simulator uses, driven by the poll loop instead of the scheduler.
  obs::Counter* m_generated = nullptr;
  std::vector<obs::Counter*> m_pulls;
  std::unique_ptr<obs::WallClockProbe> wall_probe;
  if (config_.metrics) {
    m_generated = &config_.metrics->counter("server.generated");
    for (std::size_t i = 0; i < config_.num_paths; ++i) {
      m_pulls.push_back(&config_.metrics->counter("server.pulls.path" +
                                                  std::to_string(i)));
    }
    config_.metrics->gauge("server.queue_depth").set_sampler([this] {
      return static_cast<double>(queue_.size());
    });
    if (config_.probe_interval_s > 0.0 && !config_.probe_csv_path.empty()) {
      wall_probe = std::make_unique<obs::WallClockProbe>(
          *config_.metrics, std::vector<std::string>{"server.queue_depth"},
          config_.probe_csv_path,
          static_cast<std::uint64_t>(config_.probe_interval_s * 1e9));
    }
  }

  std::vector<Connection> connections;
  for (std::size_t i = 0; i < config_.num_paths; ++i) {
    Fd fd = accept_with_timeout(listener_, config_.accept_timeout_ms);
    if (!fd.valid()) throw std::runtime_error{"accept timed out"};
    set_nonblocking(fd);
    set_no_delay(fd);
    set_send_buffer(fd, config_.send_buffer_bytes);
    Connection conn;
    conn.fd = std::move(fd);
    if (!m_pulls.empty()) conn.pulls = m_pulls[i];
    conn.path = static_cast<std::int32_t>(i);
    connections.push_back(std::move(conn));
    if (config_.events && config_.events->enabled(obs::Severity::kInfo)) {
      config_.events->record(elapsed_s(), obs::Severity::kInfo, "accept",
                             {obs::EventField::num("path", i)});
    }
  }

  ServerStats stats;
  stats.sent_per_path.assign(config_.num_paths, 0);
  const auto total_packets = static_cast<std::int64_t>(
      std::llround(config_.mu_pps * config_.duration_s));
  const double period_ns = 1e9 / config_.mu_pps;
  const std::uint64_t t0 = monotonic_ns();
  stats.stream_start_ns = t0;
  if (config_.flight) {
    config_.flight->set_meta(config_.mu_pps, static_cast<std::int64_t>(t0),
                             total_packets);
  }
  std::int64_t generated = 0;
  std::size_t rotate = 0;

  std::vector<pollfd> pfds(connections.size());
  while (true) {
    if (stop_.load(std::memory_order_relaxed)) break;
    const std::uint64_t now = monotonic_ns();

    // Generate every packet whose scheduled instant has passed.
    while (generated < total_packets) {
      const std::uint64_t due =
          t0 + static_cast<std::uint64_t>(
                   std::llround(static_cast<double>(generated) * period_ns));
      if (due > now) break;
      queue_.push_back(Frame{static_cast<std::uint64_t>(generated), due});
      ++generated;
      if (m_generated) m_generated->inc();
      if (config_.flight) {
        obs::FlightEvent e;
        e.t_ns = static_cast<std::int64_t>(now);
        e.kind = obs::FlightEventKind::kGenerate;
        e.packet = generated - 1;
        e.queue = static_cast<std::int64_t>(queue_.size());
        config_.flight->record(e);
      }
    }
    stats.max_queue_packets = std::max(stats.max_queue_packets, queue_.size());
    if (wall_probe) wall_probe->poll(now);

    // Offer data to every connection (rotating start for fairness).
    for (std::size_t i = 0; i < connections.size(); ++i) {
      auto& conn = connections[(rotate + i) % connections.size()];
      if (!pump_connection(conn)) {
        throw std::runtime_error{"stream connection failed"};
      }
    }
    rotate = (rotate + 1) % connections.size();

    const bool flushed = queue_.empty() &&
                         std::all_of(connections.begin(), connections.end(),
                                     [](const Connection& c) {
                                       return c.partial.empty();
                                     });
    if (generated == total_packets && flushed) break;

    // Sleep until the next generation instant or until a blocked
    // connection becomes writable again.
    int timeout_ms = 1000;
    if (generated < total_packets) {
      const std::uint64_t due =
          t0 + static_cast<std::uint64_t>(
                   std::llround(static_cast<double>(generated) * period_ns));
      const std::uint64_t now2 = monotonic_ns();
      timeout_ms = due > now2
                       ? static_cast<int>((due - now2) / 1'000'000ull) + 1
                       : 0;
    }
    for (std::size_t i = 0; i < connections.size(); ++i) {
      pfds[i].fd = connections[i].fd.get();
      const bool wants_out =
          !connections[i].partial.empty() || !queue_.empty();
      pfds[i].events = static_cast<short>(wants_out ? POLLOUT : 0);
      pfds[i].revents = 0;
    }
    if (::poll(pfds.data(), pfds.size(), timeout_ms) < 0 && errno != EINTR) {
      throw std::runtime_error{std::string{"poll: "} + std::strerror(errno)};
    }
  }

  stats.packets_generated = generated;
  for (std::size_t i = 0; i < connections.size(); ++i) {
    stats.sent_per_path[i] = connections[i].sent_frames;
  }
  if (config_.metrics) config_.metrics->freeze_gauges();
  if (config_.events && config_.events->enabled(obs::Severity::kInfo)) {
    config_.events->record(
        elapsed_s(), obs::Severity::kInfo, "stream_end",
        {obs::EventField::num("generated", generated),
         obs::EventField::num("max_queue", stats.max_queue_packets)});
  }
  // Destructors close the sockets, signalling EOF to the client.
  return stats;
}

}  // namespace dmp::inet
