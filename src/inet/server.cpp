#include "inet/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "fault/fault_plan.hpp"
#include "obs/probe.hpp"

namespace dmp::inet {

namespace {

std::uint64_t monotonic_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

// Closes `fd` with a TCP RST instead of an orderly FIN, so the peer sees a
// hard connection failure (ECONNRESET), not a clean end of stream.
void close_with_rst(Fd& fd) {
  if (!fd.valid()) return;
  linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
  fd.reset();
}

}  // namespace

DmpInetServer::DmpInetServer(ServerConfig config) : config_(config) {
  if (config_.num_paths == 0) throw std::invalid_argument{"need >= 1 path"};
  if (config_.mu_pps <= 0.0) throw std::invalid_argument{"mu must be > 0"};
  if (config_.frame_bytes < kFrameHeaderBytes) {
    throw std::invalid_argument{"frame too small"};
  }
  if (!config_.faults.empty()) {
    const auto plan = fault::FaultPlan::parse(config_.faults);
    for (const auto& e : plan.events) {
      if (e.kind != fault::FaultKind::kConnReset) {
        throw std::invalid_argument{
            "inet server faults: only conn_reset applies at this layer, got " +
            e.to_string()};
      }
      std::size_t path = 0;
      if (!fault::parse_path_index(e.target, &path) ||
          path >= config_.num_paths) {
        throw std::invalid_argument{"inet server faults: unknown target '" +
                                    e.target + "'"};
      }
      resets_.emplace_back(e.t_s, path);
    }
  }
  listener_ = listen_on(config_.bind_ip, config_.port, &port_);
}

std::size_t DmpInetServer::accept_path(int timeout_ms, Hello* hello, Fd* fd) {
  Fd accepted = accept_with_timeout(listener_, timeout_ms);
  if (!accepted.valid()) return config_.num_paths;
  // Read the fixed-size hello before the socket joins the nonblocking poll
  // set; a peer that sends nothing within 2 s is dropped.
  unsigned char buf[kHelloBytes];
  std::size_t got = 0;
  while (got < kHelloBytes) {
    pollfd p{accepted.get(), POLLIN, 0};
    if (::poll(&p, 1, 2000) <= 0) return config_.num_paths;
    const ssize_t n = ::read(accepted.get(), buf + got, kHelloBytes - got);
    if (n <= 0) return config_.num_paths;
    got += static_cast<std::size_t>(n);
  }
  if (!decode_hello(buf, hello)) return config_.num_paths;
  if (hello->path_id >= config_.num_paths) return config_.num_paths;
  *fd = std::move(accepted);
  return static_cast<std::size_t>(hello->path_id);
}

bool DmpInetServer::pump_connection(Connection& conn) {
  // Flush a partially-written frame first: it already belongs to this path.
  while (true) {
    if (conn.partial_offset < conn.partial.size()) {
      const ssize_t n = ::write(conn.fd.get(),
                                conn.partial.data() + conn.partial_offset,
                                conn.partial.size() - conn.partial_offset);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        return false;  // connection failed
      }
      conn.partial_offset += static_cast<std::size_t>(n);
      if (conn.partial_offset < conn.partial.size()) continue;
      ++conn.sent_frames;
      conn.partial.clear();
      conn.partial_offset = 0;
    }
    if (queue_.empty()) return true;
    // Fetch the head-of-queue packet (the Fig. 2 fetch step).
    const Frame frame = queue_.front();
    queue_.pop_front();
    conn.partial_frame = frame;
    conn.replay.push_back(frame);
    while (conn.replay.size() > config_.replay_frames) conn.replay.pop_front();
    if (conn.pulls) conn.pulls->inc();
    if (config_.flight) {
      obs::FlightEvent e;
      e.t_ns = static_cast<std::int64_t>(monotonic_ns());
      e.kind = obs::FlightEventKind::kPull;
      e.packet = static_cast<std::int64_t>(frame.packet_number);
      e.path = conn.path;
      e.queue = static_cast<std::int64_t>(queue_.size());
      config_.flight->record(e);
    }
    conn.partial.assign(config_.frame_bytes, 0);
    encode_frame_header(frame, conn.partial.data());
    conn.partial_offset = 0;
  }
}

ServerStats DmpInetServer::run() {
  const std::uint64_t run_epoch_ns = monotonic_ns();
  const auto elapsed_s = [run_epoch_ns] {
    return static_cast<double>(monotonic_ns() - run_epoch_ns) * 1e-9;
  };

  // Wall-clock observability: the same counter/gauge/probe layer the
  // simulator uses, driven by the poll loop instead of the scheduler.
  obs::Counter* m_generated = nullptr;
  std::vector<obs::Counter*> m_pulls;
  std::unique_ptr<obs::WallClockProbe> wall_probe;
  if (config_.metrics) {
    m_generated = &config_.metrics->counter("server.generated");
    for (std::size_t i = 0; i < config_.num_paths; ++i) {
      m_pulls.push_back(&config_.metrics->counter("server.pulls.path" +
                                                  std::to_string(i)));
    }
    config_.metrics->gauge("server.queue_depth").set_sampler([this] {
      return static_cast<double>(queue_.size());
    });
    if (config_.probe_interval_s > 0.0 && !config_.probe_csv_path.empty()) {
      wall_probe = std::make_unique<obs::WallClockProbe>(
          *config_.metrics, std::vector<std::string>{"server.queue_depth"},
          config_.probe_csv_path,
          static_cast<std::uint64_t>(config_.probe_interval_s * 1e9));
    }
  }

  // Initial accepts: each client connection declares its path index in the
  // hello, so path identity survives accept-order races and reconnects.
  std::vector<Connection> connections(config_.num_paths);
  for (std::size_t i = 0; i < config_.num_paths; ++i) {
    connections[i].path = static_cast<std::int32_t>(i);
    if (!m_pulls.empty()) connections[i].pulls = m_pulls[i];
  }
  for (std::size_t accepted = 0; accepted < config_.num_paths;) {
    Hello hello;
    Fd fd;
    const std::size_t k = accept_path(config_.accept_timeout_ms, &hello, &fd);
    if (k >= config_.num_paths) throw std::runtime_error{"accept timed out"};
    if (connections[k].open) throw std::runtime_error{"duplicate path hello"};
    set_nonblocking(fd);
    set_no_delay(fd);
    set_send_buffer(fd, config_.send_buffer_bytes);
    connections[k].fd = std::move(fd);
    connections[k].open = true;
    ++accepted;
    if (config_.events && config_.events->enabled(obs::Severity::kInfo)) {
      config_.events->record(elapsed_s(), obs::Severity::kInfo, "accept",
                             {obs::EventField::num("path", k)});
    }
  }

  ServerStats stats;
  stats.sent_per_path.assign(config_.num_paths, 0);
  const auto total_packets = static_cast<std::int64_t>(
      std::llround(config_.mu_pps * config_.duration_s));
  const double period_ns = 1e9 / config_.mu_pps;
  const std::uint64_t t0 = monotonic_ns();
  stats.stream_start_ns = t0;
  if (config_.flight) {
    config_.flight->set_meta(config_.mu_pps, static_cast<std::int64_t>(t0),
                             total_packets);
  }
  std::int64_t generated = 0;
  std::size_t rotate = 0;
  std::size_t next_reset = 0;
  std::uint64_t all_closed_since = 0;  // 0 = at least one path open

  // Closes a path and re-queues its in-flight frame so a healthy path (or
  // the reconnected one) carries it.
  const auto close_path = [this](Connection& conn, bool rst) {
    if (rst) {
      close_with_rst(conn.fd);
    } else {
      conn.fd.reset();
    }
    conn.open = false;
    if (!conn.partial.empty()) {
      queue_.push_front(conn.partial_frame);
      conn.partial.clear();
      conn.partial_offset = 0;
    }
  };

  std::vector<pollfd> pfds(connections.size() + 1);  // + the listener
  while (true) {
    if (stop_.load(std::memory_order_relaxed)) break;
    const std::uint64_t now = monotonic_ns();

    // Fire due conn_reset fault events: the path drops with a TCP RST.
    while (next_reset < resets_.size() &&
           resets_[next_reset].first <= static_cast<double>(now - t0) * 1e-9) {
      const std::size_t k = resets_[next_reset].second;
      ++next_reset;
      ++stats.conn_resets;
      if (config_.events && config_.events->enabled(obs::Severity::kWarn)) {
        config_.events->record(elapsed_s(), obs::Severity::kWarn, "conn_reset",
                               {obs::EventField::num("path", k)});
      }
      if (connections[k].open) close_path(connections[k], true);
    }

    // Generate every packet whose scheduled instant has passed.
    while (generated < total_packets) {
      const std::uint64_t due =
          t0 + static_cast<std::uint64_t>(
                   std::llround(static_cast<double>(generated) * period_ns));
      if (due > now) break;
      queue_.push_back(Frame{static_cast<std::uint64_t>(generated), due});
      ++generated;
      if (m_generated) m_generated->inc();
      if (config_.telemetry_generated) {
        config_.telemetry_generated->bump(
            SimTime::nanos(static_cast<std::int64_t>(now - t0)));
      }
      if (config_.flight) {
        obs::FlightEvent e;
        e.t_ns = static_cast<std::int64_t>(now);
        e.kind = obs::FlightEventKind::kGenerate;
        e.packet = generated - 1;
        e.queue = static_cast<std::int64_t>(queue_.size());
        config_.flight->record(e);
      }
    }
    stats.max_queue_packets = std::max(stats.max_queue_packets, queue_.size());
    if (config_.telemetry_queue_depth) {
      config_.telemetry_queue_depth->add(
          SimTime::nanos(static_cast<std::int64_t>(now - t0)),
          static_cast<double>(queue_.size()));
    }
    if (wall_probe) wall_probe->poll(now);

    // Offer data to every open connection (rotating start for fairness).
    for (std::size_t i = 0; i < connections.size(); ++i) {
      auto& conn = connections[(rotate + i) % connections.size()];
      if (!conn.open) continue;
      if (!pump_connection(conn)) {
        // Without a fault schedule a broken pipe is a hard error (the
        // legacy behaviour); under faults the path just goes down until
        // the client reconnects.
        if (resets_.empty()) {
          throw std::runtime_error{"stream connection failed"};
        }
        close_path(conn, false);
      }
    }
    rotate = (rotate + 1) % connections.size();

    const bool flushed = queue_.empty() &&
                         std::all_of(connections.begin(), connections.end(),
                                     [](const Connection& c) {
                                       return !c.open || c.partial.empty();
                                     });
    if (generated == total_packets && flushed) break;

    // If every client is gone, wait at most the accept timeout for a
    // reconnect before declaring the stream dead.
    const bool any_open = std::any_of(
        connections.begin(), connections.end(),
        [](const Connection& c) { return c.open; });
    if (any_open) {
      all_closed_since = 0;
    } else if (all_closed_since == 0) {
      all_closed_since = now;
    } else if (config_.accept_timeout_ms > 0 &&
               now - all_closed_since >
                   static_cast<std::uint64_t>(config_.accept_timeout_ms) *
                       1'000'000ull) {
      break;
    }

    // Sleep until the next generation instant or until a blocked
    // connection becomes writable again.
    int timeout_ms = 1000;
    if (generated < total_packets) {
      const std::uint64_t due =
          t0 + static_cast<std::uint64_t>(
                   std::llround(static_cast<double>(generated) * period_ns));
      const std::uint64_t now2 = monotonic_ns();
      timeout_ms = due > now2
                       ? static_cast<int>((due - now2) / 1'000'000ull) + 1
                       : 0;
    }
    // Wake for the next scheduled conn_reset too.
    if (next_reset < resets_.size()) {
      const std::uint64_t due =
          t0 + static_cast<std::uint64_t>(resets_[next_reset].first * 1e9);
      const std::uint64_t now2 = monotonic_ns();
      const int ms = due > now2
                         ? static_cast<int>((due - now2) / 1'000'000ull) + 1
                         : 0;
      timeout_ms = std::min(timeout_ms, ms);
    }
    for (std::size_t i = 0; i < connections.size(); ++i) {
      pfds[i].fd = connections[i].open ? connections[i].fd.get() : -1;
      const bool wants_out =
          connections[i].open &&
          (!connections[i].partial.empty() || !queue_.empty());
      pfds[i].events = static_cast<short>(wants_out ? POLLOUT : 0);
      pfds[i].revents = 0;
    }
    // The listener joins the poll set while any path is down, so a
    // reconnecting client is served immediately.
    const bool any_down = std::any_of(
        connections.begin(), connections.end(),
        [](const Connection& c) { return !c.open; });
    pfds.back().fd = any_down ? listener_.get() : -1;
    pfds.back().events = POLLIN;
    pfds.back().revents = 0;
    if (::poll(pfds.data(), pfds.size(), timeout_ms) < 0 && errno != EINTR) {
      throw std::runtime_error{std::string{"poll: "} + std::strerror(errno)};
    }

    // Serve a mid-run reconnect: the resume hello names the path and the
    // last frame the client received on it.
    if (any_down && (pfds.back().revents & POLLIN) != 0) {
      Hello hello;
      Fd fd;
      const std::size_t k = accept_path(0, &hello, &fd);
      if (k < config_.num_paths && !connections[k].open) {
        set_nonblocking(fd);
        set_no_delay(fd);
        set_send_buffer(fd, config_.send_buffer_bytes);
        auto& conn = connections[k];
        conn.fd = std::move(fd);
        conn.open = true;
        conn.partial.clear();
        conn.partial_offset = 0;
        // Resume replay: everything this path sent after the client's last
        // received frame returns to the FRONT of the shared queue in order
        // (those frames may have died in the dead connection's kernel
        // buffers).  An unknown last_seq replays the whole retained window;
        // the client dedups.
        std::size_t start = 0;
        if (hello.last_seq != kFreshHello) {
          for (std::size_t j = conn.replay.size(); j > 0; --j) {
            if (conn.replay[j - 1].packet_number == hello.last_seq) {
              start = j;
              break;
            }
          }
        }
        const std::size_t replayed = conn.replay.size() - start;
        for (std::size_t j = conn.replay.size(); j > start; --j) {
          queue_.push_front(conn.replay[j - 1]);
        }
        ++stats.reaccepts;
        if (config_.events && config_.events->enabled(obs::Severity::kInfo)) {
          config_.events->record(elapsed_s(), obs::Severity::kInfo,
                                 "re_accept",
                                 {obs::EventField::num("path", k),
                                  obs::EventField::num("replayed", replayed)});
        }
      }
    }
  }

  // Clean end of stream: every surviving path with no half-written frame
  // gets a sentinel so the client can tell a finished stream (EOF after
  // the sentinel) from a dead connection (EOF without it).
  {
    std::vector<unsigned char> sentinel(config_.frame_bytes, 0);
    encode_frame_header(Frame{kEndOfStream, monotonic_ns()}, sentinel.data());
    for (auto& conn : connections) {
      if (!conn.open || !conn.partial.empty()) continue;
      std::size_t off = 0;
      const std::uint64_t give_up = monotonic_ns() + 2'000'000'000ull;
      while (off < sentinel.size() && monotonic_ns() < give_up) {
        const ssize_t n = ::write(conn.fd.get(), sentinel.data() + off,
                                  sentinel.size() - off);
        if (n > 0) {
          off += static_cast<std::size_t>(n);
          continue;
        }
        if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) break;
        pollfd p{conn.fd.get(), POLLOUT, 0};
        ::poll(&p, 1, 100);
      }
    }
  }

  stats.packets_generated = generated;
  for (std::size_t i = 0; i < connections.size(); ++i) {
    stats.sent_per_path[i] = connections[i].sent_frames;
  }
  if (config_.metrics) config_.metrics->freeze_gauges();
  if (config_.events && config_.events->enabled(obs::Severity::kInfo)) {
    config_.events->record(
        elapsed_s(), obs::Severity::kInfo, "stream_end",
        {obs::EventField::num("generated", generated),
         obs::EventField::num("max_queue", stats.max_queue_packets)});
  }
  // Destructors close the sockets, signalling EOF to the client.
  return stats;
}

}  // namespace dmp::inet
