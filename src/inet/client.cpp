#include "inet/client.hpp"

#include <poll.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace dmp::inet {

namespace {

std::uint64_t monotonic_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace

DmpInetClient::DmpInetClient(ClientConfig config) : config_(config) {
  if (config_.num_paths == 0) throw std::invalid_argument{"need >= 1 path"};
  if (config_.mu_pps <= 0.0) throw std::invalid_argument{"mu must be > 0"};
  if (!config_.read_rate_limit_bps.empty() &&
      config_.read_rate_limit_bps.size() != config_.num_paths) {
    throw std::invalid_argument{"one rate limit per path (or none)"};
  }
  if (config_.reconnect_max_retries < 0 || config_.idle_timeout_ms < 0) {
    throw std::invalid_argument{"reconnect knobs must be >= 0"};
  }
  if (config_.reconnect_backoff_ms <= 0 ||
      config_.reconnect_backoff_cap_ms < config_.reconnect_backoff_ms) {
    throw std::invalid_argument{"backoff must be > 0 and cap >= backoff"};
  }
}

ClientReport DmpInetClient::run() {
  struct Path {
    Fd fd;
    FrameParser parser{kDefaultFrameBytes};
    bool open = true;        // still part of the run
    bool connected = false;  // has a live socket
    bool done = false;       // end-of-stream sentinel seen
    std::uint64_t last_seq = kFreshHello;  // newest frame number on the path
    int retries_left = 0;
    int backoff_ms = 0;
    std::uint64_t next_attempt_ns = 0;
    std::uint64_t last_rx_ns = 0;
    double budget_bytes = 0.0;  // token bucket for the optional throttle
    std::uint64_t last_refill_ns = 0;
    std::uint64_t received = 0;
  };

  std::vector<obs::Counter*> m_frames;
  obs::Histogram* m_delay = nullptr;
  if (config_.metrics) {
    for (std::size_t k = 0; k < config_.num_paths; ++k) {
      m_frames.push_back(&config_.metrics->counter("client.path" +
                                                   std::to_string(k) +
                                                   ".frames"));
    }
    m_delay = &config_.metrics->histogram("client.delay_s");
  }
  // Time base for the windowed frame channel (telemetry only).
  const std::uint64_t telemetry_t0 = monotonic_ns();

  // Connects and sends the hello declaring the path index and the resume
  // point (kFreshHello on the first connect).
  const auto open_connection = [this](std::size_t k, std::uint64_t last_seq) {
    Fd fd = connect_to(config_.server_ip, config_.port);
    unsigned char hello[kHelloBytes];
    encode_hello(Hello{static_cast<std::uint64_t>(k), last_seq}, hello);
    std::size_t off = 0;
    while (off < kHelloBytes) {
      const ssize_t n = ::write(fd.get(), hello + off, kHelloBytes - off);
      if (n < 0) throw std::runtime_error{"hello write failed"};
      off += static_cast<std::size_t>(n);
    }
    set_nonblocking(fd);
    return fd;
  };

  std::vector<Path> paths;
  for (std::size_t k = 0; k < config_.num_paths; ++k) {
    Path path;
    path.fd = open_connection(k, kFreshHello);
    path.connected = true;
    path.parser = FrameParser(config_.frame_bytes);
    path.retries_left = config_.reconnect_max_retries;
    path.backoff_ms = config_.reconnect_backoff_ms;
    path.last_rx_ns = monotonic_ns();
    path.last_refill_ns = path.last_rx_ns;
    paths.push_back(std::move(path));
  }

  struct Arrival {
    std::uint64_t number;
    std::uint64_t generated_ns;
    std::uint64_t arrived_ns;
    std::uint32_t path;
  };
  std::vector<Arrival> arrivals;
  std::vector<bool> seen;  // dedup of frames replayed after a reconnect
  std::uint64_t reconnects = 0;
  std::uint64_t duplicates = 0;
  std::size_t open_paths = paths.size();

  // A connection died before delivering the sentinel: retry with backoff if
  // budget remains, otherwise give the path up.
  const auto path_dead = [&](Path& path, std::uint64_t now) {
    path.fd.reset();
    path.connected = false;
    if (path.done || path.retries_left <= 0) {
      path.open = false;
      --open_paths;
      return;
    }
    path.next_attempt_ns =
        now + static_cast<std::uint64_t>(path.backoff_ms) * 1'000'000ull;
  };

  const std::uint64_t idle_ns =
      static_cast<std::uint64_t>(config_.idle_timeout_ms) * 1'000'000ull;

  std::vector<pollfd> pfds(paths.size());
  std::vector<unsigned char> buffer(64 * 1024);
  while (open_paths > 0) {
    const std::uint64_t loop_now = monotonic_ns();
    int timeout_ms = -1;
    const auto wake_at = [&](std::uint64_t at_ns) {
      const int ms =
          at_ns > loop_now
              ? static_cast<int>((at_ns - loop_now) / 1'000'000ull) + 1
              : 0;
      timeout_ms = timeout_ms < 0 ? ms : std::min(timeout_ms, ms);
    };
    for (std::size_t k = 0; k < paths.size(); ++k) {
      pfds[k].fd =
          paths[k].open && paths[k].connected ? paths[k].fd.get() : -1;
      pfds[k].events = POLLIN;
      pfds[k].revents = 0;
      if (!paths[k].open) continue;
      if (!paths[k].connected) {
        wake_at(paths[k].next_attempt_ns);
        continue;
      }
      // Throttled paths with an exhausted budget wait for a refill instead
      // of reading.
      if (!config_.read_rate_limit_bps.empty() &&
          config_.read_rate_limit_bps[k] > 0.0 &&
          paths[k].budget_bytes < 1.0) {
        pfds[k].fd = -1;
        timeout_ms = timeout_ms < 0 ? 2 : std::min(timeout_ms, 2);
      }
      if (idle_ns > 0 && !paths[k].done) {
        wake_at(paths[k].last_rx_ns + idle_ns);
      }
    }
    const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      throw std::runtime_error{std::string{"poll: "} + std::strerror(errno)};
    }

    for (std::size_t k = 0; k < paths.size(); ++k) {
      auto& path = paths[k];
      if (!path.open) continue;
      const std::uint64_t now = monotonic_ns();

      if (!path.connected) {
        if (now < path.next_attempt_ns) continue;
        --path.retries_left;
        try {
          path.fd = open_connection(k, path.last_seq);
          path.connected = true;
          path.parser = FrameParser(config_.frame_bytes);
          path.last_rx_ns = now;
          path.last_refill_ns = now;
          path.budget_bytes = 0.0;
          // A successful resume refreshes the outage budget.
          path.retries_left = config_.reconnect_max_retries;
          path.backoff_ms = config_.reconnect_backoff_ms;
          ++reconnects;
        } catch (const std::exception&) {
          if (path.retries_left <= 0) {
            path.open = false;
            --open_paths;
            continue;
          }
          path.backoff_ms = std::min(path.backoff_ms * 2,
                                     config_.reconnect_backoff_cap_ms);
          path.next_attempt_ns =
              now + static_cast<std::uint64_t>(path.backoff_ms) * 1'000'000ull;
        }
        continue;
      }

      if (idle_ns > 0 && !path.done && now - path.last_rx_ns > idle_ns) {
        path_dead(path, now);
        continue;
      }

      std::size_t limit = buffer.size();
      if (!config_.read_rate_limit_bps.empty() &&
          config_.read_rate_limit_bps[k] > 0.0) {
        path.budget_bytes +=
            config_.read_rate_limit_bps[k] / 8.0 *
            (static_cast<double>(now - path.last_refill_ns) * 1e-9);
        path.budget_bytes = std::min(
            path.budget_bytes, 8.0 * static_cast<double>(config_.frame_bytes));
        path.last_refill_ns = now;
        limit = static_cast<std::size_t>(path.budget_bytes);
        if (limit == 0) continue;
      } else if ((pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }

      const ssize_t n = ::read(path.fd.get(), buffer.data(),
                               std::min(limit, buffer.size()));
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
        if (errno == ECONNRESET || errno == EPIPE || errno == ETIMEDOUT) {
          path_dead(path, now);
          continue;
        }
        throw std::runtime_error{std::string{"read: "} + std::strerror(errno)};
      }
      if (n == 0) {
        path_dead(path, now);
        continue;
      }
      if (!config_.read_rate_limit_bps.empty() &&
          config_.read_rate_limit_bps[k] > 0.0) {
        path.budget_bytes -= static_cast<double>(n);
      }
      path.last_rx_ns = now;
      const auto path32 = static_cast<std::uint32_t>(k);
      path.parser.feed(
          buffer.data(), static_cast<std::size_t>(n), [&](const Frame& frame) {
            if (frame.packet_number == kEndOfStream) {
              path.done = true;
              return;
            }
            path.last_seq = frame.packet_number;
            ++path.received;
            const auto number = static_cast<std::size_t>(frame.packet_number);
            if (number < seen.size() && seen[number]) {
              ++duplicates;
              return;
            }
            if (number >= seen.size()) seen.resize(number + 1, false);
            seen[number] = true;
            arrivals.push_back(
                Arrival{frame.packet_number, frame.generated_ns, now, path32});
            if (config_.flight) {
              obs::FlightEvent e;
              e.t_ns = static_cast<std::int64_t>(now);
              e.kind = obs::FlightEventKind::kArrive;
              e.packet = static_cast<std::int64_t>(frame.packet_number);
              e.path = static_cast<std::int32_t>(path32);
              config_.flight->record(e);
            }
            if (!m_frames.empty()) m_frames[k]->inc();
            if (config_.telemetry_frames) {
              config_.telemetry_frames->bump(SimTime::nanos(
                  static_cast<std::int64_t>(now - telemetry_t0)));
            }
            if (m_delay && now >= frame.generated_ns) {
              m_delay->observe(
                  static_cast<double>(now - frame.generated_ns) * 1e-9);
            }
            if (config_.delay_sketch && now >= frame.generated_ns) {
              config_.delay_sketch->add(
                  static_cast<double>(now - frame.generated_ns) * 1e-9);
            }
          });
    }
  }

  // Convert to epoch-relative times: packet n was generated at
  // t0 + n/mu, so t0 recovers from any frame.
  ClientReport report;
  report.trace = StreamTrace(config_.mu_pps);
  if (!arrivals.empty()) {
    const double period_ns = 1e9 / config_.mu_pps;
    const std::uint64_t t0 =
        arrivals.front().generated_ns -
        static_cast<std::uint64_t>(std::llround(
            static_cast<double>(arrivals.front().number) * period_ns));
    if (config_.flight) {
      // Same epoch the server stamped into the frames, so the two traces
      // (server-side and client-side) line up without clock negotiation.
      config_.flight->set_meta(config_.mu_pps,
                               static_cast<std::int64_t>(t0));
    }
    for (const auto& a : arrivals) {
      report.trace.record(
          static_cast<std::int64_t>(a.number),
          SimTime::nanos(static_cast<std::int64_t>(a.arrived_ns - t0)),
          a.path);
    }
  }
  report.frames_received = static_cast<std::int64_t>(arrivals.size());
  for (const auto& path : paths) {
    report.received_per_path.push_back(path.received);
  }
  report.reconnects = reconnects;
  report.duplicate_frames = duplicates;
  return report;
}

}  // namespace dmp::inet
