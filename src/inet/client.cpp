#include "inet/client.hpp"

#include <poll.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace dmp::inet {

namespace {

std::uint64_t monotonic_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace

DmpInetClient::DmpInetClient(ClientConfig config) : config_(config) {
  if (config_.num_paths == 0) throw std::invalid_argument{"need >= 1 path"};
  if (config_.mu_pps <= 0.0) throw std::invalid_argument{"mu must be > 0"};
  if (!config_.read_rate_limit_bps.empty() &&
      config_.read_rate_limit_bps.size() != config_.num_paths) {
    throw std::invalid_argument{"one rate limit per path (or none)"};
  }
}

ClientReport DmpInetClient::run() {
  struct Path {
    Fd fd;
    FrameParser parser{kDefaultFrameBytes};
    bool open = true;
    double budget_bytes = 0.0;  // token bucket for the optional throttle
    std::uint64_t last_refill_ns = 0;
    std::uint64_t received = 0;
  };

  std::vector<obs::Counter*> m_frames;
  obs::Histogram* m_delay = nullptr;
  if (config_.metrics) {
    for (std::size_t k = 0; k < config_.num_paths; ++k) {
      m_frames.push_back(&config_.metrics->counter("client.path" +
                                                   std::to_string(k) +
                                                   ".frames"));
    }
    m_delay = &config_.metrics->histogram("client.delay_s");
  }

  std::vector<Path> paths;
  for (std::size_t k = 0; k < config_.num_paths; ++k) {
    Path path;
    path.fd = connect_to(config_.server_ip, config_.port);
    set_nonblocking(path.fd);
    path.parser = FrameParser(config_.frame_bytes);
    path.last_refill_ns = monotonic_ns();
    paths.push_back(std::move(path));
  }

  struct Arrival {
    std::uint64_t number;
    std::uint64_t generated_ns;
    std::uint64_t arrived_ns;
    std::uint32_t path;
  };
  std::vector<Arrival> arrivals;

  std::vector<pollfd> pfds(paths.size());
  std::vector<unsigned char> buffer(64 * 1024);
  std::size_t open_paths = paths.size();
  while (open_paths > 0) {
    int timeout_ms = -1;
    for (std::size_t k = 0; k < paths.size(); ++k) {
      pfds[k].fd = paths[k].open ? paths[k].fd.get() : -1;
      pfds[k].events = POLLIN;
      pfds[k].revents = 0;
      // Throttled paths with an exhausted budget wait for a refill instead
      // of reading.
      if (paths[k].open && !config_.read_rate_limit_bps.empty() &&
          config_.read_rate_limit_bps[k] > 0.0 &&
          paths[k].budget_bytes < 1.0) {
        pfds[k].fd = -1;
        timeout_ms = timeout_ms < 0 ? 2 : std::min(timeout_ms, 2);
      }
    }
    const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      throw std::runtime_error{std::string{"poll: "} + std::strerror(errno)};
    }

    for (std::size_t k = 0; k < paths.size(); ++k) {
      auto& path = paths[k];
      if (!path.open) continue;

      std::size_t limit = buffer.size();
      if (!config_.read_rate_limit_bps.empty() &&
          config_.read_rate_limit_bps[k] > 0.0) {
        const std::uint64_t now = monotonic_ns();
        path.budget_bytes +=
            config_.read_rate_limit_bps[k] / 8.0 *
            (static_cast<double>(now - path.last_refill_ns) * 1e-9);
        path.budget_bytes = std::min(
            path.budget_bytes, 8.0 * static_cast<double>(config_.frame_bytes));
        path.last_refill_ns = now;
        limit = static_cast<std::size_t>(path.budget_bytes);
        if (limit == 0) continue;
      } else if ((pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }

      const ssize_t n = ::read(path.fd.get(), buffer.data(),
                               std::min(limit, buffer.size()));
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
        throw std::runtime_error{std::string{"read: "} + std::strerror(errno)};
      }
      if (n == 0) {
        path.open = false;
        --open_paths;
        continue;
      }
      if (!config_.read_rate_limit_bps.empty() &&
          config_.read_rate_limit_bps[k] > 0.0) {
        path.budget_bytes -= static_cast<double>(n);
      }
      const std::uint64_t now = monotonic_ns();
      const auto path32 = static_cast<std::uint32_t>(k);
      path.parser.feed(buffer.data(), static_cast<std::size_t>(n),
                       [&](const Frame& frame) {
                         arrivals.push_back(Arrival{frame.packet_number,
                                                    frame.generated_ns, now,
                                                    path32});
                         ++path.received;
                         if (config_.flight) {
                           obs::FlightEvent e;
                           e.t_ns = static_cast<std::int64_t>(now);
                           e.kind = obs::FlightEventKind::kArrive;
                           e.packet =
                               static_cast<std::int64_t>(frame.packet_number);
                           e.path = static_cast<std::int32_t>(path32);
                           config_.flight->record(e);
                         }
                         if (!m_frames.empty()) m_frames[k]->inc();
                         if (m_delay && now >= frame.generated_ns) {
                           m_delay->observe(
                               static_cast<double>(now - frame.generated_ns) *
                               1e-9);
                         }
                       });
    }
  }

  // Convert to epoch-relative times: packet n was generated at
  // t0 + n/mu, so t0 recovers from any frame.
  ClientReport report;
  report.trace = StreamTrace(config_.mu_pps);
  if (!arrivals.empty()) {
    const double period_ns = 1e9 / config_.mu_pps;
    const std::uint64_t t0 =
        arrivals.front().generated_ns -
        static_cast<std::uint64_t>(std::llround(
            static_cast<double>(arrivals.front().number) * period_ns));
    if (config_.flight) {
      // Same epoch the server stamped into the frames, so the two traces
      // (server-side and client-side) line up without clock negotiation.
      config_.flight->set_meta(config_.mu_pps,
                               static_cast<std::int64_t>(t0));
    }
    for (const auto& a : arrivals) {
      report.trace.record(
          static_cast<std::int64_t>(a.number),
          SimTime::nanos(static_cast<std::int64_t>(a.arrived_ns - t0)),
          a.path);
    }
  }
  report.frames_received = static_cast<std::int64_t>(arrivals.size());
  for (const auto& path : paths) {
    report.received_per_path.push_back(path.received);
  }
  return report;
}

}  // namespace dmp::inet
