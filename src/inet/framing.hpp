// Wire format of DMP stream packets and the incremental byte-stream parser.
//
// Each video packet travels as a fixed-size frame (the paper streams
// 1448-byte packets — one MSS after TCP/IP headers):
//
//   [0..7]   packet number (little-endian uint64)
//   [8..15]  generation timestamp, ns on the server's monotonic clock
//   [16..]   payload padding up to frame_bytes
//
// TCP delivers a byte stream, so the receiver reassembles frames
// incrementally across read() boundaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace dmp::inet {

inline constexpr std::size_t kFrameHeaderBytes = 16;
inline constexpr std::size_t kDefaultFrameBytes = 1448;

struct Frame {
  std::uint64_t packet_number = 0;
  std::uint64_t generated_ns = 0;
};

// Writes the frame header into `buffer` (at least kFrameHeaderBytes long);
// the rest of the frame is payload padding.
void encode_frame_header(const Frame& frame, unsigned char* buffer);

// Incremental frame extractor.
class FrameParser {
 public:
  explicit FrameParser(std::size_t frame_bytes = kDefaultFrameBytes);

  // Consumes `len` bytes and invokes `on_frame` for each completed frame.
  void feed(const unsigned char* data, std::size_t len,
            const std::function<void(const Frame&)>& on_frame);

  std::size_t frame_bytes() const { return frame_bytes_; }
  std::size_t pending_bytes() const { return buffer_.size(); }

 private:
  std::size_t frame_bytes_;
  std::vector<unsigned char> buffer_;
};

}  // namespace dmp::inet
