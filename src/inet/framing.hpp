// Wire format of DMP stream packets and the incremental byte-stream parser.
//
// Each video packet travels as a fixed-size frame (the paper streams
// 1448-byte packets — one MSS after TCP/IP headers):
//
//   [0..7]   packet number (little-endian uint64)
//   [8..15]  generation timestamp, ns on the server's monotonic clock
//   [16..]   payload padding up to frame_bytes
//
// TCP delivers a byte stream, so the receiver reassembles frames
// incrementally across read() boundaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace dmp::inet {

inline constexpr std::size_t kFrameHeaderBytes = 16;
inline constexpr std::size_t kDefaultFrameBytes = 1448;

// A frame whose packet number is the sentinel marks a clean end of stream:
// the server sends one per path before closing, so the client can tell a
// finished stream (EOF after sentinel) from a dead connection (EOF without
// it) and only the latter triggers reconnection.
inline constexpr std::uint64_t kEndOfStream = ~0ull;

struct Frame {
  std::uint64_t packet_number = 0;
  std::uint64_t generated_ns = 0;
};

// Connection hello, sent by the client immediately after connect():
//
//   [0..7]   magic (little-endian uint64; rejects stray connections)
//   [8..15]  path id the client assigns this connection
//   [16..23] last packet number received on that path, or kFreshHello
//
// A resume hello (last_seq != kFreshHello) asks the server to re-queue the
// frames it sent on that path after `last_seq` — they may have died in the
// kernel buffers of the broken connection.
inline constexpr std::size_t kHelloBytes = 24;
inline constexpr std::uint64_t kHelloMagic = 0x4F4C4C4548504D44ull;  // "DMPHELLO"
inline constexpr std::uint64_t kFreshHello = ~0ull;

struct Hello {
  std::uint64_t path_id = 0;
  std::uint64_t last_seq = kFreshHello;
};

// Writes the hello into `buffer` (at least kHelloBytes long).
void encode_hello(const Hello& hello, unsigned char* buffer);

// Parses a hello from `buffer` (at least kHelloBytes long).  Returns false
// (and leaves `*out` untouched) if the magic does not match.
bool decode_hello(const unsigned char* buffer, Hello* out);

// Writes the frame header into `buffer` (at least kFrameHeaderBytes long);
// the rest of the frame is payload padding.
void encode_frame_header(const Frame& frame, unsigned char* buffer);

// Incremental frame extractor.
class FrameParser {
 public:
  explicit FrameParser(std::size_t frame_bytes = kDefaultFrameBytes);

  // Consumes `len` bytes and invokes `on_frame` for each completed frame.
  void feed(const unsigned char* data, std::size_t len,
            const std::function<void(const Frame&)>& on_frame);

  std::size_t frame_bytes() const { return frame_bytes_; }
  std::size_t pending_bytes() const { return buffer_.size(); }

 private:
  std::size_t frame_bytes_;
  std::vector<unsigned char> buffer_;
};

}  // namespace dmp::inet
