#include "inet/framing.hpp"

#include <cstring>
#include <stdexcept>

namespace dmp::inet {

namespace {

void put_u64(unsigned char* out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<unsigned char>(value >> (8 * i));
  }
}

std::uint64_t get_u64(const unsigned char* in) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return value;
}

}  // namespace

void encode_frame_header(const Frame& frame, unsigned char* buffer) {
  put_u64(buffer, frame.packet_number);
  put_u64(buffer + 8, frame.generated_ns);
}

void encode_hello(const Hello& hello, unsigned char* buffer) {
  put_u64(buffer, kHelloMagic);
  put_u64(buffer + 8, hello.path_id);
  put_u64(buffer + 16, hello.last_seq);
}

bool decode_hello(const unsigned char* buffer, Hello* out) {
  if (get_u64(buffer) != kHelloMagic) return false;
  out->path_id = get_u64(buffer + 8);
  out->last_seq = get_u64(buffer + 16);
  return true;
}

FrameParser::FrameParser(std::size_t frame_bytes) : frame_bytes_(frame_bytes) {
  if (frame_bytes < kFrameHeaderBytes) {
    throw std::invalid_argument{"frame size below header size"};
  }
}

void FrameParser::feed(const unsigned char* data, std::size_t len,
                       const std::function<void(const Frame&)>& on_frame) {
  buffer_.insert(buffer_.end(), data, data + len);
  std::size_t offset = 0;
  while (buffer_.size() - offset >= frame_bytes_) {
    Frame frame;
    frame.packet_number = get_u64(buffer_.data() + offset);
    frame.generated_ns = get_u64(buffer_.data() + offset + 8);
    on_frame(frame);
    offset += frame_bytes_;
  }
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(offset));
}

}  // namespace dmp::inet
