// Real-socket DMP-streaming server (the paper's Section-6 implementation).
//
// One thread, one poll() loop — which *is* the paper's server-queue lock:
// packet fetches by the per-path TCP senders are serialized by construction.
// A CBR generator appends packets to the shared queue; whenever a
// connection's kernel send buffer has room (POLLOUT), that connection
// fetches from the head of the queue until write() would block.  Small
// SO_SNDBUF values make blocking — and therefore the implicit bandwidth
// inference — responsive.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <deque>
#include <utility>
#include <vector>

#include "inet/framing.hpp"
#include "inet/socket.hpp"
#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/time_series.hpp"

namespace dmp::inet {

struct ServerConfig {
  std::string bind_ip = "127.0.0.1";  // "0.0.0.0" serves remote clients
  std::uint16_t port = 0;  // 0 = pick an ephemeral port
  std::size_t num_paths = 2;
  double mu_pps = 100.0;
  double duration_s = 10.0;
  std::size_t frame_bytes = kDefaultFrameBytes;
  int send_buffer_bytes = 16 * 1024;
  int accept_timeout_ms = 10000;

  // Optional wall-clock fault schedule (src/fault/ spec grammar).  Only
  // `conn_reset` events are valid at this layer — the constructor rejects
  // any other kind — and times are seconds after the stream starts.  Each
  // event force-closes the named path's connection with a TCP RST
  // (SO_LINGER 0); the partially-written frame is re-queued so another path
  // carries it, and a client configured to reconnect resumes the path with
  // a hello naming the last frame it received.  While any path is down the
  // listener stays in the poll set, so mid-run re-accepts replace the dead
  // connection without disturbing the healthy ones.
  std::string faults{};
  // Frames retained per path for resume-after-reconnect replay: on a resume
  // hello, retained frames newer than the client's last_seq are re-queued
  // (they may have died in the broken connection's kernel buffers).
  std::size_t replay_frames = 4096;

  // Optional wall-clock observability (never owned by the server; both may
  // be null).  When `metrics` is set, the run maintains `server.generated`,
  // per-path `server.pulls.path<k>` counters and a `server.queue_depth`
  // gauge; with `probe_interval_s > 0` and a CSV path, the poll loop also
  // samples those gauges into a time series.  `events` receives "accept"
  // and "stream_end" events (timestamps are seconds since run() started).
  obs::MetricsRegistry* metrics = nullptr;
  obs::EventLog* events = nullptr;
  double probe_interval_s = 0.0;
  std::string probe_csv_path;
  // Optional per-packet flight recorder (not owned; may be null).  Records
  // kGenerate / kPull span events with wall-clock (CLOCK_MONOTONIC) t_ns
  // and sets meta to the generation epoch.  The recorder is NOT thread-safe:
  // give the server and the client (usually on another thread) separate
  // recorders.
  obs::FlightRecorder* flight = nullptr;
  // Optional streaming-telemetry channels (not owned; may be null).  Fed
  // with wall-clock timestamps relative to the generation epoch, so the
  // windows line up with the simulator's sim-time channels: per-window
  // generated-frame counts and the shared queue depth sampled once per
  // poll iteration.
  obs::TimeSeriesChannel* telemetry_generated = nullptr;
  obs::TimeSeriesChannel* telemetry_queue_depth = nullptr;
};

struct ServerStats {
  std::int64_t packets_generated = 0;
  std::vector<std::uint64_t> sent_per_path;
  std::size_t max_queue_packets = 0;
  std::uint64_t stream_start_ns = 0;  // monotonic clock at generation start
  std::uint64_t conn_resets = 0;      // fault events fired
  std::uint64_t reaccepts = 0;        // mid-run reconnections served
};

class DmpInetServer {
 public:
  explicit DmpInetServer(ServerConfig config);

  // Bound listening port (valid immediately after construction).
  std::uint16_t port() const { return port_; }

  // Accepts num_paths connections, streams for duration_s, flushes the
  // queue, closes the connections and returns the statistics.  Throws on
  // socket errors or accept timeout.
  ServerStats run();

  // Asks a concurrently running run() to wind down early.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

 private:
  struct Connection {
    Fd fd;
    bool open = false;
    std::vector<unsigned char> partial;  // unwritten tail of a fetched frame
    std::size_t partial_offset = 0;
    Frame partial_frame{};  // the frame `partial` encodes (for re-queue)
    std::uint64_t sent_frames = 0;
    std::deque<Frame> replay;       // recently sent, for resume replay
    obs::Counter* pulls = nullptr;  // set when ServerConfig::metrics is
    std::int32_t path = -1;         // hello-declared path index
  };

  // Writes queued data into `conn` until EAGAIN or nothing left; returns
  // false if the connection failed.
  bool pump_connection(Connection& conn);

  // Accepts one connection and reads its hello.  Returns the hello-declared
  // path index, or num_paths if the hello is invalid (socket dropped).
  std::size_t accept_path(int timeout_ms, Hello* hello, Fd* fd);

  ServerConfig config_;
  Fd listener_;
  std::uint16_t port_ = 0;
  std::deque<Frame> queue_;
  // Parsed conn_reset schedule: (seconds after stream start, path index).
  std::vector<std::pair<double, std::size_t>> resets_;
  std::atomic<bool> stop_{false};
};

}  // namespace dmp::inet
