// RAII wrappers and helpers around POSIX TCP sockets used by the real
// (non-simulated) DMP-streaming implementation.
#pragma once

#include <cstdint>
#include <string>

namespace dmp::inet {

// Owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd();
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept;
  Fd& operator=(Fd&& other) noexcept;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release();
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

// Creates a listening TCP socket on bind_ip:port (port 0 = ephemeral;
// bind_ip "0.0.0.0" accepts from any interface).  Returns the socket;
// `*bound_port` receives the actual port.
Fd listen_on(const std::string& bind_ip, std::uint16_t port,
             std::uint16_t* bound_port);
Fd listen_on_loopback(std::uint16_t port, std::uint16_t* bound_port);

// Blocking connect to an IPv4 address in dotted-quad form.
Fd connect_to(const std::string& host_ip, std::uint16_t port);
Fd connect_to_loopback(std::uint16_t port);

// Accepts one connection, waiting at most `timeout_ms` (-1 = forever).
// Returns an invalid Fd on timeout.
Fd accept_with_timeout(const Fd& listener, int timeout_ms);

void set_nonblocking(const Fd& fd);
// Shrinks the kernel send buffer so a congested connection blocks quickly —
// the DMP bandwidth-inference mechanism depends on it.
void set_send_buffer(const Fd& fd, int bytes);
void set_no_delay(const Fd& fd);

}  // namespace dmp::inet
