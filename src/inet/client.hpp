// Real-socket DMP-streaming client: opens K TCP connections to the server,
// reassembles the frames from all paths, and evaluates playback timeliness
// exactly like the simulator's trace analysis (one machine, one monotonic
// clock, so generation timestamps and arrival times are directly
// comparable).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "inet/framing.hpp"
#include "inet/socket.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/sketch.hpp"
#include "obs/telemetry/time_series.hpp"
#include "stream/trace.hpp"

namespace dmp::inet {

struct ClientConfig {
  std::string server_ip = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t num_paths = 2;
  double mu_pps = 100.0;
  std::size_t frame_bytes = kDefaultFrameBytes;
  // Optional per-path read throttle in bytes/second (0 = unthrottled);
  // lets tests and demos emulate a slow path over loopback.
  std::vector<double> read_rate_limit_bps{};
  // Reconnect policy.  A path is dead when its connection delivers EOF or a
  // reset before the end-of-stream sentinel, or (with idle_timeout_ms > 0)
  // when it stays silent that long.  Each outage grants
  // `reconnect_max_retries` connection attempts with exponential backoff;
  // a successful reconnect sends a resume hello naming the last frame
  // received on the path, and resets the budget.  The default of 0 retries
  // keeps the legacy behaviour: EOF permanently closes the path.
  int reconnect_max_retries = 0;
  int reconnect_backoff_ms = 50;        // first retry delay; doubles per try
  int reconnect_backoff_cap_ms = 2000;  // backoff ceiling
  int idle_timeout_ms = 0;              // 0 = no idle-death detection
  // Optional wall-clock observability (not owned; may be null).  Maintains
  // per-path `client.path<k>.frames` counters and a `client.delay_s`
  // histogram of generation-to-arrival delay.
  obs::MetricsRegistry* metrics = nullptr;
  // Optional per-packet flight recorder (not owned; may be null).  Records
  // one kArrive event per reassembled frame with wall-clock
  // (CLOCK_MONOTONIC) t_ns; meta is set at the end of run() to the
  // generation epoch recovered from the frame headers, so it matches the
  // server-side recorder's epoch exactly.  NOT thread-safe: use a separate
  // recorder per thread.
  obs::FlightRecorder* flight = nullptr;
  // Optional streaming-telemetry hooks (not owned; may be null): a windowed
  // reassembled-frame channel (timestamps relative to run start) and a
  // quantile sketch of generation-to-arrival delay in seconds.
  obs::TimeSeriesChannel* telemetry_frames = nullptr;
  obs::QuantileSketch* delay_sketch = nullptr;
};

struct ClientReport {
  // Arrival trace relative to the server's generation epoch; all of
  // StreamTrace's late-fraction/ordering analyses apply.
  StreamTrace trace;
  std::int64_t frames_received = 0;
  std::vector<std::uint64_t> received_per_path;
  std::uint64_t reconnects = 0;        // successful resume handshakes
  std::uint64_t duplicate_frames = 0;  // replayed frames already received

  ClientReport() : trace(1.0) {}
};

class DmpInetClient {
 public:
  explicit DmpInetClient(ClientConfig config);

  // Connects, reads until the server closes every path, and returns the
  // assembled report.
  ClientReport run();

 private:
  ClientConfig config_;
};

}  // namespace dmp::inet
