#include "inet/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace dmp::inet {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error{what + ": " + std::strerror(errno)};
}

}  // namespace

Fd::~Fd() { reset(); }

Fd::Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset(other.fd_);
    other.fd_ = -1;
  }
  return *this;
}

int Fd::release() {
  return std::exchange(fd_, -1);
}

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

namespace {

in_addr_t parse_ipv4(const std::string& ip) {
  in_addr parsed{};
  if (::inet_pton(AF_INET, ip.c_str(), &parsed) != 1) {
    throw std::invalid_argument{"not an IPv4 dotted-quad address: " + ip};
  }
  return parsed.s_addr;
}

}  // namespace

Fd listen_on(const std::string& bind_ip, std::uint16_t port,
             std::uint16_t* bound_port) {
  Fd sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket");
  const int one = 1;
  ::setsockopt(sock.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = parse_ipv4(bind_ip);
  addr.sin_port = htons(port);
  if (::bind(sock.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    throw_errno("bind");
  }
  if (::listen(sock.get(), 16) != 0) throw_errno("listen");

  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof actual;
    if (::getsockname(sock.get(), reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
      throw_errno("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return sock;
}

Fd listen_on_loopback(std::uint16_t port, std::uint16_t* bound_port) {
  return listen_on("127.0.0.1", port, bound_port);
}

Fd connect_to(const std::string& host_ip, std::uint16_t port) {
  Fd sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = parse_ipv4(host_ip);
  addr.sin_port = htons(port);
  if (::connect(sock.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    throw_errno("connect");
  }
  return sock;
}

Fd connect_to_loopback(std::uint16_t port) {
  return connect_to("127.0.0.1", port);
}

Fd accept_with_timeout(const Fd& listener, int timeout_ms) {
  pollfd pfd{listener.get(), POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) throw_errno("poll");
  if (ready == 0) return Fd{};
  const int fd = ::accept(listener.get(), nullptr, nullptr);
  if (fd < 0) throw_errno("accept");
  return Fd{fd};
}

void set_nonblocking(const Fd& fd) {
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

void set_send_buffer(const Fd& fd, int bytes) {
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_SNDBUF, &bytes, sizeof bytes) != 0) {
    throw_errno("setsockopt(SO_SNDBUF)");
  }
}

void set_no_delay(const Fd& fd) {
  const int one = 1;
  if (::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one) != 0) {
    throw_errno("setsockopt(TCP_NODELAY)");
  }
}

}  // namespace dmp::inet
