// Periodic time-series sampling of registry gauges into CSV.
//
// `ProbeWriter` is the sampling core: given a registry and a list of gauge
// names it appends one CSV row (time + gauge values) per `sample()` call.
// `Probe` drives a ProbeWriter off the discrete-event `Scheduler` at a
// fixed simulated interval; `WallClockProbe` is the poll-based variant for
// the real-socket (`inet`) layer, where a single-threaded event loop calls
// `poll()` opportunistically and the probe decides when enough wall time
// has elapsed.  Nothing is scheduled and no file is opened until `start()`
// / first use, so an unused probe costs nothing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "util/csv.hpp"

namespace dmp::obs {

class ProbeWriter {
 public:
  // Opens `csv_path` and writes the header: time_s, <gauge names>.
  // Gauges are resolved (get-or-create) once, up front.
  ProbeWriter(MetricsRegistry& registry, std::vector<std::string> gauge_names,
              const std::string& csv_path);

  // Growth caps: once `max_rows` rows or (approximately) `max_bytes` of
  // row data have been written, further samples are counted in
  // `dropped_rows()` instead of reaching the file — a probe left running
  // on a week-long run degrades to a bounded artifact plus an accounting
  // line in the run report, never an unbounded CSV.  0 = unlimited.
  void set_limits(std::size_t max_rows, std::size_t max_bytes) {
    max_rows_ = max_rows;
    max_bytes_ = max_bytes;
  }

  void sample(double time_s);

  std::size_t samples() const { return samples_; }
  // Samples suppressed by the row/byte caps.
  std::size_t dropped_rows() const { return dropped_rows_; }
  const std::string& path() const { return csv_.path(); }
  // False once any sample row failed to reach the file (see CsvWriter).
  bool ok() const { return csv_.ok(); }

 private:
  std::vector<Gauge*> gauges_;
  CsvWriter csv_;
  std::size_t samples_ = 0;
  std::size_t dropped_rows_ = 0;
  std::size_t max_rows_ = 0;
  std::size_t max_bytes_ = 0;
  std::size_t bytes_written_ = 0;
};

// Scheduler-driven periodic probe.
class Probe {
 public:
  Probe(Scheduler& sched, MetricsRegistry& registry,
        std::vector<std::string> gauge_names, const std::string& csv_path,
        SimTime interval);

  // Samples immediately, then every `interval` until `stop()` or `end`
  // (inclusive); without an end bound the probe keeps the event queue
  // non-empty, so horizon-bounded runs are unaffected but `run()` to
  // drain would never return.
  void start(SimTime end = SimTime::max());
  void stop();

  // Forwarded to the underlying ProbeWriter (0 = unlimited).
  void set_limits(std::size_t max_rows, std::size_t max_bytes) {
    writer_.set_limits(max_rows, max_bytes);
  }

  std::size_t samples() const { return writer_.samples(); }
  std::size_t dropped_rows() const { return writer_.dropped_rows(); }
  const std::string& path() const { return writer_.path(); }
  bool ok() const { return writer_.ok(); }

 private:
  void tick();

  Scheduler& sched_;
  ProbeWriter writer_;
  SimTime interval_;
  SimTime end_ = SimTime::max();
  EventHandle timer_;
};

// Wall-clock probe for the inet layer: call `poll(now_ns)` from the event
// loop; a sample is taken whenever `interval_ns` has elapsed since the
// last one.  Timestamps are emitted relative to the first poll.
class WallClockProbe {
 public:
  WallClockProbe(MetricsRegistry& registry,
                 std::vector<std::string> gauge_names,
                 const std::string& csv_path, std::uint64_t interval_ns);

  void poll(std::uint64_t now_ns);

  void set_limits(std::size_t max_rows, std::size_t max_bytes) {
    writer_.set_limits(max_rows, max_bytes);
  }

  std::size_t samples() const { return writer_.samples(); }
  std::size_t dropped_rows() const { return writer_.dropped_rows(); }
  bool ok() const { return writer_.ok(); }

 private:
  ProbeWriter writer_;
  std::uint64_t interval_ns_;
  std::uint64_t epoch_ns_ = 0;
  std::uint64_t next_ns_ = 0;
  bool started_ = false;
};

}  // namespace dmp::obs
